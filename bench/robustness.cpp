// Section 4.3 -- robustness evaluation: the eight attacks on the
// unprotected baseline ("Sun JVM" column) and on I-JVM.
//
// Prints one row per attack with the observed outcome in each mode; the
// expected shape is the paper's: every attack succeeds against the
// baseline and is contained by I-JVM (victim unaffected or control
// returned, offender identified via resource accounting, bundle killed).
#include <cstdio>

#include "workloads/attacks.h"

using namespace ijvm;

namespace {

const char* yn(bool b) { return b ? "yes" : "no "; }

void printMode(const char* title, const std::vector<AttackOutcome>& outcomes) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-4s %-42s %-7s %-11s %-8s %s\n", "id", "attack", "victim",
              "identified", "stopped", "detail");
  for (const AttackOutcome& o : outcomes) {
    std::printf("%-4s %-42s %-7s %-11s %-8s %s\n", attackName(o.id),
                attackTitle(o.id), yn(o.victim_unaffected),
                yn(o.attacker_identified), yn(o.attacker_stopped),
                o.detail.c_str());
  }
}

}  // namespace

int main() {
  std::printf("================================================================\n");
  std::printf("Robustness evaluation (paper section 4.3): attacks A1..A8\n");
  std::printf("================================================================\n");

  std::vector<AttackOutcome> baseline = runAllAttacks(/*isolated=*/false);
  std::vector<AttackOutcome> ijvm = runAllAttacks(/*isolated=*/true);

  printMode("unprotected baseline (Sun JVM / LadyVM)", baseline);
  printMode("I-JVM (isolated mode)", ijvm);

  int contained = 0;
  int vulnerable = 0;
  for (const AttackOutcome& o : ijvm) {
    if (o.protectedOutcome()) ++contained;
  }
  for (const AttackOutcome& o : baseline) {
    if (!o.protectedOutcome()) ++vulnerable;
  }
  std::printf("\nsummary: I-JVM contained %d/8 attacks; the baseline was "
              "vulnerable to %d/8.\n", contained, vulnerable);
  std::printf("(paper: I-JVM prevents all eight attacks; the unprotected JVM "
              "freezes or aborts.)\n");
  return contained == 8 && vulnerable == 8 ? 0 : 1;
}
