// Multi-bundle throughput on the mutator pool (docs/concurrency.md).
//
// The service-platform shape the pool exists for: many bundles, each
// handling requests that spend most of their time *waiting* (I/O, timers,
// downstream calls) and only a sliver computing. One mutator serializes
// the waits; N pool workers overlap them. The scenario is deliberately
// wait-bound so the scaling claim holds on a single-core container --
// what is measured is the scheduler's ability to keep bundles in flight,
// not arithmetic throughput.
//
// While the tasks run, the main thread churns the code cache (demote the
// hottest bundle's compiled code, then run the concurrent era-gated
// reclamation pass) to measure reclamation *under load*: the era-lag
// histogram reports how many eras past its target retired code lingered,
// and the time-to-stop histogram proves no stop-the-world grows with the
// worker count (reclaimJitCode never parks the world; only the GCs do).
//
// Rows land in BENCH_exec.json alongside fig1_micro's: existing rows are
// preserved, previous multibundle:* rows are replaced.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bytecode/builder.h"
#include "exec/code_cache.h"
#include "obs/trace.h"
#include "runtime/mutator_pool.h"

namespace ijvm::bench {
namespace {

constexpr int kBundles = 8;
constexpr int kTasksPerBundle = 4;
constexpr int kWaitMs = 20;  // per-request downstream wait
constexpr int kReps = 2;

// svc/Handler.handle(I)I -- sleep(arg ms), then a small compute tail.
BundleDescriptor handlerBundle(const std::string& name,
                               const std::string& pkg) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  ClassBuilder cb(pkg + "/Handler");
  auto& m = cb.method("handle", "(I)I", ACC_PUBLIC | ACC_STATIC);
  Label head = m.newLabel(), done = m.newLabel();
  m.iload(0).i2l().invokestatic("java/lang/Thread", "sleep", "(J)V");
  m.iconst(0).istore(1);
  m.iconst(0).istore(2);
  m.bind(head).iload(2).iconst(512).ifIcmpGe(done);
  m.iload(1).iload(2).ixor().istore(1);
  m.iinc(2, 1).gotoLabel(head);
  m.bind(done).iload(1).ireturn();
  desc.classes.push_back(cb.build());
  return desc;
}

struct RunResult {
  i64 wall_ns = 0;
  obs::HistSnapshot era_lag;
  obs::HistSnapshot time_to_stop;
};

RunResult runAt(u32 workers) {
  auto p = bootPlatform(/*isolated=*/true, ExecEngine::Jit,
                        [workers](VmOptions& o) {
                          o.mutator_threads = workers;
                          o.fusion_threshold = 0;
                          o.jit_threshold = 0;  // handlers compile up front
                          o.background_compile = false;
                        });
  VM& vm = *p->vm;
  std::vector<Bundle*> bundles;
  for (int k = 0; k < kBundles; ++k) {
    Bundle* b = p->fw->install(
        handlerBundle(strf("svc%d", k), strf("s%d", k)));
    p->fw->start(b);
    bundles.push_back(b);
  }
  // Warm every handler with the sleep site taken (1 ms) so the second
  // call compiles code whose sleep arm is quickened -- no cold-arm deopt.
  JThread* main = vm.mainThread();
  for (int k = 0; k < kBundles; ++k) {
    for (int i = 0; i < 2; ++i) {
      vm.callStaticIn(main, bundles[k]->loader(), strf("s%d/Handler", k),
                      "handle", "(I)I", {Value::ofInt(1)});
    }
  }

  MutatorPool& pool = vm.mutatorPool();
  obs::setTraceEnabled(true);
  obs::resetTrace();
  RunResult res;
  res.wall_ns = bestOf(kReps, [&] {
    const u64 done_before = pool.tasksCompleted();
    for (int t = 0; t < kTasksPerBundle; ++t) {
      for (int k = 0; k < kBundles; ++k) {
        Bundle* b = bundles[k];
        const std::string cls = strf("s%d/Handler", k);
        pool.submit(
            [&vm, b, cls](JThread* jt) {
              vm.callStaticIn(jt, b->loader(), cls, "handle", "(I)I",
                              {Value::ofInt(kWaitMs)});
            },
            b->isolate());
      }
    }
    // Code-cache churn concurrent with the in-flight requests: retire one
    // bundle's compiled code per lap and let the era-gated pass free it
    // once every worker has polled past the arm -- no stop-the-world.
    const u64 target = done_before + kBundles * kTasksPerBundle;
    int lap = 0;
    while (pool.tasksCompleted() < target) {
      exec::demoteLoaderJit(vm, bundles[lap % kBundles]->loader());
      exec::reclaimJitCode(vm);
      ++lap;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    pool.drain();
  });
  // Final passes so everything retired mid-run is freed and counted.
  exec::reclaimJitCode(vm);
  exec::reclaimJitCode(vm);
  res.era_lag = obs::latencySnapshot(obs::Lat::ReclaimEraLag);
  res.time_to_stop = obs::latencySnapshot(obs::Lat::SafepointTimeToStop);
  obs::setTraceEnabled(false);
  return res;
}

// Keep every existing BENCH_exec.json row except ours, then append ours:
// fig1_micro owns the file's other rows and rewrites it wholesale, so
// this bench must merge, not clobber.
void mergeInto(const std::string& path, const BenchJson& ours) {
  std::vector<std::string> kept;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("{\"name\": \"") == std::string::npos) continue;
    if (line.find("\"multibundle:") != std::string::npos) continue;
    if (line.back() == ',') line.pop_back();
    kept.push_back(line);
  }
  in.close();
  for (const std::string& row : ours.rows()) kept.push_back(row);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("failed to write %s\n", path.c_str());
    return;
  }
  std::fputs("[\n", f);
  for (size_t i = 0; i < kept.size(); ++i) {
    std::fputs(kept[i].c_str(), f);
    std::fputs(i + 1 < kept.size() ? ",\n" : "\n", f);
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace ijvm::bench

int main() {
  using namespace ijvm;
  using namespace ijvm::bench;

  printHeader(strf("Multi-bundle throughput: %d bundles x %d requests, "
                   "%d ms wait each, mutator pool at 1/2/4 workers",
                   kBundles, kTasksPerBundle, kWaitMs)
                  .c_str());
  std::printf("%-8s %12s %10s %14s %16s\n", "workers", "wall ms", "speedup",
              "era-lag p99", "time-to-stop p99");

  BenchJson json;
  double t1_ms = 0.0;
  double speedup4 = 0.0;
  for (u32 w : {1u, 2u, 4u}) {
    RunResult r = runAt(w);
    const double ms = static_cast<double>(r.wall_ns) / 1e6;
    if (w == 1) t1_ms = ms;
    const double speedup = ms > 0 ? t1_ms / ms : 0.0;
    if (w == 4) speedup4 = speedup;
    std::printf("%-8u %12.1f %9.2fx %14llu %13.2f ms\n", w, ms, speedup,
                static_cast<unsigned long long>(r.era_lag.p99_ns),
                static_cast<double>(r.time_to_stop.p99_ns) / 1e6);
    json.add(strf("multibundle:w%u", w),
             {{"wall_ms", ms},
              {"speedup_vs_w1", speedup},
              {"era_lag_p99", static_cast<double>(r.era_lag.p99_ns)},
              {"era_lag_samples", static_cast<double>(r.era_lag.count)},
              {"tts_p99_ms",
               static_cast<double>(r.time_to_stop.p99_ns) / 1e6},
              {"bundles", static_cast<double>(kBundles)},
              {"tasks_per_bundle", static_cast<double>(kTasksPerBundle)},
              {"wait_ms", static_cast<double>(kWaitMs)}});
  }
  std::printf("\n4-worker speedup vs 1: %.2fx (target >= 2.5x; wait-bound "
              "by construction)\n",
              speedup4);
  json.add("multibundle:speedup", {{"speedup_4w_vs_1w", speedup4}});
  mergeInto(benchOutPath("BENCH_exec.json"), json);
  return speedup4 >= 2.5 ? 0 : 1;
}
