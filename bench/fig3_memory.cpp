// Figure 3 -- memory consumption of I-JVM vs the baseline VM when booting
// the base configurations of two legacy OSGi implementations:
//   felix   = OSGi runtime + 3 management bundles
//   equinox = OSGi runtime + 22 management bundles
//
// Paper: the overhead of I-JVM comes from (i) the per-class task-class-
// mirror arrays and (ii) the per-isolate string tables and statistics, and
// stays below 16% for both configurations.
#include "bench_util.h"
#include "osgi/profiles.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

MemoryFootprint bootAndMeasure(const ProfileSpec& spec, bool isolated) {
  auto platform = bootPlatform(isolated);
  bootProfile(*platform->fw, spec);
  return measureFootprint(*platform->vm);
}

}  // namespace

int main() {
  printHeader("Figure 3: memory consumption on OSGi base configurations");
  std::printf("%-10s %-8s %12s %12s %12s %8s\n", "profile", "mode", "heap KiB",
              "meta KiB", "total KiB", "classes");

  for (const ProfileSpec& spec : {felixProfile(), equinoxProfile()}) {
    MemoryFootprint iso = bootAndMeasure(spec, true);
    MemoryFootprint shr = bootAndMeasure(spec, false);
    std::printf("%-10s %-8s %12.1f %12.1f %12.1f %8zu\n", spec.name.c_str(),
                "I-JVM", iso.heap_bytes / 1024.0, iso.metadata_bytes / 1024.0,
                iso.total() / 1024.0, iso.classes);
    std::printf("%-10s %-8s %12.1f %12.1f %12.1f %8zu\n", spec.name.c_str(),
                "base", shr.heap_bytes / 1024.0, shr.metadata_bytes / 1024.0,
                shr.total() / 1024.0, shr.classes);
    std::printf("%-10s overhead: %+.1f%%  (paper: below 16%%)\n\n",
                spec.name.c_str(),
                pct(static_cast<double>(iso.total()),
                    static_cast<double>(shr.total())));
  }
  std::printf("shape: I-JVM costs more memory on both profiles (TCM arrays +\n"
              "per-isolate string tables); equinox (22 bundles) pays more than\n"
              "felix (3 bundles) in absolute terms.\n");
  return 0;
}
