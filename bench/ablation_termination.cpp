// Ablation: isolate-termination latency.
//
// Termination (paper section 3.3) stops the world, poisons the bundle's
// methods and patches every thread's stack. Its cost therefore scales with
// the number of live threads and their stack depths. This bench kills a
// bundle with T threads spinning at recursion depth D inside it and reports
// the time until (a) terminateIsolate returns and (b) every thread has
// actually unwound.
#include "bench_util.h"
#include "bytecode/builder.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

// Bundle whose Spin.run() recurses to `depth` frames and then spins.
BundleDescriptor makeDeepSpinner() {
  BundleDescriptor desc;
  desc.symbolic_name = "deepspin";
  ClassBuilder cb("ds/Spin");
  cb.addInterface("java/lang/Runnable");
  cb.field("depth", "I");
  {
    auto& ctor = cb.method("<init>", "(I)V");
    ctor.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    ctor.aload(0).iload(1).putfield("ds/Spin", "depth", "I");
    ctor.ret();
  }
  {
    // descend(d): if (d > 0) descend(d-1) else spin forever
    auto& m = cb.method("descend", "(I)V", ACC_PUBLIC | ACC_STATIC);
    Label spin = m.newLabel(), loop = m.newLabel();
    m.iload(0).ifle(spin);
    m.iload(0).iconst(1).isub().invokestatic("ds/Spin", "descend", "(I)V");
    m.ret();
    m.bind(spin);
    m.iconst(0).istore(1);
    m.bind(loop).iinc(1, 1).gotoLabel(loop);
  }
  {
    auto& run = cb.method("run", "()V");
    run.aload(0).getfield("ds/Spin", "depth", "I");
    run.invokestatic("ds/Spin", "descend", "(I)V");
    run.ret();
  }
  desc.classes.push_back(cb.build());
  return desc;
}

struct Sample {
  int threads;
  int depth;
  double terminate_us;
  double unwound_ms;
};

// Threads currently executing inside `iso` (migrated in and alive).
// Spawned threads are *charged* to their creator -- the main thread's
// Isolate0 here (paper 3.2: "threads are charged to their creator, but may
// execute code from any isolate") -- so the bundle's live_threads counter
// stays 0 and presence must be observed via the isolate reference.
int threadsInside(VM& vm, Isolate* iso) {
  int n = 0;
  for (JThread* t : vm.threadsSnapshot()) {
    if (t->state.load(std::memory_order_acquire) == ThreadState::Dead) continue;
    if (t->current_isolate.load(std::memory_order_acquire) == iso) ++n;
  }
  return n;
}

Sample measure(int threads, int depth) {
  VmOptions opts = VmOptions::isolated();
  opts.isolate_thread_limit = threads + 4;
  BenchPlatform p(opts);
  Bundle* b = p.fw->install(makeDeepSpinner());
  p.fw->start(b);

  // Spawn T guest threads spinning inside the bundle at depth D.
  JThread* t = p.vm->mainThread();
  JClass* spin_cls = b->loader()->find("ds/Spin");
  JClass* thread_cls = p.vm->registry().systemLoader()->find("java/lang/Thread");
  for (int i = 0; i < threads; ++i) {
    LocalRootScope roots(t);
    Object* spin = roots.add(p.vm->allocObject(t, spin_cls));
    p.vm->invoke(t, spin_cls->findMethod("<init>", "(I)V"),
                 {Value::ofRef(spin), Value::ofInt(depth)});
    Object* th = roots.add(p.vm->allocObject(t, thread_cls));
    p.vm->invoke(t, thread_cls->findMethod("<init>", "(Ljava/lang/Runnable;)V"),
                 {Value::ofRef(th), Value::ofRef(spin)});
    p.vm->callVirtual(t, th, "start", "()V", {});
    IJVM_CHECK(t->pending_exception == nullptr, p.vm->pendingMessage(t));
  }
  // Wait for all threads to be running inside the bundle.
  while (threadsInside(*p.vm, b->isolate()) < threads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Sample s;
  s.threads = threads;
  s.depth = depth;
  i64 t0 = nowNs();
  p.vm->terminateIsolate(t, b->isolate());
  s.terminate_us = (nowNs() - t0) / 1e3;
  while (threadsInside(*p.vm, b->isolate()) > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  s.unwound_ms = (nowNs() - t0) / 1e6;
  return s;
}

}  // namespace

int main() {
  printHeader("Ablation: isolate termination latency vs threads and stack depth");
  std::printf("%8s %8s %16s %16s\n", "threads", "depth", "terminate us",
              "all unwound ms");
  for (int threads : {1, 2, 4, 8}) {
    for (int depth : {8, 64, 256}) {
      Sample s = measure(threads, depth);
      std::printf("%8d %8d %16.1f %16.2f\n", s.threads, s.depth, s.terminate_us,
                  s.unwound_ms);
    }
  }
  std::printf("\nshape: the stop-the-world patch grows with total frames\n"
              "(threads x depth); full unwind adds scheduling latency per\n"
              "thread. Both stay in the millisecond range.\n");
  return 0;
}
