// Request-serving benchmark for zero-copy inter-isolate communication
// (docs/comm.md): what donation and batched channel sends buy a service
// platform that moves messages between bundles all day.
//
// Three measurements, all rows landing in BENCH_serve.json:
//  * donate vs copy -- a 4 KiB primitive-array send through transferGraph
//    with comm_zero_copy on vs off; the copy baseline stays in the file
//    and the speedup row is the headline (target >= 2x: a donation re-keys
//    one header where the copy path allocates, memcpys and charges 4 KiB).
//  * request serving -- a driver isolate fans request payloads out to
//    server isolates on the mutator pool; each server receives the message
//    via transferGraph and runs a guest sum() over it. Throughput and
//    p50/p90/p99 request latency, zero-copy on vs off.
//  * batched sends -- framed messages through a loopback ByteChannel with
//    writev flushes at batch sizes 1/8/64 (one lock + one wakeup per
//    flush, amortized across the batch).
//
// Runs without google-benchmark. --smoke does one tiny rep of everything
// (CI: the JSON must be well-formed; no perf assertions).
#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bytecode/builder.h"
#include "comm/serializer.h"
#include "runtime/mutator_pool.h"
#include "stdlib/channels.h"

namespace ijvm::bench {
namespace {

bool g_smoke = false;

// VM with a platform isolate0, a driver (sender) isolate with an attached
// thread, and `servers` receiver isolates, each with a guest
// s<k>/Srv.sum([I)I handler in its own loader.
struct ServeEnv {
  ServeEnv(bool zero_copy, u32 servers, u32 workers) {
    VmOptions opts = VmOptions::isolated();
    opts.comm_zero_copy = zero_copy;
    opts.gc_threshold = 128u << 20;  // keep GC out of the timed paths
    opts.heap_limit = 512u << 20;
    opts.sampler_period_us = 0;
    if (workers > 0) opts.mutator_threads = workers;
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    ClassLoader* platform = vm->registry().newLoader("platform");
    vm->createIsolate(platform, "platform");
    ClassLoader* dl = vm->registry().newLoader("driver");
    iso_d = vm->createIsolate(dl, "driver");
    dt = vm->attachThread("driver", iso_d);
    for (u32 k = 0; k < servers; ++k) {
      const std::string name = strf("srv%u", k);
      ClassLoader* loader = vm->registry().newLoader(name);
      ClassBuilder cb(strf("s%u/Srv", k));
      auto& m = cb.method("sum", "([I)I", ACC_PUBLIC | ACC_STATIC);
      Label loop = m.newLabel(), done = m.newLabel();
      m.iconst(0).istore(1).iconst(0).istore(2);
      m.bind(loop).iload(1).aload(0).arraylength().ifIcmpGe(done);
      m.aload(0).iload(1).iaload().iload(2).iadd().istore(2);
      m.iinc(1, 1).gotoLabel(loop);
      m.bind(done).iload(2).ireturn();
      loader->define(cb.build());
      server_loaders.push_back(loader);
      server_isos.push_back(vm->createIsolate(loader, name));
      server_threads.push_back(vm->attachThread(name, server_isos.back()));
    }
  }
  ~ServeEnv() {
    for (JThread* t : server_threads) vm->detachThread(t);
    vm->detachThread(dt);
  }

  Object* newPayload(i32 len) {
    Object* arr =
        vm->allocArrayObject(dt, vm->registry().arrayClass("[I"), len);
    if (arr != nullptr) {
      for (i32 k = 0; k < len; ++k) arr->intElems()[k] = k;
    }
    return arr;
  }

  std::unique_ptr<VM> vm;
  Isolate* iso_d = nullptr;
  JThread* dt = nullptr;
  std::vector<ClassLoader*> server_loaders;
  std::vector<Isolate*> server_isos;
  std::vector<JThread*> server_threads;
};

// ---- donate vs copy: one 4 KiB primitive array per send ----

struct SendCost {
  double per_send_ns = 0;
  double total_ms = 0;
  int sends = 0;
};

SendCost measureSend(bool zero_copy) {
  const int sends = g_smoke ? 64 : 4000;
  const int reps = g_smoke ? 1 : 5;
  ServeEnv env(zero_copy, /*servers=*/1, /*workers=*/0);
  VM& vm = *env.vm;
  JThread* rt = env.server_threads[0];
  i64 best = -1;
  for (int r = 0; r < reps; ++r) {
    // Bound the garbage from previous reps outside the timed region.
    vm.collectGarbage(vm.mainThread(), nullptr);
    i64 sum = 0;
    for (int i = 0; i < sends; ++i) {
      // Building the request is untimed: both modes pay it identically,
      // and the row is the cost of the *send* (a fresh payload per send
      // because a donated array is gone from the sender).
      LocalRootScope roots(env.dt);
      Object* req = roots.add(env.newPayload(1024));  // 4 KiB payload
      const i64 t0 = nowNs();
      Object* got = transferGraph(vm, rt, env.iso_d, req);
      sum += nowNs() - t0;
      if (got == nullptr) vm.clearPending(rt);
      // Received graph is dropped: steady-state serving, not retention.
    }
    if (best < 0 || sum < best) best = sum;
  }
  SendCost c;
  c.sends = sends;
  c.total_ms = static_cast<double>(best) / 1e6;
  c.per_send_ns = static_cast<double>(best) / sends;
  return c;
}

// ---- request serving on the mutator pool ----

struct ServeResult {
  double throughput_rps = 0;
  double p50_us = 0, p90_us = 0, p99_us = 0;
  int requests = 0;
};

double pctile(std::vector<i64>& v, double q) {
  if (v.empty()) return 0;
  const size_t idx =
      std::min(v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size())));
  return static_cast<double>(v[idx]) / 1e3;
}

ServeResult measureServing(bool zero_copy) {
  const u32 kServers = 4;
  const int per_server = g_smoke ? 16 : 400;
  const i32 payload_len = 256;  // 1 KiB requests
  ServeEnv env(zero_copy, kServers, /*workers=*/4);
  VM& vm = *env.vm;
  MutatorPool& pool = vm.mutatorPool();
  const int total = static_cast<int>(kServers) * per_server;
  std::vector<i64> latency(static_cast<size_t>(total), 0);
  std::atomic<int> failed{0};

  // Warm the handlers (first call quickens/compiles).
  for (u32 k = 0; k < kServers; ++k) {
    LocalRootScope roots(env.dt);
    Object* warm = roots.add(env.newPayload(payload_len));
    vm.callStaticIn(env.server_threads[k], env.server_loaders[k],
                    strf("s%u/Srv", k), "sum", "([I)I", {Value::ofRef(warm)});
  }
  vm.collectGarbage(vm.mainThread(), nullptr);

  const i64 t_start = nowNs();
  for (int i = 0; i < total; ++i) {
    const u32 k = static_cast<u32>(i) % kServers;
    Object* req = env.newPayload(payload_len);
    if (req == nullptr) {
      failed.fetch_add(1);
      continue;
    }
    // Root the in-flight request until the server picks it up; the ref is
    // dropped by the handler task after the transfer.
    GlobalRef* ref = vm.addGlobalRef(req, env.iso_d);
    ClassLoader* loader = env.server_loaders[k];
    const std::string cls = strf("s%u/Srv", k);
    Isolate* sender = env.iso_d;
    i64* slot = &latency[static_cast<size_t>(i)];
    const i64 t0 = nowNs();
    pool.submit(
        [&vm, sender, req, ref, loader, cls, slot, t0, &failed](JThread* jt) {
          Object* got = transferGraph(vm, jt, sender, req);
          vm.removeGlobalRef(ref);
          if (got == nullptr) {
            vm.clearPending(jt);
            failed.fetch_add(1);
            return;
          }
          LocalRootScope roots(jt);
          roots.add(got);
          vm.callStaticIn(jt, loader, cls, "sum", "([I)I",
                          {Value::ofRef(got)});
          if (jt->pending_exception != nullptr) vm.clearPending(jt);
          *slot = nowNs() - t0;
        },
        env.server_isos[k]);
  }
  pool.drain();
  const i64 wall = nowNs() - t_start;

  ServeResult r;
  r.requests = total - failed.load();
  r.throughput_rps =
      wall > 0 ? static_cast<double>(r.requests) / (static_cast<double>(wall) / 1e9)
               : 0;
  std::sort(latency.begin(), latency.end());
  r.p50_us = pctile(latency, 0.50);
  r.p90_us = pctile(latency, 0.90);
  r.p99_us = pctile(latency, 0.99);
  return r;
}

// ---- batched channel sends ----

struct BatchCost {
  double per_msg_ns = 0;
  double total_ms = 0;
  int messages = 0;
};

BatchCost measureBatch(u32 batch) {
  const int messages = g_smoke ? 256 : 20000;
  const int reps = g_smoke ? 1 : 5;
  const std::string body(512, 'x');
  const std::string header = strf("%09zu\n", body.size());
  auto channel = ByteChannel::loopback();
  std::vector<std::string> frames;
  frames.reserve(2 * batch);
  i64 best = -1;
  for (int r = 0; r < reps; ++r) {
    const i64 t0 = nowNs();
    for (int i = 0; i < messages; ++i) {
      frames.push_back(header);
      frames.push_back(body);
      if (frames.size() >= 2 * static_cast<size_t>(batch)) {
        channel->writev(frames.data(), frames.size());
        frames.clear();
      }
    }
    if (!frames.empty()) {
      channel->writev(frames.data(), frames.size());
      frames.clear();
    }
    const i64 dt = nowNs() - t0;
    if (best < 0 || dt < best) best = dt;
    // Drain outside the timed send loop so the queue stays bounded.
    std::string sink;
    channel->readFully(&sink, static_cast<size_t>(messages) *
                                  (header.size() + body.size()));
  }
  BatchCost c;
  c.messages = messages;
  c.total_ms = static_cast<double>(best) / 1e6;
  c.per_msg_ns = static_cast<double>(best) / messages;
  return c;
}

}  // namespace
}  // namespace ijvm::bench

int main(int argc, char** argv) {
  using namespace ijvm;
  using namespace ijvm::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  BenchJson json;

  printHeader("Zero-copy send: 4 KiB primitive array, donate vs copy");
  SendCost copy = measureSend(/*zero_copy=*/false);
  SendCost donate = measureSend(/*zero_copy=*/true);
  const double speedup =
      donate.per_send_ns > 0 ? copy.per_send_ns / donate.per_send_ns : 0;
  std::printf("%-12s %12s %12s\n", "mode", "per send", "total");
  std::printf("%-12s %9.1f ns %9.2f ms\n", "copy", copy.per_send_ns,
              copy.total_ms);
  std::printf("%-12s %9.1f ns %9.2f ms\n", "donate", donate.per_send_ns,
              donate.total_ms);
  std::printf("speedup: %.2fx (target >= 2x)\n", speedup);
  json.add("serve:copy_4k", {{"per_send_ns", copy.per_send_ns},
                             {"total_ms", copy.total_ms},
                             {"sends", static_cast<double>(copy.sends)}});
  json.add("serve:donate_4k", {{"per_send_ns", donate.per_send_ns},
                               {"total_ms", donate.total_ms},
                               {"sends", static_cast<double>(donate.sends)}});
  json.add("serve:speedup_4k", {{"speedup_vs_copy", speedup}});

  printHeader("Request serving: 4 servers on a 4-worker pool, 1 KiB requests");
  std::printf("%-12s %12s %10s %10s %10s\n", "mode", "req/s", "p50 us",
              "p90 us", "p99 us");
  for (bool zc : {false, true}) {
    ServeResult r = measureServing(zc);
    const char* mode = zc ? "zero-copy" : "copy";
    std::printf("%-12s %12.0f %10.1f %10.1f %10.1f\n", mode, r.throughput_rps,
                r.p50_us, r.p90_us, r.p99_us);
    json.add(strf("serve:pool_%s", zc ? "zero_copy" : "copy"),
             {{"throughput_rps", r.throughput_rps},
              {"p50_us", r.p50_us},
              {"p90_us", r.p90_us},
              {"p99_us", r.p99_us},
              {"requests", static_cast<double>(r.requests)}});
  }

  printHeader("Batched channel sends: 522-byte framed messages");
  std::printf("%-12s %12s %12s\n", "batch", "per msg", "total");
  for (u32 b : {1u, 8u, 64u}) {
    BatchCost c = measureBatch(b);
    std::printf("%-12u %9.1f ns %9.2f ms\n", b, c.per_msg_ns, c.total_ms);
    json.add(strf("serve:batch%u", b),
             {{"per_msg_ns", c.per_msg_ns},
              {"total_ms", c.total_ms},
              {"messages", static_cast<double>(c.messages)}});
  }

  const std::string out_path = bench::benchOutPath("BENCH_serve.json");
  if (!json.write(out_path)) {
    std::printf("failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
#if !defined(IJVM_DISABLE_ZERO_COPY)
  // The acceptance bar only applies to real runs of the real fast path;
  // smoke runs are one noisy rep and the compile-out leg always copies.
  if (!g_smoke) return speedup >= 2.0 ? 0 : 1;
#endif
  return 0;
}
