// Figure 2 -- overhead of I-JVM on the SPEC JVM98-analog workloads,
// relative to the baseline VM.
//
// The paper runs SPEC JVM98 inside Isolate0 and reports that I-JVM's
// overhead stays below 20% on every benchmark. We run the seven analog
// workloads on identical bytecode in both modes.
#include "bench_util.h"
#include "workloads/spec.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

i64 timeWorkload(const SpecWorkload& wl, bool isolated, i32 size, int reps) {
  // Fresh VM per mode; the workload runs in Isolate0 as in the paper.
  VmOptions opts = isolated ? VmOptions::isolated() : VmOptions::shared();
  opts.gc_threshold = 64u << 20;
  opts.heap_limit = 512u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("spec");
  vm.createIsolate(app, "spec");
  // Warm-up run resolves constant-pool entries and initializes classes.
  runSpecWorkload(vm, vm.mainThread(), app, wl, std::max(1, size / 8));
  return bestOf(reps, [&] {
    runSpecWorkload(vm, vm.mainThread(), app, wl, size);
  });
}

// `--smoke`: the CI bench gate (ISSUE 9). Runs every SPEC analog on the
// fused tier and the jit ladder at reduced size, writes the rows to
// BENCH_fig2_smoke.json, and fails the process if any jit row comes in
// under 0.95x fused -- the payoff model's "the JIT never loses" bar.
// Small sizes keep the gate under a minute; min-of-7 reps absorbs CI
// timer noise.
int runSmoke() {
  printHeader("Figure-2 smoke gate: jit must not lose to fused (>= 0.95x)");
  std::printf("%-12s %12s %12s %9s   %s\n", "benchmark", "fused ms", "jit ms",
              "jit gain", "gate");
#ifdef IJVM_DISABLE_JIT
  const bool jit_available = false;
#else
  const bool jit_available = true;
#endif
  BenchJson json;
  bool ok = true;
  for (const SpecWorkload& wl : specWorkloads()) {
    // Same size as fig1_micro's ladder rows: 1/8 scale leaves the
    // string-heavy analogs (javac, jack) compile-bound -- their many
    // small methods all cross jit_threshold=1 but the run ends before
    // the compiled code pays the build back, which is a property of the
    // truncated workload, not of the ladder the gate polices.
    const i32 size = std::max(1, wl.default_size / 4);
    auto timeIt = [&](ExecEngine engine) {
      VmOptions o = VmOptions::isolated();
      o.exec_engine = engine;
      o.fusion_threshold = 0;
      o.jit_threshold = 1;
      o.gc_threshold = 64u << 20;
      o.heap_limit = 512u << 20;
      VM vm(o);
      installSystemLibrary(vm);
      ClassLoader* app = vm.registry().newLoader("spec");
      vm.createIsolate(app, "spec");
      // Warm-up resolves pool entries, initializes classes and promotes.
      runSpecWorkload(vm, vm.mainThread(), app, wl, std::max(1, size / 8));
      return bestOf(7, [&] {
        runSpecWorkload(vm, vm.mainThread(), app, wl, size);
      });
    };
    const i64 fused_ns = timeIt(ExecEngine::Quickened);
    const i64 jit_ns = timeIt(ExecEngine::Jit);
    const double gain =
        jit_ns > 0 ? static_cast<double>(fused_ns) / static_cast<double>(jit_ns)
                   : 0.0;
    // With the jit compiled out the second leg runs the fused tier too:
    // the gate degenerates to timer noise around 1.0x, so don't judge it.
    const bool row_ok = !jit_available || gain >= 0.95;
    ok = ok && row_ok;
    std::printf("%-12s %12.2f %12.2f %8.2fx   %s\n", wl.name.c_str(),
                fused_ns / 1e6, jit_ns / 1e6, gain,
                row_ok ? "ok" : "FAIL (< 0.95x)");
    json.add("spec:" + wl.name,
             {{"fused_ms", fused_ns / 1e6},
              {"jit_ms", jit_ns / 1e6},
              {"jit_speedup_vs_fused", gain},
              {"jit_available", jit_available ? 1.0 : 0.0},
              {"size", static_cast<double>(size)}});
  }
  const std::string out_path = benchOutPath("BENCH_fig2_smoke.json");
  if (!json.write(out_path)) {
    std::printf("failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  std::printf("gate: %s\n", ok ? "PASS (no jit row below 0.95x fused)"
                               : "FAIL (jit row below 0.95x fused)");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return runSmoke();
  }
  printHeader("Figure 2: SPEC JVM98-analog overhead of I-JVM vs baseline");
  std::printf("%-12s %12s %12s %10s   %s\n", "benchmark", "I-JVM ms",
              "baseline ms", "overhead", "paper bound");
  double worst = 0;
  for (const SpecWorkload& wl : specWorkloads()) {
    i64 iso = timeWorkload(wl, true, wl.default_size, 3);
    i64 shr = timeWorkload(wl, false, wl.default_size, 3);
    double over = pct(static_cast<double>(iso), static_cast<double>(shr));
    worst = std::max(worst, over);
    std::printf("%-12s %12.2f %12.2f %+9.1f%%   < 20%%\n", wl.name.c_str(),
                iso / 1e6, shr / 1e6, over);
  }
  std::printf("\nworst-case overhead: %+.1f%% (paper: below 20%% on all "
              "benchmarks)\n", worst);
  return 0;
}
