// Figure 2 -- overhead of I-JVM on the SPEC JVM98-analog workloads,
// relative to the baseline VM.
//
// The paper runs SPEC JVM98 inside Isolate0 and reports that I-JVM's
// overhead stays below 20% on every benchmark. We run the seven analog
// workloads on identical bytecode in both modes.
#include "bench_util.h"
#include "workloads/spec.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

i64 timeWorkload(const SpecWorkload& wl, bool isolated, i32 size, int reps) {
  // Fresh VM per mode; the workload runs in Isolate0 as in the paper.
  VmOptions opts = isolated ? VmOptions::isolated() : VmOptions::shared();
  opts.gc_threshold = 64u << 20;
  opts.heap_limit = 512u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  ClassLoader* app = vm.registry().newLoader("spec");
  vm.createIsolate(app, "spec");
  // Warm-up run resolves constant-pool entries and initializes classes.
  runSpecWorkload(vm, vm.mainThread(), app, wl, std::max(1, size / 8));
  return bestOf(reps, [&] {
    runSpecWorkload(vm, vm.mainThread(), app, wl, size);
  });
}

}  // namespace

int main() {
  printHeader("Figure 2: SPEC JVM98-analog overhead of I-JVM vs baseline");
  std::printf("%-12s %12s %12s %10s   %s\n", "benchmark", "I-JVM ms",
              "baseline ms", "overhead", "paper bound");
  double worst = 0;
  for (const SpecWorkload& wl : specWorkloads()) {
    i64 iso = timeWorkload(wl, true, wl.default_size, 3);
    i64 shr = timeWorkload(wl, false, wl.default_size, 3);
    double over = pct(static_cast<double>(iso), static_cast<double>(shr));
    worst = std::max(worst, over);
    std::printf("%-12s %12.2f %12.2f %+9.1f%%   < 20%%\n", wl.name.c_str(),
                iso / 1e6, shr / 1e6, over);
  }
  std::printf("\nworst-case overhead: %+.1f%% (paper: below 20%% on all "
              "benchmarks)\n", worst);
  return 0;
}
