// Shared helpers for the benchmark binaries.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "support/strf.h"
#include "workloads/bundles.h"

namespace ijvm::bench {

inline i64 nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimum of `reps` timed runs (interference-resistant point estimate).
inline i64 bestOf(int reps, const std::function<void()>& fn) {
  i64 best = -1;
  for (int i = 0; i < reps; ++i) {
    i64 t0 = nowNs();
    fn();
    i64 dt = nowNs() - t0;
    if (best < 0 || dt < best) best = dt;
  }
  return best;
}

// A booted platform: VM + system library + OSGi framework.
struct BenchPlatform {
  explicit BenchPlatform(VmOptions opts) {
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    fw = std::make_unique<Framework>(*vm);
  }
  ~BenchPlatform() {
    fw.reset();
    vm.reset();
  }
  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
};

inline std::unique_ptr<BenchPlatform> bootPlatform(
    bool isolated, ExecEngine engine = ExecEngine::Quickened,
    const std::function<void(VmOptions&)>& tweak = {}) {
  VmOptions opts = isolated ? VmOptions::isolated() : VmOptions::shared();
  opts.exec_engine = engine;
  opts.gc_threshold = 32u << 20;  // keep GC out of the timed paths
  opts.heap_limit = 512u << 20;
  if (tweak) tweak(opts);
  return std::make_unique<BenchPlatform>(opts);
}

inline double pct(double with, double without) {
  return without > 0 ? (with / without - 1.0) * 100.0 : 0.0;
}

// Where BENCH_*.json files land. Benches used to write into the *build*
// directory (whatever cwd ctest/the shell happened to use), so committed
// reference runs never matched the tree. Resolution order:
//   1. $IJVM_BENCH_OUT      -- explicit override (CI scratch dirs)
//   2. IJVM_REPO_ROOT       -- baked in by CMake for bench targets; the
//                              repo root, so `git diff` sees fresh runs
//   3. cwd                  -- out-of-tree builds of the bench sources
inline std::string benchOutPath(const char* filename) {
  if (const char* dir = std::getenv("IJVM_BENCH_OUT");
      dir != nullptr && dir[0] != '\0') {
    return std::string(dir) + "/" + filename;
  }
#ifdef IJVM_REPO_ROOT
  return std::string(IJVM_REPO_ROOT) + "/" + filename;
#else
  return filename;
#endif
}

inline void printHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// Minimal machine-readable result emitter (BENCH_*.json): a flat JSON
// array of objects with one string "name" plus numeric fields.
class BenchJson {
 public:
  void add(const std::string& name,
           std::vector<std::pair<std::string, double>> fields) {
    std::string row = strf("  {\"name\": \"%s\"", name.c_str());
    for (const auto& [key, value] : fields) {
      row += strf(", \"%s\": %.4f", key.c_str(), value);
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fputs(rows_[i].c_str(), f);
      std::fputs(i + 1 < rows_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

  // For emitters that merge into a shared BENCH_*.json instead of owning
  // the whole file (each row is one serialized object, no trailing comma).
  const std::vector<std::string>& rows() const { return rows_; }

 private:
  std::vector<std::string> rows_;
};

}  // namespace ijvm::bench
