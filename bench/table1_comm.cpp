// Table 1 -- cost of 200 inter-bundle calls under the four communication
// models: local method call, RMI-style call, Incommunicado-style call, and
// the I-JVM inter-isolate direct call.
//
// Paper values (Pentium D 3.0 GHz): local 20 us, RMI 90 ms, Incommunicado
// 9 ms, I-JVM 24 us. We reproduce the *shape*: local ~ I-JVM, both orders
// of magnitude below Incommunicado, which is itself well below RMI.
//
// Runs both as a google-benchmark suite (per-call costs) and prints the
// paper-style 200-call row at the end.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "comm/comm.h"

namespace {

using namespace ijvm;
using namespace ijvm::bench;

CommHarness& harness() {
  static std::unique_ptr<BenchPlatform> platform = bootPlatform(true);
  static CommHarness h(*platform->fw);
  return h;
}

void BM_LocalCall(benchmark::State& state) {
  CommHarness& h = harness();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.runLocal(static_cast<i32>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_IJvmCall(benchmark::State& state) {
  CommHarness& h = harness();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.runIJvm(static_cast<i32>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_IncommunicadoCall(benchmark::State& state) {
  CommHarness& h = harness();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.runIncommunicado(static_cast<i32>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_RmiCall(benchmark::State& state) {
  CommHarness& h = harness();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.runRmi(static_cast<i32>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_LocalCall)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IJvmCall)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IncommunicadoCall)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RmiCall)->Arg(200)->Unit(benchmark::kMicrosecond);

void printPaperTable() {
  CommHarness& h = harness();
  const i32 n = 200;
  // Warm up every path once.
  h.runLocal(n);
  h.runIJvm(n);
  h.runIncommunicado(n);
  h.runRmi(n);
  i64 local = bestOf(5, [&] { h.runLocal(n); });
  i64 ijvm = bestOf(5, [&] { h.runIJvm(n); });
  i64 inc = bestOf(5, [&] { h.runIncommunicado(n); });
  i64 rmi = bestOf(5, [&] { h.runRmi(n); });

  printHeader("Table 1: cost of 200 inter-bundle calls per communication model");
  std::printf("%-22s %14s %14s\n", "model", "total", "per call");
  auto row = [](const char* name, i64 ns) {
    std::printf("%-22s %11.1f us %11.2f us\n", name, ns / 1e3, ns / 200.0 / 1e3);
  };
  row("Local method", local);
  row("RMI local call", rmi);
  row("Incommunicado", inc);
  row("I-JVM", ijvm);
  std::printf("\nshape checks: I-JVM/local = %.2fx, Incommunicado/I-JVM = %.1fx, "
              "RMI/Incommunicado = %.1fx\n",
              static_cast<double>(ijvm) / static_cast<double>(local),
              static_cast<double>(inc) / static_cast<double>(ijvm),
              static_cast<double>(rmi) / static_cast<double>(inc));
  std::printf("(paper: 20 us / 24 us / 9 ms / 90 ms -- local ~ I-JVM << "
              "Incommunicado << RMI)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printPaperTable();
  return 0;
}
