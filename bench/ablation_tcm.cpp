// Ablation: decomposing I-JVM's static-access and allocation overhead.
//
// Figure 1's "static variable access" bar bundles two mechanisms: the TCM
// indirection (thread -> isolate -> mirror -> slot) and the initialization
// check that reentrant code cannot elide. The allocation bar bundles
// accounting increments and the memory-limit check. This ablation measures
// the four VM configurations that separate them:
//   baseline           isolation off, accounting off
//   accounting only    isolation off, accounting on
//   isolation only     isolation on,  accounting off
//   full I-JVM         isolation on,  accounting on
#include "bench_util.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

struct Config {
  const char* name;
  bool isolation;
  bool accounting;
};

i64 timeMicro(const Config& cfg, const char* method, i32 n, int reps) {
  VmOptions opts;
  opts.isolation = cfg.isolation;
  opts.accounting = cfg.accounting;
  opts.sampler_period_us = 0;
  opts.gc_threshold = 64u << 20;
  opts.heap_limit = 512u << 20;
  BenchPlatform p(opts);
  Bundle* b = p.fw->install(makeMicroBundle("micro"));
  p.fw->start(b);
  JThread* t = p.vm->mainThread();
  // Warm-up resolves pool entries.
  p.vm->callStaticIn(t, b->loader(), "micro/Bench", method, "(I)I",
                     {Value::ofInt(std::max(1, n / 16))});
  return bestOf(reps, [&] {
    p.vm->callStaticIn(t, b->loader(), "micro/Bench", method, "(I)I",
                       {Value::ofInt(n)});
    IJVM_CHECK(t->pending_exception == nullptr, p.vm->pendingMessage(t));
  });
}

}  // namespace

int main() {
  const Config configs[] = {
      {"baseline", false, false},
      {"accounting only", false, true},
      {"isolation only", true, false},
      {"full I-JVM", true, true},
  };
  const i32 kStatics = 1000000;
  const i32 kAllocs = 200000;

  // Interleaved passes: allocator/page-cache warm-up then affects every
  // configuration equally; we keep the per-config minimum.
  double stat_ns[4], alloc_ns[4];
  std::fill(std::begin(stat_ns), std::end(stat_ns), 1e18);
  std::fill(std::begin(alloc_ns), std::end(alloc_ns), 1e18);
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = 0; i < 4; ++i) {
      double s =
          static_cast<double>(timeMicro(configs[i], "staticMany", kStatics, 2)) /
          kStatics;
      double a =
          static_cast<double>(timeMicro(configs[i], "allocMany", kAllocs, 2)) /
          kAllocs;
      if (pass == 0) continue;  // throwaway warm-up pass
      stat_ns[i] = std::min(stat_ns[i], s);
      alloc_ns[i] = std::min(alloc_ns[i], a);
    }
  }

  printHeader("Ablation: TCM indirection vs accounting cost decomposition");
  std::printf("%-18s %18s %18s\n", "configuration", "static ns/op",
              "alloc ns/op");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-18s %12.1f (%+.0f%%) %12.1f (%+.0f%%)\n", configs[i].name,
                stat_ns[i], pct(stat_ns[i], stat_ns[0]), alloc_ns[i],
                pct(alloc_ns[i], alloc_ns[0]));
  }
  std::printf("\nshape: static access pays for isolation (the TCM loads),\n"
              "allocation pays mostly for accounting (counters + limit check).\n");
  return 0;
}
