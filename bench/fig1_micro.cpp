// Figure 1 -- micro-benchmark overhead of I-JVM relative to the baseline VM.
//
// Paper bars: intra-isolate call +14%, inter-isolate call +16%, object
// allocation +18%, static variable access +46% (unoptimized) / <1% (with
// optimizations, amortized). We run each micro-loop on identical bytecode
// in isolated and shared mode and report the relative overhead. The shape
// to reproduce: every overhead is small and positive, static access pays
// the TCM indirection, allocation pays the accounting + limit checks.
#include <cstring>

#include "bench_util.h"
#include "comm/comm.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "workloads/spec.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

struct MicroSetup {
  std::unique_ptr<BenchPlatform> platform;
  std::unique_ptr<CommHarness> comm;
  Bundle* micro = nullptr;

  explicit MicroSetup(bool isolated, ExecEngine engine = ExecEngine::Quickened,
                      const std::function<void(VmOptions&)>& tweak = {}) {
    platform = bootPlatform(isolated, engine, tweak);
    comm = std::make_unique<CommHarness>(*platform->fw);
    micro = platform->fw->install(makeMicroBundle("micro"));
    platform->fw->start(micro);
  }

  i64 run(const char* method, i32 n) {
    JThread* t = platform->vm->mainThread();
    i64 t0 = nowNs();
    platform->vm->callStaticIn(t, micro->loader(), "micro/Bench", method, "(I)I",
                               {Value::ofInt(n)});
    i64 dt = nowNs() - t0;
    IJVM_CHECK(t->pending_exception == nullptr,
               platform->vm->pendingMessage(t));
    return dt;
  }
};

// ---- profiler overhead (shared by the full run and --smoke) ----
// The sampler thread ticks at VmOptions::profile_hz (97 Hz under
// VmOptions::isolated) for the whole measurement; setEnabled toggles
// whether a tick requests samples. Reps are interleaved (on, off, on,
// off, ...) for the same clock-drift reason as the trace row, but judged
// as *pairs*: each adjacent on/off pair runs under near-identical drift,
// so its overhead ratio cancels the machine state two independent
// min-of-N floors cannot -- the gate takes the median pair overhead.
// Many short pairs beat few long ones: a scheduler burst lands in one
// pair and the median shrugs it off, and the median's noise falls with
// sqrt(pairs) while the total runtime stays fixed. Tracing is
// held off for the duration so the row isolates the profiler's own cost:
// the request stores, the self-sample stack walks and the ring
// publishes. The poll-site fast path (two relaxed loads) runs in both
// variants -- this row prices *sampling*; the noprofiler build leg
// (-DIJVM_DISABLE_PROFILER) is what removes the polls themselves.
struct ProfilerOverheadRow {
  double on_per_op = 0.0;
  double off_per_op = 0.0;
  double overhead_pct = 0.0;
  double profiler_available = 0.0;
  double ops = 0.0;
};

double medianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

ProfilerOverheadRow measureProfilerOverhead(MicroSetup& jit, i32 calls_per_rep,
                                            int pairs) {
  ProfilerOverheadRow row;
#ifndef IJVM_DISABLE_PROFILER
  row.profiler_available = 1.0;
#endif
  row.ops = static_cast<double>(calls_per_rep);
  obs::Profiler* prof = jit.platform->vm->profiler();
  obs::setTraceEnabled(false);
  auto timeOne = [&](bool on) {
    if (prof != nullptr) prof->setEnabled(on);
    const i64 t0 = nowNs();
    jit.comm->runIJvm(calls_per_rep);
    return static_cast<double>(nowNs() - t0);
  };
  std::vector<double> on_ns;
  std::vector<double> off_ns;
  std::vector<double> pair_pct;
  for (int rep = 0; rep < pairs; ++rep) {
    on_ns.push_back(timeOne(true));
    off_ns.push_back(timeOne(false));
    pair_pct.push_back(pct(on_ns.back(), off_ns.back()));
  }
  if (prof != nullptr) prof->setEnabled(true);
  obs::setTraceEnabled(true);
  row.on_per_op = medianOf(on_ns) / row.ops;
  row.off_per_op = medianOf(off_ns) / row.ops;
  row.overhead_pct = medianOf(pair_pct);
  return row;
}

void printProfilerOverhead(const ProfilerOverheadRow& row) {
#ifdef IJVM_DISABLE_PROFILER
  std::printf("note: built with IJVM_DISABLE_PROFILER -- both columns run "
              "unprofiled code\n");
#endif
  std::printf("%-26s %12s %13s %10s\n", "micro-benchmark", "profiled ns",
              "unprofiled ns", "overhead");
  std::printf("%-26s %12.1f %13.1f %+9.1f%%\n", "inter-isolate call",
              row.on_per_op, row.off_per_op, row.overhead_pct);
}

void addProfilerOverheadJson(BenchJson& json, const ProfilerOverheadRow& row) {
  json.add("profiler-overhead",
           {{"profiled_ns_per_op", row.on_per_op},
            {"unprofiled_ns_per_op", row.off_per_op},
            {"overhead_pct", row.overhead_pct},
            {"profiler_available", row.profiler_available},
            {"ops", row.ops}});
}

// `--smoke`: the CI profiler-overhead gate (ISSUE 10). Boots only the
// jit-ladder setup, measures the row above on the inter-isolate call
// loop, writes it to BENCH_fig1_profiler_smoke.json, and fails the
// process if the sampler's enabled overhead exceeds the 2% budget. With
// the profiler compiled out both variants run identical code, so the
// gate degenerates to timer noise around 0% and is not judged.
int runSmoke() {
  const i32 kCallsPerRep = 125000;  // ~13 ms per rep
  const int kPairs = 64;
  printHeader(
      "Profiler-overhead smoke gate: sampling on vs off (budget <= 2%)");
  MicroSetup jit(true, ExecEngine::Jit, [](VmOptions& o) {
    o.fusion_threshold = 0;
    o.jit_threshold = 1;
  });
  // Warm past promotion so the gate times steady-state tier-3 code, not
  // the compile ramp.
  jit.comm->runIJvm(1000000);
  const ProfilerOverheadRow row =
      measureProfilerOverhead(jit, kCallsPerRep, kPairs);
  printProfilerOverhead(row);
  BenchJson json;
  addProfilerOverheadJson(json, row);
  const std::string out_path =
      bench::benchOutPath("BENCH_fig1_profiler_smoke.json");
  if (!json.write(out_path)) {
    std::printf("failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  const bool ok = row.profiler_available == 0.0 || row.overhead_pct <= 2.0;
  std::printf("gate: %s\n", ok ? "PASS (profiler overhead within the 2% budget)"
                               : "FAIL (profiler overhead above 2%)");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return runSmoke();
  }
  const i32 kCalls = 1000000;  // "performing the same operation a million times"
  const i32 kAllocs = 300000;
  const i32 kStatics = 1000000;
  const int kReps = 7;  // min-of-7: the migration delta is ~10 ns on a
                        // ~175 ns interpreted call, so noise control matters

  MicroSetup isolated(true);
  MicroSetup shared(false);

  struct Row {
    const char* name;
    i64 iso_ns;
    i64 shr_ns;
    i64 ops;
    const char* paper;
  };
  std::vector<Row> rows;

  // Intra- and inter-isolate calls ride on the comm harness loops
  // (same invokeinterface bytecode; only the callee's isolate differs).
  rows.push_back({"intra-isolate call",
                  bestOf(kReps, [&] { isolated.comm->runLocal(kCalls); }),
                  bestOf(kReps, [&] { shared.comm->runLocal(kCalls); }), kCalls,
                  "+14%"});
  rows.push_back({"inter-isolate call",
                  bestOf(kReps, [&] { isolated.comm->runIJvm(kCalls); }),
                  bestOf(kReps, [&] { shared.comm->runIJvm(kCalls); }), kCalls,
                  "+16%"});
  rows.push_back({"object allocation",
                  bestOf(kReps, [&] { isolated.run("allocMany", kAllocs); }),
                  bestOf(kReps, [&] { shared.run("allocMany", kAllocs); }),
                  kAllocs, "+18%"});
  rows.push_back({"static variable access",
                  bestOf(kReps, [&] { isolated.run("staticMany", kStatics); }),
                  bestOf(kReps, [&] { shared.run("staticMany", kStatics); }),
                  kStatics, "+46% unopt / <1% opt"});
  rows.push_back({"pure arithmetic (control)",
                  bestOf(kReps, [&] { isolated.run("spinFor", kCalls); }),
                  bestOf(kReps, [&] { shared.run("spinFor", kCalls); }), kCalls,
                  "~0%"});

  printHeader("Figure 1: micro-benchmark cost of I-JVM relative to the baseline");
  std::printf("%-28s %12s %12s %10s   %s\n", "micro-benchmark", "I-JVM ns/op",
              "base ns/op", "overhead", "paper");
  for (const Row& r : rows) {
    std::printf("%-28s %12.1f %12.1f %+9.1f%%   %s\n", r.name,
                static_cast<double>(r.iso_ns) / static_cast<double>(r.ops),
                static_cast<double>(r.shr_ns) / static_cast<double>(r.ops),
                pct(static_cast<double>(r.iso_ns), static_cast<double>(r.shr_ns)),
                r.paper);
  }
  std::printf("\nshape: overheads small and positive; static access pays the TCM\n"
              "indirection + init check; allocation pays accounting/limit checks;\n"
              "the pure-arithmetic control stays near zero.\n");

  // ---- execution tiers side by side (classic/quickened/fused/jit) ----
  // Same bytecode, same isolated-mode VM; only the engine options differ:
  // classic single-switch interpreter, the quickened engine with the
  // fusion tier disabled, the quickened engine with fusion forced on
  // (threshold 0), and the full ladder with the call-threaded JIT forced
  // on. The interpreter-bound loops (arithmetic, statics, calls) are
  // where threaded dispatch + ICs pay off, the tight loops are where
  // fusion cuts the remaining dispatches, and the JIT removes the
  // dispatch machinery itself. Fresh platforms for all sides so heap
  // state from the Figure-1 runs above does not skew the comparison.
  MicroSetup classic(true, ExecEngine::Classic);
  MicroSetup quickened(true, ExecEngine::Quickened,
                       [](VmOptions& o) { o.fusion = false; });
  MicroSetup fused(true, ExecEngine::Quickened,
                   [](VmOptions& o) { o.fusion_threshold = 0; });
  // jit_threshold = 1: promote as soon as possible but keep the
  // production loop heuristic (loop-free trampolines stay at the fused
  // tier; 0 would force-compile them too, which only the differential
  // tests want).
  MicroSetup jit(true, ExecEngine::Jit, [](VmOptions& o) {
    o.fusion_threshold = 0;
    o.jit_threshold = 1;
  });

  struct EngineRow {
    const char* name;
    i64 classic_ns;
    i64 quick_ns;
    i64 fused_ns;
    i64 jit_ns;
    i64 ops;
  };
  std::vector<EngineRow> erows;
  erows.push_back({"pure arithmetic loop",
                   bestOf(kReps, [&] { classic.run("spinFor", kCalls); }),
                   bestOf(kReps, [&] { quickened.run("spinFor", kCalls); }),
                   bestOf(kReps, [&] { fused.run("spinFor", kCalls); }),
                   bestOf(kReps, [&] { jit.run("spinFor", kCalls); }), kCalls});
  erows.push_back({"static variable access",
                   bestOf(kReps, [&] { classic.run("staticMany", kStatics); }),
                   bestOf(kReps, [&] { quickened.run("staticMany", kStatics); }),
                   bestOf(kReps, [&] { fused.run("staticMany", kStatics); }),
                   bestOf(kReps, [&] { jit.run("staticMany", kStatics); }),
                   kStatics});
  erows.push_back({"instance field arithmetic",
                   bestOf(kReps, [&] { classic.run("fieldSum", kStatics); }),
                   bestOf(kReps, [&] { quickened.run("fieldSum", kStatics); }),
                   bestOf(kReps, [&] { fused.run("fieldSum", kStatics); }),
                   bestOf(kReps, [&] { jit.run("fieldSum", kStatics); }),
                   kStatics});
  erows.push_back({"object allocation",
                   bestOf(kReps, [&] { classic.run("allocMany", kAllocs); }),
                   bestOf(kReps, [&] { quickened.run("allocMany", kAllocs); }),
                   bestOf(kReps, [&] { fused.run("allocMany", kAllocs); }),
                   bestOf(kReps, [&] { jit.run("allocMany", kAllocs); }),
                   kAllocs});
  erows.push_back({"intra-isolate call",
                   bestOf(kReps, [&] { classic.comm->runLocal(kCalls); }),
                   bestOf(kReps, [&] { quickened.comm->runLocal(kCalls); }),
                   bestOf(kReps, [&] { fused.comm->runLocal(kCalls); }),
                   bestOf(kReps, [&] { jit.comm->runLocal(kCalls); }), kCalls});
  erows.push_back({"inter-isolate call",
                   bestOf(kReps, [&] { classic.comm->runIJvm(kCalls); }),
                   bestOf(kReps, [&] { quickened.comm->runIJvm(kCalls); }),
                   bestOf(kReps, [&] { fused.comm->runIJvm(kCalls); }),
                   bestOf(kReps, [&] { jit.comm->runIJvm(kCalls); }), kCalls});

  printHeader(
      "Execution tiers: classic / quickened / quickened+fusion / jit");
#ifdef IJVM_DISABLE_FUSION
  std::printf("note: built with IJVM_DISABLE_FUSION -- the 'fused' column "
              "runs the unfused quickened engine\n");
  const double fusion_available = 0.0;
#else
  const double fusion_available = 1.0;
#endif
#ifdef IJVM_DISABLE_JIT
  std::printf("note: built with IJVM_DISABLE_JIT -- the 'jit' column runs "
              "the fused interpreter\n");
  const double jit_available = 0.0;
#else
  const double jit_available = 1.0;
#endif
  std::printf("%-26s %10s %10s %10s %10s %8s %9s\n", "micro-benchmark",
              "classic ns", "quick ns", "fused ns", "jit ns", "j/fused",
              "j/classic");
  BenchJson json;
  for (const EngineRow& r : erows) {
    const double ops = static_cast<double>(r.ops);
    const double classic_ns = static_cast<double>(r.classic_ns) / ops;
    const double quick_ns = static_cast<double>(r.quick_ns) / ops;
    const double fused_ns = static_cast<double>(r.fused_ns) / ops;
    const double jit_ns = static_cast<double>(r.jit_ns) / ops;
    const double quick_speedup = quick_ns > 0 ? classic_ns / quick_ns : 0.0;
    const double fused_vs_quick = fused_ns > 0 ? quick_ns / fused_ns : 0.0;
    const double fused_vs_classic = fused_ns > 0 ? classic_ns / fused_ns : 0.0;
    const double jit_vs_fused = jit_ns > 0 ? fused_ns / jit_ns : 0.0;
    const double jit_vs_classic = jit_ns > 0 ? classic_ns / jit_ns : 0.0;
    std::printf("%-26s %10.1f %10.1f %10.1f %10.1f %7.2fx %8.2fx\n", r.name,
                classic_ns, quick_ns, fused_ns, jit_ns, jit_vs_fused,
                jit_vs_classic);
    json.add(r.name, {{"classic_ns_per_op", classic_ns},
                      {"quickened_ns_per_op", quick_ns},
                      {"fused_ns_per_op", fused_ns},
                      {"jit_ns_per_op", jit_ns},
                      {"speedup", quick_speedup},
                      {"fused_speedup_vs_quickened", fused_vs_quick},
                      {"fused_speedup_vs_classic", fused_vs_classic},
                      {"jit_speedup_vs_fused", jit_vs_fused},
                      {"jit_speedup_vs_classic", jit_vs_classic},
                      {"fusion_available", fusion_available},
                      {"jit_available", jit_available},
                      {"ops", static_cast<double>(r.ops)}});
  }
  // ---- single-invocation hot loop: jit-with-OSR vs jit-entry-only ----
  // The A6-shaped workload on-stack replacement exists for: ONE call that
  // crosses jit_threshold mid-invocation. With OSR the live frame
  // transfers into compiled code at a back-edge batch flush and the bulk
  // of the call runs as tier-3 thunks; entry-only promotion (osr=false)
  // spends the entire invocation in the fused interpreter, because the
  // compiled code installed mid-call is only reachable at the *next*
  // entry -- which a single-call workload never performs. Default
  // production thresholds; a fresh platform per rep so every measured
  // call really is the method's first.
  const i32 kSingleCall = 2000000;
  auto singleHotCall = [&](bool osr_on) {
    i64 best = -1;
    for (int r = 0; r < kReps; ++r) {
      MicroSetup fresh(true, ExecEngine::Jit,
                       [osr_on](VmOptions& o) { o.osr = osr_on; });
      i64 dt = fresh.run("spinFor", kSingleCall);
      if (best < 0 || dt < best) best = dt;
    }
    return best;
  };
  const i64 osr_ns = singleHotCall(true);
  const i64 entry_only_ns = singleHotCall(false);

  printHeader("Single-invocation hot loop: jit-with-OSR vs jit-entry-only");
#ifdef IJVM_DISABLE_OSR
  std::printf("note: built with IJVM_DISABLE_OSR -- the 'osr' column runs "
              "entry-only promotion\n");
  const double osr_available = 0.0;
#else
  const double osr_available = jit_available;
#endif
  {
    const double ops = static_cast<double>(kSingleCall);
    const double osr_per_op = static_cast<double>(osr_ns) / ops;
    const double entry_per_op = static_cast<double>(entry_only_ns) / ops;
    const double speedup = osr_per_op > 0 ? entry_per_op / osr_per_op : 0.0;
    std::printf("%-26s %10s %14s %9s\n", "micro-benchmark", "osr ns",
                "entry-only ns", "osr gain");
    std::printf("%-26s %10.1f %14.1f %8.2fx\n", "single-call hot loop",
                osr_per_op, entry_per_op, speedup);
    json.add("single-call hot loop",
             {{"jit_osr_ns_per_op", osr_per_op},
              {"jit_entry_only_ns_per_op", entry_per_op},
              {"osr_speedup_vs_entry_only", speedup},
              {"osr_available", osr_available},
              {"ops", ops}});
  }

  // ---- fig2 SPEC analogs: fused tier vs the full jit ladder ----
  // Records what the jit tier (including its peepholes -- most recently
  // the GETFIELD_Q+arith pair) buys on the paper's Figure-2 SPEC JVM98
  // analog suite, not just on micro-loops. Reduced size + min-of-3 keeps
  // the bench fast; the jit column uses production thresholds scaled to
  // promote early (the same configuration as the micro rows above).
  printHeader("Figure-2 SPEC analogs: fused tier vs jit ladder");
  std::printf("%-12s %12s %12s %9s\n", "benchmark", "fused ms", "jit ms",
              "jit gain");
  for (const SpecWorkload& wl : specWorkloads()) {
    const i32 size = std::max(1, wl.default_size / 4);
    auto timeIt = [&](ExecEngine engine) {
      VmOptions o = VmOptions::isolated();
      o.exec_engine = engine;
      o.fusion_threshold = 0;
      o.jit_threshold = 1;
      o.gc_threshold = 64u << 20;
      o.heap_limit = 512u << 20;
      VM vm(o);
      installSystemLibrary(vm);
      ClassLoader* app = vm.registry().newLoader("spec");
      vm.createIsolate(app, "spec");
      // Warm-up resolves pool entries, initializes classes and promotes.
      runSpecWorkload(vm, vm.mainThread(), app, wl, std::max(1, size / 8));
      return bestOf(3, [&] {
        runSpecWorkload(vm, vm.mainThread(), app, wl, size);
      });
    };
    const i64 fused_ns = timeIt(ExecEngine::Quickened);
    const i64 jit_ns = timeIt(ExecEngine::Jit);
    const double gain =
        jit_ns > 0 ? static_cast<double>(fused_ns) / static_cast<double>(jit_ns)
                   : 0.0;
    std::printf("%-12s %12.2f %12.2f %8.2fx\n", wl.name.c_str(),
                fused_ns / 1e6, jit_ns / 1e6, gain);
    json.add("spec:" + wl.name,
             {{"fused_ms", fused_ns / 1e6},
              {"jit_ms", jit_ns / 1e6},
              {"jit_speedup_vs_fused", gain},
              {"jit_available", jit_available},
              {"size", static_cast<double>(size)}});
  }

  // ---- trace overhead: the obs subsystem's cost on the hottest path ----
  // The inter-isolate call is the only traced operation that runs at
  // per-call frequency (sampled 1 in 256, src/obs/trace.h); everything
  // else the trace records is already a platform-scale event. Measuring
  // the call loop with tracing on vs off therefore bounds the
  // worst-case enabled overhead. Budget: <= 2%. With IJVM_DISABLE_TRACE
  // both runs execute identical code and the row reads ~0.
  printHeader("Trace overhead: obs event tracing on vs off (budget <= 2%)");
#ifdef IJVM_DISABLE_TRACE
  const double trace_available = 0.0;
  std::printf("note: built with IJVM_DISABLE_TRACE -- both columns run "
              "untraced code\n");
#else
  const double trace_available = 1.0;
#endif
  {
    // Interleave traced/untraced reps (on, off, on, off, ...) instead of
    // timing two sequential min-of-N blocks: on a shared box the clock
    // drifts a few percent between phases, which a sequential A..A B..B
    // layout reports as fake overhead. Alternation puts both variants
    // under the same drift; min-of-N per variant then compares like with
    // like.
    i64 traced_ns = -1;
    i64 untraced_ns = -1;
    for (int rep = 0; rep < 2 * kReps; ++rep) {
      const bool on = (rep & 1) == 0;
      obs::setTraceEnabled(on);
      const i64 t0 = nowNs();
      jit.comm->runIJvm(kCalls);
      const i64 dt = nowNs() - t0;
      i64& best = on ? traced_ns : untraced_ns;
      if (best < 0 || dt < best) best = dt;
    }
    obs::setTraceEnabled(true);
    const double ops = static_cast<double>(kCalls);
    const double on_per_op = static_cast<double>(traced_ns) / ops;
    const double off_per_op = static_cast<double>(untraced_ns) / ops;
    const double overhead = pct(on_per_op, off_per_op);
    std::printf("%-26s %12s %12s %10s\n", "micro-benchmark", "traced ns",
                "untraced ns", "overhead");
    std::printf("%-26s %12.1f %12.1f %+9.1f%%\n", "inter-isolate call",
                on_per_op, off_per_op, overhead);
    json.add("trace-overhead",
             {{"traced_ns_per_op", on_per_op},
              {"untraced_ns_per_op", off_per_op},
              {"overhead_pct", overhead},
              {"trace_available", trace_available},
              {"ops", ops}});
  }

  // ---- profiler overhead: the sampler's cost on the same hot path ----
  // Same loop, same interleaving discipline as the trace row above, but
  // toggling the sampling profiler instead of the trace. Budget: <= 2%
  // (`--smoke` runs only this row and gates on it in CI). With
  // IJVM_DISABLE_PROFILER both runs execute identical code and the row
  // reads ~0.
  printHeader("Profiler overhead: sampling profiler on vs off (budget <= 2%)");
  {
    const ProfilerOverheadRow prow =
        measureProfilerOverhead(jit, kCalls / 8, 64);
    printProfilerOverhead(prow);
    addProfilerOverheadJson(json, prow);
  }

  const std::string out_path = bench::benchOutPath("BENCH_exec.json");
  if (json.write(out_path)) {
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("\nfailed to write %s\n", out_path.c_str());
  }
  return 0;
}
