// Section 4.4 -- limits of the resource-accounting design, reproduced on
// purpose. Three experiments:
//
//  1. CPU time: bundle M calls a function of bundle A a million times; the
//     sampler charges CPU to whichever isolate a thread is in, so both are
//     charged, the callee more (paper observed ~75% A / 25% M).
//  2. Garbage collection: A's function allocates and returns an object;
//     since allocation happens while the thread is *in* A, the collections
//     M's call storm provokes are charged to A.
//  3. Memory: M's service returns a large object that callers retain; the
//     GC charges it to the first isolate that references it -- the caller
//     -- not to M.
#include "bench_util.h"
#include "bytecode/builder.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

struct TwoBundles {
  BenchPlatform* p;
  Bundle* provider;
  Bundle* client;
};

// Provider exporting service `svc` implementing api_iface.mk()Ljava/lang/Object;
// with body `mk_body`; client with static grabAll(I)V calling mk() n times
// and (optionally) retaining the last result in a static.
TwoBundles makeCallPair(BenchPlatform& p, const std::string& tag,
                        const std::function<void(MethodBuilder&)>& mk_body,
                        bool retain) {
  ClassLoader* shared = p.fw->frameworkIsolate()->loader;
  std::string iface = "api_" + tag + "/Svc";
  if (shared->findLocal(iface) == nullptr) {
    ClassBuilder cb(iface, "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("mk", "()Ljava/lang/Object;");
    shared->define(cb.build());
  }

  BundleDescriptor provider;
  provider.symbolic_name = tag + ".provider";
  {
    ClassBuilder cb(tag + "_p/Impl");
    cb.addInterface(iface);
    auto& mk = cb.method("mk", "()Ljava/lang/Object;");
    mk_body(mk);
    provider.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(tag + "_p/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr(tag + ".svc");
    start.newDefault(tag + "_p/Impl");
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    provider.classes.push_back(cb.build());
    provider.activator = tag + "_p/Activator";
  }

  BundleDescriptor client;
  client.symbolic_name = tag + ".client";
  std::string ccls = tag + "_c/Client";
  {
    ClassBuilder cb(ccls);
    cb.field("svc", "L" + iface + ";", ACC_PUBLIC | ACC_STATIC);
    cb.field("held", "Ljava/lang/Object;", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("grabAll", "(I)V", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.bind(loop).iload(0).ifle(done);
    m.getstatic(ccls, "svc", "L" + iface + ";");
    m.invokeinterface(iface, "mk", "()Ljava/lang/Object;");
    if (retain) {
      m.putstatic(ccls, "held", "Ljava/lang/Object;");
    } else {
      m.pop();
    }
    m.iinc(0, -1).gotoLabel(loop);
    m.bind(done).ret();
    client.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(tag + "_c/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr(tag + ".svc");
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast(iface);
    start.putstatic(ccls, "svc", "L" + iface + ";");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    client.classes.push_back(cb.build());
    client.activator = tag + "_c/Activator";
  }

  TwoBundles tb;
  tb.p = &p;
  tb.provider = p.fw->install(std::move(provider));
  tb.client = p.fw->install(std::move(client));
  p.fw->start(tb.provider);
  p.fw->start(tb.client);
  return tb;
}

void grabAll(TwoBundles& tb, const std::string& tag, i32 n) {
  JThread* t = tb.p->vm->mainThread();
  tb.p->vm->callStaticIn(t, tb.client->loader(), tag + "_c/Client", "grabAll",
                         "(I)V", {Value::ofInt(n)});
  IJVM_CHECK(t->pending_exception == nullptr, tb.p->vm->pendingMessage(t));
}

void experiment1() {
  printHeader("4.4 / experiment 1: CPU sampling splits time between caller and callee");
  auto p = bootPlatform(true);
  // A trivial callee: return null.
  TwoBundles tb = makeCallPair(*p, "cpu", [](MethodBuilder& mk) {
    mk.aconstNull().areturn();
  }, /*retain=*/false);

  grabAll(tb, "cpu", 1000000);  // the paper's "a million times"

  u64 callee = tb.provider->isolate()->stats.cpu_samples.load();
  u64 caller = tb.client->isolate()->stats.cpu_samples.load();
  u64 total = callee + caller;
  std::printf("caller (M) samples: %llu (%.0f%%)\n",
              static_cast<unsigned long long>(caller),
              total ? 100.0 * caller / total : 0.0);
  std::printf("callee (A) samples: %llu (%.0f%%)\n",
              static_cast<unsigned long long>(callee),
              total ? 100.0 * callee / total : 0.0);
  std::printf("paper observed ~25%% / ~75%%: both are charged even though only\n"
              "M is malicious -- sampling cannot attribute a call storm.\n");
}

void experiment2() {
  printHeader("4.4 / experiment 2: GC activations are blamed on the allocating callee");
  VmOptions opts = VmOptions::isolated();
  opts.gc_threshold = 256u << 10;  // frequent collections
  auto p = std::make_unique<BenchPlatform>(opts);
  // Callee allocates and returns a fresh object.
  TwoBundles tb = makeCallPair(*p, "gc", [](MethodBuilder& mk) {
    mk.newDefault("java/lang/Object").areturn();
  }, /*retain=*/false);

  grabAll(tb, "gc", 200000);

  u64 callee_gc = tb.provider->isolate()->stats.gc_activations.load();
  u64 caller_gc = tb.client->isolate()->stats.gc_activations.load();
  std::printf("GC activations charged to callee (A): %llu\n",
              static_cast<unsigned long long>(callee_gc));
  std::printf("GC activations charged to caller (M): %llu\n",
              static_cast<unsigned long long>(caller_gc));
  std::printf("paper: \"a garbage collection is triggered on behalf of A\" --\n"
              "the storm M provokes lands on A's account.\n");
}

void experiment3() {
  printHeader("4.4 / experiment 3: returned objects are charged to the callers");
  auto p = bootPlatform(true);
  // Callee returns a large array (the paper used a 100 MB object; we use a
  // 16 MiB one); the client retains it in a static.
  TwoBundles tb = makeCallPair(*p, "mem", [](MethodBuilder& mk) {
    mk.iconst(4 * 1024 * 1024).newarray(Kind::Int).areturn();
  }, /*retain=*/true);

  grabAll(tb, "mem", 1);
  p->vm->collectGarbage(p->vm->mainThread(), nullptr);

  u64 provider_bytes = tb.provider->isolate()->stats.bytes_charged.load();
  u64 client_bytes = tb.client->isolate()->stats.bytes_charged.load();
  std::printf("bytes charged to provider (M): %10.1f KiB\n", provider_bytes / 1024.0);
  std::printf("bytes charged to client   (A): %10.1f KiB\n", client_bytes / 1024.0);
  std::printf("paper: \"the garbage collector does not charge the large objects\n"
              "to M but to the callers of M\" -- the retaining caller pays.\n");
}

}  // namespace

int main() {
  experiment1();
  experiment2();
  experiment3();
  std::printf("\nThese experiments reproduce the accounting *imprecision* the\n"
              "paper documents: the trade-off between preciseness and the cost\n"
              "of call/write barriers (section 4.4).\n");
  return 0;
}
