// ResourceGovernor detection/containment latency (section 4.4 extension).
//
// The paper relies on a human administrator to read per-isolate counters
// and kill misbehaving bundles; it leaves automation as future work. This
// bench measures how long the automated governor takes, per DoS class, to
// (a) *detect* the attack (first over-threshold event for the offender) and
// (b) *contain* it (offender killed and its threads unwound), while a
// well-behaved bundle keeps running and must survive.
//
// Output: one row per attack class with detect/contain latency and the
// collateral check. Latencies scale with the governor tick period (50 ms
// here) times the per-rule strike count -- the point is that they are tens
// of governor ticks, not human minutes.
#include <atomic>
#include <chrono>
#include <thread>

#include "admin/governor.h"
#include "bench_util.h"
#include "obs/report.h"

using namespace ijvm;
using namespace ijvm::bench;
using namespace std::chrono;

namespace {

constexpr i64 kTickMs = 50;

struct Episode {
  const char* attack;
  double detect_ms = -1;
  double contain_ms = -1;
  double unwound_ms = -1;
  bool control_survived = false;
  const char* rule = "";
};

std::unique_ptr<BenchPlatform> bootGoverned() {
  VmOptions opts = VmOptions::isolated();
  opts.gc_threshold = 1u << 20;
  opts.heap_limit = 64u << 20;
  opts.host_thread_cap = 48;
  opts.sampler_period_us = 500;
  return std::make_unique<BenchPlatform>(opts);
}

Episode runEpisode(const char* name, BundleDescriptor attacker_desc,
                   GovernorPolicy policy) {
  Episode ep;
  ep.attack = name;
  auto p = bootGoverned();
  Bundle* control = p->fw->install(makeWellBehavedBundle("control"));
  p->fw->start(control);

  ResourceGovernor gov(*p->fw, std::move(policy));
  // Warm the governor so the attacker's first window is a real delta.
  gov.tick();

  Bundle* attacker = p->fw->install(std::move(attacker_desc));
  p->fw->start(attacker);
  const auto t0 = steady_clock::now();

  auto deadline = t0 + seconds(20);
  std::string kill_rule;
  while (steady_clock::now() < deadline) {
    auto events = gov.tick();
    for (const GovernorEvent& ev : events) {
      if (ev.bundle_id != attacker->id()) continue;
      if (ep.detect_ms < 0) {
        ep.detect_ms =
            duration_cast<microseconds>(steady_clock::now() - t0).count() / 1e3;
      }
      if (ev.acted && ev.action == GovernorAction::Kill) kill_rule = ev.rule_label;
    }
    if (!gov.killed().empty()) {
      ep.contain_ms =
          duration_cast<microseconds>(steady_clock::now() - t0).count() / 1e3;
      break;
    }
    std::this_thread::sleep_for(milliseconds(kTickMs));
  }

  // Wait for the attacker's threads to unwind.
  if (ep.contain_ms >= 0) {
    auto unwind_deadline = steady_clock::now() + seconds(10);
    while (attacker->isolate()->stats.live_threads.load() != 0 &&
           steady_clock::now() < unwind_deadline) {
      std::this_thread::sleep_for(milliseconds(2));
    }
    if (attacker->isolate()->stats.live_threads.load() == 0) {
      ep.unwound_ms =
          duration_cast<microseconds>(steady_clock::now() - t0).count() / 1e3;
    }
  }
  ep.control_survived = control->state() == BundleState::Active &&
                        control->isolate()->isActive();
  static std::string rule_keep;
  rule_keep = kill_rule;
  ep.rule = rule_keep.c_str();

  p->vm->shutdownAllThreads();
  return ep;
}

// Latency columns go through the obs report formatter (obs/report.h) so
// the bench reads like the platform report: humanized units, "-" for a
// phase the episode never reached.
std::string phaseMs(double ms) {
  if (ms < 0) return "-";
  return obs::humanNs(static_cast<u64>(ms * 1e6));
}

void printEpisode(const Episode& ep) {
  std::printf("%-22s %-10s %13s %15s %15s   %s\n", ep.attack, ep.rule,
              phaseMs(ep.detect_ms).c_str(), phaseMs(ep.contain_ms).c_str(),
              phaseMs(ep.unwound_ms).c_str(),
              ep.control_survived ? "yes" : "NO");
}

}  // namespace

int main() {
  printHeader(
      "Governor: automatic DoS detection latency (paper 4.4 future work)");
  std::printf("governor tick period: %lld ms; standard policy\n\n",
              static_cast<long long>(kTickMs));
  std::printf("%-22s %-10s %13s %15s %15s   %s\n", "attack", "rule", "detect",
              "contain", "unwound", "control survived");

  // A6: infinite loop.
  printEpisode(runEpisode("A6 infinite loop", makeCpuHogBundle("atk"),
                          GovernorPolicy::standard()));
  // A4: allocation churn.
  printEpisode(runEpisode("A4 alloc churn", makeChurnBundle("atk"),
                          GovernorPolicy::standard()));
  // A3: memory hog (12 MiB retention against a 2 MiB budget).
  {
    GovernorPolicy pol = GovernorPolicy::standard(2u << 20);
    pol.gc_if_allocated_bytes = 256u << 10;
    printEpisode(runEpisode("A3 memory hog",
                            makeMemoryHogBundle("atk", 16384, 96), pol));
  }
  // A5: thread bomb (12 threads against a budget of 6).
  printEpisode(runEpisode("A5 thread bomb", makeThreadBombBundle("atk", 12),
                          GovernorPolicy::standard(4u << 20, 6)));
  // A7: hanging service -- a caller migrates into the bundle and never
  // returns; the hung-callers signal trips and the kill returns control.
  {
    Episode ep;
    ep.attack = "A7 hanging service";
    auto p = bootGoverned();
    Bundle* control = p->fw->install(makeWellBehavedBundle("control"));
    p->fw->start(control);
    defineCounterApi(*p->fw);
    ResourceGovernor gov(*p->fw, GovernorPolicy::standard());
    gov.tick();

    Bundle* attacker = p->fw->install(makeHangServiceBundle("atk", "svc"));
    Bundle* client = p->fw->install(makeCounterClient("cli", "svc"));
    p->fw->start(attacker);
    p->fw->start(client);

    // The victim call that will hang inside the attacker.
    std::atomic<bool> returned{false};
    std::atomic<i32> result{0};
    JThread* ct = p->vm->attachThread("caller", p->fw->frameworkIsolate());
    VM* vmp = p->vm.get();
    ClassLoader* cl = client->loader();
    std::thread caller([&returned, &result, vmp, ct, cl] {
      Value r = vmp->callStaticIn(ct, cl, bundlePkg("cli") + "/Client",
                                  "callGuarded", "()I", {});
      result.store(r.kind == Kind::Int ? r.asInt() : -2);
      returned.store(true, std::memory_order_release);
      vmp->detachThread(ct);
    });

    const auto t0 = steady_clock::now();
    auto deadline = t0 + seconds(20);
    std::string kill_rule;
    while (steady_clock::now() < deadline && gov.killed().empty()) {
      for (const GovernorEvent& ev : gov.tick()) {
        if (ev.bundle_id != attacker->id()) continue;
        if (ep.detect_ms < 0) {
          ep.detect_ms =
              duration_cast<microseconds>(steady_clock::now() - t0).count() /
              1e3;
        }
        if (ev.acted && ev.action == GovernorAction::Kill)
          kill_rule = ev.rule_label;
      }
      std::this_thread::sleep_for(milliseconds(kTickMs));
    }
    if (!gov.killed().empty()) {
      ep.contain_ms =
          duration_cast<microseconds>(steady_clock::now() - t0).count() / 1e3;
    }
    // "Unwound" here means the hung caller got control back (-1 from the
    // guarded call -- it caught StoppedIsolateException).
    auto unwind_deadline = steady_clock::now() + seconds(10);
    while (!returned.load(std::memory_order_acquire) &&
           steady_clock::now() < unwind_deadline) {
      std::this_thread::sleep_for(milliseconds(2));
    }
    if (returned.load() && result.load() == -1) {
      ep.unwound_ms =
          duration_cast<microseconds>(steady_clock::now() - t0).count() / 1e3;
    }
    caller.join();
    ep.control_survived = control->state() == BundleState::Active;
    static std::string rule_keep7;
    rule_keep7 = kill_rule;
    ep.rule = rule_keep7.c_str();
    p->vm->shutdownAllThreads();
    printEpisode(ep);
  }

  std::printf(
      "\nshape check: every attack detected and contained within seconds\n"
      "(tens of %lld ms governor ticks x strike hysteresis), the control\n"
      "bundle survives every episode. The paper's manual administrator is\n"
      "replaced by the threshold policy of src/admin/governor.h.\n",
      static_cast<long long>(kTickMs));
  return 0;
}
