// Ablation: memory-accounting policy vs blame correctness vs GC cost.
//
// Section 3.2 rejects splitting shared-object charges because it "would
// introduce a new list traversal for all objects during garbage collection",
// and section 4.4 (experiment 3) shows the resulting misattribution: a
// provider returning a large object is never billed for it. This bench
// quantifies both sides of the trade-off the paper states:
//
//  part 1 -- blame: the experiment-3 scenario (provider M's service returns
//            a 1 MiB object per call; clients retain them) under each
//            AccountingPolicy. FirstReference bills the callers (the paper's
//            imprecision), CreatorPays bills M, DividedShared bills whoever
//            still *reaches* the objects.
//  part 2 -- cost: wall time of one GC accounting pass over a heap with a
//            controlled fraction of objects shared between 8 isolates.
//            DividedShared pays the extra fixpoint propagation the paper
//            declined; FirstReference/CreatorPays stay one-traversal.
#include <memory>

#include "bench_util.h"
#include "bytecode/builder.h"
#include "heap/object.h"
#include "support/strf.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

// ------------------------------------------------- part 1: blame

void blameRow(AccountingPolicy policy) {
  VmOptions opts;
  opts.accounting_policy = policy;
  opts.gc_threshold = 128u << 20;
  opts.heap_limit = 512u << 20;
  BenchPlatform p(opts);

  ClassLoader* shared = p.fw->frameworkIsolate()->loader;
  if (shared->findLocal("abl/Maker") == nullptr) {
    ClassBuilder cb("abl/Maker", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("mk", "()Ljava/lang/Object;");
    shared->define(cb.build());
  }

  BundleDescriptor provider;
  provider.symbolic_name = "M";
  {
    ClassBuilder cb("m/Impl");
    cb.addInterface("abl/Maker");
    cb.method("mk", "()Ljava/lang/Object;")
        .iconst(250000)
        .newarray(Kind::Int)
        .areturn();
    provider.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("m/Act");
    cb.addInterface("osgi/BundleActivator");
    auto& s = cb.method("start", "(Losgi/BundleContext;)V");
    s.aload(1).ldcStr("maker").newDefault("m/Impl");
    s.invokevirtual("osgi/BundleContext", "registerService",
                    "(Ljava/lang/String;Ljava/lang/Object;)V");
    s.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    provider.classes.push_back(cb.build());
    provider.activator = "m/Act";
  }
  Bundle* mb = p.fw->install(std::move(provider));
  p.fw->start(mb);

  // Two client bundles, each retaining 4 results (8 MiB total).
  std::vector<Bundle*> clients;
  for (int c = 0; c < 2; ++c) {
    std::string pkg = c == 0 ? "ca" : "cb";
    BundleDescriptor client;
    client.symbolic_name = pkg;
    {
      ClassBuilder cb(pkg + "/Main");
      cb.field("kept", "[Ljava/lang/Object;", ACC_PUBLIC | ACC_STATIC);
      cb.field("svc", "Labl/Maker;", ACC_PUBLIC | ACC_STATIC);
      auto& grab = cb.method("grabAll", "()V", ACC_PUBLIC | ACC_STATIC);
      grab.iconst(4).anewarray("java/lang/Object");
      grab.putstatic(pkg + "/Main", "kept", "[Ljava/lang/Object;");
      for (int i = 0; i < 4; ++i) {
        grab.getstatic(pkg + "/Main", "kept", "[Ljava/lang/Object;");
        grab.iconst(i);
        grab.getstatic(pkg + "/Main", "svc", "Labl/Maker;");
        grab.invokeinterface("abl/Maker", "mk", "()Ljava/lang/Object;");
        grab.aastore();
      }
      grab.ret();
      client.classes.push_back(cb.build());
    }
    {
      ClassBuilder cb(pkg + "/Act");
      cb.addInterface("osgi/BundleActivator");
      auto& s = cb.method("start", "(Losgi/BundleContext;)V");
      s.aload(1).ldcStr("maker");
      s.invokevirtual("osgi/BundleContext", "getService",
                      "(Ljava/lang/String;)Ljava/lang/Object;");
      s.checkcast("abl/Maker").putstatic(pkg + "/Main", "svc", "Labl/Maker;");
      s.ret();
      cb.method("stop", "(Losgi/BundleContext;)V").ret();
      client.classes.push_back(cb.build());
      client.activator = pkg + "/Act";
    }
    Bundle* b = p.fw->install(std::move(client));
    p.fw->start(b);
    clients.push_back(b);
  }

  JThread* t = p.vm->mainThread();
  for (int c = 0; c < 2; ++c) {
    std::string pkg = c == 0 ? "ca" : "cb";
    p.vm->callStaticIn(t, clients[static_cast<size_t>(c)]->loader(),
                       pkg + "/Main", "grabAll", "()V", {});
  }
  p.vm->collectGarbage(t, nullptr);

  auto mib = [](u64 bytes) { return static_cast<double>(bytes) / (1u << 20); };
  std::printf("%-16s %12.2f MiB %12.2f MiB %12.2f MiB\n",
              accountingPolicyName(policy),
              mib(p.vm->reportFor(mb->isolate()).bytes_charged),
              mib(p.vm->reportFor(clients[0]->isolate()).bytes_charged),
              mib(p.vm->reportFor(clients[1]->isolate()).bytes_charged));
}

// ------------------------------------------------- part 2: GC pass cost

double gcCostMs(AccountingPolicy policy, int shared_pct) {
  VmOptions opts;
  opts.accounting_policy = policy;
  opts.gc_threshold = 512u << 20;
  opts.heap_limit = 1024u << 20;
  VM vm(opts);
  installSystemLibrary(vm);

  // 8 isolates retaining 40k small objects total; shared_pct% of them are
  // referenced by *all* isolates, the rest by exactly one.
  constexpr int kIsolates = 8;
  constexpr int kObjects = 40000;
  std::vector<Isolate*> isos;
  for (int i = 0; i < kIsolates + 1; ++i) {
    ClassLoader* l = vm.registry().newLoader(strf("iso%d", i));
    isos.push_back(vm.createIsolate(l, strf("iso%d", i)));
  }
  JThread* t = vm.mainThread();
  JClass* int_arr = vm.registry().arrayClass("[I");
  for (int i = 0; i < kObjects; ++i) {
    Object* o = vm.allocArrayObject(t, int_arr, 16);
    const bool is_shared = (i % 100) < shared_pct;
    if (is_shared) {
      for (int k = 1; k <= kIsolates; ++k) {
        vm.addGlobalRef(o, isos[static_cast<size_t>(k)]);
      }
    } else {
      vm.addGlobalRef(o, isos[static_cast<size_t>(1 + i % kIsolates)]);
    }
  }

  i64 best = bestOf(5, [&] { vm.collectGarbage(t, nullptr); });
  return static_cast<double>(best) / 1e6;
}

}  // namespace

int main() {
  printHeader("Ablation: accounting policy -- blame for shared objects");
  std::printf("scenario: provider M's service returns 1 MiB objects; two\n"
              "clients retain 4 each (section 4.4 experiment 3)\n\n");
  std::printf("%-16s %16s %16s %16s\n", "policy", "charged to M",
              "client A", "client B");
  blameRow(AccountingPolicy::FirstReference);
  blameRow(AccountingPolicy::CreatorPays);
  blameRow(AccountingPolicy::DividedShared);
  std::printf("\nshape check: FirstReference bills the callers (the paper's\n"
              "documented imprecision); CreatorPays bills M; DividedShared\n"
              "bills the retaining clients evenly.\n");

  printHeader("Ablation: accounting policy -- GC accounting-pass cost");
  std::printf("heap: 40k objects across 8 isolates; varying shared fraction\n\n");
  std::printf("%-16s %14s %14s %14s\n", "policy", "0% shared", "10% shared",
              "50% shared");
  for (AccountingPolicy policy :
       {AccountingPolicy::FirstReference, AccountingPolicy::CreatorPays,
        AccountingPolicy::DividedShared}) {
    std::printf("%-16s %11.2f ms %11.2f ms %11.2f ms\n",
                accountingPolicyName(policy), gcCostMs(policy, 0),
                gcCostMs(policy, 10), gcCostMs(policy, 50));
  }
  std::printf("\nshape check: DividedShared pays an extra mask-propagation\n"
              "traversal that grows with the shared fraction -- the cost the\n"
              "paper declined (section 3.2); the one-pass policies do not.\n");
  return 0;
}
