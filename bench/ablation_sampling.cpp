// Ablation: CPU-sampler period vs attribution quality and overhead.
//
// The paper chose sampling over per-call timing because two syscalls plus a
// lock per inter-isolate call are too expensive (section 3.2). This bench
// quantifies the trade-off on this implementation: for several sampling
// periods, two bundles spin concurrently for a fixed wall-clock window and
// we report how far the sample split is from the ideal 50/50, plus the
// sampler's effect on a single-bundle workload's runtime.
#include "bench_util.h"

using namespace ijvm;
using namespace ijvm::bench;

namespace {

struct SpinSetup {
  std::unique_ptr<BenchPlatform> platform;
  Bundle* a = nullptr;
  Bundle* b = nullptr;

  explicit SpinSetup(i32 sampler_period_us) {
    VmOptions opts = VmOptions::isolated();
    opts.sampler_period_us = sampler_period_us;
    platform = std::make_unique<BenchPlatform>(opts);
    BundleDescriptor da = makeMicroBundle("spin.a");
    BundleDescriptor db = makeMicroBundle("spin.b");
    // Rename the class of the second bundle to avoid loader collisions --
    // each bundle has its own loader, so identical names are fine.
    a = platform->fw->install(std::move(da));
    b = platform->fw->install(std::move(db));
    platform->fw->start(a);
    platform->fw->start(b);
  }

  // Runs spinFor on both bundles from two threads for roughly `ms`.
  void spinBoth(i64 ms) {
    auto run = [&](Bundle* bundle, const char* name) {
      JThread* t = platform->vm->attachThread(name, platform->fw->frameworkIsolate());
      auto deadline = nowNs() + ms * 1000000;
      while (nowNs() < deadline) {
        platform->vm->callStaticIn(t, bundle->loader(), "micro/Bench", "spinFor",
                                   "(I)I", {Value::ofInt(20000)});
        t->pending_exception = nullptr;
      }
      platform->vm->detachThread(t);
    };
    std::thread ta([&] { run(a, "spin-a"); });
    std::thread tb([&] { run(b, "spin-b"); });
    ta.join();
    tb.join();
  }
};

}  // namespace

int main() {
  printHeader("Ablation: CPU sampling period vs attribution accuracy");
  std::printf("%-12s %10s %10s %12s %14s\n", "period", "A samples", "B samples",
              "split error", "samples/sec");
  for (i32 period_us : {250, 500, 1000, 2000, 4000}) {
    SpinSetup setup(period_us);
    setup.spinBoth(400);
    u64 sa = setup.a->isolate()->stats.cpu_samples.load();
    u64 sb = setup.b->isolate()->stats.cpu_samples.load();
    u64 total = sa + sb;
    double err = total > 0
                     ? std::abs(50.0 - 100.0 * static_cast<double>(sa) /
                                           static_cast<double>(total))
                     : 100.0;
    std::printf("%9d us %10llu %10llu %11.1f%% %14.0f\n", period_us,
                static_cast<unsigned long long>(sa),
                static_cast<unsigned long long>(sb), err, total / 0.4);
  }
  std::printf("\nshape: finer periods gather more samples (better confidence)\n"
              "at higher sampler overhead; all periods keep the split near the\n"
              "scheduler's actual time division.\n");
  return 0;
}
