#!/usr/bin/env python3
"""Docs lint for README.md and docs/*.md.

Three checks, all over markdown inline links ([text](target)):

1. Broken relative links: a target that is not an external URL must
   resolve (relative to the linking file) to an existing path.
2. Dangling anchors: a target with a #fragment (pure `#frag` or
   `file.md#frag`) must name a heading that exists in the target file.
   Anchors are derived GitHub-style: lowercase, punctuation stripped,
   spaces to hyphens, duplicates suffixed -1, -2, ...
3. Reachability: every docs/*.md file must be reachable from README.md
   by following relative markdown links (transitively). An orphaned doc
   is a doc nobody can find.

Exits non-zero listing every violation.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_anchor(text: str) -> str:
    """GitHub-style heading slug: strip markup, lowercase, drop
    punctuation, hyphenate spaces."""
    # Strip inline code/emphasis markers and links ([text](url) -> text).
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md: Path, cache: dict) -> set:
    if md in cache:
        return cache[md]
    counts: dict = {}
    anchors = set()
    in_code = False
    for line in md.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        base = github_anchor(m.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        anchors.add(base if n == 0 else f"{base}-{n}")
    cache[md] = anchors
    return anchors


def lint(repo_root: Path) -> int:
    readme = repo_root / "README.md"
    docs = sorted((repo_root / "docs").glob("*.md"))
    files = [readme] + docs
    problems = []
    checked = 0
    anchor_cache: dict = {}
    # file -> set of md files it links to (for the reachability pass)
    md_links: dict = {f: set() for f in files}

    for md in files:
        if not md.exists():
            continue
        in_code = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(EXTERNAL):
                    continue
                checked += 1
                path_part, _, frag = target.partition("#")
                if path_part:
                    resolved = (md.parent / path_part).resolve()
                    if not resolved.exists():
                        problems.append(
                            f"{md.relative_to(repo_root)}:{lineno}: broken "
                            f"link -> {target}"
                        )
                        continue
                    if resolved.suffix == ".md":
                        md_links[md].add(resolved)
                else:
                    resolved = md.resolve()
                if frag and resolved.suffix == ".md":
                    if frag not in anchors_of(resolved, anchor_cache):
                        problems.append(
                            f"{md.relative_to(repo_root)}:{lineno}: dangling "
                            f"anchor -> {target}"
                        )

    # Reachability: BFS over markdown links from README.
    reachable = set()
    frontier = [readme.resolve()]
    by_resolved = {f.resolve(): f for f in files if f.exists()}
    while frontier:
        cur = frontier.pop()
        if cur in reachable:
            continue
        reachable.add(cur)
        src = by_resolved.get(cur)
        if src is not None:
            frontier.extend(md_links.get(src, ()))
    for doc in docs:
        if doc.resolve() not in reachable:
            problems.append(
                f"{doc.relative_to(repo_root)}: not reachable from README.md "
                f"via markdown links (orphaned doc)"
            )

    for p in problems:
        print(p, file=sys.stderr)
    print(
        f"docs-lint: {checked} relative links checked, "
        f"{len(docs)} docs files, {len(problems)} problems"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    sys.exit(lint(root.resolve()))
