#!/usr/bin/env python3
"""Docs lint: fail on broken relative links in README.md and docs/*.md.

Checks every markdown inline link ([text](target)) whose target is not an
external URL or a pure fragment. Relative targets are resolved against the
linking file's directory; an optional #fragment is stripped before the
existence check (fragments themselves are not validated). Exits non-zero
listing every broken link.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def lint(repo_root: Path) -> int:
    files = [repo_root / "README.md"] + sorted((repo_root / "docs").glob("*.md"))
    broken = []
    checked = 0
    for md in files:
        if not md.exists():
            continue
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                checked += 1
                path = target.split("#", 1)[0]
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    broken.append(
                        f"{md.relative_to(repo_root)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    for b in broken:
        print(b, file=sys.stderr)
    print(f"docs-lint: {checked} relative links checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    sys.exit(lint(root.resolve()))
