// ijvm_admin: command-line client for the VM's admin endpoint
// (src/obs/metrics.h AdminServer; docs/observability.md, "Metrics
// endpoint").
//
//   ijvm_admin --port 7421 metrics    # Prometheus exposition
//   ijvm_admin --port 7421 profile    # collapsed stacks (flamegraph.pl)
//   ijvm_admin --port 7421 report     # human platform report
//   ijvm_admin --port 7421 ping
//
// Protocol: one verb per line; the server's response ends with a line
// containing a single ".". The client strips that terminator, so output
// pipes cleanly into promtool / flamegraph.pl.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host HOST] --port PORT <metrics|profile|report|"
               "ping>\n",
               argv0);
}

int runVerb(const std::string& host, int port, const std::string& verb) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<unsigned short>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "ijvm_admin: bad host address \"%s\"\n",
                 host.c_str());
    ::close(fd);
    return 1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "ijvm_admin: connect %s:%d: %s\n", host.c_str(),
                 port, std::strerror(errno));
    ::close(fd);
    return 1;
  }

  const std::string request = verb + "\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) {
      std::perror("send");
      ::close(fd);
      return 1;
    }
    off += static_cast<size_t>(n);
  }

  // Print response lines until the "." terminator (or EOF).
  std::string buf;
  char chunk[4096];
  bool terminated = false;
  while (!terminated) {
    size_t nl;
    while (!terminated && (nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line == ".") {
        terminated = true;
        break;
      }
      std::fputs(line.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    if (terminated) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF before terminator: print what we have
    buf.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return terminated ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string verb;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 1;
    } else {
      verb = arg;
    }
  }
  if (port <= 0 || verb.empty() ||
      (verb != "metrics" && verb != "profile" && verb != "report" &&
       verb != "ping")) {
    usage(argv[0]);
    return 1;
  }
  return runVerb(host, port, verb);
}
