#include "admin/governor.h"

#include <algorithm>
#include <chrono>

#include "exec/code_cache.h"
#include "exec/jit.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "support/strf.h"

namespace ijvm {

const char* actionName(GovernorAction a) {
  switch (a) {
    case GovernorAction::Warn: return "warn";
    case GovernorAction::Kill: return "kill";
    case GovernorAction::PromoteJit: return "promote-jit";
    case GovernorAction::DemoteJit: return "demote-jit";
  }
  return "?";
}

const char* signalName(Signal s) {
  switch (s) {
    case Signal::MemoryCharged: return "memory-charged";
    case Signal::RetainedEstimate: return "retained-estimate";
    case Signal::LiveThreads: return "live-threads";
    case Signal::SleepingThreads: return "sleeping-threads";
    case Signal::HungCallers: return "hung-callers";
    case Signal::CpuShare: return "cpu-share";
    case Signal::GcRate: return "gc-rate";
    case Signal::AllocRate: return "alloc-rate";
    case Signal::AllocBytesRate: return "alloc-bytes-rate";
    case Signal::IoRate: return "io-rate";
    case Signal::ThreadSpawnRate: return "thread-spawn-rate";
    case Signal::MethodInvocationRate: return "method-invocation-rate";
    case Signal::LoopBackEdgeRate: return "loop-back-edge-rate";
    case Signal::JitChurnRate: return "jit-churn-rate";
    case Signal::JitPayoff: return "jit-payoff-rate";
  }
  return "?";
}

GovernorPolicy GovernorPolicy::standard(u64 memory_budget_bytes,
                                        i64 thread_budget,
                                        double cpu_share_limit) {
  GovernorPolicy p;
  // A3: a bundle retaining more than its budget. Two strikes so a burst
  // that the next GC reclaims does not kill the bundle.
  p.rules.push_back({Signal::RetainedEstimate,
                     static_cast<double>(memory_budget_bytes), 2,
                     GovernorAction::Kill, "A3-memory"});
  // A4: sustained GC pressure. Allocation-side corroboration (AllocRate)
  // avoids killing the *victim* of misattributed GC blame (section 4.4
  // experiment 2): gc_activations charge the triggering isolate, which for
  // call-allocated garbage is the callee; the warn rule surfaces it, the
  // kill rule requires the bundle to also be the one allocating.
  p.rules.push_back({Signal::GcRate, 3.0, 2, GovernorAction::Warn, "A4-gc-warn"});
  // Threshold assumes ~50 ms ticks: a churner allocates tens of thousands
  // of objects per tick even when competing with other bundles for CPU; a
  // busy-but-honest service stays orders of magnitude below.
  p.rules.push_back({Signal::AllocRate, 15000.0, 2, GovernorAction::Kill,
                     "A4-alloc"});
  // A5: more live threads than the budget.
  p.rules.push_back({Signal::LiveThreads, static_cast<double>(thread_budget),
                     1, GovernorAction::Kill, "A5-threads"});
  // A6: monopolizing the CPU.
  p.rules.push_back({Signal::CpuShare, cpu_share_limit, 3,
                     GovernorAction::Kill, "A6-cpu"});
  // A7: foreign threads parked inside the bundle (hung callers). A bundle
  // sleeping on its *own* threads is normal; only stuck migrated-in calls
  // count. Three strikes so a slow-but-returning service call passes.
  p.rules.push_back({Signal::HungCallers, 0.5, 3, GovernorAction::Kill,
                     "A7-hang"});
  // Hot-bundle rule: sustained execution-profile rates mark a bundle as
  // interpreter-bound and hot -- and the action is now to *compile* it:
  // PromoteJit pushes the bundle's hot methods onto the promote-to-JIT
  // queue (tier 3, docs/jit.md), the answer for a bundle that is hot but
  // not hostile. The rate doubles as corroboration for an A6 CpuShare
  // kill (a bundle can pin the CPU without loop back-edges only by
  // hanging in a native call, which A7 covers). ~400k back-edges/tick
  // assumes ~50 ms ticks; an honest bursty service stays well below for
  // the 3 consecutive strikes required.
  p.rules.push_back({Signal::LoopBackEdgeRate, 400000.0, 3,
                     GovernorAction::PromoteJit, "hot-loop"});
  // Code-cache thrash: a bundle whose methods keep getting compiled and
  // demoted (or deopt-recompiled) several times per tick is burning
  // compile bandwidth and evicting stable tenants. DemoteJit raises its
  // re-heat floor, so the bundle must earn a full jit_threshold of fresh
  // heat before it competes for cache budget again -- the churn loop
  // breaks without killing anyone.
  p.rules.push_back({Signal::JitChurnRate, 8.0, 3, GovernorAction::DemoteJit,
                     "jit-thrash"});
  // Payoff losses: the engine keeps measuring this bundle's compiled code
  // slower than its own fused tier and reverting the promotions
  // (docs/jit.md, "Payoff"). Each individual demotion already handled
  // itself; a sustained *rate* means the bundle's working set is
  // systematically compile-hostile, which the administrator should see.
  // Warn only -- the per-method jit_payoff_max_demotes pin converges the
  // demote loop without governor force.
  p.rules.push_back({Signal::JitPayoff, 2.0, 2, GovernorAction::Warn,
                     "jit-payoff"});
  return p;
}

ResourceGovernor::ResourceGovernor(Framework& fw, GovernorPolicy policy)
    : fw_(fw), policy_(std::move(policy)) {
  // The governor acts as the administrator: it needs an Isolate0-privileged
  // guest identity of its own, because kills/GCs may run on its watcher
  // thread rather than the framework's main thread.
  admin_ = fw_.vm().attachThread("governor", fw_.frameworkIsolate());
}

ResourceGovernor::~ResourceGovernor() {
  stop();
  fw_.vm().detachThread(admin_);
}

void ResourceGovernor::onKill(std::function<void(const GovernorEvent&)> cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_kill_ = std::move(cb);
}

double ResourceGovernor::evaluate(const GovernorRule& rule,
                                  const IsolateReport& now,
                                  const BundleTrack& track,
                                  u64 total_cpu_delta,
                                  bool profile_based,
                                  double hung_callers) const {
  const IsolateReport& prev = track.last;
  auto delta = [&](u64 IsolateReport::*field) -> double {
    u64 cur = now.*field;
    u64 old = track.has_last ? prev.*field : 0;
    return cur >= old ? static_cast<double>(cur - old) : 0.0;
  };
  switch (rule.signal) {
    case Signal::MemoryCharged:
      return static_cast<double>(now.bytes_charged);
    case Signal::RetainedEstimate:
      // bytes_charged is as of the last GC; bytes allocated since then are
      // an upper bound on growth (some may already be garbage). A churner
      // that keeps triggering collections keeps bytes_since_gc small, so it
      // trips the A4 allocation rules instead of this one.
      return static_cast<double>(now.bytes_charged + now.bytes_since_gc);
    case Signal::LiveThreads:
      return static_cast<double>(now.live_threads);
    case Signal::SleepingThreads:
      return static_cast<double>(now.sleeping_threads);
    case Signal::HungCallers:
      return hung_callers;
    case Signal::CpuShare: {
      if (total_cpu_delta == 0) return 0.0;
      return delta(profile_based ? &IsolateReport::cpu_profile_samples
                                 : &IsolateReport::cpu_samples) /
             static_cast<double>(total_cpu_delta);
    }
    case Signal::GcRate:
      return delta(&IsolateReport::gc_activations);
    case Signal::AllocRate:
      return delta(&IsolateReport::objects_allocated);
    case Signal::AllocBytesRate:
      return delta(&IsolateReport::bytes_allocated);
    case Signal::IoRate:
      return delta(&IsolateReport::io_bytes_read) +
             delta(&IsolateReport::io_bytes_written);
    case Signal::ThreadSpawnRate:
      return delta(&IsolateReport::threads_created);
    case Signal::MethodInvocationRate:
      return delta(&IsolateReport::method_invocations);
    case Signal::LoopBackEdgeRate:
      return delta(&IsolateReport::loop_back_edges);
    case Signal::JitChurnRate:
      return delta(&IsolateReport::jit_methods_compiled) +
             delta(&IsolateReport::jit_methods_demoted);
    case Signal::JitPayoff:
      return delta(&IsolateReport::jit_payoff_demotions);
  }
  return 0.0;
}

std::vector<GovernorEvent> ResourceGovernor::tick() {
  u64 tick_no = tick_count_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Force a collection if the heap charges are stale (level signals read
  // bytes_charged, which only the GC updates).
  if (policy_.gc_if_allocated_bytes > 0) {
    // bytes_charged is only recomputed by the GC; trigger one when any
    // bundle's allocation counter grew enough since our previous tick.
    u64 allocated_since = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (Bundle* b : fw_.bundles()) {
      if (b->isolate() == nullptr) continue;
      IsolateReport now = fw_.reportFor(b);
      auto it = tracks_.find(b->id());
      u64 old = (it != tracks_.end() && it->second.has_last)
                    ? it->second.last.bytes_allocated
                    : 0;
      if (now.bytes_allocated - old > allocated_since)
        allocated_since = now.bytes_allocated - old;
    }
    if (allocated_since > policy_.gc_if_allocated_bytes) {
      fw_.vm().collectGarbage(admin_, nullptr);
    }
  }

  struct PendingKill {
    Bundle* bundle;
    GovernorEvent event;
  };
  std::vector<GovernorEvent> out;
  std::vector<PendingKill> kills;
  std::vector<Bundle*> promotes;
  std::vector<Bundle*> demotes;

  {
    std::lock_guard<std::mutex> lock(mutex_);

    // Total CPU delta across *all* isolates (including Isolate0) for the
    // share computation. reportAll sums the per-isolate atomic counters,
    // which every mutator (pool workers included) bumps on its own -- the
    // rate signals below therefore aggregate across threads by
    // construction; nothing here reads a single thread's counters.
    u64 total_cpu = 0;
    u64 total_profile = 0;
    for (const IsolateReport& r : fw_.reportAll()) {
      total_cpu += r.cpu_samples;
      total_profile += r.cpu_profile_samples;
    }
    u64 total_cpu_delta =
        has_last_total_cpu_ && total_cpu >= last_total_cpu_
            ? total_cpu - last_total_cpu_
            : 0;
    u64 total_profile_delta =
        has_last_total_cpu_ && total_profile >= last_total_profile_
            ? total_profile - last_total_profile_
            : 0;
    last_total_cpu_ = total_cpu;
    last_total_profile_ = total_profile;
    has_last_total_cpu_ = true;
    // Prefer the safepoint-biased sampling profiler when it actually
    // sampled this interval (obs/profiler.h); a disabled or idle profiler
    // leaves total_profile_delta at 0 and the legacy sampler carries A6
    // detection exactly as before.
    const bool cpu_from_profiler = total_profile_delta > 0;
    if (cpu_from_profiler) total_cpu_delta = total_profile_delta;

    // Hung callers per isolate: threads some *other* isolate created,
    // currently blocked while migrated into this one (racy atomic reads;
    // the strike hysteresis absorbs the noise). Counter signals like this
    // must aggregate over *every* thread's state -- a single-mutator
    // shortcut (reading one thread) undercounts the moment the mutator
    // pool schedules bundle work on several workers. Pool workers are
    // creator-attributed to Isolate0, which would make any worker blocked
    // inside the very bundle it is *scheduled for* look like a hung
    // foreign caller and unjustly kill honest bundles under A7 -- the
    // scheduled_isolate marker (runtime/mutator_pool.cpp) exempts exactly
    // that thread while it runs that bundle's task.
    std::unordered_map<i32, double> hung;
    for (JThread* t : fw_.vm().threadsSnapshot()) {
      if (t->state.load(std::memory_order_acquire) != ThreadState::Blocked)
        continue;
      if (!t->hasFrames()) continue;  // attached thread idling in C++
      Isolate* cur = t->current_isolate.load(std::memory_order_acquire);
      if (cur == nullptr || cur == t->creator_isolate) continue;
      if (cur == t->scheduled_isolate.load(std::memory_order_acquire)) continue;
      hung[cur->id] += 1.0;
    }

    for (Bundle* b : fw_.bundles()) {
      if (b->isolate() == nullptr) continue;
      if (b->isolate()->privileged) continue;  // never judge Isolate0
      if (b->state() == BundleState::Uninstalled) continue;
      if (!b->isolate()->isActive()) continue;  // already dying

      IsolateReport now = fw_.reportFor(b);
      BundleTrack& track = tracks_[b->id()];
      track.ticks_seen++;

      bool warmed = track.ticks_seen > policy_.warmup_ticks;
      bool kill_queued = false;
      for (size_t i = 0; i < policy_.rules.size() && warmed; ++i) {
        const GovernorRule& rule = policy_.rules[i];
        auto hung_it = hung.find(b->isolate()->id);
        double hung_here = hung_it == hung.end() ? 0.0 : hung_it->second;
        double observed = evaluate(rule, now, track, total_cpu_delta,
                                   cpu_from_profiler, hung_here);
        int& strikes = track.strikes[i];
        const bool tripped = rule.fire_below ? observed <= rule.threshold
                                             : observed > rule.threshold;
        if (tripped) {
          strikes++;
        } else {
          strikes = 0;
          continue;
        }
        GovernorEvent ev;
        ev.tick = tick_no;
        ev.bundle_id = b->id();
        ev.bundle_name = b->symbolicName();
        ev.signal = rule.signal;
        ev.rule_label = rule.label.empty() ? signalName(rule.signal) : rule.label;
        ev.observed = observed;
        ev.threshold = rule.threshold;
        ev.strikes = strikes;
        ev.action = rule.action;
        ev.acted = strikes >= rule.strikes_to_act;
        if (ev.acted && rule.action == GovernorAction::Kill && !kill_queued) {
          kill_queued = true;
          kills.push_back({b, ev});
        } else if (ev.acted && rule.action == GovernorAction::PromoteJit) {
          promotes.push_back(b);
        } else if (ev.acted && rule.action == GovernorAction::DemoteJit) {
          demotes.push_back(b);
        }
        if (obs::traceEnabled()) {
          obs::emit(ev.acted ? obs::Ev::GovernorAct : obs::Ev::GovernorWarn,
                    obs::Ph::Instant, b->isolate()->id,
                    obs::internTraceName(ev.rule_label));
        }
        out.push_back(ev);
        history_.push_back(ev);
      }
      track.last_jit_churn =
          evaluate(GovernorRule{Signal::JitChurnRate, 0.0, 1,
                                GovernorAction::Warn, "churn"},
                   now, track, total_cpu_delta, cpu_from_profiler, 0.0);
      track.last = now;
      track.has_last = true;
    }
  }
  obs::emit(obs::Ev::GovernorTick, obs::Ph::Instant, -1, tick_no, out.size());

  // Promote outside the governor lock (the enqueue takes the engine
  // mutex). The methods compile when the engine's dispatch loop drains the
  // queue: at their next entry, or -- for a bundle spinning inside one
  // call, the A6 shape this rule exists for -- at the spinning thread's
  // next back-edge batch flush, which then on-stack-replaces the live
  // frame into the compiled code (docs/jit.md, "On-stack replacement").
  // Requests are idempotent per method: re-firing every tick a bundle
  // stays hot never rebuilds an existing JitCode.
  for (Bundle* b : promotes) {
    exec::enqueueLoaderForJit(fw_.vm(), b->loader(),
                              policy_.jit_promote_min_hotness);
  }

  // Demote outside the governor lock too (the demotion takes the code
  // cache's lock). Un-patching is idempotent and poison-free: a cooled
  // bundle's compiled methods fall back to the fused tier, their code is
  // reclaimed once no frame runs it, and the raised re-heat floor
  // (docs/jit.md, "Code lifecycle") keeps the PromoteJit rule from
  // compiling them right back until they earn fresh heat.
  for (Bundle* b : demotes) {
    exec::demoteLoaderJit(fw_.vm(), b->loader());
  }

  // Kill outside the governor lock: killBundle stops the world and
  // broadcasts events, which may re-enter reporting paths.
  for (PendingKill& k : kills) {
    fw_.killBundleFrom(admin_, k.bundle);
    std::function<void(const GovernorEvent&)> cb;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      killed_.push_back(k.bundle->id());
      cb = on_kill_;
    }
    if (cb) cb(k.event);
  }
  return out;
}

void ResourceGovernor::start(i64 period_ms) {
  std::lock_guard<std::mutex> lock(wake_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  worker_ = std::thread([this, period_ms] {
    obs::setTraceThreadName("governor");
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!stop_requested_) {
      lock.unlock();
      tick();
      lock.lock();
      wake_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                        [this] { return stop_requested_; });
    }
  });
}

void ResourceGovernor::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  worker_.join();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    running_ = false;
  }
}

std::string ResourceGovernor::adminSnapshot() {
  std::string out = obs::platformReport(fw_.vm());
  std::lock_guard<std::mutex> lock(mutex_);
  out += strf("governor: %llu ticks, %zu events, %zu kills\n",
              static_cast<unsigned long long>(
                  tick_count_.load(std::memory_order_relaxed)),
              history_.size(), killed_.size());
  out += strf("  %3s  %-18s %14s\n", "id", "bundle", "jit-churn/tick");
  for (Bundle* b : fw_.bundles()) {
    auto it = tracks_.find(b->id());
    if (it == tracks_.end()) continue;
    out += strf("  %3d  %-18s %14.1f\n", b->id(), b->symbolicName().c_str(),
                it->second.last_jit_churn);
  }
  return out;
}

std::vector<GovernorEvent> ResourceGovernor::history() {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

std::vector<i32> ResourceGovernor::killed() {
  std::lock_guard<std::mutex> lock(mutex_);
  return killed_;
}

}  // namespace ijvm
