// Automatic denial-of-service detection (paper section 4.4, future work).
//
// The paper stops at *assisting* a human administrator: I-JVM's per-isolate
// counters let the administrator locate a misbehaving bundle and kill it by
// hand. Section 4.4 explicitly leaves automating that decision as future
// work. The ResourceGovernor implements that extension: a policy engine
// that periodically snapshots every bundle's IsolateReport, evaluates a set
// of threshold rules over counter *deltas* (rates) or levels, applies a
// strike-based hysteresis so one noisy interval cannot kill a healthy
// bundle, and then either records a warning or kills the bundle through
// Framework::killBundle (which broadcasts StoppedBundleEvent and terminates
// the isolate exactly as the paper's administrator would).
//
// The governor never judges Isolate0 (the OSGi runtime itself) and knows
// about the accounting imprecision documented in section 4.4: memory and GC
// blame can land on the wrong isolate under object sharing, so the default
// policy pairs each "blame" signal with a corroborating allocation-side
// signal charged at creation time (which is always attributed correctly).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "osgi/framework.h"

namespace ijvm {

// What a rule observes. Rate signals are deltas between two consecutive
// governor ticks; level signals are absolute values of the latest snapshot.
enum class Signal : u8 {
  // -- level signals --
  MemoryCharged,     // bytes_charged after the last GC (paper's step-4 charge)
  RetainedEstimate,  // bytes_charged + bytes allocated since that GC
  LiveThreads,       // threads created by the bundle and still running
  SleepingThreads,   // threads blocked in sleep/wait inside the bundle
  HungCallers,       // threads created by *other* isolates blocked inside
                     // this bundle -- the A7 symptom (a service call never
                     // returns); a bundle sleeping on its own threads is fine
  // -- rate signals (per tick) --
  CpuShare,          // sampler ticks in this bundle / all sampler ticks, 0..1
  GcRate,            // GC activations triggered by the bundle per tick
  AllocRate,         // objects allocated per tick
  AllocBytesRate,    // bytes allocated per tick
  IoRate,            // I/O bytes (read+write) per tick
  ThreadSpawnRate,   // threads created per tick
  // Execution-profile rates fed by the quickening engine (src/exec).
  // Zero under the classic interpreter (which does not profile). They
  // flag *hot* bundles -- compilation-tier candidates and CpuShare
  // corroboration -- from the same per-method counters the engine's
  // fusion tier promotes on (docs/execution-tiers.md).
  MethodInvocationRate,  // guest method invocations per tick
  LoopBackEdgeRate,      // loop back-edges executed per tick
  JitChurnRate,          // tier-3 compiles + demotions per tick: a bundle
                         // bouncing in and out of the code cache wastes
                         // compile bandwidth and evicts stable tenants --
                         // pair with GovernorAction::DemoteJit, whose
                         // raised re-heat floor is exactly what stops the
                         // bouncing (docs/jit.md, "Code lifecycle")
  JitPayoff,             // payoff-model demotions per tick (docs/jit.md,
                         // "Payoff"): the engine measured this bundle's
                         // compiled code slower than its own fused-tier
                         // baseline and auto-demoted it. A sustained rate
                         // means the bundle's hot set keeps compiling at
                         // a loss -- surface it (Warn) or stop paying the
                         // compile bandwidth (DemoteJit); the per-method
                         // jit_payoff_max_demotes pin converges either way
};

const char* signalName(Signal s);

enum class GovernorAction : u8 {
  Warn,        // record a violation only
  Kill,        // record and killBundle()
  PromoteJit,  // record and push the bundle's hot methods onto the
               // execution engine's promote-to-JIT queue (exec/jit.h).
               // No-op (a recorded warning) unless the VM runs
               // ExecEngine::Jit. The paper's "hot bundle" answer when
               // hot is not hostile: compile it instead of killing it.
  DemoteJit,   // record and demote the bundle's compiled methods back to
               // the fused tier (exec/code_cache.h): their entries are
               // un-patched and the code is reclaimed once no frame runs
               // it -- the same managed-code lever terminateIsolate pulls
               // by poisoning, but poison-free. PromoteJit's inverse: pair
               // it with a fire_below rule on an execution-profile rate so
               // a bundle that *cooled off* stops holding code-cache
               // budget (docs/governor.md).
};

const char* actionName(GovernorAction a);

// One threshold rule. The rule fires when `signal` exceeds `threshold`
// (or, with `fire_below`, stays at or under it -- cool-down rules) for
// `strikes_to_act` *consecutive* ticks (hysteresis; strikes reset on the
// first compliant tick).
struct GovernorRule {
  Signal signal = Signal::CpuShare;
  double threshold = 0.0;
  int strikes_to_act = 2;
  GovernorAction action = GovernorAction::Kill;
  std::string label;  // for reports; defaults to signalName()
  // Inverted comparison: the rule fires while the signal is at or below
  // the threshold. Meant for cool-down actions (DemoteJit); a kill rule
  // with fire_below would fire for every idle bundle.
  bool fire_below = false;
};

struct GovernorPolicy {
  std::vector<GovernorRule> rules;
  // Force a GC before evaluating level signals if any bundle allocated more
  // than this many bytes since the last collection (0 = never). Memory
  // charges are only recomputed by the GC (paper section 3.2), so without
  // an occasional forced collection MemoryCharged lags reality.
  u64 gc_if_allocated_bytes = 4u << 20;
  // Rules are only evaluated once a bundle has been observed for at least
  // this many ticks (lets <clinit>/startup spikes pass).
  int warmup_ticks = 1;
  // PromoteJit enqueues only methods whose own profile counters
  // (invocations + loop back-edges) exceed this -- the bundle is hot, but
  // only its actually-hot methods are worth compiling.
  u64 jit_promote_min_hotness = 1024;

  // The default policy covers the paper's five DoS attacks:
  //   A3 memory exhaustion      -> RetainedEstimate level
  //   A4 excessive creation/GC  -> GcRate + AllocRate
  //   A5 thread creation        -> LiveThreads level
  //   A6 infinite loop          -> CpuShare
  //   A7 hanging thread         -> SleepingThreads level
  static GovernorPolicy standard(u64 memory_budget_bytes = 4u << 20,
                                 i64 thread_budget = 6,
                                 double cpu_share_limit = 0.85);
};

// One rule trip (over threshold on one tick). `acted` is set on the tick
// the strike count reached strikes_to_act and the action ran.
struct GovernorEvent {
  u64 tick = 0;
  i32 bundle_id = -1;
  std::string bundle_name;
  Signal signal = Signal::CpuShare;
  std::string rule_label;
  double observed = 0.0;
  double threshold = 0.0;
  int strikes = 0;
  GovernorAction action = GovernorAction::Warn;
  bool acted = false;
};

// Evaluates the policy over a Framework's bundles. Drive it either
// deterministically by calling tick() yourself (tests, benches) or in the
// background via start(period)/stop().
class ResourceGovernor {
 public:
  ResourceGovernor(Framework& fw, GovernorPolicy policy);
  ~ResourceGovernor();

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  // One evaluation pass; returns the events generated by this tick.
  std::vector<GovernorEvent> tick();

  // Background operation.
  void start(i64 period_ms);
  void stop();

  // Human-readable admin snapshot (obs/report.h formatting): the full
  // platform report plus governor status and per-bundle compile/demote
  // churn over the last tick.
  std::string adminSnapshot();

  // All events so far (warnings and kills).
  std::vector<GovernorEvent> history();
  // Bundles killed by the governor (ids), in kill order.
  std::vector<i32> killed();
  u64 ticks() const { return tick_count_.load(std::memory_order_relaxed); }

  // Invoked (outside internal locks) right after a bundle is killed.
  void onKill(std::function<void(const GovernorEvent&)> cb);

 private:
  struct BundleTrack {
    IsolateReport last;       // previous snapshot (for rate deltas)
    bool has_last = false;
    int ticks_seen = 0;
    double last_jit_churn = 0;  // compiles + demotions over the last tick
    std::unordered_map<size_t, int> strikes;  // rule index -> strike count
  };

  // `profile_based` selects which CPU counter CpuShare reads: the sampling
  // profiler's safepoint-biased samples (cpu_profile_samples) when the
  // profiler produced any this tick, else the legacy wall-clock sampler
  // (cpu_samples). Both are leaf-attributed per isolate, so the share
  // semantics are identical -- only the clock differs.
  double evaluate(const GovernorRule& rule, const IsolateReport& now,
                  const BundleTrack& track, u64 total_cpu_delta,
                  bool profile_based, double hung_callers) const;

  Framework& fw_;
  GovernorPolicy policy_;
  JThread* admin_ = nullptr;  // governor's own Isolate0 guest identity

  std::mutex mutex_;
  std::unordered_map<i32, BundleTrack> tracks_;  // bundle id -> track
  std::vector<GovernorEvent> history_;
  std::vector<i32> killed_;
  u64 last_total_cpu_ = 0;
  u64 last_total_profile_ = 0;
  bool has_last_total_cpu_ = false;

  std::function<void(const GovernorEvent&)> on_kill_;

  std::atomic<u64> tick_count_{0};
  std::thread worker_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace ijvm
