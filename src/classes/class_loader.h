// Class loaders and the class registry (linker).
//
// As in OSGi, each bundle gets its own class loader; in I-JVM the loader is
// also the unit of isolation -- the runtime attaches an Isolate to each
// non-system loader (paper section 3.1: "an isolate is built from a class
// loader"). Loaders delegate lookups to their parent; the root loader is the
// *system loader* that defines the Java System Library, whose code executes
// in the caller's isolate and is charged to the caller.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "classes/jclass.h"

namespace ijvm {

class ClassRegistry;

class ClassLoader {
 public:
  ClassLoader(ClassRegistry* registry, std::string name, ClassLoader* parent,
              bool is_system);

  ClassLoader(const ClassLoader&) = delete;
  ClassLoader& operator=(const ClassLoader&) = delete;

  // Defines (links) a class from its unlinked form. The superclass and any
  // interfaces must already be resolvable through this loader.
  JClass* define(ClassDef def);

  // Parent-delegating lookup; returns nullptr when not found.
  JClass* find(const std::string& name);

  // Lookup restricted to classes this loader defined.
  JClass* findLocal(const std::string& name);

  const std::string& name() const { return name_; }
  bool isSystem() const { return is_system_; }
  ClassLoader* parent() const { return parent_; }
  ClassRegistry* registry() const { return registry_; }

  // The isolate attached to this loader (set once by the runtime; null for
  // the system loader, whose classes run in the caller's isolate).
  Isolate* isolate() const { return isolate_; }
  void attachIsolate(Isolate* iso);

  std::vector<JClass*> definedClasses() const;
  size_t definedCount() const;

 private:
  friend class ClassRegistry;

  ClassRegistry* registry_;
  std::string name_;
  ClassLoader* parent_;
  bool is_system_;
  Isolate* isolate_ = nullptr;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, JClass*> classes_;
};

// Owns all loaders and all JClass storage; performs linking.
class ClassRegistry {
 public:
  using VerifyHook = std::function<void(const JClass&)>;

  ClassRegistry();

  ClassRegistry(const ClassRegistry&) = delete;
  ClassRegistry& operator=(const ClassRegistry&) = delete;

  ClassLoader* systemLoader() { return system_loader_; }
  ClassLoader* newLoader(const std::string& name, ClassLoader* parent = nullptr,
                         bool is_system = false);

  // Called after linking each class; the runtime installs the bytecode
  // verifier here (panics / throws VerifyError on bad code).
  void setVerifyHook(VerifyHook hook) { verify_hook_ = std::move(hook); }

  // Array class for an element type descriptor, e.g. "[I",
  // "[Ljava/lang/String;", "[[D". Created on demand in the system loader.
  JClass* arrayClass(const std::string& array_name);

  // Resolves `name` through `ctx` (array names supported); nullptr if absent.
  JClass* resolve(ClassLoader* ctx, const std::string& name);

  std::vector<ClassLoader*> loaders() const;

  // Visits every linked class (used by the GC root enumerator to reach
  // per-isolate statics and Class objects). Safe to call concurrently with
  // definitions; holds the registry lock for the duration.
  void forEachClass(const std::function<void(JClass&)>& fn) const;

  // Total metadata footprint across all classes (Figure-3 memory report).
  size_t totalMetadataBytes() const;
  size_t classCount() const;

 private:
  friend class ClassLoader;

  JClass* link(ClassLoader* loader, ClassDef def);

  mutable std::mutex mutex_;
  std::deque<std::unique_ptr<JClass>> classes_;  // owns all JClass storage
  std::deque<std::unique_ptr<ClassLoader>> loaders_;
  ClassLoader* system_loader_ = nullptr;
  VerifyHook verify_hook_;
};

}  // namespace ijvm
