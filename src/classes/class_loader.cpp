#include "classes/class_loader.h"

#include "support/strf.h"

namespace ijvm {

ClassLoader::ClassLoader(ClassRegistry* registry, std::string name,
                         ClassLoader* parent, bool is_system)
    : registry_(registry), name_(std::move(name)), parent_(parent),
      is_system_(is_system) {}

JClass* ClassLoader::define(ClassDef def) { return registry_->link(this, std::move(def)); }

JClass* ClassLoader::findLocal(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second;
}

JClass* ClassLoader::find(const std::string& name) {
  // Parent-first delegation, as the OSGi boot delegation does for java.*.
  if (parent_ != nullptr) {
    if (JClass* c = parent_->find(name)) return c;
  }
  return findLocal(name);
}

void ClassLoader::attachIsolate(Isolate* iso) {
  IJVM_CHECK(isolate_ == nullptr || isolate_ == iso,
             strf("loader %s already attached to an isolate", name_.c_str()));
  isolate_ = iso;
}

std::vector<JClass*> ClassLoader::definedClasses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JClass*> out;
  out.reserve(classes_.size());
  for (const auto& [_, c] : classes_) out.push_back(c);
  return out;
}

size_t ClassLoader::definedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return classes_.size();
}

ClassRegistry::ClassRegistry() {
  system_loader_ = newLoader("<system>", nullptr, /*is_system=*/true);
}

ClassLoader* ClassRegistry::newLoader(const std::string& name, ClassLoader* parent,
                                      bool is_system) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (parent == nullptr && system_loader_ != nullptr) parent = system_loader_;
  loaders_.push_back(
      std::make_unique<ClassLoader>(this, name, parent, is_system));
  return loaders_.back().get();
}

JClass* ClassRegistry::link(ClassLoader* loader, ClassDef def) {
  IJVM_CHECK(loader->findLocal(def.name) == nullptr,
             strf("duplicate class %s in loader %s", def.name.c_str(),
                  loader->name().c_str()));

  // Resolve the superclass and interfaces up-front (bottom-up definition
  // order is required, as with real class files resolved eagerly).
  JClass* super = nullptr;
  if (!def.super_name.empty()) {
    super = loader->find(def.super_name);
    IJVM_CHECK(super != nullptr, strf("superclass %s of %s not found",
                                      def.super_name.c_str(), def.name.c_str()));
    IJVM_CHECK(!super->isInterface(),
               strf("superclass %s of %s is an interface", def.super_name.c_str(),
                    def.name.c_str()));
  }
  std::vector<JClass*> interfaces;
  for (const std::string& itf_name : def.interfaces) {
    JClass* itf = loader->find(itf_name);
    IJVM_CHECK(itf != nullptr && itf->isInterface(),
               strf("interface %s of %s not found", itf_name.c_str(),
                    def.name.c_str()));
    interfaces.push_back(itf);
  }

  auto cls = std::make_unique<JClass>();
  JClass* c = cls.get();
  c->name = def.name;
  c->super = super;
  c->interfaces = std::move(interfaces);
  c->loader = loader;
  c->flags = def.flags;
  c->pool = std::move(def.pool);

  // ---- field layout ----
  c->instance_slots = super != nullptr ? super->instance_slots : 0;
  c->static_slots = 0;
  for (const FieldDef& fd : def.fields) {
    JField f;
    f.name = fd.name;
    f.type = parseTypeDesc(fd.descriptor);
    f.flags = fd.flags;
    f.owner = c;
    f.slot = f.isStatic() ? c->static_slots++ : c->instance_slots++;
    c->fields.push_back(std::move(f));
  }

  // ---- methods & vtable ----
  if (super != nullptr) c->vtable = super->vtable;
  for (const MethodDef& md : def.methods) {
    // emplace + fill: JMethod is pinned (contains an atomic) and immovable.
    c->methods.emplace_back();
    JMethod* jm = &c->methods.back();
    jm->name = md.name;
    jm->descriptor = md.descriptor;
    jm->sig = parseMethodSig(md.descriptor);
    jm->flags = md.flags;
    jm->code = md.code;
    jm->owner = c;

    bool is_virtual = !jm->isStatic() && !jm->isPrivate() && !jm->isCtor() &&
                      !jm->isClinit() && !c->isInterface();
    if (is_virtual) {
      // Override slot from a superclass method with the same name+descriptor,
      // otherwise append a new slot.
      i32 slot = -1;
      if (super != nullptr) {
        if (JMethod* parent_m = super->findMethod(jm->name, jm->descriptor)) {
          if (parent_m->vtable_index >= 0) slot = parent_m->vtable_index;
        }
      }
      if (slot < 0) {
        slot = static_cast<i32>(c->vtable.size());
        c->vtable.push_back(jm);
      } else {
        c->vtable[static_cast<size_t>(slot)] = jm;
      }
      jm->vtable_index = slot;
    }
  }

  if (verify_hook_) verify_hook_(*c);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    classes_.push_back(std::move(cls));
  }
  {
    std::lock_guard<std::mutex> lock(loader->mutex_);
    loader->classes_.emplace(c->name, c);
  }
  return c;
}

JClass* ClassRegistry::arrayClass(const std::string& array_name) {
  IJVM_CHECK(!array_name.empty() && array_name[0] == '[',
             strf("not an array class name: %s", array_name.c_str()));
  if (JClass* existing = system_loader_->findLocal(array_name)) return existing;

  TypeDesc t = parseTypeDesc(array_name);

  auto cls = std::make_unique<JClass>();
  JClass* c = cls.get();
  c->name = array_name;
  c->super = system_loader_->find("java/lang/Object");
  c->loader = system_loader_;
  c->is_array = true;
  if (t.array_dims > 1) {
    // Element is itself an array.
    c->elem_kind = Kind::Ref;
    TypeDesc elem = t;
    elem.array_dims -= 1;
    c->elem_class = arrayClass(elem.toString());
  } else if (t.elem_kind == Kind::Ref) {
    c->elem_kind = Kind::Ref;
    c->elem_class = system_loader_->find(t.class_name);
    // Element classes outside the system loader: resolve lazily via
    // `resolve` below; store nullptr and match by name when needed. To keep
    // assignability sound we require the element class to exist.
    IJVM_CHECK(c->elem_class != nullptr,
               strf("array element class %s not found in system loader; "
                    "use resolve(ctx, ...) for bundle classes",
                    t.class_name.c_str()));
  } else {
    c->elem_kind = t.elem_kind;
  }
  if (c->super != nullptr) c->vtable = c->super->vtable;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    classes_.push_back(std::move(cls));
  }
  {
    std::lock_guard<std::mutex> lock(system_loader_->mutex_);
    system_loader_->classes_.emplace(c->name, c);
  }
  return c;
}

JClass* ClassRegistry::resolve(ClassLoader* ctx, const std::string& name) {
  if (name.empty()) return nullptr;
  if (name[0] == '[') {
    // Array class: element classes from bundle loaders get a per-loader
    // array class so assignability works with bundle types.
    TypeDesc t = parseTypeDesc(name);
    if (t.elem_kind == Kind::Ref && t.array_dims == 1) {
      JClass* elem = resolve(ctx, t.class_name);
      if (elem == nullptr) return nullptr;
      if (elem->loader != system_loader_) {
        // Define the array class in the element's loader.
        if (JClass* existing = elem->loader->findLocal(name)) return existing;
        auto cls = std::make_unique<JClass>();
        JClass* c = cls.get();
        c->name = name;
        c->super = system_loader_->find("java/lang/Object");
        c->loader = elem->loader;
        c->is_array = true;
        c->elem_kind = Kind::Ref;
        c->elem_class = elem;
        if (c->super != nullptr) c->vtable = c->super->vtable;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          classes_.push_back(std::move(cls));
        }
        {
          std::lock_guard<std::mutex> lock(elem->loader->mutex_);
          elem->loader->classes_.emplace(c->name, c);
        }
        return c;
      }
    }
    return arrayClass(name);
  }
  return ctx != nullptr ? ctx->find(name) : system_loader_->find(name);
}

std::vector<ClassLoader*> ClassRegistry::loaders() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ClassLoader*> out;
  out.reserve(loaders_.size());
  for (const auto& l : loaders_) out.push_back(l.get());
  return out;
}

void ClassRegistry::forEachClass(const std::function<void(JClass&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : classes_) fn(*c);
}

size_t ClassRegistry::totalMetadataBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bytes = 0;
  for (const auto& c : classes_) bytes += c->metadataBytes();
  return bytes;
}

size_t ClassRegistry::classCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return classes_.size();
}

}  // namespace ijvm
