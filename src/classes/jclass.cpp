#include "classes/jclass.h"

#include "classes/class_loader.h"
#include "support/strf.h"

namespace ijvm {

std::string JMethod::fullName() const {
  return strf("%s.%s%s", owner ? owner->name.c_str() : "?", name.c_str(),
              descriptor.c_str());
}

bool JClass::isSystemLib() const { return loader != nullptr && loader->isSystem(); }

TaskClassMirror& JClass::tcm(i32 isolate_index) {
  IJVM_CHECK(isolate_index >= 0, "negative isolate index");
  std::lock_guard<std::mutex> lock(tcm_mutex_);
  auto idx = static_cast<size_t>(isolate_index);
  if (idx >= tcms_.size()) tcms_.resize(idx + 1);
  if (!tcms_[idx]) {
    auto mirror = std::make_unique<TaskClassMirror>();
    mirror->statics.resize(static_cast<size_t>(static_slots));
    // Zero-initialize statics according to their declared kinds.
    for (const JField& f : fields) {
      if (f.isStatic()) {
        mirror->statics[static_cast<size_t>(f.slot)] = Value::zeroOf(f.type.kind);
      }
    }
    tcms_[idx] = std::move(mirror);
    republishTcms();
  }
  return *tcms_[idx];
}

void JClass::republishTcms() {
  auto snapshot = std::make_unique<TaskClassMirror*[]>(tcms_.size());
  for (size_t i = 0; i < tcms_.size(); ++i) snapshot[i] = tcms_[i].get();
  TaskClassMirror* const* raw = snapshot.get();
  tcm_retired_.push_back(std::move(snapshot));
  // Publish pointer first, then the (monotonically growing) size.
  tcm_published_.store(raw, std::memory_order_release);
  tcm_published_size_.store(static_cast<i32>(tcms_.size()),
                            std::memory_order_release);
}

TaskClassMirror* JClass::tcmIfPresent(i32 isolate_index) {
  std::lock_guard<std::mutex> lock(tcm_mutex_);
  auto idx = static_cast<size_t>(isolate_index);
  if (isolate_index < 0 || idx >= tcms_.size()) return nullptr;
  return tcms_[idx].get();
}

i32 JClass::tcmCount() const {
  std::lock_guard<std::mutex> lock(tcm_mutex_);
  i32 n = 0;
  for (const auto& t : tcms_) {
    if (t) ++n;
  }
  return n;
}

bool JClass::isSubclassOf(const JClass* other) const {
  for (const JClass* c = this; c != nullptr; c = c->super) {
    if (c == other) return true;
  }
  return false;
}

bool JClass::implementsInterface(const JClass* itf) const {
  for (const JClass* c = this; c != nullptr; c = c->super) {
    for (const JClass* i : c->interfaces) {
      if (i == itf || i->implementsInterface(itf)) return true;
    }
  }
  return false;
}

bool JClass::isAssignableTo(const JClass* target) const {
  if (this == target) return true;
  if (target->is_array) {
    if (!is_array) return false;
    if (elem_kind != Kind::Ref || target->elem_kind != Kind::Ref) {
      return elem_kind == target->elem_kind;
    }
    return elem_class != nullptr && target->elem_class != nullptr &&
           elem_class->isAssignableTo(target->elem_class);
  }
  if (is_array) {
    // Arrays are assignable to java/lang/Object only.
    return target->name == "java/lang/Object";
  }
  if (target->isInterface()) return implementsInterface(target);
  return isSubclassOf(target);
}

JField* JClass::findField(const std::string& field_name) {
  for (JClass* c = this; c != nullptr; c = c->super) {
    for (JField& f : c->fields) {
      if (f.name == field_name) return &f;
    }
  }
  return nullptr;
}

JField* JClass::findStaticField(const std::string& field_name) {
  JField* f = findField(field_name);
  return (f != nullptr && f->isStatic()) ? f : nullptr;
}

JMethod* JClass::findDeclared(const std::string& method_name,
                              const std::string& method_descriptor) {
  for (JMethod& m : methods) {
    if (m.name == method_name && m.descriptor == method_descriptor) return &m;
  }
  return nullptr;
}

JMethod* JClass::findMethod(const std::string& method_name,
                            const std::string& method_descriptor) {
  for (JClass* c = this; c != nullptr; c = c->super) {
    if (JMethod* m = c->findDeclared(method_name, method_descriptor)) return m;
  }
  // Interface default-less lookup: declaration only (for resolution).
  for (JClass* c = this; c != nullptr; c = c->super) {
    for (JClass* itf : c->interfaces) {
      if (JMethod* m = itf->findMethod(method_name, method_descriptor)) return m;
    }
  }
  return nullptr;
}

JMethod* JClass::resolveVirtual(const std::string& method_name,
                                const std::string& method_descriptor) {
  for (JClass* c = this; c != nullptr; c = c->super) {
    if (JMethod* m = c->findDeclared(method_name, method_descriptor)) {
      if (!m->isAbstract()) return m;
    }
  }
  return nullptr;
}

size_t JClass::metadataBytes() const {
  size_t bytes = sizeof(JClass);
  bytes += name.size();
  for (const JField& f : fields) bytes += sizeof(JField) + f.name.size();
  for (const JMethod& m : methods) {
    bytes += sizeof(JMethod) + m.name.size() + m.descriptor.size();
    bytes += m.code.insns.size() * sizeof(Instruction);
    bytes += m.code.handlers.size() * sizeof(ExHandler);
  }
  bytes += vtable.size() * sizeof(JMethod*);
  bytes += static_cast<size_t>(pool.size()) * sizeof(CpEntry);
  {
    std::lock_guard<std::mutex> lock(tcm_mutex_);
    // The TCM *array* itself is per-class memory that grows with the number
    // of isolates -- one of the two overhead sources of Figure 3.
    bytes += tcms_.capacity() * sizeof(std::unique_ptr<TaskClassMirror>);
    for (const auto& t : tcms_) {
      if (t) bytes += sizeof(TaskClassMirror) + t->statics.size() * sizeof(Value);
    }
  }
  return bytes;
}

}  // namespace ijvm
