// Linked runtime class model: JClass / JMethod / JField / TaskClassMirror.
//
// Classes are *shared* across isolates. All per-isolate class state -- the
// initialization state, the static variables and the java.lang.Class object
// -- lives in the task class mirror (TCM) array, indexed by the current
// isolate of the executing thread (paper section 3.1, following MVM). In
// shared mode (the LadyVM/Sun-JVM baseline) every isolate maps to TCM slot 0.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bytecode/classdef.h"
#include "bytecode/descriptor.h"
#include "bytecode/value.h"

namespace ijvm {

class ClassLoader;
class ClassRegistry;
struct JClass;
struct Isolate;
class VM;
class JThread;
class NativePayload;  // heap/object.h

struct JMethod;

// Context passed to native (C++-implemented) guest methods.
struct NativeCtx {
  VM& vm;
  JThread& thread;
  JMethod* method;
  std::vector<Value>& args;  // receiver at index 0 for instance methods

  // Throws a guest exception: sets the thread's pending exception. The
  // native should return immediately after (return value is ignored).
  void throwGuest(const std::string& exception_class, const std::string& message);
  bool hasPending() const;
};

using NativeFn = std::function<Value(NativeCtx&)>;

struct JField {
  std::string name;
  TypeDesc type;
  u16 flags = 0;
  i32 slot = -1;  // instance: object field slot; static: TCM statics slot
  JClass* owner = nullptr;

  bool isStatic() const { return (flags & ACC_STATIC) != 0; }
  bool isFinal() const { return (flags & ACC_FINAL) != 0; }
};

struct JMethod {
  std::string name;
  std::string descriptor;
  MethodSig sig;
  u16 flags = 0;
  Code code;
  NativeFn native;
  JClass* owner = nullptr;
  i32 vtable_index = -1;

  // Isolate termination support (paper section 3.3): a poisoned method can
  // no longer be entered; the invoke path throws StoppedIsolateException.
  // This models I-JVM's patching of JIT-compiled method entry points.
  std::atomic<bool> poisoned{false};

  // Quickening engine state (src/exec): the rewritten instruction stream
  // (an exec::QCode, owned by the VM's engine state -- opaque here to keep
  // the class model independent of the engine) and the per-method profile
  // counters future compilation tiers key their heuristics on.
  std::atomic<void*> qcode{nullptr};
  // Tier-3 compiled code (an exec::JitCode, arena-owned like qcode).
  // Null until the baseline JIT compiles the method; reset to null when a
  // deopt invalidates the compiled code (docs/jit.md). The JitCode itself
  // carries the patchable entry point isolate termination swaps out.
  std::atomic<void*> jitcode{nullptr};
  std::atomic<u64> profile_invocations{0};
  std::atomic<u64> profile_loop_edges{0};

  // Cached obs::profileNameId(fullName()) -- 0 until the sampling
  // profiler first sees this method in a stack walk. The profiler's
  // interner is never reset, so a cached id stays valid for the life of
  // the process (unlike trace name ids, which resetTrace invalidates).
  std::atomic<u32> profile_name_id{0};

  bool isStatic() const { return (flags & ACC_STATIC) != 0; }
  bool isNative() const { return (flags & ACC_NATIVE) != 0; }
  bool isAbstract() const { return (flags & ACC_ABSTRACT) != 0; }
  bool isSynchronized() const { return (flags & ACC_SYNCHRONIZED) != 0; }
  bool isPrivate() const { return (flags & ACC_PRIVATE) != 0; }
  bool isCtor() const { return name == "<init>"; }
  bool isClinit() const { return name == "<clinit>"; }

  // Number of argument slots including the receiver.
  i32 argSlots() const { return sig.argSlots(isStatic()); }

  std::string fullName() const;  // "pkg/Cls.name(desc)"
};

// Per-isolate class state (the task class mirror of MVM / I-JVM).
struct TaskClassMirror {
  enum class InitState : u8 { Uninitialized, Running, Initialized, Failed };

  // Atomic so the interpreter's initialization *check* -- the one the paper
  // says reentrant compiled code cannot elide (section 3.1) -- is a single
  // acquire load; transitions happen under the VM's clinit lock.
  std::atomic<InitState> state{InitState::Uninitialized};
  JThread* init_thread = nullptr;  // thread running <clinit> (reentrancy)
  std::vector<Value> statics;
  Object* class_object = nullptr;  // per-isolate java.lang.Class instance
};

struct JClass {
  std::string name;
  JClass* super = nullptr;
  std::vector<JClass*> interfaces;
  ClassLoader* loader = nullptr;
  u16 flags = 0;

  // deques: JField*/JMethod* must stay stable (they are cached in constant
  // pools and vtables).
  std::deque<JField> fields;
  std::deque<JMethod> methods;
  ConstantPool pool;

  i32 instance_slots = 0;  // including superclasses
  i32 static_slots = 0;    // declared statics only
  std::vector<JMethod*> vtable;

  // Array classes.
  bool is_array = false;
  Kind elem_kind = Kind::Void;   // element kind (Ref for object arrays)
  JClass* elem_class = nullptr;  // element class for ref arrays

  // Native-backed classes (StringBuilder, collections, connections): NEW
  // allocates a Native-kind object whose payload this factory produces.
  // Such classes must not declare instance fields.
  std::function<std::unique_ptr<NativePayload>()> native_factory;

  bool isInterface() const { return (flags & ACC_INTERFACE) != 0; }
  bool isSystemLib() const;  // true when defined by a system-library loader

  // ---- task class mirrors ----
  // Returns the mirror for the given isolate index, growing the array on
  // demand. Thread-safe (locking slow path).
  TaskClassMirror& tcm(i32 isolate_index);
  // Lock-free read of an already-materialized mirror: one load of the
  // published array pointer plus one indexed load -- the paper's "two
  // additional loads" on every static access (section 3.1). Returns null
  // when the mirror does not exist yet.
  TaskClassMirror* tcmFast(i32 isolate_index) const {
    if (isolate_index < tcm_published_size_.load(std::memory_order_acquire)) {
      return tcm_published_.load(std::memory_order_relaxed)
          [static_cast<size_t>(isolate_index)];
    }
    return nullptr;
  }
  // Baseline (shared-mode) path: a single cached pointer to mirror 0, the
  // direct static-slot access an unmodified JVM performs.
  TaskClassMirror& sharedMirror() {
    TaskClassMirror* m = shared_mirror_.load(std::memory_order_acquire);
    if (m != nullptr) return *m;
    TaskClassMirror& created = tcm(0);
    shared_mirror_.store(&created, std::memory_order_release);
    return created;
  }
  // Returns the mirror only if already materialized (GC root enumeration
  // must not create mirrors as a side effect).
  TaskClassMirror* tcmIfPresent(i32 isolate_index);
  // Mirror count currently materialized (for memory reports).
  i32 tcmCount() const;

  // ---- hierarchy queries ----
  bool isSubclassOf(const JClass* other) const;
  bool implementsInterface(const JClass* itf) const;
  // `checkcast`/`instanceof`/`aastore` compatibility.
  bool isAssignableTo(const JClass* target) const;

  // ---- member lookup (walks superclasses; interfaces for methods) ----
  JField* findField(const std::string& name);
  JField* findStaticField(const std::string& name);
  JMethod* findMethod(const std::string& name, const std::string& descriptor);
  JMethod* findDeclared(const std::string& name, const std::string& descriptor);
  // Virtual dispatch helper: resolves `name+descriptor` against this
  // (receiver) class walking up the hierarchy.
  JMethod* resolveVirtual(const std::string& name, const std::string& descriptor);

  // Approximate C++-side footprint of this class's metadata, including
  // materialized TCMs. Used by the Figure-3 memory report.
  size_t metadataBytes() const;

 private:
  void republishTcms();  // rebuilds the lock-free snapshot (holds tcm_mutex_)

  mutable std::mutex tcm_mutex_;
  std::vector<std::unique_ptr<TaskClassMirror>> tcms_;
  // Lock-free snapshot for tcmFast(); old snapshots are retired, not freed,
  // so concurrent readers stay valid (bounded by isolate count).
  std::atomic<TaskClassMirror* const*> tcm_published_{nullptr};
  std::atomic<i32> tcm_published_size_{0};
  std::vector<std::unique_ptr<TaskClassMirror*[]>> tcm_retired_;
  std::atomic<TaskClassMirror*> shared_mirror_{nullptr};
};

}  // namespace ijvm
