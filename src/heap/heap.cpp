#include "heap/heap.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>

// The block cache intentionally keeps freed object storage alive for reuse;
// under AddressSanitizer that would mask use-after-free on guest objects, so
// every free goes back to the real allocator there.
#if defined(__SANITIZE_ADDRESS__)
#define IJVM_HEAP_BLOCK_CACHE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IJVM_HEAP_BLOCK_CACHE 0
#endif
#endif
#ifndef IJVM_HEAP_BLOCK_CACHE
#define IJVM_HEAP_BLOCK_CACHE 1
#endif

#include "obs/trace.h"
#include "support/strf.h"


namespace ijvm {


const char* accountingPolicyName(AccountingPolicy p) {
  switch (p) {
    case AccountingPolicy::FirstReference: return "first-reference";
    case AccountingPolicy::CreatorPays: return "creator-pays";
    case AccountingPolicy::DividedShared: return "divided-shared";
  }
  return "?";
}

void Object::traceRefs(const std::function<void(Object*)>& visit) {
  switch (kind) {
    case ObjKind::Plain: {
      Value* f = fields();
      const i32 n = cls != nullptr ? cls->instance_slots : 0;
      for (i32 i = 0; i < n; ++i) {
        if (f[i].kind == Kind::Ref && f[i].ref != nullptr) visit(f[i].ref);
      }
      break;
    }
    case ObjKind::ArrayRef: {
      Object** elems = refElems();
      for (i32 i = 0; i < length; ++i) {
        if (elems[i] != nullptr) visit(elems[i]);
      }
      break;
    }
    case ObjKind::Native:
      if (native() != nullptr) native()->trace(visit);
      break;
    default:
      break;  // primitive arrays and strings hold no references
  }
}

Heap::Heap(size_t gc_threshold) : gc_threshold_(gc_threshold) {
#if IJVM_HEAP_BLOCK_CACHE
  // Retain up to two GC cycles' worth of churn, within sane bounds: enough
  // that an allocate-everything-then-collect workload recycles its whole
  // working set, bounded so an idle heap never pins tens of megabytes.
  cache_cap_bytes_ = std::clamp<size_t>(gc_threshold * 2, size_t{1} << 20,
                                        size_t{32} << 20);
#endif
}

Heap::~Heap() {
  Object* o = all_objects_;
  while (o != nullptr) {
    Object* next = o->gc_next;
    freeObject(o);
    o = next;
  }
  for (std::vector<void*>& bucket : block_cache_) {
    for (void* mem : bucket) ::operator delete(mem);
    bucket.clear();
  }
  cached_bytes_ = 0;
}

int Heap::bucketFor(size_t total) {
#if IJVM_HEAP_BLOCK_CACHE
  if (total <= 4096) {
    const size_t rounded = std::bit_ceil(std::max<size_t>(total, 32));
    return std::countr_zero(rounded) - 5;  // 32 B..4 KiB -> 0..7
  }
  if (total <= size_t{128} << 10) {
    // 4 KiB steps: 8 KiB..128 KiB -> 8..38.
    return 6 + static_cast<int>((total + 4095) / 4096);
  }
#else
  (void)total;
#endif
  return -1;
}

size_t Heap::bucketSize(int bucket) {
  return bucket < 8 ? size_t{32} << bucket
                    : static_cast<size_t>(bucket - 6) * 4096;
}

Object* Heap::allocRaw(JClass* cls, ObjKind kind, size_t payload_bytes, i32 length,
                       i32 creator_isolate) {
  const size_t total = sizeof(Object) + payload_bytes;
  const int bucket = bucketFor(total);
  void* mem = nullptr;
  if (bucket >= 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<void*>& cache = block_cache_[static_cast<size_t>(bucket)];
    if (!cache.empty()) {
      mem = cache.back();
      cache.pop_back();
      cached_bytes_ -= bucketSize(bucket);
      recycled_allocs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (mem == nullptr) {
    mem = ::operator new(bucket >= 0 ? bucketSize(bucket) : total, std::nothrow);
  }
  if (mem == nullptr) return nullptr;
  std::memset(mem, 0, total);
  Object* obj = new (mem) Object();
  obj->cls = cls;
  obj->kind = kind;
  obj->alloc_bucket = bucket >= 0 ? static_cast<u16>(bucket) : kNoBucket;
  obj->length = length;
  obj->byte_size = total;
  obj->creator_isolate = creator_isolate;
  obj->charged_isolate = creator_isolate;

  std::lock_guard<std::mutex> lock(mutex_);
  obj->gc_next = all_objects_;
  all_objects_ = obj;
  live_bytes_.fetch_add(total, std::memory_order_relaxed);
  live_objects_.fetch_add(1, std::memory_order_relaxed);
  bytes_since_gc_.fetch_add(total, std::memory_order_relaxed);
  total_allocated_.fetch_add(total, std::memory_order_relaxed);
  return obj;
}

Object* Heap::allocPlain(JClass* cls, i32 creator_isolate) {
  const size_t payload = static_cast<size_t>(cls->instance_slots) * sizeof(Value);
  Object* obj = allocRaw(cls, ObjKind::Plain, payload, 0, creator_isolate);
  if (obj == nullptr) return nullptr;
  // Initialize fields to typed zero values (memset already made refs null;
  // tags must still be set so the GC sees correct kinds).
  Value* f = obj->fields();
  for (JClass* c = cls; c != nullptr; c = c->super) {
    for (const JField& fd : c->fields) {
      if (!fd.isStatic()) f[fd.slot] = Value::zeroOf(fd.type.kind);
    }
  }
  return obj;
}

Object* Heap::allocArray(JClass* array_cls, i32 length, i32 creator_isolate) {
  IJVM_CHECK(array_cls->is_array, "allocArray on non-array class");
  IJVM_CHECK(length >= 0, "negative array length reaches heap");
  ObjKind kind;
  size_t elem_size;
  switch (array_cls->elem_kind) {
    case Kind::Int:
      kind = ObjKind::ArrayInt;
      elem_size = sizeof(i32);
      break;
    case Kind::Long:
      kind = ObjKind::ArrayLong;
      elem_size = sizeof(i64);
      break;
    case Kind::Double:
      kind = ObjKind::ArrayDouble;
      elem_size = sizeof(double);
      break;
    case Kind::Ref:
      kind = ObjKind::ArrayRef;
      elem_size = sizeof(Object*);
      break;
    default:
      IJVM_UNREACHABLE("bad array element kind");
  }
  return allocRaw(array_cls, kind, elem_size * static_cast<size_t>(length), length,
                  creator_isolate);
}

Object* Heap::allocString(JClass* string_cls, std::string chars, i32 creator_isolate) {
  Object* obj = allocRaw(string_cls, ObjKind::String, sizeof(std::string*), 0,
                         creator_isolate);
  if (obj == nullptr) return nullptr;
  obj->strSlot() = new std::string(std::move(chars));
  const size_t payload = obj->str().capacity();
  obj->byte_size += payload;
  live_bytes_.fetch_add(payload, std::memory_order_relaxed);
  bytes_since_gc_.fetch_add(payload, std::memory_order_relaxed);
  total_allocated_.fetch_add(payload, std::memory_order_relaxed);
  return obj;
}

Object* Heap::allocNative(JClass* cls, std::unique_ptr<NativePayload> payload,
                          i32 creator_isolate) {
  Object* obj =
      allocRaw(cls, ObjKind::Native, sizeof(NativePayload*), 0, creator_isolate);
  if (obj == nullptr) return nullptr;
  obj->nativeSlot() = payload.release();
  return obj;
}

Monitor* Heap::monitorFor(Object* obj) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (obj->monitor == nullptr) obj->monitor = new Monitor();
  return obj->monitor;
}

size_t Heap::footprint(const Object* obj) {
  size_t bytes = obj->byte_size;
  if (obj->kind == ObjKind::Native && obj->native() != nullptr) {
    bytes += obj->native()->byteSize();
  }
  return bytes;
}

void Heap::freeObject(Object* obj) {
  if (obj->kind == ObjKind::String) {
    delete obj->strSlot();
  } else if (obj->kind == ObjKind::Native) {
    delete obj->nativeSlot();
  }
  delete obj->monitor;
  const u16 bucket = obj->alloc_bucket;
  obj->~Object();
  if (bucket != kNoBucket) {
    const size_t block = bucketSize(bucket);
    if (cached_bytes_ + block <= cache_cap_bytes_) {
      block_cache_[bucket].push_back(obj);
      cached_bytes_ += block;
      return;
    }
  }
  ::operator delete(obj);
}

void Heap::forEachObject(const std::function<void(Object*)>& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Object* o = all_objects_; o != nullptr; o = o->gc_next) fn(o);
}

GcStats Heap::collect(const RootEnumerator& enumerate_roots,
                      AccountingPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  GcStats stats;

  auto charge = [&stats, this](Object* o, i32 iso, size_t share_of = 1) {
    if (iso < 0) iso = 0;
    if (static_cast<size_t>(iso) >= stats.charges.size()) {
      stats.charges.resize(static_cast<size_t>(iso) + 1);
    }
    IsolateCharge& c = stats.charges[static_cast<size_t>(iso)];
    c.bytes += footprint(o) / share_of;
    c.objects += 1;
    if (o->kind == ObjKind::Native && o->native() != nullptr &&
        o->native()->isConnection()) {
      c.connections += 1;
    }
  };

  // ---- mark (liveness + first-reference ownership) ----
  // "An object is charged to the first isolate that references it" -- BFS
  // discovery order implements "first". charged_isolate is derived under
  // every policy (termination's dead-isolate detection uses it); only the
  // *billing* below varies.
  std::deque<Object*> queue;
  auto mark_root = [&](Object* o, i32 iso) {
    if (o == nullptr || o->gc_mark != 0) return;
    o->gc_mark = 1;
    o->charged_isolate = iso;
    o->reach_mask = 0;
    if (policy == AccountingPolicy::FirstReference) charge(o, iso);
    queue.push_back(o);
  };

  {
    obs::TraceSpan mark_span(obs::Ev::GcMark, -1);
    enumerate_roots(mark_root);

    while (!queue.empty()) {
      Object* o = queue.front();
      queue.pop_front();
      const i32 iso = o->charged_isolate;
      o->traceRefs([&](Object* child) {
        if (child->gc_mark != 0) return;
        child->gc_mark = 1;
        child->charged_isolate = iso;  // inherits the discovering isolate
        child->reach_mask = 0;
        if (policy == AccountingPolicy::FirstReference) charge(child, iso);
        queue.push_back(child);
      });
    }
  }

  obs::emit(obs::Ev::GcAccounting, obs::Ph::Begin, -1);
  switch (policy) {
    case AccountingPolicy::FirstReference:
      break;  // charged during the mark above
    case AccountingPolicy::CreatorPays:
      // One extra walk over the live set; no propagation.
      for (Object* o = all_objects_; o != nullptr; o = o->gc_next) {
        if (o->gc_mark != 0) charge(o, o->creator_isolate);
      }
      break;
    case AccountingPolicy::DividedShared: {
      // Propagate per-isolate reachability masks to a fixpoint, then split
      // each object's footprint among the isolates that reach it. This is
      // the extra cost the paper declined to pay (section 3.2: "would
      // introduce a new list traversal for all objects during GC").
      auto root_bit = [](i32 iso) -> u64 {
        u64 bit = iso < 0 ? 0 : (iso > 63 ? 63 : static_cast<u64>(iso));
        return u64{1} << bit;
      };
      std::deque<Object*> work;
      enumerate_roots([&](Object* o, i32 iso) {
        if (o == nullptr || o->gc_mark == 0) return;
        u64 bit = root_bit(iso);
        if ((o->reach_mask & bit) == 0) {
          o->reach_mask |= bit;
          work.push_back(o);
        }
      });
      while (!work.empty()) {
        Object* o = work.front();
        work.pop_front();
        const u64 mask = o->reach_mask;
        o->traceRefs([&](Object* child) {
          if ((child->reach_mask | mask) != child->reach_mask) {
            child->reach_mask |= mask;
            work.push_back(child);
          }
        });
      }
      for (Object* o = all_objects_; o != nullptr; o = o->gc_next) {
        if (o->gc_mark == 0) continue;
        const int sharers = std::popcount(o->reach_mask);
        if (sharers > 1) {
          stats.shared_objects += 1;
          stats.shared_bytes += footprint(o);
        }
        for (int bit = 0; bit < 64; ++bit) {
          if ((o->reach_mask >> bit) & 1) {
            charge(o, bit, static_cast<size_t>(sharers));
          }
        }
      }
      break;
    }
  }
  obs::emit(obs::Ev::GcAccounting, obs::Ph::End, -1);

  // ---- sweep ----
  obs::TraceSpan sweep_span(obs::Ev::GcSweep, -1);
  Object** link = &all_objects_;
  size_t live_bytes = 0;
  size_t live_objects = 0;
  while (*link != nullptr) {
    Object* o = *link;
    if (o->gc_mark != 0) {
      o->gc_mark = 0;
      live_bytes += footprint(o);
      ++live_objects;
      link = &o->gc_next;
    } else {
      *link = o->gc_next;
      ++stats.objects_freed;
      stats.bytes_freed += footprint(o);
      freeObject(o);
    }
  }

  stats.live_bytes = live_bytes;
  stats.live_objects = live_objects;
  live_bytes_.store(live_bytes, std::memory_order_relaxed);
  live_objects_.store(live_objects, std::memory_order_relaxed);
  bytes_since_gc_.store(0, std::memory_order_relaxed);
  return stats;
}

}  // namespace ijvm
