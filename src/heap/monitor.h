// Object monitors: the lock behind MONITORENTER/EXIT, synchronized methods
// and Object.wait/notify.
//
// Blocking paths poll in short slices so that (a) Thread.interrupt and
// isolate termination can break a wait, and (b) the safepoint protocol can
// count blocked threads as stopped (the *caller* flips the thread into the
// Blocked state around these calls; the monitor itself is runtime-agnostic).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "support/common.h"

namespace ijvm {

struct Monitor {
  enum class WaitResult { Notified, TimedOut, Interrupted };

  // `self` is an opaque thread identity (JThread*).
  bool tryEnter(void* self);
  // Blocks until acquired; returns false if `cancel` became true first
  // (used by VM shutdown to unwind threads parked on contended monitors).
  bool enter(void* self, const std::atomic<bool>* cancel = nullptr);
  // Returns false if `self` does not own the monitor
  // (IllegalMonitorStateException in the interpreter).
  bool exit(void* self);
  bool ownedBy(const void* self) const;

  // Object.wait: atomically releases the monitor and waits. millis <= 0
  // waits indefinitely. `interrupted` is the thread's interrupt flag; when
  // it becomes true the wait ends with Interrupted (flag is NOT cleared
  // here; Thread semantics are handled by the caller).
  WaitResult wait(void* self, i64 millis, const std::atomic<bool>* interrupted);

  void notifyOne();
  void notifyAll();

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  void* owner_ = nullptr;
  int recursion_ = 0;
  u64 notify_epoch_ = 0;
  int notify_tickets_ = 0;  // pending notifyOne wakeups
  bool notify_all_pending_ = false;
  int waiters_ = 0;
};

}  // namespace ijvm
