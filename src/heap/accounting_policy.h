// Memory-accounting policies for the GC accounting pass.
//
// The paper (section 3.2) charges every live object to the *first* isolate
// that references it during tracing and documents the resulting
// imprecision in section 4.4 (a large object returned by bundle M is
// charged to M's callers), leaving better accounting as future work. The
// two alternative policies implement that future work:
//
//  * CreatorPays  -- charge each object to the isolate that allocated it
//    (recorded at allocation; no extra GC cost). Blame for M's large
//    returned object lands on M. The trade-off: a caller can hold the creator's
//    memory hostage -- retention is billed to the allocator even after it
//    dropped every reference.
//  * DividedShared -- compute, per object, the set of isolates that can
//    reach it and split its footprint evenly among them (the "maintaining
//    a list of isolates that use the shared object" design the paper
//    rejects for cost reasons; bench/ablation_accounting measures that
//    cost). Shared objects are billed fractionally to every sharer.
#pragma once

#include "support/common.h"

namespace ijvm {

enum class AccountingPolicy : u8 {
  FirstReference,  // the paper's policy (default)
  CreatorPays,
  DividedShared,
};

const char* accountingPolicyName(AccountingPolicy p);

}  // namespace ijvm
