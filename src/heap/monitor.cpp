#include "heap/monitor.h"

#include <chrono>

namespace ijvm {

namespace {
// Poll slice for interruptible waits. Short enough that interrupts and
// termination signals are prompt; long enough to avoid busy spinning.
constexpr auto kSlice = std::chrono::microseconds(500);
}  // namespace

bool Monitor::tryEnter(void* self) {
  std::lock_guard<std::mutex> lock(m_);
  if (owner_ == nullptr) {
    owner_ = self;
    recursion_ = 1;
    return true;
  }
  if (owner_ == self) {
    ++recursion_;
    return true;
  }
  return false;
}

bool Monitor::enter(void* self, const std::atomic<bool>* cancel) {
  std::unique_lock<std::mutex> lock(m_);
  if (owner_ == self) {
    ++recursion_;
    return true;
  }
  while (owner_ != nullptr) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return false;
    cv_.wait_for(lock, kSlice);
  }
  owner_ = self;
  recursion_ = 1;
  return true;
}

bool Monitor::exit(void* self) {
  std::lock_guard<std::mutex> lock(m_);
  if (owner_ != self) return false;
  if (--recursion_ == 0) {
    owner_ = nullptr;
    cv_.notify_all();
  }
  return true;
}

bool Monitor::ownedBy(const void* self) const {
  std::lock_guard<std::mutex> lock(m_);
  return owner_ == self;
}

Monitor::WaitResult Monitor::wait(void* self, i64 millis,
                                  const std::atomic<bool>* interrupted) {
  std::unique_lock<std::mutex> lock(m_);
  if (owner_ != self) return WaitResult::Interrupted;  // caller validates first

  const int saved_recursion = recursion_;
  owner_ = nullptr;
  recursion_ = 0;
  cv_.notify_all();

  const u64 entry_epoch = notify_epoch_;
  ++waiters_;

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(millis > 0 ? millis : 0);
  WaitResult result = WaitResult::Notified;
  for (;;) {
    if (interrupted != nullptr && interrupted->load(std::memory_order_acquire)) {
      result = WaitResult::Interrupted;
      break;
    }
    if (notify_all_pending_ && notify_epoch_ != entry_epoch) {
      break;  // woken by notifyAll
    }
    if (notify_tickets_ > 0) {
      --notify_tickets_;
      break;  // woken by notify
    }
    if (millis > 0 && std::chrono::steady_clock::now() >= deadline) {
      result = WaitResult::TimedOut;
      break;
    }
    cv_.wait_for(lock, kSlice);
  }
  --waiters_;
  if (waiters_ == 0) notify_all_pending_ = false;

  // Re-acquire the monitor before returning (Object.wait semantics). An
  // interrupted waiter still re-acquires (Java semantics: the
  // InterruptedException is thrown with the monitor held).
  while (owner_ != nullptr && owner_ != self) {
    if (interrupted != nullptr && interrupted->load(std::memory_order_acquire) &&
        result != WaitResult::Interrupted) {
      result = WaitResult::Interrupted;
    }
    cv_.wait_for(lock, kSlice);
  }
  owner_ = self;
  recursion_ = saved_recursion;
  return result;
}

void Monitor::notifyOne() {
  std::lock_guard<std::mutex> lock(m_);
  if (waiters_ > notify_tickets_) ++notify_tickets_;
  cv_.notify_all();
}

void Monitor::notifyAll() {
  std::lock_guard<std::mutex> lock(m_);
  ++notify_epoch_;
  notify_all_pending_ = waiters_ > 0;
  cv_.notify_all();
}

}  // namespace ijvm
