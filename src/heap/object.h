// Heap object model.
//
// Every guest object is a header followed by its payload:
//   Plain    -- Value slots (instance fields, including superclasses)
//   Array*   -- typed element payload (i32 / i64 / double / Object*)
//   String   -- immutable character payload (owned std::string)
//   Native   -- an opaque C++ payload (connections, collections, ...)
//
// The header records the *creator* isolate (paper: "when an isolate
// allocates an object, I-JVM charges the object to the isolate") and the
// isolate the object was charged to by the most recent GC accounting pass.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bytecode/value.h"
#include "classes/jclass.h"

namespace ijvm {

struct Monitor;

enum class ObjKind : u8 {
  Plain,
  ArrayInt,
  ArrayLong,
  ArrayDouble,
  ArrayRef,
  String,
  Native,
};

// Base class for C++ payloads of Native objects. Payloads that hold guest
// references must override trace() so the GC can see them.
class NativePayload {
 public:
  virtual ~NativePayload() = default;
  // Visit every guest reference held by this payload.
  virtual void trace(const std::function<void(Object*)>& visit) { (void)visit; }
  // Current payload footprint in bytes (may grow, e.g. StringBuilder).
  virtual size_t byteSize() const { return 0; }
  // True for connection-like resources (FileDescriptor / Socket); the GC
  // accounting pass counts these per isolate (paper section 3.2).
  virtual bool isConnection() const { return false; }
};

struct Object {
  JClass* cls = nullptr;
  ObjKind kind = ObjKind::Plain;
  u8 gc_mark = 0;
  // Heap block-cache size class this object's storage came from (0xffff:
  // allocated directly, returned to the system allocator on free). Fits in
  // what was header padding.
  u16 alloc_bucket = 0xffff;
  i32 creator_isolate = 0;   // isolate that allocated the object
  i32 charged_isolate = -1;  // isolate charged by the last GC pass (-1: none)
  // Scratch bitmask used by the DividedShared accounting pass: bit i set =
  // reachable from isolate min(i, 63). Only meaningful during a collection.
  u64 reach_mask = 0;
  Monitor* monitor = nullptr;  // lazily created
  i32 length = 0;              // arrays: element count
  size_t byte_size = 0;        // header + payload footprint at allocation
  Object* gc_next = nullptr;   // intrusive all-objects list for sweeping

  // ---- payload accessors (no bounds checks here; interpreter checks) ----
  Value* fields() { return reinterpret_cast<Value*>(this + 1); }
  i32* intElems() { return reinterpret_cast<i32*>(this + 1); }
  i64* longElems() { return reinterpret_cast<i64*>(this + 1); }
  double* doubleElems() { return reinterpret_cast<double*>(this + 1); }
  Object** refElems() { return reinterpret_cast<Object**>(this + 1); }

  // String payload (kind == String).
  const std::string& str() const {
    return **reinterpret_cast<std::string* const*>(this + 1);
  }
  std::string*& strSlot() { return *reinterpret_cast<std::string**>(this + 1); }

  // Native payload (kind == Native).
  NativePayload* native() const {
    return *reinterpret_cast<NativePayload* const*>(this + 1);
  }
  NativePayload*& nativeSlot() { return *reinterpret_cast<NativePayload**>(this + 1); }

  bool isArray() const {
    return kind == ObjKind::ArrayInt || kind == ObjKind::ArrayLong ||
           kind == ObjKind::ArrayDouble || kind == ObjKind::ArrayRef;
  }

  // Visit all guest references reachable directly from this object.
  void traceRefs(const std::function<void(Object*)>& visit);
};

}  // namespace ijvm
