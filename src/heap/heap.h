// The garbage-collected heap.
//
// A stop-the-world mark-sweep collector over a single address space shared
// by all isolates -- exactly the setting of the paper (one GC for all
// isolates, section 3.2). The collector doubles as the resource-accounting
// pass: besides collecting unreferenced objects it re-derives the memory
// and connection usage of every isolate:
//
//   1. per-isolate usage is reset to zero;
//   2. each isolate's roots (interned strings, static variables, Class
//      objects) are enumerated tagged with that isolate;
//   3. each thread frame's references are enumerated tagged with the
//      isolate the frame executes in (system-library frames are skipped by
//      the enumerator -- their objects are reachable from the caller);
//   4. tracing charges every live object to the first isolate that reaches
//      it (BFS discovery order).
//
// The *caller* (VM::collectGarbage) is responsible for bringing all guest
// threads to a safepoint first; the heap itself is oblivious to threads.
//
// Block recycling: object storage freed by the sweep is retained in a
// size-bucketed cache (bounded by a multiple of the GC threshold) and
// handed back out by the next allocations of the same size class, instead
// of being returned to the system allocator. Allocation-heavy guests cycle
// their working set through the heap once per GC; round-tripping that
// memory through malloc/free lets the C library return the pages to the OS
// between cycles (glibc arena trimming), turning every sweep into syscalls
// and every re-allocation into page faults -- with pause times at the mercy
// of allocator heap-layout luck. The cache keeps the hot path entirely in
// user space. Disabled under AddressSanitizer so use-after-free detection
// keeps seeing real frees.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "heap/accounting_policy.h"
#include "heap/monitor.h"
#include "heap/object.h"

namespace ijvm {

// Charges computed for one isolate by a GC pass.
struct IsolateCharge {
  size_t bytes = 0;
  size_t objects = 0;
  size_t connections = 0;
};

struct GcStats {
  size_t objects_freed = 0;
  size_t bytes_freed = 0;
  size_t live_objects = 0;
  size_t live_bytes = 0;
  // Objects reachable from more than one isolate (computed only under
  // AccountingPolicy::DividedShared, zero otherwise).
  size_t shared_objects = 0;
  size_t shared_bytes = 0;
  std::vector<IsolateCharge> charges;  // indexed by isolate id
};

// Sink used by root enumeration: (object, isolate-to-charge).
using RootSink = std::function<void(Object*, i32)>;
// Root enumerator provided by the VM.
using RootEnumerator = std::function<void(const RootSink&)>;

class Heap {
 public:
  // gc_threshold: allocated-bytes-since-last-GC that triggers a collection
  // request (checked by the VM after allocations).
  explicit Heap(size_t gc_threshold);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // ---- allocation (thread-safe). Returns nullptr on hard OOM only. ----
  Object* allocPlain(JClass* cls, i32 creator_isolate);
  Object* allocArray(JClass* array_cls, i32 length, i32 creator_isolate);
  Object* allocString(JClass* string_cls, std::string chars, i32 creator_isolate);
  Object* allocNative(JClass* cls, std::unique_ptr<NativePayload> payload,
                      i32 creator_isolate);

  Monitor* monitorFor(Object* obj);

  // ---- statistics ----
  size_t liveBytes() const { return live_bytes_.load(std::memory_order_relaxed); }
  size_t liveObjects() const { return live_objects_.load(std::memory_order_relaxed); }
  size_t bytesSinceGc() const { return bytes_since_gc_.load(std::memory_order_relaxed); }
  u64 totalAllocatedBytes() const { return total_allocated_.load(std::memory_order_relaxed); }
  // Allocations served from the block cache / bytes currently retained.
  u64 recycledAllocs() const { return recycled_allocs_.load(std::memory_order_relaxed); }
  size_t cachedBytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cached_bytes_;
  }
  bool wantsGc() const { return bytesSinceGc() >= gc_threshold_; }
  size_t gcThreshold() const { return gc_threshold_; }

  // ---- collection (caller must hold the world stopped) ----
  GcStats collect(const RootEnumerator& enumerate_roots,
                  AccountingPolicy policy = AccountingPolicy::FirstReference);

  // Visits every live object. Only meaningful while the world is stopped
  // (the VM uses it right after a collection to detect dead isolates).
  void forEachObject(const std::function<void(Object*)>& fn);

 private:
  // Block-cache size classes: powers of two from 32 B to 4 KiB, then 4 KiB
  // multiples up to 128 KiB. Larger blocks bypass the cache.
  static constexpr int kNumBuckets = 39;
  static constexpr u16 kNoBucket = 0xffff;
  static int bucketFor(size_t total);       // -1: uncacheable size
  static size_t bucketSize(int bucket);

  Object* allocRaw(JClass* cls, ObjKind kind, size_t payload_bytes, i32 length,
                   i32 creator_isolate);
  static size_t footprint(const Object* obj);
  void freeObject(Object* obj);  // caller holds mutex_ (or is the destructor)

  size_t gc_threshold_;
  mutable std::mutex mutex_;  // guards the object list, block cache, monitors
  std::array<std::vector<void*>, kNumBuckets> block_cache_;
  size_t cached_bytes_ = 0;
  size_t cache_cap_bytes_ = 0;  // 0 disables retention
  std::atomic<u64> recycled_allocs_{0};
  Object* all_objects_ = nullptr;
  std::atomic<size_t> live_bytes_{0};
  std::atomic<size_t> live_objects_{0};
  std::atomic<size_t> bytes_since_gc_{0};
  std::atomic<u64> total_allocated_{0};
};

}  // namespace ijvm
