// ClassDef: the "class file" -- the loader-independent, unlinked form of a
// class, produced by ClassBuilder and consumed by ClassRegistry::define.
#pragma once

#include <string>
#include <vector>

#include "bytecode/constant_pool.h"
#include "bytecode/instruction.h"

namespace ijvm {

// Access / modifier flags (subset of the JVM's).
enum AccessFlags : u16 {
  ACC_PUBLIC = 0x0001,
  ACC_PRIVATE = 0x0002,
  ACC_STATIC = 0x0008,
  ACC_FINAL = 0x0010,
  ACC_SYNCHRONIZED = 0x0020,
  ACC_NATIVE = 0x0100,
  ACC_INTERFACE = 0x0200,
  ACC_ABSTRACT = 0x0400,
};

struct FieldDef {
  std::string name;
  std::string descriptor;
  u16 flags = ACC_PUBLIC;
};

struct MethodDef {
  std::string name;
  std::string descriptor;
  u16 flags = ACC_PUBLIC;
  Code code;  // empty for native/abstract methods
};

struct ClassDef {
  std::string name;                     // e.g. "demo/Main"
  std::string super_name;               // "" only for java/lang/Object
  std::vector<std::string> interfaces;  // names of implemented interfaces
  u16 flags = ACC_PUBLIC;
  std::vector<FieldDef> fields;
  std::vector<MethodDef> methods;
  ConstantPool pool;
};

}  // namespace ijvm
