#include "bytecode/disasm.h"

#include "support/strf.h"

namespace ijvm {

namespace {

std::string poolOperand(const ConstantPool& pool, i32 idx) {
  if (idx < 0 || idx >= pool.size()) return strf("<bad pool #%d>", idx);
  const CpEntry& e = pool.at(idx);
  switch (e.tag) {
    case CpTag::Int:
      return strf("int %lld", static_cast<long long>(e.i));
    case CpTag::Long:
      return strf("long %lldL", static_cast<long long>(e.i));
    case CpTag::Double:
      return strf("double %g", e.d);
    case CpTag::String:
      return strf("\"%s\"", e.text.c_str());
    case CpTag::ClassRef:
      return e.text;
    case CpTag::FieldRef:
    case CpTag::MethodRef:
      return strf("%s.%s%s%s", e.owner.c_str(), e.name.c_str(),
                  e.tag == CpTag::FieldRef ? ":" : "", e.descriptor.c_str());
  }
  return "?";
}

bool opUsesPool(Op op) {
  switch (op) {
    case Op::LDC:
    case Op::GETSTATIC:
    case Op::PUTSTATIC:
    case Op::GETFIELD:
    case Op::PUTFIELD:
    case Op::INVOKEVIRTUAL:
    case Op::INVOKESPECIAL:
    case Op::INVOKESTATIC:
    case Op::INVOKEINTERFACE:
    case Op::NEW:
    case Op::ANEWARRAY:
    case Op::CHECKCAST:
    case Op::INSTANCEOF:
    // Quickened forms (seen when disassembling a method's rewritten
    // instruction stream, exec::disasmQuickened) keep the original pool
    // index in `a`, so they render with the same symbolic operand.
    case Op::LDC_INT_Q:
    case Op::LDC_LONG_Q:
    case Op::LDC_DOUBLE_Q:
    case Op::LDC_STR_Q:
    case Op::GETSTATIC_Q:
    case Op::PUTSTATIC_Q:
    case Op::GETFIELD_Q:
    case Op::PUTFIELD_Q:
    case Op::INVOKEVIRTUAL_Q:
    case Op::INVOKESPECIAL_Q:
    case Op::INVOKESTATIC_Q:
    case Op::INVOKEINTERFACE_Q:
    case Op::NEW_Q:
    case Op::ANEWARRAY_Q:
    case Op::CHECKCAST_Q:
    case Op::INSTANCEOF_Q:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string disasmInsn(const ConstantPool& pool, const Instruction& insn, i32 index) {
  std::string s = strf("%4d: %-14s", index, opName(insn.op));
  if (opIsBranch(insn.op)) {
    s += strf(" -> %d", insn.a);
  } else if (opUsesPool(insn.op)) {
    s += " " + poolOperand(pool, insn.a);
  } else if (insn.op == Op::IINC) {
    s += strf(" slot=%d delta=%d", insn.a, insn.b);
  } else if (insn.op == Op::ICONST || insn.op == Op::NEWARRAY ||
             insn.op == Op::ILOAD || insn.op == Op::LLOAD || insn.op == Op::DLOAD ||
             insn.op == Op::ALOAD || insn.op == Op::ISTORE || insn.op == Op::LSTORE ||
             insn.op == Op::DSTORE || insn.op == Op::ASTORE) {
    s += strf(" %d", insn.a);
  }
  return s;
}

std::string disasmFusedInsn(Op op, i32 index, i32 a, i32 b, i32 c, i64 imm,
                            const std::string& field_sym) {
  std::string s = strf("%4d: %-14s", index, opName(op));
  switch (op) {
    case Op::ILOAD_ILOAD_IADD_F:
    case Op::ILOAD_ILOAD_ISUB_F:
    case Op::ILOAD_ILOAD_IMUL_F:
    case Op::ILOAD_ILOAD_IAND_F:
    case Op::ILOAD_ILOAD_IOR_F:
    case Op::ILOAD_ILOAD_IXOR_F:
      s += strf(" slots=[%d %d]", a, c);
      break;
    case Op::ILOAD_ILOAD_IF_ICMPEQ_F:
    case Op::ILOAD_ILOAD_IF_ICMPNE_F:
    case Op::ILOAD_ILOAD_IF_ICMPLT_F:
    case Op::ILOAD_ILOAD_IF_ICMPGE_F:
    case Op::ILOAD_ILOAD_IF_ICMPGT_F:
    case Op::ILOAD_ILOAD_IF_ICMPLE_F:
      s += strf(" slots=[%d %d] -> %d", a, c, static_cast<i32>(imm));
      break;
    case Op::ICONST_IADD_F:
      s += strf(" imm=%d", a);
      break;
    case Op::ALOAD_GETFIELD_F:
      s += strf(" slot=%d %s", a, field_sym.c_str());
      break;
    case Op::IINC_GOTO_F:
      s += strf(" slot=%d delta=%d -> %d", a, b, c);
      break;
    default:
      break;
  }
  return s;
}

std::string disasmCompiledThunk(i32 slot, i32 pc, const char* handler,
                                const std::string& operands) {
  std::string s = strf("  t%-3d pc %-3d %-24s", slot, pc, handler);
  if (!operands.empty()) s += " " + operands;
  return s;
}

std::string disasmMethod(const ConstantPool& pool, const MethodDef& method) {
  std::string out = strf("%s%s  (flags=0x%x, max_locals=%u)\n", method.name.c_str(),
                         method.descriptor.c_str(), method.flags,
                         static_cast<unsigned>(method.code.max_locals));
  if ((method.flags & ACC_NATIVE) != 0) {
    out += "  <native>\n";
    return out;
  }
  for (i32 i = 0; i < static_cast<i32>(method.code.insns.size()); ++i) {
    out += "  " + disasmInsn(pool, method.code.insns[static_cast<size_t>(i)], i) + "\n";
  }
  for (const ExHandler& h : method.code.handlers) {
    out += strf("  handler [%d,%d) -> %d catch %s\n", h.start, h.end, h.handler,
                h.catch_type_pool < 0 ? "<any>"
                                      : pool.at(h.catch_type_pool).text.c_str());
  }
  return out;
}

std::string disasmClass(const ClassDef& def) {
  std::string out = strf("class %s extends %s\n", def.name.c_str(),
                         def.super_name.empty() ? "<none>" : def.super_name.c_str());
  for (const auto& itf : def.interfaces) out += "  implements " + itf + "\n";
  for (const auto& f : def.fields) {
    out += strf("  field %s:%s (flags=0x%x)\n", f.name.c_str(), f.descriptor.c_str(),
                f.flags);
  }
  for (const auto& m : def.methods) {
    out += disasmMethod(def.pool, m);
  }
  return out;
}

}  // namespace ijvm
