// JVM-style type and method descriptors.
//
//   I = int (covers boolean/byte/char/short)   J = long   D = double
//   V = void   Lpkg/Cls; = class reference     [T = array of T
//
// Example: "(I[Ljava/lang/String;)J" -- (int, String[]) -> long.
#pragma once

#include <string>
#include <vector>

#include "bytecode/value.h"

namespace ijvm {

// A parsed field/parameter/return type.
struct TypeDesc {
  Kind kind = Kind::Void;       // Ref for classes and arrays
  std::string class_name;       // for Ref: element/ class name ("" for prim arrays)
  int array_dims = 0;           // 0 = scalar
  Kind elem_kind = Kind::Void;  // for arrays: element kind at dims==1

  bool isRef() const { return kind == Kind::Ref; }
  bool isArray() const { return array_dims > 0; }

  // Canonical descriptor text, e.g. "[[I" or "Ljava/lang/String;".
  std::string toString() const;

  static TypeDesc ofKind(Kind k) {
    TypeDesc t;
    t.kind = k;
    return t;
  }
  static TypeDesc ofClass(std::string name) {
    TypeDesc t;
    t.kind = Kind::Ref;
    t.class_name = std::move(name);
    return t;
  }
};

struct MethodSig {
  std::vector<TypeDesc> params;
  TypeDesc ret;

  // Number of argument slots including an implicit receiver if !is_static.
  int argSlots(bool is_static) const {
    return static_cast<int>(params.size()) + (is_static ? 0 : 1);
  }
};

// Parse a field descriptor. Panics on malformed input (descriptors are
// produced by trusted builder code, not by guest programs).
TypeDesc parseTypeDesc(const std::string& desc);

// Parse a "(params)ret" method descriptor.
MethodSig parseMethodSig(const std::string& desc);

// The runtime class name a TypeDesc resolves against, e.g. "[I",
// "[Ljava/lang/String;" or "java/lang/String". Empty for primitives.
std::string typeRuntimeClassName(const TypeDesc& t);

}  // namespace ijvm
