#include "bytecode/builder.h"

#include <algorithm>

#include "support/strf.h"

namespace ijvm {

MethodBuilder::MethodBuilder(ClassBuilder* owner, std::string name,
                             std::string descriptor, u16 flags)
    : owner_(owner), name_(std::move(name)), descriptor_(std::move(descriptor)),
      flags_(flags) {}

Label MethodBuilder::newLabel() {
  Label l;
  l.id = static_cast<i32>(label_pos_.size());
  label_pos_.push_back(-1);
  return l;
}

MethodBuilder& MethodBuilder::bind(Label l) {
  IJVM_CHECK(l.id >= 0 && l.id < static_cast<i32>(label_pos_.size()),
             "bind: label not from this method");
  IJVM_CHECK(label_pos_[static_cast<size_t>(l.id)] == -1, "bind: label bound twice");
  label_pos_[static_cast<size_t>(l.id)] = static_cast<i32>(code_.size());
  return *this;
}

MethodBuilder& MethodBuilder::emit(Op op, i32 a, i32 b) {
  // Track the highest local slot touched for max_locals inference.
  switch (op) {
    case Op::ILOAD:
    case Op::LLOAD:
    case Op::DLOAD:
    case Op::ALOAD:
    case Op::ISTORE:
    case Op::LSTORE:
    case Op::DSTORE:
    case Op::ASTORE:
    case Op::IINC:
      max_local_touched_ = std::max(max_local_touched_, a);
      break;
    default:
      break;
  }
  code_.push_back(Instruction{op, a, b});
  return *this;
}

MethodBuilder& MethodBuilder::emitBranch(Op op, Label l) {
  IJVM_CHECK(l.id >= 0 && l.id < static_cast<i32>(label_pos_.size()),
             "branch: label not from this method");
  branch_fixups_.push_back(static_cast<i32>(code_.size()));
  code_.push_back(Instruction{op, l.id, 0});
  return *this;
}

MethodBuilder& MethodBuilder::lconst(i64 v) {
  return emit(Op::LDC, owner_->pool().addLong(v));
}

MethodBuilder& MethodBuilder::dconst(double v) {
  return emit(Op::LDC, owner_->pool().addDouble(v));
}

MethodBuilder& MethodBuilder::ldcStr(const std::string& s) {
  return emit(Op::LDC, owner_->pool().addString(s));
}

MethodBuilder& MethodBuilder::getstatic(const std::string& owner,
                                        const std::string& name,
                                        const std::string& desc) {
  return emit(Op::GETSTATIC, owner_->pool().addFieldRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::putstatic(const std::string& owner,
                                        const std::string& name,
                                        const std::string& desc) {
  return emit(Op::PUTSTATIC, owner_->pool().addFieldRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::getfield(const std::string& owner,
                                       const std::string& name,
                                       const std::string& desc) {
  return emit(Op::GETFIELD, owner_->pool().addFieldRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::putfield(const std::string& owner,
                                       const std::string& name,
                                       const std::string& desc) {
  return emit(Op::PUTFIELD, owner_->pool().addFieldRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::invokevirtual(const std::string& owner,
                                            const std::string& name,
                                            const std::string& desc) {
  return emit(Op::INVOKEVIRTUAL, owner_->pool().addMethodRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::invokespecial(const std::string& owner,
                                            const std::string& name,
                                            const std::string& desc) {
  return emit(Op::INVOKESPECIAL, owner_->pool().addMethodRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::invokestatic(const std::string& owner,
                                           const std::string& name,
                                           const std::string& desc) {
  return emit(Op::INVOKESTATIC, owner_->pool().addMethodRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::invokeinterface(const std::string& owner,
                                              const std::string& name,
                                              const std::string& desc) {
  return emit(Op::INVOKEINTERFACE, owner_->pool().addMethodRef(owner, name, desc));
}

MethodBuilder& MethodBuilder::newObject(const std::string& class_name) {
  return emit(Op::NEW, owner_->pool().addClassRef(class_name));
}

MethodBuilder& MethodBuilder::newDefault(const std::string& class_name) {
  newObject(class_name);
  dup();
  return invokespecial(class_name, "<init>", "()V");
}

MethodBuilder& MethodBuilder::newarray(Kind elem) {
  i32 code;
  switch (elem) {
    case Kind::Int:
      code = 0;
      break;
    case Kind::Long:
      code = 1;
      break;
    case Kind::Double:
      code = 2;
      break;
    default:
      IJVM_UNREACHABLE("newarray: element kind must be Int/Long/Double");
  }
  return emit(Op::NEWARRAY, code);
}

MethodBuilder& MethodBuilder::anewarray(const std::string& elem_class) {
  return emit(Op::ANEWARRAY, owner_->pool().addClassRef(elem_class));
}

MethodBuilder& MethodBuilder::checkcast(const std::string& class_name) {
  return emit(Op::CHECKCAST, owner_->pool().addClassRef(class_name));
}

MethodBuilder& MethodBuilder::instanceOf(const std::string& class_name) {
  return emit(Op::INSTANCEOF, owner_->pool().addClassRef(class_name));
}

MethodBuilder& MethodBuilder::handler(Label from, Label to, Label target,
                                      const std::string& catch_class) {
  handlers_.push_back(PendingHandler{from, to, target, catch_class});
  return *this;
}

MethodBuilder& MethodBuilder::maxLocals(u16 n) {
  explicit_max_locals_ = n;
  return *this;
}

MethodDef MethodBuilder::finish() {
  // Resolve label ids to instruction indices.
  auto resolve = [&](Label l) -> i32 {
    i32 pos = label_pos_[static_cast<size_t>(l.id)];
    IJVM_CHECK(pos >= 0, strf("method %s: unbound label %d", name_.c_str(), l.id));
    return pos;
  };
  for (i32 at : branch_fixups_) {
    Instruction& insn = code_[static_cast<size_t>(at)];
    Label l{insn.a};
    insn.a = resolve(l);
  }

  MethodDef def;
  def.name = name_;
  def.descriptor = descriptor_;
  def.flags = flags_;
  def.code.insns = std::move(code_);

  MethodSig sig = parseMethodSig(descriptor_);
  i32 arg_slots = sig.argSlots((flags_ & ACC_STATIC) != 0);
  i32 locals = std::max(arg_slots, max_local_touched_ + 1);
  if (explicit_max_locals_ >= 0) locals = std::max(locals, explicit_max_locals_);
  def.code.max_locals = static_cast<u16>(locals);

  for (const PendingHandler& h : handlers_) {
    ExHandler eh;
    eh.start = resolve(h.from);
    eh.end = resolve(h.to);
    eh.handler = resolve(h.target);
    eh.catch_type_pool =
        h.catch_class.empty() ? -1 : owner_->pool().addClassRef(h.catch_class);
    def.code.handlers.push_back(eh);
  }
  return def;
}

ClassBuilder::ClassBuilder(std::string name, std::string super_name, u16 flags)
    : name_(std::move(name)) {
  def_.name = name_;
  def_.super_name = std::move(super_name);
  def_.flags = flags;
}

ClassBuilder& ClassBuilder::addInterface(const std::string& name) {
  def_.interfaces.push_back(name);
  return *this;
}

ClassBuilder& ClassBuilder::field(const std::string& name,
                                  const std::string& descriptor, u16 flags) {
  def_.fields.push_back(FieldDef{name, descriptor, flags});
  return *this;
}

MethodBuilder& ClassBuilder::method(const std::string& name,
                                    const std::string& descriptor, u16 flags) {
  methods_.push_back(std::make_unique<MethodBuilder>(this, name, descriptor, flags));
  return *methods_.back();
}

ClassBuilder& ClassBuilder::nativeMethod(const std::string& name,
                                         const std::string& descriptor,
                                         u16 extra_flags) {
  MethodDef def;
  def.name = name;
  def.descriptor = descriptor;
  def.flags = static_cast<u16>(ACC_PUBLIC | ACC_NATIVE | extra_flags);
  def_.methods.push_back(std::move(def));
  return *this;
}

ClassBuilder& ClassBuilder::abstractMethod(const std::string& name,
                                           const std::string& descriptor) {
  MethodDef def;
  def.name = name;
  def.descriptor = descriptor;
  def.flags = ACC_PUBLIC | ACC_ABSTRACT;
  def_.methods.push_back(std::move(def));
  return *this;
}

ClassBuilder& ClassBuilder::defaultCtor() {
  for (const auto& mb : methods_) {
    if (mb->name() == "<init>") return *this;
  }
  for (const auto& m : def_.methods) {
    if (m.name == "<init>") return *this;
  }
  auto& m = method("<init>", "()V");
  m.aload(0).invokespecial(def_.super_name, "<init>", "()V").ret();
  return *this;
}

ClassDef ClassBuilder::build() {
  IJVM_CHECK(!built_, strf("class %s built twice", def_.name.c_str()));
  built_ = true;
  if ((def_.flags & ACC_INTERFACE) == 0 && !def_.super_name.empty()) {
    defaultCtor();
  }
  for (auto& mb : methods_) {
    def_.methods.push_back(mb->finish());
  }
  methods_.clear();
  return std::move(def_);
}

}  // namespace ijvm
