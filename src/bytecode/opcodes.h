// The ijvm bytecode instruction set.
//
// A JVM-like, verified, stack-based ISA. Instructions are pre-decoded into
// fixed-size records (see instruction.h); `a` and `b` are the operands whose
// meaning is listed per opcode below. "pool:X" means `a` indexes the owning
// class's constant pool and the entry must have tag X.
#pragma once

#include "support/common.h"

namespace ijvm {

// X-macro: OP(name, stack_pops, stack_pushes, operand_doc)
// pops/pushes of -1 mean "depends on the resolved call/field signature".
#define IJVM_OPCODES(OP)                                                \
  /* ---- constants ---- */                                             \
  OP(NOP, 0, 0, "")                                                     \
  OP(ACONST_NULL, 0, 1, "")                                             \
  OP(ICONST, 0, 1, "a=imm32")                                           \
  OP(LDC, 0, 1, "a=pool:Int|Long|Double|String")                        \
  /* ---- locals ---- */                                                \
  OP(ILOAD, 0, 1, "a=slot")                                             \
  OP(LLOAD, 0, 1, "a=slot")                                             \
  OP(DLOAD, 0, 1, "a=slot")                                             \
  OP(ALOAD, 0, 1, "a=slot")                                             \
  OP(ISTORE, 1, 0, "a=slot")                                            \
  OP(LSTORE, 1, 0, "a=slot")                                            \
  OP(DSTORE, 1, 0, "a=slot")                                            \
  OP(ASTORE, 1, 0, "a=slot")                                            \
  OP(IINC, 0, 0, "a=slot b=delta")                                      \
  /* ---- operand stack ---- */                                         \
  OP(POP, 1, 0, "")                                                     \
  OP(DUP, 1, 2, "")                                                     \
  OP(DUP_X1, 2, 3, "")                                                  \
  OP(SWAP, 2, 2, "")                                                    \
  /* ---- int arithmetic ---- */                                        \
  OP(IADD, 2, 1, "")                                                    \
  OP(ISUB, 2, 1, "")                                                    \
  OP(IMUL, 2, 1, "")                                                    \
  OP(IDIV, 2, 1, "throws ArithmeticException on /0")                    \
  OP(IREM, 2, 1, "throws ArithmeticException on /0")                    \
  OP(INEG, 1, 1, "")                                                    \
  OP(ISHL, 2, 1, "")                                                    \
  OP(ISHR, 2, 1, "")                                                    \
  OP(IUSHR, 2, 1, "")                                                   \
  OP(IAND, 2, 1, "")                                                    \
  OP(IOR, 2, 1, "")                                                     \
  OP(IXOR, 2, 1, "")                                                    \
  /* ---- long arithmetic ---- */                                       \
  OP(LADD, 2, 1, "")                                                    \
  OP(LSUB, 2, 1, "")                                                    \
  OP(LMUL, 2, 1, "")                                                    \
  OP(LDIV, 2, 1, "throws ArithmeticException on /0")                    \
  OP(LREM, 2, 1, "throws ArithmeticException on /0")                    \
  OP(LNEG, 1, 1, "")                                                    \
  OP(LSHL, 2, 1, "shift amount is an int")                              \
  OP(LSHR, 2, 1, "shift amount is an int")                              \
  OP(LAND, 2, 1, "")                                                    \
  OP(LOR, 2, 1, "")                                                     \
  OP(LXOR, 2, 1, "")                                                    \
  OP(LCMP, 2, 1, "pushes -1/0/1 as int")                                \
  /* ---- double arithmetic ---- */                                     \
  OP(DADD, 2, 1, "")                                                    \
  OP(DSUB, 2, 1, "")                                                    \
  OP(DMUL, 2, 1, "")                                                    \
  OP(DDIV, 2, 1, "")                                                    \
  OP(DREM, 2, 1, "fmod semantics")                                      \
  OP(DNEG, 1, 1, "")                                                    \
  OP(DCMPL, 2, 1, "NaN compares as -1")                                 \
  OP(DCMPG, 2, 1, "NaN compares as 1")                                  \
  /* ---- conversions ---- */                                           \
  OP(I2L, 1, 1, "")                                                     \
  OP(I2D, 1, 1, "")                                                     \
  OP(L2I, 1, 1, "")                                                     \
  OP(L2D, 1, 1, "")                                                     \
  OP(D2I, 1, 1, "saturating, NaN -> 0")                                 \
  OP(D2L, 1, 1, "saturating, NaN -> 0")                                 \
  /* ---- branches (a = target instruction index) ---- */               \
  OP(IFEQ, 1, 0, "a=target")                                            \
  OP(IFNE, 1, 0, "a=target")                                            \
  OP(IFLT, 1, 0, "a=target")                                            \
  OP(IFGE, 1, 0, "a=target")                                            \
  OP(IFGT, 1, 0, "a=target")                                            \
  OP(IFLE, 1, 0, "a=target")                                            \
  OP(IF_ICMPEQ, 2, 0, "a=target")                                       \
  OP(IF_ICMPNE, 2, 0, "a=target")                                       \
  OP(IF_ICMPLT, 2, 0, "a=target")                                       \
  OP(IF_ICMPGE, 2, 0, "a=target")                                       \
  OP(IF_ICMPGT, 2, 0, "a=target")                                       \
  OP(IF_ICMPLE, 2, 0, "a=target")                                       \
  OP(IF_ACMPEQ, 2, 0, "a=target")                                       \
  OP(IF_ACMPNE, 2, 0, "a=target")                                       \
  OP(IFNULL, 1, 0, "a=target")                                          \
  OP(IFNONNULL, 1, 0, "a=target")                                       \
  OP(GOTO, 0, 0, "a=target")                                            \
  /* ---- returns ---- */                                               \
  OP(RETURN, 0, 0, "")                                                  \
  OP(IRETURN, 1, 0, "")                                                 \
  OP(LRETURN, 1, 0, "")                                                 \
  OP(DRETURN, 1, 0, "")                                                 \
  OP(ARETURN, 1, 0, "")                                                 \
  /* ---- fields ---- */                                                \
  OP(GETSTATIC, 0, 1, "a=pool:FieldRef (isolate-indexed via TCM)")      \
  OP(PUTSTATIC, 1, 0, "a=pool:FieldRef (isolate-indexed via TCM)")      \
  OP(GETFIELD, 1, 1, "a=pool:FieldRef")                                 \
  OP(PUTFIELD, 2, 0, "a=pool:FieldRef")                                 \
  /* ---- calls ---- */                                                 \
  OP(INVOKEVIRTUAL, -1, -1, "a=pool:MethodRef")                         \
  OP(INVOKESPECIAL, -1, -1, "a=pool:MethodRef (ctor / super / private)") \
  OP(INVOKESTATIC, -1, -1, "a=pool:MethodRef")                          \
  OP(INVOKEINTERFACE, -1, -1, "a=pool:MethodRef")                       \
  /* ---- objects & arrays ---- */                                      \
  OP(NEW, 0, 1, "a=pool:ClassRef")                                      \
  OP(NEWARRAY, 1, 1, "a=element kind: 0=int 1=long 2=double")           \
  OP(ANEWARRAY, 1, 1, "a=pool:ClassRef (element class)")                \
  OP(ARRAYLENGTH, 1, 1, "")                                             \
  OP(IALOAD, 2, 1, "")                                                  \
  OP(IASTORE, 3, 0, "")                                                 \
  OP(LALOAD, 2, 1, "")                                                  \
  OP(LASTORE, 3, 0, "")                                                 \
  OP(DALOAD, 2, 1, "")                                                  \
  OP(DASTORE, 3, 0, "")                                                 \
  OP(AALOAD, 2, 1, "")                                                  \
  OP(AASTORE, 3, 0, "")                                                 \
  /* ---- type checks ---- */                                           \
  OP(CHECKCAST, 1, 1, "a=pool:ClassRef")                                \
  OP(INSTANCEOF, 1, 1, "a=pool:ClassRef")                               \
  /* ---- monitors ---- */                                              \
  OP(MONITORENTER, 1, 0, "")                                            \
  OP(MONITOREXIT, 1, 0, "")                                             \
  /* ---- exceptions ---- */                                            \
  OP(ATHROW, 1, 0, "")                                                  \
  /* ---- quickened forms (src/exec) ----                               \
     Produced by the quickening engine rewriting the internal            \
     instruction stream on first execution; never valid in a class       \
     file (the verifier rejects them). `a` keeps the original operand    \
     (pool index) for disassembly; the resolved payload lives in the     \
     QInsn side fields. */                                              \
  OP(LDC_INT_Q, 0, 1, "imm=int constant (quickened LDC)")               \
  OP(LDC_LONG_Q, 0, 1, "imm=long constant (quickened LDC)")             \
  OP(LDC_DOUBLE_Q, 0, 1, "dimm=double constant (quickened LDC)")        \
  OP(LDC_STR_Q, 0, 1, "ptr=CpEntry of the string (quickened LDC)")      \
  OP(GETSTATIC_Q, 0, 1, "ptr=JField, isolate-keyed mirror cache")       \
  OP(PUTSTATIC_Q, 1, 0, "ptr=JField, isolate-keyed mirror cache")       \
  OP(GETFIELD_Q, 1, 1, "ptr=JField")                                    \
  OP(PUTFIELD_Q, 2, 0, "ptr=JField")                                    \
  OP(INVOKEVIRTUAL_Q, -1, -1, "ptr=JMethod, receiver-class inline cache") \
  OP(INVOKESPECIAL_Q, -1, -1, "ptr=JMethod (direct)")                   \
  OP(INVOKESTATIC_Q, -1, -1, "ptr=JMethod (direct)")                    \
  OP(INVOKEINTERFACE_Q, -1, -1, "ptr=JMethod, receiver-class inline cache") \
  OP(NEW_Q, 0, 1, "ptr=JClass")                                         \
  OP(ANEWARRAY_Q, 1, 1, "ptr=array JClass")                             \
  OP(CHECKCAST_Q, 1, 1, "ptr=JClass")                                   \
  OP(INSTANCEOF_Q, 1, 1, "ptr=JClass")                                  \
  /* ---- fused superinstructions (src/exec/fuse.cpp) ----              \
     Produced by the second, fusion rewrite of a hot method's quickened  \
     stream: the head instruction of an adjacent pair/triple is replaced \
     by a fused opcode executing the whole group in one dispatch; the    \
     inner instructions keep their original opcodes (control flow may    \
     still jump *to* a group head, never into its middle -- the fuse     \
     pass refuses groups containing branch targets or handler entries).  \
     `a`/`b` keep the head's original operands; the operands lifted from \
     the inner instructions live in the QInsn payload (c/imm/ptr).       \
     Like the _Q forms these never appear in a class file. */            \
  OP(ILOAD_ILOAD_IADD_F, 0, 1, "a=slot1 c=slot2 (fused triple)")        \
  OP(ILOAD_ILOAD_ISUB_F, 0, 1, "a=slot1 c=slot2 (fused triple)")        \
  OP(ILOAD_ILOAD_IMUL_F, 0, 1, "a=slot1 c=slot2 (fused triple)")        \
  OP(ILOAD_ILOAD_IAND_F, 0, 1, "a=slot1 c=slot2 (fused triple)")        \
  OP(ILOAD_ILOAD_IOR_F, 0, 1, "a=slot1 c=slot2 (fused triple)")         \
  OP(ILOAD_ILOAD_IXOR_F, 0, 1, "a=slot1 c=slot2 (fused triple)")        \
  OP(ILOAD_ILOAD_IF_ICMPEQ_F, 0, 0, "a=slot1 c=slot2 imm=target")       \
  OP(ILOAD_ILOAD_IF_ICMPNE_F, 0, 0, "a=slot1 c=slot2 imm=target")       \
  OP(ILOAD_ILOAD_IF_ICMPLT_F, 0, 0, "a=slot1 c=slot2 imm=target")       \
  OP(ILOAD_ILOAD_IF_ICMPGE_F, 0, 0, "a=slot1 c=slot2 imm=target")       \
  OP(ILOAD_ILOAD_IF_ICMPGT_F, 0, 0, "a=slot1 c=slot2 imm=target")       \
  OP(ILOAD_ILOAD_IF_ICMPLE_F, 0, 0, "a=slot1 c=slot2 imm=target")       \
  OP(ICONST_IADD_F, 1, 1, "a=imm32 (fused iconst+iadd)")                \
  OP(ALOAD_GETFIELD_F, 0, 1, "a=slot c=field slot ptr=JField")          \
  OP(IINC_GOTO_F, 0, 0, "a=slot b=delta c=target")

enum class Op : u8 {
#define IJVM_OP_ENUM(name, pops, pushes, doc) name,
  IJVM_OPCODES(IJVM_OP_ENUM)
#undef IJVM_OP_ENUM
};

constexpr int kOpCount = 0
#define IJVM_OP_COUNT(name, pops, pushes, doc) +1
    IJVM_OPCODES(IJVM_OP_COUNT)
#undef IJVM_OP_COUNT
    ;

const char* opName(Op op);

// True for conditional and unconditional branches (operand a is a target).
bool opIsBranch(Op op);

// True for the quickened (engine-internal) opcode forms. Quickened opcodes
// only ever appear in the exec engine's rewritten instruction stream; the
// verifier rejects them in defined classes.
inline bool opIsQuickened(Op op) {
  return static_cast<u8>(op) >= static_cast<u8>(Op::LDC_INT_Q);
}

// True for fused superinstructions (a subset of the quickened forms):
// heads of adjacent pairs/triples rewritten by the fusion tier
// (src/exec/fuse.cpp) of a hot method's quickened stream.
inline bool opIsFused(Op op) {
  return static_cast<u8>(op) >= static_cast<u8>(Op::ILOAD_ILOAD_IADD_F);
}

// Number of original instructions a fused superinstruction covers (its
// dispatch advances the pc by this much); 1 for non-fused opcodes.
i32 opFusedLength(Op op);

}  // namespace ijvm
