// Pre-decoded instruction and method-body ("Code attribute") model.
#pragma once

#include <vector>

#include "bytecode/opcodes.h"

namespace ijvm {

struct Instruction {
  Op op = Op::NOP;
  i32 a = 0;  // meaning per opcode: immediate, local slot, pool index, target
  i32 b = 0;  // second operand (IINC delta)
};

// One entry of a method's exception table. Ranges are instruction indices,
// [start, end). catch_type_pool is a ClassRef pool index, or -1 for
// catch-all (used by `finally`-style cleanup and by tests).
struct ExHandler {
  i32 start = 0;
  i32 end = 0;
  i32 handler = 0;
  i32 catch_type_pool = -1;
};

struct Code {
  u16 max_locals = 0;
  std::vector<Instruction> insns;
  std::vector<ExHandler> handlers;
};

}  // namespace ijvm
