#include "bytecode/descriptor.h"

#include "support/common.h"
#include "support/strf.h"

namespace ijvm {

namespace {

// Parses one type starting at *pos; advances *pos past it.
TypeDesc parseOne(const std::string& s, size_t* pos) {
  TypeDesc t;
  size_t i = *pos;
  IJVM_CHECK(i < s.size(), strf("truncated descriptor '%s'", s.c_str()));
  int dims = 0;
  while (s[i] == '[') {
    ++dims;
    ++i;
    IJVM_CHECK(i < s.size(), strf("truncated array descriptor '%s'", s.c_str()));
  }
  Kind base;
  std::string cls;
  switch (s[i]) {
    case 'I':
      base = Kind::Int;
      ++i;
      break;
    case 'J':
      base = Kind::Long;
      ++i;
      break;
    case 'D':
      base = Kind::Double;
      ++i;
      break;
    case 'V':
      base = Kind::Void;
      ++i;
      break;
    case 'L': {
      size_t semi = s.find(';', i);
      IJVM_CHECK(semi != std::string::npos,
                 strf("missing ';' in descriptor '%s'", s.c_str()));
      cls = s.substr(i + 1, semi - i - 1);
      base = Kind::Ref;
      i = semi + 1;
      break;
    }
    default:
      IJVM_UNREACHABLE(strf("bad descriptor char '%c' in '%s'", s[i], s.c_str()));
  }
  *pos = i;
  if (dims > 0) {
    IJVM_CHECK(base != Kind::Void, "array of void");
    t.kind = Kind::Ref;
    t.array_dims = dims;
    t.elem_kind = base;
    t.class_name = cls;  // element class for ref arrays, "" for primitives
  } else {
    t.kind = base;
    t.class_name = cls;
  }
  return t;
}

}  // namespace

std::string TypeDesc::toString() const {
  std::string s(static_cast<size_t>(array_dims), '[');
  Kind base = array_dims > 0 ? elem_kind : kind;
  switch (base) {
    case Kind::Int:
      return s + "I";
    case Kind::Long:
      return s + "J";
    case Kind::Double:
      return s + "D";
    case Kind::Void:
      return s + "V";
    case Kind::Ref:
      return s + "L" + class_name + ";";
  }
  return s;
}

TypeDesc parseTypeDesc(const std::string& desc) {
  size_t pos = 0;
  TypeDesc t = parseOne(desc, &pos);
  IJVM_CHECK(pos == desc.size(), strf("trailing junk in descriptor '%s'", desc.c_str()));
  IJVM_CHECK(t.kind != Kind::Void, "void field descriptor");
  return t;
}

MethodSig parseMethodSig(const std::string& desc) {
  MethodSig sig;
  IJVM_CHECK(!desc.empty() && desc[0] == '(',
             strf("method descriptor must start with '(': '%s'", desc.c_str()));
  size_t pos = 1;
  while (pos < desc.size() && desc[pos] != ')') {
    sig.params.push_back(parseOne(desc, &pos));
    IJVM_CHECK(sig.params.back().kind != Kind::Void, "void parameter");
  }
  IJVM_CHECK(pos < desc.size() && desc[pos] == ')',
             strf("missing ')' in descriptor '%s'", desc.c_str()));
  ++pos;
  sig.ret = parseOne(desc, &pos);
  IJVM_CHECK(pos == desc.size(), strf("trailing junk in descriptor '%s'", desc.c_str()));
  return sig;
}

std::string typeRuntimeClassName(const TypeDesc& t) {
  if (t.array_dims > 0) return t.toString();
  if (t.kind == Kind::Ref) return t.class_name;
  return {};
}

}  // namespace ijvm
