#include "bytecode/constant_pool.h"

#include <cstring>

#include "support/strf.h"

namespace ijvm {

namespace {
bool sameEntry(const CpEntry& a, const CpEntry& b) {
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case CpTag::Int:
    case CpTag::Long:
      return a.i == b.i;
    case CpTag::Double:
      // bit-compare so NaN constants intern consistently
      return std::memcmp(&a.d, &b.d, sizeof(double)) == 0;
    case CpTag::String:
    case CpTag::ClassRef:
      return a.text == b.text;
    case CpTag::FieldRef:
    case CpTag::MethodRef:
      return a.owner == b.owner && a.name == b.name && a.descriptor == b.descriptor;
  }
  return false;
}
}  // namespace

i32 ConstantPool::intern(CpEntry e) {
  for (i32 i = 0; i < size(); ++i) {
    if (sameEntry(entries_[static_cast<size_t>(i)], e)) return i;
  }
  entries_.push_back(std::move(e));
  return size() - 1;
}

i32 ConstantPool::addInt(i32 v) {
  CpEntry e;
  e.tag = CpTag::Int;
  e.i = v;
  return intern(std::move(e));
}

i32 ConstantPool::addLong(i64 v) {
  CpEntry e;
  e.tag = CpTag::Long;
  e.i = v;
  return intern(std::move(e));
}

i32 ConstantPool::addDouble(double v) {
  CpEntry e;
  e.tag = CpTag::Double;
  e.d = v;
  return intern(std::move(e));
}

i32 ConstantPool::addString(const std::string& chars) {
  CpEntry e;
  e.tag = CpTag::String;
  e.text = chars;
  return intern(std::move(e));
}

i32 ConstantPool::addClassRef(const std::string& class_name) {
  CpEntry e;
  e.tag = CpTag::ClassRef;
  e.text = class_name;
  return intern(std::move(e));
}

i32 ConstantPool::addFieldRef(const std::string& owner, const std::string& name,
                              const std::string& descriptor) {
  CpEntry e;
  e.tag = CpTag::FieldRef;
  e.owner = owner;
  e.name = name;
  e.descriptor = descriptor;
  return intern(std::move(e));
}

i32 ConstantPool::addMethodRef(const std::string& owner, const std::string& name,
                               const std::string& descriptor) {
  CpEntry e;
  e.tag = CpTag::MethodRef;
  e.owner = owner;
  e.name = name;
  e.descriptor = descriptor;
  return intern(std::move(e));
}

const CpEntry& ConstantPool::at(i32 idx) const {
  IJVM_CHECK(idx >= 0 && idx < size(), strf("constant pool index %d out of range", idx));
  return entries_[static_cast<size_t>(idx)];
}

CpEntry& ConstantPool::at(i32 idx) {
  IJVM_CHECK(idx >= 0 && idx < size(), strf("constant pool index %d out of range", idx));
  return entries_[static_cast<size_t>(idx)];
}

}  // namespace ijvm
