// Human-readable disassembly of method bodies (debugging / golden tests).
#pragma once

#include <string>

#include "bytecode/classdef.h"

namespace ijvm {

// One instruction, e.g. "  12: INVOKEVIRTUAL demo/Shape.draw(II)V".
std::string disasmInsn(const ConstantPool& pool, const Instruction& insn, i32 index);

// Whole method body including the exception table.
std::string disasmMethod(const ConstantPool& pool, const MethodDef& method);

// Whole class.
std::string disasmClass(const ClassDef& def);

}  // namespace ijvm
