// Human-readable disassembly of method bodies (debugging / golden tests).
#pragma once

#include <string>

#include "bytecode/classdef.h"

namespace ijvm {

// One instruction, e.g. "  12: INVOKEVIRTUAL demo/Shape.draw(II)V".
std::string disasmInsn(const ConstantPool& pool, const Instruction& insn, i32 index);

// One fused superinstruction (quickened streams only, see
// exec::disasmQuickened): the operands lifted from the group's inner
// instructions live in the QInsn payload, which Instruction cannot carry,
// so they are passed explicitly. `field_sym` is the resolved-field symbol
// for ALOAD_GETFIELD_F ("" for every other fused opcode).
std::string disasmFusedInsn(Op op, i32 index, i32 a, i32 b, i32 c, i64 imm,
                            const std::string& field_sym);

// One call-threaded thunk of a tier-3 compiled method (exec::disasmJit):
// `slot` is the thunk's index in the compiled array, `pc` the original
// instruction index of the group head it was compiled from, `handler` the
// bound handler's display name, `operands` the pre-bound payload already
// rendered by the caller (branch targets appear as "-> tN (pc M)" because
// compiled code links thunks, not pcs -- see docs/jit.md).
std::string disasmCompiledThunk(i32 slot, i32 pc, const char* handler,
                                const std::string& operands);

// Whole method body including the exception table.
std::string disasmMethod(const ConstantPool& pool, const MethodDef& method);

// Whole class.
std::string disasmClass(const ClassDef& def);

}  // namespace ijvm
