// ClassBuilder / MethodBuilder: the in-memory assembler.
//
// This replaces the paper's Java compiler + class files: guest programs
// (system library, OSGi bundles, SPEC-analog workloads, attack bundles) are
// written against this fluent API. Labels handle forward branches:
//
//   ClassBuilder cb("demo/Counter");
//   cb.field("count", "I", ACC_STATIC | ACC_PUBLIC);
//   auto& m = cb.method("inc", "(I)I", ACC_STATIC | ACC_PUBLIC);
//   auto loop = m.newLabel();
//   m.iload(0).bind(loop).iconst(1).isub().istore(0);
//   m.iload(0).ifgt(loop);
//   m.iload(0).ireturn();
//   ClassDef def = cb.build();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bytecode/classdef.h"
#include "bytecode/descriptor.h"

namespace ijvm {

class ClassBuilder;

struct Label {
  i32 id = -1;
};

class MethodBuilder {
 public:
  MethodBuilder(ClassBuilder* owner, std::string name, std::string descriptor,
                u16 flags);

  // ---- labels & control flow ----
  Label newLabel();
  MethodBuilder& bind(Label l);

  // ---- raw emit (escape hatch; used by tests to build invalid code) ----
  MethodBuilder& emit(Op op, i32 a = 0, i32 b = 0);

  // ---- constants ----
  MethodBuilder& iconst(i32 v) { return emit(Op::ICONST, v); }
  MethodBuilder& lconst(i64 v);
  MethodBuilder& dconst(double v);
  MethodBuilder& ldcStr(const std::string& s);
  MethodBuilder& aconstNull() { return emit(Op::ACONST_NULL); }

  // ---- locals ----
  MethodBuilder& iload(i32 slot) { return emit(Op::ILOAD, slot); }
  MethodBuilder& lload(i32 slot) { return emit(Op::LLOAD, slot); }
  MethodBuilder& dload(i32 slot) { return emit(Op::DLOAD, slot); }
  MethodBuilder& aload(i32 slot) { return emit(Op::ALOAD, slot); }
  MethodBuilder& istore(i32 slot) { return emit(Op::ISTORE, slot); }
  MethodBuilder& lstore(i32 slot) { return emit(Op::LSTORE, slot); }
  MethodBuilder& dstore(i32 slot) { return emit(Op::DSTORE, slot); }
  MethodBuilder& astore(i32 slot) { return emit(Op::ASTORE, slot); }
  MethodBuilder& iinc(i32 slot, i32 delta) { return emit(Op::IINC, slot, delta); }

  // ---- stack ----
  MethodBuilder& pop() { return emit(Op::POP); }
  MethodBuilder& dup() { return emit(Op::DUP); }
  MethodBuilder& dupX1() { return emit(Op::DUP_X1); }
  MethodBuilder& swap() { return emit(Op::SWAP); }

  // ---- arithmetic ----
  MethodBuilder& iadd() { return emit(Op::IADD); }
  MethodBuilder& isub() { return emit(Op::ISUB); }
  MethodBuilder& imul() { return emit(Op::IMUL); }
  MethodBuilder& idiv() { return emit(Op::IDIV); }
  MethodBuilder& irem() { return emit(Op::IREM); }
  MethodBuilder& ineg() { return emit(Op::INEG); }
  MethodBuilder& ishl() { return emit(Op::ISHL); }
  MethodBuilder& ishr() { return emit(Op::ISHR); }
  MethodBuilder& iushr() { return emit(Op::IUSHR); }
  MethodBuilder& iand() { return emit(Op::IAND); }
  MethodBuilder& ior() { return emit(Op::IOR); }
  MethodBuilder& ixor() { return emit(Op::IXOR); }
  MethodBuilder& ladd() { return emit(Op::LADD); }
  MethodBuilder& lsub() { return emit(Op::LSUB); }
  MethodBuilder& lmul() { return emit(Op::LMUL); }
  MethodBuilder& ldiv() { return emit(Op::LDIV); }
  MethodBuilder& lrem() { return emit(Op::LREM); }
  MethodBuilder& lneg() { return emit(Op::LNEG); }
  MethodBuilder& lshl() { return emit(Op::LSHL); }
  MethodBuilder& lshr() { return emit(Op::LSHR); }
  MethodBuilder& land() { return emit(Op::LAND); }
  MethodBuilder& lor() { return emit(Op::LOR); }
  MethodBuilder& lxor() { return emit(Op::LXOR); }
  MethodBuilder& lcmp() { return emit(Op::LCMP); }
  MethodBuilder& dadd() { return emit(Op::DADD); }
  MethodBuilder& dsub() { return emit(Op::DSUB); }
  MethodBuilder& dmul() { return emit(Op::DMUL); }
  MethodBuilder& ddiv() { return emit(Op::DDIV); }
  MethodBuilder& drem() { return emit(Op::DREM); }
  MethodBuilder& dneg() { return emit(Op::DNEG); }
  MethodBuilder& dcmpl() { return emit(Op::DCMPL); }
  MethodBuilder& dcmpg() { return emit(Op::DCMPG); }

  // ---- conversions ----
  MethodBuilder& i2l() { return emit(Op::I2L); }
  MethodBuilder& i2d() { return emit(Op::I2D); }
  MethodBuilder& l2i() { return emit(Op::L2I); }
  MethodBuilder& l2d() { return emit(Op::L2D); }
  MethodBuilder& d2i() { return emit(Op::D2I); }
  MethodBuilder& d2l() { return emit(Op::D2L); }

  // ---- branches ----
  MethodBuilder& ifeq(Label l) { return emitBranch(Op::IFEQ, l); }
  MethodBuilder& ifne(Label l) { return emitBranch(Op::IFNE, l); }
  MethodBuilder& iflt(Label l) { return emitBranch(Op::IFLT, l); }
  MethodBuilder& ifge(Label l) { return emitBranch(Op::IFGE, l); }
  MethodBuilder& ifgt(Label l) { return emitBranch(Op::IFGT, l); }
  MethodBuilder& ifle(Label l) { return emitBranch(Op::IFLE, l); }
  MethodBuilder& ifIcmpEq(Label l) { return emitBranch(Op::IF_ICMPEQ, l); }
  MethodBuilder& ifIcmpNe(Label l) { return emitBranch(Op::IF_ICMPNE, l); }
  MethodBuilder& ifIcmpLt(Label l) { return emitBranch(Op::IF_ICMPLT, l); }
  MethodBuilder& ifIcmpGe(Label l) { return emitBranch(Op::IF_ICMPGE, l); }
  MethodBuilder& ifIcmpGt(Label l) { return emitBranch(Op::IF_ICMPGT, l); }
  MethodBuilder& ifIcmpLe(Label l) { return emitBranch(Op::IF_ICMPLE, l); }
  MethodBuilder& ifAcmpEq(Label l) { return emitBranch(Op::IF_ACMPEQ, l); }
  MethodBuilder& ifAcmpNe(Label l) { return emitBranch(Op::IF_ACMPNE, l); }
  MethodBuilder& ifNull(Label l) { return emitBranch(Op::IFNULL, l); }
  MethodBuilder& ifNonNull(Label l) { return emitBranch(Op::IFNONNULL, l); }
  MethodBuilder& gotoLabel(Label l) { return emitBranch(Op::GOTO, l); }

  // ---- returns ----
  MethodBuilder& ret() { return emit(Op::RETURN); }
  MethodBuilder& ireturn() { return emit(Op::IRETURN); }
  MethodBuilder& lreturn() { return emit(Op::LRETURN); }
  MethodBuilder& dreturn() { return emit(Op::DRETURN); }
  MethodBuilder& areturn() { return emit(Op::ARETURN); }

  // ---- fields ----
  MethodBuilder& getstatic(const std::string& owner, const std::string& name,
                           const std::string& desc);
  MethodBuilder& putstatic(const std::string& owner, const std::string& name,
                           const std::string& desc);
  MethodBuilder& getfield(const std::string& owner, const std::string& name,
                          const std::string& desc);
  MethodBuilder& putfield(const std::string& owner, const std::string& name,
                          const std::string& desc);

  // ---- calls ----
  MethodBuilder& invokevirtual(const std::string& owner, const std::string& name,
                               const std::string& desc);
  MethodBuilder& invokespecial(const std::string& owner, const std::string& name,
                               const std::string& desc);
  MethodBuilder& invokestatic(const std::string& owner, const std::string& name,
                              const std::string& desc);
  MethodBuilder& invokeinterface(const std::string& owner, const std::string& name,
                                 const std::string& desc);

  // ---- objects & arrays ----
  MethodBuilder& newObject(const std::string& class_name);
  // Convenience: NEW + DUP + INVOKESPECIAL <init> with no args.
  MethodBuilder& newDefault(const std::string& class_name);
  MethodBuilder& newarray(Kind elem);  // Int/Long/Double
  MethodBuilder& anewarray(const std::string& elem_class);
  MethodBuilder& arraylength() { return emit(Op::ARRAYLENGTH); }
  MethodBuilder& iaload() { return emit(Op::IALOAD); }
  MethodBuilder& iastore() { return emit(Op::IASTORE); }
  MethodBuilder& laload() { return emit(Op::LALOAD); }
  MethodBuilder& lastore() { return emit(Op::LASTORE); }
  MethodBuilder& daload() { return emit(Op::DALOAD); }
  MethodBuilder& dastore() { return emit(Op::DASTORE); }
  MethodBuilder& aaload() { return emit(Op::AALOAD); }
  MethodBuilder& aastore() { return emit(Op::AASTORE); }
  MethodBuilder& checkcast(const std::string& class_name);
  MethodBuilder& instanceOf(const std::string& class_name);

  // ---- monitors & exceptions ----
  MethodBuilder& monitorenter() { return emit(Op::MONITORENTER); }
  MethodBuilder& monitorexit() { return emit(Op::MONITOREXIT); }
  MethodBuilder& athrow() { return emit(Op::ATHROW); }

  // Exception table entry over [from, to) branching to `handler`.
  // catch_class "" means catch-all.
  MethodBuilder& handler(Label from, Label to, Label target,
                         const std::string& catch_class = "");

  // Explicit local count (defaults to max slot touched + 1, at least the
  // argument count).
  MethodBuilder& maxLocals(u16 n);

  const std::string& name() const { return name_; }
  const std::string& descriptor() const { return descriptor_; }
  i32 insnCount() const { return static_cast<i32>(code_.size()); }

 private:
  friend class ClassBuilder;

  MethodBuilder& emitBranch(Op op, Label l);
  MethodDef finish();  // resolves labels; called by ClassBuilder::build

  struct PendingHandler {
    Label from, to, target;
    std::string catch_class;
  };

  ClassBuilder* owner_;
  std::string name_;
  std::string descriptor_;
  u16 flags_;
  std::vector<Instruction> code_;
  std::vector<i32> label_pos_;       // label id -> instruction index (-1 unbound)
  std::vector<i32> branch_fixups_;   // instruction indices whose `a` is a label id
  std::vector<PendingHandler> handlers_;
  i32 max_local_touched_ = -1;
  i32 explicit_max_locals_ = -1;
};

class ClassBuilder {
 public:
  explicit ClassBuilder(std::string name,
                        std::string super_name = "java/lang/Object",
                        u16 flags = ACC_PUBLIC);

  ClassBuilder& addInterface(const std::string& name);
  ClassBuilder& field(const std::string& name, const std::string& descriptor,
                      u16 flags = ACC_PUBLIC);
  MethodBuilder& method(const std::string& name, const std::string& descriptor,
                        u16 flags = ACC_PUBLIC);
  // Declares a method with no body (native or interface methods).
  ClassBuilder& nativeMethod(const std::string& name, const std::string& descriptor,
                             u16 extra_flags = 0);
  ClassBuilder& abstractMethod(const std::string& name, const std::string& descriptor);

  // Adds a default no-arg constructor calling super() if none was declared.
  // Called automatically by build() for non-interface classes.
  ClassBuilder& defaultCtor();

  ClassDef build();

  ConstantPool& pool() { return def_.pool; }
  // Stays valid after build() (the ClassDef itself is moved out).
  const std::string& name() const { return name_; }

 private:
  friend class MethodBuilder;

  std::string name_;
  ClassDef def_;
  std::vector<std::unique_ptr<MethodBuilder>> methods_;
  bool built_ = false;
};

}  // namespace ijvm
