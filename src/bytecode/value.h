// Tagged value slots.
//
// The interpreter uses one uniform 16-byte slot for locals and operand-stack
// entries (unlike the JVM's split 32/64-bit slots). The tag makes garbage
// collection precise without verifier-computed stack maps: the GC can scan
// any frame and know exactly which slots are references (paper section 3.2,
// step 3 of the accounting algorithm, requires exactly this).
#pragma once

#include "support/common.h"

namespace ijvm {

struct Object;  // heap/object.h

// Value/descriptor kinds. Int covers boolean/byte/char/short/int.
enum class Kind : u8 { Void, Int, Long, Double, Ref };

const char* kindName(Kind k);

struct Value {
  Kind kind = Kind::Ref;
  union {
    i64 i;
    double d;
    Object* ref;
  };

  Value() : ref(nullptr) {}

  static Value ofInt(i32 v) {
    Value r;
    r.kind = Kind::Int;
    r.i = v;
    return r;
  }
  static Value ofLong(i64 v) {
    Value r;
    r.kind = Kind::Long;
    r.i = v;
    return r;
  }
  static Value ofDouble(double v) {
    Value r;
    r.kind = Kind::Double;
    r.d = v;
    return r;
  }
  static Value ofRef(Object* o) {
    Value r;
    r.kind = Kind::Ref;
    r.ref = o;
    return r;
  }
  static Value nullRef() { return ofRef(nullptr); }

  i32 asInt() const { return static_cast<i32>(i); }
  i64 asLong() const { return i; }
  double asDouble() const { return d; }
  Object* asRef() const { return ref; }

  bool isRef() const { return kind == Kind::Ref; }
  bool isNull() const { return kind == Kind::Ref && ref == nullptr; }

  // Default (zero) value for a field/array-element of the given kind.
  static Value zeroOf(Kind k) {
    switch (k) {
      case Kind::Int:
        return ofInt(0);
      case Kind::Long:
        return ofLong(0);
      case Kind::Double:
        return ofDouble(0.0);
      default:
        return nullRef();
    }
  }
};

}  // namespace ijvm
