// Per-class constant pool.
//
// Entries are symbolic (names and descriptors); the runtime lazily resolves
// Class/Field/Method refs and caches the resolution in `resolved`. The cache
// is isolate-independent: classes are shared across isolates, only their
// static state lives in per-isolate task class mirrors (paper section 3.1).
#pragma once

#include <string>
#include <vector>
#include <atomic>

#include "support/common.h"

namespace ijvm {

enum class CpTag : u8 { Int, Long, Double, String, ClassRef, FieldRef, MethodRef };

struct CpEntry {
  CpTag tag = CpTag::Int;
  i64 i = 0;                // Int / Long payload
  double d = 0;             // Double payload
  std::string text;         // String chars / ClassRef class name
  std::string owner;        // Field/MethodRef: owning class name
  std::string name;         // Field/MethodRef: member name
  std::string descriptor;   // Field/MethodRef: member descriptor
  std::atomic<void*> resolved{nullptr};  // runtime cache (JClass*/JField*/JMethod*)

  CpEntry() = default;
  CpEntry(const CpEntry& o)
      : tag(o.tag), i(o.i), d(o.d), text(o.text), owner(o.owner), name(o.name),
        descriptor(o.descriptor), resolved(o.resolved.load(std::memory_order_relaxed)) {}
};

class ConstantPool {
 public:
  i32 addInt(i32 v);
  i32 addLong(i64 v);
  i32 addDouble(double v);
  i32 addString(const std::string& chars);
  i32 addClassRef(const std::string& class_name);
  i32 addFieldRef(const std::string& owner, const std::string& name,
                  const std::string& descriptor);
  i32 addMethodRef(const std::string& owner, const std::string& name,
                   const std::string& descriptor);

  const CpEntry& at(i32 idx) const;
  CpEntry& at(i32 idx);
  i32 size() const { return static_cast<i32>(entries_.size()); }

 private:
  // Interns: identical entries share one index (keeps pools small and makes
  // resolution caches effective).
  i32 intern(CpEntry e);

  std::vector<CpEntry> entries_;
};

}  // namespace ijvm
