#include "bytecode/opcodes.h"
#include "bytecode/value.h"

namespace ijvm {

const char* opName(Op op) {
  static const char* names[] = {
#define IJVM_OP_NAME(name, pops, pushes, doc) #name,
      IJVM_OPCODES(IJVM_OP_NAME)
#undef IJVM_OP_NAME
  };
  auto idx = static_cast<unsigned>(op);
  return idx < static_cast<unsigned>(kOpCount) ? names[idx] : "<bad-op>";
}

i32 opFusedLength(Op op) {
  switch (op) {
    case Op::ILOAD_ILOAD_IADD_F:
    case Op::ILOAD_ILOAD_ISUB_F:
    case Op::ILOAD_ILOAD_IMUL_F:
    case Op::ILOAD_ILOAD_IAND_F:
    case Op::ILOAD_ILOAD_IOR_F:
    case Op::ILOAD_ILOAD_IXOR_F:
    case Op::ILOAD_ILOAD_IF_ICMPEQ_F:
    case Op::ILOAD_ILOAD_IF_ICMPNE_F:
    case Op::ILOAD_ILOAD_IF_ICMPLT_F:
    case Op::ILOAD_ILOAD_IF_ICMPGE_F:
    case Op::ILOAD_ILOAD_IF_ICMPGT_F:
    case Op::ILOAD_ILOAD_IF_ICMPLE_F:
      return 3;
    case Op::ICONST_IADD_F:
    case Op::ALOAD_GETFIELD_F:
    case Op::IINC_GOTO_F:
      return 2;
    default:
      return 1;
  }
}

bool opIsBranch(Op op) {
  switch (op) {
    case Op::IFEQ:
    case Op::IFNE:
    case Op::IFLT:
    case Op::IFGE:
    case Op::IFGT:
    case Op::IFLE:
    case Op::IF_ICMPEQ:
    case Op::IF_ICMPNE:
    case Op::IF_ICMPLT:
    case Op::IF_ICMPGE:
    case Op::IF_ICMPGT:
    case Op::IF_ICMPLE:
    case Op::IF_ACMPEQ:
    case Op::IF_ACMPNE:
    case Op::IFNULL:
    case Op::IFNONNULL:
    case Op::GOTO:
      return true;
    default:
      return false;
  }
}

const char* kindName(Kind k) {
  switch (k) {
    case Kind::Void:
      return "void";
    case Kind::Int:
      return "int";
    case Kind::Long:
      return "long";
    case Kind::Double:
      return "double";
    case Kind::Ref:
      return "ref";
  }
  return "<bad-kind>";
}

}  // namespace ijvm
