#include "bytecode/opcodes.h"
#include "bytecode/value.h"

namespace ijvm {

const char* opName(Op op) {
  static const char* names[] = {
#define IJVM_OP_NAME(name, pops, pushes, doc) #name,
      IJVM_OPCODES(IJVM_OP_NAME)
#undef IJVM_OP_NAME
  };
  auto idx = static_cast<unsigned>(op);
  return idx < static_cast<unsigned>(kOpCount) ? names[idx] : "<bad-op>";
}

bool opIsBranch(Op op) {
  switch (op) {
    case Op::IFEQ:
    case Op::IFNE:
    case Op::IFLT:
    case Op::IFGE:
    case Op::IFGT:
    case Op::IFLE:
    case Op::IF_ICMPEQ:
    case Op::IF_ICMPNE:
    case Op::IF_ICMPLT:
    case Op::IF_ICMPGE:
    case Op::IF_ICMPGT:
    case Op::IF_ICMPLE:
    case Op::IF_ACMPEQ:
    case Op::IF_ACMPNE:
    case Op::IFNULL:
    case Op::IFNONNULL:
    case Op::GOTO:
      return true;
    default:
      return false;
  }
}

const char* kindName(Kind k) {
  switch (k) {
    case Kind::Void:
      return "void";
    case Kind::Int:
      return "int";
    case Kind::Long:
      return "long";
    case Kind::Double:
      return "double";
    case Kind::Ref:
      return "ref";
  }
  return "<bad-kind>";
}

}  // namespace ijvm
