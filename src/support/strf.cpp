#include "support/strf.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace ijvm {

std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return {};
  }
  std::vector<char> buf(static_cast<size_t>(n) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
  va_end(ap2);
  return std::string(buf.data(), static_cast<size_t>(n));
}

}  // namespace ijvm
