// Deterministic xorshift64* RNG. Workloads and property tests use this so
// that guest-program checksums are reproducible across runs and platforms.
#pragma once

#include "support/common.h"

namespace ijvm {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  u64 next() {
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, bound). bound must be > 0.
  u64 nextBounded(u64 bound) { return next() % bound; }

  i32 nextInt() { return static_cast<i32>(next()); }

  double nextDouble() {  // [0, 1)
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  u64 state_;
};

}  // namespace ijvm
