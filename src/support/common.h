// Basic project-wide helpers: assertion macros and fixed-width aliases.
//
// IJVM_CHECK is used for internal VM invariants (a failure is a bug in the
// VM itself, never guest-program behaviour -- guest errors are reported as
// guest exceptions, see runtime/interpreter.cpp).
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>

namespace ijvm {

[[noreturn]] void panic(const char* file, int line, const std::string& msg);

#define IJVM_CHECK(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) ::ijvm::panic(__FILE__, __LINE__, (msg));         \
  } while (0)

#define IJVM_UNREACHABLE(msg) ::ijvm::panic(__FILE__, __LINE__, (msg))

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

}  // namespace ijvm
