// Minimal printf-style std::string formatting (gcc 12 lacks std::format).
#pragma once

#include <string>

namespace ijvm {

// Returns the printf-formatted string. Only used on cold paths (errors,
// reports); not a hot-path utility.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ijvm
