#include "support/common.h"

#include <cstdio>
#include <cstdlib>

namespace ijvm {

void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "ijvm panic at %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ijvm
