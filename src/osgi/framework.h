// Mini OSGi framework running on I-JVM.
//
// Maps the paper's section 3.4 onto the VM:
//  * the framework (the "OSGi runtime") lives in the privileged Isolate0;
//  * every installed bundle gets a fresh class loader, hence a fresh
//    standard isolate;
//  * activator start/stop run on fresh threads so a malicious bundle cannot
//    freeze the runtime (rule 1);
//  * privileged operations (System.exit, isolate termination) are denied to
//    bundles via Isolate0 privileges (rule 2);
//  * when a bundle is killed, a StoppedBundleEvent is broadcast so other
//    bundles may release references to it (rule 3).
//
// Bundles see the framework through the guest class osgi/BundleContext
// (registerService / getService / addBundleListener / getBundleId); the
// service registry is the explicit object-sharing channel between isolates.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bytecode/classdef.h"
#include "runtime/vm.h"

namespace ijvm {

enum class BundleState : u8 {
  Installed,
  Active,
  Stopping,
  Uninstalled,
};

const char* bundleStateName(BundleState s);

// The deployable unit: a set of classes plus the activator class name
// (which must implement osgi/BundleActivator).
struct BundleDescriptor {
  std::string symbolic_name;
  std::string version = "1.0.0";
  std::vector<ClassDef> classes;
  std::string activator;  // "" = no activator (library-only bundle)
};

class Framework;

class Bundle {
 public:
  i32 id() const { return id_; }
  const std::string& symbolicName() const { return name_; }
  BundleState state() const { return state_; }
  ClassLoader* loader() const { return loader_; }
  Isolate* isolate() const { return isolate_; }

 private:
  friend class Framework;

  i32 id_ = 0;
  std::string name_;
  std::string version_;
  std::string activator_class_;
  BundleState state_ = BundleState::Installed;
  ClassLoader* loader_ = nullptr;
  Isolate* isolate_ = nullptr;
  GlobalRef* activator_ref_ = nullptr;  // activator instance
  GlobalRef* context_ref_ = nullptr;    // this bundle's BundleContext
};

struct FrameworkOptions {
  // How long start()/stop() wait for the activator thread before declaring
  // the bundle unresponsive (the thread keeps running; A7/A8 handling kills
  // it via isolate termination).
  i64 activator_timeout_ms = 2000;
};

class Framework {
 public:
  // Must be constructed before any isolate exists: the framework's loader
  // becomes Isolate0. Defines the osgi/* guest API classes.
  explicit Framework(VM& vm, FrameworkOptions options = {});
  ~Framework();

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  VM& vm() { return vm_; }
  Isolate* frameworkIsolate() { return isolate0_; }

  // ---- bundle lifecycle ----
  Bundle* install(BundleDescriptor descriptor);
  // Starts the bundle: instantiates the activator and calls
  // start(BundleContext) on a fresh thread. Returns false if the activator
  // did not complete within the timeout (bundle stays Active; the thread
  // keeps running).
  bool start(Bundle* bundle);
  // Calls activator stop() on a fresh thread (same timeout contract).
  bool stop(Bundle* bundle);
  // Polite uninstall: stop, broadcast StoppedBundleEvent, terminate the
  // bundle's isolate, drop its services, GC.
  void uninstall(Bundle* bundle);
  // Administrator kill (paper's "the administrator kills the offending
  // bundle"): no stop() courtesy -- broadcast, terminate, drop, GC.
  void killBundle(Bundle* bundle);
  // Same, but with an explicit admin thread. Required when the caller is
  // not the OS thread that owns adminThread() (e.g. the ResourceGovernor's
  // watcher thread): terminateIsolate/collectGarbage decide whether the
  // requester participates in the stop-the-world from the requester's
  // state, so it must be a JThread attached to the *calling* OS thread.
  void killBundleFrom(JThread* admin, Bundle* bundle);

  std::vector<Bundle*> bundles();
  Bundle* findBundle(const std::string& symbolic_name);
  Bundle* bundleById(i32 id);

  // ---- service registry (C++ view; guest uses BundleContext natives) ----
  void registerService(const std::string& name, Object* service, Bundle* owner);
  Object* getService(const std::string& name);
  Bundle* serviceOwner(const std::string& name);
  std::vector<std::string> serviceNames();

  // ---- admin / monitoring ----
  IsolateReport reportFor(Bundle* bundle) { return vm_.reportFor(bundle->isolate_); }
  std::vector<IsolateReport> reportAll() { return vm_.reportAll(); }

  // The guest thread used for framework-side calls from C++ (runs in
  // Isolate0).
  JThread* adminThread() { return vm_.mainThread(); }

 private:
  friend struct FrameworkNatives;

  struct ServiceEntry {
    std::string name;
    GlobalRef* ref = nullptr;
    i32 owner_bundle = -1;
  };
  struct ListenerEntry {
    GlobalRef* ref = nullptr;
    i32 owner_bundle = -1;
  };

  void defineGuestApi();
  Object* makeContext(JThread* t, Bundle* bundle);
  // Runs `fn` (guest invocation) on a fresh attached thread; returns true
  // if it finished within timeout.
  bool runOnFreshThread(const std::string& name,
                        const std::function<void(JThread*)>& fn);
  void broadcastStopped(Bundle* dying);
  void dropBundleRefs(Bundle* bundle);
  Bundle* bundleOfIsolate(Isolate* iso);

  VM& vm_;
  FrameworkOptions options_;
  ClassLoader* framework_loader_ = nullptr;
  Isolate* isolate0_ = nullptr;
  JClass* context_class_ = nullptr;

  std::mutex mutex_;
  std::vector<std::unique_ptr<Bundle>> bundles_;
  std::vector<ServiceEntry> services_;
  std::vector<ListenerEntry> listeners_;
  std::vector<std::thread> workers_;
  i32 next_bundle_id_ = 1;
};

// Key under which the Framework registers itself as a VM extension so the
// BundleContext natives can find it.
inline constexpr const char* kFrameworkExtension = "osgi-framework";

}  // namespace ijvm
