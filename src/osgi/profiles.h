// Base configurations of the two legacy OSGi implementations the paper
// evaluates (Figure 3):
//   * felix   -- the OSGi runtime plus 3 management bundles
//                (administration, shell, repository);
//   * equinox -- the OSGi runtime plus 22 management bundles.
//
// Each management bundle is generated with a realistic mix of classes,
// string literals, statics and startup allocation so the memory comparison
// between isolated and shared modes exercises the same structures the paper
// measures: per-class TCM arrays and per-isolate string tables.
#pragma once

#include <string>
#include <vector>

#include "osgi/framework.h"

namespace ijvm {

struct ProfileSpec {
  std::string name;
  std::vector<std::string> management_bundles;
};

// "felix": administration, shell, repository.
ProfileSpec felixProfile();
// "equinox": 22 management bundles.
ProfileSpec equinoxProfile();

// Generates a management bundle: `classes_per_bundle` classes, each with
// static fields, string literals and a small amount of code; the activator
// allocates a service object and registers it.
// When `use_shared_config` is set, the activator also reads the statics of
// the shared osgi/SharedConfig class (defined by bootProfile), triggering
// per-isolate initialization -- the duplication source of Figure 3.
BundleDescriptor makeManagementBundle(const std::string& name,
                                      int classes_per_bundle = 4,
                                      int strings_per_class = 8,
                                      int statics_per_class = 6,
                                      bool use_shared_config = false);

// Installs and starts every management bundle of `spec` on `fw`.
std::vector<Bundle*> bootProfile(Framework& fw, const ProfileSpec& spec);

// Memory footprint snapshot used by the Figure-3 bench: live heap bytes +
// class metadata bytes (which include materialized TCM arrays).
struct MemoryFootprint {
  size_t heap_bytes = 0;
  size_t metadata_bytes = 0;
  size_t classes = 0;
  size_t total() const { return heap_bytes + metadata_bytes; }
};
MemoryFootprint measureFootprint(VM& vm);

}  // namespace ijvm
