#include "osgi/framework.h"

#include <chrono>
#include <cstdio>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "support/strf.h"

namespace ijvm {

const char* bundleStateName(BundleState s) {
  switch (s) {
    case BundleState::Installed:
      return "INSTALLED";
    case BundleState::Active:
      return "ACTIVE";
    case BundleState::Stopping:
      return "STOPPING";
    case BundleState::Uninstalled:
      return "UNINSTALLED";
  }
  return "?";
}

namespace {

Framework* frameworkOf(VM& vm) {
  auto holder = std::static_pointer_cast<Framework*>(
      vm.getExtension(kFrameworkExtension));
  return holder != nullptr ? *holder : nullptr;
}

i32 contextBundleId(Object* ctx_obj) {
  JField* f = ctx_obj->cls->findField("bundle");
  return f != nullptr ? ctx_obj->fields()[f->slot].asInt() : -1;
}

}  // namespace

Framework::Framework(VM& vm, FrameworkOptions options)
    : vm_(vm), options_(options) {
  IJVM_CHECK(vm_.isolate0() == nullptr,
             "Framework must be created before any isolate (it becomes Isolate0)");
  framework_loader_ = vm_.registry().newLoader("osgi-framework");
  defineGuestApi();
  isolate0_ = vm_.createIsolate(framework_loader_, "osgi-framework");
  vm_.setExtension(kFrameworkExtension, std::make_shared<Framework*>(this));
}

Framework::~Framework() {
  vm_.shutdownAllThreads();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Framework::defineGuestApi() {
  {
    ClassBuilder cb("osgi/BundleActivator", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("start", "(Losgi/BundleContext;)V");
    cb.abstractMethod("stop", "(Losgi/BundleContext;)V");
    framework_loader_->define(cb.build());
  }
  {
    ClassBuilder cb("osgi/BundleListener", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("bundleStopped", "(I)V");
    framework_loader_->define(cb.build());
  }

  ClassBuilder cb("osgi/BundleContext");
  cb.field("bundle", "I");
  cb.nativeMethod("registerService", "(Ljava/lang/String;Ljava/lang/Object;)V");
  cb.nativeMethod("getService", "(Ljava/lang/String;)Ljava/lang/Object;");
  cb.nativeMethod("addBundleListener", "(Losgi/BundleListener;)V");
  cb.nativeMethod("getBundleId", "()I");
  cb.nativeMethod("log", "(Ljava/lang/String;)V");
  context_class_ = framework_loader_->define(cb.build());

  auto bind = [&](const std::string& name, const std::string& desc, NativeFn fn) {
    JMethod* m = context_class_->findDeclared(name, desc);
    IJVM_CHECK(m != nullptr, "missing BundleContext native");
    m->native = std::move(fn);
  };

  bind("registerService", "(Ljava/lang/String;Ljava/lang/Object;)V",
       [](NativeCtx& ctx) {
         Framework* fw = frameworkOf(ctx.vm);
         Object* ctx_obj = ctx.args.at(0).asRef();
         Object* name_obj = ctx.args.at(1).asRef();
         Object* service = ctx.args.at(2).asRef();
         if (name_obj == nullptr || service == nullptr) {
           ctx.throwGuest("java/lang/NullPointerException", "registerService");
           return Value();
         }
         Bundle* owner = fw->bundleById(contextBundleId(ctx_obj));
         fw->registerService(name_obj->str(), service, owner);
         return Value();
       });
  bind("getService", "(Ljava/lang/String;)Ljava/lang/Object;", [](NativeCtx& ctx) {
    Framework* fw = frameworkOf(ctx.vm);
    Object* name_obj = ctx.args.at(1).asRef();
    if (name_obj == nullptr) {
      ctx.throwGuest("java/lang/NullPointerException", "getService");
      return Value();
    }
    return Value::ofRef(fw->getService(name_obj->str()));
  });
  bind("addBundleListener", "(Losgi/BundleListener;)V", [](NativeCtx& ctx) {
    Framework* fw = frameworkOf(ctx.vm);
    Object* ctx_obj = ctx.args.at(0).asRef();
    Object* listener = ctx.args.at(1).asRef();
    if (listener == nullptr) {
      ctx.throwGuest("java/lang/NullPointerException", "addBundleListener");
      return Value();
    }
    const i32 owner_id = contextBundleId(ctx_obj);
    Bundle* owner = fw->bundleById(owner_id);
    GlobalRef* ref = ctx.vm.addGlobalRef(
        listener, owner != nullptr ? owner->isolate() : fw->frameworkIsolate());
    std::lock_guard<std::mutex> lock(fw->mutex_);
    fw->listeners_.push_back(ListenerEntry{ref, owner_id});
    return Value();
  });
  bind("getBundleId", "()I", [](NativeCtx& ctx) {
    return Value::ofInt(contextBundleId(ctx.args.at(0).asRef()));
  });
  bind("log", "(Ljava/lang/String;)V", [](NativeCtx& ctx) {
    Object* msg = ctx.args.at(1).asRef();
    std::printf("[bundle %d] %s\n", contextBundleId(ctx.args.at(0).asRef()),
                msg != nullptr && msg->kind == ObjKind::String ? msg->str().c_str()
                                                               : "null");
    return Value();
  });
}

Bundle* Framework::install(BundleDescriptor descriptor) {
  auto bundle = std::make_unique<Bundle>();
  Bundle* b = bundle.get();
  b->name_ = descriptor.symbolic_name;
  b->version_ = descriptor.version;
  b->activator_class_ = descriptor.activator;
  // OSGi allocates a new class loader per bundle; I-JVM attaches a fresh
  // standard isolate to it (paper section 3.4).
  b->loader_ = vm_.registry().newLoader("bundle:" + descriptor.symbolic_name,
                                        framework_loader_);
  for (ClassDef& def : descriptor.classes) {
    b->loader_->define(std::move(def));
  }
  b->isolate_ = vm_.createIsolate(b->loader_, descriptor.symbolic_name);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    b->id_ = next_bundle_id_++;
    bundles_.push_back(std::move(bundle));
  }
  return b;
}

Object* Framework::makeContext(JThread* t, Bundle* bundle) {
  LocalRootScope roots(t);
  Object* ctx_obj = roots.add(vm_.allocObject(t, context_class_));
  IJVM_CHECK(ctx_obj != nullptr, "failed to allocate BundleContext");
  JField* f = context_class_->findField("bundle");
  ctx_obj->fields()[f->slot] = Value::ofInt(bundle->id_);
  bundle->context_ref_ = vm_.addGlobalRef(ctx_obj, isolate0_);
  return ctx_obj;
}

bool Framework::runOnFreshThread(const std::string& name,
                                 const std::function<void(JThread*)>& fn) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  JThread* t = vm_.attachThread(name, isolate0_);
  std::thread worker([fn, t, done] {
    fn(t);
    t->pending_exception = nullptr;
    t->dropAllFrames();
    t->state.store(ThreadState::Dead, std::memory_order_release);
    done->store(true, std::memory_order_release);
    t->markDone();
  });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.activator_timeout_ms);
  while (!done->load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool finished = done->load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers_.push_back(std::move(worker));
  }
  return finished;
}

bool Framework::start(Bundle* bundle) {
  IJVM_CHECK(bundle->state_ == BundleState::Installed,
             strf("start: bundle %s is %s", bundle->name_.c_str(),
                  bundleStateName(bundle->state_)));
  bundle->state_ = BundleState::Active;
  if (bundle->activator_class_.empty()) return true;

  // Rule 1 (paper section 3.4): call start() on a fresh thread so a
  // malicious bundle cannot freeze the OSGi runtime.
  return runOnFreshThread("start:" + bundle->name_, [this, bundle](JThread* t) {
    JClass* acls = bundle->loader_->find(bundle->activator_class_);
    if (acls == nullptr) return;
    JMethod* ctor = acls->findMethod("<init>", "()V");
    if (ctor == nullptr) return;
    LocalRootScope roots(t);
    Object* activator = roots.add(vm_.allocObject(t, acls));
    if (activator == nullptr) return;
    vm_.invoke(t, ctor, {Value::ofRef(activator)});
    if (t->pending_exception != nullptr) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      bundle->activator_ref_ = vm_.addGlobalRef(activator, bundle->isolate_);
    }
    Object* ctx_obj = makeContext(t, bundle);
    roots.add(ctx_obj);
    vm_.callVirtual(t, activator, "start", "(Losgi/BundleContext;)V",
                    {Value::ofRef(ctx_obj)});
  });
}

bool Framework::stop(Bundle* bundle) {
  if (bundle->state_ != BundleState::Active) return true;
  bundle->state_ = BundleState::Stopping;
  GlobalRef* activator_ref;
  GlobalRef* context_ref;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    activator_ref = bundle->activator_ref_;
    context_ref = bundle->context_ref_;
  }
  if (activator_ref == nullptr || activator_ref->obj == nullptr) return true;
  Object* activator = activator_ref->obj;
  Object* ctx_obj = context_ref != nullptr ? context_ref->obj : nullptr;
  return runOnFreshThread("stop:" + bundle->name_, [this, activator,
                                                    ctx_obj](JThread* t) {
    vm_.callVirtual(t, activator, "stop", "(Losgi/BundleContext;)V",
                    {Value::ofRef(ctx_obj)});
  });
}

void Framework::broadcastStopped(Bundle* dying) {
  // Rule 3 (paper section 3.4): notify other bundles so they can release
  // their references to the dying bundle's objects.
  std::vector<ListenerEntry> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = listeners_;
  }
  for (const ListenerEntry& e : snapshot) {
    if (e.owner_bundle == dying->id_) continue;
    if (e.ref == nullptr || e.ref->obj == nullptr) continue;
    Object* listener = e.ref->obj;
    const i32 dying_id = dying->id_;
    runOnFreshThread(strf("event:%d", dying_id), [this, listener,
                                                  dying_id](JThread* t) {
      vm_.callVirtual(t, listener, "bundleStopped", "(I)V",
                      {Value::ofInt(dying_id)});
    });
  }
}

void Framework::dropBundleRefs(Bundle* bundle) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = services_.begin(); it != services_.end();) {
    if (it->owner_bundle == bundle->id_) {
      vm_.removeGlobalRef(it->ref);
      it = services_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = listeners_.begin(); it != listeners_.end();) {
    if (it->owner_bundle == bundle->id_) {
      vm_.removeGlobalRef(it->ref);
      it = listeners_.erase(it);
    } else {
      ++it;
    }
  }
  if (bundle->activator_ref_ != nullptr) {
    vm_.removeGlobalRef(bundle->activator_ref_);
    bundle->activator_ref_ = nullptr;
  }
  if (bundle->context_ref_ != nullptr) {
    vm_.removeGlobalRef(bundle->context_ref_);
    bundle->context_ref_ = nullptr;
  }
}

void Framework::killBundle(Bundle* bundle) { killBundleFrom(adminThread(), bundle); }

void Framework::killBundleFrom(JThread* admin, Bundle* bundle) {
  if (bundle->state_ == BundleState::Uninstalled) return;
  bundle->state_ = BundleState::Stopping;
  broadcastStopped(bundle);
  vm_.terminateIsolate(admin, bundle->isolate_);
  dropBundleRefs(bundle);
  bundle->state_ = BundleState::Uninstalled;
  // Reclaim the bundle's objects (those not shared with other bundles).
  vm_.collectGarbage(admin, nullptr);
}

void Framework::uninstall(Bundle* bundle) {
  stop(bundle);
  killBundle(bundle);
}

std::vector<Bundle*> Framework::bundles() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Bundle*> out;
  out.reserve(bundles_.size());
  for (auto& b : bundles_) out.push_back(b.get());
  return out;
}

Bundle* Framework::findBundle(const std::string& symbolic_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& b : bundles_) {
    if (b->name_ == symbolic_name) return b.get();
  }
  return nullptr;
}

Bundle* Framework::bundleById(i32 id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& b : bundles_) {
    if (b->id_ == id) return b.get();
  }
  return nullptr;
}

void Framework::registerService(const std::string& name, Object* service,
                                Bundle* owner) {
  GlobalRef* ref = vm_.addGlobalRef(
      service, owner != nullptr ? owner->isolate_ : isolate0_);
  std::lock_guard<std::mutex> lock(mutex_);
  for (ServiceEntry& e : services_) {
    if (e.name == name) {
      vm_.removeGlobalRef(e.ref);
      e.ref = ref;
      e.owner_bundle = owner != nullptr ? owner->id_ : 0;
      return;
    }
  }
  services_.push_back(
      ServiceEntry{name, ref, owner != nullptr ? owner->id_ : 0});
}

Object* Framework::getService(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ServiceEntry& e : services_) {
    if (e.name == name) return e.ref->obj;
  }
  return nullptr;
}

Bundle* Framework::serviceOwner(const std::string& name) {
  i32 owner_id = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (ServiceEntry& e : services_) {
      if (e.name == name) {
        owner_id = e.owner_bundle;
        break;
      }
    }
  }
  return owner_id < 0 ? nullptr : bundleById(owner_id);
}

std::vector<std::string> Framework::serviceNames() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (ServiceEntry& e : services_) out.push_back(e.name);
  return out;
}

Bundle* Framework::bundleOfIsolate(Isolate* iso) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& b : bundles_) {
    if (b->isolate_ == iso) return b.get();
  }
  return nullptr;
}

}  // namespace ijvm
