#include "osgi/profiles.h"

#include "bytecode/builder.h"
#include "support/strf.h"

namespace ijvm {

ProfileSpec felixProfile() {
  return ProfileSpec{"felix", {"felix.admin", "felix.shell", "felix.repository"}};
}

ProfileSpec equinoxProfile() {
  ProfileSpec spec;
  spec.name = "equinox";
  const char* names[] = {
      "equinox.admin",      "equinox.shell",     "equinox.repository",
      "equinox.console",    "equinox.log",       "equinox.prefs",
      "equinox.registry",   "equinox.jobs",      "equinox.contenttype",
      "equinox.app",        "equinox.common",    "equinox.ds",
      "equinox.event",      "equinox.http",      "equinox.metatype",
      "equinox.useradmin",  "equinox.wireadmin", "equinox.io",
      "equinox.device",     "equinox.provision", "equinox.update",
      "equinox.supplement",
  };
  for (const char* n : names) spec.management_bundles.push_back(n);
  return spec;
}

BundleDescriptor makeManagementBundle(const std::string& name,
                                      int classes_per_bundle,
                                      int strings_per_class,
                                      int statics_per_class,
                                      bool use_shared_config) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  std::string pkg = name;
  for (char& c : pkg) {
    if (c == '.') c = '/';
  }

  // Service classes: statics, string constants, a little arithmetic code.
  for (int ci = 0; ci < classes_per_bundle; ++ci) {
    ClassBuilder cb(strf("%s/Service%d", pkg.c_str(), ci));
    for (int si = 0; si < statics_per_class; ++si) {
      cb.field(strf("config%d", si),
               si % 2 == 0 ? "I" : "Ljava/lang/String;",
               ACC_PUBLIC | ACC_STATIC);
    }
    cb.field("state", "I");

    // <clinit>: populate the statics (string literals land in the isolate's
    // intern table -- the per-isolate memory the paper measures).
    auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
    for (int si = 0; si < statics_per_class; ++si) {
      if (si % 2 == 0) {
        clinit.iconst(si * 17 + ci);
        clinit.putstatic(cb.name(), strf("config%d", si), "I");
      } else {
        clinit.ldcStr(strf("%s.service%d.option%d.default-value", name.c_str(),
                           ci, si));
        clinit.putstatic(cb.name(), strf("config%d", si), "Ljava/lang/String;");
      }
    }
    clinit.ret();

    for (int si = 0; si < strings_per_class; ++si) {
      auto& m = cb.method(strf("describe%d", si), "()Ljava/lang/String;");
      m.ldcStr(strf("%s/Service%d: management operation %d ready", name.c_str(),
                    ci, si));
      m.areturn();
    }

    auto& tick = cb.method("tick", "(I)I");
    Label loop = tick.newLabel();
    Label done = tick.newLabel();
    tick.iconst(0).istore(2);
    tick.bind(loop).iload(1).ifle(done);
    tick.iload(2).iload(1).iadd().istore(2);
    tick.iinc(1, -1).gotoLabel(loop);
    tick.bind(done);
    tick.aload(0).iload(2).putfield(cb.name(), "state", "I");
    tick.iload(2).ireturn();

    desc.classes.push_back(cb.build());
  }

  // Activator: allocates a couple of service objects, exercises them, and
  // registers Service0 under "<bundle>.svc".
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    for (int ci = 0; ci < classes_per_bundle; ++ci) {
      std::string svc = strf("%s/Service%d", pkg.c_str(), ci);
      start.newDefault(svc);
      start.astore(2);
      start.aload(2).iconst(10 + ci).invokevirtual(svc, "tick", "(I)I").pop();
    }
    std::string svc0 = pkg + "/Service0";
    start.newDefault(svc0).astore(2);
    start.aload(1).ldcStr(name + ".svc").aload(2);
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    if (use_shared_config) {
      // Touch the shared library's statics: this bundle's isolate gets its
      // own mirror and its own interned copies of the literals.
      for (int i = 0; i < 8; ++i) {
        start.getstatic("osgi/SharedConfig", strf("text%d", i),
                        "Ljava/lang/String;").pop();
        start.getstatic("osgi/SharedConfig", strf("num%d", i), "I").pop();
      }
    }
    start.ret();
    auto& stop = cb.method("stop", "(Losgi/BundleContext;)V");
    stop.ret();
    desc.classes.push_back(cb.build());
    desc.activator = pkg + "/Activator";
  }
  return desc;
}

namespace {

// A library class shared by every management bundle (stands for exported
// utility packages and java.* classes with static state). Each bundle reads
// its statics directly, so in isolated mode every bundle materializes its
// own task class mirror and interns its own copies of the literals -- the
// per-isolate duplication Figure 3 measures.
void defineSharedSupport(Framework& fw) {
  ClassLoader* shared = fw.frameworkIsolate()->loader;
  if (shared->findLocal("osgi/SharedConfig") != nullptr) return;
  ClassBuilder cb("osgi/SharedConfig");
  const int kStrings = 8;
  const int kInts = 8;
  for (int i = 0; i < kStrings; ++i) {
    cb.field(strf("text%d", i), "Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
  }
  for (int i = 0; i < kInts; ++i) {
    cb.field(strf("num%d", i), "I", ACC_PUBLIC | ACC_STATIC);
  }
  auto& clinit = cb.method("<clinit>", "()V", ACC_STATIC);
  for (int i = 0; i < kStrings; ++i) {
    clinit.ldcStr(strf("osgi.shared.config.option%d.default-value."
                       "framework-wide-setting-%08d", i, i * 7919));
    clinit.putstatic("osgi/SharedConfig", strf("text%d", i),
                     "Ljava/lang/String;");
  }
  for (int i = 0; i < kInts; ++i) {
    clinit.iconst(i * 31 + 7);
    clinit.putstatic("osgi/SharedConfig", strf("num%d", i), "I");
  }
  clinit.ret();
  shared->define(cb.build());
}

}  // namespace

std::vector<Bundle*> bootProfile(Framework& fw, const ProfileSpec& spec) {
  defineSharedSupport(fw);
  std::vector<Bundle*> out;
  for (const std::string& name : spec.management_bundles) {
    Bundle* b = fw.install(makeManagementBundle(name, 4, 8, 6,
                                                /*use_shared_config=*/true));
    fw.start(b);
    out.push_back(b);
  }
  return out;
}

MemoryFootprint measureFootprint(VM& vm) {
  vm.collectGarbage(vm.mainThread(), nullptr);
  MemoryFootprint f;
  f.heap_bytes = vm.heap().liveBytes();
  f.metadata_bytes = vm.registry().totalMetadataBytes();
  f.classes = vm.registry().classCount();
  return f;
}

}  // namespace ijvm
