// Extended guest system-library classes: java/util/LinkedList,
// java/util/Random, java/util/Arrays, java/lang/Integer, java/lang/Long,
// and the second tier of java/lang/String methods. Installed by
// installSystemLibrary alongside the core classes (system_library.cpp);
// like all library code they execute in the *caller's* isolate and their
// allocations are charged to the caller (paper sections 3.1/3.2).
#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "bytecode/builder.h"
#include "stdlib/payloads.h"
#include "stdlib/stdlib_internal.h"
#include "stdlib/system_library.h"
#include "support/strf.h"

namespace ijvm {

namespace {

Object* self(NativeCtx& ctx) { return ctx.args.at(0).asRef(); }

void bindNative(JClass* cls, const std::string& name, const std::string& desc,
                NativeFn fn) {
  JMethod* m = cls->findDeclared(name, desc);
  IJVM_CHECK(m != nullptr && m->isNative(),
             strf("no native method %s.%s%s", cls->name.c_str(), name.c_str(),
                  desc.c_str()));
  m->native = std::move(fn);
}

// Checked guest int[] argument.
Object* argIntArray(NativeCtx& ctx, size_t index) {
  Object* a = ctx.args.at(index).asRef();
  if (a == nullptr) {
    ctx.throwGuest("java/lang/NullPointerException", "null array");
    return nullptr;
  }
  IJVM_CHECK(a->kind == ObjKind::ArrayInt, "argument is not an int[]");
  return a;
}

// --------------------------------------------------------------- LinkedList

void defineLinkedList(ClassLoader* sys) {
  ClassBuilder cb("java/util/LinkedList");
  cb.nativeMethod("<init>", "()V");
  cb.nativeMethod("addFirst", "(Ljava/lang/Object;)V");
  cb.nativeMethod("addLast", "(Ljava/lang/Object;)V");
  cb.nativeMethod("removeFirst", "()Ljava/lang/Object;");
  cb.nativeMethod("removeLast", "()Ljava/lang/Object;");
  cb.nativeMethod("peekFirst", "()Ljava/lang/Object;");
  cb.nativeMethod("peekLast", "()Ljava/lang/Object;");
  cb.nativeMethod("get", "(I)Ljava/lang/Object;");
  cb.nativeMethod("size", "()I");
  cb.nativeMethod("isEmpty", "()I");
  cb.nativeMethod("clear", "()V");
  JClass* cls = sys->define(cb.build());
  cls->native_factory = [] { return std::make_unique<DequePayload>(); };

  auto payload = [](NativeCtx& ctx) -> DequePayload* {
    return static_cast<DequePayload*>(self(ctx)->native());
  };
  bindNative(cls, "<init>", "()V", [](NativeCtx&) { return Value(); });
  bindNative(cls, "addFirst", "(Ljava/lang/Object;)V", [payload](NativeCtx& ctx) {
    payload(ctx)->items.push_front(ctx.args.at(1));
    return Value();
  });
  bindNative(cls, "addLast", "(Ljava/lang/Object;)V", [payload](NativeCtx& ctx) {
    payload(ctx)->items.push_back(ctx.args.at(1));
    return Value();
  });
  auto remove_end = [payload](bool front) {
    return [payload, front](NativeCtx& ctx) {
      DequePayload* p = payload(ctx);
      if (p->items.empty()) {
        ctx.throwGuest("java/lang/IllegalStateException", "empty list");
        return Value();
      }
      Value v = front ? p->items.front() : p->items.back();
      if (front) {
        p->items.pop_front();
      } else {
        p->items.pop_back();
      }
      return v;
    };
  };
  bindNative(cls, "removeFirst", "()Ljava/lang/Object;", remove_end(true));
  bindNative(cls, "removeLast", "()Ljava/lang/Object;", remove_end(false));
  bindNative(cls, "peekFirst", "()Ljava/lang/Object;", [payload](NativeCtx& ctx) {
    DequePayload* p = payload(ctx);
    return p->items.empty() ? Value::nullRef() : p->items.front();
  });
  bindNative(cls, "peekLast", "()Ljava/lang/Object;", [payload](NativeCtx& ctx) {
    DequePayload* p = payload(ctx);
    return p->items.empty() ? Value::nullRef() : p->items.back();
  });
  bindNative(cls, "get", "(I)Ljava/lang/Object;", [payload](NativeCtx& ctx) {
    DequePayload* p = payload(ctx);
    i32 idx = ctx.args.at(1).asInt();
    if (idx < 0 || static_cast<size_t>(idx) >= p->items.size()) {
      ctx.throwGuest("java/lang/ArrayIndexOutOfBoundsException", strf("%d", idx));
      return Value();
    }
    return p->items[static_cast<size_t>(idx)];
  });
  bindNative(cls, "size", "()I", [payload](NativeCtx& ctx) {
    return Value::ofInt(static_cast<i32>(payload(ctx)->items.size()));
  });
  bindNative(cls, "isEmpty", "()I", [payload](NativeCtx& ctx) {
    return Value::ofInt(payload(ctx)->items.empty() ? 1 : 0);
  });
  bindNative(cls, "clear", "()V", [payload](NativeCtx& ctx) {
    payload(ctx)->items.clear();
    return Value();
  });
}

// ------------------------------------------------------------------ Random

void defineRandom(ClassLoader* sys) {
  ClassBuilder cb("java/util/Random");
  cb.nativeMethod("<init>", "()V");
  cb.nativeMethod("<init>", "(J)V");
  cb.nativeMethod("nextInt", "()I");
  cb.nativeMethod("nextInt", "(I)I");
  cb.nativeMethod("nextLong", "()J");
  cb.nativeMethod("nextDouble", "()D");
  JClass* cls = sys->define(cb.build());
  cls->native_factory = [] { return std::make_unique<RandomPayload>(); };

  auto payload = [](NativeCtx& ctx) -> RandomPayload* {
    return static_cast<RandomPayload*>(self(ctx)->native());
  };
  bindNative(cls, "<init>", "()V", [](NativeCtx&) { return Value(); });
  bindNative(cls, "<init>", "(J)V", [payload](NativeCtx& ctx) {
    payload(ctx)->state = static_cast<u64>(ctx.args.at(1).asLong());
    return Value();
  });
  bindNative(cls, "nextInt", "()I", [payload](NativeCtx& ctx) {
    return Value::ofInt(static_cast<i32>(payload(ctx)->next()));
  });
  bindNative(cls, "nextInt", "(I)I", [payload](NativeCtx& ctx) {
    i32 bound = ctx.args.at(1).asInt();
    if (bound <= 0) {
      ctx.throwGuest("java/lang/IllegalArgumentException",
                     strf("bound %d must be positive", bound));
      return Value();
    }
    return Value::ofInt(
        static_cast<i32>(payload(ctx)->next() % static_cast<u64>(bound)));
  });
  bindNative(cls, "nextLong", "()J", [payload](NativeCtx& ctx) {
    return Value::ofLong(static_cast<i64>(payload(ctx)->next()));
  });
  bindNative(cls, "nextDouble", "()D", [payload](NativeCtx& ctx) {
    // 53 random mantissa bits in [0, 1).
    return Value::ofDouble(
        static_cast<double>(payload(ctx)->next() >> 11) * 0x1.0p-53);
  });
}

// --------------------------------------------------------- Integer / Long

// Shared digit parser: returns false (and throws NumberFormatException) on
// malformed input. Handles an optional leading '-' and overflow via i64
// accumulation against the supplied limits.
bool parseDecimal(NativeCtx& ctx, const std::string& s, i64 min, i64 max,
                  i64* out) {
  size_t i = 0;
  bool negative = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    negative = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) {
    ctx.throwGuest("java/lang/NumberFormatException", strf("\"%s\"", s.c_str()));
    return false;
  }
  u64 acc = 0;
  const u64 cap = negative ? static_cast<u64>(-(min + 1)) + 1
                           : static_cast<u64>(max);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      ctx.throwGuest("java/lang/NumberFormatException", strf("\"%s\"", s.c_str()));
      return false;
    }
    acc = acc * 10 + static_cast<u64>(s[i] - '0');
    if (acc > cap) {
      ctx.throwGuest("java/lang/NumberFormatException",
                     strf("\"%s\" out of range", s.c_str()));
      return false;
    }
  }
  *out = negative ? -static_cast<i64>(acc) : static_cast<i64>(acc);
  return true;
}

void defineIntegerAndLong(ClassLoader* sys) {
  {
    ClassBuilder cb("java/lang/Integer");
    cb.nativeMethod("parseInt", "(Ljava/lang/String;)I", ACC_STATIC);
    cb.nativeMethod("toString", "(I)Ljava/lang/String;", ACC_STATIC);
    cb.nativeMethod("toHexString", "(I)Ljava/lang/String;", ACC_STATIC);
    cb.nativeMethod("bitCount", "(I)I", ACC_STATIC);
    cb.nativeMethod("highestOneBit", "(I)I", ACC_STATIC);
    JClass* cls = sys->define(cb.build());

    bindNative(cls, "parseInt", "(Ljava/lang/String;)I", [](NativeCtx& ctx) {
      std::string s = argString(ctx, 0);
      if (ctx.hasPending()) return Value();
      i64 v = 0;
      if (!parseDecimal(ctx, s, INT32_MIN, INT32_MAX, &v)) return Value();
      return Value::ofInt(static_cast<i32>(v));
    });
    bindNative(cls, "toString", "(I)Ljava/lang/String;", [](NativeCtx& ctx) {
      return Value::ofRef(ctx.vm.newStringObject(
          &ctx.thread, strf("%d", ctx.args.at(0).asInt())));
    });
    bindNative(cls, "toHexString", "(I)Ljava/lang/String;", [](NativeCtx& ctx) {
      return Value::ofRef(ctx.vm.newStringObject(
          &ctx.thread,
          strf("%x", static_cast<u32>(ctx.args.at(0).asInt()))));
    });
    bindNative(cls, "bitCount", "(I)I", [](NativeCtx& ctx) {
      u32 v = static_cast<u32>(ctx.args.at(0).asInt());
      i32 n = 0;
      while (v != 0) {
        n += static_cast<i32>(v & 1);
        v >>= 1;
      }
      return Value::ofInt(n);
    });
    bindNative(cls, "highestOneBit", "(I)I", [](NativeCtx& ctx) {
      u32 v = static_cast<u32>(ctx.args.at(0).asInt());
      u32 top = 0;
      while (v != 0) {
        top = v & (~v + 1);  // isolate the lowest set bit...
        v &= v - 1;          // ...and clear it; the last one kept is highest
      }
      return Value::ofInt(static_cast<i32>(top));
    });
  }
  {
    ClassBuilder cb("java/lang/Long");
    cb.nativeMethod("parseLong", "(Ljava/lang/String;)J", ACC_STATIC);
    cb.nativeMethod("toString", "(J)Ljava/lang/String;", ACC_STATIC);
    JClass* cls = sys->define(cb.build());
    bindNative(cls, "parseLong", "(Ljava/lang/String;)J", [](NativeCtx& ctx) {
      std::string s = argString(ctx, 0);
      if (ctx.hasPending()) return Value();
      i64 v = 0;
      if (!parseDecimal(ctx, s, INT64_MIN, INT64_MAX, &v)) return Value();
      return Value::ofLong(v);
    });
    bindNative(cls, "toString", "(J)Ljava/lang/String;", [](NativeCtx& ctx) {
      return Value::ofRef(ctx.vm.newStringObject(
          &ctx.thread,
          strf("%lld", static_cast<long long>(ctx.args.at(0).asLong()))));
    });
  }
}

// ------------------------------------------------------------------ Arrays

void defineArrays(ClassLoader* sys) {
  ClassBuilder cb("java/util/Arrays");
  cb.nativeMethod("fill", "([II)V", ACC_STATIC);
  cb.nativeMethod("sort", "([I)V", ACC_STATIC);
  cb.nativeMethod("copyOf", "([II)[I", ACC_STATIC);
  cb.nativeMethod("equals", "([I[I)I", ACC_STATIC);
  cb.nativeMethod("hashCode", "([I)I", ACC_STATIC);
  cb.nativeMethod("binarySearch", "([II)I", ACC_STATIC);
  JClass* cls = sys->define(cb.build());

  bindNative(cls, "fill", "([II)V", [](NativeCtx& ctx) {
    Object* a = argIntArray(ctx, 0);
    if (a == nullptr) return Value();
    std::fill_n(a->intElems(), a->length, ctx.args.at(1).asInt());
    return Value();
  });
  bindNative(cls, "sort", "([I)V", [](NativeCtx& ctx) {
    Object* a = argIntArray(ctx, 0);
    if (a == nullptr) return Value();
    std::sort(a->intElems(), a->intElems() + a->length);
    return Value();
  });
  bindNative(cls, "copyOf", "([II)[I", [](NativeCtx& ctx) {
    Object* a = argIntArray(ctx, 0);
    if (a == nullptr) return Value();
    i32 n = ctx.args.at(1).asInt();
    if (n < 0) {
      ctx.throwGuest("java/lang/NegativeArraySizeException", strf("%d", n));
      return Value();
    }
    Object* out = ctx.vm.allocArrayObject(
        &ctx.thread, ctx.vm.registry().arrayClass("[I"), n);
    if (out == nullptr) return Value();
    const i32 copy = std::min(n, a->length);
    std::copy_n(a->intElems(), copy, out->intElems());
    return Value::ofRef(out);
  });
  bindNative(cls, "equals", "([I[I)I", [](NativeCtx& ctx) {
    Object* a = ctx.args.at(0).asRef();
    Object* b = ctx.args.at(1).asRef();
    if (a == b) return Value::ofInt(1);
    if (a == nullptr || b == nullptr || a->length != b->length)
      return Value::ofInt(0);
    return Value::ofInt(
        std::equal(a->intElems(), a->intElems() + a->length, b->intElems()) ? 1
                                                                            : 0);
  });
  bindNative(cls, "hashCode", "([I)I", [](NativeCtx& ctx) {
    Object* a = ctx.args.at(0).asRef();
    if (a == nullptr) return Value::ofInt(0);
    i32 h = 1;  // Java's Arrays.hashCode contract
    for (i32 i = 0; i < a->length; ++i) {
      h = static_cast<i32>(static_cast<u32>(h) * 31u +
                           static_cast<u32>(a->intElems()[i]));
    }
    return Value::ofInt(h);
  });
  bindNative(cls, "binarySearch", "([II)I", [](NativeCtx& ctx) {
    Object* a = argIntArray(ctx, 0);
    if (a == nullptr) return Value();
    const i32 key = ctx.args.at(1).asInt();
    const i32* begin = a->intElems();
    const i32* end = begin + a->length;
    const i32* it = std::lower_bound(begin, end, key);
    if (it != end && *it == key) {
      return Value::ofInt(static_cast<i32>(it - begin));
    }
    // Java contract: -(insertion point) - 1.
    return Value::ofInt(-static_cast<i32>(it - begin) - 1);
  });
}

// -------------------------------------------------- second-tier String API

void defineStringExtras(ClassLoader* sys) {
  JClass* cls = sys->findLocal("java/lang/String");
  IJVM_CHECK(cls != nullptr, "String must be defined before its extras");

  // Native methods must be declared on the class at build time; String is
  // built in system_library.cpp (which declares these extras), so they are
  // only *bound* here.
  auto bind = [&](const char* name, const char* desc, NativeFn fn) {
    bindNative(cls, name, desc, std::move(fn));
  };

  auto str_of = [](Object* o) -> const std::string& { return o->str(); };

  bind("endsWith", "(Ljava/lang/String;)I", [str_of](NativeCtx& ctx) {
    std::string suffix = argString(ctx, 1);
    if (ctx.hasPending()) return Value();
    const std::string& s = str_of(self(ctx));
    return Value::ofInt(s.size() >= suffix.size() &&
                                s.compare(s.size() - suffix.size(),
                                          suffix.size(), suffix) == 0
                            ? 1
                            : 0);
  });
  bind("contains", "(Ljava/lang/String;)I", [str_of](NativeCtx& ctx) {
    std::string needle = argString(ctx, 1);
    if (ctx.hasPending()) return Value();
    return Value::ofInt(
        str_of(self(ctx)).find(needle) != std::string::npos ? 1 : 0);
  });
  bind("indexOf", "(Ljava/lang/String;)I", [str_of](NativeCtx& ctx) {
    std::string needle = argString(ctx, 1);
    if (ctx.hasPending()) return Value();
    size_t pos = str_of(self(ctx)).find(needle);
    return Value::ofInt(pos == std::string::npos ? -1 : static_cast<i32>(pos));
  });
  bind("lastIndexOf", "(I)I", [str_of](NativeCtx& ctx) {
    size_t pos = str_of(self(ctx))
                     .rfind(static_cast<char>(ctx.args.at(1).asInt()));
    return Value::ofInt(pos == std::string::npos ? -1 : static_cast<i32>(pos));
  });
  bind("replace", "(II)Ljava/lang/String;", [str_of](NativeCtx& ctx) {
    std::string s = str_of(self(ctx));
    const char from = static_cast<char>(ctx.args.at(1).asInt());
    const char to = static_cast<char>(ctx.args.at(2).asInt());
    for (char& c : s) {
      if (c == from) c = to;
    }
    return Value::ofRef(ctx.vm.newStringObject(&ctx.thread, std::move(s)));
  });
  bind("toUpperCase", "()Ljava/lang/String;", [str_of](NativeCtx& ctx) {
    std::string s = str_of(self(ctx));
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<u8>(c)));
    return Value::ofRef(ctx.vm.newStringObject(&ctx.thread, std::move(s)));
  });
  bind("toLowerCase", "()Ljava/lang/String;", [str_of](NativeCtx& ctx) {
    std::string s = str_of(self(ctx));
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<u8>(c)));
    return Value::ofRef(ctx.vm.newStringObject(&ctx.thread, std::move(s)));
  });
  bind("trim", "()Ljava/lang/String;", [str_of](NativeCtx& ctx) {
    const std::string& s = str_of(self(ctx));
    size_t b = 0, e = s.size();
    while (b < e && static_cast<u8>(s[b]) <= ' ') ++b;
    while (e > b && static_cast<u8>(s[e - 1]) <= ' ') --e;
    return Value::ofRef(
        ctx.vm.newStringObject(&ctx.thread, s.substr(b, e - b)));
  });
  bind("split", "(Ljava/lang/String;)[Ljava/lang/String;",
       [str_of](NativeCtx& ctx) {
         std::string sep = argString(ctx, 1);
         if (ctx.hasPending()) return Value();
         if (sep.empty()) {
           ctx.throwGuest("java/lang/IllegalArgumentException",
                          "empty separator");
           return Value();
         }
         const std::string& s = str_of(self(ctx));
         std::vector<std::string> parts;
         size_t start = 0;
         for (size_t pos = s.find(sep); pos != std::string::npos;
              pos = s.find(sep, start)) {
           parts.push_back(s.substr(start, pos - start));
           start = pos + sep.size();
         }
         parts.push_back(s.substr(start));
         LocalRootScope roots(&ctx.thread);
         Object* arr = roots.add(ctx.vm.allocArrayObject(
             &ctx.thread, ctx.vm.registry().arrayClass("[Ljava/lang/String;"),
             static_cast<i32>(parts.size())));
         if (arr == nullptr) return Value();
         for (size_t i = 0; i < parts.size(); ++i) {
           Object* piece =
               ctx.vm.newStringObject(&ctx.thread, std::move(parts[i]));
           if (piece == nullptr) return Value();
           arr->refElems()[i] = piece;
         }
         return Value::ofRef(arr);
       });
}

}  // namespace

void defineExtraClasses(ClassLoader* sys) {
  defineLinkedList(sys);
  defineRandom(sys);
  defineIntegerAndLong(sys);
  defineArrays(sys);
  defineStringExtras(sys);
}

}  // namespace ijvm
