#include "stdlib/channels.h"

#include <chrono>

#include "obs/trace.h"

namespace ijvm {

namespace {
constexpr auto kSlice = std::chrono::microseconds(500);
}

void ByteQueue::push(const u8* data, size_t n) {
  {
    std::lock_guard<std::mutex> lock(m_);
    bytes_.insert(bytes_.end(), data, data + n);
  }
  cv_.notify_all();
}

void ByteQueue::pushv(const std::string* parts, size_t count) {
  {
    std::lock_guard<std::mutex> lock(m_);
    for (size_t i = 0; i < count; ++i) {
      const u8* data = reinterpret_cast<const u8*>(parts[i].data());
      bytes_.insert(bytes_.end(), data, data + parts[i].size());
    }
  }
  cv_.notify_all();
}

size_t ByteQueue::pop(u8* out, size_t n, const std::atomic<bool>* cancel) {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    if (!bytes_.empty()) {
      size_t take = std::min(n, bytes_.size());
      for (size_t i = 0; i < take; ++i) {
        out[i] = bytes_.front();
        bytes_.pop_front();
      }
      return take;
    }
    if (closed_) return 0;
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return SIZE_MAX;
    }
    cv_.wait_for(lock, kSlice);
  }
}

void ByteQueue::close() {
  {
    std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t ByteQueue::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return bytes_.size();
}

std::pair<std::shared_ptr<ByteChannel>, std::shared_ptr<ByteChannel>>
ByteChannel::pair() {
  auto a_to_b = std::make_shared<ByteQueue>();
  auto b_to_a = std::make_shared<ByteQueue>();
  auto a = std::shared_ptr<ByteChannel>(new ByteChannel(b_to_a, a_to_b));
  auto b = std::shared_ptr<ByteChannel>(new ByteChannel(a_to_b, b_to_a));
  return {a, b};
}

std::shared_ptr<ByteChannel> ByteChannel::loopback() {
  auto q = std::make_shared<ByteQueue>();
  return std::shared_ptr<ByteChannel>(new ByteChannel(q, q));
}

size_t ByteChannel::write(const u8* data, size_t n) {
  // The send is a queue push (lock + copy + notify): time it as the
  // channel-send latency and record the bytes moved. Channels are a cold
  // path relative to the interpreter (syscall-like), so per-send clock
  // reads are affordable -- unlike the migrated-call path, which samples.
  if (obs::traceEnabled()) {
    const u64 t0 = obs::traceNowNs();
    out_->push(data, n);
    const u64 t1 = obs::traceNowNs();
    obs::emitAt(t1, obs::Ev::ChannelSend, obs::Ph::Instant, -1, n);
    obs::recordLatency(obs::Lat::ChannelSend, t1 - t0);
  } else {
    out_->push(data, n);
  }
  return n;
}

size_t ByteChannel::writev(const std::string* parts, size_t count) {
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) total += parts[i].size();
  if (count == 0) return 0;
  if (obs::traceEnabled()) {
    const u64 t0 = obs::traceNowNs();
    out_->pushv(parts, count);
    const u64 t1 = obs::traceNowNs();
    obs::emitAt(t1, obs::Ev::ChannelSendBatch, obs::Ph::Instant, -1, total,
                count);
    obs::recordLatency(obs::Lat::ChannelSend, t1 - t0);
  } else {
    out_->pushv(parts, count);
  }
  return total;
}

size_t ByteChannel::read(u8* out, size_t n, const std::atomic<bool>* cancel) {
  return in_->pop(out, n, cancel);
}

bool ByteChannel::readFully(std::string* out, size_t n,
                            const std::atomic<bool>* cancel) {
  out->clear();
  out->reserve(n);
  std::vector<u8> buf(4096);
  while (out->size() < n) {
    size_t want = std::min(buf.size(), n - out->size());
    size_t got = read(buf.data(), want, cancel);
    if (got == 0 || got == SIZE_MAX) return false;
    out->append(reinterpret_cast<char*>(buf.data()), got);
  }
  return true;
}

void ByteChannel::close() {
  in_->close();
  out_->close();
}

std::shared_ptr<ByteChannel> ChannelHub::connect(const std::string& name) {
  auto [client, server] = ByteChannel::pair();
  {
    std::lock_guard<std::mutex> lock(m_);
    pending_[name].push_back(server);
  }
  cv_.notify_all();
  return client;
}

std::shared_ptr<ByteChannel> ChannelHub::accept(const std::string& name,
                                                const std::atomic<bool>* cancel) {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    auto it = pending_.find(name);
    if (it != pending_.end() && !it->second.empty()) {
      auto ch = it->second.front();
      it->second.pop_front();
      return ch;
    }
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return nullptr;
    cv_.wait_for(lock, kSlice);
  }
}

}  // namespace ijvm
