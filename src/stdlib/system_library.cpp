#include "stdlib/system_library.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bytecode/builder.h"
#include "stdlib/payloads.h"
#include "stdlib/stdlib_internal.h"
#include "support/strf.h"

namespace ijvm {

namespace {

constexpr const char* kHubKey = "channels";

Object* self(NativeCtx& ctx) { return ctx.args.at(0).asRef(); }

// Guest string payload of args[index]; throws NPE on null.
std::string argStr(NativeCtx& ctx, size_t index) {
  Object* s = ctx.args.at(index).asRef();
  if (s == nullptr) {
    ctx.throwGuest("java/lang/NullPointerException", "null string");
    return {};
  }
  IJVM_CHECK(s->kind == ObjKind::String, "argument is not a string");
  return s->str();
}

void bindNative(JClass* cls, const std::string& name, const std::string& desc,
                NativeFn fn) {
  JMethod* m = cls->findDeclared(name, desc);
  IJVM_CHECK(m != nullptr && m->isNative(),
             strf("no native method %s.%s%s", cls->name.c_str(), name.c_str(),
                  desc.c_str()));
  m->native = std::move(fn);
}

// Sleep helper shared by Thread.sleep and timed waits: slices so that
// interrupts / termination / VM shutdown break the sleep promptly.
// Returns false when interrupted (flag cleared, caller throws).
bool interruptibleSleep(VM& vm, JThread& t, i64 millis) {
  Isolate* iso = t.current_isolate.load(std::memory_order_relaxed);
  iso->stats.sleeping_threads.fetch_add(1, std::memory_order_relaxed);
  BlockedScope blocked(vm.safepoints(), &t);
  const bool forever = millis <= 0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(forever ? 0 : millis);
  bool interrupted = false;
  for (;;) {
    if (t.interrupted.load(std::memory_order_acquire) ||
        t.force_kill.load(std::memory_order_acquire)) {
      interrupted = true;
      break;
    }
    if (!forever && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  iso->stats.sleeping_threads.fetch_sub(1, std::memory_order_relaxed);
  if (interrupted) {
    t.interrupted.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

JThread* jthreadOf(NativeCtx&, Object* thread_obj) {
  JField* f = thread_obj->cls->findField("__jthread");
  if (f == nullptr || f->isStatic()) return nullptr;
  return reinterpret_cast<JThread*>(thread_obj->fields()[f->slot].asLong());
}

// ---------------------------------------------------------------- classes

void defineObject(ClassLoader* sys) {
  ClassBuilder cb("java/lang/Object", "");
  cb.method("<init>", "()V").ret();
  cb.nativeMethod("hashCode", "()I");
  cb.nativeMethod("equals", "(Ljava/lang/Object;)I");
  cb.nativeMethod("getClass", "()Ljava/lang/Class;");
  cb.nativeMethod("toString", "()Ljava/lang/String;");
  cb.nativeMethod("wait", "()V");
  cb.nativeMethod("wait", "(J)V");
  cb.nativeMethod("notify", "()V");
  cb.nativeMethod("notifyAll", "()V");
  JClass* cls = sys->define(cb.build());

  bindNative(cls, "hashCode", "()I", [](NativeCtx& ctx) {
    return Value::ofInt(static_cast<i32>(reinterpret_cast<uintptr_t>(self(ctx)) >> 4));
  });
  bindNative(cls, "equals", "(Ljava/lang/Object;)I", [](NativeCtx& ctx) {
    return Value::ofInt(self(ctx) == ctx.args.at(1).asRef() ? 1 : 0);
  });
  bindNative(cls, "getClass", "()Ljava/lang/Class;", [](NativeCtx& ctx) {
    return Value::ofRef(ctx.vm.classObject(&ctx.thread, self(ctx)->cls));
  });
  bindNative(cls, "toString", "()Ljava/lang/String;", [](NativeCtx& ctx) {
    Object* o = self(ctx);
    std::string text = strf("%s@%x", o->cls->name.c_str(),
                            static_cast<unsigned>(reinterpret_cast<uintptr_t>(o)));
    return Value::ofRef(ctx.vm.newStringObject(&ctx.thread, text));
  });

  auto do_wait = [](NativeCtx& ctx, i64 millis) -> Value {
    Object* o = self(ctx);
    Monitor* mon = ctx.vm.monitorOf(o);
    JThread& t = ctx.thread;
    if (!mon->ownedBy(&t)) {
      ctx.throwGuest("java/lang/IllegalMonitorStateException", "wait: not owner");
      return {};
    }
    Isolate* iso = t.current_isolate.load(std::memory_order_relaxed);
    iso->stats.sleeping_threads.fetch_add(1, std::memory_order_relaxed);
    Monitor::WaitResult r;
    {
      BlockedScope blocked(ctx.vm.safepoints(), &ctx.thread);
      r = mon->wait(&t, millis, &t.interrupted);
    }
    iso->stats.sleeping_threads.fetch_sub(1, std::memory_order_relaxed);
    if (r == Monitor::WaitResult::Interrupted) {
      t.interrupted.store(false, std::memory_order_release);
      ctx.throwGuest("java/lang/InterruptedException", "wait interrupted");
    }
    return {};
  };
  bindNative(cls, "wait", "()V",
             [do_wait](NativeCtx& ctx) { return do_wait(ctx, 0); });
  bindNative(cls, "wait", "(J)V", [do_wait](NativeCtx& ctx) {
    return do_wait(ctx, ctx.args.at(1).asLong());
  });
  bindNative(cls, "notify", "()V", [](NativeCtx& ctx) {
    Monitor* mon = ctx.vm.monitorOf(self(ctx));
    if (!mon->ownedBy(&ctx.thread)) {
      ctx.throwGuest("java/lang/IllegalMonitorStateException", "notify: not owner");
      return Value();
    }
    mon->notifyOne();
    return Value();
  });
  bindNative(cls, "notifyAll", "()V", [](NativeCtx& ctx) {
    Monitor* mon = ctx.vm.monitorOf(self(ctx));
    if (!mon->ownedBy(&ctx.thread)) {
      ctx.throwGuest("java/lang/IllegalMonitorStateException", "notifyAll: not owner");
      return Value();
    }
    mon->notifyAll();
    return Value();
  });
}

void defineClassClass(ClassLoader* sys) {
  ClassBuilder cb("java/lang/Class");
  cb.field("__jclass", "J", ACC_PRIVATE);
  cb.nativeMethod("getName", "()Ljava/lang/String;");
  JClass* cls = sys->define(cb.build());
  bindNative(cls, "getName", "()Ljava/lang/String;", [](NativeCtx& ctx) {
    Object* o = self(ctx);
    JField* f = o->cls->findField("__jclass");
    auto* jc = reinterpret_cast<JClass*>(o->fields()[f->slot].asLong());
    return Value::ofRef(
        ctx.vm.newStringObject(&ctx.thread, jc != nullptr ? jc->name : "?"));
  });
}

void defineString(ClassLoader* sys) {
  ClassBuilder cb("java/lang/String");
  cb.nativeMethod("length", "()I");
  cb.nativeMethod("charAt", "(I)I");
  cb.nativeMethod("equals", "(Ljava/lang/Object;)I");
  cb.nativeMethod("hashCode", "()I");
  cb.nativeMethod("toString", "()Ljava/lang/String;");
  cb.nativeMethod("concat", "(Ljava/lang/String;)Ljava/lang/String;");
  cb.nativeMethod("substring", "(II)Ljava/lang/String;");
  cb.nativeMethod("indexOf", "(I)I");
  cb.nativeMethod("startsWith", "(Ljava/lang/String;)I");
  cb.nativeMethod("compareTo", "(Ljava/lang/String;)I");
  cb.nativeMethod("intern", "()Ljava/lang/String;");
  cb.nativeMethod("isEmpty", "()I");
  // Second-tier methods, bound in stdlib_extra.cpp.
  cb.nativeMethod("endsWith", "(Ljava/lang/String;)I");
  cb.nativeMethod("contains", "(Ljava/lang/String;)I");
  cb.nativeMethod("indexOf", "(Ljava/lang/String;)I");
  cb.nativeMethod("lastIndexOf", "(I)I");
  cb.nativeMethod("replace", "(II)Ljava/lang/String;");
  cb.nativeMethod("toUpperCase", "()Ljava/lang/String;");
  cb.nativeMethod("toLowerCase", "()Ljava/lang/String;");
  cb.nativeMethod("trim", "()Ljava/lang/String;");
  cb.nativeMethod("split", "(Ljava/lang/String;)[Ljava/lang/String;");
  JClass* cls = sys->define(cb.build());

  auto str_of = [](Object* o) -> const std::string& { return o->str(); };

  bindNative(cls, "length", "()I", [str_of](NativeCtx& ctx) {
    return Value::ofInt(static_cast<i32>(str_of(self(ctx)).size()));
  });
  bindNative(cls, "charAt", "(I)I", [str_of](NativeCtx& ctx) {
    const std::string& s = str_of(self(ctx));
    i32 idx = ctx.args.at(1).asInt();
    if (idx < 0 || static_cast<size_t>(idx) >= s.size()) {
      ctx.throwGuest("java/lang/StringIndexOutOfBoundsException", strf("%d", idx));
      return Value();
    }
    return Value::ofInt(static_cast<u8>(s[static_cast<size_t>(idx)]));
  });
  bindNative(cls, "equals", "(Ljava/lang/Object;)I", [str_of](NativeCtx& ctx) {
    Object* other = ctx.args.at(1).asRef();
    if (other == nullptr || other->kind != ObjKind::String) return Value::ofInt(0);
    return Value::ofInt(str_of(self(ctx)) == other->str() ? 1 : 0);
  });
  bindNative(cls, "hashCode", "()I", [str_of](NativeCtx& ctx) {
    // Java's s[0]*31^(n-1) + ...
    i32 h = 0;
    for (char c : str_of(self(ctx))) {
      h = static_cast<i32>(static_cast<u32>(h) * 31u + static_cast<u8>(c));
    }
    return Value::ofInt(h);
  });
  bindNative(cls, "toString", "()Ljava/lang/String;",
             [](NativeCtx& ctx) { return Value::ofRef(self(ctx)); });
  bindNative(cls, "concat", "(Ljava/lang/String;)Ljava/lang/String;",
             [str_of](NativeCtx& ctx) {
               std::string other = argStr(ctx, 1);
               if (ctx.hasPending()) return Value();
               return Value::ofRef(ctx.vm.newStringObject(
                   &ctx.thread, str_of(self(ctx)) + other));
             });
  bindNative(cls, "substring", "(II)Ljava/lang/String;", [str_of](NativeCtx& ctx) {
    const std::string& s = str_of(self(ctx));
    i32 from = ctx.args.at(1).asInt();
    i32 to = ctx.args.at(2).asInt();
    if (from < 0 || to < from || static_cast<size_t>(to) > s.size()) {
      ctx.throwGuest("java/lang/StringIndexOutOfBoundsException",
                     strf("[%d,%d)", from, to));
      return Value();
    }
    return Value::ofRef(ctx.vm.newStringObject(
        &ctx.thread, s.substr(static_cast<size_t>(from),
                              static_cast<size_t>(to - from))));
  });
  bindNative(cls, "indexOf", "(I)I", [str_of](NativeCtx& ctx) {
    const std::string& s = str_of(self(ctx));
    char c = static_cast<char>(ctx.args.at(1).asInt());
    size_t pos = s.find(c);
    return Value::ofInt(pos == std::string::npos ? -1 : static_cast<i32>(pos));
  });
  bindNative(cls, "startsWith", "(Ljava/lang/String;)I", [str_of](NativeCtx& ctx) {
    std::string prefix = argStr(ctx, 1);
    if (ctx.hasPending()) return Value();
    const std::string& s = str_of(self(ctx));
    return Value::ofInt(s.rfind(prefix, 0) == 0 ? 1 : 0);
  });
  bindNative(cls, "compareTo", "(Ljava/lang/String;)I", [str_of](NativeCtx& ctx) {
    std::string other = argStr(ctx, 1);
    if (ctx.hasPending()) return Value();
    int c = str_of(self(ctx)).compare(other);
    return Value::ofInt(c < 0 ? -1 : (c > 0 ? 1 : 0));
  });
  bindNative(cls, "intern", "()Ljava/lang/String;", [str_of](NativeCtx& ctx) {
    return Value::ofRef(ctx.vm.internString(&ctx.thread, str_of(self(ctx))));
  });
  bindNative(cls, "isEmpty", "()I", [str_of](NativeCtx& ctx) {
    return Value::ofInt(str_of(self(ctx)).empty() ? 1 : 0);
  });
}

void defineThrowables(ClassLoader* sys) {
  {
    ClassBuilder cb("java/lang/Throwable");
    cb.field("message", "Ljava/lang/String;");
    auto& c0 = cb.method("<init>", "()V");
    c0.aload(0).invokespecial("java/lang/Object", "<init>", "()V").ret();
    auto& c1 = cb.method("<init>", "(Ljava/lang/String;)V");
    c1.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    c1.aload(0).aload(1).putfield("java/lang/Throwable", "message",
                                  "Ljava/lang/String;");
    c1.ret();
    auto& gm = cb.method("getMessage", "()Ljava/lang/String;");
    gm.aload(0)
        .getfield("java/lang/Throwable", "message", "Ljava/lang/String;")
        .areturn();
    sys->define(cb.build());
  }

  auto def_exc = [&](const char* name, const char* super) {
    ClassBuilder cb(name, super);
    auto& c0 = cb.method("<init>", "()V");
    c0.aload(0).invokespecial(super, "<init>", "()V").ret();
    auto& c1 = cb.method("<init>", "(Ljava/lang/String;)V");
    c1.aload(0).aload(1).invokespecial(super, "<init>", "(Ljava/lang/String;)V").ret();
    return sys->define(cb.build());
  };

  def_exc("java/lang/Exception", "java/lang/Throwable");
  def_exc("java/lang/RuntimeException", "java/lang/Exception");
  def_exc("java/lang/Error", "java/lang/Throwable");

  def_exc("java/lang/NullPointerException", "java/lang/RuntimeException");
  def_exc("java/lang/ArithmeticException", "java/lang/RuntimeException");
  def_exc("java/lang/ArrayIndexOutOfBoundsException", "java/lang/RuntimeException");
  def_exc("java/lang/StringIndexOutOfBoundsException", "java/lang/RuntimeException");
  def_exc("java/lang/NegativeArraySizeException", "java/lang/RuntimeException");
  def_exc("java/lang/ClassCastException", "java/lang/RuntimeException");
  def_exc("java/lang/ArrayStoreException", "java/lang/RuntimeException");
  def_exc("java/lang/IllegalMonitorStateException", "java/lang/RuntimeException");
  def_exc("java/lang/IllegalArgumentException", "java/lang/RuntimeException");
  def_exc("java/lang/IllegalStateException", "java/lang/RuntimeException");
  def_exc("java/lang/NumberFormatException", "java/lang/IllegalArgumentException");
  def_exc("java/lang/SecurityException", "java/lang/RuntimeException");
  def_exc("java/lang/InterruptedException", "java/lang/Exception");
  def_exc("java/lang/ClassNotFoundException", "java/lang/Exception");

  def_exc("java/lang/OutOfMemoryError", "java/lang/Error");
  def_exc("java/lang/StackOverflowError", "java/lang/Error");
  def_exc("java/lang/AbstractMethodError", "java/lang/Error");
  def_exc("java/lang/InstantiationError", "java/lang/Error");
  def_exc("java/lang/NoClassDefFoundError", "java/lang/Error");
  def_exc("java/lang/NoSuchMethodError", "java/lang/Error");
  def_exc("java/lang/NoSuchFieldError", "java/lang/Error");
  def_exc("java/lang/IncompatibleClassChangeError", "java/lang/Error");
  def_exc("java/lang/ExceptionInInitializerError", "java/lang/Error");

  // The termination exception (paper section 3.3). `target` is the isolate
  // being terminated; handlers in that isolate's frames are skipped by
  // exception dispatch, making it uncatchable *by* the dying isolate.
  {
    ClassBuilder cb(kStoppedIsolateException, "java/lang/Error");
    cb.field("target", "I");
    auto& c0 = cb.method("<init>", "()V");
    c0.aload(0).invokespecial("java/lang/Error", "<init>", "()V").ret();
    auto& c1 = cb.method("<init>", "(Ljava/lang/String;)V");
    c1.aload(0).aload(1)
        .invokespecial("java/lang/Error", "<init>", "(Ljava/lang/String;)V")
        .ret();
    sys->define(cb.build());
  }
}

void defineRunnableAndThread(ClassLoader* sys) {
  {
    ClassBuilder cb("java/lang/Runnable", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("run", "()V");
    sys->define(cb.build());
  }

  ClassBuilder cb("java/lang/Thread");
  cb.addInterface("java/lang/Runnable");
  cb.field("name", "Ljava/lang/String;");
  cb.field("target", "Ljava/lang/Runnable;");
  cb.field("__jthread", "J", ACC_PRIVATE);
  {
    auto& c0 = cb.method("<init>", "()V");
    c0.aload(0).invokespecial("java/lang/Object", "<init>", "()V").ret();
    auto& c1 = cb.method("<init>", "(Ljava/lang/Runnable;)V");
    c1.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    c1.aload(0).aload(1).putfield("java/lang/Thread", "target",
                                   "Ljava/lang/Runnable;");
    c1.ret();
    auto& sn = cb.method("setName", "(Ljava/lang/String;)V");
    sn.aload(0).aload(1).putfield("java/lang/Thread", "name", "Ljava/lang/String;")
        .ret();
    auto& gn = cb.method("getName", "()Ljava/lang/String;");
    gn.aload(0).getfield("java/lang/Thread", "name", "Ljava/lang/String;").areturn();
    // run(): if (target != null) target.run();
    auto& run = cb.method("run", "()V");
    Label lnull = run.newLabel();
    run.aload(0).getfield("java/lang/Thread", "target", "Ljava/lang/Runnable;");
    run.dup().ifNull(lnull);
    run.invokeinterface("java/lang/Runnable", "run", "()V").ret();
    run.bind(lnull).pop().ret();
  }
  cb.nativeMethod("start", "()V");
  cb.nativeMethod("join", "()V");
  cb.nativeMethod("interrupt", "()V");
  cb.nativeMethod("isAlive", "()I");
  cb.nativeMethod("sleep", "(J)V", ACC_STATIC);
  cb.nativeMethod("currentThread", "()Ljava/lang/Thread;", ACC_STATIC);
  cb.nativeMethod("yield", "()V", ACC_STATIC);
  JClass* cls = sys->define(cb.build());

  bindNative(cls, "start", "()V", [](NativeCtx& ctx) {
    Object* obj = self(ctx);
    JField* f = obj->cls->findField("__jthread");
    if (obj->fields()[f->slot].asLong() != 0) {
      ctx.throwGuest("java/lang/IllegalStateException", "thread already started");
      return Value();
    }
    std::string name = "guest-thread";
    if (JField* nf = obj->cls->findField("name"); nf != nullptr) {
      Object* ns = obj->fields()[nf->slot].asRef();
      if (ns != nullptr && ns->kind == ObjKind::String) name = ns->str();
    }
    JThread* spawned = ctx.vm.spawnThread(&ctx.thread, obj, name);
    if (spawned == nullptr) return Value();  // limit exceeded, pending OOM
    obj->fields()[f->slot] = Value::ofLong(reinterpret_cast<i64>(spawned));
    return Value();
  });
  bindNative(cls, "join", "()V", [](NativeCtx& ctx) {
    JThread* target = jthreadOf(ctx, self(ctx));
    if (target == nullptr) return Value();  // never started: join is a no-op
    bool done;
    {
      BlockedScope blocked(ctx.vm.safepoints(), &ctx.thread);
      done = target->awaitDone(&ctx.thread, 0);
    }
    if (!done) {
      ctx.thread.interrupted.store(false, std::memory_order_release);
      ctx.throwGuest("java/lang/InterruptedException", "join interrupted");
    }
    return Value();
  });
  bindNative(cls, "interrupt", "()V", [](NativeCtx& ctx) {
    JThread* target = jthreadOf(ctx, self(ctx));
    if (target != nullptr) {
      target->interrupted.store(true, std::memory_order_release);
    }
    return Value();
  });
  bindNative(cls, "isAlive", "()I", [](NativeCtx& ctx) {
    JThread* target = jthreadOf(ctx, self(ctx));
    return Value::ofInt(
        target != nullptr &&
                target->state.load(std::memory_order_acquire) != ThreadState::Dead &&
                !target->isDone()
            ? 1
            : 0);
  });
  bindNative(cls, "sleep", "(J)V", [](NativeCtx& ctx) {
    if (!interruptibleSleep(ctx.vm, ctx.thread, ctx.args.at(0).asLong())) {
      ctx.throwGuest("java/lang/InterruptedException", "sleep interrupted");
    }
    return Value();
  });
  bindNative(cls, "currentThread", "()Ljava/lang/Thread;", [cls](NativeCtx& ctx) {
    JThread& t = ctx.thread;
    if (t.thread_object == nullptr) {
      Object* obj = ctx.vm.allocObject(&t, cls);
      if (obj == nullptr) return Value();
      JField* f = cls->findField("__jthread");
      obj->fields()[f->slot] = Value::ofLong(reinterpret_cast<i64>(&t));
      t.thread_object = obj;
    }
    return Value::ofRef(t.thread_object);
  });
  bindNative(cls, "yield", "()V", [](NativeCtx&) {
    std::this_thread::yield();
    return Value();
  });
}

void defineSystemAndMath(ClassLoader* sys) {
  {
    ClassBuilder cb("java/lang/System");
    cb.nativeMethod("currentTimeMillis", "()J", ACC_STATIC);
    cb.nativeMethod("nanoTime", "()J", ACC_STATIC);
    cb.nativeMethod("arraycopy",
                    "(Ljava/lang/Object;ILjava/lang/Object;II)V", ACC_STATIC);
    cb.nativeMethod("gc", "()V", ACC_STATIC);
    cb.nativeMethod("exit", "(I)V", ACC_STATIC);
    cb.nativeMethod("identityHashCode", "(Ljava/lang/Object;)I", ACC_STATIC);
    cb.nativeMethod("println", "(Ljava/lang/String;)V", ACC_STATIC);
    cb.nativeMethod("printInt", "(I)V", ACC_STATIC);
    JClass* cls = sys->define(cb.build());

    bindNative(cls, "currentTimeMillis", "()J", [](NativeCtx&) {
      auto now = std::chrono::steady_clock::now().time_since_epoch();
      return Value::ofLong(
          std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
    });
    bindNative(cls, "nanoTime", "()J", [](NativeCtx&) {
      auto now = std::chrono::steady_clock::now().time_since_epoch();
      return Value::ofLong(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
    });
    bindNative(cls, "arraycopy", "(Ljava/lang/Object;ILjava/lang/Object;II)V",
               [](NativeCtx& ctx) {
                 Object* src = ctx.args.at(0).asRef();
                 i32 src_pos = ctx.args.at(1).asInt();
                 Object* dst = ctx.args.at(2).asRef();
                 i32 dst_pos = ctx.args.at(3).asInt();
                 i32 len = ctx.args.at(4).asInt();
                 if (src == nullptr || dst == nullptr) {
                   ctx.throwGuest("java/lang/NullPointerException", "arraycopy");
                   return Value();
                 }
                 if (!src->isArray() || !dst->isArray() || src->kind != dst->kind) {
                   ctx.throwGuest("java/lang/ArrayStoreException", "arraycopy");
                   return Value();
                 }
                 if (len < 0 || src_pos < 0 || dst_pos < 0 ||
                     src_pos + len > src->length || dst_pos + len > dst->length) {
                   ctx.throwGuest("java/lang/ArrayIndexOutOfBoundsException",
                                  "arraycopy");
                   return Value();
                 }
                 switch (src->kind) {
                   case ObjKind::ArrayInt:
                     std::memmove(dst->intElems() + dst_pos, src->intElems() + src_pos,
                                  static_cast<size_t>(len) * sizeof(i32));
                     break;
                   case ObjKind::ArrayLong:
                     std::memmove(dst->longElems() + dst_pos,
                                  src->longElems() + src_pos,
                                  static_cast<size_t>(len) * sizeof(i64));
                     break;
                   case ObjKind::ArrayDouble:
                     std::memmove(dst->doubleElems() + dst_pos,
                                  src->doubleElems() + src_pos,
                                  static_cast<size_t>(len) * sizeof(double));
                     break;
                   case ObjKind::ArrayRef:
                     std::memmove(dst->refElems() + dst_pos, src->refElems() + src_pos,
                                  static_cast<size_t>(len) * sizeof(Object*));
                     break;
                   default:
                     ctx.throwGuest("java/lang/ArrayStoreException", "arraycopy");
                     break;
                 }
                 return Value();
               });
    bindNative(cls, "gc", "()V", [](NativeCtx& ctx) {
      ctx.vm.collectGarbage(&ctx.thread,
                            ctx.thread.current_isolate.load(std::memory_order_relaxed));
      return Value();
    });
    bindNative(cls, "exit", "(I)V", [](NativeCtx& ctx) {
      // OSGi rule 2 (paper section 3.4): bundles must not be able to shut
      // down the JVM; only Isolate0 may.
      Isolate* iso = ctx.thread.current_isolate.load(std::memory_order_relaxed);
      if (!iso->privileged) {
        ctx.throwGuest("java/lang/SecurityException", "System.exit denied");
        return Value();
      }
      ctx.vm.shutdownAllThreads();
      return Value();
    });
    bindNative(cls, "identityHashCode", "(Ljava/lang/Object;)I", [](NativeCtx& ctx) {
      return Value::ofInt(static_cast<i32>(
          reinterpret_cast<uintptr_t>(ctx.args.at(0).asRef()) >> 4));
    });
    bindNative(cls, "println", "(Ljava/lang/String;)V", [](NativeCtx& ctx) {
      Object* s = ctx.args.at(0).asRef();
      std::printf("%s\n", s != nullptr && s->kind == ObjKind::String
                              ? s->str().c_str()
                              : "null");
      return Value();
    });
    bindNative(cls, "printInt", "(I)V", [](NativeCtx& ctx) {
      std::printf("%d\n", ctx.args.at(0).asInt());
      return Value();
    });
  }

  {
    ClassBuilder cb("java/lang/Math");
    cb.nativeMethod("sqrt", "(D)D", ACC_STATIC);
    cb.nativeMethod("sin", "(D)D", ACC_STATIC);
    cb.nativeMethod("cos", "(D)D", ACC_STATIC);
    cb.nativeMethod("pow", "(DD)D", ACC_STATIC);
    cb.nativeMethod("floor", "(D)D", ACC_STATIC);
    cb.nativeMethod("abs", "(D)D", ACC_STATIC);
    cb.nativeMethod("max", "(II)I", ACC_STATIC);
    cb.nativeMethod("min", "(II)I", ACC_STATIC);
    JClass* cls = sys->define(cb.build());
    bindNative(cls, "sqrt", "(D)D", [](NativeCtx& ctx) {
      return Value::ofDouble(std::sqrt(ctx.args.at(0).asDouble()));
    });
    bindNative(cls, "sin", "(D)D", [](NativeCtx& ctx) {
      return Value::ofDouble(std::sin(ctx.args.at(0).asDouble()));
    });
    bindNative(cls, "cos", "(D)D", [](NativeCtx& ctx) {
      return Value::ofDouble(std::cos(ctx.args.at(0).asDouble()));
    });
    bindNative(cls, "pow", "(DD)D", [](NativeCtx& ctx) {
      return Value::ofDouble(
          std::pow(ctx.args.at(0).asDouble(), ctx.args.at(1).asDouble()));
    });
    bindNative(cls, "floor", "(D)D", [](NativeCtx& ctx) {
      return Value::ofDouble(std::floor(ctx.args.at(0).asDouble()));
    });
    bindNative(cls, "abs", "(D)D", [](NativeCtx& ctx) {
      return Value::ofDouble(std::fabs(ctx.args.at(0).asDouble()));
    });
    bindNative(cls, "max", "(II)I", [](NativeCtx& ctx) {
      return Value::ofInt(std::max(ctx.args.at(0).asInt(), ctx.args.at(1).asInt()));
    });
    bindNative(cls, "min", "(II)I", [](NativeCtx& ctx) {
      return Value::ofInt(std::min(ctx.args.at(0).asInt(), ctx.args.at(1).asInt()));
    });
  }

  // java/lang/Integer (incl. a strict, overflow-checked parseInt) is
  // defined with the extended classes in stdlib_extra.cpp.
}

void defineStringBuilder(ClassLoader* sys) {
  ClassBuilder cb("java/lang/StringBuilder");
  cb.nativeMethod("<init>", "()V");
  cb.nativeMethod("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;");
  cb.nativeMethod("appendInt", "(I)Ljava/lang/StringBuilder;");
  cb.nativeMethod("appendChar", "(I)Ljava/lang/StringBuilder;");
  cb.nativeMethod("length", "()I");
  cb.nativeMethod("toString", "()Ljava/lang/String;");
  JClass* cls = sys->define(cb.build());
  cls->native_factory = [] { return std::make_unique<SbPayload>(); };

  auto payload = [](NativeCtx& ctx) -> SbPayload* {
    return static_cast<SbPayload*>(self(ctx)->native());
  };
  bindNative(cls, "<init>", "()V", [](NativeCtx&) { return Value(); });
  bindNative(cls, "append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
             [payload](NativeCtx& ctx) {
               std::string s = argStr(ctx, 1);
               if (ctx.hasPending()) return Value();
               payload(ctx)->buf += s;
               return Value::ofRef(self(ctx));
             });
  bindNative(cls, "appendInt", "(I)Ljava/lang/StringBuilder;",
             [payload](NativeCtx& ctx) {
               payload(ctx)->buf += strf("%d", ctx.args.at(1).asInt());
               return Value::ofRef(self(ctx));
             });
  bindNative(cls, "appendChar", "(I)Ljava/lang/StringBuilder;",
             [payload](NativeCtx& ctx) {
               payload(ctx)->buf += static_cast<char>(ctx.args.at(1).asInt());
               return Value::ofRef(self(ctx));
             });
  bindNative(cls, "length", "()I", [payload](NativeCtx& ctx) {
    return Value::ofInt(static_cast<i32>(payload(ctx)->buf.size()));
  });
  bindNative(cls, "toString", "()Ljava/lang/String;", [payload](NativeCtx& ctx) {
    return Value::ofRef(ctx.vm.newStringObject(&ctx.thread, payload(ctx)->buf));
  });
}

void defineCollections(ClassLoader* sys) {
  {
    ClassBuilder cb("java/util/ArrayList");
    cb.nativeMethod("<init>", "()V");
    cb.nativeMethod("add", "(Ljava/lang/Object;)I");
    cb.nativeMethod("get", "(I)Ljava/lang/Object;");
    cb.nativeMethod("set", "(ILjava/lang/Object;)Ljava/lang/Object;");
    cb.nativeMethod("size", "()I");
    cb.nativeMethod("clear", "()V");
    cb.nativeMethod("removeLast", "()Ljava/lang/Object;");
    JClass* cls = sys->define(cb.build());
    cls->native_factory = [] { return std::make_unique<ListPayload>(); };

    auto payload = [](NativeCtx& ctx) -> ListPayload* {
      return static_cast<ListPayload*>(self(ctx)->native());
    };
    bindNative(cls, "<init>", "()V", [](NativeCtx&) { return Value(); });
    bindNative(cls, "add", "(Ljava/lang/Object;)I", [payload](NativeCtx& ctx) {
      payload(ctx)->items.push_back(ctx.args.at(1));
      return Value::ofInt(1);
    });
    bindNative(cls, "get", "(I)Ljava/lang/Object;", [payload](NativeCtx& ctx) {
      ListPayload* p = payload(ctx);
      i32 idx = ctx.args.at(1).asInt();
      if (idx < 0 || static_cast<size_t>(idx) >= p->items.size()) {
        ctx.throwGuest("java/lang/ArrayIndexOutOfBoundsException", strf("%d", idx));
        return Value();
      }
      return p->items[static_cast<size_t>(idx)];
    });
    bindNative(cls, "set", "(ILjava/lang/Object;)Ljava/lang/Object;",
               [payload](NativeCtx& ctx) {
                 ListPayload* p = payload(ctx);
                 i32 idx = ctx.args.at(1).asInt();
                 if (idx < 0 || static_cast<size_t>(idx) >= p->items.size()) {
                   ctx.throwGuest("java/lang/ArrayIndexOutOfBoundsException",
                                  strf("%d", idx));
                   return Value();
                 }
                 Value old = p->items[static_cast<size_t>(idx)];
                 p->items[static_cast<size_t>(idx)] = ctx.args.at(2);
                 return old;
               });
    bindNative(cls, "size", "()I", [payload](NativeCtx& ctx) {
      return Value::ofInt(static_cast<i32>(payload(ctx)->items.size()));
    });
    bindNative(cls, "clear", "()V", [payload](NativeCtx& ctx) {
      payload(ctx)->items.clear();
      return Value();
    });
    bindNative(cls, "removeLast", "()Ljava/lang/Object;", [payload](NativeCtx& ctx) {
      ListPayload* p = payload(ctx);
      if (p->items.empty()) {
        ctx.throwGuest("java/lang/IllegalStateException", "empty list");
        return Value();
      }
      Value v = p->items.back();
      p->items.pop_back();
      return v;
    });
  }

  {
    ClassBuilder cb("java/util/HashMap");
    cb.nativeMethod("<init>", "()V");
    cb.nativeMethod("put", "(Ljava/lang/String;Ljava/lang/Object;)Ljava/lang/Object;");
    cb.nativeMethod("get", "(Ljava/lang/String;)Ljava/lang/Object;");
    cb.nativeMethod("containsKey", "(Ljava/lang/String;)I");
    cb.nativeMethod("remove", "(Ljava/lang/String;)Ljava/lang/Object;");
    cb.nativeMethod("size", "()I");
    JClass* cls = sys->define(cb.build());
    cls->native_factory = [] { return std::make_unique<MapPayload>(); };

    auto payload = [](NativeCtx& ctx) -> MapPayload* {
      return static_cast<MapPayload*>(self(ctx)->native());
    };
    bindNative(cls, "<init>", "()V", [](NativeCtx&) { return Value(); });
    bindNative(cls, "put", "(Ljava/lang/String;Ljava/lang/Object;)Ljava/lang/Object;",
               [payload](NativeCtx& ctx) {
                 std::string key = argStr(ctx, 1);
                 if (ctx.hasPending()) return Value();
                 MapPayload* p = payload(ctx);
                 Value old;
                 if (auto it = p->map.find(key); it != p->map.end()) old = it->second;
                 p->map[key] = ctx.args.at(2);
                 return old;
               });
    bindNative(cls, "get", "(Ljava/lang/String;)Ljava/lang/Object;",
               [payload](NativeCtx& ctx) {
                 std::string key = argStr(ctx, 1);
                 if (ctx.hasPending()) return Value();
                 MapPayload* p = payload(ctx);
                 auto it = p->map.find(key);
                 return it == p->map.end() ? Value::nullRef() : it->second;
               });
    bindNative(cls, "containsKey", "(Ljava/lang/String;)I", [payload](NativeCtx& ctx) {
      std::string key = argStr(ctx, 1);
      if (ctx.hasPending()) return Value();
      return Value::ofInt(payload(ctx)->map.count(key) != 0 ? 1 : 0);
    });
    bindNative(cls, "remove", "(Ljava/lang/String;)Ljava/lang/Object;",
               [payload](NativeCtx& ctx) {
                 std::string key = argStr(ctx, 1);
                 if (ctx.hasPending()) return Value();
                 MapPayload* p = payload(ctx);
                 auto it = p->map.find(key);
                 if (it == p->map.end()) return Value::nullRef();
                 Value old = it->second;
                 p->map.erase(it);
                 return old;
               });
    bindNative(cls, "size", "()I", [payload](NativeCtx& ctx) {
      return Value::ofInt(static_cast<i32>(payload(ctx)->map.size()));
    });
  }
}

void defineConnection(ClassLoader* sys) {
  // The instrumented connection class: every read/write charges the
  // *current* isolate (JRes-style accounting, paper section 3.2).
  ClassBuilder cb("java/io/Connection");
  cb.nativeMethod("<init>", "()V");
  cb.nativeMethod("open", "(Ljava/lang/String;)Ljava/io/Connection;", ACC_STATIC);
  cb.nativeMethod("write", "(I)V");
  cb.nativeMethod("writeString", "(Ljava/lang/String;)V");
  cb.nativeMethod("read", "()I");
  cb.nativeMethod("readString", "(I)Ljava/lang/String;");
  cb.nativeMethod("available", "()I");
  cb.nativeMethod("close", "()V");
  JClass* cls = sys->define(cb.build());
  cls->native_factory = [] { return std::make_unique<ConnectionPayload>(); };

  auto payload = [](NativeCtx& ctx) -> ConnectionPayload* {
    return static_cast<ConnectionPayload*>(self(ctx)->native());
  };
  auto charge_write = [](NativeCtx& ctx, size_t n) {
    Isolate* iso = ctx.thread.current_isolate.load(std::memory_order_relaxed);
    iso->stats.io_bytes_written.fetch_add(n, std::memory_order_relaxed);
  };
  auto charge_read = [](NativeCtx& ctx, size_t n) {
    Isolate* iso = ctx.thread.current_isolate.load(std::memory_order_relaxed);
    iso->stats.io_bytes_read.fetch_add(n, std::memory_order_relaxed);
  };

  bindNative(cls, "<init>", "()V", [](NativeCtx&) { return Value(); });
  bindNative(cls, "open", "(Ljava/lang/String;)Ljava/io/Connection;",
             [cls](NativeCtx& ctx) {
               // Name is advisory (loopback connection); kept for API shape.
               return Value::ofRef(ctx.vm.allocObject(&ctx.thread, cls));
             });
  bindNative(cls, "write", "(I)V", [payload, charge_write](NativeCtx& ctx) {
    u8 b = static_cast<u8>(ctx.args.at(1).asInt());
    payload(ctx)->channel->write(&b, 1);
    charge_write(ctx, 1);
    return Value();
  });
  bindNative(cls, "writeString", "(Ljava/lang/String;)V",
             [payload, charge_write](NativeCtx& ctx) {
               std::string s = argStr(ctx, 1);
               if (ctx.hasPending()) return Value();
               payload(ctx)->channel->write(s);
               charge_write(ctx, s.size());
               return Value();
             });
  bindNative(cls, "read", "()I", [payload, charge_read](NativeCtx& ctx) {
    u8 b = 0;
    size_t got;
    {
      BlockedScope blocked(ctx.vm.safepoints(), &ctx.thread);
      got = payload(ctx)->channel->read(&b, 1, &ctx.thread.interrupted);
    }
    if (got == SIZE_MAX) {
      ctx.thread.interrupted.store(false, std::memory_order_release);
      ctx.throwGuest("java/lang/InterruptedException", "read interrupted");
      return Value();
    }
    if (got == 0) return Value::ofInt(-1);
    charge_read(ctx, 1);
    return Value::ofInt(b);
  });
  bindNative(cls, "readString", "(I)Ljava/lang/String;",
             [payload, charge_read](NativeCtx& ctx) {
               i32 n = ctx.args.at(1).asInt();
               if (n < 0) {
                 ctx.throwGuest("java/lang/IllegalArgumentException", strf("%d", n));
                 return Value();
               }
               std::string out;
               bool ok;
               {
                 BlockedScope blocked(ctx.vm.safepoints(), &ctx.thread);
                 ok = payload(ctx)->channel->readFully(&out, static_cast<size_t>(n),
                                                       &ctx.thread.interrupted);
               }
               if (!ok) {
                 ctx.thread.interrupted.store(false, std::memory_order_release);
                 ctx.throwGuest("java/lang/InterruptedException", "read interrupted");
                 return Value();
               }
               charge_read(ctx, out.size());
               return Value::ofRef(ctx.vm.newStringObject(&ctx.thread, out));
             });
  bindNative(cls, "available", "()I", [payload](NativeCtx& ctx) {
    return Value::ofInt(static_cast<i32>(payload(ctx)->channel->pendingBytes()));
  });
  bindNative(cls, "close", "()V", [payload](NativeCtx& ctx) {
    ConnectionPayload* p = payload(ctx);
    p->channel->close();
    p->closed = true;
    return Value();
  });
}

}  // namespace

std::string argString(NativeCtx& ctx, size_t index) { return argStr(ctx, index); }

std::shared_ptr<ChannelHub> channelHub(VM& vm) {
  return std::static_pointer_cast<ChannelHub>(vm.getExtension(kHubKey));
}

void installSystemLibrary(VM& vm) {
  IJVM_CHECK(vm.getExtension(kHubKey) == nullptr,
             "installSystemLibrary called twice");
  vm.setExtension(kHubKey, std::make_shared<ChannelHub>());

  ClassLoader* sys = vm.registry().systemLoader();
  defineObject(sys);
  defineClassClass(sys);
  defineString(sys);
  defineThrowables(sys);
  defineRunnableAndThread(sys);
  defineSystemAndMath(sys);
  defineStringBuilder(sys);
  defineCollections(sys);
  defineConnection(sys);
  defineExtraClasses(sys);
}

}  // namespace ijvm
