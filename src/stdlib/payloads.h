// Native payloads backing system-library classes.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "heap/object.h"
#include "stdlib/channels.h"

namespace ijvm {

// java/lang/StringBuilder
class SbPayload : public NativePayload {
 public:
  std::string buf;
  size_t byteSize() const override { return buf.capacity(); }
};

// java/util/ArrayList (elements are guest values; refs are traced)
class ListPayload : public NativePayload {
 public:
  std::vector<Value> items;
  void trace(const std::function<void(Object*)>& visit) override {
    for (Value& v : items) {
      if (v.kind == Kind::Ref && v.ref != nullptr) visit(v.ref);
    }
  }
  size_t byteSize() const override { return items.capacity() * sizeof(Value); }
};

// java/util/HashMap (string keys -> guest values)
class MapPayload : public NativePayload {
 public:
  std::unordered_map<std::string, Value> map;
  void trace(const std::function<void(Object*)>& visit) override {
    for (auto& [_, v] : map) {
      if (v.kind == Kind::Ref && v.ref != nullptr) visit(v.ref);
    }
  }
  size_t byteSize() const override {
    size_t n = 0;
    for (auto& [k, _] : map) n += k.size() + sizeof(Value) + 32;
    return n;
  }
};

// java/util/LinkedList (deque of guest values; refs are traced)
class DequePayload : public NativePayload {
 public:
  std::deque<Value> items;
  void trace(const std::function<void(Object*)>& visit) override {
    for (Value& v : items) {
      if (v.kind == Kind::Ref && v.ref != nullptr) visit(v.ref);
    }
  }
  size_t byteSize() const override { return items.size() * sizeof(Value); }
};

// java/util/Random (deterministic splitmix64 stream)
class RandomPayload : public NativePayload {
 public:
  u64 state = 0x9e3779b97f4a7c15ull;
  u64 next() {
    state += 0x9e3779b97f4a7c15ull;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  size_t byteSize() const override { return sizeof(u64); }
};

// java/io/Connection: counted as a connection by the GC accounting pass.
class ConnectionPayload : public NativePayload {
 public:
  ConnectionPayload() : channel(ByteChannel::loopback()) {}
  std::shared_ptr<ByteChannel> channel;
  bool closed = false;
  bool isConnection() const override { return !closed; }
  size_t byteSize() const override { return channel ? channel->pendingBytes() : 0; }
};

}  // namespace ijvm
