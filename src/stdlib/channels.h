// In-memory byte channels: the transport substrate for guest I/O
// (FileDescriptor/Socket equivalents) and for the RMI-style communication
// baseline of Table 1.
//
// The paper's I/O accounting (section 3.2, following JRes) instruments the
// few classes that read/write connections; here those are the natives of
// java/io/Connection, which charge bytes to the current isolate.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/common.h"

namespace ijvm {

// One direction of a duplex pipe.
class ByteQueue {
 public:
  void push(const u8* data, size_t n);
  // Vectored push: appends every part under ONE lock acquisition and one
  // wakeup -- the per-message lock/notify cost amortizes across the batch
  // (docs/comm.md, "Batched sends"). Readers cannot observe a partial
  // batch boundary they could not also observe with per-part pushes.
  void pushv(const std::string* parts, size_t count);
  // Blocking read of up to n bytes; returns 0 on closed-and-empty, or
  // SIZE_MAX when cancelled. `cancel` may be null.
  size_t pop(u8* out, size_t n, const std::atomic<bool>* cancel);
  void close();
  size_t size() const;

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<u8> bytes_;
  bool closed_ = false;
};

// A duplex endpoint. Created in cross-connected pairs (like socketpair) or
// as a loopback (writes readable from the same endpoint).
class ByteChannel {
 public:
  static std::pair<std::shared_ptr<ByteChannel>, std::shared_ptr<ByteChannel>> pair();
  static std::shared_ptr<ByteChannel> loopback();

  size_t write(const u8* data, size_t n);
  size_t write(const std::string& s) {
    return write(reinterpret_cast<const u8*>(s.data()), s.size());
  }
  // Vectored send of `count` framed messages in one queue push (one lock,
  // one wakeup, one trace event). Returns the total bytes written.
  size_t writev(const std::string* parts, size_t count);
  // Blocking; semantics as ByteQueue::pop.
  size_t read(u8* out, size_t n, const std::atomic<bool>* cancel = nullptr);
  // Reads exactly n bytes or fails (closed/cancelled).
  bool readFully(std::string* out, size_t n, const std::atomic<bool>* cancel = nullptr);
  void close();
  size_t pendingBytes() const { return in_->size(); }

 private:
  ByteChannel(std::shared_ptr<ByteQueue> in, std::shared_ptr<ByteQueue> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  std::shared_ptr<ByteQueue> in_;
  std::shared_ptr<ByteQueue> out_;
};

// Named rendezvous for channel pairs ("localhost ports").
class ChannelHub {
 public:
  // Connects to `name`: creates a pair, queues the server end for accept().
  std::shared_ptr<ByteChannel> connect(const std::string& name);
  // Blocking accept of the next queued connection to `name`; nullptr when
  // cancelled.
  std::shared_ptr<ByteChannel> accept(const std::string& name,
                                      const std::atomic<bool>* cancel = nullptr);

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::deque<std::shared_ptr<ByteChannel>>> pending_;
};

}  // namespace ijvm
