// Internal wiring between the system-library translation units.
#pragma once

namespace ijvm {

class ClassLoader;

// Defines the extended library classes (LinkedList, Random, Arrays,
// Integer, Long, String second-tier methods). Called by
// installSystemLibrary after the core classes exist.
void defineExtraClasses(ClassLoader* sys);

}  // namespace ijvm
