// The guest "Java System Library".
//
// Defines the core classes every bundle links against -- java/lang/Object,
// String, Class, Thread, Throwable hierarchy (including the termination
// exception StoppedIsolateException), StringBuilder, collections, Math,
// System and the instrumented connection class java/io/Connection -- in the
// VM's *system loader*. System-library code executes in the caller's isolate
// and its resource usage is charged to the caller (paper sections 3.1/3.2).
#pragma once

#include <memory>

#include "runtime/vm.h"
#include "stdlib/channels.h"

namespace ijvm {

// Installs the whole library. Must be called exactly once per VM, before
// any isolate is created. Also registers the VM-wide ChannelHub extension
// ("channels") used by guest connections and the comm module.
void installSystemLibrary(VM& vm);

// The hub installed by installSystemLibrary.
std::shared_ptr<ChannelHub> channelHub(VM& vm);

// Convenience for natives/tests: reads a guest string argument, raising
// NullPointerException on null. Returns empty string on error (check
// ctx.hasPending()).
std::string argString(NativeCtx& ctx, size_t index);

}  // namespace ijvm
