#include "obs/report.h"

#include "exec/code_cache.h"
#include "exec/compile_manager.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/mutator_pool.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::obs {

namespace {

const char* stateName(IsolateState s) {
  switch (s) {
    case IsolateState::Active: return "active";
    case IsolateState::Terminating: return "terminating";
    case IsolateState::Dead: return "dead";
  }
  return "?";
}

}  // namespace

std::string humanBytes(u64 bytes) {
  if (bytes < 1024) return strf("%llu B", static_cast<unsigned long long>(bytes));
  const char* units[] = {"KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes) / 1024.0;
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return strf("%.1f %s", v, units[u]);
}

std::string humanNs(u64 ns) {
  if (ns < 1000) return strf("%llu ns", static_cast<unsigned long long>(ns));
  if (ns < 1000 * 1000) return strf("%.1f us", static_cast<double>(ns) / 1e3);
  if (ns < 1000ull * 1000 * 1000) {
    return strf("%.1f ms", static_cast<double>(ns) / 1e6);
  }
  return strf("%.2f s", static_cast<double>(ns) / 1e9);
}

std::string isolateTable(const std::vector<IsolateReport>& reports) {
  std::string out;
  // "prof-smpls" is the safepoint-biased sampling profiler's leaf count
  // (obs/profiler.h); "cpu-smpls" stays the legacy wall-clock sampler.
  // "donated in/out" are the PR-8 ownership-transfer totals -- bytes whose
  // memory charge moved between bundles via transferGraph.
  out += strf("  %3s  %-18s %-11s %10s %10s %10s %10s %12s %8s %9s %10s %10s\n",
              "id", "isolate", "state", "charged", "cpu-smpls", "prof-smpls",
              "allocs", "alloc-bytes", "threads", "calls-in", "donated-in",
              "donated-out");
  for (const IsolateReport& r : reports) {
    out += strf(
        "  %3d  %-18s %-11s %10s %10llu %10llu %10llu %12s %8lld %9llu %10s "
        "%10s\n",
        r.id, r.name.c_str(), stateName(r.state),
        humanBytes(r.bytes_charged).c_str(),
        static_cast<unsigned long long>(r.cpu_samples),
        static_cast<unsigned long long>(r.cpu_profile_samples),
        static_cast<unsigned long long>(r.objects_allocated),
        humanBytes(r.bytes_allocated).c_str(),
        static_cast<long long>(r.live_threads),
        static_cast<unsigned long long>(r.calls_in),
        humanBytes(r.bytes_donated_in).c_str(),
        humanBytes(r.bytes_donated_out).c_str());
  }
  return out;
}

std::string jitTable(const std::vector<IsolateReport>& reports) {
  std::string out;
  out += strf("  %3s  %-18s %9s %9s %11s %12s %11s %10s\n", "id", "isolate",
              "compiled", "demoted", "code-bytes", "osr-refused", "recompiles",
              "payoff-dem");
  for (const IsolateReport& r : reports) {
    out += strf("  %3d  %-18s %9llu %9llu %11s %12llu %11llu %10llu\n", r.id,
                r.name.c_str(),
                static_cast<unsigned long long>(r.jit_methods_compiled),
                static_cast<unsigned long long>(r.jit_methods_demoted),
                humanBytes(r.jit_code_bytes > 0
                               ? static_cast<u64>(r.jit_code_bytes)
                               : 0)
                    .c_str(),
                static_cast<unsigned long long>(r.osr_refused_transfers),
                static_cast<unsigned long long>(r.jit_recompile_requests),
                static_cast<unsigned long long>(r.jit_payoff_demotions));
  }
  return out;
}

std::string codeCacheSection(VM& vm) {
  const exec::CodeCacheStats cc = exec::codeCacheStats(vm);
  const u32 queue = exec::compileQueueDepth(vm);
  std::string out;
  out += strf("  installed: %u methods, %s (budget %s); retired awaiting "
              "sweep: %s\n",
              cc.installed_methods, humanBytes(cc.installed_bytes).c_str(),
              vm.options().code_cache_budget == 0
                  ? "unlimited"
                  : humanBytes(vm.options().code_cache_budget).c_str(),
              humanBytes(cc.retired_bytes).c_str());
  out += strf("  compiles: %llu (%llu background), demotions: %llu, deopt "
              "invalidations: %llu, reclaimed: %llu\n",
              static_cast<unsigned long long>(cc.compiles),
              static_cast<unsigned long long>(cc.background_compiles),
              static_cast<unsigned long long>(cc.demotions),
              static_cast<unsigned long long>(cc.deopt_invalidations),
              static_cast<unsigned long long>(cc.reclaimed));
  out += strf("  compile queue depth: %u (pending + building + awaiting "
              "install)\n",
              queue);
  return out;
}

std::string latencySection() {
  std::string out;
  for (u8 i = 0; i < static_cast<u8>(Lat::Count); ++i) {
    const Lat l = static_cast<Lat>(i);
    const HistSnapshot s = latencySnapshot(l);
    if (s.count == 0) continue;
    if (out.empty()) {
      out += strf("  %-28s %8s %10s %10s %10s %10s\n", "path", "samples",
                  "p50", "p90", "p99", "max");
    }
    // ReclaimEraLag counts *eras* and DonatedBytes counts *bytes*, not
    // nanoseconds: a histogram fed in a different unit must not be
    // rendered through humanNs.
    auto fmt = [l](u64 v) {
      return l == Lat::ReclaimEraLag || l == Lat::DonatedBytes
                 ? strf("%llu", static_cast<unsigned long long>(v))
                 : humanNs(v);
    };
    out += strf("  %-28s %8llu %10s %10s %10s %10s\n", latName(l),
                static_cast<unsigned long long>(s.count),
                fmt(s.p50_ns).c_str(), fmt(s.p90_ns).c_str(),
                fmt(s.p99_ns).c_str(), fmt(s.max_ns).c_str());
  }
  return out;
}

std::string platformReport(VM& vm) {
  std::vector<IsolateReport> reports = vm.reportAll();
  std::string out;
  out += "=== I-JVM platform report ===\n";
  out += "resources (charges recomputed at GC; paper section 3.2):\n";
  out += isolateTable(reports);
  out += "jit code (per-isolate, charged to the defining bundle):\n";
  out += jitTable(reports);
  out += "code cache:\n";
  out += codeCacheSection(vm);
  if (MutatorPool* pool = vm.mutatorPoolIfStarted()) {
    out += "mutator pool:\n";
    out += strf("  workers: %zu, tasks completed: %llu, steals: %llu\n",
                pool->workerCount(),
                static_cast<unsigned long long>(pool->tasksCompleted()),
                static_cast<unsigned long long>(pool->steals()));
  }
  const std::string lat = latencySection();
  if (!lat.empty()) {
    out += "latency histograms (log-bucketed; values are bucket midpoints):\n";
    out += lat;
  }
  if (Profiler* prof = vm.profiler()) out += prof->attributionSection();
  return out;
}

}  // namespace ijvm::obs
