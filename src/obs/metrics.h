// Metrics registry and the line-oriented admin endpoint
// (docs/observability.md, "Metrics endpoint").
//
// The platform report (obs/report.h) is for humans; scrapers want stable
// machine-readable series. MetricsRegistry is a pull-model registry:
// callbacks are registered once (name, help, type) and evaluated at
// render time, so registration costs nothing on any hot path and the
// exposition is always a point-in-time snapshot. renderPrometheus()
// writes the text exposition format:
//
//   # HELP ijvm_isolate_cpu_share CPU share over the last profiler window
//   # TYPE ijvm_isolate_cpu_share gauge
//   ijvm_isolate_cpu_share{isolate="app-a"} 0.75
//
// AdminServer serves it over a localhost TCP socket with a one-verb-per-
// line protocol (tools/ijvm_admin is the matching client):
//
//   metrics  -> Prometheus exposition
//   profile  -> collapsed stacks (flamegraph.pl format)
//   report   -> the human platform report
//   ping     -> "pong"
//
// Every response ends with a line containing a single "." so clients can
// frame multi-line payloads without length headers. One request thread
// serves connections sequentially: this is an admin port for one
// operator/scraper, not a web server.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/common.h"

namespace ijvm {
class VM;
}

namespace ijvm::obs {

enum class MetricType : u8 { Counter, Gauge };

// One rendered sample of a metric: optional label set (already in
// `key="value"` form, comma-separated, no braces) and the value.
struct MetricSample {
  std::string labels;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  using Collect = std::function<void(std::vector<MetricSample>*)>;

  // Registers one metric family. `name` must be a valid Prometheus metric
  // name (the registry does not rewrite it); `collect` is called at every
  // render and appends one sample per label set.
  void add(const std::string& name, const std::string& help, MetricType type,
           Collect collect);

  // Text exposition of every registered family, families in registration
  // order (deterministic output for golden tests).
  std::string renderPrometheus() const;

 private:
  struct Family {
    std::string name;
    std::string help;
    MetricType type;
    Collect collect;
  };
  std::vector<Family> families_;
};

// Registers the standard VM families on `reg`: per-isolate resource
// counters (memory, CPU, donation traffic), compiled-code footprint,
// profiler attribution, platform latency percentiles. The callbacks
// capture `vm` -- the registry must not outlive it.
void registerVmMetrics(MetricsRegistry* reg, VM& vm);

// Escapes a string for use inside a Prometheus label value.
std::string promEscape(const std::string& s);

// The admin endpoint. Binds 127.0.0.1:`port` (0 = ephemeral; read the
// chosen port back with port()) and serves the verb protocol above until
// destruction. Construction never throws: ok() reports bind failure.
class AdminServer {
 public:
  explicit AdminServer(VM& vm, u16 port = 0);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  bool ok() const;
  u16 port() const;

  MetricsRegistry& registry();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ijvm::obs
