// One steady-clock epoch for the whole obs layer.
//
// The trace rings, the latency histograms and the sampling profiler all
// timestamp in "nanoseconds since epoch"; span<->sample correlation (a
// profiler sample landing inside a GC pause span, a counter track lining
// up with a compile span in Perfetto) only works when every subsystem
// measures from the *same* epoch. trace.cpp used to keep a private t0
// that resetTrace() re-based, which silently broke that comparability;
// the epoch now lives here, is latched on first use, and is never
// re-based for the life of the process.
#pragma once

#include "support/common.h"

namespace ijvm::obs {

// Monotonic nanoseconds since the process-wide obs epoch (latched the
// first time any obs subsystem reads the clock). Safe from any thread.
u64 monoNowNs();

}  // namespace ijvm::obs
