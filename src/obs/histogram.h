// Log-bucketed latency histograms (docs/observability.md).
//
// The pause-critical paths of the platform -- safepoint time-to-stop, GC
// pause, compile latency, inter-isolate communication -- span five orders
// of magnitude (tens of ns to tens of ms), so a fixed-width histogram is
// useless and a reservoir sample needs locking. A power-of-two bucketed
// histogram costs one bit-scan plus one relaxed atomic increment per
// record, is wait-free for any number of concurrent recorders, and its
// percentile error is bounded by the bucket ratio (a factor of 2 -- fine
// for "did the p99 GC pause blow past a millisecond" questions; exact
// maxima are tracked separately).
#pragma once

#include <atomic>
#include <bit>

#include "support/common.h"

namespace ijvm::obs {

// Percentiles reconstructed from one histogram (nanoseconds). A percentile
// falls somewhere inside its bucket [2^i, 2^(i+1)); we report the bucket's
// geometric midpoint, so a reported value is within ~1.5x of the truth.
struct HistSnapshot {
  u64 count = 0;
  u64 sum_ns = 0;
  u64 p50_ns = 0;
  u64 p90_ns = 0;
  u64 p99_ns = 0;
  u64 max_ns = 0;

  double mean_ns() const {
    return count > 0 ? static_cast<double>(sum_ns) / static_cast<double>(count)
                     : 0.0;
  }
};

class LatencyHistogram {
 public:
  // Bucket i counts durations in [2^i, 2^(i+1)) ns; bucket 0 also takes 0.
  // 40 buckets reach ~18 minutes -- nothing the VM does takes longer.
  static constexpr int kBuckets = 40;

  void record(u64 ns) {
    const int b = bucketOf(ns);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    u64 seen = max_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
    }
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }

  // Concurrent-safe point-in-time readout. Racing recorders may make the
  // bucket sum lag `count_` by a few in-flight records; percentiles are
  // computed over the bucket sum so the snapshot is always self-consistent.
  HistSnapshot snapshot() const {
    u64 buckets[kBuckets];
    u64 total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      buckets[i] = buckets_[i].load(std::memory_order_relaxed);
      total += buckets[i];
    }
    HistSnapshot s;
    s.count = total;
    s.sum_ns = sum_.load(std::memory_order_relaxed);
    s.max_ns = max_.load(std::memory_order_relaxed);
    if (total == 0) return s;
    s.p50_ns = percentile(buckets, total, 50.0);
    s.p90_ns = percentile(buckets, total, 90.0);
    s.p99_ns = percentile(buckets, total, 99.0);
    return s;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  static int bucketOf(u64 ns) {
    if (ns == 0) return 0;
    const int b = 63 - std::countl_zero(ns);
    return b < kBuckets ? b : kBuckets - 1;
  }

  // Geometric midpoint of bucket b, the value snapshot() reports for a
  // percentile landing there (sqrt(2^b * 2^(b+1)) ~= 2^b * 1.41).
  static u64 bucketMid(int b) {
    const u64 lo = u64{1} << b;
    return lo + lo / 2;
  }

 private:
  static u64 percentile(const u64* buckets, u64 total, double pct) {
    const double want = static_cast<double>(total) * pct / 100.0;
    u64 seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (static_cast<double>(seen) >= want && buckets[i] > 0) {
        return bucketMid(i);
      }
    }
    return bucketMid(kBuckets - 1);
  }

  std::atomic<u64> buckets_[kBuckets] = {};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> max_{0};
};

}  // namespace ijvm::obs
