// Safepoint-aware sampling profiler with per-isolate CPU attribution
// (docs/observability.md, "Sampling profiler").
//
// The paper's resource-accounting story (section 3.2) charges CPU by
// sampling the isolate reference of running threads; that tells an
// administrator *who* is burning time but not *where* or *in which tier*.
// On this codebase the bytecode-side profile counters are systematically
// blind: tier-3 compiled code, OSR'd loops, GC, compile workers and
// channel pumps all burn wall-clock the counters never see. The profiler
// closes that gap with stack samples.
//
// Sampling discipline (the reason this needs no stop-the-world):
//   * a dedicated sampler thread ticks at VmOptions::profile_hz. It never
//     touches another thread's frames -- the frame deque is owner- or
//     world-stopped-only (runtime/jthread.h). Instead it *requests* a
//     sample: one relaxed store into the target thread's request counter,
//     at most one outstanding per thread;
//   * the target thread honors the request at its next safepoint poll
//     site (interpreter back-edge/entry, compiled-code poll, classic
//     loop) by walking its *own* frame chain -- always coherent for the
//     owner -- and publishing the sample into its own lock-free ring.
//     A thread mid-unsafe-region simply samples a few microseconds late
//     (the classic safepoint bias, documented in docs/observability.md);
//   * threads parked in blocking natives are Blocked and are not
//     requested -- wait time is not CPU time;
//   * host threads without guest frames (compile workers, the GC bracket,
//     channel pumps) publish an *activity slot* (kind, isolate, label)
//     the sampler reads directly -- plain atomics, no frames involved.
//
// Rings are seqlock slot rings exactly like the trace's (obs/trace.h):
// single owner-writer, any number of snapshot readers, wrap keeps the
// newest. Aggregation (folded stacks, the CPU-attribution report table,
// per-isolate share counters) happens entirely on the reader side.
//
// Everything compiles out under -DIJVM_DISABLE_PROFILER: the Profiler
// becomes an inert stub, the poll-site check macro expands to nothing,
// and the exporters return empty (but well-formed) output.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace ijvm {
class VM;
class JThread;
}  // namespace ijvm

namespace ijvm::obs {

// Execution tier a sampled frame was running in. Values mirror
// Frame::tier (runtime/jthread.h), which the engines stamp on entry and
// at tier transitions (OSR, deopt).
enum class SampleTier : u8 {
  Unknown = 0,
  Classic,    // original single-switch interpreter
  Quickened,  // direct-threaded quickened stream
  Fused,      // superinstruction tier
  Jit,        // tier-3 call-threaded compiled code, entered at method entry
  Osr,        // tier-3 entered mid-invocation via on-stack replacement
  Count,
};

// What kind of thread a sample came from.
enum class SampleThreadKind : u8 {
  Mutator = 0,  // guest thread / pool worker walking real frames
  Compiler,     // compile-manager worker building code
  Gc,           // the thread driving a stop-the-world collection
  Pump,         // channel pump / comm shuttle threads
  Other,
  Count,
};

const char* tierName(SampleTier t);
// Short suffix used in folded-stack frames ("@jit", "@fused", ...).
const char* tierTag(SampleTier t);
const char* threadKindName(SampleThreadKind k);

// One decoded sample (reader-side representation).
struct ProfileSample {
  u64 ts_ns = 0;     // obs/clock.h epoch, comparable with trace spans
  i32 isolate = -1;  // isolate of the leaf frame; -1 = platform-wide
  SampleThreadKind kind = SampleThreadKind::Mutator;
  bool truncated = false;  // stack deeper than the slot, middle dropped
  // Root-first frames: interned name ids (profileNameOf) + tiers.
  std::vector<u32> name_ids;
  std::vector<SampleTier> tiers;
};

#ifndef IJVM_DISABLE_PROFILER

// Interns a frame/activity name. Unlike the trace interner this table is
// never reset: ids are cached on JMethod records that outlive any
// profiler reset, so a reset must not dangle them. Lock-taking -- cold
// paths only (first sample of a method, activity registration).
u32 profileNameId(const std::string& name);
std::string profileNameOf(u32 id);

// The per-VM sampling profiler. Owned by the VM (VM::profiler()); the
// sampler thread runs only between start(hz) and stop(), but manual
// driving via tickOnce() works with no thread at all (tests, benches).
class Profiler {
 public:
  explicit Profiler(VM& vm);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Spawns the sampler thread at `hz` samples/sec (no-op if hz == 0 or
  // already started). stop() joins; safe to call repeatedly.
  void start(u32 hz);
  void stop();

  // Runtime gate shared by the thread and manual ticking: when disabled,
  // ticks do nothing and poll sites never see a request (benches measure
  // on-vs-off against exactly this switch).
  void setEnabled(bool on);
  bool enabled() const;

  // One sampling pass: request a self-sample from every Running guest
  // thread, sample active host-activity slots directly, roll the
  // CPU-share window every kWindowTicks ticks. Called by the sampler
  // thread each period; tests call it manually for determinism.
  void tickOnce();

  // Ring capacity (slots) for rings created after the call; tests shrink
  // it to force wrap.
  void setRingCapacity(u32 slots);

  // ---- aggregated attribution ----
  u64 totalSamples() const;
  u64 isolateSamples(i32 id) const;
  // CPU share over the last closed window (0..1); falls back to the
  // cumulative share before the first window closes. The same series the
  // governor's Signal::CpuShare consumes (via IsolateReport deltas) and
  // the window roll exports as Perfetto counter tracks.
  double cpuShare(i32 id) const;

  // All currently-readable samples, merged across rings (ts order).
  std::vector<ProfileSample> snapshot();

  // Collapsed-stack text, flamegraph.pl-compatible:
  //   <isolate>;<kind>;pkg/Cls.m(desc)@tier;... <count>\n
  std::string dumpFoldedStacks();

  // The "CPU attribution" table for obs::platformReport: per-isolate
  // %time + sample counts, tier mix, top-5 hot leaf methods.
  std::string attributionSection();

  // Forgets samples and counters. Rings of live threads are retired (not
  // freed), exactly like resetTrace; interned names survive.
  void reset();

  // Owner-thread slow path behind IJVM_PROFILE_POLL: acknowledges the
  // pending request and publishes a sample of the calling thread's own
  // frame chain. Must only be called by `t`'s owner at a poll site.
  void selfSample(JThread* t);

  // Activity-slot registration (host threads without guest frames); used
  // via ProfileActivityScope. Returns a slot index or -1 when full.
  int activityBegin(SampleThreadKind kind, i32 isolate, const char* what);
  void activityEnd(int slot);

  // Ticks between CPU-share window rolls (exposed for tests).
  static constexpr u32 kWindowTicks = 32;

  // Public so the translation unit's free helpers (ring publication and
  // readers) can name it; the definition stays in profiler.cpp.
  struct Impl;

 private:
  Impl* impl_;  // raw: selfSample may run on guest threads until ~VM joins
};

// RAII activity bracket for host threads the frame walk cannot see:
//   ProfileActivityScope act(vm, SampleThreadKind::Compiler, iso_id,
//                            "compile pkg/Cls.m");
// Samples taken while the scope is open are attributed to (kind,
// isolate) with the label as their single frame.
class ProfileActivityScope {
 public:
  ProfileActivityScope(VM& vm, SampleThreadKind kind, i32 isolate,
                       const char* what);
  ~ProfileActivityScope();
  ProfileActivityScope(const ProfileActivityScope&) = delete;
  ProfileActivityScope& operator=(const ProfileActivityScope&) = delete;

 private:
  Profiler* profiler_ = nullptr;
  int slot_ = -1;
};

// Poll-site check: one relaxed load of the calling thread's own request
// counter (adjacent to the fields every poll already touches); the slow
// path runs only while a sampler tick is in flight for this thread.
// `vmref` must be the thread's VM.
#define IJVM_PROFILE_POLL(vmref, tptr)                                        \
  do {                                                                        \
    if ((tptr)->profile_requests.load(std::memory_order_relaxed) !=           \
        (tptr)->profile_taken.load(std::memory_order_relaxed)) {              \
      if (::ijvm::obs::Profiler* ijvm_prof = (vmref).profiler()) {            \
        ijvm_prof->selfSample(tptr);                                          \
      }                                                                       \
    }                                                                         \
  } while (0)

#else  // IJVM_DISABLE_PROFILER

inline u32 profileNameId(const std::string&) { return 0; }
inline std::string profileNameOf(u32) { return {}; }

// Inert stub: the VM still owns one, every call is a no-op, exporters
// return empty-but-well-formed output.
class Profiler {
 public:
  explicit Profiler(VM&) {}
  void start(u32) {}
  void stop() {}
  void setEnabled(bool) {}
  bool enabled() const { return false; }
  void tickOnce() {}
  void setRingCapacity(u32) {}
  u64 totalSamples() const { return 0; }
  u64 isolateSamples(i32) const { return 0; }
  double cpuShare(i32) const { return 0.0; }
  std::vector<ProfileSample> snapshot() { return {}; }
  std::string dumpFoldedStacks() { return {}; }
  std::string attributionSection() { return {}; }
  void reset() {}
  void selfSample(JThread*) {}
  int activityBegin(SampleThreadKind, i32, const char*) { return -1; }
  void activityEnd(int) {}
  static constexpr u32 kWindowTicks = 32;
};

class ProfileActivityScope {
 public:
  ProfileActivityScope(VM&, SampleThreadKind, i32, const char*) {}
};

#define IJVM_PROFILE_POLL(vmref, tptr) \
  do {                                 \
  } while (0)

#endif  // IJVM_DISABLE_PROFILER

}  // namespace ijvm::obs
