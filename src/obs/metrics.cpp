// Metrics registry, Prometheus text exposition and the admin socket.
// Contract in metrics.h / docs/observability.md ("Metrics endpoint").
#include "obs/metrics.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>

#include "exec/compile_manager.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::obs {

// ---- registry ----------------------------------------------------------

void MetricsRegistry::add(const std::string& name, const std::string& help,
                          MetricType type, Collect collect) {
  families_.push_back(Family{name, help, type, std::move(collect)});
}

std::string promEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::renderPrometheus() const {
  std::string out;
  std::vector<MetricSample> samples;
  for (const Family& f : families_) {
    samples.clear();
    f.collect(&samples);
    out += strf("# HELP %s %s\n", f.name.c_str(), f.help.c_str());
    out += strf("# TYPE %s %s\n", f.name.c_str(),
                f.type == MetricType::Counter ? "counter" : "gauge");
    for (const MetricSample& s : samples) {
      if (s.labels.empty()) {
        out += strf("%s %.10g\n", f.name.c_str(), s.value);
      } else {
        out += strf("%s{%s} %.10g\n", f.name.c_str(), s.labels.c_str(),
                    s.value);
      }
    }
  }
  return out;
}

// ---- standard VM families ----------------------------------------------

namespace {

std::string isoLabel(const Isolate* iso) {
  return strf("isolate=\"%s\"", promEscape(iso->name).c_str());
}

// One sample per isolate, value read from a ResourceStats atomic.
void perIsolate(MetricsRegistry* reg, VM& vm, const std::string& name,
                const std::string& help, MetricType type,
                std::function<double(const Isolate&)> read) {
  reg->add(name, help, type,
           [&vm, read = std::move(read)](std::vector<MetricSample>* out) {
             for (Isolate* iso : vm.isolates()) {
               out->push_back(MetricSample{isoLabel(iso), read(*iso)});
             }
           });
}

double rl(const std::atomic<u64>& v) {
  return static_cast<double>(v.load(std::memory_order_relaxed));
}
double rl(const std::atomic<i64>& v) {
  return static_cast<double>(v.load(std::memory_order_relaxed));
}

}  // namespace

void registerVmMetrics(MetricsRegistry* reg, VM& vm) {
  perIsolate(reg, vm, "ijvm_isolate_bytes_charged",
             "Reachability-charged heap bytes (recomputed each GC)",
             MetricType::Gauge,
             [](const Isolate& i) { return rl(i.stats.bytes_charged); });
  perIsolate(reg, vm, "ijvm_isolate_bytes_allocated_total",
             "Bytes allocated by the isolate", MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.bytes_allocated); });
  perIsolate(reg, vm, "ijvm_isolate_live_threads",
             "Live guest threads created by the isolate", MetricType::Gauge,
             [](const Isolate& i) { return rl(i.stats.live_threads); });
  perIsolate(reg, vm, "ijvm_isolate_cpu_samples_total",
             "Wall-clock sampler ticks attributed to the isolate",
             MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.cpu_samples); });
  perIsolate(reg, vm, "ijvm_isolate_cpu_profile_samples_total",
             "Stack samples the sampling profiler attributed to the isolate",
             MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.cpu_profile_samples); });
  reg->add("ijvm_isolate_cpu_share",
           "CPU share over the last profiler window (0..1)", MetricType::Gauge,
           [&vm](std::vector<MetricSample>* out) {
             Profiler* p = vm.profiler();
             if (p == nullptr) return;
             for (Isolate* iso : vm.isolates()) {
               out->push_back(MetricSample{isoLabel(iso), p->cpuShare(iso->id)});
             }
           });

  // Zero-copy donation traffic (docs/comm.md): the counters PR 8 added,
  // now scrapeable next to the memory charges they correct.
  perIsolate(reg, vm, "ijvm_isolate_donated_bytes_in_total",
             "Bytes whose ownership was received via transferGraph donation",
             MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.bytes_donated_in); });
  perIsolate(reg, vm, "ijvm_isolate_donated_bytes_out_total",
             "Bytes whose ownership was given away via transferGraph donation",
             MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.bytes_donated_out); });
  perIsolate(reg, vm, "ijvm_isolate_donated_objects_in_total",
             "Objects received via transferGraph donation", MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.objects_donated_in); });
  perIsolate(reg, vm, "ijvm_isolate_donated_objects_out_total",
             "Objects given away via transferGraph donation",
             MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.objects_donated_out); });
  perIsolate(reg, vm, "ijvm_isolate_donated_bytes_delta",
             "Signed held-bytes correction from donations since the last GC",
             MetricType::Gauge,
             [](const Isolate& i) { return rl(i.stats.donated_bytes_delta); });

  perIsolate(reg, vm, "ijvm_isolate_jit_code_bytes",
             "Resident tier-3 compiled-code bytes charged to the isolate",
             MetricType::Gauge,
             [](const Isolate& i) { return rl(i.stats.jit_code_bytes); });
  perIsolate(reg, vm, "ijvm_isolate_jit_methods_compiled_total",
             "Methods compiled to tier 3 for the isolate", MetricType::Counter,
             [](const Isolate& i) { return rl(i.stats.jit_methods_compiled); });

  reg->add("ijvm_profiler_samples_total",
           "Stack samples recorded by the sampling profiler",
           MetricType::Counter, [&vm](std::vector<MetricSample>* out) {
             Profiler* p = vm.profiler();
             out->push_back(MetricSample{
                 "", p != nullptr
                         ? static_cast<double>(p->totalSamples())
                         : 0.0});
           });
  reg->add("ijvm_compile_queue_depth",
           "Promote-to-JIT requests pending, building or awaiting install",
           MetricType::Gauge, [&vm](std::vector<MetricSample>* out) {
             out->push_back(MetricSample{
                 "", static_cast<double>(exec::compileQueueDepth(vm))});
           });
  reg->add("ijvm_gc_count_total", "Stop-the-world collections run",
           MetricType::Counter, [&vm](std::vector<MetricSample>* out) {
             out->push_back(
                 MetricSample{"", static_cast<double>(vm.gcCount())});
           });
  reg->add("ijvm_latency", "Latency percentiles per instrumented path "
           "(ns unless the site name says otherwise)",
           MetricType::Gauge, [](std::vector<MetricSample>* out) {
             for (u8 i = 0; i < static_cast<u8>(Lat::Count); ++i) {
               const Lat l = static_cast<Lat>(i);
               const HistSnapshot s = latencySnapshot(l);
               if (s.count == 0) continue;
               const std::string site = promEscape(latName(l));
               out->push_back(MetricSample{
                   strf("site=\"%s\",quantile=\"p50\"", site.c_str()),
                   static_cast<double>(s.p50_ns)});
               out->push_back(MetricSample{
                   strf("site=\"%s\",quantile=\"p99\"", site.c_str()),
                   static_cast<double>(s.p99_ns)});
             }
           });
}

// ---- admin server ------------------------------------------------------

struct AdminServer::Impl {
  VM& vm;
  MetricsRegistry registry;
  int listen_fd = -1;
  u16 bound_port = 0;
  std::atomic<bool> stop{false};
  std::thread server;

  explicit Impl(VM& vm_ref) : vm(vm_ref) {}

  void serve() {
    setTraceThreadName("admin");
    while (!stop.load(std::memory_order_acquire)) {
      sockaddr_in peer{};
      socklen_t len = sizeof(peer);
      const int fd =
          ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len);
      if (fd < 0) {
        if (stop.load(std::memory_order_acquire)) break;
        continue;  // transient accept failure
      }
      // A stuck client must not wedge the (single) server thread: bounded
      // reads, then re-check the stop flag.
      timeval tv{};
      tv.tv_usec = 200 * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      handleConnection(fd);
      ::close(fd);
    }
  }

  void handleConnection(int fd) {
    std::string buf;
    char chunk[512];
    while (!stop.load(std::memory_order_acquire)) {
      const size_t nl = buf.find('\n');
      if (nl == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
          buf.append(chunk, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        return;  // EOF or hard error
      }
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line == "quit") return;
      if (!respond(fd, line)) return;
    }
  }

  bool respond(int fd, const std::string& verb) {
    std::string payload;
    if (verb == "ping") {
      payload = "pong\n";
    } else if (verb == "metrics") {
      payload = registry.renderPrometheus();
    } else if (verb == "profile") {
      payload = vm.profiler()->dumpFoldedStacks();
    } else if (verb == "report") {
      payload = platformReport(vm);
    } else {
      payload = strf("error: unknown verb \"%s\" (try: ping, metrics, "
                     "profile, report, quit)\n",
                     verb.c_str());
    }
    if (!payload.empty() && payload.back() != '\n') payload += '\n';
    payload += ".\n";  // response terminator (clients frame on this)
    size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::send(fd, payload.data() + off, payload.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }
};

AdminServer::AdminServer(VM& vm, u16 port) : impl_(new Impl(vm)) {
  registerVmMetrics(&impl_->registry, vm);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // admin: localhost only
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 4) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return;
  }
  impl_->listen_fd = fd;
  impl_->bound_port = ntohs(addr.sin_port);
  impl_->server = std::thread([this] { impl_->serve(); });
}

AdminServer::~AdminServer() {
  impl_->stop.store(true, std::memory_order_release);
  if (impl_->listen_fd >= 0) {
    // shutdown() unblocks a thread parked in accept(); close() alone is
    // not guaranteed to on Linux.
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    ::close(impl_->listen_fd);
  }
  if (impl_->server.joinable()) impl_->server.join();
}

bool AdminServer::ok() const { return impl_->listen_fd >= 0; }

u16 AdminServer::port() const { return impl_->bound_port; }

MetricsRegistry& AdminServer::registry() { return impl_->registry; }

}  // namespace ijvm::obs
