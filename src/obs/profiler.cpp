// Sampling profiler: request/self-sample handshake, per-thread sample
// rings, CPU attribution and flame-graph export. Contract in profiler.h
// and docs/observability.md ("Sampling profiler").
#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/compile_manager.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::obs {

const char* tierName(SampleTier t) {
  switch (t) {
    case SampleTier::Unknown: return "unknown";
    case SampleTier::Classic: return "classic";
    case SampleTier::Quickened: return "quickened";
    case SampleTier::Fused: return "fused";
    case SampleTier::Jit: return "jit";
    case SampleTier::Osr: return "osr";
    case SampleTier::Count: break;
  }
  return "?";
}

const char* tierTag(SampleTier t) {
  switch (t) {
    case SampleTier::Unknown: return "";
    case SampleTier::Classic: return "@classic";
    case SampleTier::Quickened: return "@quick";
    case SampleTier::Fused: return "@fused";
    case SampleTier::Jit: return "@jit";
    case SampleTier::Osr: return "@osr";
    case SampleTier::Count: break;
  }
  return "";
}

const char* threadKindName(SampleThreadKind k) {
  switch (k) {
    case SampleThreadKind::Mutator: return "mutator";
    case SampleThreadKind::Compiler: return "compiler";
    case SampleThreadKind::Gc: return "gc";
    case SampleThreadKind::Pump: return "pump";
    case SampleThreadKind::Other: return "other";
    case SampleThreadKind::Count: break;
  }
  return "?";
}

#ifndef IJVM_DISABLE_PROFILER

// ---- never-reset name interner ----------------------------------------
//
// Process-wide (not per-Profiler): JMethod::profile_name_id caches ids on
// class-model records that several VMs in one process may share a build
// of, and nothing ever invalidates them. Append-only by construction.

namespace {

struct NameTable {
  std::mutex mu;
  std::unordered_map<std::string, u32> ids;
  std::deque<std::string> names;  // id -> string (id 0 = "")
};

NameTable& nameTable() {
  static NameTable* t = new NameTable();  // never destroyed: JMethod caches
  return *t;                              // ids past static teardown order
}

}  // namespace

u32 profileNameId(const std::string& name) {
  NameTable& t = nameTable();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  if (t.names.empty()) t.names.push_back("");  // id 0 = unnamed
  const u32 id = static_cast<u32>(t.names.size());
  t.names.push_back(name);
  t.ids.emplace(name, id);
  return id;
}

std::string profileNameOf(u32 id) {
  NameTable& t = nameTable();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id == 0 || id >= t.names.size()) return {};
  return t.names[id];
}

// ---- sample rings ------------------------------------------------------

namespace {

constexpr u32 kMaxDepth = 24;          // frames kept per sample
constexpr u32 kRootKeep = 8;           // root-side frames kept on overflow
constexpr u32 kDefaultRingSlots = 2048;
constexpr u32 kActivitySlots = 64;

// Isolate-id -> counter-slot mapping: ids 0..63 map directly, negative
// (platform work) and overflow ids share two catch-all buckets.
constexpr u32 kIsoSlots = 64;
constexpr u32 kPlatformSlot = kIsoSlots;      // isolate == -1
constexpr u32 kOverflowSlot = kIsoSlots + 1;  // isolate >= 64
constexpr u32 kCounterSlots = kIsoSlots + 2;

u32 slotFor(i32 isolate) {
  if (isolate < 0) return kPlatformSlot;
  if (static_cast<u32>(isolate) >= kIsoSlots) return kOverflowSlot;
  return static_cast<u32>(isolate);
}

// One seqlock sample slot; the publish protocol is the trace ring's
// (obs/trace.cpp Slot): invalidate, relaxed payload stores, release-store
// seq = write-index + 1. Readers reject a slot whose seq moved.
struct SampleSlot {
  std::atomic<u64> seq{0};
  std::atomic<u64> ts{0};
  std::atomic<i32> isolate{-1};
  std::atomic<u8> kind{0};
  std::atomic<u8> depth{0};
  std::atomic<u8> truncated{0};
  std::atomic<u32> names[kMaxDepth] = {};
  std::atomic<u8> tiers[kMaxDepth] = {};
};

// One thread's sample ring: single writer (the owning thread -- guest
// self-samples, or the tick driver for activity samples), any readers.
struct SampleRing {
  SampleRing(u32 tid_, u32 cap) : tid(tid_), slots(cap) {}
  const u32 tid;
  std::vector<SampleSlot> slots;
  std::atomic<u64> next{0};  // monotonic write count, owner-written
};

// Host-thread activity slot (compile workers, the GC bracket, pumps).
// Claimed with a CAS on `busy`, published/retired by bumping `seq` (odd =
// open); the sampler validates its field reads with a seq re-check.
struct ActivitySlot {
  std::atomic<bool> busy{false};
  std::atomic<u32> seq{0};
  std::atomic<i32> isolate{-1};
  std::atomic<u8> kind{0};
  std::atomic<u32> name{0};
};

// One decoded pending sample, before ring publication.
struct PendingSample {
  u64 ts = 0;
  i32 isolate = -1;
  SampleThreadKind kind = SampleThreadKind::Mutator;
  bool truncated = false;
  u32 depth = 0;
  u32 names[kMaxDepth];
  u8 tiers[kMaxDepth];
};

SampleTier tierOfFrame(const Frame& f) {
  return static_cast<SampleTier>(static_cast<u8>(f.tier));
}

}  // namespace

struct Profiler::Impl {
  explicit Impl(VM& vm_ref) : vm(vm_ref) {}

  VM& vm;
  const u64 instance = nextInstanceId();

  std::atomic<bool> enabled{true};

  // Sampler thread (start/stop); tick_mu serializes tickOnce so a test
  // driving manual ticks cannot interleave with a late thread tick.
  std::thread sampler;
  std::atomic<bool> stop_flag{false};
  std::mutex tick_mu;

  // Ring registry (mirrors obs/trace.cpp TraceState).
  std::mutex mu;
  std::deque<std::unique_ptr<SampleRing>> rings;
  std::deque<std::unique_ptr<SampleRing>> retired;  // kept alive after reset
  u32 next_tid = 1;
  u32 ring_slots = kDefaultRingSlots;
  std::atomic<u64> epoch{1};

  ActivitySlot activity[kActivitySlots];

  // Cumulative attribution counters.
  std::atomic<u64> total_samples{0};
  std::atomic<u64> iso_samples[kCounterSlots] = {};
  std::atomic<u64> kind_samples[static_cast<size_t>(SampleThreadKind::Count)] =
      {};

  // CPU-share window: every kWindowTicks ticks the roller diffs the
  // cumulative counters against window_prev and publishes per-mille
  // shares. tick-mutex-guarded writers, atomic per-mille for readers.
  u64 tick_count = 0;
  u64 window_prev[kCounterSlots] = {};
  std::atomic<u32> window_share_pm[kCounterSlots] = {};
  std::atomic<u64> window_total_delta{0};

  static u64 nextInstanceId() {
    static std::atomic<u64> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }
};

namespace {

// Thread-local ring cache keyed by (profiler instance, reset epoch) --
// instance ids, not pointers, so a Profiler reallocated at a dead one's
// address cannot inherit a stale ring.
struct TlRing {
  u64 instance = 0;
  u64 epoch = 0;
  SampleRing* ring = nullptr;
};
thread_local TlRing tl_ring;

SampleRing& ringOf(Profiler::Impl& s) {
  const u64 epoch = s.epoch.load(std::memory_order_acquire);
  if (tl_ring.ring == nullptr || tl_ring.instance != s.instance ||
      tl_ring.epoch != epoch) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.rings.push_back(std::make_unique<SampleRing>(s.next_tid++, s.ring_slots));
    tl_ring.ring = s.rings.back().get();
    tl_ring.instance = s.instance;
    tl_ring.epoch = s.epoch.load(std::memory_order_relaxed);
  }
  return *tl_ring.ring;
}

void publishSample(Profiler::Impl& s, const PendingSample& p) {
  SampleRing& r = ringOf(s);
  const u64 idx = r.next.load(std::memory_order_relaxed);
  SampleSlot& slot = r.slots[idx % r.slots.size()];
  slot.seq.store(0, std::memory_order_release);  // invalidate for readers
  slot.ts.store(p.ts, std::memory_order_relaxed);
  slot.isolate.store(p.isolate, std::memory_order_relaxed);
  slot.kind.store(static_cast<u8>(p.kind), std::memory_order_relaxed);
  slot.depth.store(static_cast<u8>(p.depth), std::memory_order_relaxed);
  slot.truncated.store(p.truncated ? 1 : 0, std::memory_order_relaxed);
  for (u32 i = 0; i < p.depth; ++i) {
    slot.names[i].store(p.names[i], std::memory_order_relaxed);
    slot.tiers[i].store(p.tiers[i], std::memory_order_relaxed);
  }
  slot.seq.store(idx + 1, std::memory_order_release);
  r.next.store(idx + 1, std::memory_order_release);

  s.total_samples.fetch_add(1, std::memory_order_relaxed);
  s.iso_samples[slotFor(p.isolate)].fetch_add(1, std::memory_order_relaxed);
  s.kind_samples[static_cast<size_t>(p.kind)].fetch_add(
      1, std::memory_order_relaxed);
}

void readRing(const SampleRing& r, std::vector<ProfileSample>* out) {
  for (const SampleSlot& slot : r.slots) {
    const u64 seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 == 0) continue;  // empty or mid-write
    ProfileSample p;
    p.ts_ns = slot.ts.load(std::memory_order_relaxed);
    p.isolate = slot.isolate.load(std::memory_order_relaxed);
    p.kind = static_cast<SampleThreadKind>(
        slot.kind.load(std::memory_order_relaxed));
    p.truncated = slot.truncated.load(std::memory_order_relaxed) != 0;
    u32 depth = slot.depth.load(std::memory_order_relaxed);
    depth = std::min(depth, kMaxDepth);
    p.name_ids.resize(depth);
    p.tiers.resize(depth);
    for (u32 i = 0; i < depth; ++i) {
      p.name_ids[i] = slot.names[i].load(std::memory_order_relaxed);
      u8 tier = slot.tiers[i].load(std::memory_order_relaxed);
      if (tier >= static_cast<u8>(SampleTier::Count)) tier = 0;
      p.tiers[i] = static_cast<SampleTier>(tier);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
    if (p.kind >= SampleThreadKind::Count) continue;
    out->push_back(std::move(p));
  }
}

u32 methodNameId(JMethod* m) {
  if (m == nullptr) return 0;
  u32 id = m->profile_name_id.load(std::memory_order_relaxed);
  if (id == 0) {
    id = profileNameId(m->fullName());
    m->profile_name_id.store(id, std::memory_order_relaxed);
  }
  return id;
}

// Folded-stack frames must not contain the format's separators.
std::string foldSanitize(std::string s) {
  for (char& c : s) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return s;
}

std::string isolateLabel(VM& vm, i32 id) {
  if (id < 0) return "platform";
  Isolate* iso = vm.isolateById(id);
  if (iso != nullptr && !iso->name.empty()) return foldSanitize(iso->name);
  return strf("isolate-%d", id);
}

}  // namespace


// ---- Profiler ----------------------------------------------------------

Profiler::Profiler(VM& vm) : impl_(new Impl(vm)) {}

Profiler::~Profiler() {
  stop();
  delete impl_;  // ~VM joined every guest thread before member teardown
}

void Profiler::start(u32 hz) {
  Impl& s = *impl_;
  if (hz == 0 || s.sampler.joinable()) return;
  s.stop_flag.store(false, std::memory_order_release);
  const auto period = std::chrono::nanoseconds(1000000000ull / hz);
  s.sampler = std::thread([this, period] {
    setTraceThreadName("profiler");
    Impl& st = *impl_;
    while (!st.stop_flag.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(period);
      if (st.stop_flag.load(std::memory_order_acquire)) break;
      tickOnce();
    }
  });
}

void Profiler::stop() {
  Impl& s = *impl_;
  s.stop_flag.store(true, std::memory_order_release);
  if (s.sampler.joinable()) s.sampler.join();
}

void Profiler::setEnabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Profiler::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Profiler::setRingCapacity(u32 slots) {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.ring_slots = slots > 0 ? slots : 1;
}

u64 Profiler::totalSamples() const {
  return impl_->total_samples.load(std::memory_order_relaxed);
}

u64 Profiler::isolateSamples(i32 id) const {
  return impl_->iso_samples[slotFor(id)].load(std::memory_order_relaxed);
}

double Profiler::cpuShare(i32 id) const {
  const Impl& s = *impl_;
  if (s.window_total_delta.load(std::memory_order_relaxed) > 0) {
    return static_cast<double>(s.window_share_pm[slotFor(id)].load(
               std::memory_order_relaxed)) /
           1000.0;
  }
  // No window closed yet: cumulative share.
  const u64 total = s.total_samples.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  return static_cast<double>(
             s.iso_samples[slotFor(id)].load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

void Profiler::selfSample(JThread* t) {
  Impl& s = *impl_;
  // Acknowledge first: even a sample we end up dropping (profiler just
  // disabled) must clear the pending request, or the poll check would
  // call back here on every iteration.
  t->profile_taken.store(t->profile_requests.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  if (!s.enabled.load(std::memory_order_relaxed)) return;

  PendingSample p;
  p.ts = monoNowNs();
  p.kind = SampleThreadKind::Mutator;

  // Own-thread frame walk: frames_active is exact for the owner, and no
  // one else mutates the deque (the invariant jthread.h documents).
  const size_t n = t->frames_active.load(std::memory_order_relaxed);
  if (n == 0) return;  // nothing to attribute (request raced a return)
  auto frameInto = [&](size_t i, u32 at) {
    Frame& f = t->frameAt(i);
    p.names[at] = methodNameId(f.method);
    p.tiers[at] = static_cast<u8>(tierOfFrame(f));
  };
  if (n <= kMaxDepth) {
    for (size_t i = 0; i < n; ++i) frameInto(i, static_cast<u32>(i));
    p.depth = static_cast<u32>(n);
  } else {
    // Keep the outermost kRootKeep and the leaf-most remainder; the
    // exporter marks the cut. Entry points and hot leaves both survive.
    for (size_t i = 0; i < kRootKeep; ++i) frameInto(i, static_cast<u32>(i));
    const size_t leaf_keep = kMaxDepth - kRootKeep;
    for (size_t i = 0; i < leaf_keep; ++i) {
      frameInto(n - leaf_keep + i, static_cast<u32>(kRootKeep + i));
    }
    p.depth = kMaxDepth;
    p.truncated = true;
  }

  // Leaf-frame isolate: library code charges its caller, exactly like the
  // wall-clock sampler's current_isolate attribution.
  Isolate* iso = t->frameAt(n - 1).isolate;
  if (iso == nullptr) iso = t->current_isolate.load(std::memory_order_relaxed);
  p.isolate = iso != nullptr ? iso->id : -1;
  if (iso != nullptr) {
    iso->stats.cpu_profile_samples.fetch_add(1, std::memory_order_relaxed);
  }
  publishSample(s, p);
}

int Profiler::activityBegin(SampleThreadKind kind, i32 isolate,
                            const char* what) {
  Impl& s = *impl_;
  const u32 name = profileNameId(what != nullptr ? what : "");
  for (u32 i = 0; i < kActivitySlots; ++i) {
    ActivitySlot& a = s.activity[i];
    bool expected = false;
    if (!a.busy.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
      continue;
    }
    a.isolate.store(isolate, std::memory_order_relaxed);
    a.kind.store(static_cast<u8>(kind), std::memory_order_relaxed);
    a.name.store(name, std::memory_order_relaxed);
    // Odd seq publishes the slot; fields above are ordered by release.
    a.seq.store(a.seq.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
    return static_cast<int>(i);
  }
  return -1;  // table full: the activity just goes unsampled
}

void Profiler::activityEnd(int slot) {
  if (slot < 0) return;
  Impl& s = *impl_;
  ActivitySlot& a = s.activity[static_cast<u32>(slot)];
  a.seq.store(a.seq.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);  // even again: closed
  a.busy.store(false, std::memory_order_release);
}

void Profiler::tickOnce() {
  Impl& s = *impl_;
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> tick_lock(s.tick_mu);
  const u64 ts = monoNowNs();

  // 1. Request a self-sample from every Running guest thread (one
  //    relaxed store; at most one outstanding request per thread).
  s.vm.forEachThread([](JThread& t) {
    if (t.state.load(std::memory_order_acquire) != ThreadState::Running) {
      return;  // blocked/dead threads burn no CPU
    }
    const u32 req = t.profile_requests.load(std::memory_order_relaxed);
    if (req == t.profile_taken.load(std::memory_order_relaxed)) {
      t.profile_requests.store(req + 1, std::memory_order_relaxed);
    }
  });

  // 2. Sample open activity slots directly (their owners have no guest
  //    frames to walk; one synthetic single-frame sample each).
  for (ActivitySlot& a : s.activity) {
    const u32 seq1 = a.seq.load(std::memory_order_acquire);
    if ((seq1 & 1) == 0) continue;  // closed
    PendingSample p;
    p.ts = ts;
    p.isolate = a.isolate.load(std::memory_order_relaxed);
    p.kind = static_cast<SampleThreadKind>(
        a.kind.load(std::memory_order_relaxed));
    p.names[0] = a.name.load(std::memory_order_relaxed);
    p.tiers[0] = static_cast<u8>(SampleTier::Unknown);
    p.depth = 1;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (a.seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
    if (p.kind >= SampleThreadKind::Count) continue;
    if (p.isolate >= 0) {
      Isolate* iso = s.vm.isolateById(p.isolate);
      if (iso != nullptr) {
        iso->stats.cpu_profile_samples.fetch_add(1, std::memory_order_relaxed);
      }
    }
    publishSample(s, p);
  }

  // 3. Roll the CPU-share window.
  if (++s.tick_count % kWindowTicks != 0) return;
  u64 deltas[kCounterSlots];
  u64 total_delta = 0;
  for (u32 i = 0; i < kCounterSlots; ++i) {
    const u64 cur = s.iso_samples[i].load(std::memory_order_relaxed);
    deltas[i] = cur - s.window_prev[i];
    s.window_prev[i] = cur;
    total_delta += deltas[i];
  }
  for (u32 i = 0; i < kCounterSlots; ++i) {
    const u32 pm = total_delta > 0
                       ? static_cast<u32>(deltas[i] * 1000 / total_delta)
                       : 0;
    s.window_share_pm[i].store(pm, std::memory_order_relaxed);
  }
  s.window_total_delta.store(total_delta, std::memory_order_relaxed);

  // Counter tracks (trace.h Ev::MetricCounter, rendered "ph":"C"): the
  // per-isolate CPU share, the compile queue depth, the cumulative
  // sample count and the reclaim era-lag p99, all on the trace timeline.
  if (traceEnabled()) {
    for (Isolate* iso : s.vm.isolates()) {
      const u32 slot = slotFor(iso->id);
      if (deltas[slot] == 0 &&
          s.iso_samples[slot].load(std::memory_order_relaxed) == 0) {
        continue;  // never-sampled isolate: no empty track
      }
      emitAt(ts, Ev::MetricCounter, Ph::Instant, iso->id,
             internTraceName(strf("cpu.share.%s", iso->name.c_str())),
             s.window_share_pm[slot].load(std::memory_order_relaxed));
    }
    emitAt(ts, Ev::MetricCounter, Ph::Instant, -1,
           internTraceName("compile.queue.depth"),
           exec::compileQueueDepth(s.vm));
    emitAt(ts, Ev::MetricCounter, Ph::Instant, -1,
           internTraceName("profiler.samples"),
           s.total_samples.load(std::memory_order_relaxed));
    // Unit is eras, not ns (report.cpp). No reclaims yet = no empty track.
    const HistSnapshot era_lag = latencySnapshot(Lat::ReclaimEraLag);
    if (era_lag.count > 0) {
      emitAt(ts, Ev::MetricCounter, Ph::Instant, -1,
             internTraceName("reclaim.era-lag.p99"), era_lag.p99_ns);
    }
  }
}

std::vector<ProfileSample> Profiler::snapshot() {
  Impl& s = *impl_;
  std::vector<ProfileSample> out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& r : s.rings) readRing(*r, &out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileSample& a, const ProfileSample& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::string Profiler::dumpFoldedStacks() {
  Impl& s = *impl_;
  std::vector<ProfileSample> samples = snapshot();
  // Fold identical stacks; the map keeps the output deterministic
  // (lexicographic) for golden tests and stable diffs.
  std::map<std::string, u64> folded;
  for (const ProfileSample& p : samples) {
    std::string key = isolateLabel(s.vm, p.isolate);
    key += ';';
    key += threadKindName(p.kind);
    for (size_t i = 0; i < p.name_ids.size(); ++i) {
      key += ';';
      if (p.truncated && i == kRootKeep) key += "[...];";
      std::string frame = foldSanitize(profileNameOf(p.name_ids[i]));
      if (frame.empty()) frame = "?";
      key += frame;
      key += tierTag(p.tiers[i]);
    }
    folded[key] += 1;
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += strf(" %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

std::string Profiler::attributionSection() {
  Impl& s = *impl_;
  const u64 total = s.total_samples.load(std::memory_order_relaxed);
  std::string out = "-- cpu attribution (sampling profiler) --\n";
  if (total == 0) {
    out += "  no samples\n";
    return out;
  }

  // Leaf-frame aggregation per isolate: tier mix + hottest methods.
  struct IsoAgg {
    u64 leaf_tiers[static_cast<size_t>(SampleTier::Count)] = {};
    std::unordered_map<u32, u64> leaf_methods;  // name id -> samples
    u64 leaf_total = 0;
  };
  std::map<i32, IsoAgg> aggs;
  for (const ProfileSample& p : snapshot()) {
    if (p.name_ids.empty()) continue;
    IsoAgg& a = aggs[p.isolate];
    const size_t leaf = p.name_ids.size() - 1;
    a.leaf_tiers[static_cast<size_t>(p.tiers[leaf])] += 1;
    a.leaf_methods[p.name_ids[leaf]] += 1;
    a.leaf_total += 1;
  }

  out += strf("  %-18s %10s %7s %7s  %s\n", "isolate", "samples", "share",
              "window", "tier mix (leaf)");
  auto shareRow = [&](i32 id, u64 samples) {
    const double share =
        100.0 * static_cast<double>(samples) / static_cast<double>(total);
    const double window = 100.0 * cpuShare(id);
    std::string tiers;
    auto it = aggs.find(id);
    if (it != aggs.end() && it->second.leaf_total > 0) {
      for (size_t t = 0; t < static_cast<size_t>(SampleTier::Count); ++t) {
        const u64 n = it->second.leaf_tiers[t];
        if (n == 0) continue;
        if (!tiers.empty()) tiers += ' ';
        tiers += strf("%s %.0f%%", tierName(static_cast<SampleTier>(t)),
                      100.0 * static_cast<double>(n) /
                          static_cast<double>(it->second.leaf_total));
      }
    }
    out += strf("  %-18s %10llu %6.1f%% %6.1f%%  %s\n",
                isolateLabel(s.vm, id).c_str(),
                static_cast<unsigned long long>(samples), share, window,
                tiers.c_str());
  };
  for (Isolate* iso : s.vm.isolates()) {
    const u64 n = isolateSamples(iso->id);
    if (n > 0) shareRow(iso->id, n);
  }
  const u64 platform = s.iso_samples[kPlatformSlot].load(
      std::memory_order_relaxed);
  if (platform > 0) shareRow(-1, platform);

  // Top-5 hot leaf methods per isolate.
  for (auto& [id, agg] : aggs) {
    if (agg.leaf_methods.empty()) continue;
    std::vector<std::pair<u32, u64>> hot(agg.leaf_methods.begin(),
                                         agg.leaf_methods.end());
    std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (hot.size() > 5) hot.resize(5);
    out += strf("  hot in %s:\n", isolateLabel(s.vm, id).c_str());
    for (const auto& [name_id, count] : hot) {
      std::string name = profileNameOf(name_id);
      if (name.empty()) name = "?";
      out += strf("    %8llu  %s\n", static_cast<unsigned long long>(count),
                  name.c_str());
    }
  }
  return out;
}

void Profiler::reset() {
  Impl& s = *impl_;
  std::lock_guard<std::mutex> tick_lock(s.tick_mu);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    // Rings retire, never free: a guest mid-selfSample keeps writing into
    // memory that stays valid; it re-acquires a fresh ring on its next
    // sample via the epoch check.
    for (auto& r : s.rings) s.retired.push_back(std::move(r));
    s.rings.clear();
    s.epoch.fetch_add(1, std::memory_order_acq_rel);
  }
  s.total_samples.store(0, std::memory_order_relaxed);
  for (auto& c : s.iso_samples) c.store(0, std::memory_order_relaxed);
  for (auto& c : s.kind_samples) c.store(0, std::memory_order_relaxed);
  s.tick_count = 0;
  for (auto& w : s.window_prev) w = 0;
  for (auto& w : s.window_share_pm) w.store(0, std::memory_order_relaxed);
  s.window_total_delta.store(0, std::memory_order_relaxed);
}

// ---- ProfileActivityScope ----------------------------------------------

ProfileActivityScope::ProfileActivityScope(VM& vm, SampleThreadKind kind,
                                           i32 isolate, const char* what) {
  profiler_ = vm.profiler();
  if (profiler_ != nullptr) {
    slot_ = profiler_->activityBegin(kind, isolate, what);
  }
}

ProfileActivityScope::~ProfileActivityScope() {
  if (profiler_ != nullptr) profiler_->activityEnd(slot_);
}

#endif  // IJVM_DISABLE_PROFILER

}  // namespace ijvm::obs
