#include "obs/clock.h"

#include <chrono>

namespace ijvm::obs {

u64 monoNowNs() {
  // Function-local static: the epoch latches on the first call from any
  // thread (C++11 guarantees the race-free init) and is never moved.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - kEpoch)
          .count());
}

}  // namespace ijvm::obs
