// Trace recording and export. Contract in trace.h / docs/observability.md.
#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/clock.h"
#include "support/strf.h"

namespace ijvm::obs {

const char* evName(Ev e) {
  switch (e) {
    case Ev::None: return "none";
    case Ev::CompileRequest: return "compile.request";
    case Ev::CompileBuild: return "compile.build";
    case Ev::CompileInstall: return "compile.install";
    case Ev::JitDemote: return "jit.demote";
    case Ev::JitDeopt: return "jit.deopt";
    case Ev::JitReclaim: return "jit.reclaim";
    case Ev::EraAdvance: return "jit.era-advance";
    case Ev::OsrTransfer: return "osr.transfer";
    case Ev::OsrRefused: return "osr.refused";
    case Ev::GcPause: return "gc.pause";
    case Ev::GcMark: return "gc.mark";
    case Ev::GcAccounting: return "gc.accounting";
    case Ev::GcSweep: return "gc.sweep";
    case Ev::SafepointStop: return "safepoint.stop";
    case Ev::IsolateStart: return "isolate.start";
    case Ev::IsolateTerminate: return "isolate.terminate";
    case Ev::GovernorTick: return "governor.tick";
    case Ev::GovernorWarn: return "governor.warn";
    case Ev::GovernorAct: return "governor.act";
    case Ev::InterIsolateCall: return "call.inter-isolate";
    case Ev::ChannelSend: return "channel.send";
    case Ev::ChannelSendBatch: return "channel.send-batch";
    case Ev::CommDonate: return "comm.donate";
    case Ev::MutatorTask: return "mutator.task";
    case Ev::MetricCounter: return "metric.counter";
    case Ev::Count: break;
  }
  return "?";
}

const char* latName(Lat l) {
  switch (l) {
    case Lat::SafepointTimeToStop: return "safepoint time-to-stop";
    case Lat::GcPause: return "gc pause";
    case Lat::CompileQueueWait: return "compile queue-wait";
    case Lat::CompileBuild: return "compile build";
    case Lat::InterIsolateCall: return "inter-isolate call (sampled)";
    case Lat::ChannelSend: return "channel send";
    case Lat::ReclaimEraLag: return "reclaim era-lag (eras)";
    case Lat::DonatedBytes: return "donated bytes per send (bytes)";
    case Lat::Count: break;
  }
  return "?";
}

#ifndef IJVM_DISABLE_TRACE

namespace {

const char* evCategory(Ev e) {
  switch (e) {
    case Ev::CompileRequest:
    case Ev::CompileBuild:
    case Ev::CompileInstall:
    case Ev::JitDemote:
    case Ev::JitDeopt:
    case Ev::JitReclaim:
    case Ev::EraAdvance:
    case Ev::OsrTransfer:
    case Ev::OsrRefused:
      return "jit";
    case Ev::GcPause:
    case Ev::GcMark:
    case Ev::GcAccounting:
    case Ev::GcSweep:
      return "gc";
    case Ev::SafepointStop:
      return "safepoint";
    case Ev::IsolateStart:
    case Ev::IsolateTerminate:
      return "isolate";
    case Ev::GovernorTick:
    case Ev::GovernorWarn:
    case Ev::GovernorAct:
      return "governor";
    case Ev::InterIsolateCall:
    case Ev::ChannelSend:
    case Ev::ChannelSendBatch:
    case Ev::CommDonate:
      return "comm";
    case Ev::MutatorTask:
      return "pool";
    case Ev::MetricCounter:
      return "metrics";
    default:
      return "vm";
  }
}

constexpr u32 kDefaultRingSlots = 8192;

// One seqlock slot. The owning thread invalidates (seq = 0), fills the
// payload with relaxed stores, then release-stores seq = index + 1; a
// reader accepts the slot only when seq reads the same nonzero value on
// both sides of the payload loads. Payload fields are relaxed atomics so
// the reader/writer race is defined (and TSan-clean) -- on every target
// we care about they cost the same as plain stores.
struct Slot {
  std::atomic<u64> seq{0};
  std::atomic<u64> ts{0};
  std::atomic<u64> a{0};
  std::atomic<u64> b{0};
  std::atomic<i32> isolate{-1};
  std::atomic<u8> ev{0};
  std::atomic<u8> ph{0};
};

// One thread's ring. Single writer (the owning thread); any number of
// concurrent readers.
struct Ring {
  explicit Ring(u32 tid_, u32 cap) : tid(tid_), slots(cap) {}
  const u32 tid;
  std::string name;
  std::vector<Slot> slots;
  // Total events ever written by this thread; the write cursor is
  // next % slots.size(). Monotonic, owner-written only.
  std::atomic<u64> next{0};
};

struct TraceState {
  std::mutex mu;
  std::deque<std::unique_ptr<Ring>> rings;     // readable
  std::deque<std::unique_ptr<Ring>> retired;   // kept alive after reset
  std::unordered_map<std::string, u32> name_ids;
  std::deque<std::string> names;  // id -> string (id 0 = "")
  u32 next_tid = 1;
  u32 ring_slots = kDefaultRingSlots;
  std::atomic<u64> epoch{1};
  std::atomic<bool> enabled{true};
  LatencyHistogram hists[static_cast<size_t>(Lat::Count)];
};

TraceState& state() {
  static TraceState* s = new TraceState();  // never destroyed: emitters may
  return *s;                                // outlive static teardown order
}

struct ThreadRing {
  Ring* ring = nullptr;
  u64 epoch = 0;
};
thread_local ThreadRing tl_ring;

Ring& myRing() {
  TraceState& st = state();
  const u64 epoch = st.epoch.load(std::memory_order_acquire);
  if (tl_ring.ring == nullptr || tl_ring.epoch != epoch) {
    std::lock_guard<std::mutex> lock(st.mu);
    st.rings.push_back(
        std::make_unique<Ring>(st.next_tid++, st.ring_slots));
    tl_ring.ring = st.rings.back().get();
    tl_ring.epoch = st.epoch.load(std::memory_order_relaxed);
  }
  return *tl_ring.ring;
}

void writeSlot(Ring& r, u64 ts, Ev ev, Ph ph, i32 isolate, u64 a, u64 b) {
  const u64 idx = r.next.load(std::memory_order_relaxed);
  Slot& s = r.slots[idx % r.slots.size()];
  s.seq.store(0, std::memory_order_release);  // invalidate for readers
  s.ts.store(ts, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.isolate.store(isolate, std::memory_order_relaxed);
  s.ev.store(static_cast<u8>(ev), std::memory_order_relaxed);
  s.ph.store(static_cast<u8>(ph), std::memory_order_relaxed);
  s.seq.store(idx + 1, std::memory_order_release);
  r.next.store(idx + 1, std::memory_order_release);
}

// Collects every consistently-readable event of one ring.
void readRing(const Ring& r, std::vector<TraceEvent>* out) {
  const size_t cap = r.slots.size();
  for (size_t i = 0; i < cap; ++i) {
    const Slot& s = r.slots[i];
    const u64 seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 == 0) continue;  // empty or mid-write
    TraceEvent e;
    e.ts_ns = s.ts.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.isolate = s.isolate.load(std::memory_order_relaxed);
    e.ev = static_cast<Ev>(s.ev.load(std::memory_order_relaxed));
    e.ph = static_cast<Ph>(s.ph.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
    if (e.ev == Ev::None || e.ev >= Ev::Count) continue;
    e.tid = r.tid;
    out->push_back(e);
  }
}

}  // namespace

// The obs layer's shared epoch (obs/clock.h): profiler samples and trace
// spans must be directly comparable, so the trace keeps no private t0.
u64 traceNowNs() { return monoNowNs(); }

bool traceEnabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void setTraceEnabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

void emit(Ev ev, Ph ph, i32 isolate, u64 a, u64 b) {
  if (!traceEnabled()) return;
  writeSlot(myRing(), traceNowNs(), ev, ph, isolate, a, b);
}

void emitAt(u64 ts_ns, Ev ev, Ph ph, i32 isolate, u64 a, u64 b) {
  if (!traceEnabled()) return;
  writeSlot(myRing(), ts_ns, ev, ph, isolate, a, b);
}

void recordLatency(Lat l, u64 ns) {
  if (l >= Lat::Count || !traceEnabled()) return;
  state().hists[static_cast<size_t>(l)].record(ns);
}

HistSnapshot latencySnapshot(Lat l) {
  if (l >= Lat::Count) return {};
  return state().hists[static_cast<size_t>(l)].snapshot();
}

u32 internTraceName(const std::string& name) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.name_ids.find(name);
  if (it != st.name_ids.end()) return it->second;
  if (st.names.empty()) st.names.push_back("");  // id 0 = unnamed
  const u32 id = static_cast<u32>(st.names.size());
  st.names.push_back(name);
  st.name_ids.emplace(name, id);
  return id;
}

std::string traceNameOf(u32 id) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (id == 0 || id >= st.names.size()) return {};
  return st.names[id];
}

void setTraceThreadName(const std::string& name) {
  Ring& r = myRing();
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  r.name = name;
}

void setTraceRingCapacity(u32 slots) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.ring_slots = slots > 0 ? slots : 1;
}

std::vector<TraceEvent> snapshotTrace() {
  TraceState& st = state();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    for (const auto& r : st.rings) readRing(*r, &out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  return out;
}

void resetTrace() {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  // Rings move to the retired list (not freed: their owner threads may be
  // mid-emit); owners re-acquire a fresh ring at their next event via the
  // epoch check in myRing().
  for (auto& r : st.rings) st.retired.push_back(std::move(r));
  st.rings.clear();
  st.name_ids.clear();
  st.names.clear();
  for (auto& h : st.hists) h.reset();
  st.epoch.fetch_add(1, std::memory_order_acq_rel);
  // The clock epoch (obs/clock.h) is deliberately NOT re-based: profiler
  // samples recorded across a reset must stay comparable to new spans.
}

// ---- Chrome trace-event export ----------------------------------------

namespace {

void appendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += strf("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

// A Perfetto counter-track sample ("ph":"C"): one named series per
// metric, value in args. Emitted by the sampling profiler's window roll
// (obs/profiler.cpp) so era-lag, queue depth and CPU share graph on the
// same timeline as the B/E spans.
std::string chromeCounter(const TraceEvent& e) {
  std::string name = traceNameOf(static_cast<u32>(e.a));
  if (name.empty()) name = "metric";
  std::string row = strf("{\"name\":\"");
  appendJsonEscaped(&row, name);
  row += strf("\",\"cat\":\"metrics\",\"ph\":\"C\",\"ts\":%.3f,"
              "\"pid\":1,\"tid\":%u,\"args\":{\"value\":%llu}}",
              static_cast<double>(e.ts_ns) / 1000.0, e.tid,
              static_cast<unsigned long long>(e.b));
  return row;
}

// One trace-event JSON object. `ph` is the Chrome phase letter.
std::string chromeEvent(const TraceEvent& e, char ph, u64 dur_ns) {
  std::string row = strf(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,"
      "\"pid\":1,\"tid\":%u",
      evName(e.ev), evCategory(e.ev), ph,
      static_cast<double>(e.ts_ns) / 1000.0, e.tid);
  if (ph == 'X') row += strf(",\"dur\":%.3f", static_cast<double>(dur_ns) / 1000.0);
  if (ph == 'i') row += ",\"s\":\"t\"";
  row += strf(",\"args\":{\"isolate\":%d", e.isolate);
  // Compile/OSR/governor payloads carry an interned name in `a`; for any
  // other event `a` is a plain number (bytes, counts) and must not be
  // resolved even if it happens to collide with a name id.
  const bool a_is_name =
      e.ev == Ev::CompileRequest || e.ev == Ev::CompileBuild ||
      e.ev == Ev::CompileInstall || e.ev == Ev::JitDemote ||
      e.ev == Ev::JitDeopt || e.ev == Ev::OsrTransfer ||
      e.ev == Ev::OsrRefused || e.ev == Ev::GovernorWarn ||
      e.ev == Ev::GovernorAct || e.ev == Ev::IsolateStart;
  const std::string named =
      a_is_name ? traceNameOf(static_cast<u32>(e.a)) : std::string();
  if (!named.empty()) {
    row += ",\"target\":\"";
    appendJsonEscaped(&row, named);
    row += "\"";
  } else if (e.a != 0) {
    row += strf(",\"a\":%llu", static_cast<unsigned long long>(e.a));
  }
  if (e.b != 0) row += strf(",\"b\":%llu", static_cast<unsigned long long>(e.b));
  row += "}}";
  return row;
}

}  // namespace

bool dumpChromeTrace(const std::string& path) {
  std::vector<TraceEvent> events = snapshotTrace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  auto put = [&](const std::string& row) {
    if (!first) std::fputs(",\n", f);
    first = false;
    std::fputs(row.c_str(), f);
  };

  // Thread-name metadata so Perfetto labels the tracks.
  {
    TraceState& st = state();
    std::lock_guard<std::mutex> lock(st.mu);
    for (const auto& r : st.rings) {
      std::string name = r->name.empty() ? strf("thread-%u", r->tid) : r->name;
      std::string row =
          strf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
               "\"args\":{\"name\":\"",
               r->tid);
      appendJsonEscaped(&row, name);
      row += "\"}}";
      put(row);
    }
  }

  // Begin/End balancing per thread: a Begin whose End was overwritten by
  // ring wrap (or never emitted -- e.g. an isolate terminated mid-span and
  // the spanning thread unwound without reaching its end site) is closed
  // at the trace's final timestamp; an End whose Begin wrapped away is
  // dropped. Chrome/Perfetto reject unbalanced B/E pairs outright, so the
  // exporter -- not the emitters -- owns this invariant.
  u64 last_ts = 0;
  for (const TraceEvent& e : events) last_ts = std::max(last_ts, e.ts_ns);
  std::unordered_map<u32, std::vector<TraceEvent>> open;  // tid -> B stack
  for (const TraceEvent& e : events) {
    if (e.ev == Ev::MetricCounter) {
      put(chromeCounter(e));
      continue;
    }
    switch (e.ph) {
      case Ph::Instant:
        put(chromeEvent(e, 'i', 0));
        break;
      case Ph::Begin:
        open[e.tid].push_back(e);
        put(chromeEvent(e, 'B', 0));
        break;
      case Ph::End: {
        auto& stack = open[e.tid];
        // An End only matches a Begin of the same event type somewhere in
        // this thread's open stack; otherwise its Begin was lost to wrap
        // and the End must be dropped, not emitted against someone else's
        // span.
        bool has_begin = false;
        for (const TraceEvent& b : stack) has_begin |= b.ev == e.ev;
        if (!has_begin) break;
        // Close any inner spans whose End was lost (wrap can eat an inner
        // End while keeping the outer one).
        while (stack.back().ev != e.ev) {
          TraceEvent fix = stack.back();
          stack.pop_back();
          fix.ts_ns = e.ts_ns;
          put(chromeEvent(fix, 'E', 0));
        }
        stack.pop_back();
        put(chromeEvent(e, 'E', 0));
        break;
      }
    }
  }
  for (auto& [tid, stack] : open) {
    while (!stack.empty()) {
      TraceEvent fix = stack.back();
      stack.pop_back();
      fix.ts_ns = last_ts;
      put(chromeEvent(fix, 'E', 0));
    }
  }
  std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", f);
  std::fclose(f);
  return true;
}

#else  // IJVM_DISABLE_TRACE

bool dumpChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n", f);
  std::fclose(f);
  return true;
}

#endif  // IJVM_DISABLE_TRACE

}  // namespace ijvm::obs
