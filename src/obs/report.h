// Human-readable platform reports (docs/observability.md).
//
// The paper's administrator reads per-bundle counters to find a
// misbehaving bundle (section 3.2); examples and benches used to print
// those counters as bare numbers. This module is the one formatter they
// all share, so every surface -- examples, benches, the governor's admin
// snapshot -- prints the same self-describing tables: headers, units, and
// the JIT/observability columns the ROADMAP called out (compile-queue
// depth, osr_refused_transfers, jit_recompile_requests, per-isolate
// jit_code_bytes).
//
// Everything here is a cold path: strings, allocation and printf-style
// formatting are fine.
#pragma once

#include <string>
#include <vector>

#include "support/common.h"

namespace ijvm {
class VM;
struct IsolateReport;
}  // namespace ijvm

namespace ijvm::obs {

// "1.5 KiB", "12.0 MiB"; bytes < 1 KiB stay exact ("812 B").
std::string humanBytes(u64 bytes);
// "412 ns", "1.3 us", "25.0 ms", "1.2 s".
std::string humanNs(u64 ns);

// Resource counter table, one row per isolate: state, cpu samples,
// allocation counts/bytes, live threads, inter-isolate calls in.
std::string isolateTable(const std::vector<IsolateReport>& reports);

// JIT/code columns per isolate: methods compiled/demoted, resident
// compiled-code bytes, OSR transfers refused, recompile requests.
std::string jitTable(const std::vector<IsolateReport>& reports);

// Aggregate code-cache + compile-pipeline state: installed/retired
// footprint vs. budget, compile/demotion/deopt/reclaim counters and the
// current compile-queue depth (pending + building + awaiting install).
std::string codeCacheSection(VM& vm);

// Latency histogram table (p50/p90/p99/max) for every pause-critical
// path that has recorded at least one sample. Empty string when the
// trace subsystem is compiled out or nothing was recorded.
std::string latencySection();

// The full platform report: isolate table, JIT table, code-cache section
// and latency section.
std::string platformReport(VM& vm);

}  // namespace ijvm::obs
