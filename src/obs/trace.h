// VM-wide event tracing (docs/observability.md).
//
// Everything interesting the platform does -- compile request/build/
// install, demotion/retire/reclaim, OSR transfers and refusals, deopts,
// GC phases, safepoint drains, governor ticks and actions, isolate
// start/terminate, channel sends -- is recorded as a typed event with a
// monotonic timestamp, the emitting thread and the isolate it concerns.
//
// Recording discipline (the reason this can stay on in production):
//   * one fixed-size ring buffer per thread, created lazily on the
//     thread's first event and owned by a process-wide registry;
//   * a thread only ever writes its *own* ring -- emission is a seqlock
//     slot publish (invalidate, fill, release-store the sequence), no
//     lock, no allocation, no CAS;
//   * the ring wraps: old events are overwritten, the newest N survive.
//     Nothing on the hot path ever blocks on the trace;
//   * readers (snapshotTrace / dumpChromeTrace) walk every ring and drop
//     slots whose sequence changed mid-read -- a torn slot is skipped,
//     never mis-reported.
//
// Events at per-bytecode frequency are deliberately absent: the cheapest
// possible emit still costs a clock read, so the trace records *platform*
// actions (compiles, pauses, kills), and the one genuinely hot path that
// is traced -- the inter-isolate call -- is sampled (1 in 256) rather
// than recorded per call. bench_fig1_micro's trace-overhead row holds
// the total under 2%.
//
// Compile the whole subsystem out with -DIJVM_DISABLE_TRACE: every emit
// collapses to an empty inline function and the exporters write empty
// (but well-formed) traces.
#pragma once

#include <string>
#include <vector>

#include "obs/histogram.h"
#include "support/common.h"

namespace ijvm::obs {

// Event taxonomy (docs/observability.md has the prose version). Keep in
// sync with evName/evCategory in trace.cpp.
enum class Ev : u8 {
  None = 0,
  // -- compile pipeline (exec/jit.cpp, exec/compile_manager.cpp) --
  CompileRequest,  // promote-to-JIT request latched (a = method name id)
  CompileBuild,    // span: buildJitCode (a = method name id)
  CompileInstall,  // code published at a mutator drain point (b = bytes)
  JitDemote,       // installed -> retired, budget/governor (a = name id)
  JitDeopt,        // compiled execution hit an unbound site (a = name id)
  JitReclaim,      // a reclamation pass freed retired code (a = count)
  EraAdvance,      // retired code armed with a new era (a = era, b = armed)
  OsrTransfer,     // live frame entered compiled code mid-call (a = name id)
  OsrRefused,      // transfer refused with code present (a = name id)
  // -- memory management (runtime/vm.cpp, heap/heap.cpp) --
  GcPause,       // span: the whole stop-the-world collection
  GcMark,        // span: mark + first-reference charging
  GcAccounting,  // span: policy-specific accounting pass
  GcSweep,       // span: sweep of the unmarked
  // -- safepoints (runtime/safepoint.cpp) --
  SafepointStop,  // span: stop request -> all mutators parked
  // -- platform lifecycle (runtime/vm.cpp) --
  IsolateStart,      // isolate created (isolate = new id)
  IsolateTerminate,  // span: terminateIsolate stop/poison/patch
  // -- admin (admin/governor.cpp) --
  GovernorTick,  // one evaluation pass (a = tick number, b = event count)
  GovernorWarn,  // rule tripped without acting (a = rule label id)
  GovernorAct,   // rule acted: kill/promote/demote (a = rule label id)
  // -- communication (runtime/interpreter.cpp, stdlib/channels.cpp) --
  InterIsolateCall,  // span, sampled 1/256 (isolate = callee)
  ChannelSend,       // bytes pushed into a channel queue (a = bytes)
  ChannelSendBatch,  // vectored send (a = bytes, b = frames coalesced)
  CommDonate,        // transferGraph donated ownership (isolate = receiver,
                     // a = bytes donated, b = objects donated)
  // -- mutator pool (runtime/mutator_pool.cpp) --
  MutatorTask,  // span: one pool task (isolate = scheduled-for, a = worker)
  // -- metrics (obs/profiler.cpp) --
  MetricCounter,  // periodic counter sample for Perfetto counter tracks
                  // (a = interned metric name id, b = value; exported as
                  // "ph":"C" so era-lag, queue depth and CPU share are
                  // graphable against the B/E spans on one timeline)
  Count,
};

enum class Ph : u8 { Instant, Begin, End };

// The latency histograms fed from paired begin/end sites (histogram.h).
// Keep in sync with latName in trace.cpp.
enum class Lat : u8 {
  SafepointTimeToStop,  // stop request -> every mutator parked
  GcPause,              // full stop-the-world collection
  CompileQueueWait,     // request latched -> build started
  CompileBuild,         // buildJitCode wall time
  InterIsolateCall,     // migrated call, entry to return (sampled)
  ChannelSend,          // channel push wall time
  ReclaimEraLag,        // eras (NOT ns) past target when code was freed
  DonatedBytes,         // bytes (NOT ns) donated per transferGraph call
  Count,
};

const char* evName(Ev e);
const char* latName(Lat l);

// One decoded trace event (snapshotTrace order: timestamp-ascending).
struct TraceEvent {
  u64 ts_ns = 0;  // monotonic, common epoch across threads
  u32 tid = 0;    // trace-local thread id (dense, stable per thread)
  i32 isolate = -1;  // isolate the event concerns; -1 = platform-wide
  Ev ev = Ev::None;
  Ph ph = Ph::Instant;
  u64 a = 0;  // event-specific payload (see Ev comments)
  u64 b = 0;
};

#ifndef IJVM_DISABLE_TRACE

// Monotonic nanoseconds on the obs layer's common epoch (obs/clock.h --
// shared with the sampling profiler, so span and sample timestamps are
// directly comparable).
u64 traceNowNs();

bool traceEnabled();
void setTraceEnabled(bool on);

// Records one event on the calling thread's ring. Cheap (clock read +
// seqlock publish) and wait-free; safe from any thread at any time.
void emit(Ev ev, Ph ph, i32 isolate, u64 a = 0, u64 b = 0);
// emit() with a pre-read timestamp (span ends that already took the
// clock for the histogram record).
void emitAt(u64 ts_ns, Ev ev, Ph ph, i32 isolate, u64 a = 0, u64 b = 0);

// Feeds one duration into the given histogram.
void recordLatency(Lat l, u64 ns);
HistSnapshot latencySnapshot(Lat l);

// Interns a string for use as an event payload (compile events carry the
// method name this way: the ring slot stays fixed-size and
// allocation-free; the exporter resolves ids back to strings). Interning
// takes a lock -- call it on cold paths only (compile requests, governor
// rules), never per-bytecode.
u32 internTraceName(const std::string& name);
std::string traceNameOf(u32 id);

// Names the calling thread's ring in exports ("compiler", "governor").
void setTraceThreadName(const std::string& name);

// Ring capacity (slots per thread) for rings created *after* the call;
// existing rings keep their size. Tests shrink it to force wrap.
void setTraceRingCapacity(u32 slots);

// All currently-readable events, merged across threads and sorted by
// timestamp. Concurrent emitters are fine: torn slots are skipped.
std::vector<TraceEvent> snapshotTrace();

// Chrome trace-event JSON (load in Perfetto / chrome://tracing). Spans
// whose End was lost to ring wrap -- or that were still open when the
// trace was dumped, e.g. an isolate terminated mid-span -- are closed at
// the trace's end so the file always balances. Returns false only when
// the file cannot be written.
bool dumpChromeTrace(const std::string& path);

// Forgets all recorded events, histograms and interned names. Rings of
// live threads are retired (re-created on their next emit), never freed:
// a thread mid-emit keeps writing into memory that stays valid. Tests
// call this between cases; it is not meant for production use.
void resetTrace();

// RAII begin/end pair; optionally feeds a histogram with the span's
// duration at destruction.
class TraceSpan {
 public:
  TraceSpan(Ev ev, i32 isolate, u64 a = 0, Lat hist = Lat::Count)
      : ev_(ev), isolate_(isolate), a_(a), hist_(hist) {
    if (traceEnabled()) {
      armed_ = true;
      t0_ = traceNowNs();
      emitAt(t0_, ev_, Ph::Begin, isolate_, a_);
    }
  }
  ~TraceSpan() {
    if (!armed_) return;
    const u64 t1 = traceNowNs();
    emitAt(t1, ev_, Ph::End, isolate_, a_);
    if (hist_ != Lat::Count) recordLatency(hist_, t1 - t0_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  u64 startNs() const { return t0_; }

 private:
  Ev ev_;
  i32 isolate_;
  u64 a_;
  Lat hist_;
  u64 t0_ = 0;
  bool armed_ = false;
};

#else  // IJVM_DISABLE_TRACE

// Compiled-out stubs: emission sites stay written exactly as in the
// enabled build and cost nothing (callers' argument computation folds
// away -- every payload is a scalar already at hand).
inline u64 traceNowNs() { return 0; }
inline bool traceEnabled() { return false; }
inline void setTraceEnabled(bool) {}
inline void emit(Ev, Ph, i32, u64 = 0, u64 = 0) {}
inline void emitAt(u64, Ev, Ph, i32, u64 = 0, u64 = 0) {}
inline void recordLatency(Lat, u64) {}
inline HistSnapshot latencySnapshot(Lat) { return {}; }
inline u32 internTraceName(const std::string&) { return 0; }
inline std::string traceNameOf(u32) { return {}; }
inline void setTraceThreadName(const std::string&) {}
inline void setTraceRingCapacity(u32) {}
inline std::vector<TraceEvent> snapshotTrace() { return {}; }
bool dumpChromeTrace(const std::string& path);  // writes an empty trace
inline void resetTrace() {}

class TraceSpan {
 public:
  TraceSpan(Ev, i32, u64 = 0, Lat = Lat::Count) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  u64 startNs() const { return 0; }
};

#endif  // IJVM_DISABLE_TRACE

}  // namespace ijvm::obs
