// The eight attacks of paper section 2 / 4.3.
//
// Each attack runs on a fresh platform (VM + OSGi framework + a victim
// bundle + a malicious bundle) in either *isolated* mode (I-JVM) or
// *shared* mode (the unprotected Sun-JVM/LadyVM baseline), and reports a
// structured outcome that the robustness bench prints as the paper's
// per-attack comparison and the tests assert on.
//
//   A1  modification of a static variable
//   A2  synchronized lock on a shared (interned-string / Class) object
//   A3  memory exhaustion (objects retained)
//   A4  excessive object creation (GC thrashing)
//   A5  recursive thread creation
//   A6  standalone infinite loop
//   A7  hanging thread (callee never returns)
//   A8  lack of termination support
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/options.h"
#include "support/common.h"

namespace ijvm {

enum class AttackId : u8 {
  A1_StaticMutation,
  A2_SharedLock,
  A3_MemoryExhaustion,
  A4_ExcessiveGc,
  A5_ThreadCreation,
  A6_InfiniteLoop,
  A7_HangingThread,
  A8_NoTermination,
};

const char* attackName(AttackId id);
const char* attackTitle(AttackId id);

struct AttackOutcome {
  AttackId id = AttackId::A1_StaticMutation;
  bool isolated_mode = false;
  // Did the victim bundle keep functioning while/after the attack?
  bool victim_unaffected = false;
  // Could an administrator identify the offender from the per-isolate
  // resource report (always false in shared mode: no accounting)?
  bool attacker_identified = false;
  // Did killing the offending bundle succeed and stop the attack?
  bool attacker_stopped = false;
  // One-line narration for the report.
  std::string detail;

  // The paper's bottom line: the platform survives the attack.
  bool protectedOutcome() const {
    return victim_unaffected && attacker_stopped;
  }
};

// Applied to the attack platform's VmOptions after the defaults are set;
// the differential tests use it to force the fusion tier on/off.
using VmOptionsTweak = std::function<void(VmOptions&)>;

// Runs one attack in the given mode. Self-contained (builds and tears down
// its own VM); safe to call repeatedly. `engine` selects the execution
// engine (the differential test runs attacks under both).
AttackOutcome runAttack(AttackId id, bool isolated_mode,
                        ExecEngine engine = ExecEngine::Quickened,
                        const VmOptionsTweak& tweak = {});

// All eight, in order.
std::vector<AttackOutcome> runAllAttacks(
    bool isolated_mode, ExecEngine engine = ExecEngine::Quickened,
    const VmOptionsTweak& tweak = {});

}  // namespace ijvm
