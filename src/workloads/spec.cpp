#include "workloads/spec.h"

#include "bytecode/builder.h"
#include "support/strf.h"

namespace ijvm {

namespace {
// Java int wrap-around helpers for the C++ reference implementations.
i32 jmul(i32 a, i32 b) { return static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)); }
i32 jadd(i32 a, i32 b) { return static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)); }
i32 jhash(const std::string& s) {
  i32 h = 0;
  for (char c : s) h = jadd(jmul(h, 31), static_cast<u8>(c));
  return h;
}
}  // namespace

// ----------------------------------------------------------------- compress

SpecWorkload makeCompress() {
  SpecWorkload wl;
  wl.name = "compress";
  wl.main_class = "compress/Main";
  wl.default_size = 64;  // KiB of input

  ClassBuilder cb(wl.main_class);
  auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
  // locals: 0=size 1=n 2=data 3=seed 4=i 5=chk 6=runs 7=v 8=len
  m.iload(0).iconst(1024).imul().istore(1);
  m.iload(1).newarray(Kind::Int).astore(2);
  m.iconst(12345).istore(3);
  m.iconst(0).istore(4);
  {
    Label head = m.newLabel(), out = m.newLabel(), store = m.newLabel();
    m.bind(head).iload(4).iload(1).ifIcmpGe(out);
    m.iload(3).iconst(1103515245).imul().iconst(12345).iadd().istore(3);
    m.iload(3).iconst(16).iushr().iconst(255).iand().istore(7);
    // Bias toward runs: if ((seed>>>20)&3)==0 && i>0, repeat previous byte.
    m.iload(3).iconst(20).iushr().iconst(3).iand().ifne(store);
    m.iload(4).ifle(store);
    m.aload(2).iload(4).iconst(1).isub().iaload().istore(7);
    m.bind(store).aload(2).iload(4).iload(7).iastore();
    m.iinc(4, 1).gotoLabel(head);
    m.bind(out);
  }
  m.iconst(0).istore(5);
  m.iconst(0).istore(6);
  m.iconst(0).istore(4);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(4).iload(1).ifIcmpGe(out);
    m.aload(2).iload(4).iaload().istore(7);
    m.iconst(1).istore(8);
    Label scan = m.newLabel(), scanned = m.newLabel();
    m.bind(scan);
    m.iload(4).iload(8).iadd().iload(1).ifIcmpGe(scanned);
    m.aload(2).iload(4).iload(8).iadd().iaload().iload(7).ifIcmpNe(scanned);
    m.iload(8).iconst(255).ifIcmpGe(scanned);
    m.iinc(8, 1).gotoLabel(scan);
    m.bind(scanned);
    m.iload(5).iconst(31).imul().iload(7).iadd().istore(5);
    m.iload(5).iconst(31).imul().iload(8).iadd().istore(5);
    m.iinc(6, 1);
    m.iload(4).iload(8).iadd().istore(4);
    m.gotoLabel(head);
    m.bind(out);
  }
  m.iload(5).iload(6).ixor().ireturn();
  wl.classes.push_back(cb.build());
  return wl;
}

i32 referenceCompress(i32 size) {
  const i32 n = jmul(size, 1024);
  std::vector<i32> data(static_cast<size_t>(n));
  i32 seed = 12345;
  for (i32 i = 0; i < n; ++i) {
    seed = jadd(jmul(seed, 1103515245), 12345);
    i32 v = static_cast<i32>(static_cast<u32>(seed) >> 16) & 255;
    if (((static_cast<u32>(seed) >> 20) & 3) == 0 && i > 0) {
      v = data[static_cast<size_t>(i - 1)];
    }
    data[static_cast<size_t>(i)] = v;
  }
  i32 chk = 0, runs = 0, i = 0;
  while (i < n) {
    i32 v = data[static_cast<size_t>(i)];
    i32 len = 1;
    while (i + len < n && data[static_cast<size_t>(i + len)] == v && len < 255) ++len;
    chk = jadd(jmul(chk, 31), v);
    chk = jadd(jmul(chk, 31), len);
    ++runs;
    i += len;
  }
  return chk ^ runs;
}

// --------------------------------------------------------------------- jess

SpecWorkload makeJess() {
  SpecWorkload wl;
  wl.name = "jess";
  wl.main_class = "jess/Main";
  wl.default_size = 400;  // rule-matching iterations

  {
    ClassBuilder cb("jess/Fact");
    cb.field("type", "I");
    cb.field("value", "I");
    wl.classes.push_back(cb.build());
  }
  ClassBuilder cb(wl.main_class);
  auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
  // locals: 0=iters 1=facts 2=seed 3=i 4=fact 5=it 6=fired 7=chk
  const i32 kFacts = 200;
  m.iconst(kFacts).anewarray("jess/Fact").astore(1);
  m.iconst(98765).istore(2);
  m.iconst(0).istore(3);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(3).iconst(kFacts).ifIcmpGe(out);
    m.iload(2).iconst(1103515245).imul().iconst(12345).iadd().istore(2);
    m.newDefault("jess/Fact").astore(4);
    m.aload(4).iload(2).iconst(16).iushr().iconst(7).iand().putfield("jess/Fact", "type", "I");
    m.aload(4).iload(2).iconst(8).iushr().iconst(100).irem().putfield("jess/Fact", "value", "I");
    m.aload(1).iload(3).aload(4).aastore();
    m.iinc(3, 1).gotoLabel(head);
    m.bind(out);
  }
  m.iconst(0).istore(6);
  m.iconst(0).istore(5);
  {
    Label it_head = m.newLabel(), it_out = m.newLabel();
    m.bind(it_head).iload(5).iload(0).ifIcmpGe(it_out);
    m.iconst(0).istore(3);
    Label f_head = m.newLabel(), f_out = m.newLabel();
    m.bind(f_head).iload(3).iconst(kFacts).ifIcmpGe(f_out);
    m.aload(1).iload(3).aaload().astore(4);
    // rule 1: type == it%8 && value > 50  -> value--, fired++
    Label rule2 = m.newLabel(), next = m.newLabel();
    m.aload(4).getfield("jess/Fact", "type", "I");
    m.iload(5).iconst(8).irem().ifIcmpNe(rule2);
    m.aload(4).getfield("jess/Fact", "value", "I").iconst(50).ifIcmpLe(rule2);
    m.aload(4).aload(4).getfield("jess/Fact", "value", "I").iconst(1).isub();
    m.putfield("jess/Fact", "value", "I");
    m.iinc(6, 1).gotoLabel(next);
    // rule 2: type == (it+1)%8 && value < 50 -> value++, fired += 2
    m.bind(rule2);
    m.aload(4).getfield("jess/Fact", "type", "I");
    m.iload(5).iconst(1).iadd().iconst(8).irem().ifIcmpNe(next);
    m.aload(4).getfield("jess/Fact", "value", "I").iconst(50).ifIcmpGe(next);
    m.aload(4).aload(4).getfield("jess/Fact", "value", "I").iconst(1).iadd();
    m.putfield("jess/Fact", "value", "I");
    m.iinc(6, 2);
    m.bind(next).iinc(3, 1).gotoLabel(f_head);
    m.bind(f_out).iinc(5, 1).gotoLabel(it_head);
    m.bind(it_out);
  }
  m.iconst(0).istore(7);
  m.iconst(0).istore(3);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(3).iconst(kFacts).ifIcmpGe(out);
    m.iload(7).iconst(31).imul();
    m.aload(1).iload(3).aaload().getfield("jess/Fact", "value", "I").iadd().istore(7);
    m.iinc(3, 1).gotoLabel(head);
    m.bind(out);
  }
  m.iload(7).iload(6).ixor().ireturn();
  wl.classes.push_back(cb.build());
  return wl;
}

// ----------------------------------------------------------------------- db

SpecWorkload makeDb() {
  SpecWorkload wl;
  wl.name = "db";
  wl.main_class = "db/Main";
  wl.default_size = 3000;  // operations

  {
    ClassBuilder cb("db/Record");
    cb.field("id", "I");
    cb.field("balance", "I");
    cb.field("name", "Ljava/lang/String;");
    wl.classes.push_back(cb.build());
  }
  ClassBuilder cb(wl.main_class);
  const i32 kRecords = 64;
  auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
  // locals: 0=ops 1=records 2=op 3=i 4=rec 5=id 6=j 7=tmpRec 8=chk
  m.iconst(kRecords).anewarray("db/Record").astore(1);
  m.iconst(0).istore(3);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(3).iconst(kRecords).ifIcmpGe(out);
    m.newDefault("db/Record").astore(4);
    m.aload(4).iload(3).putfield("db/Record", "id", "I");
    m.aload(4).iload(3).iconst(37).imul().iconst(100).irem();
    m.putfield("db/Record", "balance", "I");
    m.aload(4).iload(3).iconst(7).imul();
    m.invokestatic("java/lang/Integer", "toString", "(I)Ljava/lang/String;");
    m.putfield("db/Record", "name", "Ljava/lang/String;");
    m.aload(1).iload(3).aload(4).aastore();
    m.iinc(3, 1).gotoLabel(head);
    m.bind(out);
  }
  m.iconst(0).istore(2);
  {
    Label op_head = m.newLabel(), op_out = m.newLabel();
    m.bind(op_head).iload(2).iload(0).ifIcmpGe(op_out);
    m.iload(2).iconst(31).imul().iconst(kRecords).irem().istore(5);
    // linear lookup by id field
    m.iconst(0).istore(3);
    Label s_head = m.newLabel(), s_out = m.newLabel(), s_next = m.newLabel();
    m.bind(s_head).iload(3).iconst(kRecords).ifIcmpGe(s_out);
    m.aload(1).iload(3).aaload().astore(4);
    m.aload(4).getfield("db/Record", "id", "I").iload(5).ifIcmpNe(s_next);
    m.aload(4).aload(4).getfield("db/Record", "balance", "I");
    m.iload(2).iconst(17).irem().iconst(8).isub().iadd();
    m.putfield("db/Record", "balance", "I");
    m.gotoLabel(s_out);
    m.bind(s_next).iinc(3, 1).gotoLabel(s_head);
    m.bind(s_out);
    // periodic bubble sort by balance (ascending)
    Label no_sort = m.newLabel();
    m.iload(2).iconst(64).irem().ifne(no_sort);
    {
      // for i in 0..n-1: for j in 0..n-2-i: if a[j].bal > a[j+1].bal swap
      Label i_head = m.newLabel(), i_out = m.newLabel();
      m.iconst(0).istore(3);
      m.bind(i_head).iload(3).iconst(kRecords - 1).ifIcmpGe(i_out);
      m.iconst(0).istore(6);
      Label j_head = m.newLabel(), j_out = m.newLabel(), no_swap = m.newLabel();
      m.bind(j_head);
      m.iload(6).iconst(kRecords - 1).iload(3).isub().ifIcmpGe(j_out);
      m.aload(1).iload(6).aaload().getfield("db/Record", "balance", "I");
      m.aload(1).iload(6).iconst(1).iadd().aaload().getfield("db/Record", "balance", "I");
      m.ifIcmpLe(no_swap);
      m.aload(1).iload(6).aaload().astore(7);
      m.aload(1).iload(6);
      m.aload(1).iload(6).iconst(1).iadd().aaload();
      m.aastore();
      m.aload(1).iload(6).iconst(1).iadd().aload(7).aastore();
      m.bind(no_swap).iinc(6, 1).gotoLabel(j_head);
      m.bind(j_out).iinc(3, 1).gotoLabel(i_head);
      m.bind(i_out);
    }
    m.bind(no_sort).iinc(2, 1).gotoLabel(op_head);
    m.bind(op_out);
  }
  // checksum
  m.iconst(0).istore(8);
  m.iconst(0).istore(3);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(3).iconst(kRecords).ifIcmpGe(out);
    m.iload(8).iconst(31).imul();
    m.aload(1).iload(3).aaload().getfield("db/Record", "balance", "I").iadd().istore(8);
    m.iinc(3, 1).gotoLabel(head);
    m.bind(out);
  }
  m.iload(8);
  m.aload(1).iconst(0).aaload().getfield("db/Record", "name", "Ljava/lang/String;");
  m.invokevirtual("java/lang/String", "hashCode", "()I");
  m.iadd().ireturn();
  wl.classes.push_back(cb.build());
  return wl;
}

i32 referenceDb(i32 ops) {
  const i32 n = 64;
  struct Rec {
    i32 id, balance;
    std::string name;
  };
  std::vector<Rec> recs;
  for (i32 i = 0; i < n; ++i) {
    recs.push_back(Rec{i, jmul(i, 37) % 100, strf("%d", jmul(i, 7))});
  }
  for (i32 op = 0; op < ops; ++op) {
    i32 id = jmul(op, 31) % n;
    for (i32 i = 0; i < n; ++i) {
      if (recs[static_cast<size_t>(i)].id == id) {
        recs[static_cast<size_t>(i)].balance =
            jadd(recs[static_cast<size_t>(i)].balance, op % 17 - 8);
        break;
      }
    }
    if (op % 64 == 0) {
      for (i32 i = 0; i < n - 1; ++i) {
        for (i32 j = 0; j < n - 1 - i; ++j) {
          if (recs[static_cast<size_t>(j)].balance >
              recs[static_cast<size_t>(j + 1)].balance) {
            std::swap(recs[static_cast<size_t>(j)], recs[static_cast<size_t>(j + 1)]);
          }
        }
      }
    }
  }
  i32 chk = 0;
  for (i32 i = 0; i < n; ++i) {
    chk = jadd(jmul(chk, 31), recs[static_cast<size_t>(i)].balance);
  }
  return jadd(chk, jhash(recs[0].name));
}

// -------------------------------------------------------------------- javac

SpecWorkload makeJavac() {
  SpecWorkload wl;
  wl.name = "javac";
  wl.main_class = "javac/Main";
  wl.default_size = 300;  // expressions parsed

  ClassBuilder cb(wl.main_class);
  cb.field("src", "Ljava/lang/String;", ACC_STATIC | ACC_PUBLIC);
  cb.field("pos", "I", ACC_STATIC | ACC_PUBLIC);

  // gen(it): "(d+d*d+d)*(d+d*d+d)..." -- balanced groups of four digits.
  {
    auto& g = cb.method("gen", "(I)Ljava/lang/String;", ACC_PUBLIC | ACC_STATIC);
    // locals: 0=it 1=sb 2=k
    g.newDefault("java/lang/StringBuilder").astore(1);
    g.iconst(0).istore(2);
    Label head = g.newLabel(), out = g.newLabel();
    g.bind(head).iload(2).iconst(16).ifIcmpGe(out);
    Label no_open = g.newLabel();
    g.iload(2).iconst(4).irem().ifne(no_open);
    g.aload(1).iconst('(').invokevirtual("java/lang/StringBuilder", "appendChar",
                                         "(I)Ljava/lang/StringBuilder;").pop();
    g.bind(no_open);
    g.aload(1);
    g.iload(0).iconst(7).imul().iload(2).iconst(3).imul().iadd().iconst(10).irem();
    g.invokevirtual("java/lang/StringBuilder", "appendInt",
                    "(I)Ljava/lang/StringBuilder;").pop();
    Label no_close = g.newLabel();
    g.iload(2).iconst(4).irem().iconst(3).ifIcmpNe(no_close);
    g.aload(1).iconst(')').invokevirtual("java/lang/StringBuilder", "appendChar",
                                         "(I)Ljava/lang/StringBuilder;").pop();
    g.bind(no_close);
    Label no_op = g.newLabel(), star = g.newLabel(), op_done = g.newLabel();
    g.iload(2).iconst(15).ifIcmpGe(no_op);
    g.iload(2).iconst(2).irem().ifne(star);
    g.aload(1).iconst('+').invokevirtual("java/lang/StringBuilder", "appendChar",
                                         "(I)Ljava/lang/StringBuilder;").pop();
    g.gotoLabel(op_done);
    g.bind(star);
    g.aload(1).iconst('*').invokevirtual("java/lang/StringBuilder", "appendChar",
                                         "(I)Ljava/lang/StringBuilder;").pop();
    g.bind(op_done);
    g.bind(no_op).iinc(2, 1).gotoLabel(head);
    g.bind(out);
    g.aload(1).invokevirtual("java/lang/StringBuilder", "toString",
                             "()Ljava/lang/String;").areturn();
  }

  const char* cls = "javac/Main";
  auto emit_pos_inc = [cls](MethodBuilder& b) {
    b.getstatic(cls, "pos", "I").iconst(1).iadd().putstatic(cls, "pos", "I");
  };

  // factor(): '(' expr ')' | digit
  {
    auto& f = cb.method("factor", "()I", ACC_PUBLIC | ACC_STATIC);
    // locals: 0=c 1=v
    f.getstatic(cls, "src", "Ljava/lang/String;").getstatic(cls, "pos", "I");
    f.invokevirtual("java/lang/String", "charAt", "(I)I").istore(0);
    Label digit = f.newLabel();
    f.iload(0).iconst('(').ifIcmpNe(digit);
    emit_pos_inc(f);
    f.invokestatic(cls, "expr", "()I").istore(1);
    emit_pos_inc(f);  // skip ')'
    f.iload(1).ireturn();
    f.bind(digit);
    emit_pos_inc(f);
    f.iload(0).iconst('0').isub().ireturn();
  }
  // term(): factor ('*' factor)*
  {
    auto& t = cb.method("term", "()I", ACC_PUBLIC | ACC_STATIC);
    // locals: 0=v
    t.invokestatic(cls, "factor", "()I").istore(0);
    Label head = t.newLabel(), out = t.newLabel();
    t.bind(head);
    t.getstatic(cls, "pos", "I");
    t.getstatic(cls, "src", "Ljava/lang/String;");
    t.invokevirtual("java/lang/String", "length", "()I").ifIcmpGe(out);
    t.getstatic(cls, "src", "Ljava/lang/String;").getstatic(cls, "pos", "I");
    t.invokevirtual("java/lang/String", "charAt", "(I)I");
    t.iconst('*').ifIcmpNe(out);
    emit_pos_inc(t);
    t.iload(0).invokestatic(cls, "factor", "()I").imul().istore(0);
    t.gotoLabel(head);
    t.bind(out).iload(0).ireturn();
  }
  // expr(): term (('+'|'-') term)*
  {
    auto& e = cb.method("expr", "()I", ACC_PUBLIC | ACC_STATIC);
    // locals: 0=v 1=c
    e.invokestatic(cls, "term", "()I").istore(0);
    Label head = e.newLabel(), out = e.newLabel(), minus = e.newLabel();
    e.bind(head);
    e.getstatic(cls, "pos", "I");
    e.getstatic(cls, "src", "Ljava/lang/String;");
    e.invokevirtual("java/lang/String", "length", "()I").ifIcmpGe(out);
    e.getstatic(cls, "src", "Ljava/lang/String;").getstatic(cls, "pos", "I");
    e.invokevirtual("java/lang/String", "charAt", "(I)I").istore(1);
    e.iload(1).iconst('+').ifIcmpNe(minus);
    emit_pos_inc(e);
    e.iload(0).invokestatic(cls, "term", "()I").iadd().istore(0);
    e.gotoLabel(head);
    e.bind(minus);
    e.iload(1).iconst('-').ifIcmpNe(out);
    emit_pos_inc(e);
    e.iload(0).invokestatic(cls, "term", "()I").isub().istore(0);
    e.gotoLabel(head);
    e.bind(out).iload(0).ireturn();
  }
  // run(iters): parse `iters` generated expressions.
  {
    auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
    // locals: 0=iters 1=chk 2=it
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(2).iload(0).ifIcmpGe(out);
    m.iload(2).invokestatic(cls, "gen", "(I)Ljava/lang/String;");
    m.putstatic(cls, "src", "Ljava/lang/String;");
    m.iconst(0).putstatic(cls, "pos", "I");
    m.iload(1).iconst(31).imul().invokestatic(cls, "expr", "()I").iadd().istore(1);
    m.iinc(2, 1).gotoLabel(head);
    m.bind(out).iload(1).ireturn();
  }
  wl.classes.push_back(cb.build());
  return wl;
}

// ---------------------------------------------------------------- mpegaudio

SpecWorkload makeMpegaudio() {
  SpecWorkload wl;
  wl.name = "mpegaudio";
  wl.main_class = "mpegaudio/Main";
  wl.default_size = 8;  // frames

  ClassBuilder cb(wl.main_class);
  auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
  // locals: 0=frames 1=window 2=samples 3=f 4=i 5=j 6=acc(D) 7=s(D)
  const i32 kN = 512, kTaps = 32;
  m.iconst(kN).newarray(Kind::Double).astore(1);
  m.iconst(kN).newarray(Kind::Double).astore(2);
  m.iconst(0).istore(4);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(4).iconst(kN).ifIcmpGe(out);
    m.aload(1).iload(4);
    m.iload(4).i2d().dconst(0.03).dmul();
    m.invokestatic("java/lang/Math", "sin", "(D)D");
    m.dastore();
    m.iinc(4, 1).gotoLabel(head);
    m.bind(out);
  }
  m.dconst(0.0).dstore(6);
  m.iconst(0).istore(3);
  {
    Label f_head = m.newLabel(), f_out = m.newLabel();
    m.bind(f_head).iload(3).iload(0).ifIcmpGe(f_out);
    // refill samples
    m.iconst(0).istore(4);
    {
      Label head = m.newLabel(), out = m.newLabel();
      m.bind(head).iload(4).iconst(kN).ifIcmpGe(out);
      m.aload(2).iload(4);
      m.iload(4).i2d().dconst(0.001).dmul();
      m.iload(3).iconst(1).iadd().i2d().dmul();
      m.invokestatic("java/lang/Math", "sin", "(D)D");
      m.dastore();
      m.iinc(4, 1).gotoLabel(head);
      m.bind(out);
    }
    // FIR filter
    m.iconst(0).istore(4);
    {
      Label i_head = m.newLabel(), i_out = m.newLabel();
      m.bind(i_head).iload(4).iconst(kN - kTaps).ifIcmpGe(i_out);
      m.dconst(0.0).dstore(7);
      m.iconst(0).istore(5);
      Label j_head = m.newLabel(), j_out = m.newLabel();
      m.bind(j_head).iload(5).iconst(kTaps).ifIcmpGe(j_out);
      m.dload(7);
      m.aload(2).iload(4).iload(5).iadd().daload();
      m.aload(1).iload(5).daload();
      m.dmul().dadd().dstore(7);
      m.iinc(5, 1).gotoLabel(j_head);
      m.bind(j_out);
      m.dload(6).dload(7).dadd().dstore(6);
      m.iinc(4, 1).gotoLabel(i_head);
      m.bind(i_out);
    }
    m.iinc(3, 1).gotoLabel(f_head);
    m.bind(f_out);
  }
  m.dload(6).dconst(1000.0).dmul().d2i().ireturn();
  wl.classes.push_back(cb.build());
  return wl;
}

// --------------------------------------------------------------------- mtrt

SpecWorkload makeMtrt() {
  SpecWorkload wl;
  wl.name = "mtrt";
  wl.main_class = "mtrt/Main";
  wl.default_size = 4096;  // pixels per thread

  // Tracer: half of the image per thread.
  {
    ClassBuilder cb("mtrt/Tracer");
    cb.addInterface("java/lang/Runnable");
    cb.field("from", "I");
    cb.field("to", "I");
    cb.field("out", "[I");
    auto& ctor = cb.method("<init>", "(II[I)V");
    ctor.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    ctor.aload(0).iload(1).putfield("mtrt/Tracer", "from", "I");
    ctor.aload(0).iload(2).putfield("mtrt/Tracer", "to", "I");
    ctor.aload(0).aload(3).putfield("mtrt/Tracer", "out", "[I");
    ctor.ret();

    auto& run = cb.method("run", "()V");
    // locals: 0=this 1=p 2=spheres 3=hits 4=s 5=px 6=py 7=dx 8=dy 9=r 10=outArr
    run.getstatic("mtrt/Main", "spheres", "[D").astore(2);
    run.aload(0).getfield("mtrt/Tracer", "out", "[I").astore(10);
    run.aload(0).getfield("mtrt/Tracer", "from", "I").istore(1);
    Label p_head = run.newLabel(), p_out = run.newLabel();
    run.bind(p_head);
    run.iload(1).aload(0).getfield("mtrt/Tracer", "to", "I").ifIcmpGe(p_out);
    run.iload(1).iconst(64).irem().i2d().dconst(0.1).dmul().dconst(3.2).dsub().dstore(5);
    run.iload(1).iconst(64).idiv().i2d().dconst(0.1).dmul().dconst(3.2).dsub().dstore(6);
    run.iconst(0).istore(3);
    run.iconst(0).istore(4);
    Label s_head = run.newLabel(), s_out = run.newLabel(), no_hit = run.newLabel();
    run.bind(s_head).iload(4).iconst(16).ifIcmpGe(s_out);
    run.dload(5).aload(2).iload(4).iconst(3).imul().daload().dsub().dstore(7);
    run.dload(6).aload(2).iload(4).iconst(3).imul().iconst(1).iadd().daload().dsub().dstore(8);
    run.aload(2).iload(4).iconst(3).imul().iconst(2).iadd().daload().dstore(9);
    run.dload(7).dload(7).dmul().dload(8).dload(8).dmul().dadd();
    run.dload(9).dload(9).dmul();
    run.dcmpg().ifgt(no_hit);
    run.iinc(3, 1);
    run.bind(no_hit).iinc(4, 1).gotoLabel(s_head);
    run.bind(s_out);
    run.aload(10).iload(1).iload(3).iastore();
    run.iinc(1, 1).gotoLabel(p_head);
    run.bind(p_out).ret();
    wl.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(wl.main_class);
    cb.field("spheres", "[D", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
    // locals: 0=pixels 1=out 2=s 3=t1 4=t2 5=chk 6=i 7=spheres
    m.iconst(48).newarray(Kind::Double).astore(7);
    m.iconst(0).istore(2);
    {
      Label head = m.newLabel(), out = m.newLabel();
      m.bind(head).iload(2).iconst(16).ifIcmpGe(out);
      m.aload(7).iload(2).iconst(3).imul();
      m.iload(2).i2d().invokestatic("java/lang/Math", "sin", "(D)D");
      m.dconst(3.0).dmul().dastore();
      m.aload(7).iload(2).iconst(3).imul().iconst(1).iadd();
      m.iload(2).i2d().invokestatic("java/lang/Math", "cos", "(D)D");
      m.dconst(3.0).dmul().dastore();
      m.aload(7).iload(2).iconst(3).imul().iconst(2).iadd();
      m.dconst(0.5).iload(2).iconst(4).irem().i2d().dconst(0.3).dmul().dadd().dastore();
      m.iinc(2, 1).gotoLabel(head);
      m.bind(out);
    }
    m.aload(7).putstatic("mtrt/Main", "spheres", "[D");
    m.iload(0).iconst(2).imul().newarray(Kind::Int).astore(1);
    // two tracer threads
    m.newObject("java/lang/Thread").dup();
    m.newObject("mtrt/Tracer").dup().iconst(0).iload(0).aload(1);
    m.invokespecial("mtrt/Tracer", "<init>", "(II[I)V");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.astore(3);
    m.newObject("java/lang/Thread").dup();
    m.newObject("mtrt/Tracer").dup().iload(0).iload(0).iconst(2).imul().aload(1);
    m.invokespecial("mtrt/Tracer", "<init>", "(II[I)V");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.astore(4);
    m.aload(3).invokevirtual("java/lang/Thread", "start", "()V");
    m.aload(4).invokevirtual("java/lang/Thread", "start", "()V");
    m.aload(3).invokevirtual("java/lang/Thread", "join", "()V");
    m.aload(4).invokevirtual("java/lang/Thread", "join", "()V");
    // checksum
    m.iconst(0).istore(5);
    m.iconst(0).istore(6);
    {
      Label head = m.newLabel(), out = m.newLabel();
      m.bind(head).iload(6).iload(0).iconst(2).imul().ifIcmpGe(out);
      m.iload(5).iconst(31).imul().aload(1).iload(6).iaload().iadd().istore(5);
      m.iinc(6, 1).gotoLabel(head);
      m.bind(out);
    }
    m.iload(5).ireturn();
    wl.classes.push_back(cb.build());
  }
  return wl;
}

// --------------------------------------------------------------------- jack

SpecWorkload makeJack() {
  SpecWorkload wl;
  wl.name = "jack";
  wl.main_class = "jack/Main";
  wl.default_size = 250;  // generated documents

  ClassBuilder cb(wl.main_class);
  auto& m = cb.method("run", "(I)I", ACC_PUBLIC | ACC_STATIC);
  // locals: 0=iters 1=chk 2=it 3=sb 4=k 5=s
  m.iconst(0).istore(1);
  m.iconst(0).istore(2);
  Label it_head = m.newLabel(), it_out = m.newLabel();
  m.bind(it_head).iload(2).iload(0).ifIcmpGe(it_out);
  m.newDefault("java/lang/StringBuilder").astore(3);
  m.iconst(0).istore(4);
  {
    Label head = m.newLabel(), out = m.newLabel();
    m.bind(head).iload(4).iconst(64).ifIcmpGe(out);
    m.aload(3).ldcStr("tok");
    m.invokevirtual("java/lang/StringBuilder", "append",
                    "(Ljava/lang/String;)Ljava/lang/StringBuilder;");
    m.iload(4).iload(2).imul().iconst(10).irem();
    m.invokevirtual("java/lang/StringBuilder", "appendInt",
                    "(I)Ljava/lang/StringBuilder;");
    m.iconst(';');
    m.invokevirtual("java/lang/StringBuilder", "appendChar",
                    "(I)Ljava/lang/StringBuilder;");
    m.pop();
    m.iinc(4, 1).gotoLabel(head);
    m.bind(out);
  }
  m.aload(3).invokevirtual("java/lang/StringBuilder", "toString",
                           "()Ljava/lang/String;").astore(5);
  m.iload(1).iconst(31).imul();
  m.aload(5).invokevirtual("java/lang/String", "hashCode", "()I").iadd();
  m.aload(5).invokevirtual("java/lang/String", "length", "()I").iadd().istore(1);
  m.iinc(2, 1).gotoLabel(it_head);
  m.bind(it_out).iload(1).ireturn();
  wl.classes.push_back(cb.build());
  return wl;
}

std::vector<SpecWorkload> specWorkloads() {
  std::vector<SpecWorkload> out;
  out.push_back(makeCompress());
  out.push_back(makeJess());
  out.push_back(makeDb());
  out.push_back(makeJavac());
  out.push_back(makeMpegaudio());
  out.push_back(makeMtrt());
  out.push_back(makeJack());
  return out;
}

i32 runSpecWorkload(VM& vm, JThread* t, ClassLoader* loader,
                    const SpecWorkload& wl, i32 size) {
  if (loader->findLocal(wl.main_class) == nullptr) {
    for (const ClassDef& def : wl.classes) {
      loader->define(ClassDef(def));
    }
  }
  Value r = vm.callStaticIn(t, loader, wl.main_class, "run", "(I)I",
                            {Value::ofInt(size)});
  IJVM_CHECK(t->pending_exception == nullptr,
             strf("%s failed: %s", wl.name.c_str(), vm.pendingMessage(t).c_str()));
  return r.asInt();
}

}  // namespace ijvm
