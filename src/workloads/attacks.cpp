#include "workloads/attacks.h"

#include <chrono>
#include <memory>
#include <thread>

#include "bytecode/builder.h"
#include "heap/object.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "support/strf.h"

namespace ijvm {

const char* attackName(AttackId id) {
  switch (id) {
    case AttackId::A1_StaticMutation:
      return "A1";
    case AttackId::A2_SharedLock:
      return "A2";
    case AttackId::A3_MemoryExhaustion:
      return "A3";
    case AttackId::A4_ExcessiveGc:
      return "A4";
    case AttackId::A5_ThreadCreation:
      return "A5";
    case AttackId::A6_InfiniteLoop:
      return "A6";
    case AttackId::A7_HangingThread:
      return "A7";
    case AttackId::A8_NoTermination:
      return "A8";
  }
  return "?";
}

const char* attackTitle(AttackId id) {
  switch (id) {
    case AttackId::A1_StaticMutation:
      return "modification of a static variable";
    case AttackId::A2_SharedLock:
      return "synchronized lock on a shared object";
    case AttackId::A3_MemoryExhaustion:
      return "memory exhaustion";
    case AttackId::A4_ExcessiveGc:
      return "excessive object creation (GC thrashing)";
    case AttackId::A5_ThreadCreation:
      return "recursive thread creation";
    case AttackId::A6_InfiniteLoop:
      return "standalone infinite loop";
    case AttackId::A7_HangingThread:
      return "hanging thread";
    case AttackId::A8_NoTermination:
      return "lack of termination support";
  }
  return "?";
}

namespace {

using namespace std::chrono;

// A guest call running on its own thread; observable after a timeout (the
// hanging-thread attacks need "did it ever come back?").
struct PendingCall {
  std::shared_ptr<std::atomic<bool>> done = std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<i32>> value = std::make_shared<std::atomic<i32>>(0);
  std::shared_ptr<std::atomic<bool>> threw = std::make_shared<std::atomic<bool>>(false);

  bool waitFor(i64 ms) const {
    auto deadline = steady_clock::now() + milliseconds(ms);
    while (!done->load(std::memory_order_acquire)) {
      if (steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(milliseconds(1));
    }
    return true;
  }
};

// One self-contained attack platform.
struct Platform {
  Platform(bool isolated, ExecEngine engine, const VmOptionsTweak& tweak)
      : isolated_mode(isolated) {
    VmOptions opts = isolated ? VmOptions::isolated() : VmOptions::shared();
    opts.exec_engine = engine;
    opts.gc_threshold = 512u << 10;
    opts.heap_limit = 32u << 20;
    opts.host_thread_cap = 48;
    if (isolated) {
      opts.isolate_memory_limit = 6u << 20;
      opts.isolate_thread_limit = 8;
      opts.sampler_period_us = 500;
    }
    if (tweak) tweak(opts);
    vm = std::make_unique<VM>(opts);
    installSystemLibrary(*vm);
    FrameworkOptions fopts;
    fopts.activator_timeout_ms = 500;
    fw = std::make_unique<Framework>(*vm, fopts);
  }

  ~Platform() {
    vm->shutdownAllThreads();
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
    fw.reset();
    vm.reset();
  }

  PendingCall callAsync(ClassLoader* loader, const std::string& cls,
                        const std::string& method, const std::string& desc,
                        std::vector<Value> args) {
    PendingCall pc;
    JThread* t = vm->attachThread("attack-call", fw->frameworkIsolate());
    VM* vmp = vm.get();
    threads.emplace_back([vmp, t, loader, cls, method, desc,
                          args = std::move(args), pc]() mutable {
      Value r = vmp->callStaticIn(t, loader, cls, method, desc, std::move(args));
      pc.threw->store(t->pending_exception != nullptr, std::memory_order_release);
      t->pending_exception = nullptr;
      pc.value->store(r.kind == Kind::Int ? r.asInt() : 0, std::memory_order_release);
      pc.done->store(true, std::memory_order_release);
      vmp->detachThread(t);
    });
    return pc;
  }

  // Synchronous call with timeout. Returns {completed, value}.
  std::pair<bool, i32> call(ClassLoader* loader, const std::string& cls,
                            const std::string& method, const std::string& desc,
                            std::vector<Value> args, i64 timeout_ms = 3000) {
    PendingCall pc = callAsync(loader, cls, method, desc, std::move(args));
    bool ok = pc.waitFor(timeout_ms);
    return {ok, pc.value->load(std::memory_order_acquire)};
  }

  // Admin view: the isolate with the highest value of `metric`, excluding
  // Isolate0 (the paper's administrator looks at per-bundle statistics).
  Isolate* worstIsolate(const std::function<u64(const IsolateReport&)>& metric) {
    Isolate* worst = nullptr;
    u64 worst_v = 0;
    for (Isolate* iso : vm->isolates()) {
      if (iso->privileged) continue;
      IsolateReport r = vm->reportFor(iso);
      u64 v = metric(r);
      if (worst == nullptr || v > worst_v) {
        worst = iso;
        worst_v = v;
      }
    }
    return worst;
  }

  bool killByIsolate(Isolate* iso) {
    Bundle* b = nullptr;
    for (Bundle* candidate : fw->bundles()) {
      if (candidate->isolate() == iso) b = candidate;
    }
    if (b == nullptr) return false;
    if (!isolated_mode) {
      // The baseline cannot terminate: model the failed unload.
      return vm->terminateIsolate(vm->mainThread(), iso);
    }
    fw->killBundle(b);
    return true;
  }

  const bool isolated_mode;
  std::unique_ptr<VM> vm;
  std::unique_ptr<Framework> fw;
  std::vector<std::thread> threads;
};

void sleepMs(i64 ms) { std::this_thread::sleep_for(milliseconds(ms)); }

// Spin until `pred` or deadline.
bool waitUntil(i64 ms, const std::function<bool()>& pred) {
  auto deadline = steady_clock::now() + milliseconds(ms);
  while (!pred()) {
    if (steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

// -------------------------------------------------------- guest builders

// A runnable class whose run() body is provided by `body` (body must end
// with a terminator; `this` is local 0).
ClassDef makeRunnable(const std::string& name,
                      const std::function<void(MethodBuilder&)>& body) {
  ClassBuilder cb(name);
  cb.addInterface("java/lang/Runnable");
  auto& run = cb.method("run", "()V");
  body(run);
  return cb.build();
}

// Activator that spawns one thread running `runnable_cls` on start.
ClassDef makeSpawningActivator(const std::string& name,
                               const std::string& runnable_cls) {
  ClassBuilder cb(name);
  cb.addInterface("osgi/BundleActivator");
  auto& start = cb.method("start", "(Losgi/BundleContext;)V");
  start.newObject("java/lang/Thread").dup();
  start.newDefault(runnable_cls);
  start.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
  start.invokevirtual("java/lang/Thread", "start", "()V");
  start.ret();
  cb.method("stop", "(Losgi/BundleContext;)V").ret();
  return cb.build();
}

ClassDef makeNoopActivator(const std::string& name) {
  ClassBuilder cb(name);
  cb.addInterface("osgi/BundleActivator");
  cb.method("start", "(Losgi/BundleContext;)V").ret();
  cb.method("stop", "(Losgi/BundleContext;)V").ret();
  return cb.build();
}

// ------------------------------------------------------------ A1

AttackOutcome attackA1(Platform& p) {
  AttackOutcome out;
  // Shared library class with a public static (an "exported package").
  {
    ClassBuilder cb("lib/Shared");
    cb.field("arr", "[I", ACC_PUBLIC | ACC_STATIC);
    p.fw->frameworkIsolate()->loader->define(cb.build());
  }
  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("vic/Main");
    auto& setup = cb.method("setup", "()V", ACC_PUBLIC | ACC_STATIC);
    // lib/Shared.arr = new int[4] {7,7,7,7}
    setup.iconst(4).newarray(Kind::Int).astore(0);
    for (i32 i = 0; i < 4; ++i) {
      setup.aload(0).iconst(i).iconst(7).iastore();
    }
    setup.aload(0).putstatic("lib/Shared", "arr", "[I");
    setup.ret();
    auto& check = cb.method("check", "()I", ACC_PUBLIC | ACC_STATIC);
    Label null_lbl = check.newLabel();
    check.getstatic("lib/Shared", "arr", "[I").dup().ifNull(null_lbl);
    check.iconst(0).iaload().ireturn();
    check.bind(null_lbl).pop().iconst(-1).ireturn();
    victim.classes.push_back(cb.build());
  }
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  {
    ClassBuilder cb("atk/Main");
    auto& attack = cb.method("attack", "()V", ACC_PUBLIC | ACC_STATIC);
    // Paper A1: the malicious bundle sets the shared static to null.
    attack.aconstNull().putstatic("lib/Shared", "arr", "[I");
    attack.ret();
    attacker.classes.push_back(cb.build());
  }
  Bundle* vb = p.fw->install(std::move(victim));
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(vb);
  p.fw->start(ab);

  auto [ok1, _] = p.call(vb->loader(), "vic/Main", "setup", "()V", {});
  auto [ok2, __] = p.call(ab->loader(), "atk/Main", "attack", "()V", {});
  auto [ok3, seen] = p.call(vb->loader(), "vic/Main", "check", "()I", {});
  out.victim_unaffected = ok1 && ok2 && ok3 && seen == 7;
  out.attacker_identified = p.isolated_mode;  // contained by design, not stats
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  out.detail = out.victim_unaffected
                   ? "victim still sees its own static copy (value 7)"
                   : strf("victim observed corrupted static (check=%d)", seen);
  return out;
}

// ------------------------------------------------------------ A2

AttackOutcome attackA2(Platform& p) {
  AttackOutcome out;
  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("vic/Ping");
    auto& ping = cb.method("ping", "()I", ACC_PUBLIC | ACC_STATIC);
    // synchronized ("GLOBAL_LOCK") { return 1; }
    ping.ldcStr("GLOBAL_LOCK").astore(0);
    ping.aload(0).monitorenter();
    ping.aload(0).monitorexit();
    ping.iconst(1).ireturn();
    victim.classes.push_back(cb.build());
  }
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  attacker.classes.push_back(makeRunnable("atk/Hold", [](MethodBuilder& run) {
    // Grab the interned string's monitor and hold it "forever".
    run.ldcStr("GLOBAL_LOCK").monitorenter();
    run.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.ret();
  }));
  attacker.classes.push_back(makeSpawningActivator("atk/Activator", "atk/Hold"));
  attacker.activator = "atk/Activator";

  Bundle* vb = p.fw->install(std::move(victim));
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(vb);
  p.fw->start(ab);  // spawns the holder thread

  // Wait until the holder is parked in sleep while owning the monitor.
  waitUntil(2000, [&] { return ab->isolate()->stats.sleeping_threads.load() > 0; });

  auto [completed, v] = p.call(vb->loader(), "vic/Ping", "ping", "()I", {}, 500);
  out.victim_unaffected = completed && v == 1;
  out.attacker_identified =
      p.isolated_mode && ab->isolate()->stats.sleeping_threads.load() > 0;
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  out.detail = out.victim_unaffected
                   ? "victim locked its own interned string; no interference"
                   : "victim blocked on the shared interned string's monitor";
  return out;
}

// ------------------------------------------------------------ A3

AttackOutcome attackA3(Platform& p) {
  AttackOutcome out;
  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("vic/Alloc");
    // The victim needs a modest 256 KiB working buffer -- fine normally,
    // impossible once the hog has filled the heap ("all bundles get an
    // OutOfMemoryError when allocating a new object").
    auto& m = cb.method("tryAlloc", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.iconst(65536).newarray(Kind::Int).astore(0);
    m.bind(to).iconst(1).ireturn();
    m.bind(handler).pop().iconst(-1).ireturn();
    m.handler(from, to, handler, "java/lang/OutOfMemoryError");
    victim.classes.push_back(cb.build());
  }
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  {
    ClassBuilder cb("atk/Mem");
    cb.field("sink", "Ljava/util/ArrayList;", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("grab", "()I", ACC_PUBLIC | ACC_STATIC);
    // sink = new ArrayList(); while (true) sink.add(new int[16384]);
    m.newDefault("java/util/ArrayList").putstatic("atk/Mem", "sink",
                                                  "Ljava/util/ArrayList;");
    m.iconst(0).istore(0);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    Label loop = m.newLabel();
    m.bind(from);
    m.bind(loop);
    m.getstatic("atk/Mem", "sink", "Ljava/util/ArrayList;");
    m.iconst(16384).newarray(Kind::Int);
    m.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
    m.iinc(0, 1);
    m.gotoLabel(loop);
    m.bind(to).gotoLabel(loop);  // unreachable; keeps handler range non-empty
    m.bind(handler).pop().iload(0).ireturn();
    m.handler(from, to, handler, "java/lang/OutOfMemoryError");
    attacker.classes.push_back(cb.build());
  }
  Bundle* vb = p.fw->install(std::move(victim));
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(vb);
  p.fw->start(ab);

  auto [grab_done, grabbed] = p.call(ab->loader(), "atk/Mem", "grab", "()I", {}, 30000);
  auto [alloc_done, alloc_v] = p.call(vb->loader(), "vic/Alloc", "tryAlloc", "()I", {});

  out.victim_unaffected = alloc_done && alloc_v == 1;
  // Administrator: the isolate holding the most charged memory.
  p.vm->collectGarbage(p.vm->mainThread(), nullptr);
  Isolate* worst = p.worstIsolate(
      [](const IsolateReport& r) { return r.bytes_charged; });
  out.attacker_identified = p.isolated_mode && worst == ab->isolate();
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  if (out.attacker_stopped) {
    // After the kill, the attacker's retained memory is reclaimed.
    p.vm->collectGarbage(p.vm->mainThread(), nullptr);
    auto [re_done, re_v] = p.call(vb->loader(), "vic/Alloc", "tryAlloc", "()I", {});
    out.attacker_stopped = re_done && re_v == 1 &&
                           p.vm->reportFor(ab->isolate()).bytes_charged <
                               (1u << 20);
  }
  out.detail = strf("attacker retained %d chunks before OutOfMemoryError; "
                    "victim alloc %s",
                    grab_done ? grabbed : -1,
                    out.victim_unaffected ? "succeeded" : "failed (OOM)");
  return out;
}

// ------------------------------------------------------------ A4

AttackOutcome attackA4(Platform& p) {
  AttackOutcome out;
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  attacker.classes.push_back(makeRunnable("atk/Churn", [](MethodBuilder& run) {
    // while (true) { new int[4096]; }  -- triggers GC over and over
    Label loop = run.newLabel();
    run.bind(loop);
    run.iconst(4096).newarray(Kind::Int).pop();
    run.gotoLabel(loop);
  }));
  attacker.classes.push_back(makeSpawningActivator("atk/Activator", "atk/Churn"));
  attacker.activator = "atk/Activator";

  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("vic/Work");
    auto& m = cb.method("work", "()I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(0);
    m.iconst(0).istore(1);
    m.bind(loop).iload(1).iconst(100000).ifIcmpGe(done);
    m.iload(0).iload(1).iadd().istore(0);
    m.iinc(1, 1).gotoLabel(loop);
    m.bind(done).iload(0).ireturn();
    victim.classes.push_back(cb.build());
  }

  Bundle* vb = p.fw->install(std::move(victim));
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(vb);
  p.fw->start(ab);  // churn thread starts

  // Let the churner trigger collections.
  const u64 gc_before = p.vm->gcCount();
  waitUntil(3000, [&] { return p.vm->gcCount() >= gc_before + 3; });

  Isolate* worst =
      p.worstIsolate([](const IsolateReport& r) { return r.gc_activations; });
  out.attacker_identified = p.isolated_mode && worst == ab->isolate() &&
                            p.vm->reportFor(ab->isolate()).gc_activations > 0;
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  if (out.attacker_stopped) {
    // The churn thread must actually unwind.
    out.attacker_stopped = waitUntil(3000, [&] {
      return ab->isolate()->stats.live_threads.load() == 0;
    });
  }
  auto [work_done, work_v] = p.call(vb->loader(), "vic/Work", "work", "()I", {});
  out.victim_unaffected = work_done && work_v != 0 && out.attacker_stopped;
  out.detail = strf("%llu collections triggered by the churner; churn %s",
                    static_cast<unsigned long long>(
                        p.vm->reportFor(ab->isolate()).gc_activations),
                    out.attacker_stopped ? "stopped" : "still running");
  return out;
}

// ------------------------------------------------------------ A5

AttackOutcome attackA5(Platform& p) {
  AttackOutcome out;
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  attacker.classes.push_back(makeRunnable("atk/Sleeper", [](MethodBuilder& run) {
    run.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.ret();
  }));
  {
    ClassBuilder cb("atk/Threads");
    auto& m = cb.method("spawn", "()I", ACC_PUBLIC | ACC_STATIC);
    // for (i=0;i<100;i++) try { new Thread(new Sleeper()).start(); }
    // catch (OutOfMemoryError e) { return i; }   return 100;
    m.iconst(0).istore(0);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    Label loop = m.newLabel(), done = m.newLabel();
    m.bind(from);
    m.bind(loop).iload(0).iconst(100).ifIcmpGe(done);
    m.newObject("java/lang/Thread").dup();
    m.newDefault("atk/Sleeper");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.invokevirtual("java/lang/Thread", "start", "()V");
    m.iinc(0, 1).gotoLabel(loop);
    m.bind(to);
    m.bind(done).iconst(100).ireturn();
    m.bind(handler).pop().iload(0).ireturn();
    m.handler(from, to, handler, "java/lang/OutOfMemoryError");
    attacker.classes.push_back(cb.build());
  }
  attacker.classes.push_back(makeNoopActivator("atk/Activator"));
  attacker.activator = "atk/Activator";

  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  victim.classes.push_back(makeRunnable("vic/Nop", [](MethodBuilder& run) {
    run.ret();
  }));
  {
    ClassBuilder cb("vic/Spawn");
    auto& m = cb.method("trySpawn", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.newObject("java/lang/Thread").dup();
    m.newDefault("vic/Nop");
    m.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    m.invokevirtual("java/lang/Thread", "start", "()V");
    m.bind(to).iconst(1).ireturn();
    m.bind(handler).pop().iconst(-1).ireturn();
    m.handler(from, to, handler, "java/lang/OutOfMemoryError");
    victim.classes.push_back(cb.build());
  }

  Bundle* vb = p.fw->install(std::move(victim));
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(vb);
  p.fw->start(ab);

  auto [spawn_done, spawned] =
      p.call(ab->loader(), "atk/Threads", "spawn", "()I", {}, 20000);
  auto [try_done, try_v] = p.call(vb->loader(), "vic/Spawn", "trySpawn", "()I", {});

  out.victim_unaffected = try_done && try_v == 1;
  Isolate* worst =
      p.worstIsolate([](const IsolateReport& r) { return r.threads_created; });
  out.attacker_identified = p.isolated_mode && worst == ab->isolate();
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  if (out.attacker_stopped) {
    out.attacker_stopped = waitUntil(5000, [&] {
      return ab->isolate()->stats.live_threads.load() == 0;
    });
  }
  out.detail = strf("attacker created %d threads before failing; victim spawn %s",
                    spawn_done ? spawned : -1,
                    out.victim_unaffected ? "succeeded" : "failed (OOM)");
  return out;
}

// ------------------------------------------------------------ A6

AttackOutcome attackA6(Platform& p) {
  AttackOutcome out;
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  attacker.classes.push_back(makeRunnable("atk/Spin", [](MethodBuilder& run) {
    // while (true) k++;
    Label loop = run.newLabel();
    run.iconst(0).istore(1);
    run.bind(loop).iinc(1, 1).gotoLabel(loop);
  }));
  attacker.classes.push_back(makeSpawningActivator("atk/Activator", "atk/Spin"));
  attacker.activator = "atk/Activator";

  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("vic/Work");
    auto& m = cb.method("work", "()I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(0);
    m.iconst(0).istore(1);
    m.bind(loop).iload(1).iconst(50000).ifIcmpGe(done);
    m.iload(0).iload(1).ixor().istore(0);
    m.iinc(1, 1).gotoLabel(loop);
    m.bind(done).iload(0).ireturn();
    victim.classes.push_back(cb.build());
  }

  Bundle* vb = p.fw->install(std::move(victim));
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(vb);
  p.fw->start(ab);

  // Let the CPU sampler observe the spinning thread.
  sleepMs(200);
  // Victim makes progress even while the attacker spins (OS preemption),
  // matching "the non-malicious bundles make progress slowly".
  auto [work_done, work_v] = p.call(vb->loader(), "vic/Work", "work", "()I", {});

  Isolate* worst =
      p.worstIsolate([](const IsolateReport& r) { return r.cpu_samples; });
  out.attacker_identified = p.isolated_mode && worst == ab->isolate() &&
                            p.vm->reportFor(ab->isolate()).cpu_samples > 0;
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  if (out.attacker_stopped) {
    out.attacker_stopped = waitUntil(5000, [&] {
      return ab->isolate()->stats.live_threads.load() == 0;
    });
  }
  out.victim_unaffected = work_done && out.attacker_stopped;
  out.detail = strf("attacker CPU samples: %llu; spin loop %s",
                    static_cast<unsigned long long>(
                        p.vm->reportFor(ab->isolate()).cpu_samples),
                    out.attacker_stopped ? "terminated" : "still running");
  (void)work_v;
  return out;
}

// ------------------------------------------------------------ A7

AttackOutcome attackA7(Platform& p) {
  AttackOutcome out;
  // Shared service interface.
  {
    ClassLoader* shared = p.fw->frameworkIsolate()->loader;
    if (shared->findLocal("api/Hang") == nullptr) {
      ClassBuilder cb("api/Hang", "", ACC_PUBLIC | ACC_INTERFACE);
      cb.abstractMethod("call", "()I");
      shared->define(cb.build());
    }
  }
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  {
    ClassBuilder cb("atk/HangImpl");
    cb.addInterface("api/Hang");
    auto& call = cb.method("call", "()I");
    // Thread.sleep("forever"); never returns to the caller.
    call.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    call.iconst(0).ireturn();
    attacker.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("atk/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("hang.svc");
    start.newDefault("atk/HangImpl");
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    attacker.classes.push_back(cb.build());
    attacker.activator = "atk/Activator";
  }
  BundleDescriptor victim;
  victim.symbolic_name = "victim";
  {
    ClassBuilder cb("vic/Caller");
    cb.field("svc", "Lapi/Hang;", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("callHang", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from);
    m.getstatic("vic/Caller", "svc", "Lapi/Hang;");
    m.invokeinterface("api/Hang", "call", "()I");
    m.bind(to).ireturn();
    m.bind(handler).pop().iconst(-1).ireturn();
    m.handler(from, to, handler, "java/lang/Throwable");
    victim.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("vic/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("hang.svc");
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast("api/Hang");
    start.putstatic("vic/Caller", "svc", "Lapi/Hang;");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    victim.classes.push_back(cb.build());
    victim.activator = "vic/Activator";
  }

  Bundle* ab = p.fw->install(std::move(attacker));
  Bundle* vb = p.fw->install(std::move(victim));
  p.fw->start(ab);
  p.fw->start(vb);

  PendingCall pc = p.callAsync(vb->loader(), "vic/Caller", "callHang", "()I", {});
  // The call hangs in both modes initially.
  bool hung = !pc.waitFor(300);

  out.attacker_identified =
      p.isolated_mode &&
      waitUntil(2000, [&] {
        return ab->isolate()->stats.sleeping_threads.load() > 0;
      });
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  if (out.attacker_stopped) {
    // The victim was "prepared to catch the StoppedIsolateException":
    // execution must come back to it with -1.
    out.victim_unaffected =
        pc.waitFor(5000) && pc.value->load(std::memory_order_acquire) == -1;
    out.attacker_stopped = out.victim_unaffected;
  } else {
    out.victim_unaffected = pc.done->load(std::memory_order_acquire);
  }
  out.detail = strf("call into the bundle hung: %s; after kill control %s",
                    hung ? "yes" : "no",
                    out.victim_unaffected ? "returned to the caller"
                                          : "never returned");
  return out;
}

// ------------------------------------------------------------ A8

AttackOutcome attackA8(Platform& p) {
  AttackOutcome out;
  BundleDescriptor attacker;
  attacker.symbolic_name = "attacker";
  attacker.classes.push_back(makeRunnable("atk/Dos", [](MethodBuilder& run) {
    Label loop = run.newLabel();
    run.iconst(0).istore(1);
    run.bind(loop).iinc(1, 1).gotoLabel(loop);
  }));
  {
    // Attacker hands an internal object to whoever asks, then starts a DoS.
    ClassBuilder cb("atk/Internal");
    cb.field("secret", "I");
    attacker.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("atk/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("internal.svc");
    start.newDefault("atk/Internal");
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.newObject("java/lang/Thread").dup();
    start.newDefault("atk/Dos");
    start.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    start.invokevirtual("java/lang/Thread", "start", "()V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    attacker.classes.push_back(cb.build());
    attacker.activator = "atk/Activator";
  }
  Bundle* ab = p.fw->install(std::move(attacker));
  p.fw->start(ab);

  // The "victim" (here: framework-held reference standing for bundle A's
  // stored reference) keeps the internal object alive.
  Object* internal = p.fw->getService("internal.svc");
  GlobalRef* held =
      internal != nullptr
          ? p.vm->addGlobalRef(internal, p.fw->frameworkIsolate())
          : nullptr;

  sleepMs(100);  // let the DoS thread run
  out.attacker_stopped = p.killByIsolate(ab->isolate());
  if (out.attacker_stopped) {
    out.attacker_stopped = waitUntil(5000, [&] {
      return ab->isolate()->stats.live_threads.load() == 0;
    });
  }
  // The shared object is still alive while referenced...
  bool object_alive = false;
  p.vm->collectGarbage(p.vm->mainThread(), nullptr);
  p.vm->heap().forEachObject([&](Object* o) {
    if (o == internal) object_alive = true;
  });
  // ...but no code of the bundle can run anymore.
  out.victim_unaffected = out.attacker_stopped;
  out.attacker_identified = p.isolated_mode;
  out.detail = strf("DoS thread %s; shared object %s after kill",
                    out.attacker_stopped ? "terminated" : "still running",
                    object_alive ? "retained (still referenced)" : "reclaimed");
  if (held != nullptr) p.vm->removeGlobalRef(held);
  return out;
}

}  // namespace

AttackOutcome runAttack(AttackId id, bool isolated_mode, ExecEngine engine,
                        const VmOptionsTweak& tweak) {
  Platform p(isolated_mode, engine, tweak);
  AttackOutcome out;
  switch (id) {
    case AttackId::A1_StaticMutation:
      out = attackA1(p);
      break;
    case AttackId::A2_SharedLock:
      out = attackA2(p);
      break;
    case AttackId::A3_MemoryExhaustion:
      out = attackA3(p);
      break;
    case AttackId::A4_ExcessiveGc:
      out = attackA4(p);
      break;
    case AttackId::A5_ThreadCreation:
      out = attackA5(p);
      break;
    case AttackId::A6_InfiniteLoop:
      out = attackA6(p);
      break;
    case AttackId::A7_HangingThread:
      out = attackA7(p);
      break;
    case AttackId::A8_NoTermination:
      out = attackA8(p);
      break;
  }
  out.id = id;
  out.isolated_mode = isolated_mode;
  return out;
}

std::vector<AttackOutcome> runAllAttacks(bool isolated_mode, ExecEngine engine,
                                         const VmOptionsTweak& tweak) {
  std::vector<AttackOutcome> out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(
        runAttack(static_cast<AttackId>(i), isolated_mode, engine, tweak));
  }
  return out;
}

}  // namespace ijvm
