// SPEC JVM98-analog guest workloads (Figure 2 substrate).
//
// The paper measures I-JVM's overhead on SPEC JVM98. The original class
// files cannot be run on this VM, so each benchmark is re-implemented as a
// guest program with the same *character* -- the relative-overhead
// comparison (isolated vs shared mode on identical bytecode) is what the
// figure reports:
//
//   compress  -- run-length compression over pseudo-random buffers
//                (int arrays, tight loops)
//   jess      -- rule matching over a fact base (objects, field access,
//                branchy inner loops)
//   db        -- record store: lookups, updates, periodic sorts
//                (objects + strings)
//   javac     -- expression tokenizer + recursive-descent parser
//                (strings, recursion, per-isolate statics)
//   mpegaudio -- windowed FIR filtering (double arrays, FP loops)
//   mtrt      -- two-thread ray/sphere tracer (doubles, objects, threads)
//   jack      -- repeated text generation (StringBuilder, hashing)
//
// Every workload is `<name>/Main.run(I)I`: deterministic, returns a
// checksum. Tests pin the checksums (and compress/db against independent
// C++ reference implementations).
#pragma once

#include <string>
#include <vector>

#include "bytecode/classdef.h"
#include "runtime/vm.h"

namespace ijvm {

struct SpecWorkload {
  std::string name;        // "compress", ...
  std::string main_class;  // "compress/Main"
  std::vector<ClassDef> classes;
  i32 default_size;  // argument to run(I)I used by tests/benches
};

SpecWorkload makeCompress();
SpecWorkload makeJess();
SpecWorkload makeDb();
SpecWorkload makeJavac();
SpecWorkload makeMpegaudio();
SpecWorkload makeMtrt();
SpecWorkload makeJack();

// All seven, in the paper's order.
std::vector<SpecWorkload> specWorkloads();

// Defines the workload's classes in `loader` (if not already present) and
// invokes run(size). Returns the checksum; panics on guest exception.
i32 runSpecWorkload(VM& vm, JThread* t, ClassLoader* loader,
                    const SpecWorkload& wl, i32 size);

// Independent C++ reference implementations (property tests).
i32 referenceCompress(i32 size);
i32 referenceDb(i32 ops);

}  // namespace ijvm
