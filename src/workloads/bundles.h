// Reusable guest bundles for tests, examples and benchmarks:
//  * a shared service API (defined in the framework loader so every bundle
//    can link against it),
//  * a provider bundle exporting a Counter service,
//  * a client bundle calling it through the service registry -- the
//    inter-bundle call path measured in Table 1 / Figure 1.
#pragma once

#include <string>

#include "osgi/framework.h"

namespace ijvm {

// Defines the shared interface api/Counter { inc()I; get()I; add(I)I; }
// in the framework's loader. Idempotent per framework.
void defineCounterApi(Framework& fw);

// Provider bundle: implements api/Counter, registers it as service `svc`.
BundleDescriptor makeCounterProvider(const std::string& bundle_name,
                                     const std::string& service_name);

// Client bundle: binds the service in start() and exposes static methods
//   <pkg>/Client.callOnce()I      -- one inter-bundle inc()
//   <pkg>/Client.callMany(I)I     -- n inter-bundle calls, returns last
//   <pkg>/Client.callGuarded()I   -- inc() but catches Throwable -> -1
BundleDescriptor makeCounterClient(const std::string& bundle_name,
                                   const std::string& service_name);

// Micro-benchmark bundle (Figure 1 substrate): class micro/Bench with
//   allocMany(I)I   -- n times `new java/lang/Object()`
//   staticMany(I)I  -- n static variable read-modify-writes (TCM path)
//   spinFor(I)I     -- n iterations of pure int arithmetic (CPU baseline)
BundleDescriptor makeMicroBundle(const std::string& bundle_name);

// Package prefix used by the generated classes of `bundle_name`
// (dots replaced with slashes).
std::string bundlePkg(const std::string& bundle_name);

// ---- misbehaving bundles -------------------------------------------------
// DoS stand-ins used by the ResourceGovernor tests/bench and the governor
// example. Each starts its attack from the activator on a spawned thread
// (the framework's rule 1 means start() itself returns), so the platform
// stays responsive and an admin/governor observes the attack live.

// A6 analog: spawns one thread running an infinite integer loop.
BundleDescriptor makeCpuHogBundle(const std::string& bundle_name);

// A4 analog: spawns one thread allocating int[4096] forever without
// retaining them (GC churn).
BundleDescriptor makeChurnBundle(const std::string& bundle_name);

// A3 analog: spawns one thread that retains `chunks` arrays of
// `chunk_ints` ints in a static list, pausing ~1ms between grabs, then
// parks. Total retention ~= chunks * chunk_ints * 8 bytes (+ overhead).
BundleDescriptor makeMemoryHogBundle(const std::string& bundle_name,
                                     i32 chunk_ints, i32 chunks);

// A5 analog: the activator thread spawns `threads` sleepers (10-minute
// sleep each).
BundleDescriptor makeThreadBombBundle(const std::string& bundle_name,
                                      i32 threads);

// A7 analog: registers an api/Counter service whose inc() never returns
// (10-minute sleep). Callers hang inside this bundle. Requires
// defineCounterApi(fw) first.
BundleDescriptor makeHangServiceBundle(const std::string& bundle_name,
                                       const std::string& service_name);

// A well-behaved control: spawns one thread doing short bursts of work
// separated by sleeps (never trips the standard governor policy).
BundleDescriptor makeWellBehavedBundle(const std::string& bundle_name);

}  // namespace ijvm
