#include "workloads/bundles.h"

#include <functional>

#include "bytecode/builder.h"
#include "support/strf.h"

namespace ijvm {

std::string bundlePkg(const std::string& bundle_name) {
  std::string pkg = bundle_name;
  for (char& c : pkg) {
    if (c == '.') c = '/';
  }
  return pkg;
}

void defineCounterApi(Framework& fw) {
  ClassLoader* loader = fw.frameworkIsolate()->loader;
  if (loader->findLocal("api/Counter") != nullptr) return;
  ClassBuilder cb("api/Counter", "", ACC_PUBLIC | ACC_INTERFACE);
  cb.abstractMethod("inc", "()I");
  cb.abstractMethod("get", "()I");
  cb.abstractMethod("add", "(I)I");
  loader->define(cb.build());
}

BundleDescriptor makeCounterProvider(const std::string& bundle_name,
                                     const std::string& service_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  std::string impl = pkg + "/CounterImpl";

  {
    ClassBuilder cb(impl);
    cb.addInterface("api/Counter");
    cb.field("n", "I");
    auto& inc = cb.method("inc", "()I");
    inc.aload(0).aload(0).getfield(impl, "n", "I").iconst(1).iadd();
    inc.putfield(impl, "n", "I");
    inc.aload(0).getfield(impl, "n", "I").ireturn();
    auto& get = cb.method("get", "()I");
    get.aload(0).getfield(impl, "n", "I").ireturn();
    auto& add = cb.method("add", "(I)I");
    add.aload(0).aload(0).getfield(impl, "n", "I").iload(1).iadd();
    add.putfield(impl, "n", "I");
    add.aload(0).getfield(impl, "n", "I").ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.newDefault(impl).astore(2);
    start.aload(1).ldcStr(service_name).aload(2);
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = pkg + "/Activator";
  }
  return desc;
}

BundleDescriptor makeCounterClient(const std::string& bundle_name,
                                   const std::string& service_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  std::string client = pkg + "/Client";

  {
    ClassBuilder cb(client);
    cb.field("svc", "Lapi/Counter;", ACC_PUBLIC | ACC_STATIC);

    auto& once = cb.method("callOnce", "()I", ACC_PUBLIC | ACC_STATIC);
    once.getstatic(client, "svc", "Lapi/Counter;");
    once.invokeinterface("api/Counter", "inc", "()I").ireturn();

    auto& many = cb.method("callMany", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = many.newLabel();
    Label done = many.newLabel();
    many.iconst(0).istore(1);
    many.bind(loop).iload(0).ifle(done);
    many.getstatic(client, "svc", "Lapi/Counter;");
    many.invokeinterface("api/Counter", "inc", "()I").istore(1);
    many.iinc(0, -1).gotoLabel(loop);
    many.bind(done).iload(1).ireturn();

    auto& guarded = cb.method("callGuarded", "()I", ACC_PUBLIC | ACC_STATIC);
    Label from = guarded.newLabel();
    Label to = guarded.newLabel();
    Label handler = guarded.newLabel();
    guarded.bind(from);
    guarded.getstatic(client, "svc", "Lapi/Counter;");
    guarded.invokeinterface("api/Counter", "inc", "()I");
    guarded.bind(to).ireturn();
    guarded.bind(handler).pop().iconst(-1).ireturn();
    guarded.handler(from, to, handler, "java/lang/Throwable");
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr(service_name);
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast("api/Counter");
    start.putstatic(client, "svc", "Lapi/Counter;");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = pkg + "/Activator";
  }
  return desc;
}

BundleDescriptor makeMicroBundle(const std::string& bundle_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  ClassBuilder cb("micro/Bench");
  cb.field("counter", "I", ACC_PUBLIC | ACC_STATIC);
  cb.field("val", "I", ACC_PUBLIC);

  {
    auto& m = cb.method("allocMany", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.bind(loop).iload(1).iload(0).ifIcmpGe(done);
    m.newDefault("java/lang/Object").pop();
    m.iinc(1, 1).gotoLabel(loop);
    m.bind(done).iload(0).ireturn();
  }
  {
    auto& m = cb.method("staticMany", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.bind(loop).iload(1).iload(0).ifIcmpGe(done);
    m.getstatic("micro/Bench", "counter", "I").iconst(1).iadd();
    m.putstatic("micro/Bench", "counter", "I");
    m.iinc(1, 1).gotoLabel(loop);
    m.bind(done).getstatic("micro/Bench", "counter", "I").ireturn();
  }
  {
    auto& m = cb.method("spinFor", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.iconst(0).istore(2);
    m.bind(loop).iload(1).iload(0).ifIcmpGe(done);
    m.iload(2).iload(1).ixor().istore(2);
    m.iinc(1, 1).gotoLabel(loop);
    m.bind(done).iload(2).ireturn();
  }
  {
    // Instance-field read feeding arithmetic in the loop body
    // (`s += o.val` as ILOAD s; ALOAD o; GETFIELD val; IADD; ISTORE s):
    // the tier-2 ALOAD+GETFIELD fusion and the tier-3 field-load+arith
    // peephole stack on this shape (bench/fig1_micro.cpp, docs/jit.md).
    auto& m = cb.method("fieldSum", "(I)I", ACC_PUBLIC | ACC_STATIC);
    Label loop = m.newLabel(), done = m.newLabel();
    m.newDefault("micro/Bench").astore(1);
    m.aload(1).iconst(3).putfield("micro/Bench", "val", "I");
    m.iconst(0).istore(2);
    m.iconst(0).istore(3);
    m.bind(loop).iload(3).iload(0).ifIcmpGe(done);
    m.iload(2).aload(1).getfield("micro/Bench", "val", "I").iadd().istore(2);
    m.iinc(3, 1).gotoLabel(loop);
    m.bind(done).iload(2).ireturn();
  }
  desc.classes.push_back(cb.build());
  return desc;
}

// ---- misbehaving bundles ---------------------------------------------------

namespace {

// Runnable class `name` whose run() body is `body` (local 0 = this).
ClassDef runnable(const std::string& name,
                  const std::function<void(MethodBuilder&)>& body) {
  ClassBuilder cb(name);
  cb.addInterface("java/lang/Runnable");
  auto& run = cb.method("run", "()V");
  body(run);
  return cb.build();
}

// Activator that spawns `runnable_cls` on a fresh guest thread at start().
ClassDef spawningActivator(const std::string& name,
                           const std::string& runnable_cls) {
  ClassBuilder cb(name);
  cb.addInterface("osgi/BundleActivator");
  auto& start = cb.method("start", "(Losgi/BundleContext;)V");
  start.newObject("java/lang/Thread").dup();
  start.newDefault(runnable_cls);
  start.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
  start.invokevirtual("java/lang/Thread", "start", "()V");
  start.ret();
  cb.method("stop", "(Losgi/BundleContext;)V").ret();
  return cb.build();
}

}  // namespace

BundleDescriptor makeCpuHogBundle(const std::string& bundle_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  desc.classes.push_back(runnable(pkg + "/Spin", [](MethodBuilder& run) {
    Label loop = run.newLabel();
    run.iconst(0).istore(1);
    run.bind(loop).iload(1).iconst(1).iadd().istore(1).gotoLabel(loop);
  }));
  desc.classes.push_back(spawningActivator(pkg + "/Activator", pkg + "/Spin"));
  desc.activator = pkg + "/Activator";
  return desc;
}

BundleDescriptor makeChurnBundle(const std::string& bundle_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  desc.classes.push_back(runnable(pkg + "/Churn", [](MethodBuilder& run) {
    Label loop = run.newLabel();
    run.bind(loop);
    run.iconst(4096).newarray(Kind::Int).pop();
    run.gotoLabel(loop);
  }));
  desc.classes.push_back(spawningActivator(pkg + "/Activator", pkg + "/Churn"));
  desc.activator = pkg + "/Activator";
  return desc;
}

BundleDescriptor makeMemoryHogBundle(const std::string& bundle_name,
                                     i32 chunk_ints, i32 chunks) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  std::string hog = pkg + "/Hog";
  {
    ClassBuilder cb(hog);
    cb.addInterface("java/lang/Runnable");
    cb.field("sink", "Ljava/util/ArrayList;", ACC_PUBLIC | ACC_STATIC);
    auto& run = cb.method("run", "()V");
    // sink = new ArrayList();
    run.newDefault("java/util/ArrayList").putstatic(hog, "sink",
                                                    "Ljava/util/ArrayList;");
    // for (i = 0; i < chunks; i++) { sink.add(new int[chunk_ints]); sleep(1); }
    Label loop = run.newLabel(), done = run.newLabel();
    run.iconst(0).istore(1);
    run.bind(loop).iload(1).iconst(chunks).ifIcmpGe(done);
    run.getstatic(hog, "sink", "Ljava/util/ArrayList;");
    run.iconst(chunk_ints).newarray(Kind::Int);
    run.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
    run.lconst(1).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.iinc(1, 1).gotoLabel(loop);
    // Park: keep the retention alive.
    run.bind(done);
    run.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.ret();
    desc.classes.push_back(cb.build());
  }
  desc.classes.push_back(spawningActivator(pkg + "/Activator", hog));
  desc.activator = pkg + "/Activator";
  return desc;
}

BundleDescriptor makeThreadBombBundle(const std::string& bundle_name,
                                      i32 threads) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  std::string sleeper = pkg + "/Sleeper";
  desc.classes.push_back(runnable(sleeper, [](MethodBuilder& run) {
    run.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.ret();
  }));
  desc.classes.push_back(runnable(pkg + "/Bomb", [&](MethodBuilder& run) {
    // for (i = 0; i < threads; i++) new Thread(new Sleeper()).start();
    Label loop = run.newLabel(), done = run.newLabel();
    run.iconst(0).istore(1);
    run.bind(loop).iload(1).iconst(threads).ifIcmpGe(done);
    run.newObject("java/lang/Thread").dup();
    run.newDefault(sleeper);
    run.invokespecial("java/lang/Thread", "<init>", "(Ljava/lang/Runnable;)V");
    run.invokevirtual("java/lang/Thread", "start", "()V");
    run.iinc(1, 1).gotoLabel(loop);
    run.bind(done).ret();
  }));
  desc.classes.push_back(spawningActivator(pkg + "/Activator", pkg + "/Bomb"));
  desc.activator = pkg + "/Activator";
  return desc;
}

BundleDescriptor makeHangServiceBundle(const std::string& bundle_name,
                                       const std::string& service_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  std::string impl = pkg + "/HangImpl";
  {
    ClassBuilder cb(impl);
    cb.addInterface("api/Counter");
    auto& inc = cb.method("inc", "()I");
    inc.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    inc.iconst(0).ireturn();
    cb.method("get", "()I").iconst(0).ireturn();
    auto& add = cb.method("add", "(I)I");
    add.lconst(600000).invokestatic("java/lang/Thread", "sleep", "(J)V");
    add.iconst(0).ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.newDefault(impl).astore(2);
    start.aload(1).ldcStr(service_name).aload(2);
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = pkg + "/Activator";
  }
  return desc;
}

BundleDescriptor makeWellBehavedBundle(const std::string& bundle_name) {
  BundleDescriptor desc;
  desc.symbolic_name = bundle_name;
  std::string pkg = bundlePkg(bundle_name);
  desc.classes.push_back(runnable(pkg + "/Work", [](MethodBuilder& run) {
    // while (true) { small arithmetic burst; a couple of allocations;
    //                Thread.sleep(20); }
    Label outer = run.newLabel();
    run.bind(outer);
    Label loop = run.newLabel(), done = run.newLabel();
    run.iconst(0).istore(1);
    run.iconst(0).istore(2);
    run.bind(loop).iload(1).iconst(2000).ifIcmpGe(done);
    run.iload(2).iload(1).ixor().istore(2);
    run.iinc(1, 1).gotoLabel(loop);
    run.bind(done);
    run.iconst(8).newarray(Kind::Int).pop();
    run.lconst(20).invokestatic("java/lang/Thread", "sleep", "(J)V");
    run.gotoLabel(outer);
  }));
  desc.classes.push_back(spawningActivator(pkg + "/Activator", pkg + "/Work"));
  desc.activator = pkg + "/Activator";
  return desc;
}

}  // namespace ijvm
