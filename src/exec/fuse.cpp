// The superinstruction fusion pass.
//
// Eligibility rules (all checked per group, head at index h, length L):
//
//  * Opcode shape: the group matches one of the patterns below. Patterns
//    whose inner instructions carry a quickened payload (ALOAD+GETFIELD_Q)
//    require that payload to exist already -- fusion runs after the stream
//    has quickened, so a pattern that never executed simply is not hot and
//    is left alone.
//  * Entry points: no instruction h+1..h+L-1 is a branch target or an
//    exception-handler entry. Jumping *to* a head is fine (the whole group
//    executes); jumping into a middle still works because middles keep
//    their original opcodes -- they are just never reached by fall-through
//    once the head is fused.
//  * Handler coverage: every exception-table range covers either all of
//    the group or none of it. The fused handler reports faults at the head
//    pc, so a range starting or ending inside the group would catch
//    differently than the unfused stream and break the differential
//    equivalence with the classic engine.
//
// Publication: fused heads are ILOAD/ICONST/ALOAD/IINC -- opcodes whose
// unfused handlers only read the original operands a/b, which fusion never
// touches. The lifted payload (second slot, branch target, field pointer)
// is written to the head's c/imm/ptr fields first, then the fused opcode is
// release-stored; the dispatch loop acquire-loads opcodes, so a thread
// either sees the old opcode (and reads only a/b) or the fused opcode with
// its payload visible. Threads already inside a group mid-publication keep
// executing the untouched original middles -- same semantics, one pass of
// unfused dispatch.
#include "exec/fuse.h"

#include "classes/jclass.h"
#include "exec/quickened.h"

namespace ijvm::exec {

namespace {

// ILOAD a; ILOAD b; <int-arith> -> one triple.
Op arithFusion(Op third) {
  switch (third) {
    case Op::IADD: return Op::ILOAD_ILOAD_IADD_F;
    case Op::ISUB: return Op::ILOAD_ILOAD_ISUB_F;
    case Op::IMUL: return Op::ILOAD_ILOAD_IMUL_F;
    case Op::IAND: return Op::ILOAD_ILOAD_IAND_F;
    case Op::IOR: return Op::ILOAD_ILOAD_IOR_F;
    case Op::IXOR: return Op::ILOAD_ILOAD_IXOR_F;
    default: return Op::NOP;
  }
}

// ILOAD a; ILOAD b; IF_ICMPxx -> one triple (typical loop head).
Op cmpFusion(Op third) {
  switch (third) {
    case Op::IF_ICMPEQ: return Op::ILOAD_ILOAD_IF_ICMPEQ_F;
    case Op::IF_ICMPNE: return Op::ILOAD_ILOAD_IF_ICMPNE_F;
    case Op::IF_ICMPLT: return Op::ILOAD_ILOAD_IF_ICMPLT_F;
    case Op::IF_ICMPGE: return Op::ILOAD_ILOAD_IF_ICMPGE_F;
    case Op::IF_ICMPGT: return Op::ILOAD_ILOAD_IF_ICMPGT_F;
    case Op::IF_ICMPLE: return Op::ILOAD_ILOAD_IF_ICMPLE_F;
    default: return Op::NOP;
  }
}

}  // namespace

u32 fuseQCode(QCode& qc, bool complete) {
  ExecState& st = *qc.state;
  std::lock_guard<std::mutex> lock(st.mutex);
  if (qc.fusion_done.load(std::memory_order_relaxed)) return 0;
  if (!complete && qc.fusion_partial.load(std::memory_order_relaxed)) return 0;

  JMethod* m = qc.method;
  const std::vector<Instruction>& insns = m->code.insns;
  const i32 n = static_cast<i32>(qc.insns.size());

  // Instruction indices control flow can enter other than by falling
  // through: branch targets and handler entries. Computed from the
  // original (immutable) stream -- branches are never rewritten.
  std::vector<u8> entry(static_cast<size_t>(n), 0);
  for (const Instruction& insn : insns) {
    if (opIsBranch(insn.op) && insn.a >= 0 && insn.a < n) {
      entry[static_cast<size_t>(insn.a)] = 1;
    }
  }
  for (const ExHandler& h : m->code.handlers) {
    if (h.handler >= 0 && h.handler < n) {
      entry[static_cast<size_t>(h.handler)] = 1;
    }
  }

  auto coverageUniform = [&](i32 head, i32 len) {
    for (const ExHandler& h : m->code.handlers) {
      const bool head_in = head >= h.start && head < h.end;
      for (i32 k = 1; k < len; ++k) {
        const bool k_in = head + k >= h.start && head + k < h.end;
        if (k_in != head_in) return false;
      }
    }
    return true;
  };
  auto groupOk = [&](i32 head, i32 len) {
    if (head + len > n) return false;
    for (i32 k = 1; k < len; ++k) {
      if (entry[static_cast<size_t>(head + k)] != 0) return false;
    }
    return coverageUniform(head, len);
  };
  auto opAt = [&](i32 i) {
    return qc.insns[static_cast<size_t>(i)].op.load(std::memory_order_relaxed);
  };

  u32 groups = 0;
  i32 i = 0;
  while (i < n) {
    QInsn& q = qc.insns[static_cast<size_t>(i)];
    const Op op = opAt(i);
    if (opIsFused(op)) {  // fused by an earlier (partial) pass
      i += opFusedLength(op);
      continue;
    }
    Op fused = Op::NOP;
    if (op == Op::ILOAD && groupOk(i, 3) && opAt(i + 1) == Op::ILOAD) {
      if (Op f = arithFusion(opAt(i + 2)); f != Op::NOP) {
        fused = f;
      } else if (Op f2 = cmpFusion(opAt(i + 2)); f2 != Op::NOP) {
        fused = f2;
      }
    } else if (op == Op::ICONST && groupOk(i, 2) && opAt(i + 1) == Op::IADD) {
      fused = Op::ICONST_IADD_F;
    } else if (op == Op::ALOAD && groupOk(i, 2) &&
               opAt(i + 1) == Op::GETFIELD_Q) {
      fused = Op::ALOAD_GETFIELD_F;
    } else if (op == Op::IINC && groupOk(i, 2) && opAt(i + 1) == Op::GOTO) {
      fused = Op::IINC_GOTO_F;
    }
    if (fused == Op::NOP) {
      ++i;
      continue;
    }
    // Single source of truth for group sizes: the opFusedLength table is
    // what the dispatch handlers and disassembler advance by.
    const i32 len = opFusedLength(fused);
    // Lift the inner operands into the head's payload, then publish the
    // fused opcode (release; see the publication rules above).
    const QInsn& mid = qc.insns[static_cast<size_t>(i + 1)];
    switch (fused) {
      case Op::ICONST_IADD_F:
        break;  // the head's own a is the immediate
      case Op::ALOAD_GETFIELD_F:
        q.c = mid.c;      // field slot
        q.ptr = mid.ptr;  // JField (for the NPE message)
        break;
      case Op::IINC_GOTO_F:
        q.c = mid.a;  // goto target
        break;
      default:  // ILOAD_ILOAD_*: second slot, plus branch target for cmps
        q.c = mid.a;
        if (len == 3) q.imm = qc.insns[static_cast<size_t>(i + 2)].a;
        break;
    }
    q.op.store(fused, std::memory_order_release);
    ++groups;
    i += len;
  }

  // Count before the release stores so an acquire of fusion_partial /
  // fusion_done observes this pass's groups.
  qc.fused_groups.fetch_add(groups, std::memory_order_relaxed);
  qc.fusion_partial.store(true, std::memory_order_release);
  if (complete) qc.fusion_done.store(true, std::memory_order_release);
  return groups;
}

}  // namespace ijvm::exec
