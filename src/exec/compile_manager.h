// The background compile manager (docs/jit.md, "Code lifecycle").
//
// With VmOptions::background_compile every promote-to-JIT request --
// entry promotion, OSR self-promotion at a back-edge batch flush, and the
// governor's PromoteJit action alike -- is handed to a pool of
// VmOptions::compiler_threads worker threads instead of being compiled on
// the mutator. Workers drain the request queue concurrently, build
// call-threaded code off-thread (each from a snapshot of the quickened
// stream taken under the engine mutex), and park the finished JitCode on
// a shared ready list. The *mutator* performs the install at its next
// drain point (method entry or back-edge batch flush, via drainJitQueue):
// it never blocks on a compile, it just keeps running the fused tier
// until the entry flips.
//
// Mutator-side installation is what makes the entry flip
// safepoint-coordinated: isolate termination poisons methods under
// stop-the-world, when every mutator is parked, so an install can never
// interleave with a poisoning pass -- a request for a method poisoned
// mid-compile is simply dropped at install time. Adding compiler threads
// does not touch this contract: only *builds* parallelize; installs stay
// mutator-side. The workers themselves are not guest threads (like the
// CPU sampler they never count as Running), so a long compile cannot
// stall a stop-the-world.
//
// Worker 0 doubles as the cache's pressure-relief valve: when retired
// (demoted/invalidated) code piles up past a fraction of the budget, it
// runs an era-gated reclamation pass (code_cache.h; no stop-the-world).
//
// Compile the whole subsystem out with -DIJVM_DISABLE_BG_COMPILE;
// background_compile=false keeps the synchronous drain (deterministic:
// code is installed the moment the request is drained).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.h"

namespace ijvm {
class VM;
struct JMethod;
}  // namespace ijvm

namespace ijvm::exec {

struct JitCode;

class CompileManager {
 public:
  explicit CompileManager(VM& vm);
  ~CompileManager();  // signals the workers and joins them

  CompileManager(const CompileManager&) = delete;
  CompileManager& operator=(const CompileManager&) = delete;

  // Hands a promote-to-JIT request to the workers (the caller holds the
  // QCode::jit_queued latch; it is released when the finished code is
  // installed or dropped).
  void enqueue(JMethod* m);

  size_t workerCount() const { return workers_.size(); }

  // Mutator-side install point: publishes every finished JitCode parked on
  // the ready list (dropping poisoned/superseded ones) and enforces the
  // code-cache budget. Returns the number of methods installed. Called
  // from drainJitQueue, i.e. at method entry and the back-edge batch
  // flush.
  u32 installReady();

  // True while requests are queued, building, or awaiting install --
  // deterministic tests combine this with installReady() polling.
  bool busy() const;

  // Requests queued + building + built-but-not-installed. The admin
  // report's "compile queue depth" (obs/report.h).
  u32 queueDepth() const;

 private:
  void workerLoop(size_t index);

  VM& vm_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<JMethod*> pending_;
  std::deque<std::unique_ptr<JitCode>> ready_;
  u32 building_ = 0;  // requests popped but not yet parked on ready_
  bool stop_ = false;
  // max(1, VmOptions::compiler_threads) workers sharing pending_/ready_;
  // only worker 0 runs the idle-tick pressure valve (one reclaimer is
  // enough, and it keeps the valve's cadence independent of the count).
  std::vector<std::thread> workers_;
};

// ---- tier-3 payoff model (docs/jit.md, "Payoff") ----
// Promotion stops being threshold-only: the engine times fused-tier
// invocations while a method is within reach of promotion (the *pre*
// window), compiled code times its own invocations after install (the
// *post* window; both in runJit/interpretQuickened), and when a full post
// window measures slower per profiled unit than the pre baseline the
// method is auto-demoted through demoteCompiled. The policy lives here --
// the compile manager owns the promote/demote decisions -- but the
// functions are engine-state-only and work identically with synchronous
// compilation (no CompileManager instance required).
struct QCode;

// Monotonic nanosecond clock for payoff samples. Independent of the
// tracing subsystem so the payoff model works with -DIJVM_DISABLE_TRACE.
u64 payoffNowNs();

// Drops both payoff windows, clears the settled latch and bumps the
// window generation (QCode::payoff_epoch), invalidating every in-flight
// sample. Called by retireJitCode for *every* retirement -- payoff
// demotion, budget demotion, governor demotion, deopt invalidation,
// dead-isolate retirement -- so a new compiled generation always measures
// against fresh windows and a mid-window demote resets cleanly.
void payoffResetWindows(QCode& qc);

// Folds one timed invocation into the pre (post=false) or post window,
// unless `epoch` no longer matches the current window generation (the
// sample straddled a retire; it is dropped). `units` is the invocation's
// profiled weight: 1 + the back-edges it executed. Returns true exactly
// when this sample completed the post window -- the caller then runs
// payoffEvaluate.
bool payoffAccumulate(VM& vm, QCode& qc, bool post, u32 epoch, u64 ns,
                      u64 units);

// Verdict on a full post window. With enough pre-window evidence it
// computes measured speedup = (pre ns/unit) / (post ns/unit); below
// VmOptions::jit_payoff_min_speedup the method is demoted (returns true),
// and a method demoted jit_payoff_max_demotes times is pinned
// jit-ineligible so the system converges instead of oscillating. At or
// above the bar -- or without enough pre evidence to judge (a method
// promoted before it was within sampling reach) -- the windows settle and
// sampling stops. Exactly one verdict per window generation.
bool payoffEvaluate(VM& vm, QCode& qc);

// Joins the VM's compile manager if one was ever started; safe to call
// repeatedly (VM::~VM calls it before tearing anything else down).
void shutdownCompileManager(VM& vm);

// Test helper: waits until the manager (if any) has no queued, building or
// uninstalled work, installing ready code on the caller's thread while it
// waits. Returns false on timeout.
bool waitCompileIdle(VM& vm, i64 timeout_ms);

// Current compile-queue depth of the VM's manager; 0 when no background
// manager ever started (synchronous compilation has no queue).
u32 compileQueueDepth(VM& vm);

}  // namespace ijvm::exec
