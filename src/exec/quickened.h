// The quickened instruction stream and its inline caches.
//
// The quickening engine rewrites a method's pre-decoded bytecode, on first
// execution, into a widened internal form (QInsn): constant-pool references
// are resolved to direct JClass*/JField*/JMethod* pointers and the opcode
// is replaced by its quickened variant (GETFIELD -> GETFIELD_Q, ...).
// Rewriting is *lazy per instruction* -- resolution happens when the
// instruction first executes, exactly like the classic interpreter, so
// resolution errors surface at the same program points in both engines.
//
// Publication protocol: QInsn payload fields (c/ptr/imm/dimm) are written
// under the engine mutex, then the opcode is release-stored; the dispatch
// loop acquire-loads the opcode, so a quickened opcode implies a visible
// payload. Inline-cache slots hold pointers to immutable (or monotonic)
// entries that are only retired, never freed, while the VM lives.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "bytecode/instruction.h"

namespace ijvm {
class VM;
class JThread;
struct JClass;
struct JField;
struct JMethod;
struct TaskClassMirror;
}  // namespace ijvm

namespace ijvm::exec {

struct JitCode;  // exec/jit.cpp: tier-3 call-threaded compiled code

// Polymorphic receiver-class cache for invokevirtual/invokeinterface.
// State machine (docs/execution-tiers.md): monomorphic (one pair) ->
// 2-entry polymorphic (most-recent miss in way 0) -> megamorphic pin.
// Entries are immutable apart from the miss counter, which is carried
// across replacements; a megamorphic site (kMegamorphicMisses total
// misses) is pinned to an entry whose ways are all null -- it never
// matches again and stops further allocation, so a ripping-hot
// megamorphic site costs one vtable load per call, not one IC entry.
// Receiver classes are shared across isolates (only static *state* is
// per-isolate, via the TCM), so class-keyed ways are isolate-sound: the
// same invariant that makes the static cache need isolate keying makes
// this one not need it.
struct VCallIC {
  static constexpr int kWays = 2;
  JClass* receiver_cls[kWays] = {nullptr, nullptr};
  JMethod* target[kWays] = {nullptr, nullptr};
  std::atomic<u32> misses{0};
  bool megamorphic = false;

  // Cache state for tests/introspection: 0 = empty pin, 1 = monomorphic,
  // 2 = polymorphic (megamorphic pins report 0 ways).
  int ways() const {
    return receiver_cls[1] != nullptr ? 2 : (receiver_cls[0] != nullptr ? 1 : 0);
  }
};

inline constexpr u32 kMegamorphicMisses = 8;

// Isolate-aware cache for static (task-class-mirror) access: slot i -- the
// TCM index of the executing isolate -- holds that isolate's *initialized*
// mirror, or null. Slots are monotonic (null -> mirror, never changed
// after), because the TCM of a (class, isolate) pair is a stable pointer;
// keying on the isolate is what makes the cache sound under the paper's
// isolation model, where every bundle has its own copy of statics.
struct StaticIC {
  explicit StaticIC(size_t n) : slots(n) {}
  std::vector<std::atomic<TaskClassMirror*>> slots;
};

struct QInsn {
  std::atomic<Op> op{Op::NOP};
  i32 a = 0;  // original operand (pool index / slot / target / immediate)
  i32 b = 0;  // original secondary operand (IINC delta)
  i32 c = 0;  // quickened payload: field slot / argument slot count
  void* ptr = nullptr;        // quickened payload: JClass*/JField*/JMethod*/CpEntry*
  i64 imm = 0;                // quickened payload: int/long constant
  double dimm = 0.0;          // quickened payload: double constant
  std::atomic<void*> ic{nullptr};  // VCallIC* or StaticIC*
};

struct ExecState;
class CodeCache;       // exec/code_cache.h: bounded compiled-code cache
class CompileManager;  // exec/compile_manager.h: background compiler thread

// A method's rewritten instruction stream; 1:1 with code.insns (same
// indices, same branch targets, same exception-handler ranges). A hot
// method's stream is rewritten a second time by the fusion pass
// (fuse.cpp), which replaces group heads with fused superinstructions;
// the 1:1 index mapping is preserved (inner group instructions keep
// their original opcodes and stay valid jump targets).
struct QCode {
  JMethod* method = nullptr;
  ExecState* state = nullptr;  // owning engine state (IC arena, mutex)
  std::vector<QInsn> insns;

  // Fusion-tier state (written by fuseQCode under the engine mutex;
  // published with release so a relaxed fast-path check in the dispatch
  // loop is cheap). A method promoted *inside* its first invocation (a
  // single call spinning a hot loop) gets a partial pass -- instructions
  // after the loop have not executed, so payload-carrying pairs there
  // cannot fuse yet; fusion_done is only set by a complete pass, which
  // runs at the next entry once a full execution has quickened the
  // stream. The scan skips already-fused heads, so the two passes
  // compose.
  std::atomic<bool> fusion_done{false};     // complete pass ran
  std::atomic<bool> fusion_partial{false};  // in-first-execution pass ran
  // Set by the first execution that runs to a *normal* return. This --
  // not the entry-incremented invocation counter -- gates the complete
  // pass: a recursive method's nested entry bumps invocations while the
  // outer execution (and the stream's quickening) is still in flight,
  // and an execution aborted by unwinding proves nothing about the
  // instructions past its throw point.
  std::atomic<bool> warmed{false};
  std::atomic<u32> fused_groups{0};  // total groups fused, for reporting

  // Tier-3 (baseline JIT, exec/jit.cpp) bookkeeping. A method sits in the
  // promote-to-JIT queue at most once (jit_queued; the latch holds while a
  // background compile is in flight and clears when the finished code is
  // installed or dropped); every deopt bumps jit_deopts, and past
  // kMaxJitDeopts the method is pinned ineligible and stays at the fused
  // tier forever -- each recompile covers strictly more quickened
  // instructions than the last, so an eligible method converges well
  // before the cap (docs/jit.md).
  std::atomic<bool> jit_queued{false};
  std::atomic<bool> jit_ineligible{false};
  std::atomic<u32> jit_deopts{0};
  // On-stack replacements taken into this method's compiled code (jit.cpp,
  // runJitOsr): the observable "a single invocation transitioned fused ->
  // compiled mid-call" counter, asserted by tests/test_osr.cpp.
  std::atomic<u32> osr_entries_taken{0};
  // Re-heat gate written by demotion (docs/jit.md, "Code lifecycle"): the
  // method's raw hotness at the moment its compiled code was demoted.
  // Promotion checks use hotness *above this floor*, so a demoted method
  // must earn jit_threshold fresh invocations/back-edges before it
  // recompiles instead of bouncing straight back into the cache it was
  // just evicted from.
  std::atomic<u64> jit_hotness_floor{0};
  // OSR tail observability (mirrored per-isolate in ResourceStats):
  // transfers refused while compiled code existed (no entry mapping the
  // flushed loop header, or the live operand depth mismatched the entry
  // map), and promotion requests re-fired after this method deopted at
  // least once.
  std::atomic<u32> osr_refused_transfers{0};
  std::atomic<u32> jit_recompile_requests{0};
  // Trace timestamp (obs/trace.h) of the promote-to-JIT request that holds
  // the jit_queued latch; buildJitCode consumes it into the compile
  // queue-wait histogram. 0 = no timed request in flight.
  std::atomic<u64> jit_request_ns{0};

  // Payoff windows (docs/jit.md, "Payoff"; policy in compile_manager.cpp).
  // Two sampled cost accumulators -- nanoseconds and profiled units
  // (1 invocation + the back-edges that invocation executed) over up to
  // VmOptions::jit_payoff_samples timed invocations each:
  //   pre  -- fused-tier invocations while the method is within reach of
  //           promotion (hotness past jit_threshold/2) or its compile is
  //           in flight;
  //   post -- compiled invocations after install.
  // payoff_epoch guards both windows against mixed-generation samples: it
  // is bumped by payoffResetWindows whenever the compiled code retires
  // (demotion, deopt, poison sweep) or a payoff verdict lands, and every
  // sampler snapshots it before timing -- a sample whose epoch no longer
  // matches at accumulate time is dropped, so a mid-window demote or an
  // OSR transfer can never fold one generation's time into another's
  // window (the double-counting seam of PR 4's per-invocation OSR latch).
  std::atomic<u32> payoff_epoch{0};
  std::atomic<u64> payoff_pre_ns{0};
  std::atomic<u64> payoff_pre_units{0};
  std::atomic<u32> payoff_pre_samples{0};
  std::atomic<u64> payoff_post_ns{0};
  std::atomic<u64> payoff_post_units{0};
  std::atomic<u32> payoff_post_samples{0};
  // Payoff verdicts: demotions taken because compiled code measured
  // slower (pins jit_ineligible at VmOptions::jit_payoff_max_demotes),
  // and the settled latch set when a full post window measured at or
  // above the required speedup (sampling stops; the method has proven
  // its promotion).
  std::atomic<u32> payoff_demotes{0};
  std::atomic<bool> payoff_settled{false};
};

inline constexpr u32 kMaxJitDeopts = 8;

// Per-VM engine state, owned by the VM through its extension table (key
// exec::kStateKey). Everything the engine allocates lives here until the
// VM dies, so concurrent readers of retired IC entries stay valid.
struct ExecState {
  // Out-of-line (jit.cpp) so the jit_codes arena can hold the opaque
  // JitCode type.
  ExecState();
  ~ExecState();

  std::mutex mutex;  // guards quickening rewrites and IC installation
  std::deque<std::unique_ptr<QCode>> codes;
  std::deque<std::unique_ptr<VCallIC>> vcall_ics;
  std::deque<std::unique_ptr<StaticIC>> static_ics;

  // Promote-to-JIT queue (guarded by mutex; jit_pending is the lock-free
  // "anything to do?" flag the dispatch loop checks at method entry and at
  // the back-edge batch flush). Fed by the engine's own hotness check and
  // by the governor's PromoteJit action; drained by exec::drainJitQueue.
  // With background compilation the queue holds only synchronous-mode
  // requests -- background requests go to the CompileManager, whose
  // finished code raises jit_pending so the mutator installs it at its
  // next drain point (docs/jit.md, "Code lifecycle").
  std::deque<JMethod*> jit_queue;
  std::atomic<bool> jit_pending{false};
  // Compiled-code arena. Installed and retired JitCodes live here; unlike
  // the IC arenas this one is *bounded*: the CodeCache moves demoted and
  // deopt-invalidated entries to a retired set, and
  // exec::sweepRetiredJitCode erases them -- under stop-the-world, once no
  // frame still executes them -- so compiled code is a managed, revocable
  // resource rather than a one-way promotion.
  std::deque<std::unique_ptr<JitCode>> jit_codes;

  // Declared last so they are destroyed first: the CompileManager's worker
  // joins while the rest of this state (mutex, arenas) is still alive.
  std::unique_ptr<CodeCache> code_cache;
  std::unique_ptr<CompileManager> compile_mgr;
};

inline constexpr const char* kStateKey = "exec.state";

// The VM's engine state (created on first use; engine.cpp).
ExecState& engineState(VM& vm);

// Slow paths shared between the threaded interpreter (engine.cpp) and the
// tier-3 compiled code (jit.cpp), so both tiers drive one IC state machine
// through the same QInsn::ic slots (the IC-sharing rule of docs/jit.md).
void installVCallIC(ExecState& st, QInsn& q, JClass* cls, JMethod* target,
                    VCallIC* missed);
TaskClassMirror* staticMirrorSlow(VM& vm, JThread* t, ExecState& st, QInsn& q,
                                  JField* f);

}  // namespace ijvm::exec
