// Superinstruction fusion: the third execution tier (docs/execution-tiers.md).
//
// Once a method is hot (invocations + loop back-edges cross
// VmOptions::fusion_threshold), its quickened stream is rewritten a second
// time: hot adjacent pairs/triples are collapsed into single fused opcodes
// with dedicated direct-threaded handlers, cutting dispatch count and
// operand-stack traffic on exactly the loops where interpretation cost
// dominates (the paper's Figure-1 micro-benchmarks). Compile out the whole
// tier with -DIJVM_DISABLE_FUSION; disable per VM with
// VmOptions::fusion = false.
#pragma once

#include "support/common.h"

namespace ijvm::exec {

struct QCode;

// Fuses eligible adjacent groups in `qc` (idempotent -- already-fused
// heads are skipped; takes the engine mutex; safe while other threads
// execute the same stream, see the publication rules in fuse.cpp).
// `complete` marks a pass running after at least one full execution
// quickened the stream: only such a pass sets QCode::fusion_done and
// retires the method from further promotion checks. A partial pass (hot
// inside the very first invocation) fuses what is quickened so far and
// leaves the method eligible for the complete pass at its next entry; it
// runs *before* the same flush's OSR check, so a mid-invocation tier-3
// compile (docs/jit.md, "On-stack replacement") already sees the fused
// loop. Returns the number of groups fused by this pass.
u32 fuseQCode(QCode& qc, bool complete);

}  // namespace ijvm::exec
