// The tier-3 baseline JIT: a call-threaded method compiler.
//
// "Compilation" here is portable call-threading, not native code: a hot
// method's quickened/fused stream is translated once into a flat array of
// MInsn thunks -- each a pre-bound handler function pointer plus fully
// resolved operands -- and execution is
//
//   const MInsn* ip = jc.entry;            // the patchable entry point
//   while (ip != nullptr) ip = ip->fn(cx, *ip);
//
// one indirect call per thunk. Relative to the threaded interpreter this
// removes, per executed instruction: the atomic opcode load, the pc bounds
// check, the per-instruction frame.pc store, the operand decode, and the
// std::vector push/pop traffic (the compiled frame drives a raw
// operand-stack pointer over a pre-sized region of frame.stack). Branch
// targets are pre-linked as MInsn pointers; fused superinstructions
// compile to single thunks; and the compiler peepholes one jit-only
// combination (fused arithmetic straight into a local store) on top.
//
// Everything the execution tiers must agree on -- inline-cache state,
// safepoint/termination polling, per-isolate statics, exception dispatch,
// profile counters -- is shared with engine.cpp, not duplicated: compiled
// thunks read and install ICs through the *same* QInsn::ic slots, and the
// slow paths (installVCallIC / staticMirrorSlow) are the interpreter's
// own. The full compiled-code contract lives in docs/jit.md.
//
// GC discipline: the compiled frame resizes frame.stack to the method's
// verified max stack depth once at entry and keeps it that size, so the
// GC's frame scan always covers every slot the raw stack pointer can
// touch. Slots above the logical depth hold dead-but-traceable values
// (they were either zero-initialized or legitimately popped), which can
// retain garbage until the frame exits but can never dangle.
#include "exec/jit.h"

#include <deque>
#include <vector>

#include "bytecode/disasm.h"
#include "classes/class_loader.h"
#include "exec/code_cache.h"
#include "exec/compile_manager.h"
#include "exec/interp_support.h"
#include "exec/jit_internal.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::exec {

using namespace interp;

namespace {

// Trace payloads for compile-pipeline events (obs/trace.h): the method's
// interned "Class.name" and its defining isolate. Cold paths only (the
// interning takes a lock).
u32 jitTraceName(const JMethod* m) {
  if (!obs::traceEnabled()) return 0;
  return obs::internTraceName(m->owner->name + "." + m->name);
}

i32 jitTraceIsolate(const JMethod* m) {
  Isolate* iso = m->owner->loader->isolate();
  return iso != nullptr ? iso->id : -1;
}

}  // namespace

// Out-of-line so ExecState's jit_codes arena can own the otherwise-opaque
// JitCode (quickened.h forward-declares it), and so its CodeCache /
// CompileManager members see complete types. The CompileManager itself is
// created lazily by the first background promote-to-JIT request.
ExecState::ExecState() : code_cache(std::make_unique<CodeCache>()) {}
ExecState::~ExecState() = default;

struct JitCtx {
  JitCtx(VM& vm_in, JThread* t_in, Frame& frame_in, JitCode& jc_in)
      : vm(vm_in), t(t_in), frame(frame_in), jc(jc_in) {}

  VM& vm;
  JThread* t;
  Frame& frame;
  JitCode& jc;
  Value* base = nullptr;  // frame.stack backing, sized to max_stack
  Value* sp = nullptr;    // next free operand slot
  Value* locals = nullptr;
  u64 pending_edges = 0;
  // Total back-edges this compiled execution ran (accumulated at every
  // flushEdges): the payoff model's per-invocation unit weight, so an
  // invocation spinning a long loop is not costed like a straight call.
  u64 total_edges = 0;
  bool accounting = false;
  // The executing isolate's TCM index, hoisted once per compiled entry:
  // a thread's isolate reference is fixed for the duration of one frame
  // (inter-isolate calls switch it on entry and restore it on return), so
  // every static access in this frame keys the same cache slot.
  i32 tcm_idx = 0;
  JitExit exit = JitExit::Returned;
  Value result;
};

namespace {

// ---- shared runtime helpers -------------------------------------------

void flushEdges(JitCtx& cx) {
  if (cx.pending_edges == 0) return;
  cx.total_edges += cx.pending_edges;
  cx.frame.method->profile_loop_edges.fetch_add(cx.pending_edges,
                                                std::memory_order_relaxed);
  if (cx.accounting && cx.frame.isolate != nullptr) {
    cx.frame.isolate->stats.loop_back_edges.fetch_add(cx.pending_edges,
                                                      std::memory_order_relaxed);
  }
  cx.pending_edges = 0;
}

// Safepoint & thread-attention poll; same cadence as the threaded
// interpreter (method entry, taken loop back-edges, exception dispatch).
void pollJit(JitCtx& cx) {
  JThread* t = cx.t;
  SafepointController& sps = cx.vm.safepoints();
  if (sps.stopRequested()) sps.poll();
  t->publishEra(sps.currentEra());
  if (t->force_kill.load(std::memory_order_relaxed) &&
      t->pending_exception == nullptr) {
    throwStopped(cx.vm, t, kKillAll);
  } else if (t->pending_stop_isolate.load(std::memory_order_relaxed) >= 0 &&
             t->pending_exception == nullptr) {
    i32 target = t->pending_stop_isolate.exchange(-1, std::memory_order_acq_rel);
    if (target >= 0) throwStopped(cx.vm, t, target);
  }
  IJVM_PROFILE_POLL(cx.vm, t);
}

// Exception raised at this thunk: record the faulting pc and enter the
// shared dispatch thunk.
inline const MInsn* throwHere(JitCtx& cx, const MInsn& mi) {
  cx.frame.pc = mi.pc;
  return &cx.jc.exn;
}

void invalidate(JitCode& jc) {
  jc.invalidated.store(true, std::memory_order_release);
  jc.qc->jit_deopts.fetch_add(1, std::memory_order_relaxed);
  obs::emit(obs::Ev::JitDeopt, obs::Ph::Instant, jitTraceIsolate(jc.method),
            jitTraceName(jc.method));
  // Un-patch the entry and retire the code into the cache's reclaim set
  // (code_cache.cpp). The arena keeps the JitCode alive for threads still
  // inside it; sweepRetiredJitCode frees it once none are.
  retireJitCode(jc, /*deopt=*/true);
}

// Deoptimize: hand the frame to the threaded interpreter at `pc` with the
// operand stack resized to its logical depth, and invalidate the compiled
// code (the cold site will quicken under the interpreter; the method
// re-promotes later and the next compile covers it -- docs/jit.md).
const MInsn* deoptAt(JitCtx& cx, i32 pc) {
  flushEdges(cx);
  cx.frame.pc = pc;
  cx.frame.stack.resize(static_cast<size_t>(cx.sp - cx.base));
  cx.exit = JitExit::Deopt;
  invalidate(cx.jc);
  return nullptr;
}

// Taken branch: pre-linked target, with back-edge counting and the
// termination poll (frame.pc moves to the target *before* the poll so a
// stop exception dispatches there, as in the interpreter tiers).
inline const MInsn* takeBranch(JitCtx& cx, const MInsn& mi) {
  if (mi.tpc <= mi.pc) {
    if ((++cx.pending_edges & 0xFFF) == 0) flushEdges(cx);
    cx.frame.pc = mi.tpc;
    pollJit(cx);
    if (cx.t->pending_exception != nullptr) return &cx.jc.exn;
  }
  return mi.target;
}

inline void jpush(JitCtx& cx, Value v) { *cx.sp++ = v; }
inline Value jpop(JitCtx& cx) { return *--cx.sp; }

#define JH(name) const MInsn* name(JitCtx& cx, const MInsn& mi)

// ---- control thunks ---------------------------------------------------

// The shared exception-dispatch thunk. frame.pc was set by whoever threw.
JH(op_exception) {
  (void)mi;
  flushEdges(cx);
  Frame& f = cx.frame;
  if (!dispatchExceptionInFrame(cx.vm, cx.t, f)) {
    cx.exit = JitExit::Unwound;
    return nullptr;  // unwind to caller with the exception pending
  }
  // Handled: the dispatcher left [exc] as the sole stack entry. Restore
  // the full scanned region and resume at the handler's thunk.
  f.stack.resize(cx.jc.max_stack);
  cx.base = f.stack.data();
  cx.sp = cx.base + 1;
  pollJit(cx);
  if (cx.t->pending_exception != nullptr) return &cx.jc.exn;
  const i32 slot = cx.jc.slot_of_pc[static_cast<size_t>(f.pc)];
  if (slot < 0) return deoptAt(cx, f.pc);  // handler pc not compiled
  return &cx.jc.code[static_cast<size_t>(slot)];
}

// Entry thunk installed by poisonCompiledEntry: the paper's patched
// compiled-method entry point. Raises StoppedIsolateException targeting
// the owning (terminated) isolate; the dispatch thunk then skips every
// handler of that isolate, so the method can never be re-entered.
JH(op_entry_poisoned) {
  (void)mi;
  Isolate* iso = cx.frame.method->owner->loader->isolate();
  throwStopped(cx.vm, cx.t, iso != nullptr ? iso->id : kKillAll);
  cx.frame.pc = 0;
  return &cx.jc.exn;
}

// Compiled placeholder for an instruction that had not quickened when the
// method was compiled (a cold path inside a hot method).
JH(op_deopt) { return deoptAt(cx, mi.pc); }

// First thunk of an on-stack-replacement entry (docs/jit.md): the
// method-entry poll, run at the loop header the live frame just
// transferred onto. frame.pc is already at the header, so a stop raised
// by the poll dispatches there -- the same rule compiled back-edges obey.
JH(op_osr_enter) {
  pollJit(cx);
  if (cx.t->pending_exception != nullptr) {
    cx.frame.pc = mi.pc;
    return &cx.jc.exn;
  }
  return mi.target;
}

// Poisoned OSR entry installed by poisonCompiledEntry: the same
// patched-entry mechanism as op_entry_poisoned, but frame.pc stays at the
// loop header the transfer targeted (every handler of the dead isolate is
// skipped by the dispatch thunk regardless).
JH(op_osr_poisoned) {
  (void)mi;
  Isolate* iso = cx.frame.method->owner->loader->isolate();
  throwStopped(cx.vm, cx.t, iso != nullptr ? iso->id : kKillAll);
  return &cx.jc.exn;
}

// ---- constants / locals / stack ---------------------------------------

JH(op_nop) {
  (void)cx;
  return mi.next;
}
JH(op_aconst_null) {
  jpush(cx, Value::nullRef());
  return mi.next;
}
JH(op_iconst) {
  jpush(cx, Value::ofInt(mi.a));
  return mi.next;
}
JH(op_ldc_int) {
  jpush(cx, Value::ofInt(static_cast<i32>(mi.imm)));
  return mi.next;
}
JH(op_ldc_long) {
  jpush(cx, Value::ofLong(mi.imm));
  return mi.next;
}
JH(op_ldc_double) {
  jpush(cx, Value::ofDouble(mi.dimm));
  return mi.next;
}
JH(op_ldc_str) {
  Object* s = cx.vm.internString(cx.t, static_cast<CpEntry*>(mi.ptr)->text);
  if (s != nullptr) jpush(cx, Value::ofRef(s));
  if (cx.t->pending_exception != nullptr) return throwHere(cx, mi);
  return mi.next;
}
JH(op_load) {
  jpush(cx, cx.locals[mi.a]);
  return mi.next;
}
JH(op_store) {
  cx.locals[mi.a] = jpop(cx);
  return mi.next;
}
JH(op_iinc) {
  Value& v = cx.locals[mi.a];
  v = Value::ofInt(v.asInt() + mi.b);
  return mi.next;
}
JH(op_pop) {
  --cx.sp;
  return mi.next;
}
JH(op_dup) {
  cx.sp[0] = cx.sp[-1];
  ++cx.sp;
  return mi.next;
}
JH(op_dup_x1) {
  Value a = cx.sp[-1];
  Value b = cx.sp[-2];
  cx.sp[-2] = a;
  cx.sp[-1] = b;
  cx.sp[0] = a;
  ++cx.sp;
  return mi.next;
}
JH(op_swap) {
  Value a = cx.sp[-1];
  cx.sp[-1] = cx.sp[-2];
  cx.sp[-2] = a;
  return mi.next;
}

// ---- arithmetic -------------------------------------------------------

#define JIT_IBIN(NAME, EXPR)                                                   \
  JH(NAME) {                                                                   \
    const i32 b = cx.sp[-1].asInt();                                           \
    const i32 a = cx.sp[-2].asInt();                                           \
    --cx.sp;                                                                   \
    cx.sp[-1] = Value::ofInt(EXPR);                                            \
    return mi.next;                                                            \
  }
JIT_IBIN(op_iadd, static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
JIT_IBIN(op_isub, static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
JIT_IBIN(op_imul, static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
JIT_IBIN(op_ishl, static_cast<i32>(static_cast<u32>(a) << wrapShift32(b)))
JIT_IBIN(op_ishr, a >> wrapShift32(b))
JIT_IBIN(op_iushr, static_cast<i32>(static_cast<u32>(a) >> wrapShift32(b)))
JIT_IBIN(op_iand, a & b)
JIT_IBIN(op_ior, a | b)
JIT_IBIN(op_ixor, a ^ b)
#undef JIT_IBIN

JH(op_idiv) {
  const i32 b = jpop(cx).asInt();
  const i32 a = jpop(cx).asInt();
  if (b == 0) {
    cx.vm.throwGuest(cx.t, "java/lang/ArithmeticException", "/ by zero");
    return throwHere(cx, mi);
  }
  jpush(cx, Value::ofInt(idivSafe(a, b)));
  return mi.next;
}
JH(op_irem) {
  const i32 b = jpop(cx).asInt();
  const i32 a = jpop(cx).asInt();
  if (b == 0) {
    cx.vm.throwGuest(cx.t, "java/lang/ArithmeticException", "/ by zero");
    return throwHere(cx, mi);
  }
  jpush(cx, Value::ofInt(iremSafe(a, b)));
  return mi.next;
}
JH(op_ineg) {
  cx.sp[-1] = Value::ofInt(
      static_cast<i32>(0u - static_cast<u32>(cx.sp[-1].asInt())));
  return mi.next;
}

#define JIT_LBIN(NAME, EXPR)                                                   \
  JH(NAME) {                                                                   \
    const i64 b = cx.sp[-1].asLong();                                          \
    const i64 a = cx.sp[-2].asLong();                                          \
    --cx.sp;                                                                   \
    cx.sp[-1] = Value::ofLong(EXPR);                                           \
    return mi.next;                                                            \
  }
JIT_LBIN(op_ladd, static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b)))
JIT_LBIN(op_lsub, static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b)))
JIT_LBIN(op_lmul, static_cast<i64>(static_cast<u64>(a) * static_cast<u64>(b)))
JIT_LBIN(op_land, a & b)
JIT_LBIN(op_lor, a | b)
JIT_LBIN(op_lxor, a ^ b)
#undef JIT_LBIN

JH(op_lshl) {
  const i32 sh = jpop(cx).asInt();
  const i64 a = cx.sp[-1].asLong();
  cx.sp[-1] =
      Value::ofLong(static_cast<i64>(static_cast<u64>(a) << wrapShift64(sh)));
  return mi.next;
}
JH(op_lshr) {
  const i32 sh = jpop(cx).asInt();
  const i64 a = cx.sp[-1].asLong();
  cx.sp[-1] = Value::ofLong(a >> wrapShift64(sh));
  return mi.next;
}
JH(op_ldiv) {
  const i64 b = jpop(cx).asLong();
  const i64 a = jpop(cx).asLong();
  if (b == 0) {
    cx.vm.throwGuest(cx.t, "java/lang/ArithmeticException", "/ by zero");
    return throwHere(cx, mi);
  }
  jpush(cx, Value::ofLong(ldivSafe(a, b)));
  return mi.next;
}
JH(op_lrem) {
  const i64 b = jpop(cx).asLong();
  const i64 a = jpop(cx).asLong();
  if (b == 0) {
    cx.vm.throwGuest(cx.t, "java/lang/ArithmeticException", "/ by zero");
    return throwHere(cx, mi);
  }
  jpush(cx, Value::ofLong(lremSafe(a, b)));
  return mi.next;
}
JH(op_lneg) {
  cx.sp[-1] = Value::ofLong(
      static_cast<i64>(0ull - static_cast<u64>(cx.sp[-1].asLong())));
  return mi.next;
}
JH(op_lcmp) {
  const i64 b = jpop(cx).asLong();
  const i64 a = cx.sp[-1].asLong();
  cx.sp[-1] = Value::ofInt(a < b ? -1 : (a > b ? 1 : 0));
  return mi.next;
}

#define JIT_DBIN(NAME, EXPR)                                                   \
  JH(NAME) {                                                                   \
    const double b = cx.sp[-1].asDouble();                                     \
    const double a = cx.sp[-2].asDouble();                                     \
    --cx.sp;                                                                   \
    cx.sp[-1] = Value::ofDouble(EXPR);                                         \
    return mi.next;                                                            \
  }
JIT_DBIN(op_dadd, a + b)
JIT_DBIN(op_dsub, a - b)
JIT_DBIN(op_dmul, a * b)
JIT_DBIN(op_ddiv, a / b)
JIT_DBIN(op_drem, std::fmod(a, b))
#undef JIT_DBIN

JH(op_dneg) {
  cx.sp[-1] = Value::ofDouble(-cx.sp[-1].asDouble());
  return mi.next;
}
JH(op_dcmpl) {
  const double b = jpop(cx).asDouble();
  const double a = cx.sp[-1].asDouble();
  i32 r = (std::isnan(a) || std::isnan(b)) ? -1 : (a < b ? -1 : (a > b ? 1 : 0));
  cx.sp[-1] = Value::ofInt(r);
  return mi.next;
}
JH(op_dcmpg) {
  const double b = jpop(cx).asDouble();
  const double a = cx.sp[-1].asDouble();
  i32 r = (std::isnan(a) || std::isnan(b)) ? 1 : (a < b ? -1 : (a > b ? 1 : 0));
  cx.sp[-1] = Value::ofInt(r);
  return mi.next;
}

JH(op_i2l) {
  cx.sp[-1] = Value::ofLong(cx.sp[-1].asInt());
  return mi.next;
}
JH(op_i2d) {
  cx.sp[-1] = Value::ofDouble(cx.sp[-1].asInt());
  return mi.next;
}
JH(op_l2i) {
  cx.sp[-1] = Value::ofInt(static_cast<i32>(cx.sp[-1].asLong()));
  return mi.next;
}
JH(op_l2d) {
  cx.sp[-1] = Value::ofDouble(static_cast<double>(cx.sp[-1].asLong()));
  return mi.next;
}
JH(op_d2i) {
  cx.sp[-1] = Value::ofInt(d2iSat(cx.sp[-1].asDouble()));
  return mi.next;
}
JH(op_d2l) {
  cx.sp[-1] = Value::ofLong(d2lSat(cx.sp[-1].asDouble()));
  return mi.next;
}

// ---- branches ---------------------------------------------------------

#define JIT_IF1(NAME, CMP)                                                     \
  JH(NAME) {                                                                   \
    const i32 a = jpop(cx).asInt();                                            \
    if (a CMP 0) return takeBranch(cx, mi);                                    \
    return mi.next;                                                            \
  }
JIT_IF1(op_ifeq, ==)
JIT_IF1(op_ifne, !=)
JIT_IF1(op_iflt, <)
JIT_IF1(op_ifge, >=)
JIT_IF1(op_ifgt, >)
JIT_IF1(op_ifle, <=)
#undef JIT_IF1

#define JIT_IF2(NAME, CMP)                                                     \
  JH(NAME) {                                                                   \
    const i32 b = jpop(cx).asInt();                                            \
    const i32 a = jpop(cx).asInt();                                            \
    if (a CMP b) return takeBranch(cx, mi);                                    \
    return mi.next;                                                            \
  }
JIT_IF2(op_if_icmpeq, ==)
JIT_IF2(op_if_icmpne, !=)
JIT_IF2(op_if_icmplt, <)
JIT_IF2(op_if_icmpge, >=)
JIT_IF2(op_if_icmpgt, >)
JIT_IF2(op_if_icmple, <=)
#undef JIT_IF2

JH(op_if_acmpeq) {
  Object* b = jpop(cx).asRef();
  Object* a = jpop(cx).asRef();
  if (a == b) return takeBranch(cx, mi);
  return mi.next;
}
JH(op_if_acmpne) {
  Object* b = jpop(cx).asRef();
  Object* a = jpop(cx).asRef();
  if (a != b) return takeBranch(cx, mi);
  return mi.next;
}
JH(op_ifnull) {
  if (jpop(cx).asRef() == nullptr) return takeBranch(cx, mi);
  return mi.next;
}
JH(op_ifnonnull) {
  if (jpop(cx).asRef() != nullptr) return takeBranch(cx, mi);
  return mi.next;
}
JH(op_goto) { return takeBranch(cx, mi); }

// ---- fused superinstructions (compiled from the tier-2 stream) --------

#define JIT_FUSED_ARITH(NAME, EXPR)                                            \
  JH(NAME) {                                                                   \
    const i32 a = cx.locals[mi.a].asInt();                                     \
    const i32 b = cx.locals[mi.c].asInt();                                     \
    jpush(cx, Value::ofInt(EXPR));                                             \
    return mi.next;                                                            \
  }
JIT_FUSED_ARITH(op_ll_iadd, static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
JIT_FUSED_ARITH(op_ll_isub, static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
JIT_FUSED_ARITH(op_ll_imul, static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
JIT_FUSED_ARITH(op_ll_iand, a & b)
JIT_FUSED_ARITH(op_ll_ior, a | b)
JIT_FUSED_ARITH(op_ll_ixor, a ^ b)
#undef JIT_FUSED_ARITH

// Jit-only peephole: fused arithmetic straight into a local store
// (`ILOAD a; ILOAD c; <op>; ISTORE b` in one thunk, zero stack traffic).
#define JIT_FUSED_ARITH_ST(NAME, EXPR)                                         \
  JH(NAME) {                                                                   \
    const i32 a = cx.locals[mi.a].asInt();                                     \
    const i32 b = cx.locals[mi.c].asInt();                                     \
    cx.locals[mi.b] = Value::ofInt(EXPR);                                      \
    return mi.next;                                                            \
  }
JIT_FUSED_ARITH_ST(op_ll_iadd_st, static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
JIT_FUSED_ARITH_ST(op_ll_isub_st, static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
JIT_FUSED_ARITH_ST(op_ll_imul_st, static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
JIT_FUSED_ARITH_ST(op_ll_iand_st, a & b)
JIT_FUSED_ARITH_ST(op_ll_ior_st, a | b)
JIT_FUSED_ARITH_ST(op_ll_ixor_st, a ^ b)
#undef JIT_FUSED_ARITH_ST

// Jit-only peephole: the long/double analog of the int local-pair triples
// (`DLOAD a; DLOAD c; <op>` / `LLOAD a; LLOAD c; <op>` in one thunk).
// The fusion tier never forms these -- wide pairs are rare in classic
// OSGi code -- but numeric kernels (the mpegaudio FIR shape) spin on
// them; the compiler picks them up from the *plain* quickened stream.
// LDIV/LREM are excluded: they throw, and the triple's zero-divisor
// unwind state would need its own dispatch bookkeeping for a case that
// is never hot.
#define JIT_WIDE_ARITH(NAME, GETTER, MAKE, EXPR)                               \
  JH(NAME) {                                                                   \
    const auto a = cx.locals[mi.a].GETTER();                                   \
    const auto b = cx.locals[mi.c].GETTER();                                   \
    jpush(cx, MAKE(EXPR));                                                     \
    return mi.next;                                                            \
  }
JIT_WIDE_ARITH(op_dd_dadd, asDouble, Value::ofDouble, a + b)
JIT_WIDE_ARITH(op_dd_dsub, asDouble, Value::ofDouble, a - b)
JIT_WIDE_ARITH(op_dd_dmul, asDouble, Value::ofDouble, a * b)
JIT_WIDE_ARITH(op_dd_ddiv, asDouble, Value::ofDouble, a / b)
JIT_WIDE_ARITH(op_lw_ladd, asLong, Value::ofLong,
               static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b)))
JIT_WIDE_ARITH(op_lw_lsub, asLong, Value::ofLong,
               static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b)))
JIT_WIDE_ARITH(op_lw_lmul, asLong, Value::ofLong,
               static_cast<i64>(static_cast<u64>(a) * static_cast<u64>(b)))
JIT_WIDE_ARITH(op_lw_land, asLong, Value::ofLong, a & b)
JIT_WIDE_ARITH(op_lw_lor, asLong, Value::ofLong, a | b)
JIT_WIDE_ARITH(op_lw_lxor, asLong, Value::ofLong, a ^ b)
#undef JIT_WIDE_ARITH

#define JIT_FUSED_CMP(NAME, CMP)                                               \
  JH(NAME) {                                                                   \
    const i32 a = cx.locals[mi.a].asInt();                                     \
    const i32 b = cx.locals[mi.c].asInt();                                     \
    if (a CMP b) return takeBranch(cx, mi);                                    \
    return mi.next;                                                            \
  }
JIT_FUSED_CMP(op_ll_icmpeq, ==)
JIT_FUSED_CMP(op_ll_icmpne, !=)
JIT_FUSED_CMP(op_ll_icmplt, <)
JIT_FUSED_CMP(op_ll_icmpge, >=)
JIT_FUSED_CMP(op_ll_icmpgt, >)
JIT_FUSED_CMP(op_ll_icmple, <=)
#undef JIT_FUSED_CMP

JH(op_iconst_iadd) {
  cx.sp[-1] = Value::ofInt(static_cast<i32>(
      static_cast<u32>(cx.sp[-1].asInt()) + static_cast<u32>(mi.a)));
  return mi.next;
}
JH(op_aload_getfield) {
  Object* obj = cx.locals[mi.a].asRef();
  if (obj == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException",
                     static_cast<JField*>(mi.ptr)->name);
    return throwHere(cx, mi);
  }
  jpush(cx, obj->fields()[mi.c]);
  return mi.next;
}
JH(op_iinc_goto) {
  Value& v = cx.locals[mi.a];
  v = Value::ofInt(v.asInt() + mi.b);
  return takeBranch(cx, mi);
}

// Jit-only peephole: instance-field load feeding an int arithmetic op in
// one thunk. Two receiver sources share one body: `GETFIELD_Q f; <op>`
// takes the receiver from the stack (stack [.., x, obj] -> [.., x op
// obj.f], no intermediate push), the fused `ALOAD_GETFIELD_F; <op>` form
// reads it straight from a local. On NPE the stack is exactly as the
// interpreter leaves it (the stacked receiver was popped); handlers
// clear the stack on entry, so the partial consumption is unobservable
// (same rule as fused groups).
#define JIT_FIELD_ARITH(NAME, OBJ_EXPR, EXPR)                                  \
  JH(NAME) {                                                                   \
    Object* obj = (OBJ_EXPR).asRef();                                          \
    if (obj == nullptr) {                                                      \
      cx.vm.throwGuest(cx.t, "java/lang/NullPointerException",                 \
                       static_cast<JField*>(mi.ptr)->name);                    \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    const i32 b = obj->fields()[mi.c].asInt();                                 \
    const i32 a = cx.sp[-1].asInt();                                           \
    cx.sp[-1] = Value::ofInt(EXPR);                                            \
    return mi.next;                                                            \
  }
#define JIT_FIELD_ARITH_PAIR(OP, EXPR)                                         \
  JIT_FIELD_ARITH(op_gf_##OP, jpop(cx), EXPR)                                  \
  JIT_FIELD_ARITH(op_lgf_##OP, cx.locals[mi.a], EXPR)
JIT_FIELD_ARITH_PAIR(iadd, static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
JIT_FIELD_ARITH_PAIR(isub, static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
JIT_FIELD_ARITH_PAIR(imul, static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
JIT_FIELD_ARITH_PAIR(iand, a & b)
JIT_FIELD_ARITH_PAIR(ior, a | b)
JIT_FIELD_ARITH_PAIR(ixor, a ^ b)
#undef JIT_FIELD_ARITH_PAIR
#undef JIT_FIELD_ARITH

// ---- returns ----------------------------------------------------------

JH(op_return) {
  (void)mi;
  flushEdges(cx);
  cx.exit = JitExit::Returned;
  return nullptr;
}
JH(op_vreturn) {
  (void)mi;
  flushEdges(cx);
  cx.exit = JitExit::Returned;
  cx.result = *--cx.sp;
  return nullptr;
}

// ---- statics (isolate-keyed mirror caches, shared with tier 1) --------

// Isolate-keyed mirror lookup through the shared StaticIC slot; null on
// a cache miss (caller takes the shared slow path).
inline TaskClassMirror* staticMirrorFast(JitCtx& cx, const MInsn& mi) {
  if (auto* sic = static_cast<StaticIC*>(mi.q->ic.load(std::memory_order_acquire))) {
    if (static_cast<size_t>(cx.tcm_idx) < sic->slots.size()) {
      return sic->slots[static_cast<size_t>(cx.tcm_idx)].load(
          std::memory_order_acquire);
    }
  }
  return nullptr;
}

JH(op_getstatic_q) {
  TaskClassMirror* mirror = staticMirrorFast(cx, mi);
  if (mirror == nullptr) {
    cx.frame.pc = mi.pc;  // slow path may run <clinit> / throw / GC
    mirror = staticMirrorSlow(cx.vm, cx.t, *cx.jc.qc->state, *mi.q,
                              static_cast<JField*>(mi.ptr));
    if (mirror == nullptr) return &cx.jc.exn;
  }
  jpush(cx, mirror->statics[static_cast<size_t>(mi.c)]);
  return mi.next;
}
JH(op_putstatic_q) {
  TaskClassMirror* mirror = staticMirrorFast(cx, mi);
  if (mirror == nullptr) {
    cx.frame.pc = mi.pc;
    mirror = staticMirrorSlow(cx.vm, cx.t, *cx.jc.qc->state, *mi.q,
                              static_cast<JField*>(mi.ptr));
    if (mirror == nullptr) return &cx.jc.exn;
  }
  mirror->statics[static_cast<size_t>(mi.c)] = jpop(cx);
  return mi.next;
}

// Jit-only peephole: a static int read-modify-write through one mirror
// lookup (`GETSTATIC_Q f; ICONST k; IADD; PUTSTATIC_Q f` -- fused or not
// -- in one thunk). Sound because both accesses name the same field of
// the same isolate's mirror, so a single cache hit proves <clinit> ran
// for both; the write is one store, so no partial state is observable.
JH(op_static_iadd) {
  TaskClassMirror* mirror = staticMirrorFast(cx, mi);
  if (mirror == nullptr) {
    cx.frame.pc = mi.pc;
    mirror = staticMirrorSlow(cx.vm, cx.t, *cx.jc.qc->state, *mi.q,
                              static_cast<JField*>(mi.ptr));
    if (mirror == nullptr) return &cx.jc.exn;
  }
  Value& slot = mirror->statics[static_cast<size_t>(mi.c)];
  slot = Value::ofInt(static_cast<i32>(static_cast<u32>(slot.asInt()) +
                                       static_cast<u32>(mi.a)));
  return mi.next;
}

// ---- instance fields --------------------------------------------------

JH(op_getfield_q) {
  Object* obj = jpop(cx).asRef();
  if (obj == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException",
                     static_cast<JField*>(mi.ptr)->name);
    return throwHere(cx, mi);
  }
  jpush(cx, obj->fields()[mi.c]);
  return mi.next;
}
JH(op_putfield_q) {
  Value v = jpop(cx);
  Object* obj = jpop(cx).asRef();
  if (obj == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException",
                     static_cast<JField*>(mi.ptr)->name);
    return throwHere(cx, mi);
  }
  obj->fields()[mi.c] = v;
  return mi.next;
}

// ---- calls ------------------------------------------------------------

// Shared call tail. The arguments live in our scanned stack region, so
// they stay GC-visible for the duration of the call.
inline const MInsn* finishCall(JitCtx& cx, const MInsn& mi, JMethod* callee,
                               i32 nargs, bool discard = false) {
  flushEdges(cx);
  cx.frame.pc = mi.pc;  // exception dispatch resumes at the call site
  Value r = cx.vm.invokeCore(cx.t, callee, cx.sp - nargs, nargs);
  cx.sp -= nargs;
  if (cx.t->pending_exception != nullptr) return &cx.jc.exn;
  if (!discard && callee->sig.ret.kind != Kind::Void) jpush(cx, r);
  return mi.next;
}

// Virtual/interface dispatch through the *shared* VCallIC slot: the same
// mono -> 2-entry poly -> megamorphic machine as the interpreter, driven
// by the same installVCallIC slow path.
inline const MInsn* invokeWithIC(JitCtx& cx, const MInsn& mi, bool is_virtual,
                                 bool discard = false) {
  JMethod* resolved = static_cast<JMethod*>(mi.ptr);
  const i32 nargs = mi.c;
  Object* recv = cx.sp[-nargs].asRef();
  if (recv == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", resolved->name);
    return throwHere(cx, mi);
  }
  JMethod* callee;
  auto* cache = static_cast<VCallIC*>(mi.q->ic.load(std::memory_order_acquire));
  if (cache != nullptr && cache->receiver_cls[0] == recv->cls) {
    callee = cache->target[0];
  } else if (cache != nullptr && cache->receiver_cls[1] == recv->cls) {
    callee = cache->target[1];
  } else {
    if (is_virtual && resolved->vtable_index >= 0 &&
        static_cast<size_t>(resolved->vtable_index) < recv->cls->vtable.size()) {
      callee = recv->cls->vtable[static_cast<size_t>(resolved->vtable_index)];
    } else {
      callee = recv->cls->resolveVirtual(resolved->name, resolved->descriptor);
      if (callee == nullptr) {
        cx.vm.throwGuest(cx.t, "java/lang/AbstractMethodError",
                         resolved->fullName());
        return throwHere(cx, mi);
      }
    }
    installVCallIC(*cx.jc.qc->state, *mi.q, recv->cls, callee, cache);
  }
  return finishCall(cx, mi, callee, nargs, discard);
}

JH(op_invokevirtual) { return invokeWithIC(cx, mi, /*is_virtual=*/true); }
JH(op_invokeinterface) { return invokeWithIC(cx, mi, /*is_virtual=*/false); }
JH(op_invokestatic) {
  JMethod* m = static_cast<JMethod*>(mi.ptr);
  if (!m->isStatic()) {
    cx.vm.throwGuest(cx.t, "java/lang/IncompatibleClassChangeError",
                     m->fullName());
    return throwHere(cx, mi);
  }
  return finishCall(cx, mi, m, mi.c);
}
JH(op_invokespecial) {
  JMethod* m = static_cast<JMethod*>(mi.ptr);
  if (cx.sp[-mi.c].asRef() == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", m->name);
    return throwHere(cx, mi);
  }
  return finishCall(cx, mi, m, mi.c);
}

// Jit-only peephole: call whose result is immediately POPped (fire-and-
// forget calls -- the StringBuffer.append / event-notification shape on
// the intra-isolate call row). One thunk that skips the result push
// instead of push+pop across two dispatches. Pass 1 only forms the pair
// when the *resolved* callee returns non-void: a POP after a void call
// legitimately consumes an older stack value and must stay separate.
// Overrides share the resolved descriptor, so the return kind is a
// build-time constant even for virtual/interface sites.
JH(op_invokevirtual_pop) {
  return invokeWithIC(cx, mi, /*is_virtual=*/true, /*discard=*/true);
}
JH(op_invokeinterface_pop) {
  return invokeWithIC(cx, mi, /*is_virtual=*/false, /*discard=*/true);
}
JH(op_invokestatic_pop) {
  JMethod* m = static_cast<JMethod*>(mi.ptr);
  if (!m->isStatic()) {
    cx.vm.throwGuest(cx.t, "java/lang/IncompatibleClassChangeError",
                     m->fullName());
    return throwHere(cx, mi);
  }
  return finishCall(cx, mi, m, mi.c, /*discard=*/true);
}
JH(op_invokespecial_pop) {
  JMethod* m = static_cast<JMethod*>(mi.ptr);
  if (cx.sp[-mi.c].asRef() == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", m->name);
    return throwHere(cx, mi);
  }
  return finishCall(cx, mi, m, mi.c, /*discard=*/true);
}

// ---- objects & arrays -------------------------------------------------

JH(op_new_q) {
  JClass* cls = static_cast<JClass*>(mi.ptr);
  cx.frame.pc = mi.pc;  // <clinit> / allocation may throw or GC
  if (cls->isInterface() || (cls->flags & ACC_ABSTRACT) != 0) {
    cx.vm.throwGuest(cx.t, "java/lang/InstantiationError", cls->name);
    return &cx.jc.exn;
  }
  if (!cx.vm.ensureInitialized(cx.t, cls)) return &cx.jc.exn;
  Object* obj = cx.vm.allocObject(cx.t, cls);
  if (obj != nullptr) jpush(cx, Value::ofRef(obj));
  if (cx.t->pending_exception != nullptr) return &cx.jc.exn;
  return mi.next;
}

// Jit-only peephole: the allocation prologue `NEW_Q cls; DUP` (every
// javac-shaped `new T(...)` starts this way) as one thunk pushing the
// fresh reference twice. Nothing is pushed before the throw checks, so
// a <clinit> failure or OOM unwinds with the same stack the interpreter
// would have had at the NEW.
JH(op_new_dup) {
  JClass* cls = static_cast<JClass*>(mi.ptr);
  cx.frame.pc = mi.pc;  // <clinit> / allocation may throw or GC
  if (cls->isInterface() || (cls->flags & ACC_ABSTRACT) != 0) {
    cx.vm.throwGuest(cx.t, "java/lang/InstantiationError", cls->name);
    return &cx.jc.exn;
  }
  if (!cx.vm.ensureInitialized(cx.t, cls)) return &cx.jc.exn;
  Object* obj = cx.vm.allocObject(cx.t, cls);
  if (obj != nullptr) {
    jpush(cx, Value::ofRef(obj));
    jpush(cx, Value::ofRef(obj));
  }
  if (cx.t->pending_exception != nullptr) return &cx.jc.exn;
  return mi.next;
}

JH(op_newarray) {
  const i32 len = jpop(cx).asInt();
  cx.frame.pc = mi.pc;
  Object* arr = cx.vm.allocArrayObject(cx.t, static_cast<JClass*>(mi.ptr), len);
  if (arr != nullptr) jpush(cx, Value::ofRef(arr));
  if (cx.t->pending_exception != nullptr) return &cx.jc.exn;
  return mi.next;
}
JH(op_arraylength) {
  Object* arr = jpop(cx).asRef();
  if (arr == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", "arraylength");
    return throwHere(cx, mi);
  }
  jpush(cx, Value::ofInt(arr->length));
  return mi.next;
}

#define JIT_ALOAD(NAME, ACCESSOR, MAKE)                                        \
  JH(NAME) {                                                                   \
    const i32 idx = jpop(cx).asInt();                                          \
    Object* arr = jpop(cx).asRef();                                            \
    if (arr == nullptr) {                                                      \
      cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", #NAME);         \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      cx.vm.throwGuest(cx.t, "java/lang/ArrayIndexOutOfBoundsException",       \
                       strf("%d", idx));                                       \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    jpush(cx, MAKE(arr->ACCESSOR()[idx]));                                     \
    return mi.next;                                                            \
  }
JIT_ALOAD(op_iaload, intElems, Value::ofInt)
JIT_ALOAD(op_laload, longElems, Value::ofLong)
JIT_ALOAD(op_daload, doubleElems, Value::ofDouble)
JIT_ALOAD(op_aaload, refElems, Value::ofRef)
#undef JIT_ALOAD

// Jit-only peephole: array element load with *both* operands straight
// from locals (`ALOAD arr; ILOAD idx; xALOAD` -- the canonical scan-loop
// body on the db/jess rows). One thunk, no interior stack traffic: arr
// from local mi.a, idx from local mi.b, only the element is pushed.
// Nothing is pushed before the throw checks, so the unwind stack matches
// the group head; handlers clear the stack on entry anyway (same rule as
// fused groups).
#define JIT_LL_ALOAD(NAME, ACCESSOR, MAKE)                                     \
  JH(NAME) {                                                                   \
    Object* arr = cx.locals[mi.a].asRef();                                     \
    const i32 idx = cx.locals[mi.b].asInt();                                   \
    if (arr == nullptr) {                                                      \
      cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", #NAME);         \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      cx.vm.throwGuest(cx.t, "java/lang/ArrayIndexOutOfBoundsException",       \
                       strf("%d", idx));                                       \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    jpush(cx, MAKE(arr->ACCESSOR()[idx]));                                     \
    return mi.next;                                                            \
  }
JIT_LL_ALOAD(op_ll_iaload, intElems, Value::ofInt)
JIT_LL_ALOAD(op_ll_laload, longElems, Value::ofLong)
JIT_LL_ALOAD(op_ll_daload, doubleElems, Value::ofDouble)
JIT_LL_ALOAD(op_ll_aaload, refElems, Value::ofRef)
#undef JIT_LL_ALOAD

// The index-from-local fallback pair (`ILOAD idx; xALOAD`, array already
// on the stack -- field-held arrays, chained loads). Replaces the stack
// top in place.
#define JIT_L_ALOAD(NAME, ACCESSOR, MAKE)                                      \
  JH(NAME) {                                                                   \
    Object* arr = cx.sp[-1].asRef();                                           \
    const i32 idx = cx.locals[mi.a].asInt();                                   \
    if (arr == nullptr) {                                                      \
      cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", #NAME);         \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      cx.vm.throwGuest(cx.t, "java/lang/ArrayIndexOutOfBoundsException",       \
                       strf("%d", idx));                                       \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    cx.sp[-1] = MAKE(arr->ACCESSOR()[idx]);                                    \
    return mi.next;                                                            \
  }
JIT_L_ALOAD(op_l_iaload, intElems, Value::ofInt)
JIT_L_ALOAD(op_l_laload, longElems, Value::ofLong)
JIT_L_ALOAD(op_l_daload, doubleElems, Value::ofDouble)
JIT_L_ALOAD(op_l_aaload, refElems, Value::ofRef)
#undef JIT_L_ALOAD

#define JIT_ASTORE(NAME, ACCESSOR, GETTER, CAST)                               \
  JH(NAME) {                                                                   \
    Value v = jpop(cx);                                                        \
    const i32 idx = jpop(cx).asInt();                                          \
    Object* arr = jpop(cx).asRef();                                            \
    if (arr == nullptr) {                                                      \
      cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", #NAME);         \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      cx.vm.throwGuest(cx.t, "java/lang/ArrayIndexOutOfBoundsException",       \
                       strf("%d", idx));                                       \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    arr->ACCESSOR()[idx] = CAST(v.GETTER());                                   \
    return mi.next;                                                            \
  }
JIT_ASTORE(op_iastore, intElems, asInt, static_cast<i32>)
JIT_ASTORE(op_lastore, longElems, asLong, static_cast<i64>)
JIT_ASTORE(op_dastore, doubleElems, asDouble, static_cast<double>)
#undef JIT_ASTORE

// Jit-only peephole: array store whose value comes straight from a local
// (`xLOAD v; xASTORE` -- the write half of a copy loop). Arr and idx are
// popped from the stack, the value is read from local mi.a; the partial
// pops before a throw are unobservable for the usual reason (handlers
// clear the stack on entry). AASTORE is excluded: its store-check path
// stays a separate thunk.
#define JIT_L_ASTORE(NAME, ACCESSOR, GETTER, CAST)                             \
  JH(NAME) {                                                                   \
    const i32 idx = jpop(cx).asInt();                                          \
    Object* arr = jpop(cx).asRef();                                            \
    if (arr == nullptr) {                                                      \
      cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", #NAME);         \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      cx.vm.throwGuest(cx.t, "java/lang/ArrayIndexOutOfBoundsException",       \
                       strf("%d", idx));                                       \
      return throwHere(cx, mi);                                                \
    }                                                                          \
    arr->ACCESSOR()[idx] = CAST(cx.locals[mi.a].GETTER());                     \
    return mi.next;                                                            \
  }
JIT_L_ASTORE(op_l_iastore, intElems, asInt, static_cast<i32>)
JIT_L_ASTORE(op_l_lastore, longElems, asLong, static_cast<i64>)
JIT_L_ASTORE(op_l_dastore, doubleElems, asDouble, static_cast<double>)
#undef JIT_L_ASTORE

JH(op_aastore) {
  Value v = jpop(cx);
  const i32 idx = jpop(cx).asInt();
  Object* arr = jpop(cx).asRef();
  if (arr == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", "AASTORE");
    return throwHere(cx, mi);
  }
  if (idx < 0 || idx >= arr->length) {
    cx.vm.throwGuest(cx.t, "java/lang/ArrayIndexOutOfBoundsException",
                     strf("%d", idx));
    return throwHere(cx, mi);
  }
  Object* elem = v.asRef();
  if (elem != nullptr && arr->cls->elem_class != nullptr &&
      !elem->cls->isAssignableTo(arr->cls->elem_class)) {
    cx.vm.throwGuest(cx.t, "java/lang/ArrayStoreException", elem->cls->name);
    return throwHere(cx, mi);
  }
  arr->refElems()[idx] = elem;
  return mi.next;
}

// ---- type checks ------------------------------------------------------

JH(op_checkcast_q) {
  JClass* target = static_cast<JClass*>(mi.ptr);
  Object* obj = cx.sp == cx.base ? nullptr : cx.sp[-1].asRef();
  if (obj != nullptr && !obj->cls->isAssignableTo(target)) {
    cx.vm.throwGuest(cx.t, "java/lang/ClassCastException",
                     strf("%s -> %s", obj->cls->name.c_str(),
                          target->name.c_str()));
    return throwHere(cx, mi);
  }
  return mi.next;
}
JH(op_instanceof_q) {
  JClass* target = static_cast<JClass*>(mi.ptr);
  Object* obj = jpop(cx).asRef();
  jpush(cx, Value::ofInt(
                obj != nullptr && obj->cls->isAssignableTo(target) ? 1 : 0));
  return mi.next;
}

// ---- monitors & throw -------------------------------------------------

JH(op_monitorenter) {
  Object* obj = jpop(cx).asRef();
  if (obj == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", "monitorenter");
    return throwHere(cx, mi);
  }
  Monitor* mon = cx.vm.monitorOf(obj);
  bool acquired = mon->tryEnter(cx.t);
  if (!acquired) {
    BlockedScope blocked(cx.vm.safepoints(), cx.t);
    acquired = mon->enter(cx.t, &cx.t->force_kill);
  }
  if (!acquired) {
    throwStopped(cx.vm, cx.t, kKillAll);
    return throwHere(cx, mi);
  }
  return mi.next;
}
JH(op_monitorexit) {
  Object* obj = jpop(cx).asRef();
  if (obj == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", "monitorexit");
    return throwHere(cx, mi);
  }
  if (!cx.vm.monitorOf(obj)->exit(cx.t)) {
    cx.vm.throwGuest(cx.t, "java/lang/IllegalMonitorStateException", "not owner");
    return throwHere(cx, mi);
  }
  return mi.next;
}
JH(op_athrow) {
  Object* exc = jpop(cx).asRef();
  if (exc == nullptr) {
    cx.vm.throwGuest(cx.t, "java/lang/NullPointerException", "athrow");
    return throwHere(cx, mi);
  }
  cx.t->pending_exception = exc;
  return throwHere(cx, mi);
}

#undef JH

// The poisoned entry point swapped in by isolate termination (one shared
// static instance; it never reads operands).
const MInsn kPoisonedEntry = [] {
  MInsn mi;
  mi.fn = op_entry_poisoned;
  mi.name = "POISONED_ENTRY";
  return mi;
}();

// Its OSR twin, swapped into every OsrEntry::entry by the same
// stop-the-world pass.
const MInsn kPoisonedOsrEntry = [] {
  MInsn mi;
  mi.fn = op_osr_poisoned;
  mi.name = "POISONED_OSR_ENTRY";
  return mi;
}();

// ---- stack-depth analysis --------------------------------------------
// The compiled frame uses a raw operand-stack pointer over a region sized
// by this bound, so the bound must be exact-or-over for every reachable
// path. This is the verifier-grade part of the compiled-code contract
// (docs/jit.md): any inconsistency makes the method jit-ineligible.

struct StackEffect {
  i8 pops;
  i8 pushes;
};
constexpr StackEffect kEffect[] = {
#define IJVM_FX(name, pops, pushes, doc) {static_cast<i8>(pops), static_cast<i8>(pushes)},
    IJVM_OPCODES(IJVM_FX)
#undef IJVM_FX
};

// A consistent copy of one quickened instruction, taken under the engine
// mutex before the compiler reads any of it. The compiler must not read
// QInsn payload fields directly: quickening and fusion write them under
// the mutex and publish with a release-store of the opcode, which orders
// payload reads only for the thread that later acquires that opcode --
// the background compiler reads whole streams at once, so it snapshots
// them under the same mutex the writers hold (docs/jit.md, "Code
// lifecycle").
struct SnapInsn {
  Op op = Op::NOP;
  i32 a = 0, b = 0, c = 0;
  void* ptr = nullptr;
  i64 imm = 0;
  double dimm = 0.0;
};

// `depths`, when non-null, receives the verified operand-stack depth at
// every pc (-1 for statically unreachable ones) -- the OSR entry map is
// built from it (a live frame may transfer onto a loop header only at
// exactly this depth).
bool computeMaxStack(JMethod* m, const std::vector<SnapInsn>& snap, u32* out,
                     std::vector<i32>* depths = nullptr) {
  const std::vector<Instruction>& insns = m->code.insns;
  const i32 n = static_cast<i32>(insns.size());
  if (n == 0) return false;
  std::vector<i32> depth(static_cast<size_t>(n), -1);
  std::vector<i32> work;
  bool consistent = true;
  auto flow = [&](i32 pc, i32 d) {
    if (pc < 0 || pc >= n) {
      consistent = false;
      return;
    }
    i32& cur = depth[static_cast<size_t>(pc)];
    if (cur == -1) {
      cur = d;
      work.push_back(pc);
    } else if (cur != d) {
      consistent = false;
    }
  };
  flow(0, 0);
  for (const ExHandler& h : m->code.handlers) flow(h.handler, 1);
  i32 max_d = 1;
  while (consistent && !work.empty()) {
    const i32 pc = work.back();
    work.pop_back();
    const Instruction& insn = insns[static_cast<size_t>(pc)];
    const i32 d = depth[static_cast<size_t>(pc)];
    i32 pops = kEffect[static_cast<u8>(insn.op)].pops;
    i32 pushes = kEffect[static_cast<u8>(insn.op)].pushes;
    if (pops < 0) {
      // Call site: the exact effect needs the resolved signature. A
      // quickened site carries it; an unquickened one compiles to a deopt
      // thunk, so compiled execution never flows past it -- treat it as
      // terminal here (its successors stay deopt-or-unreachable until a
      // recompile, by which time the site has quickened).
      const SnapInsn& q = snap[static_cast<size_t>(pc)];
      if (opIsQuickened(q.op) && q.ptr != nullptr) {
        JMethod* callee = static_cast<JMethod*>(q.ptr);
        pops = q.c;
        pushes = callee->sig.ret.kind != Kind::Void ? 1 : 0;
      } else {
        continue;
      }
    }
    const i32 after = d - pops + pushes;
    if (d - pops < 0 || after > n + 1) {
      consistent = false;
      break;
    }
    if (after > max_d) max_d = after;
    switch (insn.op) {
      case Op::RETURN:
      case Op::IRETURN:
      case Op::LRETURN:
      case Op::DRETURN:
      case Op::ARETURN:
      case Op::ATHROW:
        break;  // terminal
      case Op::GOTO:
        flow(insn.a, after);
        break;
      default:
        if (opIsBranch(insn.op)) flow(insn.a, after);
        flow(pc + 1, after);
        break;
    }
  }
  if (!consistent) return false;
  *out = static_cast<u32>(max_d) + 2;  // small slack; the bound is already safe
  if (depths != nullptr) *depths = std::move(depth);
  return true;
}

// ---- the compiler -----------------------------------------------------

// Binds the handler (and display name) for one source opcode. Generic
// pool-referencing forms that have not quickened bind to op_deopt.
void bindThunk(MInsn& mi, Op op) {
  mi.src_op = op;
  mi.name = opName(op);
  switch (op) {
    case Op::NOP: mi.fn = op_nop; break;
    case Op::ACONST_NULL: mi.fn = op_aconst_null; break;
    case Op::ICONST: mi.fn = op_iconst; break;
    case Op::LDC_INT_Q: mi.fn = op_ldc_int; break;
    case Op::LDC_LONG_Q: mi.fn = op_ldc_long; break;
    case Op::LDC_DOUBLE_Q: mi.fn = op_ldc_double; break;
    case Op::LDC_STR_Q: mi.fn = op_ldc_str; break;
    case Op::ILOAD:
    case Op::LLOAD:
    case Op::DLOAD:
    case Op::ALOAD: mi.fn = op_load; break;
    case Op::ISTORE:
    case Op::LSTORE:
    case Op::DSTORE:
    case Op::ASTORE: mi.fn = op_store; break;
    case Op::IINC: mi.fn = op_iinc; break;
    case Op::POP: mi.fn = op_pop; break;
    case Op::DUP: mi.fn = op_dup; break;
    case Op::DUP_X1: mi.fn = op_dup_x1; break;
    case Op::SWAP: mi.fn = op_swap; break;
    case Op::IADD: mi.fn = op_iadd; break;
    case Op::ISUB: mi.fn = op_isub; break;
    case Op::IMUL: mi.fn = op_imul; break;
    case Op::IDIV: mi.fn = op_idiv; break;
    case Op::IREM: mi.fn = op_irem; break;
    case Op::INEG: mi.fn = op_ineg; break;
    case Op::ISHL: mi.fn = op_ishl; break;
    case Op::ISHR: mi.fn = op_ishr; break;
    case Op::IUSHR: mi.fn = op_iushr; break;
    case Op::IAND: mi.fn = op_iand; break;
    case Op::IOR: mi.fn = op_ior; break;
    case Op::IXOR: mi.fn = op_ixor; break;
    case Op::LADD: mi.fn = op_ladd; break;
    case Op::LSUB: mi.fn = op_lsub; break;
    case Op::LMUL: mi.fn = op_lmul; break;
    case Op::LDIV: mi.fn = op_ldiv; break;
    case Op::LREM: mi.fn = op_lrem; break;
    case Op::LNEG: mi.fn = op_lneg; break;
    case Op::LSHL: mi.fn = op_lshl; break;
    case Op::LSHR: mi.fn = op_lshr; break;
    case Op::LAND: mi.fn = op_land; break;
    case Op::LOR: mi.fn = op_lor; break;
    case Op::LXOR: mi.fn = op_lxor; break;
    case Op::LCMP: mi.fn = op_lcmp; break;
    case Op::DADD: mi.fn = op_dadd; break;
    case Op::DSUB: mi.fn = op_dsub; break;
    case Op::DMUL: mi.fn = op_dmul; break;
    case Op::DDIV: mi.fn = op_ddiv; break;
    case Op::DREM: mi.fn = op_drem; break;
    case Op::DNEG: mi.fn = op_dneg; break;
    case Op::DCMPL: mi.fn = op_dcmpl; break;
    case Op::DCMPG: mi.fn = op_dcmpg; break;
    case Op::I2L: mi.fn = op_i2l; break;
    case Op::I2D: mi.fn = op_i2d; break;
    case Op::L2I: mi.fn = op_l2i; break;
    case Op::L2D: mi.fn = op_l2d; break;
    case Op::D2I: mi.fn = op_d2i; break;
    case Op::D2L: mi.fn = op_d2l; break;
    case Op::IFEQ: mi.fn = op_ifeq; mi.tpc = mi.a; break;
    case Op::IFNE: mi.fn = op_ifne; mi.tpc = mi.a; break;
    case Op::IFLT: mi.fn = op_iflt; mi.tpc = mi.a; break;
    case Op::IFGE: mi.fn = op_ifge; mi.tpc = mi.a; break;
    case Op::IFGT: mi.fn = op_ifgt; mi.tpc = mi.a; break;
    case Op::IFLE: mi.fn = op_ifle; mi.tpc = mi.a; break;
    case Op::IF_ICMPEQ: mi.fn = op_if_icmpeq; mi.tpc = mi.a; break;
    case Op::IF_ICMPNE: mi.fn = op_if_icmpne; mi.tpc = mi.a; break;
    case Op::IF_ICMPLT: mi.fn = op_if_icmplt; mi.tpc = mi.a; break;
    case Op::IF_ICMPGE: mi.fn = op_if_icmpge; mi.tpc = mi.a; break;
    case Op::IF_ICMPGT: mi.fn = op_if_icmpgt; mi.tpc = mi.a; break;
    case Op::IF_ICMPLE: mi.fn = op_if_icmple; mi.tpc = mi.a; break;
    case Op::IF_ACMPEQ: mi.fn = op_if_acmpeq; mi.tpc = mi.a; break;
    case Op::IF_ACMPNE: mi.fn = op_if_acmpne; mi.tpc = mi.a; break;
    case Op::IFNULL: mi.fn = op_ifnull; mi.tpc = mi.a; break;
    case Op::IFNONNULL: mi.fn = op_ifnonnull; mi.tpc = mi.a; break;
    case Op::GOTO: mi.fn = op_goto; mi.tpc = mi.a; break;
    case Op::RETURN: mi.fn = op_return; break;
    case Op::IRETURN:
    case Op::LRETURN:
    case Op::DRETURN:
    case Op::ARETURN: mi.fn = op_vreturn; break;
    case Op::GETSTATIC_Q: mi.fn = op_getstatic_q; break;
    case Op::PUTSTATIC_Q: mi.fn = op_putstatic_q; break;
    case Op::GETFIELD_Q: mi.fn = op_getfield_q; break;
    case Op::PUTFIELD_Q: mi.fn = op_putfield_q; break;
    case Op::INVOKEVIRTUAL_Q: mi.fn = op_invokevirtual; break;
    case Op::INVOKEINTERFACE_Q: mi.fn = op_invokeinterface; break;
    case Op::INVOKESTATIC_Q: mi.fn = op_invokestatic; break;
    case Op::INVOKESPECIAL_Q: mi.fn = op_invokespecial; break;
    case Op::NEW_Q: mi.fn = op_new_q; break;
    case Op::NEWARRAY: mi.fn = op_newarray; break;  // class prebound below
    case Op::ANEWARRAY_Q: mi.fn = op_newarray; break;
    case Op::ARRAYLENGTH: mi.fn = op_arraylength; break;
    case Op::IALOAD: mi.fn = op_iaload; break;
    case Op::LALOAD: mi.fn = op_laload; break;
    case Op::DALOAD: mi.fn = op_daload; break;
    case Op::AALOAD: mi.fn = op_aaload; break;
    case Op::IASTORE: mi.fn = op_iastore; break;
    case Op::LASTORE: mi.fn = op_lastore; break;
    case Op::DASTORE: mi.fn = op_dastore; break;
    case Op::AASTORE: mi.fn = op_aastore; break;
    case Op::CHECKCAST_Q: mi.fn = op_checkcast_q; break;
    case Op::INSTANCEOF_Q: mi.fn = op_instanceof_q; break;
    case Op::MONITORENTER: mi.fn = op_monitorenter; break;
    case Op::MONITOREXIT: mi.fn = op_monitorexit; break;
    case Op::ATHROW: mi.fn = op_athrow; break;
    // Fused superinstructions: one thunk per group.
    case Op::ILOAD_ILOAD_IADD_F: mi.fn = op_ll_iadd; break;
    case Op::ILOAD_ILOAD_ISUB_F: mi.fn = op_ll_isub; break;
    case Op::ILOAD_ILOAD_IMUL_F: mi.fn = op_ll_imul; break;
    case Op::ILOAD_ILOAD_IAND_F: mi.fn = op_ll_iand; break;
    case Op::ILOAD_ILOAD_IOR_F: mi.fn = op_ll_ior; break;
    case Op::ILOAD_ILOAD_IXOR_F: mi.fn = op_ll_ixor; break;
    case Op::ILOAD_ILOAD_IF_ICMPEQ_F:
      mi.fn = op_ll_icmpeq; mi.tpc = static_cast<i32>(mi.imm); break;
    case Op::ILOAD_ILOAD_IF_ICMPNE_F:
      mi.fn = op_ll_icmpne; mi.tpc = static_cast<i32>(mi.imm); break;
    case Op::ILOAD_ILOAD_IF_ICMPLT_F:
      mi.fn = op_ll_icmplt; mi.tpc = static_cast<i32>(mi.imm); break;
    case Op::ILOAD_ILOAD_IF_ICMPGE_F:
      mi.fn = op_ll_icmpge; mi.tpc = static_cast<i32>(mi.imm); break;
    case Op::ILOAD_ILOAD_IF_ICMPGT_F:
      mi.fn = op_ll_icmpgt; mi.tpc = static_cast<i32>(mi.imm); break;
    case Op::ILOAD_ILOAD_IF_ICMPLE_F:
      mi.fn = op_ll_icmple; mi.tpc = static_cast<i32>(mi.imm); break;
    case Op::ICONST_IADD_F: mi.fn = op_iconst_iadd; break;
    case Op::ALOAD_GETFIELD_F: mi.fn = op_aload_getfield; break;
    case Op::IINC_GOTO_F: mi.fn = op_iinc_goto; mi.tpc = mi.c; break;
    // Unquickened pool-referencing forms: a cold path inside a hot
    // method. Compiled as a deopt site; the interpreter resolves it.
    default:
      mi.fn = op_deopt;
      mi.name = "DEOPT";
      break;
  }
}

// Jit-only peephole: fused arith triple followed by a plain ISTORE whose
// slot nobody jumps to -- compiled as a single store-to-local thunk.
JitHandler arithStoreVariant(Op fused) {
  switch (fused) {
    case Op::ILOAD_ILOAD_IADD_F: return op_ll_iadd_st;
    case Op::ILOAD_ILOAD_ISUB_F: return op_ll_isub_st;
    case Op::ILOAD_ILOAD_IMUL_F: return op_ll_imul_st;
    case Op::ILOAD_ILOAD_IAND_F: return op_ll_iand_st;
    case Op::ILOAD_ILOAD_IOR_F: return op_ll_ior_st;
    case Op::ILOAD_ILOAD_IXOR_F: return op_ll_ixor_st;
    default: return nullptr;
  }
}

// Jit-only peephole (ROADMAP "GETFIELD_Q+arith pairs"): the int arithmetic
// opcode an instance-field load feeds, for the plain-quickened and the
// fused-receiver variant of the pair.
JitHandler getfieldArithVariant(Op arith, bool receiver_in_local) {
  switch (arith) {
    case Op::IADD: return receiver_in_local ? op_lgf_iadd : op_gf_iadd;
    case Op::ISUB: return receiver_in_local ? op_lgf_isub : op_gf_isub;
    case Op::IMUL: return receiver_in_local ? op_lgf_imul : op_gf_imul;
    case Op::IAND: return receiver_in_local ? op_lgf_iand : op_gf_iand;
    case Op::IOR: return receiver_in_local ? op_lgf_ior : op_gf_ior;
    case Op::IXOR: return receiver_in_local ? op_lgf_ixor : op_gf_ixor;
    default: return nullptr;
  }
}

// Jit-only peephole: array element load with array + index in locals
// (`ALOAD arr; ILOAD idx; xALOAD`), keyed on the element-access opcode.
JitHandler arrayLoadLLVariant(Op aload) {
  switch (aload) {
    case Op::IALOAD: return op_ll_iaload;
    case Op::LALOAD: return op_ll_laload;
    case Op::DALOAD: return op_ll_daload;
    case Op::AALOAD: return op_ll_aaload;
    default: return nullptr;
  }
}

// Index-from-local pair (`ILOAD idx; xALOAD`, array on the stack).
JitHandler arrayLoadLVariant(Op aload) {
  switch (aload) {
    case Op::IALOAD: return op_l_iaload;
    case Op::LALOAD: return op_l_laload;
    case Op::DALOAD: return op_l_daload;
    case Op::AALOAD: return op_l_aaload;
    default: return nullptr;
  }
}

// Value-from-local store pair (`xLOAD v; xASTORE`). The load and store
// kinds must agree; verified bytecode guarantees they do, but matching
// the pair explicitly keeps a mismatched (unverifiable) stream on the
// generic thunks.
JitHandler arrayStoreLVariant(Op load, Op store) {
  if (load == Op::ILOAD && store == Op::IASTORE) return op_l_iastore;
  if (load == Op::LLOAD && store == Op::LASTORE) return op_l_lastore;
  if (load == Op::DLOAD && store == Op::DASTORE) return op_l_dastore;
  return nullptr;
}

// Wide local-pair arithmetic triple (`DLOAD a; DLOAD c; <op>` /
// `LLOAD a; LLOAD c; <op>`). LDIV/LREM are excluded (they throw).
JitHandler wideArithVariant(Op load, Op arith) {
  if (load == Op::DLOAD) {
    switch (arith) {
      case Op::DADD: return op_dd_dadd;
      case Op::DSUB: return op_dd_dsub;
      case Op::DMUL: return op_dd_dmul;
      case Op::DDIV: return op_dd_ddiv;
      default: return nullptr;
    }
  }
  if (load == Op::LLOAD) {
    switch (arith) {
      case Op::LADD: return op_lw_ladd;
      case Op::LSUB: return op_lw_lsub;
      case Op::LMUL: return op_lw_lmul;
      case Op::LAND: return op_lw_land;
      case Op::LOR: return op_lw_lor;
      case Op::LXOR: return op_lw_lxor;
      default: return nullptr;
    }
  }
  return nullptr;
}

// Discard-result call variant for the `INVOKE*_Q; POP` pair.
JitHandler invokePopVariant(Op invoke) {
  switch (invoke) {
    case Op::INVOKEVIRTUAL_Q: return op_invokevirtual_pop;
    case Op::INVOKEINTERFACE_Q: return op_invokeinterface_pop;
    case Op::INVOKESTATIC_Q: return op_invokestatic_pop;
    case Op::INVOKESPECIAL_Q: return op_invokespecial_pop;
    default: return nullptr;
  }
}

}  // namespace

// Builds `m`'s call-threaded code from a snapshot of its current
// quickened/fused stream; contract in jit_internal.h. Returns null (and
// possibly pins the method ineligible) when the method cannot be compiled.
std::unique_ptr<JitCode> buildJitCode(VM& vm, JMethod* m) {
#ifdef IJVM_DISABLE_JIT
  (void)vm;
  (void)m;
  return nullptr;
#else
  auto* qc = static_cast<QCode*>(m->qcode.load(std::memory_order_acquire));
  if (qc == nullptr || m->isNative() || m->isAbstract()) return nullptr;
  if (qc->jit_ineligible.load(std::memory_order_relaxed)) return nullptr;
  if (qc->jit_deopts.load(std::memory_order_relaxed) >= kMaxJitDeopts) {
    qc->jit_ineligible.store(true, std::memory_order_relaxed);
    return nullptr;
  }
  // Compile-latency split (obs/trace.h): enqueueForJit stamped the request
  // when it latched jit_queued -- everything until here was queue wait,
  // everything below is the build itself.
  if (obs::traceEnabled()) {
    const u64 req = qc->jit_request_ns.exchange(0, std::memory_order_acq_rel);
    if (req != 0) {
      const u64 now = obs::traceNowNs();
      if (now > req) obs::recordLatency(obs::Lat::CompileQueueWait, now - req);
    }
  }
  obs::TraceSpan build_span(obs::Ev::CompileBuild, jitTraceIsolate(m),
                            jitTraceName(m), obs::Lat::CompileBuild);
  const std::vector<Instruction>& insns = m->code.insns;
  const i32 n = static_cast<i32>(insns.size());
  if (n == 0) return nullptr;
  // The last instruction must not fall through past the end (any verified
  // method ends in a return/goto/throw).
  const Op last = insns[static_cast<size_t>(n - 1)].op;
  const bool last_terminal = last == Op::RETURN || last == Op::IRETURN ||
                             last == Op::LRETURN || last == Op::DRETURN ||
                             last == Op::ARETURN || last == Op::GOTO ||
                             last == Op::ATHROW;

  // Snapshot the stream under the engine mutex (see SnapInsn): from here
  // on the build reads only the snapshot, so it is safe off-thread while
  // mutators keep quickening and fusing the live stream. A site that
  // quickens after the snapshot simply compiles as a deopt thunk, exactly
  // as if it had still been cold -- the recompile after that deopt sees
  // it.
  std::vector<SnapInsn> snap(static_cast<size_t>(n));
  {
    std::lock_guard<std::mutex> lock(qc->state->mutex);
    for (i32 i = 0; i < n; ++i) {
      const QInsn& q = qc->insns[static_cast<size_t>(i)];
      SnapInsn& s = snap[static_cast<size_t>(i)];
      s.op = q.op.load(std::memory_order_relaxed);
      s.a = q.a;
      s.b = q.b;
      s.c = q.c;
      s.ptr = q.ptr;
      s.imm = q.imm;
      s.dimm = q.dimm;
    }
  }

  u32 max_stack = 0;
  std::vector<i32> depths;
  if (!last_terminal || !computeMaxStack(m, snap, &max_stack, &depths)) {
    qc->jit_ineligible.store(true, std::memory_order_relaxed);
    return nullptr;
  }

  // Entry points other than fall-through (for the peephole eligibility;
  // same rules as the fusion pass).
  std::vector<u8> entry(static_cast<size_t>(n), 0);
  for (const Instruction& insn : insns) {
    if (opIsBranch(insn.op) && insn.a >= 0 && insn.a < n) {
      entry[static_cast<size_t>(insn.a)] = 1;
    }
  }
  for (const ExHandler& h : m->code.handlers) {
    if (h.handler >= 0 && h.handler < n) entry[static_cast<size_t>(h.handler)] = 1;
  }
  auto coverageUniform = [&](i32 head, i32 len) {
    for (const ExHandler& h : m->code.handlers) {
      const bool head_in = head >= h.start && head < h.end;
      for (i32 k = 1; k < len; ++k) {
        const bool k_in = head + k >= h.start && head + k < h.end;
        if (k_in != head_in) return false;
      }
    }
    return true;
  };

  auto jc = std::make_unique<JitCode>();
  jc->method = m;
  jc->qc = qc;
  jc->max_stack = max_stack;
  jc->slot_of_pc.assign(static_cast<size_t>(n), -1);
  jc->exn.fn = op_exception;
  jc->exn.name = "EXCEPTION_DISPATCH";

  // Pass 1: one thunk per (group) head, operands pre-bound from the
  // snapshot (mi.q still points into the live stream: that is how
  // compiled thunks share IC slots with the interpreter tiers).
  for (i32 i = 0; i < n;) {
    const SnapInsn& q = snap[static_cast<size_t>(i)];
    const Op op = q.op;
    MInsn mi;
    mi.pc = i;
    mi.a = q.a;
    mi.b = q.b;
    mi.c = q.c;
    mi.ptr = q.ptr;
    mi.imm = q.imm;
    mi.dimm = q.dimm;
    mi.q = &qc->insns[static_cast<size_t>(i)];
    bindThunk(mi, op);
    i32 len = opIsFused(op) ? opFusedLength(op) : 1;
    if (op == Op::NEWARRAY) {
      // Pre-bind the primitive array class (isolate-independent).
      const char* name = q.a == 0 ? "[I" : (q.a == 1 ? "[J" : "[D");
      mi.ptr = vm.registry().arrayClass(name);
    }
    // Peephole: fused arith triple + ISTORE -> one thunk.
    if (JitHandler st_fn = arithStoreVariant(op);
        st_fn != nullptr && i + 3 < n &&
        snap[static_cast<size_t>(i + 3)].op == Op::ISTORE &&
        entry[static_cast<size_t>(i + 3)] == 0 && coverageUniform(i, 4)) {
      mi.fn = st_fn;
      mi.b = snap[static_cast<size_t>(i + 3)].a;  // destination slot
      mi.name = "ILOAD_ILOAD_ARITH_ISTORE_J";
      len = 4;
    }
    // Peephole: static int read-modify-write in one mirror lookup
    // (`GETSTATIC_Q f; ICONST k; IADD; PUTSTATIC_Q f`, fused or plain).
    if (op == Op::GETSTATIC_Q && i + 3 < n &&
        entry[static_cast<size_t>(i + 1)] == 0 &&
        entry[static_cast<size_t>(i + 2)] == 0 &&
        entry[static_cast<size_t>(i + 3)] == 0 && coverageUniform(i, 4)) {
      const SnapInsn& q1 = snap[static_cast<size_t>(i + 1)];
      const SnapInsn& q3 = snap[static_cast<size_t>(i + 3)];
      const Op op2 = snap[static_cast<size_t>(i + 2)].op;
      const bool add_imm =
          q1.op == Op::ICONST_IADD_F || (q1.op == Op::ICONST && op2 == Op::IADD);
      if (add_imm && q3.op == Op::PUTSTATIC_Q && q3.ptr == q.ptr &&
          q3.c == q.c) {
        mi.fn = op_static_iadd;
        mi.a = q1.a;  // the immediate
        mi.name = "GETSTATIC_IADD_PUTSTATIC_J";
        len = 4;
      }
    }
    // Peephole (ROADMAP): instance-field load feeding int arithmetic.
    // `GETFIELD_Q f; <arith>` -- the receiver is on the stack -- and the
    // fused-receiver form `ALOAD_GETFIELD_F; <arith>`.
    if (op == Op::GETFIELD_Q && i + 1 < n &&
        entry[static_cast<size_t>(i + 1)] == 0 && coverageUniform(i, 2)) {
      if (JitHandler gf_fn = getfieldArithVariant(
              snap[static_cast<size_t>(i + 1)].op, /*receiver_in_local=*/false);
          gf_fn != nullptr) {
        mi.fn = gf_fn;
        mi.name = "GETFIELD_ARITH_J";
        len = 2;
      }
    }
    if (op == Op::ALOAD_GETFIELD_F && i + 2 < n &&
        entry[static_cast<size_t>(i + 2)] == 0 && coverageUniform(i, 3)) {
      if (JitHandler gf_fn = getfieldArithVariant(
              snap[static_cast<size_t>(i + 2)].op, /*receiver_in_local=*/true);
          gf_fn != nullptr) {
        mi.fn = gf_fn;
        mi.name = "ALOAD_GETFIELD_ARITH_J";
        len = 3;
      }
    }
    // Peephole (ISSUE 9 batch): array element load with array + index in
    // locals -- the scan-loop body. `ALOAD arr; ILOAD idx; xALOAD`.
    if (op == Op::ALOAD && i + 2 < n &&
        snap[static_cast<size_t>(i + 1)].op == Op::ILOAD &&
        entry[static_cast<size_t>(i + 1)] == 0 &&
        entry[static_cast<size_t>(i + 2)] == 0 && coverageUniform(i, 3)) {
      if (JitHandler al_fn =
              arrayLoadLLVariant(snap[static_cast<size_t>(i + 2)].op);
          al_fn != nullptr) {
        mi.fn = al_fn;
        mi.b = snap[static_cast<size_t>(i + 1)].a;  // index slot
        mi.name = "ALOAD_ILOAD_XALOAD_J";
        len = 3;
      }
    }
    // Peephole: index-from-local load pair and value-from-local store
    // pair. The ALOAD-headed triple above wins when it applies (it is
    // checked first and sets len=3); this catches the array-on-stack
    // remainder.
    if ((op == Op::ILOAD || op == Op::LLOAD || op == Op::DLOAD) && len == 1 &&
        i + 1 < n && entry[static_cast<size_t>(i + 1)] == 0 &&
        coverageUniform(i, 2)) {
      const Op op1 = snap[static_cast<size_t>(i + 1)].op;
      JitHandler fn = op == Op::ILOAD ? arrayLoadLVariant(op1) : nullptr;
      const char* nm = "ILOAD_XALOAD_J";
      if (fn == nullptr) {
        fn = arrayStoreLVariant(op, op1);
        nm = "XLOAD_XASTORE_J";
      }
      if (fn != nullptr) {
        mi.fn = fn;
        mi.name = nm;
        len = 2;
      }
    }
    // Peephole: wide local-pair arithmetic triple (`DLOAD; DLOAD; <op>`,
    // `LLOAD; LLOAD; <op>`) -- the FIR/accumulator shape. The fusion
    // tier only forms int triples; the compiler picks the wide ones up
    // from the plain quickened stream. Checked after the pairs: a
    // matching triple overrides the 2-wide store pair (longer match
    // first would also work, but the store pair cannot match when
    // snap[i+1] is another load, so order is immaterial -- this block
    // simply re-extends len).
    if ((op == Op::DLOAD || op == Op::LLOAD) && i + 2 < n &&
        snap[static_cast<size_t>(i + 1)].op == op &&
        entry[static_cast<size_t>(i + 1)] == 0 &&
        entry[static_cast<size_t>(i + 2)] == 0 && coverageUniform(i, 3)) {
      if (JitHandler wa_fn =
              wideArithVariant(op, snap[static_cast<size_t>(i + 2)].op);
          wa_fn != nullptr) {
        mi.fn = wa_fn;
        mi.c = snap[static_cast<size_t>(i + 1)].a;  // second operand slot
        mi.name = op == Op::DLOAD ? "DLOAD_DLOAD_ARITH_J"
                                  : "LLOAD_LLOAD_ARITH_J";
        len = 3;
      }
    }
    // Peephole: call whose result is discarded (`INVOKE*_Q; POP`) -- one
    // thunk that skips the result push. Only when the resolved callee
    // returns non-void: a POP after a void call consumes an *older*
    // stack value and must stay a separate thunk.
    if ((op == Op::INVOKEVIRTUAL_Q || op == Op::INVOKEINTERFACE_Q ||
         op == Op::INVOKESTATIC_Q || op == Op::INVOKESPECIAL_Q) &&
        i + 1 < n && snap[static_cast<size_t>(i + 1)].op == Op::POP &&
        entry[static_cast<size_t>(i + 1)] == 0 && coverageUniform(i, 2) &&
        q.ptr != nullptr &&
        static_cast<JMethod*>(q.ptr)->sig.ret.kind != Kind::Void) {
      mi.fn = invokePopVariant(op);
      mi.name = "INVOKE_POP_J";
      len = 2;
    }
    // Peephole: allocation prologue `NEW_Q; DUP` (every `new T(...)`)
    // as one double-push thunk.
    if (op == Op::NEW_Q && i + 1 < n &&
        snap[static_cast<size_t>(i + 1)].op == Op::DUP &&
        entry[static_cast<size_t>(i + 1)] == 0 && coverageUniform(i, 2)) {
      mi.fn = op_new_dup;
      mi.name = "NEW_DUP_J";
      len = 2;
    }
    jc->slot_of_pc[static_cast<size_t>(i)] = static_cast<i32>(jc->code.size());
    jc->code.push_back(mi);
    i += len;
  }

  // Pass 2: link fall-through and branch targets as MInsn pointers (the
  // vector is final now, so the pointers are stable).
  for (size_t k = 0; k < jc->code.size(); ++k) {
    MInsn& mi = jc->code[k];
    mi.next = k + 1 < jc->code.size() ? &jc->code[k + 1] : nullptr;
    if (mi.tpc >= 0) {
      const i32 slot = mi.tpc < n ? jc->slot_of_pc[static_cast<size_t>(mi.tpc)] : -1;
      if (slot < 0) {
        // Target interior to a group (cannot happen for fused streams --
        // defensive) or out of range: fall back to deopt.
        mi.fn = op_deopt;
        mi.name = "DEOPT";
      } else {
        mi.target = &jc->code[static_cast<size_t>(slot)];
      }
    }
  }
#ifndef IJVM_DISABLE_OSR
  // Pass 3: OSR entry points, one per loop header (docs/jit.md, "On-stack
  // replacement"). A back-edge target that heads a compiled thunk and has
  // a verified stack depth gets an entry thunk the interpreter can
  // transfer a live frame onto; headers that miss either condition simply
  // get no OSR entry (the frame keeps interpreting -- never wrong, only
  // slower).
  for (const MInsn& mi : jc->code) {
    if (mi.tpc < 0 || mi.tpc > mi.pc) continue;  // not a back-edge
    const i32 header = mi.tpc;
    bool seen = false;
    for (const OsrEntry& e : jc->osr_entries) seen |= e.pc == header;
    if (seen) continue;
    const i32 slot = jc->slot_of_pc[static_cast<size_t>(header)];
    const i32 depth = depths[static_cast<size_t>(header)];
    if (slot < 0 || depth < 0) continue;
    OsrEntry& e = jc->osr_entries.emplace_back();
    e.pc = header;
    e.depth = depth;
    e.thunk.fn = op_osr_enter;
    e.thunk.pc = header;
    e.thunk.name = "OSR_ENTRY";
    e.thunk.target = &jc->code[static_cast<size_t>(slot)];
    e.entry.store(&e.thunk, std::memory_order_relaxed);
  }
#endif  // IJVM_DISABLE_OSR

  jc->entry.store(jc->code.data(), std::memory_order_release);
  jc->approx_bytes = jitCodeFootprint(*jc);
  // Built, not installed: publication is the cache's job (installJitCode,
  // code_cache.cpp) so the entry flips only at a mutator drain point.
  return jc;
#endif  // IJVM_DISABLE_JIT
}

size_t jitCodeFootprint(const JitCode& jc) {
  return sizeof(JitCode) + jc.code.capacity() * sizeof(MInsn) +
         jc.slot_of_pc.capacity() * sizeof(i32) +
         jc.osr_entries.size() * sizeof(OsrEntry);
}

// ---- public API -------------------------------------------------------

JitCode* jitCodeOf(JMethod* m) {
  return static_cast<JitCode*>(m->jitcode.load(std::memory_order_acquire));
}

namespace {

// Call-threading pays off on loops; a loop-free trampoline (one call +
// return) gains nothing and pays a few ns of compiled-entry setup
// (bench/fig1_micro.cpp, call rows). With a nonzero threshold such
// methods stay at the fused tier; jit_threshold == 0 (the forced/test
// configuration) compiles everything so the differential suite covers
// every thunk.
bool hasBackEdge(const JMethod* m) {
  const std::vector<Instruction>& insns = m->code.insns;
  for (i32 i = 0; i < static_cast<i32>(insns.size()); ++i) {
    if (opIsBranch(insns[static_cast<size_t>(i)].op) &&
        insns[static_cast<size_t>(i)].a <= i) {
      return true;
    }
  }
  return false;
}

}  // namespace

namespace {

// Transfers a live interpreter frame onto the compiled code's OSR entry
// for frame.pc (contract in jit.h, tryOsr). The locals vector is shared
// with the interpreter as-is; the operand stack -- currently at the loop
// header's logical depth -- becomes the low slice of the raw GC-scanned
// region, exactly the state the deopt machinery produces in reverse.
bool runJitOsr(VM& vm, JThread* t, Frame& frame, JitCode& jc, JitResult* out) {
  // A refused transfer (compiled code exists, but the live frame cannot
  // enter it here) is the observability tail the ROADMAP called out:
  // count it per method and per isolate (ResourceStats) instead of
  // silently interpreting on.
  auto refuse = [&]() {
    jc.qc->osr_refused_transfers.fetch_add(1, std::memory_order_relaxed);
    if (frame.isolate != nullptr) {
      frame.isolate->stats.osr_refused_transfers.fetch_add(
          1, std::memory_order_relaxed);
    }
    obs::emit(obs::Ev::OsrRefused, obs::Ph::Instant,
              frame.isolate != nullptr ? frame.isolate->id : -1,
              jitTraceName(jc.method));
    return false;
  };
  const OsrEntry* osr = nullptr;
  for (const OsrEntry& e : jc.osr_entries) {
    if (e.pc == frame.pc) {
      osr = &e;
      break;
    }
  }
  // No entry mapping this loop header: the header was statically
  // unreachable (or uncompiled) when the code was built -- e.g. it sits
  // behind a call site that was still cold at compile time.
  if (osr == nullptr) return refuse();
  // Entry-map invariant (docs/jit.md): the live operand stack must be at
  // the header's verified depth -- the depth the compiled code's raw
  // stack pointer assumes when control reaches that thunk. A mismatch
  // means the frame cannot be expressed in compiled form; refuse and keep
  // interpreting.
  if (static_cast<i32>(frame.stack.size()) != osr->depth) return refuse();

  // Active-execution bracket (docs/jit.md, "Code lifecycle"): between the
  // caller's JMethod::jitcode load and this increment there is no
  // safepoint poll, so a stopped world -- the only place retired code is
  // freed -- can never catch a frame about to enter code whose count it
  // reads as zero.
  jc.active.fetch_add(1, std::memory_order_acq_rel);
  jc.uses.fetch_add(1, std::memory_order_relaxed);
  frame.tier = FrameTier::Osr;

  JitCtx cx{vm, t, frame, jc};
  cx.accounting = vm.options().accounting;
  cx.tcm_idx = vm.tcmIndex(t->current_isolate.load(std::memory_order_relaxed));
  const size_t depth = frame.stack.size();
  frame.stack.resize(jc.max_stack);
  cx.base = frame.stack.data();
  cx.sp = cx.base + depth;
  cx.locals = frame.locals.data();
  jc.qc->osr_entries_taken.fetch_add(1, std::memory_order_relaxed);
  obs::emit(obs::Ev::OsrTransfer, obs::Ph::Instant,
            frame.isolate != nullptr ? frame.isolate->id : -1,
            jitTraceName(jc.method));

  const MInsn* ip = osr->entry.load(std::memory_order_acquire);
  while (ip != nullptr) ip = ip->fn(cx, *ip);
  flushEdges(cx);
  if (cx.exit != JitExit::Deopt) frame.stack.clear();
  *out = {cx.exit, cx.result};
  jc.active.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

}  // namespace

bool tryOsr(VM& vm, JThread* t, Frame& frame, QCode& qc, bool& requested,
            JitResult* out) {
#if defined(IJVM_DISABLE_JIT) || defined(IJVM_DISABLE_OSR)
  (void)vm;
  (void)t;
  (void)frame;
  (void)qc;
  (void)requested;
  (void)out;
  return false;
#else
  if (vm.options().exec_engine != ExecEngine::Jit || !vm.options().osr) {
    return false;
  }
  // Governor PromoteJit requests are serviced here too: a bundle spinning
  // inside one call never crosses a method entry, so this batch flush is
  // the only point where its promotion -- and the OSR it requests -- can
  // take effect (docs/governor.md).
  ExecState& st = *qc.state;
  if (st.jit_pending.load(std::memory_order_relaxed)) drainJitQueue(vm);
  JMethod* m = frame.method;
  JitCode* jc = jitCodeOf(m);
  if (jc == nullptr) {
    // Self-promotion: hot past the threshold mid-invocation. Promotion
    // requests are idempotent per method: the `requested` latch stays set
    // across the rest of this invocation unless the request actually
    // produced code, so a compile bailout is not re-attempted at every
    // subsequent 4096-edge flush of the same spinning call.
    if (requested || qc.jit_ineligible.load(std::memory_order_relaxed)) {
      return false;
    }
    if (effectiveJitHotness(m) <= vm.options().jit_threshold) return false;
    requested = true;
    enqueueForJit(vm, m);
    drainJitQueue(vm);
    jc = jitCodeOf(m);
    // With background compilation the request is now in flight: the
    // worker builds off-thread and a later flush of this same spinning
    // frame installs the result and transfers onto it. The latch keeps
    // the in-between flushes from re-requesting.
    if (jc == nullptr) return false;
  }
  // Code exists -- produced synchronously just now, installed at an
  // earlier drain of this flush loop from a background build this
  // invocation requested, or compiled before the call began. Clear the
  // latch so a later deopt of *this* code may recompile (each recompile
  // covers strictly more of the stream; the kMaxJitDeopts pin bounds the
  // cycle -- docs/jit.md).
  requested = false;
  return runJitOsr(vm, t, frame, *jc, out);
#endif  // IJVM_DISABLE_JIT || IJVM_DISABLE_OSR
}

JitResult runJit(VM& vm, JThread* t, Frame& frame, JitCode& jc) {
  // Active-execution bracket: see runJitOsr. The increment must precede
  // the first poll inside this call (pollJit below), so a stopped world
  // observes either no entry at all or a nonzero count.
  jc.active.fetch_add(1, std::memory_order_acq_rel);
  jc.uses.fetch_add(1, std::memory_order_relaxed);
  frame.tier = FrameTier::Jit;

  // Payoff post-install window (docs/jit.md, "Payoff"): time this
  // compiled invocation unless the verdict already settled or the window
  // is full -- steady-state code pays one relaxed load here, no clocks.
  // The epoch is snapshotted before timing; a retire racing this
  // execution invalidates the sample at accumulate time. OSR transfers
  // (runJitOsr) never sample: a mid-invocation entry is neither a full
  // interpreted nor a full compiled invocation.
  const VmOptions& opt = vm.options();
  bool payoff_timing = false;
  u32 payoff_epoch = 0;
  u64 payoff_t0 = 0;
  if (opt.jit_payoff && !jc.qc->payoff_settled.load(std::memory_order_relaxed) &&
      jc.qc->payoff_post_samples.load(std::memory_order_relaxed) <
          opt.jit_payoff_samples) {
    payoff_timing = true;
    payoff_epoch = jc.qc->payoff_epoch.load(std::memory_order_acquire);
    payoff_t0 = payoffNowNs();
  }
  if (opt.jit_payoff_test_entry_delay_ns != 0) {
    // Test seam (tests/test_jit_payoff.cpp): make compiled entries
    // deterministically slower than the fused tier so auto-demotion
    // provably fires. Inside the timed window by construction.
    const u64 until = payoffNowNs() + opt.jit_payoff_test_entry_delay_ns;
    while (payoffNowNs() < until) {
    }
  }

  JitCtx cx{vm, t, frame, jc};
  cx.accounting = opt.accounting;
  cx.tcm_idx =
      vm.tcmIndex(t->current_isolate.load(std::memory_order_relaxed));
  // The whole region is GC-scanned for the duration of the compiled
  // execution (see the GC discipline note at the top of this file).
  frame.stack.resize(jc.max_stack);
  cx.base = frame.stack.data();
  cx.sp = cx.base;
  cx.locals = frame.locals.data();

  // Entry poll, as at interpreter method entry.
  pollJit(cx);
  const MInsn* ip;
  if (t->pending_exception != nullptr) {
    frame.pc = 0;
    ip = &jc.exn;
  } else {
    ip = jc.entry.load(std::memory_order_acquire);
  }
  while (ip != nullptr) ip = ip->fn(cx, *ip);
  flushEdges(cx);
  if (cx.exit != JitExit::Deopt) {
    // Drop the scratch region so the pooled frame is left clean.
    frame.stack.clear();
  }
  // A deopt exit is a partial compiled execution (the interpreter
  // finishes the invocation) and the deopt already retired this code --
  // its sample would be dropped by the epoch check anyway.
  if (payoff_timing && cx.exit != JitExit::Deopt) {
    if (payoffAccumulate(vm, *jc.qc, /*post=*/true, payoff_epoch,
                         payoffNowNs() - payoff_t0, 1 + cx.total_edges)) {
      // This sample completed the post window: verdict time. A demotion
      // verdict retires the code while we still hold `active`, which is
      // fine -- retirement is poison-free and reclamation waits for the
      // count to drop.
      payoffEvaluate(vm, *jc.qc);
    }
  }
  jc.active.fetch_sub(1, std::memory_order_acq_rel);
  return {cx.exit, cx.result};
}

u64 effectiveJitHotness(JMethod* m) {
  const u64 raw = m->profile_invocations.load(std::memory_order_relaxed) +
                  m->profile_loop_edges.load(std::memory_order_relaxed);
  auto* qc = static_cast<QCode*>(m->qcode.load(std::memory_order_acquire));
  if (qc == nullptr) return raw;
  const u64 floor = qc->jit_hotness_floor.load(std::memory_order_relaxed);
  return raw > floor ? raw - floor : 0;
}

void enqueueForJit(VM& vm, JMethod* m) {
  if (vm.options().exec_engine != ExecEngine::Jit) return;
  if (m == nullptr || m->isNative() || m->isAbstract()) return;
  if (m->poisoned.load(std::memory_order_acquire)) return;
  if (m->jitcode.load(std::memory_order_acquire) != nullptr) return;
  auto* qc = static_cast<QCode*>(m->qcode.load(std::memory_order_acquire));
  if (qc == nullptr || qc->jit_ineligible.load(std::memory_order_relaxed)) return;
  if (vm.options().jit_threshold > 0 && !hasBackEdge(m)) {
    // Pin the rejection: a hot trampoline crosses the hotness check at
    // every entry, and without the pin it would re-attempt (and pay for)
    // promotion each time.
    qc->jit_ineligible.store(true, std::memory_order_relaxed);
    return;
  }
  if (qc->jit_queued.exchange(true, std::memory_order_acq_rel)) return;
  if (obs::traceEnabled()) {
    obs::emit(obs::Ev::CompileRequest, obs::Ph::Instant, jitTraceIsolate(m),
              jitTraceName(m));
    qc->jit_request_ns.store(obs::traceNowNs(), std::memory_order_release);
  }
  // Post-deopt re-request observability (ResourceStats): this method
  // already deopted at least once, so the request we just latched is part
  // of the deopt -> requicken -> recompile cycle.
  if (qc->jit_deopts.load(std::memory_order_relaxed) > 0) {
    qc->jit_recompile_requests.fetch_add(1, std::memory_order_relaxed);
    if (Isolate* iso = m->owner->loader->isolate()) {
      iso->stats.jit_recompile_requests.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ExecState& st = engineState(vm);
#ifndef IJVM_DISABLE_BG_COMPILE
  if (vm.options().background_compile) {
    // Hand the request to the compiler thread (docs/jit.md, "Code
    // lifecycle"): the mutator keeps running the fused tier and installs
    // the finished code at a later drain point.
    CompileManager* mgr;
    {
      std::lock_guard<std::mutex> lock(st.mutex);
      if (st.compile_mgr == nullptr) {
        st.compile_mgr = std::make_unique<CompileManager>(vm);
      }
      mgr = st.compile_mgr.get();
    }
    mgr->enqueue(m);
    return;
  }
#endif  // IJVM_DISABLE_BG_COMPILE
  std::lock_guard<std::mutex> lock(st.mutex);
  st.jit_queue.push_back(m);
  st.jit_pending.store(true, std::memory_order_release);
}

void enqueueLoaderForJit(VM& vm, ClassLoader* loader, u64 min_hotness) {
  if (loader == nullptr || vm.options().exec_engine != ExecEngine::Jit) return;
  for (JClass* cls : loader->definedClasses()) {
    for (JMethod& m : cls->methods) {
      // Hotness above the demotion floor: a bundle the governor demoted
      // must earn fresh heat before its PromoteJit rule re-compiles it.
      if (effectiveJitHotness(&m) > min_hotness) enqueueForJit(vm, &m);
    }
  }
}

u32 drainJitQueue(VM& vm) {
  ExecState& st = engineState(vm);
  std::vector<JMethod*> todo;
  CompileManager* mgr;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    todo.assign(st.jit_queue.begin(), st.jit_queue.end());
    st.jit_queue.clear();
    st.jit_pending.store(false, std::memory_order_release);
    mgr = st.compile_mgr.get();
  }
  u32 compiled = 0;
  // Install whatever the background compiler finished (this is the
  // safepoint-coordinated install point: we are a mutator between polls,
  // so a stop-the-world poisoning pass can never interleave).
  if (mgr != nullptr) compiled += mgr->installReady();
  for (JMethod* m : todo) {
    // Promotion requests are idempotent per method: the governor re-fires
    // its hot-loop action on every tick a bundle stays hot, and a spinning
    // bundle's OSR flush drains this queue thousands of times a second --
    // a stale entry for a method that is already compiled (or was poisoned
    // after it was queued) must not rebuild or resurrect its JitCode.
    if (m->jitcode.load(std::memory_order_acquire) == nullptr &&
        !m->poisoned.load(std::memory_order_acquire)) {
      if (auto built = buildJitCode(vm, m);
          built != nullptr && installJitCode(vm, std::move(built))) {
        ++compiled;
      }
    }
    if (auto* qc = static_cast<QCode*>(m->qcode.load(std::memory_order_acquire))) {
      qc->jit_queued.store(false, std::memory_order_release);
    }
  }
  return compiled;
}

void poisonCompiledEntry(JMethod* m) {
  if (auto* jc = static_cast<JitCode*>(m->jitcode.load(std::memory_order_acquire))) {
    jc->entry.store(&kPoisonedEntry, std::memory_order_release);
    // OSR entries are method entries too: a terminated isolate's spinning
    // frame must not be able to transfer onto compiled code through a
    // loop-header side door (docs/jit.md, "On-stack replacement").
    for (OsrEntry& e : jc->osr_entries) {
      e.entry.store(&kPoisonedOsrEntry, std::memory_order_release);
    }
  }
}

std::string disasmJit(VM& vm, JMethod* m) {
  (void)vm;
  JitCode* jc = jitCodeOf(m);
  if (jc == nullptr) return "";
  const MInsn* entry = jc->entry.load(std::memory_order_acquire);
  std::string out = strf(
      "%s  (compiled call-threaded, %zu thunks, max stack %u, entry %s)\n",
      m->fullName().c_str(), jc->code.size(), jc->max_stack,
      entry == &kPoisonedEntry ? "POISONED" : "t0");
  auto slot_of = [&](const MInsn* p) {
    return static_cast<i32>(p - jc->code.data());
  };
  // OSR entry thunks, one per compiled loop header (docs/jit.md).
  for (const OsrEntry& e : jc->osr_entries) {
    const MInsn* osr_entry = e.entry.load(std::memory_order_acquire);
    out += strf("  osr@pc%-4d depth=%d -> t%d  %s\n", e.pc, e.depth,
                slot_of(e.thunk.target),
                osr_entry == &kPoisonedOsrEntry ? "POISONED" : "OSR_ENTRY");
  }
  for (size_t k = 0; k < jc->code.size(); ++k) {
    const MInsn& mi = jc->code[k];
    std::string operands;
    if (mi.fn == op_deopt) {
      operands = strf("(%s not quickened at compile time)", opName(mi.src_op));
    } else if (mi.fn == op_iconst || mi.fn == op_iconst_iadd) {
      operands = strf("imm=%d", mi.a);
    } else if (mi.fn == op_load || mi.fn == op_store) {
      operands = strf("slot=%d", mi.a);
    } else if (mi.fn == op_iinc) {
      operands = strf("slot=%d delta=%d", mi.a, mi.b);
    } else if (mi.fn == op_iinc_goto) {
      operands = strf("slot=%d delta=%d", mi.a, mi.b);
    } else if (mi.fn == op_static_iadd) {
      const auto* f = static_cast<const JField*>(mi.ptr);
      operands = strf("%s.%s slot=%d imm=%d", f->owner->name.c_str(),
                      f->name.c_str(), mi.c, mi.a);
    } else if (mi.name == std::string("GETFIELD_ARITH_J") ||
               mi.name == std::string("ALOAD_GETFIELD_ARITH_J")) {
      const auto* f = static_cast<const JField*>(mi.ptr);
      operands = strf("%s.%s slot=%d", f->owner->name.c_str(),
                      f->name.c_str(), mi.c);
    } else if (mi.fn == op_aload_getfield || mi.fn == op_getfield_q ||
               mi.fn == op_putfield_q || mi.fn == op_getstatic_q ||
               mi.fn == op_putstatic_q) {
      const auto* f = static_cast<const JField*>(mi.ptr);
      operands = strf("%s.%s slot=%d", f->owner->name.c_str(), f->name.c_str(),
                      mi.c);
    } else if (mi.fn == op_invokevirtual || mi.fn == op_invokeinterface ||
               mi.fn == op_invokestatic || mi.fn == op_invokespecial) {
      operands = static_cast<const JMethod*>(mi.ptr)->fullName() +
                 strf(" nargs=%d", mi.c);
    } else if (mi.fn == op_new_q || mi.fn == op_newarray ||
               mi.fn == op_checkcast_q || mi.fn == op_instanceof_q) {
      operands = static_cast<const JClass*>(mi.ptr)->name;
    } else if (mi.name == std::string("ILOAD_ILOAD_ARITH_ISTORE_J")) {
      operands = strf("slots=[%d %d] -> slot %d", mi.a, mi.c, mi.b);
    } else if (mi.fn == op_ll_iadd || mi.fn == op_ll_isub ||
               mi.fn == op_ll_imul || mi.fn == op_ll_iand ||
               mi.fn == op_ll_ior || mi.fn == op_ll_ixor) {
      operands = strf("slots=[%d %d]", mi.a, mi.c);
    } else if (mi.tpc >= 0 && mi.target != nullptr &&
               (mi.fn == op_ll_icmpeq || mi.fn == op_ll_icmpne ||
                mi.fn == op_ll_icmplt || mi.fn == op_ll_icmpge ||
                mi.fn == op_ll_icmpgt || mi.fn == op_ll_icmple)) {
      operands = strf("slots=[%d %d]", mi.a, mi.c);
    }
    if (mi.target != nullptr) {
      operands += strf("%s-> t%d (pc %d)", operands.empty() ? "" : " ",
                       slot_of(mi.target), mi.tpc);
    }
    out += disasmCompiledThunk(static_cast<i32>(k), mi.pc, mi.name, operands) +
           "\n";
  }
  return out;
}

}  // namespace ijvm::exec
