// The quickening execution engine (tentpole of the staged-execution plan).
//
// Three mechanisms layered on the classic interpreter's semantics:
//
//  * Quickening: on first execution each pool-referencing instruction
//    resolves its operand (with the classic engine's lazy-resolution
//    exception behaviour) and rewrites itself in the method's QCode stream
//    to a quickened form carrying direct JClass*/JField*/JMethod* payloads
//    (see quickened.h for the publication protocol).
//
//  * Direct-threaded dispatch: computed-goto label threading on GCC/Clang
//    (one indirect branch per handler, no bounds check, no per-instruction
//    safepoint atomics), with a portable switch fallback. Safepoint and
//    termination polls move to method entry, loop back-edges and exception
//    dispatch -- every unbounded execution path still crosses a poll, so
//    isolate termination (paper section 3.3) keeps working; attack A6's
//    infinite loop is interrupted at its back-edge.
//
//  * Inline caches: monomorphic receiver-class caches for invokevirtual /
//    invokeinterface, and *isolate-keyed* mirror caches for static access.
//    The static cache is indexed by the executing isolate's TCM index
//    because per-isolate statics are exactly what the paper's isolation
//    model (section 3.1) re-clones per bundle -- a global static cache
//    would leak one isolate's mirror into another.
//
// Profile counters (per-method invocation + loop-edge, plus per-isolate
// aggregates in ResourceStats) are the seam the governor and future tiers
// (superinstructions, baseline JIT) consume.
#include "exec/engine.h"

#include "bytecode/disasm.h"
#include "exec/compile_manager.h"
#include "exec/fuse.h"
#include "exec/interp_support.h"
#include "exec/jit.h"
#include "exec/quickened.h"
#include "heap/object.h"
#include "obs/profiler.h"
#include "runtime/vm.h"
#include "support/strf.h"

// Dispatch flavor: label threading needs GNU computed goto; define
// IJVM_FORCE_SWITCH_DISPATCH to test the portable fallback.
#if !defined(IJVM_FORCE_SWITCH_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define IJVM_COMPUTED_GOTO 1
#else
#define IJVM_COMPUTED_GOTO 0
#endif

namespace ijvm::exec {

using namespace interp;

ExecState& engineState(VM& vm) {
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp != nullptr) return *sp;
  static std::mutex create_mutex;
  std::lock_guard<std::mutex> lock(create_mutex);
  sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) {
    sp = std::make_shared<ExecState>();
    vm.setExtension(kStateKey, sp);
  }
  return *sp;
}

namespace {

// Builds the QCode mirror of a method's instruction stream (generic opcodes,
// original operands); instructions quicken themselves as they execute.
QCode* quicken(VM& vm, JMethod* m) {
  ExecState& st = engineState(vm);
  std::lock_guard<std::mutex> lock(st.mutex);
  if (void* p = m->qcode.load(std::memory_order_relaxed)) {
    return static_cast<QCode*>(p);
  }
  auto qc = std::make_unique<QCode>();
  qc->method = m;
  qc->state = &st;
  const std::vector<Instruction>& insns = m->code.insns;
  qc->insns = std::vector<QInsn>(insns.size());
  for (size_t i = 0; i < insns.size(); ++i) {
    qc->insns[i].op.store(insns[i].op, std::memory_order_relaxed);
    qc->insns[i].a = insns[i].a;
    qc->insns[i].b = insns[i].b;
  }
  QCode* raw = qc.get();
  st.codes.push_back(std::move(qc));
  m->qcode.store(raw, std::memory_order_release);
  return raw;
}

// In-place instruction rewrite: payload under the lock, opcode published
// with release. Racing rewrites of one instruction compute identical
// payloads (resolution is cached and deterministic), so last-write-wins.
void rewrite(ExecState& st, QInsn& q, Op op, i32 c, void* ptr, i64 imm = 0,
             double dimm = 0.0) {
  std::lock_guard<std::mutex> lock(st.mutex);
  if (q.op.load(std::memory_order_relaxed) == op) return;
  q.c = c;
  q.ptr = ptr;
  q.imm = imm;
  q.dimm = dimm;
  q.op.store(op, std::memory_order_release);
}

// Installs `mirror` as the initialized mirror for TCM index `idx`,
// growing the isolate-keyed table as needed. Replaced tables are retired
// to the arena, never freed, so lock-free readers stay valid.
void installStaticIC(ExecState& st, QInsn& q, i32 idx, TaskClassMirror* mirror) {
  std::lock_guard<std::mutex> lock(st.mutex);
  auto* cur = static_cast<StaticIC*>(q.ic.load(std::memory_order_relaxed));
  if (cur != nullptr && static_cast<size_t>(idx) < cur->slots.size()) {
    cur->slots[static_cast<size_t>(idx)].store(mirror, std::memory_order_release);
    return;
  }
  // Grow geometrically: isolate ids are never reused, so sizing to
  // exactly idx+1 would retire O(isolates) tables per site over time.
  size_t cap = cur != nullptr ? cur->slots.size() : 4;
  while (cap <= static_cast<size_t>(idx)) cap *= 2;
  auto grown = std::make_unique<StaticIC>(cap);
  if (cur != nullptr) {
    for (size_t i = 0; i < cur->slots.size(); ++i) {
      grown->slots[i].store(cur->slots[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
  }
  grown->slots[static_cast<size_t>(idx)].store(mirror, std::memory_order_relaxed);
  q.ic.store(grown.get(), std::memory_order_release);
  st.static_ics.push_back(std::move(grown));
}

}  // namespace

// Polymorphic call-site cache update (mono -> 2-entry poly -> megamorphic;
// see VCallIC in quickened.h). The miss count is carried across replacement
// entries; after kMegamorphicMisses total misses the site is pinned
// megamorphic (all-null ways never match, and the pin is never replaced)
// so a polymorphic site stops allocating new entries. Below the pin, the
// missing receiver takes way 0 and the previous way-0 pair is demoted to
// way 1 (evicting the old way 1): the two most recent receiver classes
// stay cached, which a strict alternation between two receivers turns
// into permanent hits.
void installVCallIC(ExecState& st, QInsn& q, JClass* cls, JMethod* target,
                    VCallIC* missed) {
  u32 misses = 0;
  if (missed != nullptr) {
    if (missed->megamorphic) return;  // pinned
    misses = missed->misses.load(std::memory_order_relaxed) + 1;
  }
  std::lock_guard<std::mutex> lock(st.mutex);
  auto entry = std::make_unique<VCallIC>();
  if (missed != nullptr && misses >= kMegamorphicMisses) {
    entry->megamorphic = true;
  } else {
    entry->receiver_cls[0] = cls;
    entry->target[0] = target;
    if (missed != nullptr && missed->receiver_cls[0] != nullptr &&
        missed->receiver_cls[0] != cls) {
      entry->receiver_cls[1] = missed->receiver_cls[0];
      entry->target[1] = missed->target[0];
    }
  }
  entry->misses.store(misses, std::memory_order_relaxed);
  q.ic.store(entry.get(), std::memory_order_release);
  st.vcall_ics.push_back(std::move(entry));
}

// The classic static-access slow path (both VM modes), plus cache
// installation once this isolate's mirror is Initialized. Returns null
// with a guest exception pending on initialization failure.
TaskClassMirror* staticMirrorSlow(VM& vm, JThread* t, ExecState& st, QInsn& q,
                                  JField* f) {
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  TaskClassMirror* mirror;
  if (!vm.options().isolation) {
    // Baseline path: direct access to the single shared mirror, as an
    // unmodified JVM loads a resolved static slot.
    mirror = &f->owner->sharedMirror();
    if (mirror->state.load(std::memory_order_acquire) !=
        TaskClassMirror::InitState::Initialized) {
      if (!vm.ensureInitialized(t, f->owner)) return nullptr;
    }
  } else {
    // I-JVM path (paper section 3.1): task-class-mirror indirection with
    // the initialization check reentrant code cannot elide.
    mirror = f->owner->tcmFast(iso->id);
    if (mirror == nullptr ||
        mirror->state.load(std::memory_order_acquire) !=
            TaskClassMirror::InitState::Initialized) {
      if (!vm.ensureInitialized(t, f->owner)) return nullptr;
      mirror = &f->owner->tcm(vm.tcmIndex(iso));
    }
  }
  // Only a fully initialized mirror enters the cache: a slot hit then
  // proves <clinit> ran for that isolate, so the fast path needs no state
  // check. During <clinit> (state Running) every access stays slow.
  if (mirror->state.load(std::memory_order_acquire) ==
      TaskClassMirror::InitState::Initialized) {
    installStaticIC(st, q, vm.tcmIndex(iso), mirror);
  }
  return mirror;
}

Value interpretQuickened(VM& vm, JThread* t, Frame& frame) {
  JMethod* const method = frame.method;
  JClass* const owner = method->owner;
  const bool accounting = vm.options().accounting;

  method->profile_invocations.fetch_add(1, std::memory_order_relaxed);
  if (accounting && frame.isolate != nullptr) {
    frame.isolate->stats.method_invocations.fetch_add(1, std::memory_order_relaxed);
  }

#ifndef IJVM_DISABLE_JIT
  // Steady-state compiled entry: a method with installed tier-3 code goes
  // straight to it, skipping the tier-1/2 bookkeeping below -- the fusion
  // and promotion checks are settled by construction once code is
  // installed (fusion_done gates promotion), and the profile counters
  // above still tick for the demotion re-heat floor and the governor's
  // invocation-rate signal. A Deopt exit falls through into the full
  // interpreter path with the compiled code already retired; jit_ran
  // keeps that continuation from re-promoting or pre-sampling within the
  // same entry.
  bool jit_ran = false;
  if (vm.options().exec_engine == ExecEngine::Jit) {
    void* jcp = method->jitcode.load(std::memory_order_acquire);
    if (jcp != nullptr) {
      JitResult r = runJit(vm, t, frame, *static_cast<JitCode*>(jcp));
      if (r.exit != JitExit::Deopt) return r.value;
      jit_ran = true;
    }
  }
#endif

  QCode* qc = static_cast<QCode*>(method->qcode.load(std::memory_order_acquire));
  if (qc == nullptr) qc = quicken(vm, method);
  ExecState& st = *qc->state;
  QInsn* const qinsns = qc->insns.data();
  const i32 code_size = static_cast<i32>(qc->insns.size());
  std::vector<Value>& stack = frame.stack;
  std::vector<Value>& locals = frame.locals;
  SafepointController& safepoints = vm.safepoints();

#ifndef IJVM_DISABLE_FUSION
  const bool fusion_on = vm.options().fusion;
  // Promotion to the fusion tier (docs/execution-tiers.md): once hot,
  // rewrite the quickened stream a second time into superinstructions.
  // A pass is *complete* only after a prior execution finished (the whole
  // stream has quickened); a method that gets hot inside its very first
  // invocation (the back-edge batch flush below) gets a partial pass over
  // the loop it is spinning, and the complete pass -- which alone retires
  // the method from these checks -- runs at its next entry.
  auto maybeFuse = [&]() {
    if (!fusion_on || qc->fusion_done.load(std::memory_order_relaxed)) return;
    const u64 hot =
        method->profile_invocations.load(std::memory_order_relaxed) +
        method->profile_loop_edges.load(std::memory_order_relaxed);
    if (hot > vm.options().fusion_threshold) {
      // Complete only once an execution ran to a normal return (see
      // QCode::warmed): a recursive method's nested entry, or a first
      // call that unwound mid-body, must not pass a still-quickening
      // stream off as fully warmed.
      fuseQCode(*qc, qc->warmed.load(std::memory_order_relaxed));
    }
  };
  // Runs at normal returns; steady state is one relaxed load. Maintained
  // regardless of the fusion switch: warmed also gates tier-3 promotion,
  // which must keep working with fusion=false.
  auto markWarm = [&]() {
    if (!qc->warmed.load(std::memory_order_relaxed)) {
      qc->warmed.store(true, std::memory_order_relaxed);
    }
  };
  // A warmed stream can take the complete pass at entry. (Cold methods
  // wait; in-first-execution hot loops are promoted partially at the
  // back-edge batch flush below.)
  if (qc->warmed.load(std::memory_order_relaxed)) maybeFuse();
#else
  auto maybeFuse = [] {};
  // QCode::warmed also gates tier-3 promotion, so it is maintained even
  // with the fusion tier compiled out.
  auto markWarm = [&]() {
    if (!qc->warmed.load(std::memory_order_relaxed)) {
      qc->warmed.store(true, std::memory_order_relaxed);
    }
  };
#endif

  // Tier tag for the profiler's stack samples (obs/profiler.h): stamped
  // here and re-stamped wherever the tier changes mid-invocation (fusion
  // at a batch flush, OSR transfer, deopt continuation).
  auto stampTier = [&]() {
    frame.tier = qc->fusion_done.load(std::memory_order_relaxed)
                     ? FrameTier::Fused
                     : FrameTier::Quickened;
  };
  stampTier();

#ifndef IJVM_DISABLE_JIT
  // Tier-3 promotion (docs/jit.md): once a warmed method is hot past
  // VmOptions::jit_threshold -- and settled at the fusion tier, so the
  // compiler sees the final stream -- it is pushed through the
  // promote-to-JIT queue and compiled to call-threaded code. (Steady-state
  // calls to already-compiled methods never reach this block -- the fast
  // path at function entry dispatched them.) A call whose compile lands
  // here runs the fresh code and returns without ever touching the
  // dispatch loop below; a Deopt exit falls through into the
  // interpreter at frame.pc with the compiled code invalidated. A method
  // that only gets hot *inside* an invocation is handled by on-stack
  // replacement at the back-edge batch flush instead (IJVM_MAYBE_OSR
  // below).
  if (!jit_ran && vm.options().exec_engine == ExecEngine::Jit) {
    if (st.jit_pending.load(std::memory_order_relaxed)) drainJitQueue(vm);
    void* jcp = method->jitcode.load(std::memory_order_acquire);
    if (jcp == nullptr && qc->warmed.load(std::memory_order_relaxed) &&
        !qc->jit_ineligible.load(std::memory_order_relaxed)) {
      // Hotness above the demotion re-heat floor (docs/jit.md, "Code
      // lifecycle"): a freshly demoted method must earn jit_threshold of
      // new heat before it recompiles.
      const u64 hot = effectiveJitHotness(method);
      const bool fusion_settled =
#ifndef IJVM_DISABLE_FUSION
          !fusion_on || qc->fusion_done.load(std::memory_order_relaxed);
#else
          true;
#endif
      if (hot > vm.options().jit_threshold && fusion_settled) {
        enqueueForJit(vm, method);
        drainJitQueue(vm);
        jcp = method->jitcode.load(std::memory_order_acquire);
      }
    }
    if (jcp != nullptr) {
      JitResult r = runJit(vm, t, frame, *static_cast<JitCode*>(jcp));
      if (r.exit != JitExit::Deopt) return r.value;
      // Deopt: the cold site quickens below and the method re-promotes at
      // a later entry with a compiled form covering strictly more of the
      // stream (bounded by kMaxJitDeopts).
      jit_ran = true;
      stampTier();  // back to the interpreter tier for the continuation
    }
  }
#endif

  auto push = [&stack](Value v) { stack.push_back(v); };
  auto pop = [&stack]() {
    IJVM_CHECK(!stack.empty(), "operand stack underflow (verifier miss)");
    Value v = stack.back();
    stack.pop_back();
    return v;
  };
  auto throwNPE = [&vm, t](const char* what) {
    vm.throwGuest(t, "java/lang/NullPointerException", what);
  };
  // Loop back-edges are counted in a register and flushed in batches (at
  // returns, call sites, exception dispatch and every 4096 edges): two
  // atomic RMWs per back-edge would dominate a tight guest loop.
  u64 pending_edges = 0;
#ifndef IJVM_DISABLE_JIT
  // Payoff pre-promotion window (docs/jit.md, "Payoff"): time fused-tier
  // invocations while the method is within reach of promotion (hotness
  // past half the threshold, or a compile already in flight), so a later
  // post-install window has a baseline to beat. Two clock reads per
  // sampled invocation, and only until the window fills or the verdict
  // settles; everyone else pays one relaxed load. The sample accumulates
  // in the destructor -- i.e. at *every* return path, unwinds included,
  // matching what the compiled-side sampler times -- unless cancelled: an
  // invocation that OSR-transfers mid-flight is neither purely
  // interpreted nor purely compiled, and a deopt continuation (jit_ran)
  // never starts a sample for the same reason.
  struct PayoffPreSample {
    VM* vm = nullptr;
    QCode* qc = nullptr;
    u32 epoch = 0;
    u64 t0 = 0;
    const u64* edges = nullptr;
    void cancel() { qc = nullptr; }
    ~PayoffPreSample() {
      if (qc != nullptr) {
        payoffAccumulate(*vm, *qc, /*post=*/false, epoch,
                         payoffNowNs() - t0, 1 + *edges);
      }
    }
  } payoff_pre;
  u64 invocation_edges = 0;
  if (!jit_ran && vm.options().jit_payoff &&
      vm.options().exec_engine == ExecEngine::Jit &&
      !qc->payoff_settled.load(std::memory_order_relaxed) &&
      qc->payoff_pre_samples.load(std::memory_order_relaxed) <
          vm.options().jit_payoff_samples &&
      (qc->jit_queued.load(std::memory_order_relaxed) ||
       effectiveJitHotness(method) > vm.options().jit_threshold / 2)) {
    payoff_pre.vm = &vm;
    payoff_pre.qc = qc;
    payoff_pre.epoch = qc->payoff_epoch.load(std::memory_order_acquire);
    payoff_pre.t0 = payoffNowNs();
    payoff_pre.edges = &invocation_edges;
  }
#endif
#if !defined(IJVM_DISABLE_JIT) && !defined(IJVM_DISABLE_OSR)
  // On-stack replacement (docs/jit.md): at a back-edge batch flush a
  // method hot past jit_threshold compiles and the live frame transfers
  // into the compiled code without returning to the caller. osr_requested
  // is the per-invocation promotion latch (promotion requests are
  // idempotent per method -- see exec::tryOsr).
  const bool osr_on =
      vm.options().exec_engine == ExecEngine::Jit && vm.options().osr;
  bool osr_requested = false;
#endif
  auto flushProfile = [&]() {
    if (pending_edges == 0) return;
#ifndef IJVM_DISABLE_JIT
    invocation_edges += pending_edges;  // payoff unit weight, see above
#endif
    method->profile_loop_edges.fetch_add(pending_edges, std::memory_order_relaxed);
    if (accounting && frame.isolate != nullptr) {
      frame.isolate->stats.loop_back_edges.fetch_add(pending_edges,
                                                     std::memory_order_relaxed);
    }
    pending_edges = 0;
  };
  // Safepoint & thread-attention checks; runs at method entry, loop
  // back-edges and after exception dispatch (the classic engine polls
  // before every instruction).
  auto poll = [&]() {
    if (safepoints.stopRequested()) safepoints.poll();
    t->publishEra(safepoints.currentEra());
    if (t->force_kill.load(std::memory_order_relaxed) &&
        t->pending_exception == nullptr) {
      throwStopped(vm, t, kKillAll);
    } else if (t->pending_stop_isolate.load(std::memory_order_relaxed) >= 0 &&
               t->pending_exception == nullptr) {
      i32 target = t->pending_stop_isolate.exchange(-1, std::memory_order_acq_rel);
      if (target >= 0) throwStopped(vm, t, target);
    }
    IJVM_PROFILE_POLL(vm, t);
  };

  i32 pc = frame.pc;
  i32 next = frame.pc;
  const QInsn* ip = qinsns;
  // Invoke staging (shared L_invoke tail below; plain locals because
  // computed goto cannot pass arguments).
  JMethod* inv_resolved = nullptr;
  i32 inv_nargs = 0;
  Op inv_kind = Op::NOP;

#if IJVM_COMPUTED_GOTO
  static const void* const kDispatch[] = {
#define IJVM_LABEL_ADDR(name, pops, pushes, doc) &&L_##name,
      IJVM_OPCODES(IJVM_LABEL_ADDR)
#undef IJVM_LABEL_ADDR
  };
#define CASE(name) L_##name:
#define NEXT()                                                                 \
  do {                                                                         \
    if (t->pending_exception != nullptr) goto L_exception;                     \
    pc = next;                                                                 \
    IJVM_CHECK(static_cast<u32>(pc) < static_cast<u32>(code_size),             \
               strf("pc %d out of range in %s", pc,                            \
                    method->fullName().c_str()));                              \
    frame.pc = pc;                                                             \
    ip = &qinsns[pc];                                                          \
    next = pc + 1;                                                             \
    goto* kDispatch[static_cast<u8>(ip->op.load(std::memory_order_acquire))];  \
  } while (0)
#else
#define CASE(name) case Op::name:
#define NEXT() goto L_dispatch
#endif

// On-stack replacement at the back-edge batch flush (docs/jit.md): with
// frame.pc moved to the branch target -- the loop header -- the live
// frame transfers into tier-3 compiled code. Returned/Unwound finish the
// whole invocation right here; Deopt hands the frame back ready for the
// interpreter at frame.pc and interpretation simply continues there.
#if !defined(IJVM_DISABLE_JIT) && !defined(IJVM_DISABLE_OSR)
#define IJVM_MAYBE_OSR()                                                       \
  do {                                                                         \
    if (osr_on) {                                                              \
      frame.pc = next;                                                         \
      JitResult osr_result;                                                    \
      if (tryOsr(vm, t, frame, *qc, osr_requested, &osr_result)) {             \
        payoff_pre.cancel(); /* mixed-tier invocation: not a pre sample */     \
        if (osr_result.exit == JitExit::Deopt) {                               \
          next = frame.pc;                                                     \
          stampTier(); /* deopt continuation runs interpreted again */         \
        } else if (osr_result.exit == JitExit::Unwound) {                      \
          return {};                                                           \
        } else {                                                               \
          markWarm();                                                          \
          return osr_result.value;                                             \
        }                                                                      \
      }                                                                        \
    }                                                                          \
  } while (0)
#else
#define IJVM_MAYBE_OSR() \
  do {                   \
  } while (0)
#endif

// Taken branches: count + poll at back-edges only. frame.pc moves to the
// branch target *before* the poll so a stop exception raised here
// dispatches at the target, as it does in the classic engine. The batch
// flush doubles as the promotion point for methods that get hot inside
// one invocation (a single call spinning a loop): by the time 4096 edges
// accumulated, the loop body has long quickened -- fusion takes a partial
// pass here, and the OSR hook above can compile and transfer the frame
// into tier-3 code.
#define TAKE_BRANCH(tgt)                                                       \
  do {                                                                         \
    next = (tgt);                                                              \
    if (next <= pc) {                                                          \
      if ((++pending_edges & 0xFFF) == 0) {                                    \
        flushProfile();                                                        \
        maybeFuse();                                                           \
        stampTier(); /* a partial fusion pass may just have run */             \
        IJVM_MAYBE_OSR();                                                      \
      }                                                                        \
      frame.pc = next;                                                         \
      poll();                                                                  \
    }                                                                          \
  } while (0)

  poll();
  next = frame.pc;
#if IJVM_COMPUTED_GOTO
  NEXT();
#else
L_dispatch:
  if (t->pending_exception != nullptr) goto L_exception;
  pc = next;
  IJVM_CHECK(static_cast<u32>(pc) < static_cast<u32>(code_size),
             strf("pc %d out of range in %s", pc, method->fullName().c_str()));
  frame.pc = pc;
  ip = &qinsns[pc];
  next = pc + 1;
  switch (ip->op.load(std::memory_order_acquire)) {
#endif

  CASE(NOP) { NEXT(); }
  CASE(ACONST_NULL) {
    push(Value::nullRef());
    NEXT();
  }
  CASE(ICONST) {
    push(Value::ofInt(ip->a));
    NEXT();
  }

  // ---- constants: generic LDC quickens per pool tag ----
  CASE(LDC) {
    CpEntry& e = owner->pool.at(ip->a);
    switch (e.tag) {
      case CpTag::Int:
        rewrite(st, qinsns[pc], Op::LDC_INT_Q, 0, nullptr, e.i);
        push(Value::ofInt(static_cast<i32>(e.i)));
        break;
      case CpTag::Long:
        rewrite(st, qinsns[pc], Op::LDC_LONG_Q, 0, nullptr, e.i);
        push(Value::ofLong(e.i));
        break;
      case CpTag::Double:
        rewrite(st, qinsns[pc], Op::LDC_DOUBLE_Q, 0, nullptr, 0, e.d);
        push(Value::ofDouble(e.d));
        break;
      case CpTag::String: {
        rewrite(st, qinsns[pc], Op::LDC_STR_Q, 0, &e);
        // Interned in the *current* isolate's string map: two bundles
        // loading the same literal get different objects (paper 3.5).
        Object* s = vm.internString(t, e.text);
        if (s != nullptr) push(Value::ofRef(s));
        break;
      }
      default:
        IJVM_UNREACHABLE("LDC with non-constant pool entry");
    }
    NEXT();
  }
  CASE(LDC_INT_Q) {
    push(Value::ofInt(static_cast<i32>(ip->imm)));
    NEXT();
  }
  CASE(LDC_LONG_Q) {
    push(Value::ofLong(ip->imm));
    NEXT();
  }
  CASE(LDC_DOUBLE_Q) {
    push(Value::ofDouble(ip->dimm));
    NEXT();
  }
  CASE(LDC_STR_Q) {
    Object* s = vm.internString(t, static_cast<CpEntry*>(ip->ptr)->text);
    if (s != nullptr) push(Value::ofRef(s));
    NEXT();
  }

  // ---- locals ----
  CASE(ILOAD) CASE(LLOAD) CASE(DLOAD) CASE(ALOAD) {
    push(locals[static_cast<size_t>(ip->a)]);
    NEXT();
  }
  CASE(ISTORE) CASE(LSTORE) CASE(DSTORE) CASE(ASTORE) {
    locals[static_cast<size_t>(ip->a)] = pop();
    NEXT();
  }
  CASE(IINC) {
    Value& v = locals[static_cast<size_t>(ip->a)];
    v = Value::ofInt(v.asInt() + ip->b);
    NEXT();
  }

  // ---- stack ----
  CASE(POP) {
    pop();
    NEXT();
  }
  CASE(DUP) {
    Value v = pop();
    push(v);
    push(v);
    NEXT();
  }
  CASE(DUP_X1) {
    Value a = pop();
    Value b = pop();
    push(a);
    push(b);
    push(a);
    NEXT();
  }
  CASE(SWAP) {
    Value a = pop();
    Value b = pop();
    push(a);
    push(b);
    NEXT();
  }

  // ---- int arithmetic (wrapping) ----
#define IJVM_IBIN(OPNAME, EXPR)                                                \
  CASE(OPNAME) {                                                               \
    i32 b = pop().asInt();                                                     \
    i32 a = pop().asInt();                                                     \
    push(Value::ofInt(EXPR));                                                  \
    NEXT();                                                                    \
  }
  IJVM_IBIN(IADD, static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
  IJVM_IBIN(ISUB, static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
  IJVM_IBIN(IMUL, static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
  IJVM_IBIN(ISHL, static_cast<i32>(static_cast<u32>(a) << wrapShift32(b)))
  IJVM_IBIN(ISHR, a >> wrapShift32(b))
  IJVM_IBIN(IUSHR, static_cast<i32>(static_cast<u32>(a) >> wrapShift32(b)))
  IJVM_IBIN(IAND, a & b)
  IJVM_IBIN(IOR, a | b)
  IJVM_IBIN(IXOR, a ^ b)
#undef IJVM_IBIN
  CASE(IDIV) CASE(IREM) {
    i32 b = pop().asInt();
    i32 a = pop().asInt();
    if (b == 0) {
      vm.throwGuest(t, "java/lang/ArithmeticException", "/ by zero");
      NEXT();
    }
    const bool is_div = ip->op.load(std::memory_order_relaxed) == Op::IDIV;
    push(Value::ofInt(is_div ? idivSafe(a, b) : iremSafe(a, b)));
    NEXT();
  }
  CASE(INEG) {
    i32 a = pop().asInt();
    push(Value::ofInt(static_cast<i32>(0u - static_cast<u32>(a))));
    NEXT();
  }

  // ---- long arithmetic ----
#define IJVM_LBIN(OPNAME, EXPR)                                                \
  CASE(OPNAME) {                                                               \
    i64 b = pop().asLong();                                                    \
    i64 a = pop().asLong();                                                    \
    push(Value::ofLong(EXPR));                                                 \
    NEXT();                                                                    \
  }
  IJVM_LBIN(LADD, static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b)))
  IJVM_LBIN(LSUB, static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b)))
  IJVM_LBIN(LMUL, static_cast<i64>(static_cast<u64>(a) * static_cast<u64>(b)))
  IJVM_LBIN(LAND, a & b)
  IJVM_LBIN(LOR, a | b)
  IJVM_LBIN(LXOR, a ^ b)
#undef IJVM_LBIN
  CASE(LSHL) {
    i32 sh = pop().asInt();
    i64 a = pop().asLong();
    push(Value::ofLong(static_cast<i64>(static_cast<u64>(a) << wrapShift64(sh))));
    NEXT();
  }
  CASE(LSHR) {
    i32 sh = pop().asInt();
    i64 a = pop().asLong();
    push(Value::ofLong(a >> wrapShift64(sh)));
    NEXT();
  }
  CASE(LDIV) CASE(LREM) {
    i64 b = pop().asLong();
    i64 a = pop().asLong();
    if (b == 0) {
      vm.throwGuest(t, "java/lang/ArithmeticException", "/ by zero");
      NEXT();
    }
    const bool is_div = ip->op.load(std::memory_order_relaxed) == Op::LDIV;
    push(Value::ofLong(is_div ? ldivSafe(a, b) : lremSafe(a, b)));
    NEXT();
  }
  CASE(LNEG) {
    i64 a = pop().asLong();
    push(Value::ofLong(static_cast<i64>(0ull - static_cast<u64>(a))));
    NEXT();
  }
  CASE(LCMP) {
    i64 b = pop().asLong();
    i64 a = pop().asLong();
    push(Value::ofInt(a < b ? -1 : (a > b ? 1 : 0)));
    NEXT();
  }

  // ---- double arithmetic ----
#define IJVM_DBIN(OPNAME, EXPR)                                                \
  CASE(OPNAME) {                                                               \
    double b = pop().asDouble();                                               \
    double a = pop().asDouble();                                               \
    push(Value::ofDouble(EXPR));                                               \
    NEXT();                                                                    \
  }
  IJVM_DBIN(DADD, a + b)
  IJVM_DBIN(DSUB, a - b)
  IJVM_DBIN(DMUL, a * b)
  IJVM_DBIN(DDIV, a / b)
  IJVM_DBIN(DREM, std::fmod(a, b))
#undef IJVM_DBIN
  CASE(DNEG) {
    push(Value::ofDouble(-pop().asDouble()));
    NEXT();
  }
  CASE(DCMPL) CASE(DCMPG) {
    double b = pop().asDouble();
    double a = pop().asDouble();
    i32 r;
    if (std::isnan(a) || std::isnan(b)) {
      r = ip->op.load(std::memory_order_relaxed) == Op::DCMPL ? -1 : 1;
    } else {
      r = a < b ? -1 : (a > b ? 1 : 0);
    }
    push(Value::ofInt(r));
    NEXT();
  }

  // ---- conversions ----
  CASE(I2L) {
    push(Value::ofLong(pop().asInt()));
    NEXT();
  }
  CASE(I2D) {
    push(Value::ofDouble(pop().asInt()));
    NEXT();
  }
  CASE(L2I) {
    push(Value::ofInt(static_cast<i32>(pop().asLong())));
    NEXT();
  }
  CASE(L2D) {
    push(Value::ofDouble(static_cast<double>(pop().asLong())));
    NEXT();
  }
  CASE(D2I) {
    push(Value::ofInt(d2iSat(pop().asDouble())));
    NEXT();
  }
  CASE(D2L) {
    push(Value::ofLong(d2lSat(pop().asDouble())));
    NEXT();
  }

  // ---- branches ----
#define IJVM_IF1(OPNAME, CMP)                                                  \
  CASE(OPNAME) {                                                               \
    i32 a = pop().asInt();                                                     \
    if (a CMP 0) TAKE_BRANCH(ip->a);                                           \
    NEXT();                                                                    \
  }
  IJVM_IF1(IFEQ, ==)
  IJVM_IF1(IFNE, !=)
  IJVM_IF1(IFLT, <)
  IJVM_IF1(IFGE, >=)
  IJVM_IF1(IFGT, >)
  IJVM_IF1(IFLE, <=)
#undef IJVM_IF1
#define IJVM_IF2(OPNAME, CMP)                                                  \
  CASE(OPNAME) {                                                               \
    i32 b = pop().asInt();                                                     \
    i32 a = pop().asInt();                                                     \
    if (a CMP b) TAKE_BRANCH(ip->a);                                           \
    NEXT();                                                                    \
  }
  IJVM_IF2(IF_ICMPEQ, ==)
  IJVM_IF2(IF_ICMPNE, !=)
  IJVM_IF2(IF_ICMPLT, <)
  IJVM_IF2(IF_ICMPGE, >=)
  IJVM_IF2(IF_ICMPGT, >)
  IJVM_IF2(IF_ICMPLE, <=)
#undef IJVM_IF2
  CASE(IF_ACMPEQ) {
    Object* b = pop().asRef();
    Object* a = pop().asRef();
    if (a == b) TAKE_BRANCH(ip->a);
    NEXT();
  }
  CASE(IF_ACMPNE) {
    Object* b = pop().asRef();
    Object* a = pop().asRef();
    if (a != b) TAKE_BRANCH(ip->a);
    NEXT();
  }
  CASE(IFNULL) {
    if (pop().asRef() == nullptr) TAKE_BRANCH(ip->a);
    NEXT();
  }
  CASE(IFNONNULL) {
    if (pop().asRef() != nullptr) TAKE_BRANCH(ip->a);
    NEXT();
  }
  CASE(GOTO) {
    TAKE_BRANCH(ip->a);
    NEXT();
  }

  // ---- fused superinstructions (fusion tier, exec/fuse.cpp) ----
  // One dispatch per group; `next` advances past the whole group. Locals
  // are read directly instead of bouncing through the operand stack -- the
  // net stack effect is identical to the unfused sequence, and nothing in
  // a fused group can fault mid-way with a partial stack observable by a
  // handler (handlers clear the stack on entry anyway).
#define IJVM_FUSED_ARITH(OPNAME, EXPR)                                         \
  CASE(OPNAME) {                                                               \
    const i32 a = locals[static_cast<size_t>(ip->a)].asInt();                  \
    const i32 b = locals[static_cast<size_t>(ip->c)].asInt();                  \
    push(Value::ofInt(EXPR));                                                  \
    next = pc + 3;                                                             \
    NEXT();                                                                    \
  }
  IJVM_FUSED_ARITH(ILOAD_ILOAD_IADD_F,
                   static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
  IJVM_FUSED_ARITH(ILOAD_ILOAD_ISUB_F,
                   static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
  IJVM_FUSED_ARITH(ILOAD_ILOAD_IMUL_F,
                   static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
  IJVM_FUSED_ARITH(ILOAD_ILOAD_IAND_F, a & b)
  IJVM_FUSED_ARITH(ILOAD_ILOAD_IOR_F, a | b)
  IJVM_FUSED_ARITH(ILOAD_ILOAD_IXOR_F, a ^ b)
#undef IJVM_FUSED_ARITH
#define IJVM_FUSED_CMP(OPNAME, CMP)                                            \
  CASE(OPNAME) {                                                               \
    const i32 a = locals[static_cast<size_t>(ip->a)].asInt();                  \
    const i32 b = locals[static_cast<size_t>(ip->c)].asInt();                  \
    next = pc + 3;                                                             \
    if (a CMP b) TAKE_BRANCH(static_cast<i32>(ip->imm));                       \
    NEXT();                                                                    \
  }
  IJVM_FUSED_CMP(ILOAD_ILOAD_IF_ICMPEQ_F, ==)
  IJVM_FUSED_CMP(ILOAD_ILOAD_IF_ICMPNE_F, !=)
  IJVM_FUSED_CMP(ILOAD_ILOAD_IF_ICMPLT_F, <)
  IJVM_FUSED_CMP(ILOAD_ILOAD_IF_ICMPGE_F, >=)
  IJVM_FUSED_CMP(ILOAD_ILOAD_IF_ICMPGT_F, >)
  IJVM_FUSED_CMP(ILOAD_ILOAD_IF_ICMPLE_F, <=)
#undef IJVM_FUSED_CMP
  CASE(ICONST_IADD_F) {
    const i32 a = pop().asInt();
    push(Value::ofInt(static_cast<i32>(static_cast<u32>(a) +
                                       static_cast<u32>(ip->a))));
    next = pc + 2;
    NEXT();
  }
  CASE(ALOAD_GETFIELD_F) {
    Object* obj = locals[static_cast<size_t>(ip->a)].asRef();
    if (obj == nullptr) {
      throwNPE(static_cast<JField*>(ip->ptr)->name.c_str());
      NEXT();
    }
    push(obj->fields()[ip->c]);
    next = pc + 2;
    NEXT();
  }
  CASE(IINC_GOTO_F) {
    Value& v = locals[static_cast<size_t>(ip->a)];
    v = Value::ofInt(v.asInt() + ip->b);
    TAKE_BRANCH(ip->c);
    NEXT();
  }

  // ---- returns ----
  CASE(RETURN) {
    flushProfile();
    markWarm();
    return {};
  }
  CASE(IRETURN) CASE(LRETURN) CASE(DRETURN) CASE(ARETURN) {
    flushProfile();
    markWarm();
    return pop();
  }

  // ---- statics: the task-class-mirror indirection (paper 3.1) ----
  CASE(GETSTATIC) {
    JField* f = resolveFieldRef(vm, t, owner, owner->pool.at(ip->a),
                                /*want_static=*/true);
    if (f == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::GETSTATIC_Q, f->slot, f);
    TaskClassMirror* mirror = staticMirrorSlow(vm, t, st, qinsns[pc], f);
    if (mirror == nullptr) NEXT();
    push(mirror->statics[static_cast<size_t>(f->slot)]);
    NEXT();
  }
  CASE(PUTSTATIC) {
    JField* f = resolveFieldRef(vm, t, owner, owner->pool.at(ip->a),
                                /*want_static=*/true);
    if (f == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::PUTSTATIC_Q, f->slot, f);
    TaskClassMirror* mirror = staticMirrorSlow(vm, t, st, qinsns[pc], f);
    if (mirror == nullptr) NEXT();
    mirror->statics[static_cast<size_t>(f->slot)] = pop();
    NEXT();
  }
  CASE(GETSTATIC_Q) {
    TaskClassMirror* mirror = nullptr;
    if (auto* sic = static_cast<StaticIC*>(ip->ic.load(std::memory_order_acquire))) {
      const i32 idx =
          vm.tcmIndex(t->current_isolate.load(std::memory_order_relaxed));
      if (static_cast<size_t>(idx) < sic->slots.size()) {
        mirror = sic->slots[static_cast<size_t>(idx)].load(std::memory_order_acquire);
      }
    }
    if (mirror == nullptr) {
      mirror = staticMirrorSlow(vm, t, st, qinsns[pc],
                                static_cast<JField*>(ip->ptr));
      if (mirror == nullptr) NEXT();
    }
    push(mirror->statics[static_cast<size_t>(ip->c)]);
    NEXT();
  }
  CASE(PUTSTATIC_Q) {
    TaskClassMirror* mirror = nullptr;
    if (auto* sic = static_cast<StaticIC*>(ip->ic.load(std::memory_order_acquire))) {
      const i32 idx =
          vm.tcmIndex(t->current_isolate.load(std::memory_order_relaxed));
      if (static_cast<size_t>(idx) < sic->slots.size()) {
        mirror = sic->slots[static_cast<size_t>(idx)].load(std::memory_order_acquire);
      }
    }
    if (mirror == nullptr) {
      mirror = staticMirrorSlow(vm, t, st, qinsns[pc],
                                static_cast<JField*>(ip->ptr));
      if (mirror == nullptr) NEXT();
    }
    mirror->statics[static_cast<size_t>(ip->c)] = pop();
    NEXT();
  }

  // ---- instance fields ----
  CASE(GETFIELD) {
    JField* f = resolveFieldRef(vm, t, owner, owner->pool.at(ip->a),
                                /*want_static=*/false);
    if (f == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::GETFIELD_Q, f->slot, f);
    Object* obj = pop().asRef();
    if (obj == nullptr) {
      throwNPE(f->name.c_str());
      NEXT();
    }
    push(obj->fields()[f->slot]);
    NEXT();
  }
  CASE(PUTFIELD) {
    JField* f = resolveFieldRef(vm, t, owner, owner->pool.at(ip->a),
                                /*want_static=*/false);
    if (f == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::PUTFIELD_Q, f->slot, f);
    Value v = pop();
    Object* obj = pop().asRef();
    if (obj == nullptr) {
      throwNPE(f->name.c_str());
      NEXT();
    }
    obj->fields()[f->slot] = v;
    NEXT();
  }
  CASE(GETFIELD_Q) {
    Object* obj = pop().asRef();
    if (obj == nullptr) {
      throwNPE(static_cast<JField*>(ip->ptr)->name.c_str());
      NEXT();
    }
    push(obj->fields()[ip->c]);
    NEXT();
  }
  CASE(PUTFIELD_Q) {
    Value v = pop();
    Object* obj = pop().asRef();
    if (obj == nullptr) {
      throwNPE(static_cast<JField*>(ip->ptr)->name.c_str());
      NEXT();
    }
    obj->fields()[ip->c] = v;
    NEXT();
  }

  // ---- calls: generic forms resolve + rewrite, then share the tail ----
  CASE(INVOKEVIRTUAL) {
    inv_resolved = resolveMethodRef(vm, t, owner, owner->pool.at(ip->a));
    if (inv_resolved == nullptr) NEXT();
    inv_nargs = inv_resolved->argSlots();
    rewrite(st, qinsns[pc], Op::INVOKEVIRTUAL_Q, inv_nargs, inv_resolved);
    inv_kind = Op::INVOKEVIRTUAL;
    goto L_invoke;
  }
  CASE(INVOKESPECIAL) {
    inv_resolved = resolveMethodRef(vm, t, owner, owner->pool.at(ip->a));
    if (inv_resolved == nullptr) NEXT();
    inv_nargs = inv_resolved->argSlots();
    rewrite(st, qinsns[pc], Op::INVOKESPECIAL_Q, inv_nargs, inv_resolved);
    inv_kind = Op::INVOKESPECIAL;
    goto L_invoke;
  }
  CASE(INVOKESTATIC) {
    inv_resolved = resolveMethodRef(vm, t, owner, owner->pool.at(ip->a));
    if (inv_resolved == nullptr) NEXT();
    inv_nargs = inv_resolved->argSlots();
    rewrite(st, qinsns[pc], Op::INVOKESTATIC_Q, inv_nargs, inv_resolved);
    inv_kind = Op::INVOKESTATIC;
    goto L_invoke;
  }
  CASE(INVOKEINTERFACE) {
    inv_resolved = resolveMethodRef(vm, t, owner, owner->pool.at(ip->a));
    if (inv_resolved == nullptr) NEXT();
    inv_nargs = inv_resolved->argSlots();
    rewrite(st, qinsns[pc], Op::INVOKEINTERFACE_Q, inv_nargs, inv_resolved);
    inv_kind = Op::INVOKEINTERFACE;
    goto L_invoke;
  }
  CASE(INVOKEVIRTUAL_Q) {
    inv_resolved = static_cast<JMethod*>(ip->ptr);
    inv_nargs = ip->c;
    inv_kind = Op::INVOKEVIRTUAL;
    goto L_invoke;
  }
  CASE(INVOKESPECIAL_Q) {
    inv_resolved = static_cast<JMethod*>(ip->ptr);
    inv_nargs = ip->c;
    inv_kind = Op::INVOKESPECIAL;
    goto L_invoke;
  }
  CASE(INVOKESTATIC_Q) {
    inv_resolved = static_cast<JMethod*>(ip->ptr);
    inv_nargs = ip->c;
    inv_kind = Op::INVOKESTATIC;
    goto L_invoke;
  }
  CASE(INVOKEINTERFACE_Q) {
    inv_resolved = static_cast<JMethod*>(ip->ptr);
    inv_nargs = ip->c;
    inv_kind = Op::INVOKEINTERFACE;
    goto L_invoke;
  }

L_invoke: {
  const i32 nargs = inv_nargs;
  IJVM_CHECK(static_cast<size_t>(nargs) <= stack.size(),
             "operand stack underflow at call (verifier miss)");
  // Arguments are passed directly from the caller's operand stack; they
  // stay rooted there (and GC-visible) until the call returns.
  const Value* args = stack.data() + (stack.size() - static_cast<size_t>(nargs));
  JMethod* callee = inv_resolved;
  if (inv_kind == Op::INVOKEVIRTUAL || inv_kind == Op::INVOKEINTERFACE) {
    Object* recv = args[0].asRef();
    if (recv == nullptr) {
      throwNPE(inv_resolved->name.c_str());
      NEXT();
    }
    auto* cache = static_cast<VCallIC*>(ip->ic.load(std::memory_order_acquire));
    if (cache != nullptr && cache->receiver_cls[0] == recv->cls) {
      callee = cache->target[0];
    } else if (cache != nullptr && cache->receiver_cls[1] == recv->cls) {
      callee = cache->target[1];
    } else {
      if (inv_kind == Op::INVOKEVIRTUAL && inv_resolved->vtable_index >= 0 &&
          static_cast<size_t>(inv_resolved->vtable_index) <
              recv->cls->vtable.size()) {
        callee = recv->cls->vtable[static_cast<size_t>(inv_resolved->vtable_index)];
      } else {
        callee = recv->cls->resolveVirtual(inv_resolved->name,
                                           inv_resolved->descriptor);
        if (callee == nullptr) {
          vm.throwGuest(t, "java/lang/AbstractMethodError",
                        inv_resolved->fullName());
          NEXT();
        }
      }
      installVCallIC(st, qinsns[pc], recv->cls, callee, cache);
    }
  } else if (inv_kind == Op::INVOKESTATIC) {
    if (!inv_resolved->isStatic()) {
      vm.throwGuest(t, "java/lang/IncompatibleClassChangeError",
                    inv_resolved->fullName());
      NEXT();
    }
  } else {  // INVOKESPECIAL: ctor / super / private -- direct
    if (args[0].asRef() == nullptr) {
      throwNPE(inv_resolved->name.c_str());
      NEXT();
    }
  }
  flushProfile();
  Value r = vm.invokeCore(t, callee, args, nargs);
  stack.resize(stack.size() - static_cast<size_t>(nargs));
  if (t->pending_exception != nullptr) NEXT();
  if (callee->sig.ret.kind != Kind::Void) push(r);
  NEXT();
}

  // ---- objects & arrays ----
  CASE(NEW) {
    JClass* cls = resolveClassRef(vm, t, owner, owner->pool.at(ip->a));
    if (cls == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::NEW_Q, 0, cls);
    if (cls->isInterface() || (cls->flags & ACC_ABSTRACT) != 0) {
      vm.throwGuest(t, "java/lang/InstantiationError", cls->name);
      NEXT();
    }
    if (!vm.ensureInitialized(t, cls)) NEXT();
    Object* obj = vm.allocObject(t, cls);
    if (obj != nullptr) push(Value::ofRef(obj));
    NEXT();
  }
  CASE(NEW_Q) {
    JClass* cls = static_cast<JClass*>(ip->ptr);
    if (cls->isInterface() || (cls->flags & ACC_ABSTRACT) != 0) {
      vm.throwGuest(t, "java/lang/InstantiationError", cls->name);
      NEXT();
    }
    if (!vm.ensureInitialized(t, cls)) NEXT();
    Object* obj = vm.allocObject(t, cls);
    if (obj != nullptr) push(Value::ofRef(obj));
    NEXT();
  }
  CASE(NEWARRAY) {
    i32 len = pop().asInt();
    const char* name = ip->a == 0 ? "[I" : (ip->a == 1 ? "[J" : "[D");
    JClass* cls = vm.registry().arrayClass(name);
    Object* arr = vm.allocArrayObject(t, cls, len);
    if (arr != nullptr) push(Value::ofRef(arr));
    NEXT();
  }
  CASE(ANEWARRAY) {
    i32 len = pop().asInt();
    JClass* elem = resolveClassRef(vm, t, owner, owner->pool.at(ip->a));
    if (elem == nullptr) NEXT();
    JClass* cls = vm.registry().resolve(elem->loader, "[L" + elem->name + ";");
    if (cls == nullptr) {
      vm.throwGuest(t, "java/lang/NoClassDefFoundError", elem->name);
      NEXT();
    }
    rewrite(st, qinsns[pc], Op::ANEWARRAY_Q, 0, cls);
    Object* arr = vm.allocArrayObject(t, cls, len);
    if (arr != nullptr) push(Value::ofRef(arr));
    NEXT();
  }
  CASE(ANEWARRAY_Q) {
    i32 len = pop().asInt();
    Object* arr = vm.allocArrayObject(t, static_cast<JClass*>(ip->ptr), len);
    if (arr != nullptr) push(Value::ofRef(arr));
    NEXT();
  }
  CASE(ARRAYLENGTH) {
    Object* arr = pop().asRef();
    if (arr == nullptr) {
      throwNPE("arraylength");
      NEXT();
    }
    push(Value::ofInt(arr->length));
    NEXT();
  }

#define IJVM_ALOAD(OPNAME, ACCESSOR, MAKE)                                     \
  CASE(OPNAME) {                                                               \
    i32 idx = pop().asInt();                                                   \
    Object* arr = pop().asRef();                                               \
    if (arr == nullptr) {                                                      \
      throwNPE(#OPNAME);                                                       \
      NEXT();                                                                  \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      vm.throwGuest(t, "java/lang/ArrayIndexOutOfBoundsException",             \
                    strf("%d", idx));                                          \
      NEXT();                                                                  \
    }                                                                          \
    push(MAKE(arr->ACCESSOR()[idx]));                                          \
    NEXT();                                                                    \
  }
  IJVM_ALOAD(IALOAD, intElems, Value::ofInt)
  IJVM_ALOAD(LALOAD, longElems, Value::ofLong)
  IJVM_ALOAD(DALOAD, doubleElems, Value::ofDouble)
  IJVM_ALOAD(AALOAD, refElems, Value::ofRef)
#undef IJVM_ALOAD

#define IJVM_ASTORE(OPNAME, ACCESSOR, GETTER, CAST)                            \
  CASE(OPNAME) {                                                               \
    Value v = pop();                                                           \
    i32 idx = pop().asInt();                                                   \
    Object* arr = pop().asRef();                                               \
    if (arr == nullptr) {                                                      \
      throwNPE(#OPNAME);                                                       \
      NEXT();                                                                  \
    }                                                                          \
    if (idx < 0 || idx >= arr->length) {                                       \
      vm.throwGuest(t, "java/lang/ArrayIndexOutOfBoundsException",             \
                    strf("%d", idx));                                          \
      NEXT();                                                                  \
    }                                                                          \
    arr->ACCESSOR()[idx] = CAST(v.GETTER());                                   \
    NEXT();                                                                    \
  }
  IJVM_ASTORE(IASTORE, intElems, asInt, static_cast<i32>)
  IJVM_ASTORE(LASTORE, longElems, asLong, static_cast<i64>)
  IJVM_ASTORE(DASTORE, doubleElems, asDouble, static_cast<double>)
#undef IJVM_ASTORE
  CASE(AASTORE) {
    Value v = pop();
    i32 idx = pop().asInt();
    Object* arr = pop().asRef();
    if (arr == nullptr) {
      throwNPE("AASTORE");
      NEXT();
    }
    if (idx < 0 || idx >= arr->length) {
      vm.throwGuest(t, "java/lang/ArrayIndexOutOfBoundsException",
                    strf("%d", idx));
      NEXT();
    }
    Object* elem = v.asRef();
    if (elem != nullptr && arr->cls->elem_class != nullptr &&
        !elem->cls->isAssignableTo(arr->cls->elem_class)) {
      vm.throwGuest(t, "java/lang/ArrayStoreException", elem->cls->name);
      NEXT();
    }
    arr->refElems()[idx] = elem;
    NEXT();
  }

  // ---- type checks ----
  CASE(CHECKCAST) {
    JClass* target = resolveClassRef(vm, t, owner, owner->pool.at(ip->a));
    if (target == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::CHECKCAST_Q, 0, target);
    Object* obj = stack.empty() ? nullptr : stack.back().asRef();
    if (obj != nullptr && !obj->cls->isAssignableTo(target)) {
      vm.throwGuest(t, "java/lang/ClassCastException",
                    strf("%s -> %s", obj->cls->name.c_str(), target->name.c_str()));
    }
    NEXT();
  }
  CASE(CHECKCAST_Q) {
    JClass* target = static_cast<JClass*>(ip->ptr);
    Object* obj = stack.empty() ? nullptr : stack.back().asRef();
    if (obj != nullptr && !obj->cls->isAssignableTo(target)) {
      vm.throwGuest(t, "java/lang/ClassCastException",
                    strf("%s -> %s", obj->cls->name.c_str(), target->name.c_str()));
    }
    NEXT();
  }
  CASE(INSTANCEOF) {
    JClass* target = resolveClassRef(vm, t, owner, owner->pool.at(ip->a));
    if (target == nullptr) NEXT();
    rewrite(st, qinsns[pc], Op::INSTANCEOF_Q, 0, target);
    Object* obj = pop().asRef();
    push(Value::ofInt(obj != nullptr && obj->cls->isAssignableTo(target) ? 1 : 0));
    NEXT();
  }
  CASE(INSTANCEOF_Q) {
    JClass* target = static_cast<JClass*>(ip->ptr);
    Object* obj = pop().asRef();
    push(Value::ofInt(obj != nullptr && obj->cls->isAssignableTo(target) ? 1 : 0));
    NEXT();
  }

  // ---- monitors ----
  CASE(MONITORENTER) {
    Object* obj = pop().asRef();
    if (obj == nullptr) {
      throwNPE("monitorenter");
      NEXT();
    }
    Monitor* mon = vm.monitorOf(obj);
    bool acquired = mon->tryEnter(t);
    if (!acquired) {
      BlockedScope blocked(safepoints, t);
      acquired = mon->enter(t, &t->force_kill);
    }
    if (!acquired) throwStopped(vm, t, kKillAll);
    NEXT();
  }
  CASE(MONITOREXIT) {
    Object* obj = pop().asRef();
    if (obj == nullptr) {
      throwNPE("monitorexit");
      NEXT();
    }
    if (!vm.monitorOf(obj)->exit(t)) {
      vm.throwGuest(t, "java/lang/IllegalMonitorStateException", "not owner");
    }
    NEXT();
  }

  // ---- exceptions ----
  CASE(ATHROW) {
    Object* exc = pop().asRef();
    if (exc == nullptr) {
      throwNPE("athrow");
      NEXT();
    }
    t->pending_exception = exc;
    NEXT();
  }

#if !IJVM_COMPUTED_GOTO
  }
  IJVM_UNREACHABLE("opcode missing from quickened dispatch");
#endif

L_exception:
  flushProfile();
  if (dispatchExceptionInFrame(vm, t, frame)) {
    poll();
    next = frame.pc;
    NEXT();
  }
  return {};  // unwind to caller (an aborted execution does not warm the
              // stream -- see QCode::warmed)

#undef CASE
#undef NEXT
#undef TAKE_BRANCH
#undef IJVM_MAYBE_OSR
}

std::string disasmQuickened(VM& vm, JMethod* m) {
  (void)vm;
  auto* qc = static_cast<QCode*>(m->qcode.load(std::memory_order_acquire));
  if (qc == nullptr) return "";
  const bool fused = qc->fusion_partial.load(std::memory_order_acquire);
  std::string out =
      fused ? strf("%s  (quickened+fused, %zu insns, %u fused groups)\n",
                   m->fullName().c_str(), qc->insns.size(),
                   qc->fused_groups.load(std::memory_order_relaxed))
            : strf("%s  (quickened, %zu insns)\n", m->fullName().c_str(),
                   qc->insns.size());
  for (size_t i = 0; i < qc->insns.size(); ++i) {
    const QInsn& q = qc->insns[i];
    const Op op = q.op.load(std::memory_order_acquire);
    if (opIsFused(op)) {
      // Fused heads carry lifted operands in the payload fields; the
      // covered inner instructions follow, marked as such (they keep
      // their original opcodes but are skipped by fall-through).
      std::string field_sym;
      if (op == Op::ALOAD_GETFIELD_F) {
        const auto* f = static_cast<const JField*>(q.ptr);
        field_sym = strf("%s.%s", f->owner->name.c_str(), f->name.c_str());
      }
      out += "  " + disasmFusedInsn(op, static_cast<i32>(i), q.a, q.b, q.c,
                                    q.imm, field_sym) +
             "\n";
      continue;
    }
    Instruction insn;
    insn.op = op;
    insn.a = q.a;
    insn.b = q.b;
    std::string line = disasmInsn(m->owner->pool, insn, static_cast<i32>(i));
    // Annotate instructions swallowed by a preceding fused head.
    for (i32 back = 1; back <= 2 && static_cast<i32>(i) - back >= 0; ++back) {
      const Op head =
          qc->insns[i - static_cast<size_t>(back)].op.load(std::memory_order_acquire);
      if (opIsFused(head) && opFusedLength(head) > back) {
        line += "   ; in fused group";
        break;
      }
    }
    out += "  " + line + "\n";
  }
  return out;
}

}  // namespace ijvm::exec
