// The bounded tier-3 code cache: install accounting, hotness-decayed
// victim selection, demotion, and epoch-based reclamation of retired
// code. Contract in code_cache.h / docs/jit.md ("Code lifecycle") /
// docs/concurrency.md ("Era-based code reclamation").
#include "exec/code_cache.h"

#include <algorithm>

#include "classes/class_loader.h"
#include "exec/compile_manager.h"
#include "exec/jit.h"
#include "exec/jit_internal.h"
#include "exec/quickened.h"
#include "obs/trace.h"
#include "runtime/safepoint.h"
#include "runtime/vm.h"

namespace ijvm::exec {

namespace {

// Trace payloads (obs/trace.h); cold paths only, interning takes a lock.
u32 traceNameOfMethod(const JMethod* m) {
  if (!obs::traceEnabled()) return 0;
  return obs::internTraceName(m->owner->name + "." + m->name);
}

i32 traceIsolateOfMethod(const JMethod* m) {
  Isolate* iso = m->owner->loader->isolate();
  return iso != nullptr ? iso->id : -1;
}

// The poisoned->Dead retire scan shared by both reclamation paths (caller
// holds ExecState::mutex). A killed isolate's compiled code is *poisoned*,
// not retired -- terminateIsolate patches entries so in-flight frames die
// at their polls, and the patched entries stay observable (disasmJit)
// while the isolate winds down. Once a collection has declared the
// isolate Dead (no surviving objects -- the paper's end-of-life point;
// VM::collectGarbage runs its sweep before its own Dead-marking, so the
// kill's own GC never retires here), the code is garbage too: retire it
// so dead bundles stop holding code-cache budget and their code becomes
// freeable even with an unlimited budget on a kill-churn platform.
// (Budget pressure may of course demote poisoned code earlier, like any
// cold code.) The method-level poison barrier keeps refusing re-entry
// regardless.
void retireDeadIsolateCodeLocked(ExecState& st) {
  for (auto& owned : st.jit_codes) {
    JitCode* jc = owned.get();
    if (jc->life.load(std::memory_order_acquire) != JitLife::Installed ||
        !jc->method->poisoned.load(std::memory_order_acquire)) {
      continue;
    }
    Isolate* iso = jc->method->owner->loader->isolate();
    if (iso == nullptr ||
        iso->state.load(std::memory_order_acquire) == IsolateState::Dead) {
      if (retireJitCode(*jc, /*deopt=*/false)) {
        obs::emit(obs::Ev::JitDemote, obs::Ph::Instant,
                  iso != nullptr ? iso->id : -1,
                  traceNameOfMethod(jc->method));
      }
    }
  }
}

}  // namespace

CodeCache::CodeCache() = default;
CodeCache::~CodeCache() = default;

void CodeCache::onInstall(JMethod* m, JitCode* jc, u64 seed_hotness) {
  std::lock_guard<std::mutex> lock(mutex_);
  installed_.push_back({m, jc, jc->approx_bytes, seed_hotness});
  installed_bytes_ += jc->approx_bytes;
  ++compiles_;
}

void CodeCache::onRetire(JitCode* jc, bool deopt) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < installed_.size(); ++i) {
    if (installed_[i].code == jc) {
      installed_[i] = installed_.back();
      installed_.pop_back();
      break;
    }
  }
  installed_bytes_ -= std::min<u64>(installed_bytes_, jc->approx_bytes);
  retired_bytes_ += jc->approx_bytes;
  if (deopt) {
    ++deopt_invalidations_;
  } else {
    ++demotions_;
  }
}

void CodeCache::onReclaim(JitCode* jc) {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_bytes_ -= std::min<u64>(retired_bytes_, jc->approx_bytes);
  ++reclaimed_;
}

void CodeCache::noteBackgroundCompile() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++background_compiles_;
}

void CodeCache::noteDemotedFloor(QCode* qc) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(demoted_floors_.begin(), demoted_floors_.end(), qc) ==
      demoted_floors_.end()) {
    demoted_floors_.push_back(qc);
  }
}

u32 CodeCache::decayFloors() {
  std::lock_guard<std::mutex> lock(mutex_);
  u32 live = 0;
  for (size_t i = 0; i < demoted_floors_.size();) {
    QCode* qc = demoted_floors_[i];
    u64 f = qc->jit_hotness_floor.load(std::memory_order_relaxed);
    // CAS, not a blind store: a concurrent demotion writing a *fresh*
    // floor between our load and store must win -- halving it would let
    // the method bounce straight back into the cache it was just evicted
    // from. On contention skip this entry until the next pass.
    if (f != 0 &&
        !qc->jit_hotness_floor.compare_exchange_strong(
            f, f / 2, std::memory_order_relaxed)) {
      ++live;
      ++i;
      continue;
    }
    if (f / 2 == 0) {
      demoted_floors_[i] = demoted_floors_.back();
      demoted_floors_.pop_back();
    } else {
      ++live;
      ++i;
    }
  }
  return live;
}

u64 CodeCache::retiredBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retired_bytes_;
}

CodeCacheStats CodeCache::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CodeCacheStats s;
  s.installed_bytes = installed_bytes_;
  s.retired_bytes = retired_bytes_;
  s.installed_methods = static_cast<u32>(installed_.size());
  s.compiles = compiles_;
  s.background_compiles = background_compiles_;
  s.demotions = demotions_;
  s.deopt_invalidations = deopt_invalidations_;
  s.reclaimed = reclaimed_;
  return s;
}

void CodeCache::enforceBudget(VM& vm) {
  const size_t budget = vm.options().code_cache_budget;
  if (budget == 0) return;
  // Methods whose demotion failed this pass (a concurrent retire beat us
  // to the entry): skip them so the loop always makes progress.
  std::vector<JMethod*> skip;
  bool decayed = false;
  for (;;) {
    JMethod* victim = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (installed_bytes_ <= budget) return;
      if (!decayed) {
        // Age the scores once per enforcement pass: halve, then fold in
        // the compiled entries taken since the last pass. A method that
        // stopped executing decays toward zero within a few installs;
        // a ripping-hot one keeps outbidding everyone.
        for (Entry& e : installed_) {
          const u64 aged = e.fresh ? e.hotness : e.hotness / 2;
          e.hotness =
              aged + e.code->uses.exchange(0, std::memory_order_relaxed);
          e.fresh = false;
        }
        decayed = true;
      }
      u64 coldest = ~0ull;
      for (const Entry& e : installed_) {
        if (e.code->life.load(std::memory_order_acquire) !=
            JitLife::Installed) {
          continue;  // mid-retire by someone else
        }
        if (std::find(skip.begin(), skip.end(), e.method) != skip.end()) {
          continue;
        }
        if (e.hotness < coldest) {
          coldest = e.hotness;
          victim = e.method;
        }
      }
    }
    if (victim == nullptr) return;  // nothing demotable; transient overshoot
    if (!demoteCompiled(vm, victim)) skip.push_back(victim);
  }
}

// ---- lifecycle transitions -------------------------------------------

bool retireJitCode(JitCode& jc, bool deopt, bool raise_floor) {
  JitLife expected = JitLife::Installed;
  if (!jc.life.compare_exchange_strong(expected, JitLife::Retired,
                                       std::memory_order_acq_rel)) {
    return false;
  }
  JMethod* m = jc.method;
  if (raise_floor) {
    // Demotion's re-heat gate, stored after winning the race (a losing
    // demote must not gate a concurrent deopt's recompile) but before
    // the entry is un-patched (the demoted method's next invocation
    // re-runs the promotion check and must already see the floor).
    const u64 raw = m->profile_invocations.load(std::memory_order_relaxed) +
                    m->profile_loop_edges.load(std::memory_order_relaxed);
    jc.qc->jit_hotness_floor.store(raw, std::memory_order_relaxed);
    // Register the floor for headroom-driven decay, so a demotion under a
    // transient squeeze is not a life sentence (CodeCache::decayFloors).
    jc.qc->state->code_cache->noteDemotedFloor(jc.qc);
  }
  // Any retirement ends the payoff window generation: samples from this
  // code (or from the fused tier racing this retire) must not leak into
  // the next compiled generation's verdict.
  payoffResetWindows(*jc.qc);
  // Un-patch the per-method entry: future invocations fall back to the
  // fused interpreter tier. CAS so a newer install racing this retire is
  // never clobbered (it cannot exist while m->jitcode still points here,
  // but the guard is cheap).
  void* expected_code = &jc;
  static_cast<void>(m->jitcode.compare_exchange_strong(
      expected_code, nullptr, std::memory_order_acq_rel));
  jc.qc->state->code_cache->onRetire(&jc, deopt);
  if (Isolate* iso = m->owner->loader->isolate()) {
    iso->stats.jit_code_bytes.fetch_sub(
        static_cast<i64>(jc.approx_bytes), std::memory_order_relaxed);
  }
  return true;
}

bool installJitCode(VM& vm, std::unique_ptr<JitCode> built) {
  JitCode* jc = built.get();
  JMethod* m = jc->method;
  QCode* qc = jc->qc;
  ExecState& st = engineState(vm);
  const bool install = !m->poisoned.load(std::memory_order_acquire) &&
                       m->jitcode.load(std::memory_order_acquire) == nullptr &&
                       !qc->jit_ineligible.load(std::memory_order_relaxed);
  if (!install) {
    // Dropped: the method was poisoned or compiled by someone else while
    // this build was in flight. Never published, so it is freed right
    // here -- no frame can be inside it.
    qc->jit_queued.store(false, std::memory_order_release);
    return false;
  }
  jc->life.store(JitLife::Installed, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.jit_codes.push_back(std::move(built));
  }
  // Cache entry and isolate accounting before the entry flip: a demote
  // can only pick this method once m->jitcode is non-null, and by then
  // the entry exists and the bytes are counted (a demote's fetch_sub must
  // never run before this install's fetch_add).
  st.code_cache->onInstall(m, jc, effectiveJitHotness(m));
  if (Isolate* iso = m->owner->loader->isolate()) {
    iso->stats.jit_methods_compiled.fetch_add(1, std::memory_order_relaxed);
    iso->stats.jit_code_bytes.fetch_add(static_cast<i64>(jc->approx_bytes),
                                        std::memory_order_relaxed);
  }
  m->jitcode.store(jc, std::memory_order_release);
  qc->jit_queued.store(false, std::memory_order_release);
  obs::emit(obs::Ev::CompileInstall, obs::Ph::Instant, traceIsolateOfMethod(m),
            traceNameOfMethod(m), jc->approx_bytes);
  st.code_cache->enforceBudget(vm);
  return true;
}

// ---- public API -------------------------------------------------------

CodeCacheStats codeCacheStats(VM& vm) {
  return engineState(vm).code_cache->snapshot();
}

bool demoteCompiled(VM& vm, JMethod* m) {
  if (m == nullptr) return false;
  // The whole demotion runs under the engine mutex. A demoter may be a
  // thread that never parks at safepoints (the governor's DemoteJit
  // path), so neither the stopped world nor the era gate that protect
  // *executing* frames protect this code pointer -- but both reclamation
  // paths (sweepRetiredJitCode and reclaimJitCode) free only under the
  // same mutex, so holding it pins every JitCode we might dereference.
  // (The deopt-side retire needs no such pin: the deopting thread is
  // inside the code, active > 0.)
  ExecState& st = engineState(vm);
  std::lock_guard<std::mutex> lock(st.mutex);
  auto* jc = static_cast<JitCode*>(m->jitcode.load(std::memory_order_acquire));
  if (jc == nullptr) return false;
  if (!retireJitCode(*jc, /*deopt=*/false, /*raise_floor=*/true)) return false;
  if (Isolate* iso = m->owner->loader->isolate()) {
    iso->stats.jit_methods_demoted.fetch_add(1, std::memory_order_relaxed);
  }
  obs::emit(obs::Ev::JitDemote, obs::Ph::Instant, traceIsolateOfMethod(m),
            traceNameOfMethod(m));
  return true;
}

u32 decayDemotedFloors(VM& vm) {
  return engineState(vm).code_cache->decayFloors();
}

u32 demoteLoaderJit(VM& vm, ClassLoader* loader) {
  if (loader == nullptr) return 0;
  u32 demoted = 0;
  for (JClass* cls : loader->definedClasses()) {
    for (JMethod& m : cls->methods) {
      if (demoteCompiled(vm, &m)) ++demoted;
    }
  }
  return demoted;
}

u32 sweepRetiredJitCode(VM& vm) {
  // Precondition: the caller stopped the world (VM::collectGarbage). Every
  // mutator is parked at a poll -- inside compiled code only with a
  // nonzero active count (there is no poll between loading
  // JMethod::jitcode and bumping `active`, see runJit) -- so the era gate
  // of the concurrent path is trivially satisfied: a retired code with
  // active == 0 is unreachable and stays so until the world resumes,
  // whether or not it was ever armed with a reclaim era.
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) return 0;
  ExecState& st = *sp;
  u32 freed = 0;
  std::lock_guard<std::mutex> lock(st.mutex);
  retireDeadIsolateCodeLocked(st);
  for (auto it = st.jit_codes.begin(); it != st.jit_codes.end();) {
    JitCode* jc = it->get();
    if (jc->life.load(std::memory_order_acquire) == JitLife::Retired &&
        jc->active.load(std::memory_order_acquire) == 0) {
      st.code_cache->onReclaim(jc);
      it = st.jit_codes.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  if (freed > 0) {
    obs::emit(obs::Ev::JitReclaim, obs::Ph::Instant, /*isolate=*/-1, freed);
  }
  return freed;
}

u32 reclaimJitCode(VM& vm) {
  // Concurrent, era-gated reclamation -- no stop-the-world (the pre-pool
  // implementation parked every mutator here, a pause that grew with
  // thread count). Two phases under the engine mutex:
  //
  //   arm:  a Retired entry not yet armed is stamped with the *next*
  //         safepoint era -- but only after verifying its entry really is
  //         unlinked from JMethod::jitcode. The verify (acquire) reads
  //         the retirer's un-patch CAS, so the un-patch happens-before
  //         this thread's advanceEra (release RMW); a mutator that later
  //         publishes an era >= the target therefore cannot re-load a
  //         stale pointer to the armed code.
  //   free: an armed entry is erased once (a) every counted -- i.e.
  //         Running -- mutator has published an era >= its target, which
  //         closes the poll-free window between the jitcode load and the
  //         active increment, and (b) its active count is zero, which
  //         covers frames parked *inside* the code (a thread blocked in a
  //         native mid-method delays reclamation, it never corrupts it).
  //         Blocked threads are quiescent for the era gate: they cannot
  //         be in the window, and they republish the current era under
  //         the safepoint mutex before running again.
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) return 0;
  ExecState& st = *sp;
  SafepointController& sps = vm.safepoints();
  u32 freed = 0;
  std::lock_guard<std::mutex> lock(st.mutex);
  retireDeadIsolateCodeLocked(st);

  // Arm phase.
  std::vector<JitCode*> to_arm;
  for (auto& owned : st.jit_codes) {
    JitCode* jc = owned.get();
    if (jc->life.load(std::memory_order_acquire) != JitLife::Retired) continue;
    if (jc->reclaim_target.load(std::memory_order_relaxed) != 0) continue;
    // Mid-retire (life flipped, entry not yet un-patched): arm next pass.
    if (jc->method->jitcode.load(std::memory_order_acquire) == jc) continue;
    to_arm.push_back(jc);
  }
  if (!to_arm.empty()) {
    const u64 target = sps.advanceEra();
    for (JitCode* jc : to_arm) {
      jc->reclaim_target.store(target, std::memory_order_relaxed);
    }
    obs::emit(obs::Ev::EraAdvance, obs::Ph::Instant, /*isolate=*/-1, target,
              to_arm.size());
  }

  // Free phase. minCountedEra is taken under the safepoint mutex, so a
  // thread blocked during the scan republishes the (already advanced) era
  // before it can run guest code again.
  const u64 min_era = sps.minCountedEra(vm.threadsSnapshot());
  const u64 now_era = sps.currentEra();
  for (auto it = st.jit_codes.begin(); it != st.jit_codes.end();) {
    JitCode* jc = it->get();
    const u64 target = jc->reclaim_target.load(std::memory_order_relaxed);
    if (jc->life.load(std::memory_order_acquire) == JitLife::Retired &&
        target != 0 && target <= min_era &&
        jc->active.load(std::memory_order_acquire) == 0) {
      // Era lag: how many eras beyond the target elapsed before the code
      // was actually freed (0 = freed at the first eligible pass). Fed to
      // the ReclaimEraLag histogram in *eras*, not nanoseconds.
      obs::recordLatency(obs::Lat::ReclaimEraLag, now_era - target);
      st.code_cache->onReclaim(jc);
      it = st.jit_codes.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  if (freed > 0) {
    obs::emit(obs::Ev::JitReclaim, obs::Ph::Instant, /*isolate=*/-1, freed);
  }
  return freed;
}

}  // namespace ijvm::exec
