// The background compile manager: worker threads that drain
// promote-to-JIT requests, build call-threaded code off the mutator, and
// park it for mutator-side installation. Contract in compile_manager.h /
// docs/jit.md ("Code lifecycle").
#include "exec/compile_manager.h"

#include <algorithm>
#include <chrono>

#include "classes/class_loader.h"
#include "classes/jclass.h"
#include "exec/code_cache.h"
#include "exec/jit_internal.h"
#include "exec/quickened.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::exec {

namespace {
// Idle-tick cadence: the worker wakes this often even without requests to
// run the retired-code pressure check.
constexpr auto kIdleTick = std::chrono::milliseconds(50);
}  // namespace

// ---- tier-3 payoff model (contract in compile_manager.h) --------------

u64 payoffNowNs() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void payoffResetWindows(QCode& qc) {
  // Epoch first: an in-flight sample that already passed its epoch check
  // can still land in the fresh window, but the race window is one
  // fetch_add wide and the leak is one sample -- the windows are
  // measurements, not invariants.
  qc.payoff_epoch.fetch_add(1, std::memory_order_acq_rel);
  qc.payoff_pre_ns.store(0, std::memory_order_relaxed);
  qc.payoff_pre_units.store(0, std::memory_order_relaxed);
  qc.payoff_pre_samples.store(0, std::memory_order_relaxed);
  qc.payoff_post_ns.store(0, std::memory_order_relaxed);
  qc.payoff_post_units.store(0, std::memory_order_relaxed);
  qc.payoff_post_samples.store(0, std::memory_order_relaxed);
  qc.payoff_settled.store(false, std::memory_order_release);
}

bool payoffAccumulate(VM& vm, QCode& qc, bool post, u32 epoch, u64 ns,
                      u64 units) {
  if (qc.payoff_epoch.load(std::memory_order_acquire) != epoch) {
    return false;  // window generation changed while this sample ran
  }
  const u32 cap = std::max<u32>(1, vm.options().jit_payoff_samples);
  std::atomic<u32>& samples = post ? qc.payoff_post_samples
                                   : qc.payoff_pre_samples;
  std::atomic<u64>& w_ns = post ? qc.payoff_post_ns : qc.payoff_pre_ns;
  std::atomic<u64>& w_units = post ? qc.payoff_post_units
                                   : qc.payoff_pre_units;
  // Concurrent samplers may briefly overshoot the cap (each checked
  // `samples < cap` before timing); extra samples only sharpen the
  // estimate. The == below makes exactly one sample the window-filler.
  const u32 n = samples.fetch_add(1, std::memory_order_acq_rel) + 1;
  w_ns.fetch_add(ns, std::memory_order_relaxed);
  w_units.fetch_add(units == 0 ? 1 : units, std::memory_order_relaxed);
  return post && n == cap;
}

bool payoffEvaluate(VM& vm, QCode& qc) {
  // One verdict per window generation: the settled exchange makes the
  // racing second evaluator (two threads completing post samples
  // back-to-back) a no-op. A demotion verdict un-settles again through
  // retireJitCode -> payoffResetWindows, opening the next generation.
  if (qc.payoff_settled.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  const VmOptions& opt = vm.options();
  const u32 cap = std::max<u32>(1, opt.jit_payoff_samples);
  const u32 pre_n = qc.payoff_pre_samples.load(std::memory_order_relaxed);
  const u64 pre_ns = qc.payoff_pre_ns.load(std::memory_order_relaxed);
  const u64 pre_units = qc.payoff_pre_units.load(std::memory_order_relaxed);
  const u64 post_ns = qc.payoff_post_ns.load(std::memory_order_relaxed);
  const u64 post_units = qc.payoff_post_units.load(std::memory_order_relaxed);
  // Evidence floor: a method promoted before it came within sampling
  // reach (tiny thresholds, governor promotion, OSR-heavy shapes) has no
  // usable baseline. Stay settled -- none will ever arrive for this
  // generation -- and give the compiled code the benefit of the doubt.
  if (pre_n < cap / 4 + 1 || pre_units == 0 || pre_ns == 0 ||
      post_units == 0 || post_ns == 0) {
    return false;
  }
  const double pre_rate =
      static_cast<double>(pre_ns) / static_cast<double>(pre_units);
  const double post_rate =
      static_cast<double>(post_ns) / static_cast<double>(post_units);
  const double speedup = pre_rate / post_rate;
  if (speedup >= opt.jit_payoff_min_speedup) return false;  // promotion paid
  // Compiled code measured slower: revert the promotion through the same
  // machinery budget pressure uses. Count the strike *before* demoting so
  // the jit_payoff_max_demotes pin is in place by the time the raised
  // re-heat floor decays and the method competes for promotion again.
  const u32 strikes =
      qc.payoff_demotes.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (strikes >= opt.jit_payoff_max_demotes) {
    qc.jit_ineligible.store(true, std::memory_order_relaxed);
  }
  if (!demoteCompiled(vm, qc.method)) {
    // Lost the retire race (concurrent deopt or budget demote); that
    // retire reset the windows, which is all a demotion would have done.
    return false;
  }
  if (Isolate* iso = qc.method->owner->loader->isolate()) {
    iso->stats.jit_payoff_demotions.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

CompileManager::CompileManager(VM& vm) : vm_(vm) {
  const u32 n = std::max<u32>(1, vm.options().compiler_threads);
  workers_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

CompileManager::~CompileManager() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void CompileManager::enqueue(JMethod* m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(m);
  }
  wake_.notify_one();
}

u32 CompileManager::installReady() {
  std::deque<std::unique_ptr<JitCode>> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready.swap(ready_);
  }
  u32 installed = 0;
  for (auto& jc : ready) {
    if (installJitCode(vm_, std::move(jc))) {
      ++installed;
      engineState(vm_).code_cache->noteBackgroundCompile();
    }
  }
  return installed;
}

bool CompileManager::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !pending_.empty() || building_ > 0 || !ready_.empty();
}

u32 CompileManager::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<u32>(pending_.size()) + building_ +
         static_cast<u32>(ready_.size());
}

void CompileManager::workerLoop(size_t index) {
  obs::setTraceThreadName(index == 0 ? std::string("compiler")
                                     : strf("compiler-%zu", index));
  for (;;) {
    JMethod* m = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, kIdleTick,
                     [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      if (!pending_.empty()) {
        m = pending_.front();
        pending_.pop_front();
        ++building_;
      }
    }
    if (m == nullptr) {
      // Idle tick: pressure-relief for retired code. Demotion and deopt
      // only *retire*; somebody must free. GC does it opportunistically
      // (VM::collectGarbage, world already stopped); worker 0 runs the
      // era-gated concurrent pass (reclaimJitCode -- no pause) when
      // retired bytes pile up on a platform that churns code faster than
      // it allocates garbage. One valve is enough: reclamation is a scan,
      // not a build, and serializing it keeps era advances meaningful.
      if (index != 0) continue;
      CodeCache& cache = *engineState(vm_).code_cache;
      const u64 budget = vm_.options().code_cache_budget;
      const u64 slack = budget > 0 ? budget / 4 : (1u << 20);
      if (cache.retiredBytes() > slack) reclaimJitCode(vm_);
      // Budget headroom doubles as the demotion-floor decay trigger
      // (docs/jit.md, "Code lifecycle"): a method demoted under a
      // transient cache squeeze must not stay penalized forever once the
      // pressure clears. Only decay while at most half the budget is
      // resident -- under sustained pressure the raised floors are doing
      // exactly their job.
      if (budget == 0 ||
          cache.snapshot().installed_bytes <= budget / 2) {
        cache.decayFloors();
      }
      continue;
    }
    std::unique_ptr<JitCode> built;
    {
      // Attribute build time to the requesting isolate in the sampling
      // profiler's CPU table (obs/profiler.h): compiler threads have no
      // guest frames, so they publish an activity slot instead.
      Isolate* iso = m->owner->loader->isolate();
      obs::ProfileActivityScope act(vm_, obs::SampleThreadKind::Compiler,
                                    iso != nullptr ? iso->id : -1,
                                    m->name.c_str());
      built = buildJitCode(vm_, m);
    }
    const bool ok = built != nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --building_;
      if (ok) ready_.push_back(std::move(built));
    }
    if (ok) {
      // Tell the mutators there is something to install: the same
      // lock-free flag they already check at method entry and the
      // back-edge batch flush.
      engineState(vm_).jit_pending.store(true, std::memory_order_release);
    } else {
      // Build failed (ineligible, empty, inconsistent depths): release
      // the request latch so a later request may retry if eligibility
      // changes. buildJitCode pinned jit_ineligible where it never will.
      if (auto* qc =
              static_cast<QCode*>(m->qcode.load(std::memory_order_acquire))) {
        qc->jit_queued.store(false, std::memory_order_release);
      }
    }
  }
}

void shutdownCompileManager(VM& vm) {
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) return;
  std::unique_ptr<CompileManager> mgr;
  {
    std::lock_guard<std::mutex> lock(sp->mutex);
    mgr = std::move(sp->compile_mgr);
  }
  // Destroyed (joined) outside the engine mutex: the worker may need it
  // to finish an in-flight build.
  mgr.reset();
}

u32 compileQueueDepth(VM& vm) {
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) return 0;
  CompileManager* mgr = nullptr;
  {
    std::lock_guard<std::mutex> lock(sp->mutex);
    mgr = sp->compile_mgr.get();
  }
  return mgr != nullptr ? mgr->queueDepth() : 0;
}

bool waitCompileIdle(VM& vm, i64 timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    CompileManager* mgr = nullptr;
    auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
    if (sp != nullptr) {
      std::lock_guard<std::mutex> lock(sp->mutex);
      mgr = sp->compile_mgr.get();
    }
    if (mgr == nullptr) return true;
    mgr->installReady();
    if (!mgr->busy()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace ijvm::exec
