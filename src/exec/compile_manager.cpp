// The background compile manager: worker threads that drain
// promote-to-JIT requests, build call-threaded code off the mutator, and
// park it for mutator-side installation. Contract in compile_manager.h /
// docs/jit.md ("Code lifecycle").
#include "exec/compile_manager.h"

#include <algorithm>
#include <chrono>

#include "classes/jclass.h"
#include "exec/code_cache.h"
#include "exec/jit_internal.h"
#include "exec/quickened.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::exec {

namespace {
// Idle-tick cadence: the worker wakes this often even without requests to
// run the retired-code pressure check.
constexpr auto kIdleTick = std::chrono::milliseconds(50);
}  // namespace

CompileManager::CompileManager(VM& vm) : vm_(vm) {
  const u32 n = std::max<u32>(1, vm.options().compiler_threads);
  workers_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

CompileManager::~CompileManager() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void CompileManager::enqueue(JMethod* m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(m);
  }
  wake_.notify_one();
}

u32 CompileManager::installReady() {
  std::deque<std::unique_ptr<JitCode>> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready.swap(ready_);
  }
  u32 installed = 0;
  for (auto& jc : ready) {
    if (installJitCode(vm_, std::move(jc))) {
      ++installed;
      engineState(vm_).code_cache->noteBackgroundCompile();
    }
  }
  return installed;
}

bool CompileManager::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !pending_.empty() || building_ > 0 || !ready_.empty();
}

u32 CompileManager::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<u32>(pending_.size()) + building_ +
         static_cast<u32>(ready_.size());
}

void CompileManager::workerLoop(size_t index) {
  obs::setTraceThreadName(index == 0 ? std::string("compiler")
                                     : strf("compiler-%zu", index));
  for (;;) {
    JMethod* m = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait_for(lock, kIdleTick,
                     [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      if (!pending_.empty()) {
        m = pending_.front();
        pending_.pop_front();
        ++building_;
      }
    }
    if (m == nullptr) {
      // Idle tick: pressure-relief for retired code. Demotion and deopt
      // only *retire*; somebody must free. GC does it opportunistically
      // (VM::collectGarbage, world already stopped); worker 0 runs the
      // era-gated concurrent pass (reclaimJitCode -- no pause) when
      // retired bytes pile up on a platform that churns code faster than
      // it allocates garbage. One valve is enough: reclamation is a scan,
      // not a build, and serializing it keeps era advances meaningful.
      if (index != 0) continue;
      CodeCache& cache = *engineState(vm_).code_cache;
      const u64 budget = vm_.options().code_cache_budget;
      const u64 slack = budget > 0 ? budget / 4 : (1u << 20);
      if (cache.retiredBytes() > slack) reclaimJitCode(vm_);
      continue;
    }
    std::unique_ptr<JitCode> built = buildJitCode(vm_, m);
    const bool ok = built != nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --building_;
      if (ok) ready_.push_back(std::move(built));
    }
    if (ok) {
      // Tell the mutators there is something to install: the same
      // lock-free flag they already check at method entry and the
      // back-edge batch flush.
      engineState(vm_).jit_pending.store(true, std::memory_order_release);
    } else {
      // Build failed (ineligible, empty, inconsistent depths): release
      // the request latch so a later request may retry if eligibility
      // changes. buildJitCode pinned jit_ineligible where it never will.
      if (auto* qc =
              static_cast<QCode*>(m->qcode.load(std::memory_order_acquire))) {
        qc->jit_queued.store(false, std::memory_order_release);
      }
    }
  }
}

void shutdownCompileManager(VM& vm) {
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) return;
  std::unique_ptr<CompileManager> mgr;
  {
    std::lock_guard<std::mutex> lock(sp->mutex);
    mgr = std::move(sp->compile_mgr);
  }
  // Destroyed (joined) outside the engine mutex: the worker may need it
  // to finish an in-flight build.
  mgr.reset();
}

u32 compileQueueDepth(VM& vm) {
  auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
  if (sp == nullptr) return 0;
  CompileManager* mgr = nullptr;
  {
    std::lock_guard<std::mutex> lock(sp->mutex);
    mgr = sp->compile_mgr.get();
  }
  return mgr != nullptr ? mgr->queueDepth() : 0;
}

bool waitCompileIdle(VM& vm, i64 timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    CompileManager* mgr = nullptr;
    auto sp = std::static_pointer_cast<ExecState>(vm.getExtension(kStateKey));
    if (sp != nullptr) {
      std::lock_guard<std::mutex> lock(sp->mutex);
      mgr = sp->compile_mgr.get();
    }
    if (mgr == nullptr) return true;
    mgr->installReady();
    if (!mgr->busy()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace ijvm::exec
