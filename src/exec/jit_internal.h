// Tier-3 internals shared by the compiler (jit.cpp), the bounded code
// cache (code_cache.cpp) and the background compile manager
// (compile_manager.cpp). Everything here is private to src/exec; the
// public surface is jit.h / code_cache.h / compile_manager.h.
//
// Lifecycle (docs/jit.md, "Code lifecycle"): a JitCode is Built off to the
// side (no publication), Installed by storing it into JMethod::jitcode at
// a mutator drain point, and later *uninstalled* -- either demoted (budget
// pressure or GovernorAction::DemoteJit; poison-free, the method falls
// back to the fused tier and may recompile once re-heated past
// QCode::jit_hotness_floor) or invalidated by a deopt. Uninstalled code is
// Retired, not freed: frames may still be executing it. Freeing is
// epoch-based (docs/concurrency.md): a retired entry is *armed* with the
// next safepoint era (reclaim_target, stamped after verifying the entry
// is unlinked from JMethod::jitcode), and erased from the ExecState arena
// once every counted mutator has published an era >= that target AND the
// active-execution count is zero. The era gate closes the no-poll window
// between loading JMethod::jitcode and bumping `active`; the active count
// covers frames parked inside the code (e.g. blocked in a native). The
// GC's sweep runs with the world already stopped, where the era gate is
// trivially satisfied.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "bytecode/opcodes.h"
#include "support/common.h"

namespace ijvm {
class VM;
struct JMethod;
}  // namespace ijvm

namespace ijvm::exec {

struct MInsn;
struct JitCtx;
struct QCode;
struct QInsn;

// A thunk returns its successor, or null to leave compiled code (the exit
// reason is in JitCtx::exit).
using JitHandler = const MInsn* (*)(JitCtx&, const MInsn&);

// One call-threaded thunk: a pre-bound handler plus resolved operands.
// `next` / `target` are the pre-linked successors; `pc` is the original
// instruction index of the (group) head, used for exception dispatch and
// deopt; `q` is the source quickened instruction, through which compiled
// code shares inline-cache slots with the interpreter tiers.
struct MInsn {
  JitHandler fn = nullptr;
  i32 a = 0, b = 0, c = 0;
  i32 pc = 0;
  i32 tpc = -1;  // branch target as an original pc (back-edge iff <= pc)
  const MInsn* next = nullptr;
  const MInsn* target = nullptr;
  void* ptr = nullptr;
  i64 imm = 0;
  double dimm = 0.0;
  QInsn* q = nullptr;
  Op src_op = Op::NOP;    // opcode this thunk was compiled from
  const char* name = "";  // display name for disasmJit
};

// One on-stack-replacement entry point (docs/jit.md, "On-stack
// replacement"): for each loop header (back-edge target) the compiler
// records the header's verified operand-stack depth and an entry thunk
// that runs the method-entry poll, then falls into the header's body
// thunk. `entry` is a patchable pointer exactly like JitCode::entry --
// isolate termination swaps in the poisoned-OSR thunk, so a dying
// bundle's spinning frame cannot transfer onto compiled code through a
// loop-header side door.
struct OsrEntry {
  i32 pc = -1;    // loop-header pc in the original stream
  i32 depth = 0;  // verified operand-stack depth at the header
  MInsn thunk;    // fn = op_osr_enter; target = the header's body thunk
  std::atomic<const MInsn*> entry{nullptr};
};

// Where a JitCode stands in the compile -> install -> retire -> reclaim
// state machine. Transitions: Built -> Installed (installJitCode),
// Installed -> Retired (demotion or deopt invalidation; exactly one
// winner via compare-exchange). A build dropped at install (method
// poisoned or already compiled) dies *as Built*: never published, it is
// freed on the spot without a state transition. Retired entries are
// erased by sweepRetiredJitCode once every counted mutator has passed
// their reclaim era and `active` is zero.
enum class JitLife : u8 { Built, Installed, Retired };

struct JitCode {
  JMethod* method = nullptr;
  QCode* qc = nullptr;
  std::vector<MInsn> code;      // slot 0 = pc 0; stable after build
  MInsn exn;                    // shared exception-dispatch thunk
  std::vector<i32> slot_of_pc;  // pc -> slot, -1 for group interiors
  // OSR entries, one per compiled loop header (deque: OsrEntry holds an
  // atomic and must never move once its thunk pointers are linked).
  std::deque<OsrEntry> osr_entries;
  u32 max_stack = 0;
  // The patchable entry point (docs/jit.md): normally &code[0]; isolate
  // termination swaps in the poisoned-entry thunk under stop-the-world.
  std::atomic<const MInsn*> entry{nullptr};
  std::atomic<bool> invalidated{false};

  // ---- code-cache bookkeeping (code_cache.cpp) ----
  std::atomic<JitLife> life{JitLife::Built};
  // Frames currently executing this code (runJit / runJitOsr bracket the
  // dispatch loop). Guards reclamation: retired code is only freed when
  // this is zero.
  std::atomic<u32> active{0};
  // Epoch reclamation (docs/concurrency.md): the safepoint era every
  // counted mutator must pass before this retired entry may be freed.
  // 0 = not yet armed. Written under ExecState::mutex by the sweep's arm
  // phase; the arm verifies the entry is unlinked *before* advancing the
  // era, so a thread whose published era reaches the target can no longer
  // load a stale JMethod::jitcode pointing here.
  std::atomic<u64> reclaim_target{0};
  // Compiled entries taken since the cache last drained it; feeds the
  // hotness-decayed usage score that picks demotion victims.
  std::atomic<u64> uses{0};
  // Approximate resident footprint, fixed at build time.
  size_t approx_bytes = 0;
};

// Byte estimate used for cache accounting (thunks + pc map + OSR entries
// + the struct itself), computed once when the build finishes.
size_t jitCodeFootprint(const JitCode& jc);

// Compiles `m` from its current quickened/fused stream into an
// *unpublished* JitCode (life == Built, JMethod::jitcode untouched).
// Returns null -- and possibly pins the method jit-ineligible -- when the
// method cannot be compiled. Safe to call from the background compiler
// thread: the quickened stream is snapshotted under the engine mutex
// before any of it is read.
std::unique_ptr<JitCode> buildJitCode(VM& vm, JMethod* m);

// Publishes a built JitCode: accounts it in the CodeCache, stores it into
// JMethod::jitcode (release), clears the method's jit_queued latch and
// enforces the code-cache budget (which may demote colder methods).
// Returns false -- and frees the never-published code immediately -- when
// the method was poisoned or compiled by someone else since the build
// started. Must run on a mutator thread (or with the world to itself):
// installation is what makes the entry flip safepoint-coordinated with
// poisoning.
bool installJitCode(VM& vm, std::unique_ptr<JitCode> built);

// Installed -> Retired (exactly-once via the life compare-exchange):
// un-patches JMethod::jitcode and moves the footprint from installed to
// retired accounting. `deopt` distinguishes deopt invalidation from
// demotion in the cache counters. With `raise_floor` (demotion), the
// winner stores the method's re-heat floor *between* winning the race
// and un-patching the entry, so the next invocation of the demoted
// method always sees the floor -- and a demote that loses the race to a
// concurrent deopt leaves the floor untouched (deopt recompiles must not
// be gated). Returns false if someone else already retired it.
bool retireJitCode(JitCode& jc, bool deopt, bool raise_floor = false);

}  // namespace ijvm::exec
