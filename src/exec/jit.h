// Tier 3: the baseline JIT -- a call-threaded method compiler.
//
// Hot methods (promoted past VmOptions::jit_threshold, or pushed by the
// governor's PromoteJit action) are compiled from their quickened/fused
// stream into *call-threaded* code: a flat array of pre-bound handler
// thunks with resolved operands, branch targets pre-linked as array
// pointers, and a patchable per-method entry point. Executing a compiled
// method is one indirect call per thunk -- no opcode loads, no operand
// decode, no bounds checks, and a raw operand-stack pointer instead of
// vector push/pop.
//
// The compiled-code contract -- entry-point patching for isolate
// termination, inline-cache sharing with the interpreter tiers,
// safepoint/termination polling, and the deopt-to-fused rules -- is
// written down in docs/jit.md. Compile the whole tier out with
// -DIJVM_DISABLE_JIT; select it per VM with
// VmOptions::exec_engine = ExecEngine::Jit.
#pragma once

#include <string>

#include "bytecode/value.h"

namespace ijvm {
class VM;
class JThread;
class ClassLoader;
struct Frame;
struct JMethod;
}  // namespace ijvm

namespace ijvm::exec {

struct JitCode;  // opaque; owned by the VM's ExecState arena
struct QCode;    // quickened.h

// How a compiled execution left the method.
//  Returned -- normal completion; value carries the result.
//  Unwound  -- a guest exception escaped (t->pending_exception set).
//  Deopt    -- the execution hit a site the compiler could not bind (an
//              instruction that had not quickened at compile time). The
//              frame is handed back ready for the threaded interpreter:
//              frame.pc at the deopt site, the operand stack resized to
//              its logical depth -- and the compiled code has been
//              invalidated (docs/jit.md, "Deoptimization").
enum class JitExit : u8 { Returned, Unwound, Deopt };

struct JitResult {
  JitExit exit = JitExit::Returned;
  Value value;
};

// The method's current compiled code, or null (never compiled, or
// invalidated by a deopt). Acquire-loads JMethod::jitcode.
JitCode* jitCodeOf(JMethod* m);

// Executes `frame` (entered at pc 0, empty operand stack) on compiled
// code. Same contract as interpretQuickened for Returned/Unwound.
JitResult runJit(VM& vm, JThread* t, Frame& frame, JitCode& jc);

// ---- on-stack replacement (docs/jit.md, "On-stack replacement") ----
// Called by the threaded interpreter at a loop back-edge batch flush,
// with frame.pc already moved to the branch target (the loop header) and
// the operand stack at its logical depth. Services any pending governor
// PromoteJit requests, compiles the method if it is hot past
// VmOptions::jit_threshold (at most one self-request per invocation --
// `requested` is the caller's per-invocation latch, the idempotence rule
// of docs/jit.md "Promotion"), maps frame.pc onto the compiled loop
// header's OSR entry thunk, transfers locals + operand stack into the
// raw GC-scanned JIT stack, and resumes in compiled code.
//
// Returns false when OSR is not possible (no compiled code, no OSR entry
// mapping this pc, or the entry-map depth invariant fails): the caller
// keeps interpreting, nothing was changed. On true, the invocation
// finished inside compiled code and *out carries the JitResult -- same
// Returned/Unwound/Deopt contract as runJit (on Deopt the frame is ready
// for the interpreter at frame.pc).
bool tryOsr(VM& vm, JThread* t, Frame& frame, QCode& qc, bool& requested,
            JitResult* out);

// ---- the promote-to-JIT queue ----
// Enqueues one method (no-op unless the VM runs ExecEngine::Jit, the
// method has a quickened stream and is not already compiled/ineligible).
// With VmOptions::background_compile the request goes to the dedicated
// compiler thread (exec/compile_manager.h) and the finished code is
// installed at a later drain point; otherwise drainJitQueue compiles it
// synchronously.
void enqueueForJit(VM& vm, JMethod* m);

// The method's hotness (profile invocations + loop back-edges) above its
// demotion re-heat floor (QCode::jit_hotness_floor; docs/jit.md, "Code
// lifecycle") -- the quantity every promotion threshold compares against.
u64 effectiveJitHotness(JMethod* m);
// Governor action (docs/governor.md): enqueues every method defined by
// `loader` whose profile counters exceed `min_hotness`.
void enqueueLoaderForJit(VM& vm, ClassLoader* loader, u64 min_hotness);
// Compiles everything queued; returns the number of methods compiled.
// Called by the engine at method entry when the queue is non-empty.
u32 drainJitQueue(VM& vm);

// Isolate termination (paper section 3.3): patches the compiled entry
// point of `m` -- and every per-loop-header OSR entry point -- to a thunk
// that raises StoppedIsolateException, the direct analog of I-JVM
// patching native entry points of JIT-compiled methods. Called under
// stop-the-world from VM::terminateIsolate; no-op for uncompiled methods.
void poisonCompiledEntry(JMethod* m);

// Renders the call-threaded compiled form ("" when not compiled). See
// docs/disasm-example.md for an annotated example.
std::string disasmJit(VM& vm, JMethod* m);

}  // namespace ijvm::exec
