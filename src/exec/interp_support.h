// Helpers shared by the two execution engines: the classic single-switch
// interpreter (runtime/interpreter.cpp) and the quickening engine
// (exec/engine.cpp). Both must implement identical guest-visible
// semantics -- arithmetic edge cases, lazy constant-pool resolution with
// its exception behaviour, and the termination-aware exception dispatch
// of paper section 3.3 -- so the definitions live here exactly once.
#pragma once

#include <cmath>
#include <limits>

#include "heap/object.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm::interp {

// Sentinel kill_isolate meaning "skip handlers everywhere" (VM shutdown).
constexpr i32 kKillAll = -2;

inline void setStoppedTarget(Object* exc, i32 target) {
  if (exc == nullptr || exc->cls == nullptr) return;
  if (JField* f = exc->cls->findField("target"); f != nullptr && !f->isStatic()) {
    exc->fields()[f->slot] = Value::ofInt(target);
  }
}

// Raises StoppedIsolateException targeted at isolate `target` on t.
inline void throwStopped(VM& vm, JThread* t, i32 target) {
  vm.throwGuest(t, kStoppedIsolateException, "isolate terminated");
  setStoppedTarget(t->pending_exception, target);
}

// Returns the target isolate id if exc is a StoppedIsolateException,
// otherwise -3 ("not a termination exception").
inline i32 stoppedTargetOf(Object* exc) {
  if (exc == nullptr || exc->cls == nullptr) return -3;
  bool is_sie = false;
  for (const JClass* c = exc->cls; c != nullptr; c = c->super) {
    if (c->name == kStoppedIsolateException) {
      is_sie = true;
      break;
    }
  }
  if (!is_sie) return -3;
  if (JField* f = exc->cls->findField("target"); f != nullptr && !f->isStatic()) {
    return exc->fields()[f->slot].asInt();
  }
  return -3;
}

// ---- arithmetic edge cases (identical across engines) ----

inline i32 wrapShift32(i32 v) { return v & 31; }
inline i32 wrapShift64(i32 v) { return v & 63; }

inline i32 idivSafe(i32 a, i32 b) {
  if (a == std::numeric_limits<i32>::min() && b == -1) return a;
  return a / b;
}
inline i32 iremSafe(i32 a, i32 b) {
  if (a == std::numeric_limits<i32>::min() && b == -1) return 0;
  return a % b;
}
inline i64 ldivSafe(i64 a, i64 b) {
  if (a == std::numeric_limits<i64>::min() && b == -1) return a;
  return a / b;
}
inline i64 lremSafe(i64 a, i64 b) {
  if (a == std::numeric_limits<i64>::min() && b == -1) return 0;
  return a % b;
}

inline i32 d2iSat(double d) {
  if (std::isnan(d)) return 0;
  if (d >= 2147483647.0) return std::numeric_limits<i32>::max();
  if (d <= -2147483648.0) return std::numeric_limits<i32>::min();
  return static_cast<i32>(d);
}
inline i64 d2lSat(double d) {
  if (std::isnan(d)) return 0;
  if (d >= 9223372036854775807.0) return std::numeric_limits<i64>::max();
  if (d <= -9223372036854775808.0) return std::numeric_limits<i64>::min();
  return static_cast<i64>(d);
}

// ---- lazy constant-pool resolution ----
// The resolution result is cached in the pool entry; caches are
// isolate-independent because classes are shared (only static *state* is
// per-isolate, via the TCM). Resolution failure throws on `t` at the
// *executing* instruction -- both engines resolve lazily so a reference
// that is never executed never throws.

inline JClass* resolveClassRef(VM& vm, JThread* t, JClass* ctx, CpEntry& e) {
  if (void* r = e.resolved.load(std::memory_order_acquire)) {
    return static_cast<JClass*>(r);
  }
  JClass* cls = vm.registry().resolve(ctx->loader, e.text);
  if (cls == nullptr) {
    vm.throwGuest(t, "java/lang/NoClassDefFoundError", e.text);
    return nullptr;
  }
  e.resolved.store(cls, std::memory_order_release);
  return cls;
}

inline JField* resolveFieldRef(VM& vm, JThread* t, JClass* ctx, CpEntry& e,
                               bool want_static) {
  if (void* r = e.resolved.load(std::memory_order_acquire)) {
    return static_cast<JField*>(r);
  }
  JClass* owner = vm.registry().resolve(ctx->loader, e.owner);
  if (owner == nullptr) {
    vm.throwGuest(t, "java/lang/NoClassDefFoundError", e.owner);
    return nullptr;
  }
  JField* f = owner->findField(e.name);
  if (f == nullptr || f->isStatic() != want_static) {
    vm.throwGuest(t, "java/lang/NoSuchFieldError",
                  strf("%s.%s", e.owner.c_str(), e.name.c_str()));
    return nullptr;
  }
  e.resolved.store(f, std::memory_order_release);
  return f;
}

inline JMethod* resolveMethodRef(VM& vm, JThread* t, JClass* ctx, CpEntry& e) {
  if (void* r = e.resolved.load(std::memory_order_acquire)) {
    return static_cast<JMethod*>(r);
  }
  JClass* owner = vm.registry().resolve(ctx->loader, e.owner);
  if (owner == nullptr) {
    vm.throwGuest(t, "java/lang/NoClassDefFoundError", e.owner);
    return nullptr;
  }
  JMethod* m = owner->findMethod(e.name, e.descriptor);
  if (m == nullptr) {
    vm.throwGuest(t, "java/lang/NoSuchMethodError",
                  strf("%s.%s%s", e.owner.c_str(), e.name.c_str(),
                       e.descriptor.c_str()));
    return nullptr;
  }
  e.resolved.store(m, std::memory_order_release);
  return m;
}

// ---- termination-aware exception dispatch (paper section 3.3) ----
// Tries to find a handler for the pending exception in `frame`. Returns
// true when handled: frame.pc moved to the handler, the exception consumed
// and pushed as the sole operand-stack entry. Handlers of a terminating
// isolate's frames are skipped entirely: the dying isolate "cannot catch
// this exception ... I-JVM will ignore it".
inline bool dispatchExceptionInFrame(VM& vm, JThread* t, Frame& frame) {
  Object* exc = t->pending_exception;
  IJVM_CHECK(exc != nullptr, "dispatch without pending exception");
  if (frame.isolate != nullptr && !frame.isolate->isActive()) return false;
  const i32 sie_target = stoppedTargetOf(exc);
  if (sie_target == kKillAll) return false;
  if (sie_target >= 0 && frame.isolate != nullptr &&
      frame.isolate->id == sie_target) {
    return false;
  }
  JMethod* method = frame.method;
  JClass* owner = method->owner;
  for (const ExHandler& h : method->code.handlers) {
    if (frame.pc < h.start || frame.pc >= h.end) continue;
    if (h.catch_type_pool >= 0) {
      JClass* catch_cls =
          resolveClassRef(vm, t, owner, owner->pool.at(h.catch_type_pool));
      if (catch_cls == nullptr) {
        // Catch type missing: treat as non-matching; keep original exception.
        t->pending_exception = exc;
        continue;
      }
      if (!exc->cls->isAssignableTo(catch_cls)) continue;
    }
    frame.stack.clear();
    frame.stack.push_back(Value::ofRef(exc));
    t->pending_exception = nullptr;
    frame.pc = h.handler;
    return true;
  }
  return false;
}

}  // namespace ijvm::interp
