// The bounded tier-3 code cache (docs/jit.md, "Code lifecycle").
//
// Compiled code used to be a one-way promotion: once a method was
// compiled, its JitCode sat in the ExecState arena until the VM died. On a
// churny platform -- bundles starting, spiking hot, cooling off, being
// killed -- that arena only grows. The CodeCache makes compiled code a
// managed, revocable resource:
//
//  * every installed JitCode is tracked with a hotness-decayed usage
//    score (seeded from the method's profile counters, refreshed from
//    compiled-entry counts, halved on every enforcement pass);
//  * when an install pushes the installed footprint past
//    VmOptions::code_cache_budget, the coldest methods are *demoted*:
//    JMethod::jitcode is un-patched back to null, the method falls back
//    to the fused interpreter tier at its next entry, and
//    QCode::jit_hotness_floor is raised so only fresh heat (another
//    jit_threshold worth of invocations/back-edges) re-promotes it;
//  * demoted and deopt-invalidated code is Retired, and reclaimed --
//    actually freed -- once no frame still executes it: concurrently via
//    the era-gated reclaimJitCode (no pause; docs/concurrency.md), or by
//    sweepRetiredJitCode inside the GC's already-stopped world.
//    Retirement is poison-free: unlike isolate termination, a demoted
//    method's in-flight executions simply run to completion.
//
// The governor drives the same lever: GovernorAction::DemoteJit demotes a
// cooled bundle's compiled methods the way terminateIsolate poisons a
// hostile one's (docs/governor.md).
#pragma once

#include <mutex>
#include <vector>

#include "support/common.h"

namespace ijvm {
class VM;
class ClassLoader;
struct JMethod;
}  // namespace ijvm

namespace ijvm::exec {

struct JitCode;  // jit_internal.h; opaque to everyone outside src/exec
struct QCode;    // quickened.h

// Aggregate cache state for tests, benches and admin reporting. Bytes are
// the build-time footprint estimates of jit_internal.h.
struct CodeCacheStats {
  u64 installed_bytes = 0;  // currently reachable through JMethod::jitcode
  u64 retired_bytes = 0;    // demoted/invalidated, awaiting reclamation
  u32 installed_methods = 0;
  u64 compiles = 0;             // successful installs since VM start
  u64 background_compiles = 0;  // subset built by the compiler thread
  u64 demotions = 0;            // budget- or governor-driven
  u64 deopt_invalidations = 0;
  u64 reclaimed = 0;  // retired JitCodes actually freed
};

CodeCacheStats codeCacheStats(VM& vm);

// Per-VM cache bookkeeping, owned by the engine's ExecState. Tracks every
// installed JitCode with a hotness-decayed usage score and aggregate
// bytes; JitCode ownership stays in ExecState::jit_codes (this class
// holds raw pointers only). All methods are thread-safe; none is called
// with the engine mutex held while taking the cache mutex in the other
// order (lock order is engine mutex -> cache mutex).
class CodeCache {
 public:
  CodeCache();
  ~CodeCache();

  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  // Accounts a freshly installed code; `seed_hotness` (the method's
  // effective hotness at install) orders brand-new entries above
  // long-cooled ones until real compiled-entry counts accumulate.
  void onInstall(JMethod* m, JitCode* jc, u64 seed_hotness);
  // Installed -> retired accounting; the caller won the JitCode::life
  // compare-exchange. `deopt` picks the counter.
  void onRetire(JitCode* jc, bool deopt);
  // Retired -> freed accounting (sweepRetiredJitCode).
  void onReclaim(JitCode* jc);
  void noteBackgroundCompile();

  // Demotes the coldest installed methods until installed bytes fit
  // VmOptions::code_cache_budget. Runs after every install; each pass
  // decays the usage scores (halve, then fold in fresh compiled-entry
  // counts).
  void enforceBudget(VM& vm);

  u64 retiredBytes() const;
  CodeCacheStats snapshot() const;

  // Demotion-floor decay (docs/jit.md, "Code lifecycle"). Every demotion
  // raises QCode::jit_hotness_floor so the method must earn fresh heat
  // before recompiling -- but a floor raised under a *transient* cache
  // squeeze must not penalize the method forever after the pressure
  // clears. noteDemotedFloor registers the demoted method (retireJitCode
  // calls it alongside the floor store); decayFloors halves every
  // registered floor and drops methods whose floor reached zero, so a
  // demoted method's required re-heat shrinks geometrically while the
  // cache has headroom. Triggered by the compile manager's idle tick when
  // installed bytes leave budget headroom; deterministic callers (tests,
  // synchronous-mode embedders) drive decayDemotedFloors below. Returns
  // the number of floors still nonzero after the pass.
  void noteDemotedFloor(QCode* qc);
  u32 decayFloors();

 private:
  struct Entry {
    JMethod* method = nullptr;
    JitCode* code = nullptr;
    u64 bytes = 0;
    u64 hotness = 0;
    // Not yet aged: the first decay pass an entry sees only folds in its
    // compiled-entry count, it does not halve the install seed --
    // otherwise the install that triggers enforcement would halve its own
    // method straight into victimhood.
    bool fresh = true;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> installed_;
  std::vector<QCode*> demoted_floors_;  // QCodes live as long as the VM
  u64 installed_bytes_ = 0;
  u64 retired_bytes_ = 0;
  u64 compiles_ = 0;
  u64 background_compiles_ = 0;
  u64 demotions_ = 0;
  u64 deopt_invalidations_ = 0;
  u64 reclaimed_ = 0;
};

// Demotes one method's compiled code (no-op without any): un-patches
// JMethod::jitcode, raises the re-heat floor, retires the JitCode and
// updates the owning isolate's ResourceStats. Poison-free -- frames
// already executing the code run to completion. Returns true if code was
// demoted.
bool demoteCompiled(VM& vm, JMethod* m);

// Governor seam (GovernorAction::DemoteJit): demotes every compiled
// method defined by `loader`. Returns the number of methods demoted.
u32 demoteLoaderJit(VM& vm, ClassLoader* loader);

// One demotion-floor decay pass (see CodeCache::decayFloors): halves the
// re-heat floor of every method demoted since its floor last reached
// zero. Returns the number of floors still nonzero. Safe from any thread.
u32 decayDemotedFloors(VM& vm);

// Frees retired JitCodes whose active-execution count is zero. The caller
// must have stopped the world (VM::collectGarbage calls this inside its
// stop-the-world section, where the era gate below is trivially
// satisfied). Returns the number of codes freed.
u32 sweepRetiredJitCode(VM& vm);

// Concurrent, era-gated reclamation (docs/concurrency.md): arms retired
// entries with the next safepoint era, then frees every armed entry that
// all counted mutators have passed and that no frame still executes. No
// stop-the-world -- running mutators keep running; the pause of the old
// implementation grew with thread count, this scan does not. Safe from
// any thread (the compile manager's pressure valve calls it from worker
// 0's idle tick). A freshly retired code typically takes two passes: one
// to arm, one to free once every mutator has crossed a poll.
u32 reclaimJitCode(VM& vm);

}  // namespace ijvm::exec
