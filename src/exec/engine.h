// Public entry points of the quickening execution engine.
#pragma once

#include <string>

#include "bytecode/value.h"

namespace ijvm {
class VM;
class JThread;
struct Frame;
struct JMethod;
}  // namespace ijvm

namespace ijvm::exec {

// Executes `frame` with the direct-threaded quickened engine. Same contract
// as VM::interpretClassic: returns the method result, or a null Value with
// t->pending_exception set when unwinding.
Value interpretQuickened(VM& vm, JThread* t, Frame& frame);

// Disassembles the method's *current* quickened instruction stream --
// generic opcodes for instructions that never executed, quickened forms
// for the ones that did. Returns "" when the method has not been
// quickened yet.
std::string disasmQuickened(VM& vm, JMethod* m);

}  // namespace ijvm::exec
