#include "verifier/verifier.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "support/strf.h"

namespace ijvm {

namespace {

// Abstract value kinds. Unset = local never written on this path;
// Conflict = merge of incompatible kinds (an error only if used).
enum class V : u8 { Unset, Int, Long, Double, Ref, Conflict };

V ofKind(Kind k) {
  switch (k) {
    case Kind::Int:
      return V::Int;
    case Kind::Long:
      return V::Long;
    case Kind::Double:
      return V::Double;
    case Kind::Ref:
      return V::Ref;
    case Kind::Void:
      break;
  }
  return V::Conflict;
}

V merge(V a, V b) {
  if (a == b) return a;
  if (a == V::Unset || b == V::Unset) return V::Unset;
  return V::Conflict;
}

struct AbstractState {
  std::vector<V> locals;
  std::vector<V> stack;

  bool mergeFrom(const AbstractState& other, bool* changed) {
    if (stack.size() != other.stack.size()) return false;
    for (size_t i = 0; i < locals.size(); ++i) {
      V m = merge(locals[i], other.locals[i]);
      if (m != locals[i]) {
        locals[i] = m;
        *changed = true;
      }
    }
    for (size_t i = 0; i < stack.size(); ++i) {
      V m = merge(stack[i], other.stack[i]);
      if (m == V::Unset) m = V::Conflict;  // stack slots are always defined
      if (m != stack[i]) {
        stack[i] = m;
        *changed = true;
      }
    }
    return true;
  }
};

class MethodVerifier {
 public:
  MethodVerifier(const JClass& cls, const JMethod& m) : cls_(cls), m_(m) {}

  void run() {
    const Code& code = m_.code;
    if (code.insns.empty()) {
      fail("empty code");
    }
    checkStructure();

    // Entry state: arguments occupy the first local slots.
    AbstractState entry;
    entry.locals.assign(code.max_locals, V::Unset);
    size_t slot = 0;
    if (!m_.isStatic()) entry.locals[slot++] = V::Ref;
    for (const TypeDesc& p : m_.sig.params) {
      if (slot >= entry.locals.size()) fail("max_locals smaller than arguments");
      entry.locals[slot++] = ofKind(p.kind);
    }

    states_.assign(code.insns.size(), std::nullopt);
    reached_.assign(code.insns.size(), false);
    setState(0, entry);
    while (!worklist_.empty()) {
      i32 pc = worklist_.front();
      worklist_.pop_front();
      step(pc);
    }

    // Every exception-handler entry must also verify; seed them with the
    // merged locals of their protected range and a 1-deep ref stack.
    bool seeded = true;
    while (seeded) {
      seeded = false;
      for (const ExHandler& h : code.handlers) {
        std::optional<AbstractState> covered;
        for (i32 pc = h.start; pc < h.end; ++pc) {
          auto& s = states_[static_cast<size_t>(pc)];
          if (!s) continue;
          if (!covered) {
            covered = *s;
          } else {
            for (size_t i = 0; i < covered->locals.size(); ++i) {
              covered->locals[i] = merge(covered->locals[i], s->locals[i]);
            }
          }
        }
        if (!covered) continue;
        AbstractState at_handler;
        at_handler.locals = covered->locals;
        at_handler.stack = {V::Ref};
        if (setState(h.handler, at_handler)) seeded = true;
      }
      while (!worklist_.empty()) {
        i32 pc = worklist_.front();
        worklist_.pop_front();
        step(pc);
      }
    }
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw VerifyError(strf("%s.%s%s: %s", cls_.name.c_str(), m_.name.c_str(),
                           m_.descriptor.c_str(), why.c_str()));
  }
  [[noreturn]] void failAt(i32 pc, const std::string& why) const {
    throw VerifyError(strf("%s.%s%s @%d (%s): %s", cls_.name.c_str(),
                           m_.name.c_str(), m_.descriptor.c_str(), pc,
                           opName(m_.code.insns[static_cast<size_t>(pc)].op),
                           why.c_str()));
  }

  void checkStructure() {
    const Code& code = m_.code;
    const i32 n = static_cast<i32>(code.insns.size());
    for (i32 pc = 0; pc < n; ++pc) {
      const Instruction& insn = code.insns[static_cast<size_t>(pc)];
      // Quickened forms are engine-internal rewrites (src/exec); a class
      // file that contains one is malformed.
      if (opIsQuickened(insn.op)) failAt(pc, "quickened opcode in class file");
      if (opIsBranch(insn.op)) {
        if (insn.a < 0 || insn.a >= n) failAt(pc, "branch target out of range");
      }
      switch (insn.op) {
        case Op::ILOAD:
        case Op::LLOAD:
        case Op::DLOAD:
        case Op::ALOAD:
        case Op::ISTORE:
        case Op::LSTORE:
        case Op::DSTORE:
        case Op::ASTORE:
        case Op::IINC:
          if (insn.a < 0 || insn.a >= code.max_locals) {
            failAt(pc, "local slot out of range");
          }
          break;
        case Op::LDC:
        case Op::GETSTATIC:
        case Op::PUTSTATIC:
        case Op::GETFIELD:
        case Op::PUTFIELD:
        case Op::INVOKEVIRTUAL:
        case Op::INVOKESPECIAL:
        case Op::INVOKESTATIC:
        case Op::INVOKEINTERFACE:
        case Op::NEW:
        case Op::ANEWARRAY:
        case Op::CHECKCAST:
        case Op::INSTANCEOF:
          if (insn.a < 0 || insn.a >= cls_.pool.size()) {
            failAt(pc, "constant pool index out of range");
          }
          break;
        case Op::NEWARRAY:
          if (insn.a < 0 || insn.a > 2) failAt(pc, "bad newarray kind");
          break;
        default:
          break;
      }
    }
    // The last instruction must not fall off the end.
    const Instruction& last = code.insns[static_cast<size_t>(n - 1)];
    switch (last.op) {
      case Op::GOTO:
      case Op::RETURN:
      case Op::IRETURN:
      case Op::LRETURN:
      case Op::DRETURN:
      case Op::ARETURN:
      case Op::ATHROW:
        break;
      default:
        fail("control flow can fall off the end of the code");
    }
    for (const ExHandler& h : code.handlers) {
      if (h.start < 0 || h.end > n || h.start >= h.end) {
        fail("bad exception handler range");
      }
      if (h.handler < 0 || h.handler >= n) fail("handler target out of range");
      if (h.catch_type_pool >= 0) {
        if (h.catch_type_pool >= cls_.pool.size() ||
            cls_.pool.at(h.catch_type_pool).tag != CpTag::ClassRef) {
          fail("handler catch type is not a class ref");
        }
      }
    }
  }

  // Records `state` as the in-state of pc; enqueues pc if changed.
  bool setState(i32 pc, const AbstractState& state) {
    auto& slot = states_[static_cast<size_t>(pc)];
    if (!slot) {
      slot = state;
      worklist_.push_back(pc);
      return true;
    }
    bool changed = false;
    if (!slot->mergeFrom(state, &changed)) {
      failAt(pc, strf("stack depth mismatch at join (%zu vs %zu)",
                      slot->stack.size(), state.stack.size()));
    }
    if (changed) worklist_.push_back(pc);
    return changed;
  }

  V popV(AbstractState& s, i32 pc) {
    if (s.stack.empty()) failAt(pc, "operand stack underflow");
    V v = s.stack.back();
    s.stack.pop_back();
    return v;
  }

  void popExpect(AbstractState& s, i32 pc, V expect) {
    V v = popV(s, pc);
    if (v != expect) {
      failAt(pc, strf("expected %d on stack, found %d", static_cast<int>(expect),
                      static_cast<int>(v)));
    }
  }

  void loadLocal(AbstractState& s, i32 pc, i32 slot, V expect) {
    V v = s.locals[static_cast<size_t>(slot)];
    if (v == V::Unset) failAt(pc, strf("local %d used before definition", slot));
    if (v == V::Conflict) failAt(pc, strf("local %d has conflicting types", slot));
    if (v != expect) failAt(pc, strf("local %d type mismatch", slot));
    s.stack.push_back(v);
  }

  void step(i32 pc) {
    AbstractState s = *states_[static_cast<size_t>(pc)];
    reached_[static_cast<size_t>(pc)] = true;
    const Instruction& insn = m_.code.insns[static_cast<size_t>(pc)];
    const i32 n = static_cast<i32>(m_.code.insns.size());
    bool falls_through = true;

    auto push = [&s](V v) { s.stack.push_back(v); };

    switch (insn.op) {
      case Op::NOP:
        break;
      case Op::ACONST_NULL:
        push(V::Ref);
        break;
      case Op::ICONST:
        push(V::Int);
        break;
      case Op::LDC: {
        const CpEntry& e = cls_.pool.at(insn.a);
        switch (e.tag) {
          case CpTag::Int:
            push(V::Int);
            break;
          case CpTag::Long:
            push(V::Long);
            break;
          case CpTag::Double:
            push(V::Double);
            break;
          case CpTag::String:
            push(V::Ref);
            break;
          default:
            failAt(pc, "LDC of non-constant pool entry");
        }
        break;
      }
      case Op::ILOAD:
        loadLocal(s, pc, insn.a, V::Int);
        break;
      case Op::LLOAD:
        loadLocal(s, pc, insn.a, V::Long);
        break;
      case Op::DLOAD:
        loadLocal(s, pc, insn.a, V::Double);
        break;
      case Op::ALOAD:
        loadLocal(s, pc, insn.a, V::Ref);
        break;
      case Op::ISTORE:
        popExpect(s, pc, V::Int);
        s.locals[static_cast<size_t>(insn.a)] = V::Int;
        break;
      case Op::LSTORE:
        popExpect(s, pc, V::Long);
        s.locals[static_cast<size_t>(insn.a)] = V::Long;
        break;
      case Op::DSTORE:
        popExpect(s, pc, V::Double);
        s.locals[static_cast<size_t>(insn.a)] = V::Double;
        break;
      case Op::ASTORE:
        popExpect(s, pc, V::Ref);
        s.locals[static_cast<size_t>(insn.a)] = V::Ref;
        break;
      case Op::IINC: {
        V v = s.locals[static_cast<size_t>(insn.a)];
        if (v != V::Int) failAt(pc, "iinc of non-int local");
        break;
      }
      case Op::POP:
        popV(s, pc);
        break;
      case Op::DUP: {
        V v = popV(s, pc);
        push(v);
        push(v);
        break;
      }
      case Op::DUP_X1: {
        V a = popV(s, pc);
        V b = popV(s, pc);
        push(a);
        push(b);
        push(a);
        break;
      }
      case Op::SWAP: {
        V a = popV(s, pc);
        V b = popV(s, pc);
        push(a);
        push(b);
        break;
      }

      case Op::IADD:
      case Op::ISUB:
      case Op::IMUL:
      case Op::IDIV:
      case Op::IREM:
      case Op::ISHL:
      case Op::ISHR:
      case Op::IUSHR:
      case Op::IAND:
      case Op::IOR:
      case Op::IXOR:
        popExpect(s, pc, V::Int);
        popExpect(s, pc, V::Int);
        push(V::Int);
        break;
      case Op::INEG:
        popExpect(s, pc, V::Int);
        push(V::Int);
        break;

      case Op::LADD:
      case Op::LSUB:
      case Op::LMUL:
      case Op::LDIV:
      case Op::LREM:
      case Op::LAND:
      case Op::LOR:
      case Op::LXOR:
        popExpect(s, pc, V::Long);
        popExpect(s, pc, V::Long);
        push(V::Long);
        break;
      case Op::LSHL:
      case Op::LSHR:
        popExpect(s, pc, V::Int);
        popExpect(s, pc, V::Long);
        push(V::Long);
        break;
      case Op::LNEG:
        popExpect(s, pc, V::Long);
        push(V::Long);
        break;
      case Op::LCMP:
        popExpect(s, pc, V::Long);
        popExpect(s, pc, V::Long);
        push(V::Int);
        break;

      case Op::DADD:
      case Op::DSUB:
      case Op::DMUL:
      case Op::DDIV:
      case Op::DREM:
        popExpect(s, pc, V::Double);
        popExpect(s, pc, V::Double);
        push(V::Double);
        break;
      case Op::DNEG:
        popExpect(s, pc, V::Double);
        push(V::Double);
        break;
      case Op::DCMPL:
      case Op::DCMPG:
        popExpect(s, pc, V::Double);
        popExpect(s, pc, V::Double);
        push(V::Int);
        break;

      case Op::I2L:
        popExpect(s, pc, V::Int);
        push(V::Long);
        break;
      case Op::I2D:
        popExpect(s, pc, V::Int);
        push(V::Double);
        break;
      case Op::L2I:
        popExpect(s, pc, V::Long);
        push(V::Int);
        break;
      case Op::L2D:
        popExpect(s, pc, V::Long);
        push(V::Double);
        break;
      case Op::D2I:
        popExpect(s, pc, V::Double);
        push(V::Int);
        break;
      case Op::D2L:
        popExpect(s, pc, V::Double);
        push(V::Long);
        break;

      case Op::IFEQ:
      case Op::IFNE:
      case Op::IFLT:
      case Op::IFGE:
      case Op::IFGT:
      case Op::IFLE:
        popExpect(s, pc, V::Int);
        setState(insn.a, s);
        break;
      case Op::IF_ICMPEQ:
      case Op::IF_ICMPNE:
      case Op::IF_ICMPLT:
      case Op::IF_ICMPGE:
      case Op::IF_ICMPGT:
      case Op::IF_ICMPLE:
        popExpect(s, pc, V::Int);
        popExpect(s, pc, V::Int);
        setState(insn.a, s);
        break;
      case Op::IF_ACMPEQ:
      case Op::IF_ACMPNE:
        popExpect(s, pc, V::Ref);
        popExpect(s, pc, V::Ref);
        setState(insn.a, s);
        break;
      case Op::IFNULL:
      case Op::IFNONNULL:
        popExpect(s, pc, V::Ref);
        setState(insn.a, s);
        break;
      case Op::GOTO:
        setState(insn.a, s);
        falls_through = false;
        break;

      case Op::RETURN:
        if (m_.sig.ret.kind != Kind::Void) failAt(pc, "RETURN from non-void method");
        falls_through = false;
        break;
      case Op::IRETURN:
        if (m_.sig.ret.kind != Kind::Int) failAt(pc, "IRETURN kind mismatch");
        popExpect(s, pc, V::Int);
        falls_through = false;
        break;
      case Op::LRETURN:
        if (m_.sig.ret.kind != Kind::Long) failAt(pc, "LRETURN kind mismatch");
        popExpect(s, pc, V::Long);
        falls_through = false;
        break;
      case Op::DRETURN:
        if (m_.sig.ret.kind != Kind::Double) failAt(pc, "DRETURN kind mismatch");
        popExpect(s, pc, V::Double);
        falls_through = false;
        break;
      case Op::ARETURN:
        if (m_.sig.ret.kind != Kind::Ref) failAt(pc, "ARETURN kind mismatch");
        popExpect(s, pc, V::Ref);
        falls_through = false;
        break;

      case Op::GETSTATIC:
      case Op::PUTSTATIC:
      case Op::GETFIELD:
      case Op::PUTFIELD: {
        const CpEntry& e = cls_.pool.at(insn.a);
        if (e.tag != CpTag::FieldRef) failAt(pc, "operand is not a field ref");
        V fv = ofKind(parseTypeDesc(e.descriptor).kind);
        switch (insn.op) {
          case Op::GETSTATIC:
            push(fv);
            break;
          case Op::PUTSTATIC:
            popExpect(s, pc, fv);
            break;
          case Op::GETFIELD:
            popExpect(s, pc, V::Ref);
            push(fv);
            break;
          default:  // PUTFIELD
            popExpect(s, pc, fv);
            popExpect(s, pc, V::Ref);
            break;
        }
        break;
      }

      case Op::INVOKEVIRTUAL:
      case Op::INVOKESPECIAL:
      case Op::INVOKESTATIC:
      case Op::INVOKEINTERFACE: {
        const CpEntry& e = cls_.pool.at(insn.a);
        if (e.tag != CpTag::MethodRef) failAt(pc, "operand is not a method ref");
        MethodSig sig = parseMethodSig(e.descriptor);
        for (auto it = sig.params.rbegin(); it != sig.params.rend(); ++it) {
          popExpect(s, pc, ofKind(it->kind));
        }
        if (insn.op != Op::INVOKESTATIC) popExpect(s, pc, V::Ref);
        if (sig.ret.kind != Kind::Void) push(ofKind(sig.ret.kind));
        break;
      }

      case Op::NEW: {
        const CpEntry& e = cls_.pool.at(insn.a);
        if (e.tag != CpTag::ClassRef) failAt(pc, "NEW operand is not a class ref");
        push(V::Ref);
        break;
      }
      case Op::NEWARRAY:
        popExpect(s, pc, V::Int);
        push(V::Ref);
        break;
      case Op::ANEWARRAY:
        popExpect(s, pc, V::Int);
        push(V::Ref);
        break;
      case Op::ARRAYLENGTH:
        popExpect(s, pc, V::Ref);
        push(V::Int);
        break;

      case Op::IALOAD:
      case Op::LALOAD:
      case Op::DALOAD:
      case Op::AALOAD: {
        popExpect(s, pc, V::Int);
        popExpect(s, pc, V::Ref);
        V elem = insn.op == Op::IALOAD   ? V::Int
                 : insn.op == Op::LALOAD ? V::Long
                 : insn.op == Op::DALOAD ? V::Double
                                         : V::Ref;
        push(elem);
        break;
      }
      case Op::IASTORE:
      case Op::LASTORE:
      case Op::DASTORE:
      case Op::AASTORE: {
        V elem = insn.op == Op::IASTORE   ? V::Int
                 : insn.op == Op::LASTORE ? V::Long
                 : insn.op == Op::DASTORE ? V::Double
                                          : V::Ref;
        popExpect(s, pc, elem);
        popExpect(s, pc, V::Int);
        popExpect(s, pc, V::Ref);
        break;
      }

      case Op::CHECKCAST: {
        if (s.stack.empty()) failAt(pc, "operand stack underflow");
        if (s.stack.back() != V::Ref) failAt(pc, "checkcast of non-ref");
        break;
      }
      case Op::INSTANCEOF:
        popExpect(s, pc, V::Ref);
        push(V::Int);
        break;

      case Op::MONITORENTER:
      case Op::MONITOREXIT:
        popExpect(s, pc, V::Ref);
        break;

      case Op::ATHROW:
        popExpect(s, pc, V::Ref);
        falls_through = false;
        break;
    }

    if (falls_through) {
      if (pc + 1 >= n) failAt(pc, "falls off the end of the code");
      setState(pc + 1, s);
    }
  }

  const JClass& cls_;
  const JMethod& m_;
  std::vector<std::optional<AbstractState>> states_;
  std::vector<bool> reached_;
  std::deque<i32> worklist_;
};

}  // namespace

void verifyMethod(const JClass& cls, const JMethod& method) {
  if (method.isNative() || method.isAbstract()) return;
  MethodVerifier(cls, method).run();
}

void verifyClass(const JClass& cls) {
  if (cls.isInterface() || cls.is_array) return;
  for (const JMethod& m : cls.methods) {
    verifyMethod(cls, m);
  }
}

}  // namespace ijvm
