// Bytecode verifier.
//
// I-JVM's isolation argument (paper section 3.1) rests on two properties of
// verified bytecode: (i) an isolate cannot *construct* a foreign reference,
// and (ii) field/method access scopes are respected. This verifier enforces
// the type-safety half: structural well-formedness plus an abstract
// interpretation over value kinds (Int/Long/Double/Ref) with use-before-def
// tracking for locals and merge checking at join points.
#pragma once

#include <stdexcept>
#include <string>

#include "classes/jclass.h"

namespace ijvm {

class VerifyError : public std::runtime_error {
 public:
  explicit VerifyError(const std::string& what) : std::runtime_error(what) {}
};

// Verifies every bytecode method of `cls`; throws VerifyError on the first
// violation. Installed as the ClassRegistry verify hook by the VM when
// VmOptions::verify is set.
void verifyClass(const JClass& cls);

// Verifies a single method (exposed for targeted tests).
void verifyMethod(const JClass& cls, const JMethod& method);

}  // namespace ijvm
