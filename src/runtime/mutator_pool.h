// The mutator thread pool (docs/concurrency.md).
//
// The platform-side answer to "thousands of concurrent bundles, a handful
// of cores": N host worker threads, each attached as a guest JThread, run
// bundle tasks submitted by the embedder (service dispatch, bundle entry
// points, the bench harness's simulated request streams). Tasks are plain
// callables receiving the worker's JThread; everything downstream --
// thread migration on inter-isolate calls, per-isolate charging, safepoint
// participation, termination polling -- is exactly the single-thread
// callStaticIn path, which is what keeps the thread-count axis of the
// differential harness honest (tests/test_exec_equivalence.cpp).
//
// Scheduling is per-worker deques with work-stealing: submit() round-robins
// tasks onto worker deques; a worker pops from the front of its own deque
// and, when empty, steals from the *back* of a victim's, so stolen work is
// the coldest queued task, not the one about to run. Idle workers park in
// the Blocked state -- they cost nothing at safepoints and do not gate
// era-based code reclamation.
//
// Lifecycle: created lazily by VM::mutatorPool() on first use (embedders
// that only call in on their own thread never pay for it); torn down by
// ~VM after guest threads are cancelled (force_kill makes in-flight guest
// code unwind at its next poll) and before the compile manager stops.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.h"

namespace ijvm {

class VM;
class JThread;
struct Isolate;

class MutatorPool {
 public:
  // A task runs on a pool worker's attached guest thread. The worker's
  // current isolate is reset to Isolate0 between tasks; the task itself
  // migrates by calling into bundle code.
  using Task = std::function<void(JThread*)>;

  MutatorPool(VM& vm, u32 workers);
  ~MutatorPool();
  MutatorPool(const MutatorPool&) = delete;
  MutatorPool& operator=(const MutatorPool&) = delete;

  // Enqueues a task scheduled *for* `iso` (may be nullptr for platform
  // work). The marker is published on the worker's JThread while the task
  // runs so the governor's hung-caller scan does not mistake a worker
  // blocked inside the bundle it is scheduled for a hung foreign caller.
  // After shutdown() the task is silently dropped (no worker could ever
  // run it, and enqueueing it would hang a later drain()).
  void submit(Task task, Isolate* iso = nullptr);

  // Blocks until every task submitted so far has completed. Callable from
  // any non-worker thread. NOTE: drain() does NOT bracket itself as
  // Blocked — a caller that is counted as a Running guest thread must
  // wrap the call in a BlockedScope itself, or a concurrent stop-the-world
  // would wait on it forever while the workers park at polls mid-task.
  // Current callers are all embedder threads, which are never counted.
  void drain();

  size_t workerCount() const { return workers_.size(); }
  u64 tasksCompleted() const { return completed_.load(std::memory_order_relaxed); }
  u64 steals() const { return steals_.load(std::memory_order_relaxed); }

  // Stops accepting work, wakes idle workers, joins them. Tasks already
  // queued still run (guest code unwinds early if the VM set force_kill).
  // Idempotent; called by ~MutatorPool.
  void shutdown();

 private:
  struct Slot {
    Task task;
    Isolate* iso = nullptr;
  };
  struct WorkerQueue {
    std::mutex m;
    std::deque<Slot> dq;
  };

  void workerLoop(size_t index);
  // Pops own-front or steals victim-back; false when nothing is runnable.
  bool take(size_t index, Slot& out);
  // True when any deque is non-empty. Workers call it under idle_mutex_
  // before parking (and before honoring stop_): submit() pushes under
  // idle_mutex_ too, so the recheck cannot miss a task (no lost wakeup)
  // and shutdown cannot strand queued work.
  bool anyQueued();

  VM& vm_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake + drain bookkeeping. submitted_/completed_ are monotonic;
  // drain waits for them to meet.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;    // workers park here when queues are empty
  std::condition_variable drain_cv_;   // drain() waits here
  bool stop_ = false;
  u64 submitted_ = 0;                  // guarded by idle_mutex_
  std::atomic<u64> completed_{0};
  std::atomic<u64> steals_{0};
  std::atomic<u64> next_queue_{0};
};

}  // namespace ijvm
