// Guest threads and interpreter frames.
//
// Each guest thread carries a *current isolate* reference (paper section
// 3.1): inter-isolate calls update it on entry and restore it on return --
// this is the thread-migration mechanism that keeps inter-bundle calls as
// cheap as direct calls. The frame list is the thread's guest stack; the
// termination machinery (paper section 3.3) patches `kill_on_return` bits
// on it while the world is stopped, and the GC accounting pass reads each
// frame's isolate to charge the objects it references.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bytecode/value.h"
#include "classes/jclass.h"
#include "runtime/isolate.h"

namespace ijvm {

class VM;

// Execution tier a frame is currently running in. Stamped by the engines
// on entry and at tier transitions (OSR, deopt); read only by the owner
// thread's profiler self-sample (obs/profiler.h SampleTier mirrors the
// values). u8-backed so the Frame stays the same size class.
enum class FrameTier : u8 {
  Unknown = 0,
  Classic,
  Quickened,
  Fused,
  Jit,
  Osr,
};

struct Frame {
  JMethod* method = nullptr;
  // The isolate this frame executes in. For system-library methods this is
  // the *caller's* isolate (library code is charged to its caller).
  Isolate* isolate = nullptr;
  std::vector<Value> locals;
  std::vector<Value> stack;
  i32 pc = 0;
  FrameTier tier = FrameTier::Unknown;

  // Termination patch: when this frame completes, a StoppedIsolateException
  // targeted at `kill_isolate` is raised in the caller instead of delivering
  // the return value (models I-JVM's return-pointer rewriting).
  bool kill_on_return = false;
  i32 kill_isolate = -1;

  // Monitor held by a synchronized method (released on exit/unwind).
  Object* sync_object = nullptr;

  // Prepares a pooled frame for reuse (vectors keep their capacity).
  void reset() {
    method = nullptr;
    isolate = nullptr;
    locals.clear();
    stack.clear();
    pc = 0;
    kill_on_return = false;
    kill_isolate = -1;
    sync_object = nullptr;
    tier = FrameTier::Unknown;
  }
};

enum class ThreadState : u8 { Running, Blocked, Dead };

// RAII bracket that keeps guest objects alive while C++ code manipulates
// them between guest calls (e.g. the OSGi framework allocating an activator
// before registering a GlobalRef for it).
class LocalRootScope {
 public:
  explicit LocalRootScope(JThread* t);
  ~LocalRootScope();
  LocalRootScope(const LocalRootScope&) = delete;
  LocalRootScope& operator=(const LocalRootScope&) = delete;
  // Returns `obj` for chaining: Object* o = roots.add(vm.allocObject(...));
  Object* add(Object* obj);

 private:
  JThread* t_;
  size_t base_;
};

class JThread {
 public:
  JThread(VM& vm, i32 id, std::string name, Isolate* initial_isolate);

  JThread(const JThread&) = delete;
  JThread& operator=(const JThread&) = delete;

  VM& vm;
  const i32 id;
  std::string name;

  // Isolate that created the thread (threads are charged to their creator,
  // paper section 3.2, even though they may execute code from any isolate).
  Isolate* const creator_isolate;

  // Read by the CPU sampler without stopping the world.
  std::atomic<Isolate*> current_isolate;

  // Guest stack. Frames are pooled: entries [0, frames_active) are live,
  // the rest are retained for reuse so a method call does not heap-allocate
  // (hot path for Figure 1 / Table 1). The deque keeps Frame* stable.
  //
  // frames_active is atomic only because the governor's hung-caller scan
  // reads hasFrames() cross-thread without stopping the world (a racy
  // signal by design; strike hysteresis absorbs staleness). The owner is
  // the sole writer, so accessors use relaxed plain load/store -- no RMW,
  // the call hot path stays mov-only. The frames deque itself is owner- or
  // world-stopped-only; cross-thread readers may touch the counter, never
  // the frames.
  std::deque<Frame> frames;
  std::atomic<size_t> frames_active{0};

  Frame& pushFrame() {
    const size_t n = frames_active.load(std::memory_order_relaxed);
    if (n == frames.size()) frames.emplace_back();
    Frame& f = frames[n];
    f.reset();
    frames_active.store(n + 1, std::memory_order_relaxed);
    return f;
  }
  void popFrame() {
    frames_active.store(frames_active.load(std::memory_order_relaxed) - 1,
                        std::memory_order_relaxed);
  }
  void dropAllFrames() { frames_active.store(0, std::memory_order_relaxed); }
  Frame& frameAt(size_t i) { return frames[i]; }
  Frame& topFrame() {
    return frames[frames_active.load(std::memory_order_relaxed) - 1];
  }
  bool hasFrames() const {
    return frames_active.load(std::memory_order_relaxed) > 0;
  }

  // Pending guest exception being thrown/propagated (GC root).
  Object* pending_exception = nullptr;

  // The guest java/lang/Thread object, if any (GC root).
  Object* thread_object = nullptr;

  // Temporary roots for C++ code holding guest references outside any
  // frame (see LocalRootScope). Scanned by the GC, charged to the current
  // isolate.
  // Guarded by extra_roots_mutex: LocalRootScope mutates this from host
  // C++ threads that are not Running guests -- a stop-the-world does not
  // park them, so the GC's root scan must serialize with the scope's
  // push/unwind through the lock rather than through safepoints.
  std::mutex extra_roots_mutex;
  std::vector<Object*> extra_roots;

  std::atomic<bool> interrupted{false};

  // Termination: when >= 0, the next safepoint poll raises a
  // StoppedIsolateException targeting this isolate id (set when the top
  // frame belongs to a terminating isolate, or at VM shutdown).
  std::atomic<i32> pending_stop_isolate{-1};

  // Hard cancellation (VM shutdown): blocking natives return early.
  std::atomic<bool> force_kill{false};

  // Sampling-profiler handshake (obs/profiler.h): the sampler bumps
  // profile_requests (at most one ahead of profile_taken); the owner
  // notices the mismatch at its next safepoint poll site, walks its own
  // frames, and acknowledges by writing profile_taken = profile_requests.
  // profile_taken is owner-written; atomic (relaxed) only because the
  // sampler reads it to enforce the one-outstanding-request cap.
  std::atomic<u32> profile_requests{0};
  std::atomic<u32> profile_taken{0};

  // Trace sampling counter for inter-isolate calls (obs/trace.h): the
  // ~169 ns migrated-call path cannot afford two clock reads per call, so
  // 1 in 256 calls is recorded. Owner-thread only, no atomicity needed.
  u32 trace_call_counter = 0;

  std::atomic<ThreadState> state{ThreadState::Blocked};

  // ---- safepoint-era publication (epoch-based code reclamation) ----
  // The era this thread most recently observed at a safepoint poll site
  // (exec/code_cache.cpp, docs/concurrency.md). Written by the owner at
  // poll sites and on Blocked->Running transitions; read by the reclaim
  // scan. The store-if-changed guard keeps the steady-state back-edge
  // cost to two relaxed loads.
  std::atomic<u64> safepoint_era{0};
  void publishEra(u64 era) {
    if (safepoint_era.load(std::memory_order_relaxed) != era) {
      safepoint_era.store(era, std::memory_order_release);
    }
  }
  // True while this thread is counted in SafepointController's running_
  // tally. Guarded by SafepointController::m_ (NOT by `state`, which the
  // owner flips outside that mutex): the era gate must only consult
  // threads that can still be executing compiled code.
  bool safepoint_counted = false;

  // Isolate whose task this pool worker is currently running (nullptr for
  // non-pool threads). Set by MutatorPool around each task; read by the
  // governor's hung-caller scan so a worker blocked inside the bundle it
  // is scheduled FOR is not mistaken for a hung foreign caller.
  std::atomic<Isolate*> scheduled_isolate{nullptr};

  // ---- completion (Thread.join) ----
  void markDone();
  // Returns true when the thread finished, false on interrupt/cancel.
  bool awaitDone(JThread* waiter, i64 millis);
  bool isDone() const { return done_.load(std::memory_order_acquire); }

  // OS thread for spawned guest threads (empty for attached threads).
  std::thread os_thread;

  // Depth of the guest stack.
  size_t depth() const {
    return frames_active.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> done_{false};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace ijvm
