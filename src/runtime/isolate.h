// Isolates and their resource statistics.
//
// An isolate is built from a class loader (paper section 3.1): the classes
// defined by that loader execute "inside" the isolate, with their own copies
// of statics, interned strings and Class objects. Isolate0 -- the first
// isolate created -- is privileged: it may start and terminate other
// isolates and shut down the platform (it hosts the OSGi runtime).
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

#include "support/common.h"

namespace ijvm {

class ClassLoader;
struct Object;

// All counters an administrator can inspect to locate misbehaving bundles
// (paper section 3.2). Monotonic unless noted.
struct ResourceStats {
  // Allocation-side counters (charged at allocation time to the creator).
  std::atomic<u64> objects_allocated{0};
  std::atomic<u64> bytes_allocated{0};
  // Bytes allocated since the last GC (reset by the accounting pass);
  // used together with bytes_charged for memory-limit checks.
  std::atomic<u64> bytes_since_gc{0};

  // Reachability-based charges recomputed by every GC (paper's 4-step
  // algorithm): an object is charged to the first isolate that references it.
  std::atomic<u64> bytes_charged{0};
  std::atomic<u64> objects_charged{0};
  std::atomic<u64> connections_charged{0};

  // Zero-copy communication counters (docs/comm.md): bytes/objects whose
  // ownership this isolate gave away (out) or received (in) through
  // transferGraph donations. Monotonic.
  std::atomic<u64> bytes_donated_in{0};
  std::atomic<u64> bytes_donated_out{0};
  std::atomic<u64> objects_donated_in{0};
  std::atomic<u64> objects_donated_out{0};
  // Signed correction applied to the held-bytes estimate between GCs:
  // a donation moves `byte_size` from the sender's delta to the
  // receiver's *before* any accounting pass re-derives bytes_charged, so
  // memory-limit checks see the transfer immediately. Reset to 0 by the
  // GC together with bytes_since_gc (the recomputed charges then already
  // bill donated objects to their new owner). Kept separate from the
  // unsigned bytes_since_gc so crediting the sender for an object that
  // predates the last GC cannot underflow.
  std::atomic<i64> donated_bytes_delta{0};

  std::atomic<u64> threads_created{0};
  std::atomic<i64> live_threads{0};

  std::atomic<u64> connections_opened{0};
  std::atomic<u64> io_bytes_read{0};
  std::atomic<u64> io_bytes_written{0};

  // Collections *triggered by* this isolate's allocation activity.
  std::atomic<u64> gc_activations{0};

  // Ticks attributed by the CPU sampler to threads currently running in
  // this isolate.
  std::atomic<u64> cpu_samples{0};

  // Stack samples the sampling profiler (obs/profiler.h) attributed to
  // this isolate -- the leaf frame's isolate, so library code is charged
  // to its caller just like cpu_samples. The governor's Signal::CpuShare
  // prefers deltas of this counter (safepoint-biased but stack-accurate)
  // and falls back to cpu_samples when the profiler is off.
  std::atomic<u64> cpu_profile_samples{0};

  // Threads currently blocked in Thread.sleep/Object.wait while executing
  // this isolate's code (A7 "hanging thread" detection).
  std::atomic<i64> sleeping_threads{0};

  // Calls that migrated a thread *into* this isolate.
  std::atomic<u64> calls_in{0};

  // Execution-profile counters fed by the quickening engine (src/exec):
  // guest method invocations and loop back-edges executed while a thread
  // ran in this isolate. Consumed by the governor's hot-bundle heuristics
  // and by future compilation tiers; zero under the classic interpreter.
  std::atomic<u64> method_invocations{0};
  std::atomic<u64> loop_back_edges{0};

  // Tier-3 compiled-code lifecycle counters (docs/jit.md, "Code
  // lifecycle"), charged to the isolate whose loader defines the method.
  // jit_code_bytes is the non-monotonic current footprint of *installed*
  // compiled code; it rises on install and falls on demotion or
  // deopt-invalidation, so a bounded code cache shows up here as a
  // bounded number even while compile/demote churn continues.
  std::atomic<u64> jit_methods_compiled{0};
  std::atomic<u64> jit_methods_demoted{0};
  std::atomic<i64> jit_code_bytes{0};
  // OSR tail observability (docs/jit.md, "On-stack replacement"): transfers
  // refused with compiled code present (no entry mapped at the flushed
  // loop header, or the live operand depth mismatched the entry map), and
  // promote-to-JIT requests re-fired for a method that already deopted at
  // least once (the post-deopt recompile cycle).
  std::atomic<u64> osr_refused_transfers{0};
  std::atomic<u64> jit_recompile_requests{0};
  // Payoff-model demotions (docs/jit.md, "Payoff"): compiled code that
  // measured slower than the isolate's own fused-tier baseline and was
  // auto-demoted. A nonzero rate feeds the governor's Signal::JitPayoff.
  std::atomic<u64> jit_payoff_demotions{0};
};

enum class IsolateState : u8 { Active, Terminating, Dead };

struct Isolate {
  i32 id = 0;
  std::string name;
  ClassLoader* loader = nullptr;
  bool privileged = false;  // Isolate0
  std::atomic<IsolateState> state{IsolateState::Active};

  ResourceStats stats;

  // 0 = unlimited. Checked at allocation against
  // bytes_charged + bytes_since_gc (a GC is forced before giving up).
  size_t memory_limit = 0;
  i32 thread_limit = 0;

  // Per-isolate interned string table (paper section 3.1: strings are
  // private per isolate; section 3.5: `==` therefore differs across
  // bundles). Entries are GC roots of this isolate.
  std::mutex strings_mutex;
  std::unordered_map<std::string, Object*> interned_strings;

  bool isActive() const { return state.load(std::memory_order_acquire) == IsolateState::Active; }
  bool isTerminating() const {
    return state.load(std::memory_order_acquire) == IsolateState::Terminating;
  }
};

}  // namespace ijvm
