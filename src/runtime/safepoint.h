// Cooperative safepoint protocol.
//
// Guest threads poll frequently from the interpreter loop. Stop-the-world
// operations (GC, isolate termination's stack patching, the robustness
// harness's snapshots) bring every registered thread to a halt:
//   - Running threads park at their next poll;
//   - threads inside blocking natives (monitors, sleep, I/O, join) are
//     already "safe": they registered with enterBlocked() and their guest
//     frames cannot move while blocked.
//
// The controller also owns the *safepoint era*, a monotonic counter that
// epoch-based code reclamation (exec/code_cache.cpp, docs/concurrency.md)
// advances when it retires compiled code. Each thread republishes the
// current era into JThread::safepoint_era at poll sites and on
// Blocked->Running transitions; once every counted (i.e. Running) thread
// has published an era >= the retiring one, no thread can still be inside
// the pre-retire instruction window, and the code may be freed without
// stopping the world.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "support/common.h"

namespace ijvm {

class JThread;

class SafepointController {
 public:
  // Threads must be registered while in the Blocked state and transition to
  // Running via exitBlocked().
  void registerThread();
  void unregisterThread();

  // Fast check used by the interpreter before calling poll().
  bool stopRequested() const { return stop_flag_.load(std::memory_order_acquire); }

  // Parks the calling (Running) thread until the world resumes.
  void poll();

  // Bracket blocking operations: while "blocked" a thread counts as stopped.
  // Pass the calling JThread so its era publication stays coherent: a
  // blocked thread is quiescent for the era gate (its safepoint_counted is
  // cleared under m_), and on wake it republishes the current era before
  // it can reach compiled code.
  void enterBlocked(JThread* t = nullptr);
  void exitBlocked(JThread* t = nullptr);

  // Stop/resume the world. `self_guest` is the calling thread when it is a
  // registered Running guest (it is excluded from the wait; its era
  // bookkeeping is kept coherent across the park), nullptr otherwise.
  // Operations are serialized; nesting is not allowed.
  void stopTheWorld(JThread* self_guest);
  void resumeTheWorld(JThread* self_guest);

  // ---- safepoint era (epoch-based code reclamation) ----
  u64 currentEra() const { return era_.load(std::memory_order_acquire); }
  // Bumps the era and returns the *new* value (the reclaim target). The
  // fetch_add's RMW chain is what publishes the retirer's prior writes
  // (the entry un-patch) to every thread that later observes the new era.
  u64 advanceEra() { return era_.fetch_add(1, std::memory_order_acq_rel) + 1; }
  // Smallest era published by any *counted* (Running) thread among
  // `threads`; returns ~0ull when none is counted. Taken under m_, so it
  // cannot race a Blocked->Running transition: a thread that was blocked
  // during the scan republishes the current era under m_ before running.
  u64 minCountedEra(const std::vector<JThread*>& threads);

 private:
  std::mutex m_;
  std::condition_variable cv_resume_;     // parked threads wait here
  std::condition_variable cv_stopped_;    // the requester waits here
  std::atomic<bool> stop_flag_{false};
  std::atomic<u64> era_{1};
  int running_ = 0;
  std::mutex op_mutex_;  // serializes stop-the-world operations
};

// RAII bracket for blocking natives. When a JThread is supplied, its state
// is flipped to Blocked for the duration so the CPU sampler (paper section
// 3.2: sample the isolate reference of *running* threads) does not charge
// CPU to threads parked in sleep/wait/monitor/I/O.
class BlockedScope {
 public:
  explicit BlockedScope(SafepointController& sp, JThread* t = nullptr);
  ~BlockedScope();
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  SafepointController& sp_;
  JThread* t_;
  bool was_running_ = false;
};

}  // namespace ijvm
