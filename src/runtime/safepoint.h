// Cooperative safepoint protocol.
//
// Guest threads poll frequently from the interpreter loop. Stop-the-world
// operations (GC, isolate termination's stack patching, the robustness
// harness's snapshots) bring every registered thread to a halt:
//   - Running threads park at their next poll;
//   - threads inside blocking natives (monitors, sleep, I/O, join) are
//     already "safe": they registered with enterBlocked() and their guest
//     frames cannot move while blocked.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/common.h"

namespace ijvm {

class JThread;

class SafepointController {
 public:
  // Threads must be registered while in the Blocked state and transition to
  // Running via exitBlocked().
  void registerThread();
  void unregisterThread();

  // Fast check used by the interpreter before calling poll().
  bool stopRequested() const { return stop_flag_.load(std::memory_order_acquire); }

  // Parks the calling (Running) thread until the world resumes.
  void poll();

  // Bracket blocking operations: while "blocked" a thread counts as stopped.
  void enterBlocked();
  void exitBlocked();

  // Stop/resume the world. `self_is_guest` says whether the caller is a
  // registered Running guest thread (it is excluded from the wait).
  // Operations are serialized; nesting is not allowed.
  void stopTheWorld(bool self_is_guest);
  void resumeTheWorld(bool self_is_guest);

 private:
  std::mutex m_;
  std::condition_variable cv_resume_;     // parked threads wait here
  std::condition_variable cv_stopped_;    // the requester waits here
  std::atomic<bool> stop_flag_{false};
  int running_ = 0;
  std::mutex op_mutex_;  // serializes stop-the-world operations
};

// RAII bracket for blocking natives. When a JThread is supplied, its state
// is flipped to Blocked for the duration so the CPU sampler (paper section
// 3.2: sample the isolate reference of *running* threads) does not charge
// CPU to threads parked in sleep/wait/monitor/I/O.
class BlockedScope {
 public:
  explicit BlockedScope(SafepointController& sp, JThread* t = nullptr);
  ~BlockedScope();
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  SafepointController& sp_;
  JThread* t_;
  bool was_running_ = false;
};

}  // namespace ijvm
