// The bytecode interpreter and the invocation path.
//
// This file implements the two mechanisms at the heart of I-JVM:
//
//  * Thread migration (paper section 3.1): VM::invoke computes the isolate a
//    method executes in; when it differs from the thread's current isolate
//    the call is *inter-isolate* -- the thread's isolate reference is updated
//    on entry and restored on return. System-library methods never switch.
//
//  * Termination semantics (paper section 3.3): entering a poisoned method
//    throws StoppedIsolateException; a frame whose kill_on_return bit was
//    patched raises it when control would return into the dying isolate;
//    exception dispatch skips every handler belonging to a terminating
//    isolate, which is what makes the exception uncatchable *by* the dying
//    isolate while remaining catchable below it.
#include <cmath>
#include <limits>

#include "exec/engine.h"
#include "exec/interp_support.h"
#include "heap/object.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm {

using namespace interp;

namespace {

// Guest stacks map onto C++ recursion; keep a conservative bound.
constexpr size_t kMaxStackDepth = 768;

}  // namespace

// ------------------------------------------------------------- invocation

Value VM::invoke(JThread* t, JMethod* m, std::vector<Value> args) {
  IJVM_CHECK(m != nullptr, "invoke: null method");

  // Threads count as Running only while inside guest code; the outermost
  // invocation flips the safepoint state.
  const bool outermost = !t->hasFrames();
  if (outermost) {
    safepoints_.exitBlocked(t);
    t->state.store(ThreadState::Running, std::memory_order_release);
    t->pending_exception = nullptr;
  }

  Value result = invokeCore(t, m, args.data(), static_cast<i32>(args.size()));

  if (outermost) {
    t->state.store(ThreadState::Blocked, std::memory_order_release);
    safepoints_.enterBlocked(t);
  }
  return result;
}

// The call path proper. `args` points at `nargs` argument slots that stay
// valid (and GC-visible via the caller's frame or invoke()'s vector) for
// the duration of the call.
Value VM::invokeCore(JThread* t, JMethod* m, const Value* args, i32 nargs) {
  Value result;
  u64 call_trace_t0 = 0;  // nonzero: this migrated call is being sampled
  do {
    if (t->pending_exception != nullptr) break;  // propagate, do not enter

    // Termination barrier: a poisoned method can no longer be entered
    // (models I-JVM's patched JIT entry points + refusing to JIT).
    if (m->poisoned.load(std::memory_order_acquire)) {
      Isolate* owner_iso = m->owner->loader->isolate();
      throwStopped(*this, t, owner_iso != nullptr ? owner_iso->id : kKillAll);
      break;
    }
    if (t->depth() >= kMaxStackDepth) {
      throwGuest(t, "java/lang/StackOverflowError", m->fullName());
      break;
    }

    Isolate* cur = t->current_isolate.load(std::memory_order_relaxed);
    // <clinit> never migrates: it initializes the *accessing* isolate's
    // task class mirror (MVM semantics -- each isolate runs its own copy
    // of the static initializer).
    Isolate* target = m->isClinit() ? cur : executionIsolate(cur, m);
    const bool migrated = target != cur;
    if (migrated) {
      // Inter-isolate call: the thread migrates (paper: "when a thread
      // calls a method in another isolate, I-JVM sets the thread's isolate
      // reference to the called isolate").
      t->current_isolate.store(target, std::memory_order_release);
      if (options_.accounting) {
        target->stats.calls_in.fetch_add(1, std::memory_order_relaxed);
      }
      inter_isolate_calls_.fetch_add(1, std::memory_order_relaxed);
      // Sampled span (1 in 256, obs/trace.h): the full migrated-call
      // path runs in ~110 ns while a traced one costs ~450 ns (two clock
      // reads, two ring publishes, a histogram record), so the sampling
      // ratio is what holds the enabled overhead inside the 2% budget --
      // 1/64 measured at ~6%. The counter gates first: a plain
      // owner-thread increment, cheaper than traceEnabled()'s atomic
      // load behind a function-static guard.
      if ((t->trace_call_counter++ & 255) == 0 && obs::traceEnabled()) {
        call_trace_t0 = obs::traceNowNs();
        obs::emitAt(call_trace_t0, obs::Ev::InterIsolateCall, obs::Ph::Begin,
                    target->id);
      }
    }

    Frame& frame = t->pushFrame();
    frame.method = m;
    frame.isolate = target;
    frame.locals.assign(args, args + nargs);

    // Static methods trigger per-isolate class initialization in the
    // isolate the method executes in (its task class mirror).
    bool ok = true;
    if (m->isStatic() && !m->isClinit()) {
      ok = ensureInitialized(t, m->owner);
    }

    if (ok && m->isAbstract()) {
      throwGuest(t, "java/lang/AbstractMethodError", m->fullName());
      ok = false;
    }

    if (ok && m->isSynchronized()) {
      Object* sync = m->isStatic() ? classObject(t, m->owner)
                                   : frame.locals.at(0).asRef();
      if (sync != nullptr) {
        Monitor* mon = monitorOf(sync);
        bool acquired = mon->tryEnter(t);
        if (!acquired) {
          BlockedScope blocked(safepoints_, t);
          acquired = mon->enter(t, &t->force_kill);
        }
        if (!acquired) {
          throwStopped(*this, t, kKillAll);
          ok = false;
        } else {
          frame.sync_object = sync;
        }
      }
    }

    if (ok) {
      if (m->isNative()) {
        IJVM_CHECK(static_cast<bool>(m->native),
                   strf("native method %s has no implementation",
                        m->fullName().c_str()));
        NativeCtx ctx{*this, *t, m, frame.locals};
        result = m->native(ctx);
      } else {
        frame.locals.resize(m->code.max_locals);
        result = interpret(t, frame);
      }
    }

    if (frame.sync_object != nullptr) {
      monitorOf(frame.sync_object)->exit(t);
    }

    const bool kill = frame.kill_on_return;
    const i32 kill_iso = frame.kill_isolate;
    t->popFrame();
    if (migrated) {
      t->current_isolate.store(cur, std::memory_order_release);
      if (call_trace_t0 != 0) {
        const u64 t1 = obs::traceNowNs();
        obs::emitAt(t1, obs::Ev::InterIsolateCall, obs::Ph::End, target->id);
        obs::recordLatency(obs::Lat::InterIsolateCall, t1 - call_trace_t0);
      }
    }
    // Return-pointer patch: returning (normally) into a frame of the dying
    // isolate raises StoppedIsolateException instead.
    if (kill && t->pending_exception == nullptr) {
      throwStopped(*this, t, kill_iso);
      result = Value();
    }
    // Any exception escaping a terminating isolate's frame surfaces as
    // StoppedIsolateException (e.g. the InterruptedException injected into
    // a hanging bundle's sleep): callers observe the termination, per the
    // paper's A7 outcome ("execution returns to A" with the exception).
    if (options_.isolation && target != nullptr && !target->isActive() &&
        t->pending_exception != nullptr &&
        stoppedTargetOf(t->pending_exception) == -3) {
      throwStopped(*this, t, target->id);
    }
    // The termination signal for this isolate has been delivered (either by
    // the poll or by the interrupt-then-convert path just above); consume a
    // still-pending stop request so it is not raised a second time in the
    // caller's (healthy) frame.
    if (options_.isolation && target != nullptr && !target->isActive()) {
      i32 expected = target->id;
      t->pending_stop_isolate.compare_exchange_strong(expected, -1,
                                                      std::memory_order_acq_rel);
    }
  } while (false);
  return result;
}

Value VM::callStatic(JThread* t, const std::string& cls_name,
                     const std::string& method, const std::string& descriptor,
                     std::vector<Value> args) {
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  return callStaticIn(t, iso->loader, cls_name, method, descriptor,
                      std::move(args));
}

Value VM::callStaticIn(JThread* t, ClassLoader* loader, const std::string& cls_name,
                       const std::string& method, const std::string& descriptor,
                       std::vector<Value> args) {
  JClass* cls = registry_.resolve(loader, cls_name);
  if (cls == nullptr) {
    throwGuest(t, "java/lang/NoClassDefFoundError", cls_name);
    return {};
  }
  JMethod* m = cls->findMethod(method, descriptor);
  if (m == nullptr || !m->isStatic()) {
    throwGuest(t, "java/lang/NoSuchMethodError",
               strf("%s.%s%s", cls_name.c_str(), method.c_str(), descriptor.c_str()));
    return {};
  }
  return invoke(t, m, std::move(args));
}

Value VM::callVirtual(JThread* t, Object* receiver, const std::string& method,
                      const std::string& descriptor, std::vector<Value> args) {
  if (receiver == nullptr) {
    throwGuest(t, "java/lang/NullPointerException", method);
    return {};
  }
  JMethod* m = receiver->cls->resolveVirtual(method, descriptor);
  if (m == nullptr) {
    throwGuest(t, "java/lang/NoSuchMethodError",
               strf("%s.%s%s", receiver->cls->name.c_str(), method.c_str(),
                    descriptor.c_str()));
    return {};
  }
  args.insert(args.begin(), Value::ofRef(receiver));
  return invoke(t, m, std::move(args));
}

// ------------------------------------------------------------ interpreter

Value VM::interpret(JThread* t, Frame& frame) {
  // Quickened and Jit both enter through the quickening engine; the JIT
  // tier hands off to compiled code from inside interpretQuickened.
  if (options_.exec_engine != ExecEngine::Classic) {
    return exec::interpretQuickened(*this, t, frame);
  }
  return interpretClassic(t, frame);
}

Value VM::interpretClassic(JThread* t, Frame& frame) {
  JMethod* method = frame.method;
  JClass* owner = method->owner;
  frame.tier = FrameTier::Classic;  // profiler attribution (obs/profiler.h)
  const std::vector<Instruction>& code = method->code.insns;
  std::vector<Value>& stack = frame.stack;
  std::vector<Value>& locals = frame.locals;

  auto push = [&stack](Value v) { stack.push_back(v); };
  auto pop = [&stack]() {
    IJVM_CHECK(!stack.empty(), "operand stack underflow (verifier miss)");
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  auto throwNPE = [&](const char* what) {
    throwGuest(t, "java/lang/NullPointerException", what);
  };

  // Tries to find a handler for the pending exception in this frame.
  // Returns true when handled (pc updated, exception consumed).
  auto dispatchException = [&]() -> bool {
    return dispatchExceptionInFrame(*this, t, frame);
  };

  for (;;) {
    // ---- safepoint & thread-attention checks (per instruction) ----
    if (safepoints_.stopRequested()) safepoints_.poll();
    t->publishEra(safepoints_.currentEra());
    if (t->force_kill.load(std::memory_order_relaxed) &&
        t->pending_exception == nullptr) {
      throwStopped(*this, t, kKillAll);
    } else if (t->pending_stop_isolate.load(std::memory_order_relaxed) >= 0 &&
               t->pending_exception == nullptr) {
      i32 target = t->pending_stop_isolate.exchange(-1, std::memory_order_acq_rel);
      if (target >= 0) throwStopped(*this, t, target);
    }
    IJVM_PROFILE_POLL(*this, t);

    if (t->pending_exception != nullptr) {
      if (dispatchException()) continue;
      return {};  // unwind to caller
    }

    IJVM_CHECK(frame.pc >= 0 && static_cast<size_t>(frame.pc) < code.size(),
               strf("pc %d out of range in %s", frame.pc,
                    method->fullName().c_str()));
    const Instruction& insn = code[static_cast<size_t>(frame.pc)];
    i32 next = frame.pc + 1;

    switch (insn.op) {
      case Op::NOP:
        break;
      case Op::ACONST_NULL:
        push(Value::nullRef());
        break;
      case Op::ICONST:
        push(Value::ofInt(insn.a));
        break;
      case Op::LDC: {
        CpEntry& e = owner->pool.at(insn.a);
        switch (e.tag) {
          case CpTag::Int:
            push(Value::ofInt(static_cast<i32>(e.i)));
            break;
          case CpTag::Long:
            push(Value::ofLong(e.i));
            break;
          case CpTag::Double:
            push(Value::ofDouble(e.d));
            break;
          case CpTag::String: {
            // Interned in the *current* isolate's string map: two bundles
            // loading the same literal get different objects (paper 3.5).
            Object* s = internString(t, e.text);
            if (s != nullptr) push(Value::ofRef(s));
            break;
          }
          default:
            IJVM_UNREACHABLE("LDC with non-constant pool entry");
        }
        break;
      }

      // ---- locals ----
      case Op::ILOAD:
      case Op::LLOAD:
      case Op::DLOAD:
      case Op::ALOAD:
        push(locals[static_cast<size_t>(insn.a)]);
        break;
      case Op::ISTORE:
      case Op::LSTORE:
      case Op::DSTORE:
      case Op::ASTORE:
        locals[static_cast<size_t>(insn.a)] = pop();
        break;
      case Op::IINC: {
        Value& v = locals[static_cast<size_t>(insn.a)];
        v = Value::ofInt(v.asInt() + insn.b);
        break;
      }

      // ---- stack ----
      case Op::POP:
        pop();
        break;
      case Op::DUP: {
        Value v = pop();
        push(v);
        push(v);
        break;
      }
      case Op::DUP_X1: {
        Value a = pop();
        Value b = pop();
        push(a);
        push(b);
        push(a);
        break;
      }
      case Op::SWAP: {
        Value a = pop();
        Value b = pop();
        push(a);
        push(b);
        break;
      }

      // ---- int arithmetic (wrapping) ----
#define IJVM_IBIN(OPNAME, EXPR)                                        \
  case Op::OPNAME: {                                                   \
    i32 b = pop().asInt();                                             \
    i32 a = pop().asInt();                                             \
    push(Value::ofInt(EXPR));                                          \
    break;                                                             \
  }
      IJVM_IBIN(IADD, static_cast<i32>(static_cast<u32>(a) + static_cast<u32>(b)))
      IJVM_IBIN(ISUB, static_cast<i32>(static_cast<u32>(a) - static_cast<u32>(b)))
      IJVM_IBIN(IMUL, static_cast<i32>(static_cast<u32>(a) * static_cast<u32>(b)))
      IJVM_IBIN(ISHL, static_cast<i32>(static_cast<u32>(a) << wrapShift32(b)))
      IJVM_IBIN(ISHR, a >> wrapShift32(b))
      IJVM_IBIN(IUSHR, static_cast<i32>(static_cast<u32>(a) >> wrapShift32(b)))
      IJVM_IBIN(IAND, a & b)
      IJVM_IBIN(IOR, a | b)
      IJVM_IBIN(IXOR, a ^ b)
#undef IJVM_IBIN
      case Op::IDIV:
      case Op::IREM: {
        i32 b = pop().asInt();
        i32 a = pop().asInt();
        if (b == 0) {
          throwGuest(t, "java/lang/ArithmeticException", "/ by zero");
          break;
        }
        push(Value::ofInt(insn.op == Op::IDIV ? idivSafe(a, b) : iremSafe(a, b)));
        break;
      }
      case Op::INEG: {
        i32 a = pop().asInt();
        push(Value::ofInt(static_cast<i32>(0u - static_cast<u32>(a))));
        break;
      }

      // ---- long arithmetic ----
#define IJVM_LBIN(OPNAME, EXPR)                                        \
  case Op::OPNAME: {                                                   \
    i64 b = pop().asLong();                                            \
    i64 a = pop().asLong();                                            \
    push(Value::ofLong(EXPR));                                         \
    break;                                                             \
  }
      IJVM_LBIN(LADD, static_cast<i64>(static_cast<u64>(a) + static_cast<u64>(b)))
      IJVM_LBIN(LSUB, static_cast<i64>(static_cast<u64>(a) - static_cast<u64>(b)))
      IJVM_LBIN(LMUL, static_cast<i64>(static_cast<u64>(a) * static_cast<u64>(b)))
      IJVM_LBIN(LAND, a & b)
      IJVM_LBIN(LOR, a | b)
      IJVM_LBIN(LXOR, a ^ b)
#undef IJVM_LBIN
      case Op::LSHL: {
        i32 sh = pop().asInt();
        i64 a = pop().asLong();
        push(Value::ofLong(static_cast<i64>(static_cast<u64>(a) << wrapShift64(sh))));
        break;
      }
      case Op::LSHR: {
        i32 sh = pop().asInt();
        i64 a = pop().asLong();
        push(Value::ofLong(a >> wrapShift64(sh)));
        break;
      }
      case Op::LDIV:
      case Op::LREM: {
        i64 b = pop().asLong();
        i64 a = pop().asLong();
        if (b == 0) {
          throwGuest(t, "java/lang/ArithmeticException", "/ by zero");
          break;
        }
        push(Value::ofLong(insn.op == Op::LDIV ? ldivSafe(a, b) : lremSafe(a, b)));
        break;
      }
      case Op::LNEG: {
        i64 a = pop().asLong();
        push(Value::ofLong(static_cast<i64>(0ull - static_cast<u64>(a))));
        break;
      }
      case Op::LCMP: {
        i64 b = pop().asLong();
        i64 a = pop().asLong();
        push(Value::ofInt(a < b ? -1 : (a > b ? 1 : 0)));
        break;
      }

      // ---- double arithmetic ----
#define IJVM_DBIN(OPNAME, EXPR)                                        \
  case Op::OPNAME: {                                                   \
    double b = pop().asDouble();                                       \
    double a = pop().asDouble();                                       \
    push(Value::ofDouble(EXPR));                                       \
    break;                                                             \
  }
      IJVM_DBIN(DADD, a + b)
      IJVM_DBIN(DSUB, a - b)
      IJVM_DBIN(DMUL, a * b)
      IJVM_DBIN(DDIV, a / b)
      IJVM_DBIN(DREM, std::fmod(a, b))
#undef IJVM_DBIN
      case Op::DNEG:
        push(Value::ofDouble(-pop().asDouble()));
        break;
      case Op::DCMPL:
      case Op::DCMPG: {
        double b = pop().asDouble();
        double a = pop().asDouble();
        i32 r;
        if (std::isnan(a) || std::isnan(b)) {
          r = insn.op == Op::DCMPL ? -1 : 1;
        } else {
          r = a < b ? -1 : (a > b ? 1 : 0);
        }
        push(Value::ofInt(r));
        break;
      }

      // ---- conversions ----
      case Op::I2L:
        push(Value::ofLong(pop().asInt()));
        break;
      case Op::I2D:
        push(Value::ofDouble(pop().asInt()));
        break;
      case Op::L2I:
        push(Value::ofInt(static_cast<i32>(pop().asLong())));
        break;
      case Op::L2D:
        push(Value::ofDouble(static_cast<double>(pop().asLong())));
        break;
      case Op::D2I:
        push(Value::ofInt(d2iSat(pop().asDouble())));
        break;
      case Op::D2L:
        push(Value::ofLong(d2lSat(pop().asDouble())));
        break;

      // ---- branches ----
#define IJVM_IF1(OPNAME, CMP)                                          \
  case Op::OPNAME: {                                                   \
    i32 a = pop().asInt();                                             \
    if (a CMP 0) next = insn.a;                                        \
    break;                                                             \
  }
      IJVM_IF1(IFEQ, ==)
      IJVM_IF1(IFNE, !=)
      IJVM_IF1(IFLT, <)
      IJVM_IF1(IFGE, >=)
      IJVM_IF1(IFGT, >)
      IJVM_IF1(IFLE, <=)
#undef IJVM_IF1
#define IJVM_IF2(OPNAME, CMP)                                          \
  case Op::OPNAME: {                                                   \
    i32 b = pop().asInt();                                             \
    i32 a = pop().asInt();                                             \
    if (a CMP b) next = insn.a;                                        \
    break;                                                             \
  }
      IJVM_IF2(IF_ICMPEQ, ==)
      IJVM_IF2(IF_ICMPNE, !=)
      IJVM_IF2(IF_ICMPLT, <)
      IJVM_IF2(IF_ICMPGE, >=)
      IJVM_IF2(IF_ICMPGT, >)
      IJVM_IF2(IF_ICMPLE, <=)
#undef IJVM_IF2
      case Op::IF_ACMPEQ: {
        Object* b = pop().asRef();
        Object* a = pop().asRef();
        if (a == b) next = insn.a;
        break;
      }
      case Op::IF_ACMPNE: {
        Object* b = pop().asRef();
        Object* a = pop().asRef();
        if (a != b) next = insn.a;
        break;
      }
      case Op::IFNULL:
        if (pop().asRef() == nullptr) next = insn.a;
        break;
      case Op::IFNONNULL:
        if (pop().asRef() != nullptr) next = insn.a;
        break;
      case Op::GOTO:
        next = insn.a;
        break;

      // ---- returns ----
      case Op::RETURN:
        return {};
      case Op::IRETURN:
      case Op::LRETURN:
      case Op::DRETURN:
      case Op::ARETURN:
        return pop();

      // ---- statics: the task-class-mirror indirection (paper 3.1) ----
      case Op::GETSTATIC:
      case Op::PUTSTATIC: {
        JField* f = resolveFieldRef(*this, t, owner, owner->pool.at(insn.a),
                                    /*want_static=*/true);
        if (f == nullptr) break;
        TaskClassMirror* mirror;
        if (!options_.isolation) {
          // Baseline path: direct access to the single shared mirror, as an
          // unmodified JVM loads a resolved static slot.
          mirror = &f->owner->sharedMirror();
          if (mirror->state.load(std::memory_order_acquire) !=
              TaskClassMirror::InitState::Initialized) {
            if (!ensureInitialized(t, f->owner)) break;
          }
        } else {
          // I-JVM path (paper section 3.1): load the thread's current
          // isolate, index the task-class-mirror array, check the
          // initialization state -- the "two additional loads" plus the
          // init check that reentrant code cannot elide.
          Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
          mirror = f->owner->tcmFast(iso->id);
          if (mirror == nullptr ||
              mirror->state.load(std::memory_order_acquire) !=
                  TaskClassMirror::InitState::Initialized) {
            if (!ensureInitialized(t, f->owner)) break;
            mirror = &f->owner->tcm(tcmIndex(iso));
          }
        }
        if (insn.op == Op::GETSTATIC) {
          push(mirror->statics[static_cast<size_t>(f->slot)]);
        } else {
          mirror->statics[static_cast<size_t>(f->slot)] = pop();
        }
        break;
      }

      case Op::GETFIELD: {
        JField* f = resolveFieldRef(*this, t, owner, owner->pool.at(insn.a),
                                    /*want_static=*/false);
        if (f == nullptr) break;
        Object* obj = pop().asRef();
        if (obj == nullptr) {
          throwNPE(f->name.c_str());
          break;
        }
        push(obj->fields()[f->slot]);
        break;
      }
      case Op::PUTFIELD: {
        JField* f = resolveFieldRef(*this, t, owner, owner->pool.at(insn.a),
                                    /*want_static=*/false);
        if (f == nullptr) break;
        Value v = pop();
        Object* obj = pop().asRef();
        if (obj == nullptr) {
          throwNPE(f->name.c_str());
          break;
        }
        obj->fields()[f->slot] = v;
        break;
      }

      // ---- calls ----
      case Op::INVOKEVIRTUAL:
      case Op::INVOKESPECIAL:
      case Op::INVOKESTATIC:
      case Op::INVOKEINTERFACE: {
        JMethod* resolved = resolveMethodRef(*this, t, owner, owner->pool.at(insn.a));
        if (resolved == nullptr) break;
        const i32 nargs = resolved->argSlots();
        IJVM_CHECK(static_cast<size_t>(nargs) <= stack.size(),
                   "operand stack underflow at call (verifier miss)");
        // Arguments are passed directly from the caller's operand stack;
        // they stay rooted there (and GC-visible) until the call returns.
        const Value* args = stack.data() + (stack.size() - static_cast<size_t>(nargs));
        JMethod* callee = resolved;
        if (insn.op == Op::INVOKEVIRTUAL || insn.op == Op::INVOKEINTERFACE) {
          Object* recv = args[0].asRef();
          if (recv == nullptr) {
            throwNPE(resolved->name.c_str());
            break;
          }
          if (insn.op == Op::INVOKEVIRTUAL && resolved->vtable_index >= 0 &&
              static_cast<size_t>(resolved->vtable_index) <
                  recv->cls->vtable.size()) {
            callee = recv->cls->vtable[static_cast<size_t>(resolved->vtable_index)];
          } else {
            callee = recv->cls->resolveVirtual(resolved->name, resolved->descriptor);
            if (callee == nullptr) {
              throwGuest(t, "java/lang/AbstractMethodError", resolved->fullName());
              break;
            }
          }
        } else if (insn.op == Op::INVOKESTATIC) {
          if (!resolved->isStatic()) {
            throwGuest(t, "java/lang/IncompatibleClassChangeError",
                       resolved->fullName());
            break;
          }
        } else {  // INVOKESPECIAL: ctor / super / private -- direct
          Object* recv = args[0].asRef();
          if (recv == nullptr) {
            throwNPE(resolved->name.c_str());
            break;
          }
        }
        Value r = invokeCore(t, callee, args, nargs);
        stack.resize(stack.size() - static_cast<size_t>(nargs));
        if (t->pending_exception != nullptr) break;
        if (callee->sig.ret.kind != Kind::Void) push(r);
        break;
      }

      // ---- objects & arrays ----
      case Op::NEW: {
        JClass* cls = resolveClassRef(*this, t, owner, owner->pool.at(insn.a));
        if (cls == nullptr) break;
        if (cls->isInterface() || (cls->flags & ACC_ABSTRACT) != 0) {
          throwGuest(t, "java/lang/InstantiationError", cls->name);
          break;
        }
        if (!ensureInitialized(t, cls)) break;
        Object* obj = allocObject(t, cls);
        if (obj != nullptr) push(Value::ofRef(obj));
        break;
      }
      case Op::NEWARRAY: {
        i32 len = pop().asInt();
        const char* name = insn.a == 0 ? "[I" : (insn.a == 1 ? "[J" : "[D");
        JClass* cls = registry_.arrayClass(name);
        Object* arr = allocArrayObject(t, cls, len);
        if (arr != nullptr) push(Value::ofRef(arr));
        break;
      }
      case Op::ANEWARRAY: {
        i32 len = pop().asInt();
        JClass* elem = resolveClassRef(*this, t, owner, owner->pool.at(insn.a));
        if (elem == nullptr) break;
        JClass* cls = registry_.resolve(elem->loader, "[L" + elem->name + ";");
        if (cls == nullptr) {
          throwGuest(t, "java/lang/NoClassDefFoundError", elem->name);
          break;
        }
        Object* arr = allocArrayObject(t, cls, len);
        if (arr != nullptr) push(Value::ofRef(arr));
        break;
      }
      case Op::ARRAYLENGTH: {
        Object* arr = pop().asRef();
        if (arr == nullptr) {
          throwNPE("arraylength");
          break;
        }
        push(Value::ofInt(arr->length));
        break;
      }

#define IJVM_ALOAD(OPNAME, ACCESSOR, MAKE)                               \
  case Op::OPNAME: {                                                     \
    i32 idx = pop().asInt();                                             \
    Object* arr = pop().asRef();                                         \
    if (arr == nullptr) {                                                \
      throwNPE(#OPNAME);                                                 \
      break;                                                             \
    }                                                                    \
    if (idx < 0 || idx >= arr->length) {                                 \
      throwGuest(t, "java/lang/ArrayIndexOutOfBoundsException",          \
                 strf("%d", idx));                                       \
      break;                                                             \
    }                                                                    \
    push(MAKE(arr->ACCESSOR()[idx]));                                    \
    break;                                                               \
  }
      IJVM_ALOAD(IALOAD, intElems, Value::ofInt)
      IJVM_ALOAD(LALOAD, longElems, Value::ofLong)
      IJVM_ALOAD(DALOAD, doubleElems, Value::ofDouble)
      IJVM_ALOAD(AALOAD, refElems, Value::ofRef)
#undef IJVM_ALOAD

#define IJVM_ASTORE(OPNAME, ACCESSOR, GETTER, CAST)                      \
  case Op::OPNAME: {                                                     \
    Value v = pop();                                                     \
    i32 idx = pop().asInt();                                             \
    Object* arr = pop().asRef();                                         \
    if (arr == nullptr) {                                                \
      throwNPE(#OPNAME);                                                 \
      break;                                                             \
    }                                                                    \
    if (idx < 0 || idx >= arr->length) {                                 \
      throwGuest(t, "java/lang/ArrayIndexOutOfBoundsException",          \
                 strf("%d", idx));                                       \
      break;                                                             \
    }                                                                    \
    arr->ACCESSOR()[idx] = CAST(v.GETTER());                             \
    break;                                                               \
  }
      IJVM_ASTORE(IASTORE, intElems, asInt, static_cast<i32>)
      IJVM_ASTORE(LASTORE, longElems, asLong, static_cast<i64>)
      IJVM_ASTORE(DASTORE, doubleElems, asDouble, static_cast<double>)
#undef IJVM_ASTORE
      case Op::AASTORE: {
        Value v = pop();
        i32 idx = pop().asInt();
        Object* arr = pop().asRef();
        if (arr == nullptr) {
          throwNPE("AASTORE");
          break;
        }
        if (idx < 0 || idx >= arr->length) {
          throwGuest(t, "java/lang/ArrayIndexOutOfBoundsException", strf("%d", idx));
          break;
        }
        Object* elem = v.asRef();
        if (elem != nullptr && arr->cls->elem_class != nullptr &&
            !elem->cls->isAssignableTo(arr->cls->elem_class)) {
          throwGuest(t, "java/lang/ArrayStoreException", elem->cls->name);
          break;
        }
        arr->refElems()[idx] = elem;
        break;
      }

      // ---- type checks ----
      case Op::CHECKCAST: {
        JClass* target = resolveClassRef(*this, t, owner, owner->pool.at(insn.a));
        if (target == nullptr) break;
        Object* obj = stack.empty() ? nullptr : stack.back().asRef();
        if (obj != nullptr && !obj->cls->isAssignableTo(target)) {
          throwGuest(t, "java/lang/ClassCastException",
                     strf("%s -> %s", obj->cls->name.c_str(), target->name.c_str()));
        }
        break;
      }
      case Op::INSTANCEOF: {
        JClass* target = resolveClassRef(*this, t, owner, owner->pool.at(insn.a));
        if (target == nullptr) break;
        Object* obj = pop().asRef();
        push(Value::ofInt(obj != nullptr && obj->cls->isAssignableTo(target) ? 1 : 0));
        break;
      }

      // ---- monitors ----
      case Op::MONITORENTER: {
        Object* obj = pop().asRef();
        if (obj == nullptr) {
          throwNPE("monitorenter");
          break;
        }
        Monitor* mon = monitorOf(obj);
        bool acquired = mon->tryEnter(t);
        if (!acquired) {
          BlockedScope blocked(safepoints_, t);
          acquired = mon->enter(t, &t->force_kill);
        }
        if (!acquired) throwStopped(*this, t, kKillAll);
        break;
      }
      case Op::MONITOREXIT: {
        Object* obj = pop().asRef();
        if (obj == nullptr) {
          throwNPE("monitorexit");
          break;
        }
        if (!monitorOf(obj)->exit(t)) {
          throwGuest(t, "java/lang/IllegalMonitorStateException", "not owner");
        }
        break;
      }

      // ---- exceptions ----
      case Op::ATHROW: {
        Object* exc = pop().asRef();
        if (exc == nullptr) {
          throwNPE("athrow");
          break;
        }
        t->pending_exception = exc;
        break;
      }

      default:
        // Quickened opcodes exist only in the exec engine's rewritten
        // instruction stream; the verifier keeps them out of class files.
        IJVM_UNREACHABLE("quickened opcode reached the classic interpreter");
    }

    if (t->pending_exception == nullptr) frame.pc = next;
  }
}

}  // namespace ijvm
