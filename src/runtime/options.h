// VM configuration.
//
// `isolation=false, accounting=false` is the baseline mode: it models the
// unmodified LadyVM (performance experiments, Figures 1-3) and the Sun JVM
// (robustness experiments, section 4.3) -- one shared copy of statics,
// interned strings and Class objects, no per-isolate accounting, no
// termination support.
#pragma once

#include "heap/accounting_policy.h"
#include "support/common.h"

namespace ijvm {

// Which execution engine runs guest bytecode (see src/exec/).
//  Classic   -- the original single-switch interpreter (interpreter.cpp);
//               retained for differential testing.
//  Quickened -- direct-threaded dispatch over a rewritten instruction
//               stream with resolved operands and isolate-aware inline
//               caches (exec/engine.cpp), plus the superinstruction
//               fusion tier; never compiles.
//  Jit       -- everything Quickened does, plus tier 3: hot methods are
//               compiled to call-threaded code (exec/jit.cpp,
//               docs/jit.md). Compile the tier out with
//               -DIJVM_DISABLE_JIT (Jit then behaves as Quickened).
enum class ExecEngine : u8 { Classic, Quickened, Jit };

struct VmOptions {
  // Per-isolate statics / strings / Class objects + thread migration.
  bool isolation = true;
  // Per-isolate resource accounting (allocation, threads, I/O, GC, CPU).
  bool accounting = true;
  // How the GC accounting pass bills live objects to isolates.
  // FirstReference is the paper's design; the others implement its
  // section-4.4 future work (see heap/accounting_policy.h).
  AccountingPolicy accounting_policy = AccountingPolicy::FirstReference;
  // Run the bytecode verifier when classes are defined.
  bool verify = true;
  // Bytecode execution engine. Jit (the full tier ladder, see
  // docs/execution-tiers.md) is the default; Classic is kept for
  // differential testing (tests/test_exec_equivalence.cpp).
  ExecEngine exec_engine = ExecEngine::Jit;
  // Superinstruction fusion tier on top of the quickened engine
  // (src/exec/fuse.cpp, docs/execution-tiers.md): rewrite a hot method's
  // quickened stream a second time, collapsing hot adjacent pairs/triples
  // into fused opcodes. Ignored by the classic engine; compile the tier
  // out entirely with -DIJVM_DISABLE_FUSION.
  bool fusion = true;
  // Hotness (profile invocations + loop back-edges) a method must exceed
  // before its stream is fused. 0 fuses as soon as a completed first
  // execution has quickened the stream (tests force the tier on this way).
  u64 fusion_threshold = 256;
  // Hotness a method must exceed before it is compiled to call-threaded
  // code (tier 3, exec/jit.cpp; only with exec_engine == ExecEngine::Jit).
  // Promotion takes effect at the method's next entry, or -- with `osr`
  // below -- mid-invocation at a loop back-edge (docs/jit.md). 0 compiles
  // as soon as a method is warmed and fused (the differential tests force
  // the tier on this way).
  u64 jit_threshold = 2048;
  // On-stack replacement (docs/jit.md, "On-stack replacement"): a method
  // that crosses jit_threshold *inside* one invocation -- the A6-style
  // single-call hot loop -- is compiled at a back-edge batch flush and the
  // running frame transfers into the compiled code without returning to
  // the caller. Only meaningful with exec_engine == ExecEngine::Jit;
  // compile the path out with -DIJVM_DISABLE_OSR (parity with the
  // -DIJVM_DISABLE_JIT / -DIJVM_DISABLE_FUSION tier switches).
  bool osr = true;
  // Background compilation (docs/jit.md, "Code lifecycle"): promote-to-JIT
  // requests are drained by a dedicated compiler thread
  // (exec/compile_manager.cpp) and finished code is installed by the
  // mutator at its next safepoint-coordinated drain point (method entry or
  // back-edge batch flush) -- the mutator never blocks on a compile, it
  // keeps running the fused tier until the entry flips. false compiles
  // synchronously at the drain point (deterministic: code is installed the
  // moment the request is drained -- the configuration the tier tests
  // pin). Compile the thread out entirely with -DIJVM_DISABLE_BG_COMPILE.
  bool background_compile = true;
  // Profile-driven payoff model (docs/jit.md, "Payoff"): promotion stops
  // being threshold-only. While a method approaches promotion the engine
  // samples its fused-tier cost per profiled unit (invocations +
  // back-edges); after the compiled code installs it samples the compiled
  // cost the same way, and when the measured speedup of a full
  // post-install window falls below jit_payoff_min_speedup the method is
  // auto-demoted through the same machinery the code-cache budget uses
  // (demoteCompiled: entry un-patched, re-heat floor raised, code
  // reclaimed once idle). A method payoff-demoted jit_payoff_max_demotes
  // times is pinned jit-ineligible -- the system converges instead of
  // oscillating. false keeps threshold-only promotion (no window
  // sampling, no payoff demotions).
  bool jit_payoff = true;
  // Timed invocations per payoff window (pre-promotion and post-install
  // each). Small enough that steady-state code stops paying clock reads
  // within a few dozen calls of installing.
  u32 jit_payoff_samples = 32;
  // Demote when measured (pre ns/unit) / (post ns/unit) is below this.
  // Below 1.0 gives the compiled tier the benefit of the doubt: both
  // windows include callee time, which dilutes the measured ratio toward
  // 1.0, so a reading under 0.95 means the compiled code is genuinely
  // slower, not noise.
  double jit_payoff_min_speedup = 0.95;
  // Payoff demotions before the method is pinned jit-ineligible.
  u32 jit_payoff_max_demotes = 3;
  // Test seam (tests/test_jit_payoff.cpp): busy-wait this many
  // nanoseconds at every compiled-code entry, making compiled code
  // deterministically slower than the fused tier so auto-demotion
  // provably fires. 0 (always, outside tests) injects nothing.
  u64 jit_payoff_test_entry_delay_ns = 0;

  // Bound on installed tier-3 compiled-code bytes (docs/jit.md, "Code
  // lifecycle"). When an install pushes the code cache past the budget,
  // the coldest compiled methods are *demoted* -- entry un-patched, method
  // back to the fused tier, code reclaimed once no frame executes it --
  // until the cache fits. 0 = unlimited. The default is generous: demotion
  // is for churny multi-bundle platforms whose compiled working set keeps
  // drifting, not for steady-state services.
  size_t code_cache_budget = 8u << 20;

  // Zero-copy inter-isolate communication (docs/comm.md): primitive
  // arrays and strings relinquished by the sender are *donated* -- re-keyed
  // to the receiver's isolate with the accounting charge transferring
  // owners -- instead of deep-copied. Only affects graphs sent through
  // transferGraph (comm/serializer.h); ineligible nodes (shared structure,
  // interned strings, monitor-bearing or foreign-created objects) fall
  // back to the copy path either way. Compile the fast path out entirely
  // with -DIJVM_DISABLE_ZERO_COPY (transferGraph then always copies).
  bool comm_zero_copy = true;
  // Frames coalesced per vectored channel send (ByteChannel::writev,
  // docs/comm.md "Batched sends"): senders buffer up to this many framed
  // messages and push them with one lock acquisition and one wakeup.
  // 1 = classic per-message sends.
  u32 channel_batch = 1;

  // Bytes allocated since the previous collection that trigger a GC.
  size_t gc_threshold = 8u << 20;
  // Hard heap cap; exceeding it after a forced GC raises OutOfMemoryError.
  size_t heap_limit = 256u << 20;
  // Default per-isolate memory cap (0 = unlimited); per-isolate overrides
  // via Isolate::memory_limit.
  size_t isolate_memory_limit = 0;
  // Default per-isolate live thread cap (0 = unlimited).
  i32 isolate_thread_limit = 0;
  // Platform-wide live spawned-thread cap, modelling the real JVM's
  // "cannot create native thread" OutOfMemoryError (attack A5's failure
  // mode on an unprotected JVM). Applies in both modes.
  i32 host_thread_cap = 1024;

  // CPU sampling period in microseconds; 0 disables the sampler thread
  // (paper section 3.2: CPU time is charged by sampling the isolate
  // reference of running threads).
  i32 sampler_period_us = 1000;

  // Sampling-profiler rate in Hz (obs/profiler.h): stack samples with
  // per-isolate CPU attribution, tier tags and flame-graph export. 0
  // disables the sampler thread (manual Profiler::tickOnce still works --
  // the deterministic mode the tests drive). 97 rather than 100 so the
  // sampler cannot phase-lock with millisecond-periodic guest behaviour.
  // Ignored under -DIJVM_DISABLE_PROFILER.
  u32 profile_hz = 97;

  // Mutator thread pool (src/runtime/mutator_pool.h, docs/concurrency.md):
  // the platform-side workers that run bundle entry points so thousands of
  // concurrent bundles do not serialize on one host thread. 0 means
  // hardware_concurrency. The pool is created lazily on first submit, so
  // embedders that only ever call in on their own thread pay nothing.
  u32 mutator_threads = 0;
  // Compiler threads draining the promote-to-JIT queue concurrently (only
  // with background_compile; exec/compile_manager.cpp). Builds parallelize;
  // installs stay at the mutators' safepoint-coordinated drain points, so
  // the entry-flip contract in docs/jit.md is unchanged.
  u32 compiler_threads = 1;

  static VmOptions isolated() { return VmOptions{}; }
  static VmOptions shared() {
    VmOptions o;
    o.isolation = false;
    o.accounting = false;
    o.sampler_period_us = 0;
    o.profile_hz = 0;  // baseline JVM: no attribution machinery running
    return o;
  }
};

}  // namespace ijvm
