#include "runtime/vm.h"

#include <algorithm>
#include <chrono>


#include "exec/code_cache.h"
#include "exec/compile_manager.h"
#include "exec/jit.h"
#include "heap/object.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/mutator_pool.h"
#include "support/strf.h"
#include "verifier/verifier.h"

namespace ijvm {

// ---------------------------------------------------------------- JThread

JThread::JThread(VM& vm_ref, i32 thread_id, std::string thread_name,
                 Isolate* initial_isolate)
    : vm(vm_ref), id(thread_id), name(std::move(thread_name)),
      creator_isolate(initial_isolate), current_isolate(initial_isolate) {}

void JThread::markDone() {
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_.store(true, std::memory_order_release);
  }
  done_cv_.notify_all();
}

bool JThread::awaitDone(JThread* waiter, i64 millis) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(millis > 0 ? millis : 0);
  std::unique_lock<std::mutex> lock(done_mutex_);
  for (;;) {
    if (done_.load(std::memory_order_acquire)) return true;
    if (waiter != nullptr &&
        (waiter->interrupted.load(std::memory_order_acquire) ||
         waiter->force_kill.load(std::memory_order_acquire))) {
      return false;
    }
    if (millis > 0 && std::chrono::steady_clock::now() >= deadline) return false;
    done_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

// --------------------------------------------------------------- NativeCtx

LocalRootScope::LocalRootScope(JThread* t) : t_(t) {
  std::lock_guard<std::mutex> lock(t_->extra_roots_mutex);
  base_ = t_->extra_roots.size();
}

LocalRootScope::~LocalRootScope() {
  std::lock_guard<std::mutex> lock(t_->extra_roots_mutex);
  t_->extra_roots.resize(base_);
}

Object* LocalRootScope::add(Object* obj) {
  if (obj != nullptr) {
    std::lock_guard<std::mutex> lock(t_->extra_roots_mutex);
    t_->extra_roots.push_back(obj);
  }
  return obj;
}

void NativeCtx::throwGuest(const std::string& exception_class,
                           const std::string& message) {
  vm.throwGuest(&thread, exception_class, message);
}

bool NativeCtx::hasPending() const { return thread.pending_exception != nullptr; }

// --------------------------------------------------------------------- VM

VM::VM(VmOptions options)
    : options_(options), heap_(options.gc_threshold) {
  if (options_.verify) {
    registry_.setVerifyHook([](const JClass& cls) { verifyClass(cls); });
  }
  if (options_.sampler_period_us > 0 && options_.accounting) {
    sampler_ = std::thread([this] { samplerLoop(); });
  }
  profiler_ = std::make_unique<obs::Profiler>(*this);
  if (options_.profile_hz > 0) profiler_->start(options_.profile_hz);
}

VM::~VM() {
  // Stop the profiler's sampler thread before anything it reads (the
  // thread list, the compile queue) starts unwinding. The Profiler object
  // itself survives until member teardown: guests unwinding below may
  // still acknowledge a pending sample request.
  profiler_->stop();
  shutdownAllThreads();
  // Join the mutator pool before the compiler stops: in-flight pool tasks
  // unwind via force_kill at their next poll, and a draining worker may
  // still hit an install drain point that touches engine state.
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    mutator_pool_.reset();
  }
  // Stop the background compiler first: its worker references engine state
  // and the class registry, both of which outlive the extension table that
  // owns it, but joining here keeps teardown ordering obvious.
  exec::shutdownCompileManager(*this);
  sampler_stop_.store(true, std::memory_order_release);
  if (sampler_.joinable()) sampler_.join();
  // Join spawned guest threads (they unwind via force_kill).
  std::vector<JThread*> spawned;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (auto& t : threads_) {
      if (t->os_thread.joinable()) spawned.push_back(t.get());
    }
  }
  for (JThread* t : spawned) t->os_thread.join();
}

// ---- isolates ----

Isolate* VM::createIsolate(ClassLoader* loader, const std::string& name) {
  IJVM_CHECK(loader != nullptr && !loader->isSystem(),
             "isolates attach to non-system loaders");
  std::lock_guard<std::mutex> lock(isolates_mutex_);
  auto iso = std::make_unique<Isolate>();
  iso->id = static_cast<i32>(isolates_.size());
  iso->name = name;
  iso->loader = loader;
  iso->privileged = isolates_.empty();  // the first isolate is Isolate0
  iso->memory_limit = options_.isolate_memory_limit;
  iso->thread_limit = options_.isolate_thread_limit;
  loader->attachIsolate(iso.get());
  Isolate* raw = iso.get();
  isolates_.push_back(std::move(iso));
  if (isolate0_ == nullptr) {
    isolate0_ = raw;
    // Attach the calling thread as the main guest thread of Isolate0. It
    // starts Blocked: threads only count as Running while inside the
    // interpreter (VM::invoke flips the state at the outermost call), so
    // C++ code can never stall a stop-the-world.
    std::lock_guard<std::mutex> tlock(threads_mutex_);
    main_thread_ = newThreadLocked("main", raw);
    raw->stats.threads_created.fetch_add(1, std::memory_order_relaxed);
    raw->stats.live_threads.fetch_add(1, std::memory_order_relaxed);
  }
  if (obs::traceEnabled()) {
    obs::emit(obs::Ev::IsolateStart, obs::Ph::Instant, raw->id,
              obs::internTraceName(name));
  }
  return raw;
}

Isolate* VM::isolateById(i32 id) {
  std::lock_guard<std::mutex> lock(isolates_mutex_);
  if (id < 0 || static_cast<size_t>(id) >= isolates_.size()) return nullptr;
  return isolates_[static_cast<size_t>(id)].get();
}

std::vector<Isolate*> VM::isolates() {
  std::lock_guard<std::mutex> lock(isolates_mutex_);
  std::vector<Isolate*> out;
  out.reserve(isolates_.size());
  for (auto& iso : isolates_) out.push_back(iso.get());
  return out;
}

// ---- threads ----

JThread* VM::newThreadLocked(const std::string& name, Isolate* initial) {
  auto t = std::make_unique<JThread>(*this, next_thread_id_++, name, initial);
  JThread* raw = t.get();
  threads_.push_back(std::move(t));
  safepoints_.registerThread();
  return raw;
}

JThread* VM::attachThread(const std::string& name, Isolate* initial) {
  IJVM_CHECK(initial != nullptr, "attachThread needs an isolate");
  std::lock_guard<std::mutex> lock(threads_mutex_);
  return newThreadLocked(name, initial);
}

void VM::detachThread(JThread* t) {
  t->state.store(ThreadState::Dead, std::memory_order_release);
  t->markDone();
  // The JThread record stays (reports may still reference it); its guest
  // stack is empty so it contributes no GC roots.
  t->dropAllFrames();
  t->pending_exception = nullptr;
}

std::vector<JThread*> VM::threadsSnapshot() {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  std::vector<JThread*> out;
  out.reserve(threads_.size());
  for (auto& t : threads_) out.push_back(t.get());
  return out;
}

void VM::forEachThread(const std::function<void(JThread&)>& fn) {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (auto& t : threads_) fn(*t);
}

JThread* VM::spawnThread(JThread* caller, Object* thread_obj,
                         const std::string& name) {
  Isolate* creator = caller->current_isolate.load(std::memory_order_relaxed);
  // Platform-wide cap: on a real JVM, exhausting native threads throws
  // OutOfMemoryError for *everyone* (the unprotected A5 outcome).
  if (options_.host_thread_cap > 0 &&
      live_spawned_threads_.load(std::memory_order_relaxed) >=
          options_.host_thread_cap) {
    throwGuest(caller, "java/lang/OutOfMemoryError",
               "unable to create new native thread");
    return nullptr;
  }
  // A6 defence: enforce the creator's thread limit.
  if (options_.accounting && creator->thread_limit > 0) {
    i64 live = creator->stats.live_threads.load(std::memory_order_relaxed);
    if (live >= creator->thread_limit) {
      throwGuest(caller, "java/lang/OutOfMemoryError",
                 strf("isolate '%s' exceeded its thread limit (%d)",
                      creator->name.c_str(), creator->thread_limit));
      return nullptr;
    }
  }
  creator->stats.threads_created.fetch_add(1, std::memory_order_relaxed);
  creator->stats.live_threads.fetch_add(1, std::memory_order_relaxed);

  JThread* t;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    t = newThreadLocked(name, creator);
  }
  t->thread_object = thread_obj;

  live_spawned_threads_.fetch_add(1, std::memory_order_relaxed);
  t->os_thread = std::thread([this, t, creator] {
    Object* obj = t->thread_object;
    if (obj != nullptr) {
      JMethod* run = obj->cls->resolveVirtual("run", "()V");
      if (run != nullptr) {
        invoke(t, run, {Value::ofRef(obj)});
      }
    }
    if (t->pending_exception != nullptr) {
      // Uncaught exception in a guest thread: swallow (the default JVM
      // handler prints; tests inspect Isolate stats instead).
      t->pending_exception = nullptr;
    }
    creator->stats.live_threads.fetch_sub(1, std::memory_order_relaxed);
    live_spawned_threads_.fetch_sub(1, std::memory_order_relaxed);
    t->state.store(ThreadState::Dead, std::memory_order_release);
    {
      // The GC scans thread frames and root pointers under threads_mutex_
      // (enumerateRoots), and a dying thread is not Running, so a
      // stop-the-world does not wait for it -- serialize the teardown
      // with the scan instead of racing it.
      std::lock_guard<std::mutex> lock(threads_mutex_);
      t->dropAllFrames();
      t->thread_object = nullptr;
    }
    t->markDone();
  });
  return t;
}

MutatorPool& VM::mutatorPool() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (mutator_pool_ == nullptr) {
    IJVM_CHECK(isolate0_ != nullptr,
               "mutatorPool() needs an isolate to attach workers to");
    mutator_pool_ = std::make_unique<MutatorPool>(*this, options_.mutator_threads);
  }
  return *mutator_pool_;
}

MutatorPool* VM::mutatorPoolIfStarted() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return mutator_pool_.get();
}

u64 VM::minMutatorEra() {
  return safepoints_.minCountedEra(threadsSnapshot());
}

void VM::shutdownAllThreads() {
  shutting_down_.store(true, std::memory_order_release);
  std::vector<JThread*> snapshot = threadsSnapshot();
  for (JThread* t : snapshot) {
    if (t == main_thread_) continue;
    t->force_kill.store(true, std::memory_order_release);
    t->interrupted.store(true, std::memory_order_release);
  }
}

// ---- exceptions ----

Object* VM::newException(JThread* t, const std::string& exception_class,
                         const std::string& message) {
  JClass* cls = registry_.resolve(
      t->current_isolate.load(std::memory_order_relaxed)->loader, exception_class);
  IJVM_CHECK(cls != nullptr, strf("exception class %s missing", exception_class.c_str()));
  // Bypass limit checks: an exception must be constructible even when the
  // offending isolate is over its memory budget.
  Object* exc = heap_.allocPlain(
      cls, t->current_isolate.load(std::memory_order_relaxed)->id);
  IJVM_CHECK(exc != nullptr, "host out of memory allocating exception");
  if (JField* f = cls->findField("message")) {
    if (!f->isStatic()) {
      Object* msg = heap_.allocString(
          registry_.systemLoader()->find("java/lang/String"), message,
          t->current_isolate.load(std::memory_order_relaxed)->id);
      exc->fields()[f->slot] = Value::ofRef(msg);
    }
  }
  return exc;
}

void VM::throwGuest(JThread* t, const std::string& exception_class,
                    const std::string& message) {
  t->pending_exception = newException(t, exception_class, message);
}

std::string VM::pendingMessage(JThread* t) {
  Object* exc = t->pending_exception;
  if (exc == nullptr) return {};
  std::string cls = exc->cls != nullptr ? exc->cls->name : "<null-class>";
  std::string msg;
  if (exc->cls != nullptr) {
    if (JField* f = exc->cls->findField("message"); f != nullptr && !f->isStatic()) {
      Object* s = exc->fields()[f->slot].asRef();
      if (s != nullptr && s->kind == ObjKind::String) msg = s->str();
    }
  }
  return msg.empty() ? cls : cls + ": " + msg;
}

// ---- strings ----

Object* VM::newStringObject(JThread* t, std::string chars) {
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  JClass* string_cls = registry_.systemLoader()->find("java/lang/String");
  IJVM_CHECK(string_cls != nullptr, "java/lang/String not installed");
  if (!checkMemoryLimits(t, sizeof(Object) + chars.size())) return nullptr;
  Object* s = heap_.allocString(string_cls, std::move(chars), iso->id);
  if (options_.accounting) {
    iso->stats.objects_allocated.fetch_add(1, std::memory_order_relaxed);
    iso->stats.bytes_allocated.fetch_add(s->byte_size, std::memory_order_relaxed);
    iso->stats.bytes_since_gc.fetch_add(s->byte_size, std::memory_order_relaxed);
  }
  return s;
}

Object* VM::internString(JThread* t, const std::string& chars) {
  // In isolated mode each isolate has its own map (paper section 3.1);
  // in shared mode everything interns into Isolate0's map -- which is what
  // makes the A2 lock attack possible on the baseline.
  Isolate* iso = options_.isolation
                     ? t->current_isolate.load(std::memory_order_relaxed)
                     : isolate0_;
  {
    std::lock_guard<std::mutex> lock(iso->strings_mutex);
    auto it = iso->interned_strings.find(chars);
    if (it != iso->interned_strings.end()) return it->second;
  }
  Object* s = newStringObject(t, chars);
  if (s == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(iso->strings_mutex);
  auto [it, inserted] = iso->interned_strings.emplace(chars, s);
  return it->second;
}

std::string VM::stringValue(Object* s) {
  IJVM_CHECK(s != nullptr && s->kind == ObjKind::String, "not a string object");
  return s->str();
}

// ---- allocation ----

bool VM::checkMemoryLimits(JThread* t, size_t bytes) {
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  // Paper section 4.2: allocation "tests the memory limit when an isolate
  // allocates an object" -- this check (plus the accounting increments in
  // the alloc* helpers) is the per-allocation overhead of I-JVM.
  auto over_isolate_limit = [&]() {
    if (!options_.accounting || !options_.isolation) return false;
    size_t limit = iso->memory_limit;
    if (limit == 0) return false;
    // donated_bytes_delta folds ownership donations (docs/comm.md) into
    // the held estimate before the next accounting pass re-derives the
    // charges; the signed sum is clamped at zero -- a sender that gave
    // away bytes charged before the last GC can transiently show a
    // negative correction larger than bytes_since_gc.
    i64 held = static_cast<i64>(
                   iso->stats.bytes_charged.load(std::memory_order_relaxed)) +
               static_cast<i64>(
                   iso->stats.bytes_since_gc.load(std::memory_order_relaxed)) +
               iso->stats.donated_bytes_delta.load(std::memory_order_relaxed);
    if (held < 0) held = 0;
    return static_cast<u64>(held) + bytes > limit;
  };

  if (heap_.wantsGc() || over_isolate_limit() ||
      heap_.liveBytes() + bytes > options_.heap_limit) {
    collectGarbage(t, iso);
  }
  if (over_isolate_limit()) {
    throwGuest(t, "java/lang/OutOfMemoryError",
               strf("isolate '%s' exceeded its memory limit (%zu bytes)",
                    iso->name.c_str(), iso->memory_limit));
    return false;
  }
  if (heap_.liveBytes() + bytes > options_.heap_limit) {
    throwGuest(t, "java/lang/OutOfMemoryError", "heap limit exceeded");
    return false;
  }
  return true;
}

Object* VM::allocObject(JThread* t, JClass* cls) {
  if (cls->native_factory) {
    return allocNativeObject(t, cls, cls->native_factory());
  }
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  const size_t bytes =
      sizeof(Object) + static_cast<size_t>(cls->instance_slots) * sizeof(Value);
  if (!checkMemoryLimits(t, bytes)) return nullptr;
  Object* obj = heap_.allocPlain(cls, iso->id);
  if (obj == nullptr) {
    throwGuest(t, "java/lang/OutOfMemoryError", "host allocation failed");
    return nullptr;
  }
  if (options_.accounting) {
    iso->stats.objects_allocated.fetch_add(1, std::memory_order_relaxed);
    iso->stats.bytes_allocated.fetch_add(obj->byte_size, std::memory_order_relaxed);
    iso->stats.bytes_since_gc.fetch_add(obj->byte_size, std::memory_order_relaxed);
  }
  return obj;
}

Object* VM::allocArrayObject(JThread* t, JClass* array_cls, i32 length) {
  if (length < 0) {
    throwGuest(t, "java/lang/NegativeArraySizeException", strf("%d", length));
    return nullptr;
  }
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  size_t elem = array_cls->elem_kind == Kind::Int ? 4 : 8;
  const size_t bytes = sizeof(Object) + elem * static_cast<size_t>(length);
  if (!checkMemoryLimits(t, bytes)) return nullptr;
  Object* obj = heap_.allocArray(array_cls, length, iso->id);
  if (obj == nullptr) {
    throwGuest(t, "java/lang/OutOfMemoryError", "host allocation failed");
    return nullptr;
  }
  if (options_.accounting) {
    iso->stats.objects_allocated.fetch_add(1, std::memory_order_relaxed);
    iso->stats.bytes_allocated.fetch_add(obj->byte_size, std::memory_order_relaxed);
    iso->stats.bytes_since_gc.fetch_add(obj->byte_size, std::memory_order_relaxed);
  }
  return obj;
}

Object* VM::allocNativeObject(JThread* t, JClass* cls,
                              std::unique_ptr<NativePayload> payload) {
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  const size_t bytes = sizeof(Object) + payload->byteSize();
  if (!checkMemoryLimits(t, bytes)) return nullptr;
  bool is_connection = payload->isConnection();
  Object* obj = heap_.allocNative(cls, std::move(payload), iso->id);
  if (obj == nullptr) {
    throwGuest(t, "java/lang/OutOfMemoryError", "host allocation failed");
    return nullptr;
  }
  if (options_.accounting) {
    iso->stats.objects_allocated.fetch_add(1, std::memory_order_relaxed);
    iso->stats.bytes_allocated.fetch_add(obj->byte_size, std::memory_order_relaxed);
    iso->stats.bytes_since_gc.fetch_add(obj->byte_size, std::memory_order_relaxed);
    if (is_connection) {
      iso->stats.connections_opened.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return obj;
}

Object* VM::classObject(JThread* t, JClass* cls) {
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  TaskClassMirror& mirror = cls->tcm(tcmIndex(iso));
  if (mirror.class_object != nullptr) return mirror.class_object;
  JClass* class_cls = registry_.systemLoader()->find("java/lang/Class");
  IJVM_CHECK(class_cls != nullptr, "java/lang/Class not installed");
  Object* obj = heap_.allocPlain(class_cls, iso->id);
  IJVM_CHECK(obj != nullptr, "host out of memory allocating Class object");
  // Stash the JClass* in the hidden long field so natives can get back.
  if (JField* f = class_cls->findField("__jclass"); f != nullptr && !f->isStatic()) {
    obj->fields()[f->slot] = Value::ofLong(reinterpret_cast<i64>(cls));
  }
  std::lock_guard<std::mutex> lock(clinit_mutex_);
  if (mirror.class_object == nullptr) mirror.class_object = obj;
  return mirror.class_object;
}

// ---- class initialization ----

bool VM::ensureInitialized(JThread* t, JClass* cls) {
  if (cls->is_array || cls->isSystemLib()) {
    // System-library classes share one mirror initialized eagerly at
    // install time; arrays have no statics.
    return true;
  }
  Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
  // Fast path: the initialization check the paper says cannot be removed
  // from reentrant compiled code (section 3.1).
  if (TaskClassMirror* fast = cls->tcmFast(tcmIndex(iso))) {
    if (fast->state.load(std::memory_order_acquire) ==
        TaskClassMirror::InitState::Initialized) {
      return true;
    }
  }
  TaskClassMirror& mirror = cls->tcm(tcmIndex(iso));

  std::unique_lock<std::mutex> lock(clinit_mutex_);
  for (;;) {
    switch (mirror.state) {
      case TaskClassMirror::InitState::Initialized:
        return true;
      case TaskClassMirror::InitState::Failed:
        lock.unlock();
        throwGuest(t, "java/lang/ExceptionInInitializerError", cls->name);
        return false;
      case TaskClassMirror::InitState::Running:
        if (mirror.init_thread == t) return true;  // recursive init: proceed
        {
          // Another thread is running <clinit>; wait as "blocked" so a
          // concurrent stop-the-world is not stalled by us.
          BlockedScope blocked(safepoints_, t);
          clinit_cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
        continue;
      case TaskClassMirror::InitState::Uninitialized: {
        mirror.state = TaskClassMirror::InitState::Running;
        mirror.init_thread = t;
        lock.unlock();
        // Superclass first (JLS order), then our <clinit>.
        bool ok = cls->super == nullptr || ensureInitialized(t, cls->super);
        if (ok) runClinit(t, cls, mirror, iso);
        ok = ok && t->pending_exception == nullptr;
        lock.lock();
        mirror.state = ok ? TaskClassMirror::InitState::Initialized
                          : TaskClassMirror::InitState::Failed;
        mirror.init_thread = nullptr;
        clinit_cv_.notify_all();
        return ok;
      }
    }
  }
}

void VM::runClinit(JThread* t, JClass* cls, TaskClassMirror& mirror, Isolate* iso) {
  (void)mirror;
  (void)iso;
  JMethod* clinit = cls->findDeclared("<clinit>", "()V");
  if (clinit == nullptr) return;
  invoke(t, clinit, {});
}

JClass* VM::resolveClassOrThrow(JThread* t, ClassLoader* ctx, const std::string& name) {
  JClass* cls = registry_.resolve(ctx, name);
  if (cls == nullptr) {
    throwGuest(t, "java/lang/NoClassDefFoundError", name);
  }
  return cls;
}

// ---- execution isolate ----

Isolate* VM::executionIsolate(Isolate* cur, const JMethod* m) const {
  if (!options_.isolation) return cur;
  ClassLoader* loader = m->owner->loader;
  if (loader->isSystem()) return cur;  // library code runs in the caller
  Isolate* iso = loader->isolate();
  return iso != nullptr ? iso : cur;
}

// ---- garbage collection ----


void VM::enumerateRoots(const RootSink& sink) {
  // Step 2 (paper): per-isolate roots -- interned strings, statics and
  // Class objects -- in isolate id order ("first isolate" charging).
  std::vector<Isolate*> isos = isolates();
  for (Isolate* iso : isos) {
    // A terminating isolate's statics, strings and Class objects are no
    // longer roots: "all the objects referenced by the terminating isolate
    // are reclaimed by the GC, with the exception of objects shared with
    // other bundles" (paper section 1 / 3.3).
    if (options_.isolation && !iso->isActive()) continue;
    const i32 tcm_idx = tcmIndex(iso);
    {
      std::lock_guard<std::mutex> lock(iso->strings_mutex);
      for (auto& [_, s] : iso->interned_strings) sink(s, iso->id);
    }
    registry_.forEachClass([&](JClass& cls) {
      TaskClassMirror* mirror = cls.tcmIfPresent(tcm_idx);
      if (mirror == nullptr) return;
      for (Value& v : mirror->statics) {
        if (v.kind == Kind::Ref && v.ref != nullptr) sink(v.ref, iso->id);
      }
      if (mirror->class_object != nullptr) sink(mirror->class_object, iso->id);
    });
    if (!options_.isolation) break;  // shared mode: single mirror, owned by 0
  }

  // C++-held references (OSGi service registry, channels, tests).
  {
    std::lock_guard<std::mutex> lock(globals_mutex_);
    for (GlobalRef& g : global_refs_) {
      if (g.active && g.obj != nullptr) sink(g.obj, g.isolate_id);
    }
  }

  // Step 3 (paper): thread stacks. Each frame is charged to the isolate it
  // executes in; system-library frames carry their caller's isolate, which
  // realizes "charged to the caller of the library".
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (auto& t : threads_) {
    if (t->state.load(std::memory_order_acquire) == ThreadState::Dead) continue;
    if (t->thread_object != nullptr) {
      sink(t->thread_object, t->creator_isolate->id);
    }
    if (t->pending_exception != nullptr) {
      sink(t->pending_exception,
           t->current_isolate.load(std::memory_order_relaxed)->id);
    }
    {
      // Host C++ threads mutate extra_roots without being parked by the
      // stop-the-world (see JThread::extra_roots_mutex).
      std::lock_guard<std::mutex> roots_lock(t->extra_roots_mutex);
      for (Object* o : t->extra_roots) {
        if (o != nullptr) {
          sink(o, t->current_isolate.load(std::memory_order_relaxed)->id);
        }
      }
    }
    for (size_t fi = 0; fi < t->depth(); ++fi) {
      Frame& f = t->frameAt(fi);
      const i32 iso = f.isolate != nullptr ? f.isolate->id : 0;
      for (Value& v : f.locals) {
        if (v.kind == Kind::Ref && v.ref != nullptr) sink(v.ref, iso);
      }
      for (Value& v : f.stack) {
        if (v.kind == Kind::Ref && v.ref != nullptr) sink(v.ref, iso);
      }
      if (f.sync_object != nullptr) sink(f.sync_object, iso);
    }
  }
}


GcStats VM::collectGarbage(JThread* requester, Isolate* trigger) {
  const bool self_is_guest =
      requester != nullptr &&
      requester->state.load(std::memory_order_acquire) == ThreadState::Running;
  // The GcPause span wraps the whole stop-the-world section, so the
  // SafepointStop span (emitted by stopTheWorld) nests inside it along
  // with the heap's mark/accounting/sweep spans.
  obs::TraceSpan gc_span(obs::Ev::GcPause,
                         trigger != nullptr ? trigger->id : -1,
                         /*a=*/0, obs::Lat::GcPause);
  // The driving thread does no guest work for the rest of this function;
  // the activity slot makes the sampler attribute the pause to GC (the
  // parked mutators are not Running, so they take no samples meanwhile).
  obs::ProfileActivityScope gc_act(*this, obs::SampleThreadKind::Gc,
                                   trigger != nullptr ? trigger->id : -1,
                                   "gc.collect");
  safepoints_.stopTheWorld(self_is_guest ? requester : nullptr);

  GcStats stats = heap_.collect([this](const RootSink& sink) { enumerateRoots(sink); },
                                options_.accounting_policy);
  gc_count_.fetch_add(1, std::memory_order_relaxed);

  // Step 1 (paper): usage reset, then re-derived from the charges.
  std::vector<Isolate*> isos = isolates();
  for (Isolate* iso : isos) {
    IsolateCharge charge;
    if (static_cast<size_t>(iso->id) < stats.charges.size()) {
      charge = stats.charges[static_cast<size_t>(iso->id)];
    }
    iso->stats.bytes_charged.store(charge.bytes, std::memory_order_relaxed);
    iso->stats.objects_charged.store(charge.objects, std::memory_order_relaxed);
    iso->stats.connections_charged.store(charge.connections, std::memory_order_relaxed);
    iso->stats.bytes_since_gc.store(0, std::memory_order_relaxed);
    // The recomputed charges already bill donated objects to their new
    // owner (the re-key happened strictly before this pass: donation runs
    // counted-Running, see comm/serializer.cpp), so the interim
    // correction resets together with bytes_since_gc.
    iso->stats.donated_bytes_delta.store(0, std::memory_order_relaxed);
  }
  if (options_.accounting && trigger != nullptr) {
    trigger->stats.gc_activations.fetch_add(1, std::memory_order_relaxed);
  }

  // The world is already stopped: reclaim retired tier-3 code (demoted or
  // deopt-invalidated, and no frame still executing it) while the
  // active-execution counts cannot change (docs/jit.md, "Code
  // lifecycle"). Runs *before* this collection's Dead-marking below, so a
  // killed isolate's poisoned code is retired only by the GC *after* the
  // one that declared it Dead -- the patched entries of a just-killed
  // bundle stay observable through the kill itself, deterministically.
  exec::sweepRetiredJitCode(*this);

  // Terminating isolates become Dead once no object of their classes
  // survives (paper section 3.3 last paragraph).
  for (Isolate* iso : isos) {
    if (!iso->isTerminating()) continue;
    bool has_objects = false;
    heap_.forEachObject([&](Object* o) {
      if (o->cls != nullptr && o->cls->loader != nullptr &&
          o->cls->loader->isolate() == iso) {
        has_objects = true;
      }
    });
    if (!has_objects) iso->state.store(IsolateState::Dead, std::memory_order_release);
  }

  safepoints_.resumeTheWorld(self_is_guest ? requester : nullptr);
  return stats;
}

// ---- isolate termination ----

bool VM::terminateIsolate(JThread* requester, Isolate* target) {
  if (!options_.isolation) {
    // Baseline (Sun JVM / LadyVM) behaviour: no termination support -- the
    // platform "is unable to unload the bundle, and the attack continues
    // to run" (paper section 4.3, A8).
    return false;
  }
  Isolate* req_iso = requester->current_isolate.load(std::memory_order_relaxed);
  if (!req_iso->privileged) {
    throwGuest(requester, "java/lang/SecurityException",
               "only Isolate0 may terminate isolates");
    return false;
  }
  if (target == nullptr || target->privileged) {
    throwGuest(requester, "java/lang/SecurityException",
               "cannot terminate Isolate0");
    return false;
  }
  if (!target->isActive()) return true;  // already terminating/dead

  const bool self_is_guest =
      requester->state.load(std::memory_order_acquire) == ThreadState::Running;
  obs::TraceSpan term_span(obs::Ev::IsolateTerminate, target->id);
  safepoints_.stopTheWorld(self_is_guest ? requester : nullptr);

  target->state.store(IsolateState::Terminating, std::memory_order_release);

  // (i)+(ii) of section 3.3: prevent any further entry into the isolate's
  // code. Poisoning bars the shared invoke path ("refusing to JIT"), and
  // the tier-3 entry patch swaps each compiled method's entry point for a
  // thunk that raises StoppedIsolateException ("patching compiled entry
  // points") -- see docs/jit.md.
  for (JClass* cls : target->loader->definedClasses()) {
    for (JMethod& m : cls->methods) {
      m.poisoned.store(true, std::memory_order_release);
      exec::poisonCompiledEntry(&m);
    }
  }

  // Stack patching: walk every thread's frames. A frame whose *caller*
  // belongs to the dying isolate must throw StoppedIsolateException on
  // return. Top-frame special cases per the paper.
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (auto& t : threads_) {
      if (t->state.load(std::memory_order_acquire) == ThreadState::Dead) continue;
      if (t.get() == requester && !t->hasFrames()) continue;
      const size_t nframes = t->depth();
      for (size_t i = 1; i < nframes; ++i) {
        if (t->frameAt(i - 1).isolate == target &&
            t->frameAt(i).isolate != target) {
          t->frameAt(i).kill_on_return = true;
          t->frameAt(i).kill_isolate = target->id;
        }
      }
      if (nframes > 0) {
        Frame& top = t->topFrame();
        if (top.isolate == target) {
          // Raise StoppedIsolateException at the thread's next poll.
          t->pending_stop_isolate.store(target->id, std::memory_order_release);
          // If it is blocked (sleep/wait/monitor) wake it up too.
          t->interrupted.store(true, std::memory_order_release);
        } else if (top.method != nullptr && top.method->owner->isSystemLib() &&
                   t->state.load(std::memory_order_acquire) == ThreadState::Blocked) {
          // Blocked in library code called (transitively) from the dying
          // isolate? Interrupt so I/O and sleeps unblock (Spring-style).
          bool called_from_target = false;
          for (size_t i = 0; i + 1 < nframes; ++i) {
            if (t->frameAt(i).isolate == target) {
              called_from_target = true;
              break;
            }
          }
          if (called_from_target) {
            t->interrupted.store(true, std::memory_order_release);
          }
        }
      }
    }
  }

  safepoints_.resumeTheWorld(self_is_guest ? requester : nullptr);
  return true;
}

// ---- global refs ----

GlobalRef* VM::addGlobalRef(Object* obj, Isolate* charge_to) {
  std::lock_guard<std::mutex> lock(globals_mutex_);
  for (GlobalRef& g : global_refs_) {
    if (!g.active) {
      g.obj = obj;
      g.isolate_id = charge_to != nullptr ? charge_to->id : 0;
      g.active = true;
      return &g;
    }
  }
  global_refs_.push_back(
      GlobalRef{obj, charge_to != nullptr ? charge_to->id : 0, true});
  return &global_refs_.back();
}

void VM::removeGlobalRef(GlobalRef* ref) {
  std::lock_guard<std::mutex> lock(globals_mutex_);
  ref->obj = nullptr;
  ref->active = false;
}

// ---- reporting ----

IsolateReport VM::reportFor(Isolate* iso) {
  IsolateReport r;
  r.id = iso->id;
  r.name = iso->name;
  r.state = iso->state.load(std::memory_order_acquire);
  const ResourceStats& s = iso->stats;
  r.bytes_charged = s.bytes_charged.load(std::memory_order_relaxed);
  r.objects_charged = s.objects_charged.load(std::memory_order_relaxed);
  r.connections_charged = s.connections_charged.load(std::memory_order_relaxed);
  r.objects_allocated = s.objects_allocated.load(std::memory_order_relaxed);
  r.bytes_allocated = s.bytes_allocated.load(std::memory_order_relaxed);
  r.bytes_since_gc = s.bytes_since_gc.load(std::memory_order_relaxed);
  r.bytes_donated_in = s.bytes_donated_in.load(std::memory_order_relaxed);
  r.bytes_donated_out = s.bytes_donated_out.load(std::memory_order_relaxed);
  r.objects_donated_in = s.objects_donated_in.load(std::memory_order_relaxed);
  r.objects_donated_out = s.objects_donated_out.load(std::memory_order_relaxed);
  r.donated_bytes_delta = s.donated_bytes_delta.load(std::memory_order_relaxed);
  r.threads_created = s.threads_created.load(std::memory_order_relaxed);
  r.live_threads = s.live_threads.load(std::memory_order_relaxed);
  r.gc_activations = s.gc_activations.load(std::memory_order_relaxed);
  r.cpu_samples = s.cpu_samples.load(std::memory_order_relaxed);
  r.cpu_profile_samples = s.cpu_profile_samples.load(std::memory_order_relaxed);
  r.sleeping_threads = s.sleeping_threads.load(std::memory_order_relaxed);
  r.io_bytes_read = s.io_bytes_read.load(std::memory_order_relaxed);
  r.io_bytes_written = s.io_bytes_written.load(std::memory_order_relaxed);
  r.calls_in = s.calls_in.load(std::memory_order_relaxed);
  r.method_invocations = s.method_invocations.load(std::memory_order_relaxed);
  r.loop_back_edges = s.loop_back_edges.load(std::memory_order_relaxed);
  r.jit_methods_compiled = s.jit_methods_compiled.load(std::memory_order_relaxed);
  r.jit_methods_demoted = s.jit_methods_demoted.load(std::memory_order_relaxed);
  r.jit_code_bytes = s.jit_code_bytes.load(std::memory_order_relaxed);
  r.osr_refused_transfers = s.osr_refused_transfers.load(std::memory_order_relaxed);
  r.jit_recompile_requests =
      s.jit_recompile_requests.load(std::memory_order_relaxed);
  r.jit_payoff_demotions =
      s.jit_payoff_demotions.load(std::memory_order_relaxed);
  return r;
}

std::vector<IsolateReport> VM::reportAll() {
  std::vector<IsolateReport> out;
  for (Isolate* iso : isolates()) out.push_back(reportFor(iso));
  return out;
}

// ---- extensions ----

void VM::setExtension(const std::string& key, std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(ext_mutex_);
  extensions_[key] = std::move(value);
}

std::shared_ptr<void> VM::getExtension(const std::string& key) {
  std::lock_guard<std::mutex> lock(ext_mutex_);
  auto it = extensions_.find(key);
  return it == extensions_.end() ? nullptr : it->second;
}

// ---- CPU sampler ----

void VM::samplerLoop() {
  // Paper section 3.2 ("CPU time"): instead of timing every inter-isolate
  // call (two syscalls + a lock), regularly sample the isolate reference of
  // running threads.
  const auto period = std::chrono::microseconds(options_.sampler_period_us);
  while (!sampler_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (auto& t : threads_) {
      if (t->state.load(std::memory_order_acquire) != ThreadState::Running) continue;
      Isolate* iso = t->current_isolate.load(std::memory_order_relaxed);
      if (iso != nullptr) {
        iso->stats.cpu_samples.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace ijvm
