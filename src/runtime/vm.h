// The I-JVM virtual machine.
//
// Owns the class registry, the heap, the isolates, the guest threads, the
// safepoint machinery and the CPU sampler; implements the interpreter
// (interpreter.cpp), per-isolate class initialization via task class
// mirrors, thread migration, resource accounting, GC orchestration and
// isolate termination.
//
// Typical embedding (see examples/quickstart.cpp):
//
//   VM vm;                                      // isolated mode
//   installSystemLibrary(vm);                   // stdlib module
//   ClassLoader* app = vm.registry().newLoader("app");
//   app->define(...);                           // bundle classes
//   Isolate* iso0 = vm.createIsolate(app, "app");  // first = Isolate0
//   Value r = vm.callStatic(vm.mainThread(), "app/Main", "main", "()I", {});
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "classes/class_loader.h"
#include "heap/heap.h"
#include "runtime/isolate.h"
#include "runtime/jthread.h"
#include "runtime/options.h"
#include "runtime/safepoint.h"

namespace ijvm {

class MutatorPool;

namespace obs {
class Profiler;
}

// A C++-held guest reference that keeps its object alive across GCs and
// charges it to `isolate_id` during the accounting pass. Created via
// VM::addGlobalRef, removed via VM::removeGlobalRef (or VM teardown).
struct GlobalRef {
  Object* obj = nullptr;
  i32 isolate_id = 0;
  bool active = false;
};

// Snapshot of one isolate's counters (admin/robustness reporting).
struct IsolateReport {
  i32 id = 0;
  std::string name;
  IsolateState state = IsolateState::Active;
  u64 bytes_charged = 0;
  u64 objects_charged = 0;
  u64 connections_charged = 0;
  u64 objects_allocated = 0;
  u64 bytes_allocated = 0;
  u64 bytes_since_gc = 0;  // allocated since the last accounting pass
  u64 bytes_donated_in = 0;     // ownership received via transferGraph
  u64 bytes_donated_out = 0;    // ownership given away via transferGraph
  u64 objects_donated_in = 0;
  u64 objects_donated_out = 0;
  i64 donated_bytes_delta = 0;  // signed held-bytes correction since last GC
  u64 threads_created = 0;
  i64 live_threads = 0;
  u64 gc_activations = 0;
  u64 cpu_samples = 0;
  u64 cpu_profile_samples = 0;
  i64 sleeping_threads = 0;
  u64 io_bytes_read = 0;
  u64 io_bytes_written = 0;
  u64 calls_in = 0;
  u64 method_invocations = 0;
  u64 loop_back_edges = 0;
  u64 jit_methods_compiled = 0;
  u64 jit_methods_demoted = 0;
  i64 jit_code_bytes = 0;
  u64 osr_refused_transfers = 0;
  u64 jit_recompile_requests = 0;
  u64 jit_payoff_demotions = 0;
};

class VM {
 public:
  explicit VM(VmOptions options = VmOptions{});
  ~VM();

  VM(const VM&) = delete;
  VM& operator=(const VM&) = delete;

  const VmOptions& options() const { return options_; }
  ClassRegistry& registry() { return registry_; }
  Heap& heap() { return heap_; }
  SafepointController& safepoints() { return safepoints_; }

  // ---- isolates ----
  // Creates an isolate for a (non-system) class loader. The first isolate
  // created becomes the privileged Isolate0 (paper section 3.1) and the
  // calling thread is attached to it as the main guest thread.
  Isolate* createIsolate(ClassLoader* loader, const std::string& name);
  Isolate* isolate0() { return isolate0_; }
  Isolate* isolateById(i32 id);
  std::vector<Isolate*> isolates();
  // TCM index for an isolate: its id in isolated mode, always 0 in shared
  // mode (single copy of statics -- the baseline JVM behaviour).
  i32 tcmIndex(const Isolate* iso) const {
    return options_.isolation ? iso->id : 0;
  }

  // ---- threads ----
  JThread* mainThread() { return main_thread_; }
  // Attaches an extra C++ thread as a guest thread (used by comm models).
  JThread* attachThread(const std::string& name, Isolate* initial);
  void detachThread(JThread* t);
  // Spawns a guest thread executing `thread_obj.run()`. Enforces the
  // creator's thread limit (throws on the *calling* thread).
  JThread* spawnThread(JThread* caller, Object* thread_obj, const std::string& name);
  std::vector<JThread*> threadsSnapshot();
  // Runs `fn` for every guest thread record under the thread-list lock
  // (records are never freed before ~VM, but the list itself grows
  // concurrently). Used by the sampling profiler's tick.
  void forEachThread(const std::function<void(JThread&)>& fn);

  // ---- sampling profiler (obs/profiler.h) ----
  // Never null after construction (an inert stub under
  // -DIJVM_DISABLE_PROFILER); the sampler thread runs only when
  // options().profile_hz > 0.
  obs::Profiler* profiler() { return profiler_.get(); }

  // ---- mutator pool (src/runtime/mutator_pool.h) ----
  // The platform's worker pool for running bundle tasks concurrently
  // (options().mutator_threads workers; 0 = hardware_concurrency). Created
  // lazily on first use; torn down by ~VM after guest threads are
  // cancelled. Never null once returned.
  MutatorPool& mutatorPool();
  // The pool if it was ever created, else nullptr (reporting).
  MutatorPool* mutatorPoolIfStarted();

  // ---- safepoint-era reclamation support (exec/code_cache.cpp) ----
  // Smallest safepoint era published by any counted (Running) guest
  // thread; ~0ull when every thread is blocked. See docs/concurrency.md.
  u64 minMutatorEra();

  // ---- invocation (from C++) ----
  // On guest exception: returns a null-ref Value and leaves the exception in
  // t->pending_exception (use pendingMessage/clearPending).
  Value callStatic(JThread* t, const std::string& cls, const std::string& method,
                   const std::string& descriptor, std::vector<Value> args);
  // Resolves `cls` through an explicit loader (needed to reach classes that
  // are private to a bundle from host code; in-guest resolution always uses
  // the executing class's own loader).
  Value callStaticIn(JThread* t, ClassLoader* loader, const std::string& cls,
                     const std::string& method, const std::string& descriptor,
                     std::vector<Value> args);
  Value callVirtual(JThread* t, Object* receiver, const std::string& method,
                    const std::string& descriptor, std::vector<Value> args);
  Value invoke(JThread* t, JMethod* m, std::vector<Value> args);
  // Hot call path used by the interpreter: arguments are read directly from
  // the caller's operand stack (no per-call allocation). `args` must stay
  // valid and GC-visible for the duration of the call.
  Value invokeCore(JThread* t, JMethod* m, const Value* args, i32 nargs);

  std::string pendingMessage(JThread* t);
  void clearPending(JThread* t) { t->pending_exception = nullptr; }

  // ---- exceptions ----
  // Allocates a guest throwable and sets it pending on `t`.
  void throwGuest(JThread* t, const std::string& exception_class,
                  const std::string& message);
  Object* newException(JThread* t, const std::string& exception_class,
                       const std::string& message);

  // ---- strings ----
  Object* internString(JThread* t, const std::string& chars);      // per-isolate
  Object* newStringObject(JThread* t, std::string chars);          // fresh
  static std::string stringValue(Object* s);                        // payload

  // ---- objects ----
  Object* allocObject(JThread* t, JClass* cls);        // checks limits, may GC
  Object* allocArrayObject(JThread* t, JClass* array_cls, i32 length);
  Object* allocNativeObject(JThread* t, JClass* cls,
                            std::unique_ptr<NativePayload> payload);
  Monitor* monitorOf(Object* obj) { return heap_.monitorFor(obj); }

  // Per-isolate java/lang/Class object of `cls` (lives in the TCM).
  Object* classObject(JThread* t, JClass* cls);

  // ---- class initialization & resolution ----
  // Ensures <clinit> ran for (cls, current isolate of t). Returns false if
  // a guest exception is pending.
  bool ensureInitialized(JThread* t, JClass* cls);
  JClass* resolveClassOrThrow(JThread* t, ClassLoader* ctx, const std::string& name);

  // ---- the isolate a method executes in for a caller currently in `cur` ----
  Isolate* executionIsolate(Isolate* cur, const JMethod* m) const;

  // ---- garbage collection ----
  // Stops the world, runs mark-sweep + the accounting pass, updates
  // per-isolate charges, detects dead isolates. `trigger` (may be null) is
  // charged one GC activation.
  GcStats collectGarbage(JThread* requester, Isolate* trigger);
  u64 gcCount() const { return gc_count_.load(std::memory_order_relaxed); }

  // ---- isolate termination (paper section 3.3) ----
  // Requires `requester` to run with Isolate0 privilege. Stops the world,
  // poisons the target's methods, patches every thread's stack, interrupts
  // blocked top frames, marks the isolate Terminating.
  // Returns false (and throws SecurityException on t) without privilege.
  bool terminateIsolate(JThread* requester, Isolate* target);

  // ---- shutdown ----
  // Cancels all guest threads (used by ~VM and the A-series attacks
  // teardown). Safe to call multiple times.
  void shutdownAllThreads();

  // ---- global refs ----
  GlobalRef* addGlobalRef(Object* obj, Isolate* charge_to);
  void removeGlobalRef(GlobalRef* ref);

  // ---- reporting ----
  IsolateReport reportFor(Isolate* iso);
  std::vector<IsolateReport> reportAll();

  // ---- named extension slots (used by stdlib channels, OSGi) ----
  void setExtension(const std::string& key, std::shared_ptr<void> value);
  std::shared_ptr<void> getExtension(const std::string& key);

  // ---- interpreter entry (internal; used by invoke) ----
  // Dispatches to the engine selected by options().exec_engine.
  Value interpret(JThread* t, Frame& frame);
  // The original single-switch interpreter (kept for differential testing
  // against the quickening engine in src/exec/).
  Value interpretClassic(JThread* t, Frame& frame);

  // Statistics for benchmarks.
  u64 interIsolateCalls() const { return inter_isolate_calls_.load(std::memory_order_relaxed); }

 private:
  friend struct NativeCtx;

  void samplerLoop();
  void enumerateRoots(const RootSink& sink);
  // Checks per-isolate + global memory limits before/after an allocation of
  // `bytes`; may force a GC; returns false after throwing OutOfMemoryError.
  bool checkMemoryLimits(JThread* t, size_t bytes);
  void runClinit(JThread* t, JClass* cls, TaskClassMirror& mirror, Isolate* iso);
  JThread* newThreadLocked(const std::string& name, Isolate* initial);

  VmOptions options_;
  ClassRegistry registry_;
  Heap heap_;
  SafepointController safepoints_;

  std::mutex isolates_mutex_;
  std::deque<std::unique_ptr<Isolate>> isolates_;
  Isolate* isolate0_ = nullptr;

  std::mutex threads_mutex_;
  std::deque<std::unique_ptr<JThread>> threads_;
  JThread* main_thread_ = nullptr;
  i32 next_thread_id_ = 1;

  std::mutex clinit_mutex_;
  std::condition_variable clinit_cv_;

  std::mutex globals_mutex_;
  std::deque<GlobalRef> global_refs_;

  std::mutex ext_mutex_;
  std::unordered_map<std::string, std::shared_ptr<void>> extensions_;

  std::atomic<u64> gc_count_{0};
  std::atomic<u64> inter_isolate_calls_{0};
  std::atomic<i64> live_spawned_threads_{0};
  std::atomic<bool> shutting_down_{false};

  std::thread sampler_;
  std::atomic<bool> sampler_stop_{false};

  std::mutex pool_mutex_;  // guards lazy pool creation
  std::unique_ptr<MutatorPool> mutator_pool_;

  // Declared last so it is destroyed first -- but only after ~VM's body
  // has joined every guest thread (a guest mid-IJVM_PROFILE_POLL may call
  // into it until then). Its own sampler thread is stopped at the top of
  // ~VM, before any subsystem it reads (threads, compile queue) unwinds.
  std::unique_ptr<obs::Profiler> profiler_;
};

// Name of the exception used by isolate termination. Lives in java/lang so
// bundles can catch it like any Throwable -- except frames of the isolate
// being terminated, whose handlers are skipped.
inline constexpr const char* kStoppedIsolateException =
    "java/lang/StoppedIsolateException";

}  // namespace ijvm
