#include "runtime/safepoint.h"

#include "obs/trace.h"
#include "runtime/jthread.h"


namespace ijvm {


BlockedScope::BlockedScope(SafepointController& sp, JThread* t) : sp_(sp), t_(t) {
  if (t_ != nullptr) {
    was_running_ = t_->state.load(std::memory_order_acquire) == ThreadState::Running;
    if (was_running_) t_->state.store(ThreadState::Blocked, std::memory_order_release);
  }
  sp_.enterBlocked(t_);
}

BlockedScope::~BlockedScope() {
  sp_.exitBlocked(t_);
  if (t_ != nullptr && was_running_) {
    t_->state.store(ThreadState::Running, std::memory_order_release);
  }
}

void SafepointController::registerThread() {
  // Threads register in the Blocked state; exitBlocked() makes them Running.
}

void SafepointController::unregisterThread() {
  // Symmetric: threads unregister after enterBlocked().
}

void SafepointController::poll() {
  std::unique_lock<std::mutex> lock(m_);
  if (!stop_flag_.load(std::memory_order_relaxed)) return;
  --running_;
  cv_stopped_.notify_all();
  cv_resume_.wait(lock, [this] { return !stop_flag_.load(std::memory_order_relaxed); });
  ++running_;
}

void SafepointController::enterBlocked(JThread* t) {
  std::lock_guard<std::mutex> lock(m_);
  --running_;
  if (t != nullptr) t->safepoint_counted = false;
  cv_stopped_.notify_all();
}

void SafepointController::exitBlocked(JThread* t) {
  std::unique_lock<std::mutex> lock(m_);
  cv_resume_.wait(lock, [this] { return !stop_flag_.load(std::memory_order_relaxed); });
  ++running_;
  if (t != nullptr) {
    // Republish before the thread can re-enter compiled code: a reclaim
    // scan that ran while we were blocked did not count us; any era it
    // armed is visible here because its scan released m_ before we
    // acquired it.
    t->safepoint_counted = true;
    t->publishEra(era_.load(std::memory_order_acquire));
  }
}

u64 SafepointController::minCountedEra(const std::vector<JThread*>& threads) {
  std::lock_guard<std::mutex> lock(m_);
  u64 min_era = ~0ull;
  for (JThread* t : threads) {
    if (!t->safepoint_counted) continue;  // blocked => quiescent for the gate
    const u64 e = t->safepoint_era.load(std::memory_order_acquire);
    if (e < min_era) min_era = e;
  }
  return min_era;
}

void SafepointController::stopTheWorld(JThread* self_guest) {
  // A guest requester must leave the Running count *before* contending for
  // the operation lock: if another stop-the-world is already in progress,
  // we would otherwise block on op_mutex_ while still counted as running,
  // and the current stopper would wait for us forever. Our guest frames
  // are stable here (we are between interpreter instructions), so being
  // treated as parked is safe.
  if (self_guest != nullptr) enterBlocked(self_guest);
  op_mutex_.lock();
  // Time-to-stop (obs/trace.h): the span opens when this stopper *owns*
  // the operation -- queueing behind another stop-the-world is not this
  // pause's fault -- and closes when the last mutator parks.
  const u64 t0 = obs::traceNowNs();
  obs::emitAt(t0, obs::Ev::SafepointStop, obs::Ph::Begin, -1);
  std::unique_lock<std::mutex> lock(m_);
  stop_flag_.store(true, std::memory_order_release);
  cv_stopped_.wait(lock, [this] { return running_ == 0; });
  const u64 t1 = obs::traceNowNs();
  obs::emitAt(t1, obs::Ev::SafepointStop, obs::Ph::End, -1);
  obs::recordLatency(obs::Lat::SafepointTimeToStop, t1 - t0);
}

void SafepointController::resumeTheWorld(JThread* self_guest) {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_flag_.store(false, std::memory_order_release);
    cv_resume_.notify_all();
  }
  op_mutex_.unlock();
  // Re-enter the Running count (waits if the next operation already
  // started).
  if (self_guest != nullptr) exitBlocked(self_guest);
}

}  // namespace ijvm
