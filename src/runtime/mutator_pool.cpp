// Mutator pool implementation. Contract in mutator_pool.h /
// docs/concurrency.md.
#include "runtime/mutator_pool.h"

#include "obs/trace.h"
#include "runtime/isolate.h"
#include "runtime/jthread.h"
#include "runtime/vm.h"
#include "support/strf.h"

namespace ijvm {

MutatorPool::MutatorPool(VM& vm, u32 workers) : vm_(vm) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  queues_.reserve(workers);
  for (u32 i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (u32 i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

MutatorPool::~MutatorPool() { shutdown(); }

void MutatorPool::submit(Task task, Isolate* iso) {
  const size_t n = queues_.size();
  const size_t home = next_queue_.fetch_add(1, std::memory_order_relaxed) % n;
  {
    // The stop_ check and the push share idle_mutex_ so they order strictly
    // against shutdown() (which flips stop_ under the lock) and against a
    // parking worker's recheck in workerLoop(): either that recheck sees
    // this task, or the worker is already waiting when we notify below.
    std::lock_guard<std::mutex> lock(idle_mutex_);
    if (stop_) return;  // after shutdown(): dropped (contract in the header)
    {
      std::lock_guard<std::mutex> qlock(queues_[home]->m);
      queues_[home]->dq.push_back(Slot{std::move(task), iso});
    }
    ++submitted_;
  }
  idle_cv_.notify_one();
}

bool MutatorPool::anyQueued() {
  for (const std::unique_ptr<WorkerQueue>& q : queues_) {
    std::lock_guard<std::mutex> lock(q->m);
    if (!q->dq.empty()) return true;
  }
  return false;
}

bool MutatorPool::take(size_t index, Slot& out) {
  const size_t n = queues_.size();
  {
    WorkerQueue& own = *queues_[index];
    std::lock_guard<std::mutex> lock(own.m);
    if (!own.dq.empty()) {
      out = std::move(own.dq.front());
      own.dq.pop_front();
      return true;
    }
  }
  // Steal the *coldest* queued task from a victim (back of its deque).
  for (size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(index + k) % n];
    std::lock_guard<std::mutex> lock(victim.m);
    if (!victim.dq.empty()) {
      out = std::move(victim.dq.back());
      victim.dq.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void MutatorPool::workerLoop(size_t index) {
  obs::setTraceThreadName(strf("mutator-%zu", index));
  JThread* self =
      vm_.attachThread(strf("pool-mutator-%zu", index), vm_.isolate0());
  u64 taken_local = 0;  // tasks this worker ran (cheap per-worker telemetry)
  for (;;) {
    Slot slot;
    if (!take(index, slot)) {
      std::unique_lock<std::mutex> lock(idle_mutex_);
      // Recheck under the lock before parking: submit() pushes while
      // holding idle_mutex_, so a task that raced our failed take() is
      // visible here, and one pushed after we wait() is covered by
      // submit()'s notify. Without this recheck the notify could fire
      // before we wait and the task would be stranded (lost wakeup).
      if (anyQueued()) continue;
      // Honor stop_ only once the queues are verifiably empty, so
      // shutdown() keeps its contract that already-queued tasks still run.
      if (stop_) break;
      idle_cv_.wait(lock);
      continue;
    }
    ++taken_local;
    const i32 iso_id = slot.iso != nullptr ? slot.iso->id : -1;
    self->scheduled_isolate.store(slot.iso, std::memory_order_release);
    {
      obs::TraceSpan span(obs::Ev::MutatorTask, iso_id, /*a=*/index);
      slot.task(self);
    }
    self->scheduled_isolate.store(nullptr, std::memory_order_release);
    completed_.fetch_add(1, std::memory_order_release);
    {
      // Lock so a drain() that just read submitted_ cannot miss the wakeup.
      std::lock_guard<std::mutex> lock(idle_mutex_);
    }
    drain_cv_.notify_all();
    // More work may have been queued while we ran: poke one sibling so a
    // burst submitted during a long task spreads without waiting for the
    // next submit().
    idle_cv_.notify_one();
  }
  (void)taken_local;
  vm_.detachThread(self);
}

void MutatorPool::drain() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  const u64 target = submitted_;
  drain_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) >= target;
  });
}

void MutatorPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    if (stop_) return;
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace ijvm
