#include "comm/comm.h"

#include <chrono>

#include "bytecode/builder.h"
#include "comm/serializer.h"
#include "heap/object.h"
#include "stdlib/system_library.h"
#include "support/strf.h"
#include "workloads/bundles.h"

namespace ijvm {

namespace {

i64 nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Client bundle with two identical call loops: one against a bundle-local
// counter, one against the remote (provider) service.
BundleDescriptor makeCommClient() {
  BundleDescriptor desc;
  desc.symbolic_name = "comm.client";
  const std::string local = "comm_client/LocalCounter";
  const std::string runner = "comm_client/Runner";

  {
    ClassBuilder cb(local);
    cb.addInterface("api/Counter");
    cb.field("n", "I");
    auto& inc = cb.method("inc", "()I");
    inc.aload(0).aload(0).getfield(local, "n", "I").iconst(1).iadd();
    inc.putfield(local, "n", "I");
    inc.aload(0).getfield(local, "n", "I").ireturn();
    auto& get = cb.method("get", "()I");
    get.aload(0).getfield(local, "n", "I").ireturn();
    auto& add = cb.method("add", "(I)I");
    add.aload(0).aload(0).getfield(local, "n", "I").iload(1).iadd();
    add.putfield(local, "n", "I");
    add.aload(0).getfield(local, "n", "I").ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(runner);
    cb.field("localSvc", "Lapi/Counter;", ACC_PUBLIC | ACC_STATIC);
    cb.field("remoteSvc", "Lapi/Counter;", ACC_PUBLIC | ACC_STATIC);

    auto make_loop = [&](const char* name, const char* field) {
      auto& m = cb.method(name, "(I)I", ACC_PUBLIC | ACC_STATIC);
      Label loop = m.newLabel();
      Label done = m.newLabel();
      m.iconst(0).istore(1);
      m.bind(loop).iload(0).ifle(done);
      m.getstatic(runner, field, "Lapi/Counter;");
      m.invokeinterface("api/Counter", "inc", "()I").istore(1);
      m.iinc(0, -1).gotoLabel(loop);
      m.bind(done).iload(1).ireturn();
    };
    make_loop("localMany", "localSvc");
    make_loop("remoteMany", "remoteSvc");
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("comm_client/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.newDefault(local);
    start.putstatic(runner, "localSvc", "Lapi/Counter;");
    start.aload(1).ldcStr("comm.counter");
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast("api/Counter");
    start.putstatic(runner, "remoteSvc", "Lapi/Counter;");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = "comm_client/Activator";
  }
  return desc;
}

}  // namespace

void CommHarness::Mailbox::push(i64 v) {
  {
    std::lock_guard<std::mutex> lock(m);
    messages.push_back(v);
  }
  cv.notify_all();
}

bool CommHarness::Mailbox::pop(i64* out, const std::atomic<bool>* cancel) {
  std::unique_lock<std::mutex> lock(m);
  for (;;) {
    if (!messages.empty()) {
      *out = messages.front();
      messages.pop_front();
      return true;
    }
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return false;
    cv.wait_for(lock, std::chrono::microseconds(200));
  }
}

CommHarness::CommHarness(Framework& fw) : fw_(fw), vm_(fw.vm()) {
  defineCounterApi(fw_);

  // Message classes, visible to everyone (framework loader).
  ClassLoader* shared = fw_.frameworkIsolate()->loader;
  if ((request_class_ = shared->findLocal("comm/Request")) == nullptr) {
    ClassBuilder cb("comm/Request");
    cb.field("method", "Ljava/lang/String;");
    cb.field("seq", "I");
    request_class_ = shared->define(cb.build());
  }
  if ((reply_class_ = shared->findLocal("comm/Reply")) == nullptr) {
    ClassBuilder cb("comm/Reply");
    cb.field("value", "I");
    cb.field("status", "Ljava/lang/String;");
    reply_class_ = shared->define(cb.build());
  }

  provider_ = fw_.install(makeCounterProvider("comm.provider", "comm.counter"));
  IJVM_CHECK(fw_.start(provider_), "comm provider failed to start");
  client_ = fw_.install(makeCommClient());
  IJVM_CHECK(fw_.start(client_), "comm client failed to start");

  inc_server_ = std::thread([this] { incommunicadoServer(); });
  rmi_channel_ = channelHub(vm_)->connect("rmi.comm.counter");
  rmi_server_ = std::thread([this] { rmiServer(); });
}

CommHarness::~CommHarness() {
  stop_.store(true, std::memory_order_release);
  if (rmi_channel_ != nullptr) rmi_channel_->close();
  if (inc_server_.joinable()) inc_server_.join();
  if (rmi_server_.joinable()) rmi_server_.join();
}

Object* CommHarness::serviceObject() {
  Object* svc = fw_.getService("comm.counter");
  IJVM_CHECK(svc != nullptr, "comm.counter service missing");
  return svc;
}

i64 CommHarness::runLocal(i32 n) {
  JThread* t = vm_.mainThread();
  const i64 start = nowNs();
  Value r = vm_.callStaticIn(t, client_->loader(), "comm_client/Runner",
                             "localMany", "(I)I", {Value::ofInt(n)});
  const i64 elapsed = nowNs() - start;
  IJVM_CHECK(t->pending_exception == nullptr, vm_.pendingMessage(t));
  last_value_ = r.asInt();
  return elapsed;
}

i64 CommHarness::runIJvm(i32 n) {
  JThread* t = vm_.mainThread();
  const i64 start = nowNs();
  Value r = vm_.callStaticIn(t, client_->loader(), "comm_client/Runner",
                             "remoteMany", "(I)I", {Value::ofInt(n)});
  const i64 elapsed = nowNs() - start;
  IJVM_CHECK(t->pending_exception == nullptr, vm_.pendingMessage(t));
  last_value_ = r.asInt();
  return elapsed;
}

void CommHarness::incommunicadoServer() {
  // Stands for the receiver-side of an Isolate Link: runs inside the
  // provider isolate, deep-copies each request, dispatches, replies.
  JThread* t = vm_.attachThread("incommunicado-server", provider_->isolate());
  for (;;) {
    i64 msg = 0;
    if (!inc_requests_.pop(&msg, &stop_)) break;
    auto* ref = reinterpret_cast<GlobalRef*>(msg);
    Object* request = ref->obj;
    // Donation-aware transfer (docs/comm.md): the client relinquished the
    // request when it pushed the GlobalRef, so eligible payload nodes are
    // re-keyed to this isolate instead of copied; with comm_zero_copy off
    // this is exactly the old deepCopy.
    Object* copy =
        transferGraph(vm_, t, vm_.isolateById(ref->isolate_id), request);
    vm_.removeGlobalRef(ref);
    i32 result = -1;
    if (copy != nullptr && t->pending_exception == nullptr) {
      JField* f = request_class_->findField("method");
      Object* mname = copy->fields()[f->slot].asRef();
      if (mname != nullptr && mname->str() == "inc") {
        Value r = vm_.callVirtual(t, serviceObject(), "inc", "()I", {});
        if (t->pending_exception == nullptr) result = r.asInt();
      }
    }
    t->pending_exception = nullptr;
    inc_replies_.push(result);
  }
  vm_.detachThread(t);
}

i64 CommHarness::runIncommunicado(i32 n) {
  JThread* t = vm_.mainThread();
  JField* method_f = request_class_->findField("method");
  JField* seq_f = request_class_->findField("seq");
  const i64 start = nowNs();
  i32 result = 0;
  for (i32 i = 0; i < n; ++i) {
    // Build the per-call request object (client side), hand it over, wait.
    LocalRootScope roots(t);
    Object* request = roots.add(vm_.allocObject(t, request_class_));
    IJVM_CHECK(request != nullptr, "request alloc failed");
    Object* mname = roots.add(vm_.newStringObject(t, "inc"));
    request->fields()[method_f->slot] = Value::ofRef(mname);
    request->fields()[seq_f->slot] = Value::ofInt(i);
    GlobalRef* ref = vm_.addGlobalRef(request, fw_.frameworkIsolate());
    inc_requests_.push(reinterpret_cast<i64>(ref));
    i64 reply = 0;
    IJVM_CHECK(inc_replies_.pop(&reply, &stop_), "incommunicado cancelled");
    result = static_cast<i32>(reply);
  }
  const i64 elapsed = nowNs() - start;
  last_value_ = result;
  return elapsed;
}

void CommHarness::rmiServer() {
  JThread* t = vm_.attachThread("rmi-server", provider_->isolate());
  auto server = channelHub(vm_)->accept("rmi.comm.counter", &stop_);
  if (server == nullptr) {
    vm_.detachThread(t);
    return;
  }
  JField* method_f = request_class_->findField("method");
  JField* value_f = reply_class_->findField("value");
  JField* status_f = reply_class_->findField("status");
  for (;;) {
    // Length-prefixed framing, as an RMI transport would do over TCP.
    std::string header;
    if (!server->readFully(&header, 10, &stop_)) break;
    size_t len = static_cast<size_t>(std::stoll(header));
    std::string payload;
    if (!server->readFully(&payload, len, &stop_)) break;

    Object* request = deserializeGraph(vm_, t, payload);
    i32 result = -1;
    if (request != nullptr && t->pending_exception == nullptr) {
      Object* mname = request->fields()[method_f->slot].asRef();
      if (mname != nullptr && mname->str() == "inc") {
        Value r = vm_.callVirtual(t, serviceObject(), "inc", "()I", {});
        if (t->pending_exception == nullptr) result = r.asInt();
      }
    }
    t->pending_exception = nullptr;

    LocalRootScope roots(t);
    Object* reply = roots.add(vm_.allocObject(t, reply_class_));
    reply->fields()[value_f->slot] = Value::ofInt(result);
    reply->fields()[status_f->slot] =
        Value::ofRef(roots.add(vm_.newStringObject(t, "OK")));
    std::string encoded = serializeGraph(vm_, reply);
    const std::string frames[2] = {strf("%09zu\n", encoded.size()),
                                   std::move(encoded)};
    server->writev(frames, 2);
  }
  vm_.detachThread(t);
}

i64 CommHarness::runRmi(i32 n) {
  JThread* t = vm_.mainThread();
  JField* method_f = request_class_->findField("method");
  JField* seq_f = request_class_->findField("seq");
  JField* value_f = reply_class_->findField("value");
  const i64 start = nowNs();
  i32 result = 0;
  for (i32 i = 0; i < n; ++i) {
    LocalRootScope roots(t);
    Object* request = roots.add(vm_.allocObject(t, request_class_));
    IJVM_CHECK(request != nullptr, "request alloc failed");
    Object* mname = roots.add(vm_.newStringObject(t, "inc"));
    request->fields()[method_f->slot] = Value::ofRef(mname);
    request->fields()[seq_f->slot] = Value::ofInt(i);
    std::string encoded = serializeGraph(vm_, request);
    const std::string frames[2] = {strf("%09zu\n", encoded.size()),
                                   std::move(encoded)};
    rmi_channel_->writev(frames, 2);

    std::string header;
    IJVM_CHECK(rmi_channel_->readFully(&header, 10, &stop_), "rmi cancelled");
    size_t len = static_cast<size_t>(std::stoll(header));
    std::string payload;
    IJVM_CHECK(rmi_channel_->readFully(&payload, len, &stop_), "rmi cancelled");
    Object* reply = deserializeGraph(vm_, t, payload);
    IJVM_CHECK(reply != nullptr && t->pending_exception == nullptr,
               vm_.pendingMessage(t));
    result = reply->fields()[value_f->slot].asInt();
  }
  const i64 elapsed = nowNs() - start;
  last_value_ = result;
  return elapsed;
}

}  // namespace ijvm
