// The four communication models of Table 1.
//
//   local          -- intra-isolate method call (the "Local method" column)
//   ijvm           -- inter-isolate direct call with thread migration
//   incommunicado  -- Isolate-style message passing: per-call request object,
//                     deep copy into the receiver's isolate, two thread
//                     handoffs (the Incommunicado column)
//   rmi            -- full RMI-style stack: verbose stream serialization with
//                     checksums, length-prefixed framing over an in-memory
//                     byte pipe, a dispatcher thread, and serialization of
//                     the reply (the "RMI local call" column)
//
// All four invoke the same api/Counter.inc() service method 200 times (the
// paper's paint-demo drag produces ~200 inter-bundle calls).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <thread>

#include "osgi/framework.h"
#include "stdlib/channels.h"

namespace ijvm {

class CommHarness {
 public:
  // Installs a provider bundle (service "comm.counter") and a client bundle,
  // defines the shared api and message classes, and starts the
  // incommunicado + RMI server threads.
  explicit CommHarness(Framework& fw);
  ~CommHarness();

  CommHarness(const CommHarness&) = delete;
  CommHarness& operator=(const CommHarness&) = delete;

  // Each runs `n` calls and returns the total wall time in nanoseconds.
  // The counter value advances by n each time (validated by tests).
  i64 runLocal(i32 n);
  i64 runIJvm(i32 n);
  i64 runIncommunicado(i32 n);
  i64 runRmi(i32 n);

  // Counter observed by the most recent run (for validation).
  i32 lastCounterValue() const { return last_value_; }

  Bundle* provider() { return provider_; }
  Bundle* client() { return client_; }

 private:
  struct Mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::deque<i64> messages;
    void push(i64 v);
    // Returns false when cancelled.
    bool pop(i64* out, const std::atomic<bool>* cancel);
  };

  void incommunicadoServer();
  void rmiServer();
  Object* serviceObject();

  Framework& fw_;
  VM& vm_;
  Bundle* provider_ = nullptr;
  Bundle* client_ = nullptr;
  JClass* request_class_ = nullptr;
  JClass* reply_class_ = nullptr;

  std::atomic<bool> stop_{false};
  Mailbox inc_requests_;  // carries GlobalRef* of request objects
  Mailbox inc_replies_;   // carries int results
  std::thread inc_server_;

  std::shared_ptr<ByteChannel> rmi_channel_;
  std::thread rmi_server_;

  i32 last_value_ = 0;
};

}  // namespace ijvm
