// Object-graph copying, donation and serialization between isolates.
//
// Three fidelity levels, matching the isolate-communication models of
// Table 1 plus the zero-copy extension (docs/comm.md):
//  * transferGraph -- donation-aware graph transfer into the receiver's
//                     isolate: primitive arrays and strings the sender has
//                     relinquished are re-keyed to the receiver (ownership
//                     donation, charge transfer through ResourceStats)
//                     instead of copied; everything else deep-copies;
//  * deepCopy      -- direct graph copy into the receiver's isolate, the
//                     Incommunicado model (no byte encoding, but allocation
//                     and copying per call, plus thread synchronization);
//  * serialize /   -- verbose stream encoding with per-field tags and a
//    deserialize     checksum, the RMI model (everything deepCopy does plus
//                     encode/decode and transport).
//
// Supported graphs: null, strings, primitive arrays, reference arrays and
// Plain objects (fields by declared order). Shared nodes and cycles are
// preserved via back-references. Native-backed objects are not supported
// (they would not survive a real process boundary either).
#pragma once

#include <string>

#include "runtime/vm.h"

namespace ijvm {

// Outcome counters of one transferGraph call (also traced as
// Ev::CommDonate and the Lat::DonatedBytes histogram, docs/comm.md).
struct TransferStats {
  u64 objects_donated = 0;
  u64 bytes_donated = 0;
  u64 objects_copied = 0;
  u64 bytes_copied = 0;
};

// Moves the graph rooted at `root` from `sender` into the isolate
// `receiver` currently runs in. Donation-eligible nodes (docs/comm.md:
// primitive arrays and non-interned strings created by `sender`, no
// monitor, both isolates Active, options().comm_zero_copy set and the
// path not compiled out) are re-keyed to the receiver with their bytes
// charged to it -- sender credited, receiver debited, atomically with
// respect to GC and terminateIsolate; every other node deep-copies.
//
// Contract: the sender must have relinquished the message -- after the
// call it must not read or write any object reachable from `root` (the
// returned graph may alias donated originals). Allocations for copied
// nodes are charged to the receiver (it performs the copy). Returns
// nullptr and sets a pending guest exception on failure; a failed or
// partial transfer never leaks charge (donated-then-dropped nodes are
// receiver-charged garbage reclaimed by the next GC).
Object* transferGraph(VM& vm, JThread* receiver, Isolate* sender, Object* root,
                      TransferStats* stats = nullptr);

// Copies `src` into the isolate `receiver` currently runs in. Allocations
// are charged to the receiver (it performs the copy). Returns nullptr and
// sets a pending guest exception on failure.
Object* deepCopy(VM& vm, JThread* receiver, Object* src);

// Serializes the graph rooted at `root` (read-only, no allocation).
std::string serializeGraph(VM& vm, Object* root);

// Rebuilds the graph in the receiver's isolate; class names resolve through
// the receiver's current loader. Returns nullptr (pending exception) on
// malformed input or unresolvable classes.
Object* deserializeGraph(VM& vm, JThread* receiver, const std::string& bytes);

}  // namespace ijvm
