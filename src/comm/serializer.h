// Object-graph copying and serialization between isolates.
//
// Two fidelity levels, matching the two isolate-communication baselines of
// Table 1:
//  * deepCopy     -- direct graph copy into the receiver's isolate, the
//                    Incommunicado model (no byte encoding, but allocation
//                    and copying per call, plus thread synchronization);
//  * serialize /  -- verbose stream encoding with per-field tags and a
//    deserialize    checksum, the RMI model (everything deepCopy does plus
//                    encode/decode and transport).
//
// Supported graphs: null, strings, primitive arrays, reference arrays and
// Plain objects (fields by declared order). Shared nodes and cycles are
// preserved via back-references. Native-backed objects are not supported
// (they would not survive a real process boundary either).
#pragma once

#include <string>

#include "runtime/vm.h"

namespace ijvm {

// Copies `src` into the isolate `receiver` currently runs in. Allocations
// are charged to the receiver (it performs the copy). Returns nullptr and
// sets a pending guest exception on failure.
Object* deepCopy(VM& vm, JThread* receiver, Object* src);

// Serializes the graph rooted at `root` (read-only, no allocation).
std::string serializeGraph(VM& vm, Object* root);

// Rebuilds the graph in the receiver's isolate; class names resolve through
// the receiver's current loader. Returns nullptr (pending exception) on
// malformed input or unresolvable classes.
Object* deserializeGraph(VM& vm, JThread* receiver, const std::string& bytes);

}  // namespace ijvm
