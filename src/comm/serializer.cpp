#include "comm/serializer.h"

#include <cstring>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "heap/object.h"
#include "obs/trace.h"
#include "support/strf.h"

namespace ijvm {

namespace {

// Instance fields of `cls` in a stable order (superclass first).
std::vector<JField*> instanceFields(JClass* cls) {
  std::vector<JField*> out;
  std::vector<JClass*> chain;
  for (JClass* c = cls; c != nullptr; c = c->super) chain.push_back(c);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (JField& f : (*it)->fields) {
      if (!f.isStatic()) out.push_back(&f);
    }
  }
  return out;
}

// Brackets straight-line host code so it counts as a Running mutator:
// while counted, no stop-the-world operation (GC accounting pass,
// terminateIsolate) can complete, so the bracketed code is atomic with
// respect to both. Attached host threads (comm servers, pool embedders)
// sit in Blocked between guest calls and are NOT parked by a
// stop-the-world, so flipping them counted is the only way to exclude the
// collector; a thread already Running is already counted and needs no
// transition. The bracketed code must never poll, block or allocate.
class CountedScope {
 public:
  CountedScope(VM& vm, JThread* t)
      : sp_(vm.safepoints()),
        t_(t),
        was_blocked_(t->state.load(std::memory_order_acquire) !=
                     ThreadState::Running) {
    if (was_blocked_) sp_.exitBlocked(t_);
  }
  ~CountedScope() {
    if (was_blocked_) sp_.enterBlocked(t_);
  }
  CountedScope(const CountedScope&) = delete;
  CountedScope& operator=(const CountedScope&) = delete;

 private:
  SafepointController& sp_;
  JThread* t_;
  const bool was_blocked_;
};

// True when `o` sits in `iso`'s interned-string table. Interning only
// ever inserts a freshly allocated string (VM::internString), so an
// object that is not interned now can never become interned later -- the
// check is stable without holding the lock across the donation.
bool isInternedIn(Isolate* iso, Object* o) {
  std::lock_guard<std::mutex> lock(iso->strings_mutex);
  auto it = iso->interned_strings.find(o->str());
  return it != iso->interned_strings.end() && it->second == o;
}

// The shared copy/donate walker behind deepCopy and transferGraph.
// `sender` == nullptr disables donation (pure deep copy).
Object* copyOrTransfer(VM& vm, JThread* receiver, Isolate* sender,
                       Object* src, TransferStats* stats) {
  if (src == nullptr) return nullptr;
  std::unordered_map<Object*, Object*> copies;
  LocalRootScope roots(receiver);
  Isolate* recv_iso = receiver->current_isolate.load(std::memory_order_relaxed);

  bool donate_enabled = false;
#ifndef IJVM_DISABLE_ZERO_COPY
  donate_enabled = vm.options().comm_zero_copy && vm.options().isolation &&
                   sender != nullptr && sender != recv_iso;
#else
  (void)sender;
#endif

  // Field/element path to the node being visited, for error reporting
  // ("<root>.payload[3]").
  std::vector<std::string> path;
  auto pathString = [&]() {
    std::string p = "<root>";
    for (const std::string& seg : path) p += seg;
    return p;
  };

  // Donates `o` (leaf kinds only): re-keys it to the receiver and moves
  // its bytes from the sender's account to the receiver's. The decisive
  // checks repeat inside a CountedScope so the re-key + charge transfer
  // cannot interleave with a GC's charge recomputation or with
  // terminateIsolate (docs/comm.md, "Donation vs termination"). Returns
  // nullptr when ineligible; the caller falls back to copying.
  auto tryDonate = [&](Object* o) -> Object* {
    // Cheap conservative pre-checks (racy reads are fine; the decisive
    // repeat is inside the bracket).
    if (o->creator_isolate != sender->id || o->monitor != nullptr) {
      return nullptr;
    }
    if (o->kind == ObjKind::String && isInternedIn(sender, o)) return nullptr;
    CountedScope counted(vm, receiver);
    if (!sender->isActive() || !recv_iso->isActive()) return nullptr;
    if (o->creator_isolate != sender->id || o->monitor != nullptr) {
      return nullptr;
    }
    o->creator_isolate = recv_iso->id;
    const u64 bytes = o->byte_size;
    if (vm.options().accounting) {
      // Debit the receiver before crediting the sender so a concurrent
      // memory-limit check never observes the bytes as unowned.
      recv_iso->stats.donated_bytes_delta.fetch_add(
          static_cast<i64>(bytes), std::memory_order_relaxed);
      sender->stats.donated_bytes_delta.fetch_sub(
          static_cast<i64>(bytes), std::memory_order_relaxed);
      recv_iso->stats.bytes_donated_in.fetch_add(bytes, std::memory_order_relaxed);
      sender->stats.bytes_donated_out.fetch_add(bytes, std::memory_order_relaxed);
      recv_iso->stats.objects_donated_in.fetch_add(1, std::memory_order_relaxed);
      sender->stats.objects_donated_out.fetch_add(1, std::memory_order_relaxed);
    }
    if (stats != nullptr) {
      stats->objects_donated += 1;
      stats->bytes_donated += bytes;
    }
    return o;
  };

  std::function<Object*(Object*)> walk = [&](Object* o) -> Object* {
    if (o == nullptr) return nullptr;
    if (auto it = copies.find(o); it != copies.end()) return it->second;
    // Donation fast path: only leaf kinds (primitive arrays, strings) are
    // eligible, so a successful donation never recurses.
    if (donate_enabled &&
        (o->kind == ObjKind::String || o->kind == ObjKind::ArrayInt ||
         o->kind == ObjKind::ArrayLong || o->kind == ObjKind::ArrayDouble)) {
      if (Object* d = tryDonate(o)) {
        copies.emplace(o, d);
        roots.add(d);
        return d;
      }
    }
    Object* dup = nullptr;
    switch (o->kind) {
      case ObjKind::String:
        dup = vm.newStringObject(receiver, o->str());
        break;
      case ObjKind::ArrayInt:
      case ObjKind::ArrayLong:
      case ObjKind::ArrayDouble: {
        dup = vm.allocArrayObject(receiver, o->cls, o->length);
        if (dup != nullptr && o->length > 0) {
          size_t elem = o->kind == ObjKind::ArrayInt ? sizeof(i32) : sizeof(i64);
          std::memcpy(dup->intElems(), o->intElems(),
                      elem * static_cast<size_t>(o->length));
        }
        break;
      }
      case ObjKind::ArrayRef: {
        dup = vm.allocArrayObject(receiver, o->cls, o->length);
        if (dup != nullptr) {
          copies.emplace(o, dup);
          roots.add(dup);
          for (i32 i = 0; i < o->length; ++i) {
            path.push_back(strf("[%d]", i));
            dup->refElems()[i] = walk(o->refElems()[i]);
            path.pop_back();
            if (receiver->pending_exception != nullptr) return nullptr;
          }
          if (stats != nullptr) {
            stats->objects_copied += 1;
            stats->bytes_copied += dup->byte_size;
          }
          return dup;
        }
        break;
      }
      case ObjKind::Plain: {
        dup = vm.allocObject(receiver, o->cls);
        if (dup != nullptr) {
          copies.emplace(o, dup);
          roots.add(dup);
          for (JField* f : instanceFields(o->cls)) {
            Value v = o->fields()[f->slot];
            if (v.kind == Kind::Ref) {
              path.push_back("." + f->name);
              dup->fields()[f->slot] = Value::ofRef(walk(v.ref));
              path.pop_back();
              if (receiver->pending_exception != nullptr) return nullptr;
            } else {
              dup->fields()[f->slot] = v;
            }
          }
          if (stats != nullptr) {
            stats->objects_copied += 1;
            stats->bytes_copied += dup->byte_size;
          }
          return dup;
        }
        break;
      }
      case ObjKind::Native: {
        Isolate* owner = vm.isolateById(o->creator_isolate);
        vm.throwGuest(
            receiver, "java/lang/IllegalArgumentException",
            strf("cannot copy native-backed object: %s (owned by isolate "
                 "'%s' #%d) at %s",
                 o->cls->name.c_str(),
                 owner != nullptr ? owner->name.c_str() : "?",
                 o->creator_isolate, pathString().c_str()));
        return nullptr;
      }
    }
    if (dup == nullptr) {
      if (receiver->pending_exception == nullptr) {
        vm.throwGuest(receiver, "java/lang/OutOfMemoryError", "deepCopy");
      }
      return nullptr;
    }
    copies.emplace(o, dup);
    roots.add(dup);
    if (stats != nullptr) {
      stats->objects_copied += 1;
      stats->bytes_copied += dup->byte_size;
    }
    return dup;
  };

  return walk(src);
}

}  // namespace

Object* deepCopy(VM& vm, JThread* receiver, Object* src) {
  return copyOrTransfer(vm, receiver, /*sender=*/nullptr, src, nullptr);
}

Object* transferGraph(VM& vm, JThread* receiver, Isolate* sender, Object* root,
                      TransferStats* stats) {
  TransferStats local;
  if (stats == nullptr) stats = &local;
  Object* out = copyOrTransfer(vm, receiver, sender, root, stats);
  if (stats->objects_donated > 0 && obs::traceEnabled()) {
    Isolate* recv_iso =
        receiver->current_isolate.load(std::memory_order_relaxed);
    obs::emit(obs::Ev::CommDonate, obs::Ph::Instant, recv_iso->id,
              stats->bytes_donated, stats->objects_donated);
    obs::recordLatency(obs::Lat::DonatedBytes, stats->bytes_donated);
  }
  return out;
}

// ------------------------------------------------------------- serialize

namespace {

class Writer {
 public:
  void tag(const char* t) { out_ << t << ' '; }
  void num(i64 v) { out_ << v << ' '; }
  void dbl(double v) { out_ << strf("%.17g", v) << ' '; }
  void str(const std::string& s) {
    out_ << s.size() << ':' << s << ' ';
  }
  std::string finish() {
    std::string body = out_.str();
    // RMI-style integrity footer: a checksum over the payload.
    u32 sum = 0;
    for (unsigned char c : body) sum = sum * 131 + c;
    return strf("IJSER1 %zu %u\n", body.size(), sum) + body;
  }

 private:
  std::ostringstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  bool open() {
    if (s_.rfind("IJSER1 ", 0) != 0) return false;
    pos_ = 7;
    i64 len = num();
    u32 sum = static_cast<u32>(num());
    if (s_[pos_] != '\n') return false;
    ++pos_;
    if (pos_ + static_cast<size_t>(len) != s_.size()) return false;
    u32 actual = 0;
    for (size_t i = pos_; i < s_.size(); ++i) {
      actual = actual * 131 + static_cast<unsigned char>(s_[i]);
    }
    return actual == sum;
  }

  std::string word() {
    skipSpace();
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '\n') ++pos_;
    return s_.substr(start, pos_ - start);
  }
  i64 num() {
    std::string w = word();
    return w.empty() ? 0 : std::stoll(w);
  }
  double dbl() {
    std::string w = word();
    return w.empty() ? 0 : std::stod(w);
  }
  std::string str() {
    skipSpace();
    size_t colon = s_.find(':', pos_);
    if (colon == std::string::npos) {
      ok_ = false;
      return {};
    }
    size_t len = static_cast<size_t>(std::stoll(s_.substr(pos_, colon - pos_)));
    pos_ = colon + 1;
    if (pos_ + len > s_.size()) {
      ok_ = false;
      return {};
    }
    std::string out = s_.substr(pos_, len);
    pos_ += len;
    return out;
  }
  bool ok() const { return ok_; }

 private:
  void skipSpace() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n')) ++pos_;
  }
  const std::string& s_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string serializeGraph(VM& vm, Object* root) {
  (void)vm;
  Writer w;
  std::unordered_map<Object*, i64> ids;
  i64 next_id = 0;

  std::function<void(Object*)> emit = [&](Object* o) {
    if (o == nullptr) {
      w.tag("NULL");
      return;
    }
    if (auto it = ids.find(o); it != ids.end()) {
      w.tag("BACK");
      w.num(it->second);
      return;
    }
    const i64 id = next_id++;
    ids.emplace(o, id);
    switch (o->kind) {
      case ObjKind::String:
        w.tag("STR");
        w.num(id);
        w.str(o->str());
        break;
      case ObjKind::ArrayInt:
        w.tag("ARI");
        w.num(id);
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) w.num(o->intElems()[i]);
        break;
      case ObjKind::ArrayLong:
        w.tag("ARL");
        w.num(id);
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) w.num(o->longElems()[i]);
        break;
      case ObjKind::ArrayDouble:
        w.tag("ARD");
        w.num(id);
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) w.dbl(o->doubleElems()[i]);
        break;
      case ObjKind::ArrayRef:
        w.tag("ARR");
        w.num(id);
        w.str(o->cls->elem_class != nullptr ? o->cls->elem_class->name
                                            : "java/lang/Object");
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) emit(o->refElems()[i]);
        break;
      case ObjKind::Plain: {
        std::vector<JField*> fields = instanceFields(o->cls);
        w.tag("OBJ");
        w.num(id);
        w.str(o->cls->name);
        w.num(static_cast<i64>(fields.size()));
        for (JField* f : fields) {
          Value v = o->fields()[f->slot];
          switch (v.kind) {
            case Kind::Int:
              w.tag("I");
              w.num(v.asInt());
              break;
            case Kind::Long:
              w.tag("J");
              w.num(v.asLong());
              break;
            case Kind::Double:
              w.tag("D");
              w.dbl(v.asDouble());
              break;
            default:
              w.tag("R");
              emit(v.asRef());
              break;
          }
        }
        break;
      }
      case ObjKind::Native:
        // Not serializable; encode as null (callers validate beforehand).
        w.tag("NULL");
        break;
    }
  };

  emit(root);
  return w.finish();
}

Object* deserializeGraph(VM& vm, JThread* receiver, const std::string& bytes) {
  Reader r(bytes);
  if (!r.open()) {
    vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                  "corrupt serialized stream");
    return nullptr;
  }
  std::unordered_map<i64, Object*> ids;
  LocalRootScope roots(receiver);
  Isolate* iso = receiver->current_isolate.load(std::memory_order_relaxed);

  std::function<Object*()> parse = [&]() -> Object* {
    std::string tag = r.word();
    if (!r.ok()) return nullptr;
    if (tag == "NULL") return nullptr;
    if (tag == "BACK") {
      i64 id = r.num();
      auto it = ids.find(id);
      return it == ids.end() ? nullptr : it->second;
    }
    if (tag == "STR") {
      i64 id = r.num();
      Object* s = vm.newStringObject(receiver, r.str());
      if (s != nullptr) {
        ids.emplace(id, s);
        roots.add(s);
      }
      return s;
    }
    if (tag == "ARI" || tag == "ARL" || tag == "ARD") {
      i64 id = r.num();
      i32 len = static_cast<i32>(r.num());
      const char* cls_name = tag == "ARI" ? "[I" : (tag == "ARL" ? "[J" : "[D");
      JClass* cls = vm.registry().arrayClass(cls_name);
      Object* arr = vm.allocArrayObject(receiver, cls, len);
      if (arr == nullptr) return nullptr;
      ids.emplace(id, arr);
      roots.add(arr);
      for (i32 i = 0; i < len; ++i) {
        if (tag == "ARI") {
          arr->intElems()[i] = static_cast<i32>(r.num());
        } else if (tag == "ARL") {
          arr->longElems()[i] = r.num();
        } else {
          arr->doubleElems()[i] = r.dbl();
        }
      }
      return arr;
    }
    if (tag == "ARR") {
      i64 id = r.num();
      std::string elem_name = r.str();
      i32 len = static_cast<i32>(r.num());
      JClass* cls =
          vm.registry().resolve(iso->loader, "[L" + elem_name + ";");
      if (cls == nullptr) {
        vm.throwGuest(receiver, "java/lang/NoClassDefFoundError", elem_name);
        return nullptr;
      }
      Object* arr = vm.allocArrayObject(receiver, cls, len);
      if (arr == nullptr) return nullptr;
      ids.emplace(id, arr);
      roots.add(arr);
      for (i32 i = 0; i < len; ++i) {
        arr->refElems()[i] = parse();
        if (receiver->pending_exception != nullptr) return nullptr;
      }
      return arr;
    }
    if (tag == "OBJ") {
      i64 id = r.num();
      std::string cls_name = r.str();
      i64 nfields = r.num();
      JClass* cls = vm.registry().resolve(iso->loader, cls_name);
      if (cls == nullptr) {
        vm.throwGuest(receiver, "java/lang/NoClassDefFoundError", cls_name);
        return nullptr;
      }
      Object* obj = vm.allocObject(receiver, cls);
      if (obj == nullptr) return nullptr;
      ids.emplace(id, obj);
      roots.add(obj);
      std::vector<JField*> fields = instanceFields(cls);
      if (static_cast<i64>(fields.size()) != nfields) {
        vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                      "field count mismatch for " + cls_name);
        return nullptr;
      }
      for (JField* f : fields) {
        std::string kind = r.word();
        if (kind == "I") {
          obj->fields()[f->slot] = Value::ofInt(static_cast<i32>(r.num()));
        } else if (kind == "J") {
          obj->fields()[f->slot] = Value::ofLong(r.num());
        } else if (kind == "D") {
          obj->fields()[f->slot] = Value::ofDouble(r.dbl());
        } else if (kind == "R") {
          obj->fields()[f->slot] = Value::ofRef(parse());
          if (receiver->pending_exception != nullptr) return nullptr;
        } else {
          vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                        "bad field tag '" + kind + "'");
          return nullptr;
        }
      }
      return obj;
    }
    vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                  "bad stream tag '" + tag + "'");
    return nullptr;
  };

  Object* result = parse();
  if (!r.ok() && receiver->pending_exception == nullptr) {
    vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                  "truncated serialized stream");
    return nullptr;
  }
  return result;
}

}  // namespace ijvm
