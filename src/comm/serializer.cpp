#include "comm/serializer.h"

#include <cstring>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "heap/object.h"
#include "support/strf.h"

namespace ijvm {

namespace {

// Instance fields of `cls` in a stable order (superclass first).
std::vector<JField*> instanceFields(JClass* cls) {
  std::vector<JField*> out;
  std::vector<JClass*> chain;
  for (JClass* c = cls; c != nullptr; c = c->super) chain.push_back(c);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (JField& f : (*it)->fields) {
      if (!f.isStatic()) out.push_back(&f);
    }
  }
  return out;
}

}  // namespace

Object* deepCopy(VM& vm, JThread* receiver, Object* src) {
  if (src == nullptr) return nullptr;
  std::unordered_map<Object*, Object*> copies;
  LocalRootScope roots(receiver);

  std::function<Object*(Object*)> copy = [&](Object* o) -> Object* {
    if (o == nullptr) return nullptr;
    if (auto it = copies.find(o); it != copies.end()) return it->second;
    Object* dup = nullptr;
    switch (o->kind) {
      case ObjKind::String:
        dup = vm.newStringObject(receiver, o->str());
        break;
      case ObjKind::ArrayInt:
      case ObjKind::ArrayLong:
      case ObjKind::ArrayDouble: {
        dup = vm.allocArrayObject(receiver, o->cls, o->length);
        if (dup != nullptr && o->length > 0) {
          size_t elem = o->kind == ObjKind::ArrayInt ? sizeof(i32) : sizeof(i64);
          std::memcpy(dup->intElems(), o->intElems(),
                      elem * static_cast<size_t>(o->length));
        }
        break;
      }
      case ObjKind::ArrayRef: {
        dup = vm.allocArrayObject(receiver, o->cls, o->length);
        if (dup != nullptr) {
          copies.emplace(o, dup);
          roots.add(dup);
          for (i32 i = 0; i < o->length; ++i) {
            dup->refElems()[i] = copy(o->refElems()[i]);
            if (receiver->pending_exception != nullptr) return nullptr;
          }
          return dup;
        }
        break;
      }
      case ObjKind::Plain: {
        dup = vm.allocObject(receiver, o->cls);
        if (dup != nullptr) {
          copies.emplace(o, dup);
          roots.add(dup);
          for (JField* f : instanceFields(o->cls)) {
            Value v = o->fields()[f->slot];
            if (v.kind == Kind::Ref) {
              dup->fields()[f->slot] = Value::ofRef(copy(v.ref));
              if (receiver->pending_exception != nullptr) return nullptr;
            } else {
              dup->fields()[f->slot] = v;
            }
          }
          return dup;
        }
        break;
      }
      case ObjKind::Native:
        vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                      "cannot copy native-backed object: " + o->cls->name);
        return nullptr;
    }
    if (dup == nullptr) {
      if (receiver->pending_exception == nullptr) {
        vm.throwGuest(receiver, "java/lang/OutOfMemoryError", "deepCopy");
      }
      return nullptr;
    }
    copies.emplace(o, dup);
    roots.add(dup);
    return dup;
  };

  return copy(src);
}

// ------------------------------------------------------------- serialize

namespace {

class Writer {
 public:
  void tag(const char* t) { out_ << t << ' '; }
  void num(i64 v) { out_ << v << ' '; }
  void dbl(double v) { out_ << strf("%.17g", v) << ' '; }
  void str(const std::string& s) {
    out_ << s.size() << ':' << s << ' ';
  }
  std::string finish() {
    std::string body = out_.str();
    // RMI-style integrity footer: a checksum over the payload.
    u32 sum = 0;
    for (unsigned char c : body) sum = sum * 131 + c;
    return strf("IJSER1 %zu %u\n", body.size(), sum) + body;
  }

 private:
  std::ostringstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  bool open() {
    if (s_.rfind("IJSER1 ", 0) != 0) return false;
    pos_ = 7;
    i64 len = num();
    u32 sum = static_cast<u32>(num());
    if (s_[pos_] != '\n') return false;
    ++pos_;
    if (pos_ + static_cast<size_t>(len) != s_.size()) return false;
    u32 actual = 0;
    for (size_t i = pos_; i < s_.size(); ++i) {
      actual = actual * 131 + static_cast<unsigned char>(s_[i]);
    }
    return actual == sum;
  }

  std::string word() {
    skipSpace();
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ' && s_[pos_] != '\n') ++pos_;
    return s_.substr(start, pos_ - start);
  }
  i64 num() {
    std::string w = word();
    return w.empty() ? 0 : std::stoll(w);
  }
  double dbl() {
    std::string w = word();
    return w.empty() ? 0 : std::stod(w);
  }
  std::string str() {
    skipSpace();
    size_t colon = s_.find(':', pos_);
    if (colon == std::string::npos) {
      ok_ = false;
      return {};
    }
    size_t len = static_cast<size_t>(std::stoll(s_.substr(pos_, colon - pos_)));
    pos_ = colon + 1;
    if (pos_ + len > s_.size()) {
      ok_ = false;
      return {};
    }
    std::string out = s_.substr(pos_, len);
    pos_ += len;
    return out;
  }
  bool ok() const { return ok_; }

 private:
  void skipSpace() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n')) ++pos_;
  }
  const std::string& s_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string serializeGraph(VM& vm, Object* root) {
  (void)vm;
  Writer w;
  std::unordered_map<Object*, i64> ids;
  i64 next_id = 0;

  std::function<void(Object*)> emit = [&](Object* o) {
    if (o == nullptr) {
      w.tag("NULL");
      return;
    }
    if (auto it = ids.find(o); it != ids.end()) {
      w.tag("BACK");
      w.num(it->second);
      return;
    }
    const i64 id = next_id++;
    ids.emplace(o, id);
    switch (o->kind) {
      case ObjKind::String:
        w.tag("STR");
        w.num(id);
        w.str(o->str());
        break;
      case ObjKind::ArrayInt:
        w.tag("ARI");
        w.num(id);
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) w.num(o->intElems()[i]);
        break;
      case ObjKind::ArrayLong:
        w.tag("ARL");
        w.num(id);
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) w.num(o->longElems()[i]);
        break;
      case ObjKind::ArrayDouble:
        w.tag("ARD");
        w.num(id);
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) w.dbl(o->doubleElems()[i]);
        break;
      case ObjKind::ArrayRef:
        w.tag("ARR");
        w.num(id);
        w.str(o->cls->elem_class != nullptr ? o->cls->elem_class->name
                                            : "java/lang/Object");
        w.num(o->length);
        for (i32 i = 0; i < o->length; ++i) emit(o->refElems()[i]);
        break;
      case ObjKind::Plain: {
        std::vector<JField*> fields = instanceFields(o->cls);
        w.tag("OBJ");
        w.num(id);
        w.str(o->cls->name);
        w.num(static_cast<i64>(fields.size()));
        for (JField* f : fields) {
          Value v = o->fields()[f->slot];
          switch (v.kind) {
            case Kind::Int:
              w.tag("I");
              w.num(v.asInt());
              break;
            case Kind::Long:
              w.tag("J");
              w.num(v.asLong());
              break;
            case Kind::Double:
              w.tag("D");
              w.dbl(v.asDouble());
              break;
            default:
              w.tag("R");
              emit(v.asRef());
              break;
          }
        }
        break;
      }
      case ObjKind::Native:
        // Not serializable; encode as null (callers validate beforehand).
        w.tag("NULL");
        break;
    }
  };

  emit(root);
  return w.finish();
}

Object* deserializeGraph(VM& vm, JThread* receiver, const std::string& bytes) {
  Reader r(bytes);
  if (!r.open()) {
    vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                  "corrupt serialized stream");
    return nullptr;
  }
  std::unordered_map<i64, Object*> ids;
  LocalRootScope roots(receiver);
  Isolate* iso = receiver->current_isolate.load(std::memory_order_relaxed);

  std::function<Object*()> parse = [&]() -> Object* {
    std::string tag = r.word();
    if (!r.ok()) return nullptr;
    if (tag == "NULL") return nullptr;
    if (tag == "BACK") {
      i64 id = r.num();
      auto it = ids.find(id);
      return it == ids.end() ? nullptr : it->second;
    }
    if (tag == "STR") {
      i64 id = r.num();
      Object* s = vm.newStringObject(receiver, r.str());
      if (s != nullptr) {
        ids.emplace(id, s);
        roots.add(s);
      }
      return s;
    }
    if (tag == "ARI" || tag == "ARL" || tag == "ARD") {
      i64 id = r.num();
      i32 len = static_cast<i32>(r.num());
      const char* cls_name = tag == "ARI" ? "[I" : (tag == "ARL" ? "[J" : "[D");
      JClass* cls = vm.registry().arrayClass(cls_name);
      Object* arr = vm.allocArrayObject(receiver, cls, len);
      if (arr == nullptr) return nullptr;
      ids.emplace(id, arr);
      roots.add(arr);
      for (i32 i = 0; i < len; ++i) {
        if (tag == "ARI") {
          arr->intElems()[i] = static_cast<i32>(r.num());
        } else if (tag == "ARL") {
          arr->longElems()[i] = r.num();
        } else {
          arr->doubleElems()[i] = r.dbl();
        }
      }
      return arr;
    }
    if (tag == "ARR") {
      i64 id = r.num();
      std::string elem_name = r.str();
      i32 len = static_cast<i32>(r.num());
      JClass* cls =
          vm.registry().resolve(iso->loader, "[L" + elem_name + ";");
      if (cls == nullptr) {
        vm.throwGuest(receiver, "java/lang/NoClassDefFoundError", elem_name);
        return nullptr;
      }
      Object* arr = vm.allocArrayObject(receiver, cls, len);
      if (arr == nullptr) return nullptr;
      ids.emplace(id, arr);
      roots.add(arr);
      for (i32 i = 0; i < len; ++i) {
        arr->refElems()[i] = parse();
        if (receiver->pending_exception != nullptr) return nullptr;
      }
      return arr;
    }
    if (tag == "OBJ") {
      i64 id = r.num();
      std::string cls_name = r.str();
      i64 nfields = r.num();
      JClass* cls = vm.registry().resolve(iso->loader, cls_name);
      if (cls == nullptr) {
        vm.throwGuest(receiver, "java/lang/NoClassDefFoundError", cls_name);
        return nullptr;
      }
      Object* obj = vm.allocObject(receiver, cls);
      if (obj == nullptr) return nullptr;
      ids.emplace(id, obj);
      roots.add(obj);
      std::vector<JField*> fields = instanceFields(cls);
      if (static_cast<i64>(fields.size()) != nfields) {
        vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                      "field count mismatch for " + cls_name);
        return nullptr;
      }
      for (JField* f : fields) {
        std::string kind = r.word();
        if (kind == "I") {
          obj->fields()[f->slot] = Value::ofInt(static_cast<i32>(r.num()));
        } else if (kind == "J") {
          obj->fields()[f->slot] = Value::ofLong(r.num());
        } else if (kind == "D") {
          obj->fields()[f->slot] = Value::ofDouble(r.dbl());
        } else if (kind == "R") {
          obj->fields()[f->slot] = Value::ofRef(parse());
          if (receiver->pending_exception != nullptr) return nullptr;
        } else {
          vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                        "bad field tag '" + kind + "'");
          return nullptr;
        }
      }
      return obj;
    }
    vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                  "bad stream tag '" + tag + "'");
    return nullptr;
  };

  Object* result = parse();
  if (!r.ok() && receiver->pending_exception == nullptr) {
    vm.throwGuest(receiver, "java/lang/IllegalArgumentException",
                  "truncated serialized stream");
    return nullptr;
  }
  return result;
}

}  // namespace ijvm
