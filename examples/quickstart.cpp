// Quickstart: boot I-JVM + the OSGi framework, install two bundles, make
// inter-bundle service calls, inspect per-bundle resource accounting.
//
//   build/examples/quickstart
#include <cstdio>

#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

using namespace ijvm;

int main() {
  // 1. Boot the VM in isolated (I-JVM) mode and install the guest system
  //    library. The framework's class loader becomes the privileged
  //    Isolate0.
  VM vm;
  installSystemLibrary(vm);
  Framework fw(vm);
  defineCounterApi(fw);

  // 2. Install and start a provider bundle (registers the "counter"
  //    service) and a client bundle (binds it in its activator). Each
  //    bundle gets its own class loader, hence its own isolate.
  Bundle* provider = fw.install(makeCounterProvider("demoprov", "counter"));
  Bundle* client = fw.install(makeCounterClient("democli", "counter"));
  fw.start(provider);
  fw.start(client);
  std::printf("bundles: %s(#%d, isolate %d), %s(#%d, isolate %d)\n",
              provider->symbolicName().c_str(), provider->id(),
              provider->isolate()->id, client->symbolicName().c_str(),
              client->id(), client->isolate()->id);

  // 3. Drive 1000 inter-bundle calls: main thread -> client isolate ->
  //    provider isolate. The thread migrates on each call and returns; no
  //    copying, no RPC -- the service object is shared directly.
  JThread* t = vm.mainThread();
  Value r = vm.callStaticIn(t, client->loader(), "democli/Client",
                            "callMany", "(I)I", {Value::ofInt(1000)});
  if (t->pending_exception != nullptr) {
    std::printf("guest exception: %s\n", vm.pendingMessage(t).c_str());
    return 1;
  }
  std::printf("counter after 1000 inter-bundle calls: %d\n", r.asInt());
  std::printf("total inter-isolate migrations so far: %llu\n",
              static_cast<unsigned long long>(vm.interIsolateCalls()));

  // 4. The administrator's view: per-isolate resource statistics.
  vm.collectGarbage(t, nullptr);  // refresh reachability-based charges
  std::printf("\n%-16s %12s %10s %8s %8s %10s\n", "isolate", "bytes", "objects",
              "threads", "gc", "calls-in");
  for (const IsolateReport& rep : vm.reportAll()) {
    std::printf("%-16s %12llu %10llu %8llu %8llu %10llu\n", rep.name.c_str(),
                static_cast<unsigned long long>(rep.bytes_charged),
                static_cast<unsigned long long>(rep.objects_charged),
                static_cast<unsigned long long>(rep.threads_created),
                static_cast<unsigned long long>(rep.gc_activations),
                static_cast<unsigned long long>(rep.calls_in));
  }

  // 5. Kill the provider: its methods are poisoned, its objects reclaimed.
  //    The client survives and observes StoppedIsolateException.
  fw.killBundle(provider);
  Value guarded = vm.callStaticIn(t, client->loader(), "democli/Client",
                                  "callGuarded", "()I", {});
  std::printf("\nafter killBundle(provider): guarded call returned %d "
              "(-1 = StoppedIsolateException caught by the client)\n",
              guarded.asInt());
  return 0;
}
