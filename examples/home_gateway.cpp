// A multi-service home gateway -- the deployment the paper's introduction
// motivates: an OSGi platform hosting third-party services downloaded
// dynamically, where operators need per-bundle resource accounting and the
// ability to evict misbehaving tenants without restarting the gateway.
//
// Three tenant bundles (metering, media cache, automation rules) run side
// by side; the operator dashboard prints each tenant's footprint; a tenant
// is hot-swapped (uninstalled and replaced) without disturbing the others.
//
//   build/examples/home_gateway
#include <cstdio>

#include "bytecode/builder.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "support/strf.h"

using namespace ijvm;

namespace {

// A tenant bundle: its activator allocates a working set and registers a
// tick() service; tick() does some work and returns a health value.
BundleDescriptor makeTenant(const std::string& name, const std::string& pkg,
                            i32 working_set_kib, i32 work_per_tick) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  std::string impl = pkg + "/Service";
  {
    ClassBuilder cb(impl);
    cb.addInterface("gw/Tenant");
    cb.field("state", "[I");
    cb.field("ticks", "I");
    auto& ctor = cb.method("<init>", "()V");
    ctor.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    ctor.aload(0).iconst(working_set_kib * 256).newarray(Kind::Int);
    ctor.putfield(impl, "state", "[I");
    ctor.ret();
    auto& tick = cb.method("tick", "()I");
    Label loop = tick.newLabel(), done = tick.newLabel();
    tick.iconst(0).istore(1);
    tick.iconst(0).istore(2);
    tick.bind(loop).iload(2).iconst(work_per_tick).ifIcmpGe(done);
    tick.iload(1).iload(2).iadd().istore(1);
    tick.iinc(2, 1).gotoLabel(loop);
    tick.bind(done);
    tick.aload(0).aload(0).getfield(impl, "ticks", "I").iconst(1).iadd();
    tick.putfield(impl, "ticks", "I");
    tick.aload(0).getfield(impl, "ticks", "I").ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("tenant." + name);
    start.newDefault(impl);
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = pkg + "/Activator";
  }
  return desc;
}

void dashboard(VM& vm, Framework& fw) {
  vm.collectGarbage(vm.mainThread(), nullptr);
  std::printf("%-18s %-12s %10s %9s %9s %9s\n", "tenant", "state", "KiB",
              "objects", "calls-in", "cpu");
  for (Bundle* b : fw.bundles()) {
    IsolateReport rep = vm.reportFor(b->isolate());
    std::printf("%-18s %-12s %10.1f %9llu %9llu %9llu\n",
                b->symbolicName().c_str(), bundleStateName(b->state()),
                rep.bytes_charged / 1024.0,
                static_cast<unsigned long long>(rep.objects_charged),
                static_cast<unsigned long long>(rep.calls_in),
                static_cast<unsigned long long>(rep.cpu_samples));
  }
}

}  // namespace

int main() {
  VM vm;
  installSystemLibrary(vm);
  Framework fw(vm);
  {
    ClassBuilder cb("gw/Tenant", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("tick", "()I");
    fw.frameworkIsolate()->loader->define(cb.build());
  }

  std::printf("home gateway: installing tenants...\n");
  Bundle* metering = fw.install(makeTenant("metering", "metering", 64, 2000));
  Bundle* media = fw.install(makeTenant("mediacache", "media", 512, 500));
  Bundle* rules = fw.install(makeTenant("automation", "rules", 16, 8000));
  for (Bundle* b : {metering, media, rules}) fw.start(b);

  // Simulate gateway traffic: round-robin tick all tenants.
  JThread* t = vm.mainThread();
  for (int round = 0; round < 50; ++round) {
    for (const char* svc : {"tenant.metering", "tenant.mediacache",
                            "tenant.automation"}) {
      Object* tenant = fw.getService(svc);
      vm.callVirtual(t, tenant, "tick", "()I", {});
      if (t->pending_exception != nullptr) {
        std::printf("guest exception: %s\n", vm.pendingMessage(t).c_str());
        return 1;
      }
    }
  }

  std::printf("\n== operator dashboard after 50 rounds ==\n");
  dashboard(vm, fw);

  // Hot-swap the media cache: evict and replace, others undisturbed.
  std::printf("\noperator: media cache misbehaving -> uninstalling...\n");
  fw.uninstall(media);
  Bundle* media2 = fw.install(makeTenant("mediacache-v2", "media2", 128, 500));
  fw.start(media2);
  for (int round = 0; round < 10; ++round) {
    for (const char* svc : {"tenant.metering", "tenant.mediacache-v2",
                            "tenant.automation"}) {
      Object* tenant = fw.getService(svc);
      vm.callVirtual(t, tenant, "tick", "()I", {});
    }
  }

  std::printf("\n== dashboard after hot swap ==\n");
  dashboard(vm, fw);
  std::printf("\nthe old cache's isolate is %s; its memory was reclaimed on\n"
              "uninstall while metering/automation kept their state.\n",
              media->isolate()->state.load() == IsolateState::Dead
                  ? "DEAD"
                  : "TERMINATING");
  return 0;
}
