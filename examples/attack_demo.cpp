// Administrator walkthrough: detect and stop a denial-of-service bundle.
//
// A malicious bundle exhausts memory (attack A3); the administrator watches
// the per-isolate statistics I-JVM maintains, identifies the offender,
// kills it, and the platform keeps running.
//
//   build/examples/attack_demo
//
// The run is traced end to end (src/obs): on exit it writes
// attack_demo.trace.json -- load it in Perfetto / chrome://tracing to see
// the compiles, OSR transfers, GC phases, safepoint drains and the kill
// on a common timeline (docs/observability.md).
#include <cstdio>

#include "admin/governor.h"
#include "bytecode/builder.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

using namespace ijvm;

namespace {

BundleDescriptor makeHog() {
  BundleDescriptor desc;
  desc.symbolic_name = "memory.hog";
  ClassBuilder cb("hog/Main");
  cb.field("sink", "Ljava/util/ArrayList;", ACC_PUBLIC | ACC_STATIC);
  auto& m = cb.method("grab", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/ArrayList").putstatic("hog/Main", "sink",
                                                "Ljava/util/ArrayList;");
  m.iconst(0).istore(0);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  Label loop = m.newLabel();
  m.bind(from);
  m.bind(loop);
  m.getstatic("hog/Main", "sink", "Ljava/util/ArrayList;");
  m.iconst(32768).newarray(Kind::Int);
  m.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
  m.iinc(0, 1).gotoLabel(loop);
  m.bind(to).gotoLabel(loop);
  m.bind(handler).pop().iload(0).ireturn();
  m.handler(from, to, handler, "java/lang/OutOfMemoryError");
  // A hot-but-honest compute loop: long enough to cross the back-edge
  // batch flush, so the trace shows the full tier-3 story (compile
  // request/build/install and the on-stack replacement into it).
  auto& w = cb.method("warm", "(I)I", ACC_PUBLIC | ACC_STATIC);
  // A branch no warm-up call takes: its GETSTATIC is still unquickened
  // when the method compiles, so the first negative-argument call runs
  // compiled code into a cold site and deoptimizes -- the demo's way of
  // getting a jit.deopt event into the trace.
  Label skip_cold = w.newLabel();
  w.iload(0).ifge(skip_cold);
  w.getstatic("hog/Main", "sink", "Ljava/util/ArrayList;").pop();
  w.bind(skip_cold);
  w.iconst(0).istore(1);
  Label wl = w.newLabel();
  w.bind(wl);
  w.iload(1).iconst(3).imul().iconst(1).iadd().istore(1);
  w.iinc(0, -1).iload(0).ifgt(wl);
  w.iload(1).ireturn();
  desc.classes.push_back(cb.build());
  return desc;
}

void printReports(VM& vm) {
  std::fputs(obs::isolateTable(vm.reportAll()).c_str(), stdout);
}

}  // namespace

int main() {
  VmOptions opts;                      // I-JVM mode
  opts.isolate_memory_limit = 8u << 20;  // 8 MiB per bundle
  opts.gc_threshold = 1u << 20;
  opts.jit_threshold = 64;             // low bar: the demo should compile
  opts.code_cache_budget = 16u << 10;  // tiny cache: force demotions too
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  defineCounterApi(fw);

  // Automatic detection runs alongside the manual walkthrough; its ticks
  // land in the trace as governor events.
  ResourceGovernor gov(fw, GovernorPolicy::standard());

  // A well-behaved service bundle shares the platform with the hog.
  Bundle* good = fw.install(makeCounterProvider("goodsvc", "counter"));
  fw.start(good);
  Bundle* hog = fw.install(makeHog());
  fw.start(hog);

  std::printf("== before the attack ==\n");
  vm.collectGarbage(vm.mainThread(), nullptr);
  printReports(vm);
  gov.tick();

  // Warm the hog's compute loop until the JIT compiles it (and, on the
  // first long run, on-stack-replaces into the compiled code).
  JThread* t = vm.mainThread();
  for (int i = 0; i < 4; ++i) {
    vm.callStaticIn(t, hog->loader(), "hog/Main", "warm", "(I)I",
                    {Value::ofInt(200000)});
  }
  // First negative call: compiled code reaches the cold branch -> deopt.
  vm.callStaticIn(t, hog->loader(), "hog/Main", "warm", "(I)I",
                  {Value::ofInt(-1)});
  // Re-heat past the deopt so the method recompiles; the kill below then
  // shows the demote/reclaim tail of the code lifecycle too.
  for (int i = 0; i < 4; ++i) {
    vm.callStaticIn(t, hog->loader(), "hog/Main", "warm", "(I)I",
                    {Value::ofInt(200000)});
  }

  // The hog allocates until it trips its isolate memory limit.
  Value grabbed = vm.callStaticIn(t, hog->loader(), "hog/Main", "grab", "()I", {});
  std::printf("\nhog retained %d chunks before OutOfMemoryError "
              "(its isolate limit: 8 MiB)\n", grabbed.asInt());

  std::printf("\n== during the attack (administrator's view) ==\n");
  vm.collectGarbage(t, nullptr);
  printReports(vm);
  gov.tick();

  // The administrator picks the isolate with the largest footprint...
  Bundle* offender = nullptr;
  u64 worst = 0;
  for (Bundle* b : fw.bundles()) {
    u64 bytes = vm.reportFor(b->isolate()).bytes_charged;
    if (bytes > worst) {
      worst = bytes;
      offender = b;
    }
  }
  std::printf("\nadministrator: killing '%s' (%llu bytes charged)\n",
              offender->symbolicName().c_str(),
              static_cast<unsigned long long>(worst));
  fw.killBundle(offender);

  std::printf("\n== after the kill ==\n");
  vm.collectGarbage(t, nullptr);
  printReports(vm);
  gov.tick();

  // The good bundle still works.
  Object* svc = fw.getService("counter");
  Value v = vm.callVirtual(t, svc, "inc", "()I", {});
  std::printf("\ngood bundle still serving: counter=%d\n", v.asInt());
  std::printf("(paper section 4.3, A3: \"the administrator kills the offending\n"
              " bundle and all other bundles continue to run\")\n");

  std::printf("\n%s\n", gov.adminSnapshot().c_str());

  const char* trace_path = "attack_demo.trace.json";
  if (obs::dumpChromeTrace(trace_path)) {
    std::printf("trace written to %s (open in Perfetto / chrome://tracing)\n",
                trace_path);
  }
  return 0;
}
