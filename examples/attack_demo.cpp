// Administrator walkthrough: detect and stop a denial-of-service bundle.
//
// A malicious bundle exhausts memory (attack A3); the administrator watches
// the per-isolate statistics I-JVM maintains, identifies the offender,
// kills it, and the platform keeps running.
//
//   build/examples/attack_demo
#include <cstdio>

#include "bytecode/builder.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

using namespace ijvm;

namespace {

BundleDescriptor makeHog() {
  BundleDescriptor desc;
  desc.symbolic_name = "memory.hog";
  ClassBuilder cb("hog/Main");
  cb.field("sink", "Ljava/util/ArrayList;", ACC_PUBLIC | ACC_STATIC);
  auto& m = cb.method("grab", "()I", ACC_PUBLIC | ACC_STATIC);
  m.newDefault("java/util/ArrayList").putstatic("hog/Main", "sink",
                                                "Ljava/util/ArrayList;");
  m.iconst(0).istore(0);
  Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
  Label loop = m.newLabel();
  m.bind(from);
  m.bind(loop);
  m.getstatic("hog/Main", "sink", "Ljava/util/ArrayList;");
  m.iconst(32768).newarray(Kind::Int);
  m.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
  m.iinc(0, 1).gotoLabel(loop);
  m.bind(to).gotoLabel(loop);
  m.bind(handler).pop().iload(0).ireturn();
  m.handler(from, to, handler, "java/lang/OutOfMemoryError");
  desc.classes.push_back(cb.build());
  return desc;
}

void printReports(VM& vm) {
  std::printf("%-18s %-12s %12s %10s %8s\n", "isolate", "state", "bytes",
              "objects", "gc");
  for (const IsolateReport& rep : vm.reportAll()) {
    const char* state = rep.state == IsolateState::Active       ? "ACTIVE"
                        : rep.state == IsolateState::Terminating ? "TERMINATING"
                                                                  : "DEAD";
    std::printf("%-18s %-12s %12llu %10llu %8llu\n", rep.name.c_str(), state,
                static_cast<unsigned long long>(rep.bytes_charged),
                static_cast<unsigned long long>(rep.objects_charged),
                static_cast<unsigned long long>(rep.gc_activations));
  }
}

}  // namespace

int main() {
  VmOptions opts;                      // I-JVM mode
  opts.isolate_memory_limit = 8u << 20;  // 8 MiB per bundle
  opts.gc_threshold = 1u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  defineCounterApi(fw);

  // A well-behaved service bundle shares the platform with the hog.
  Bundle* good = fw.install(makeCounterProvider("goodsvc", "counter"));
  fw.start(good);
  Bundle* hog = fw.install(makeHog());
  fw.start(hog);

  std::printf("== before the attack ==\n");
  vm.collectGarbage(vm.mainThread(), nullptr);
  printReports(vm);

  // The hog allocates until it trips its isolate memory limit.
  JThread* t = vm.mainThread();
  Value grabbed = vm.callStaticIn(t, hog->loader(), "hog/Main", "grab", "()I", {});
  std::printf("\nhog retained %d chunks before OutOfMemoryError "
              "(its isolate limit: 8 MiB)\n", grabbed.asInt());

  std::printf("\n== during the attack (administrator's view) ==\n");
  vm.collectGarbage(t, nullptr);
  printReports(vm);

  // The administrator picks the isolate with the largest footprint...
  Bundle* offender = nullptr;
  u64 worst = 0;
  for (Bundle* b : fw.bundles()) {
    u64 bytes = vm.reportFor(b->isolate()).bytes_charged;
    if (bytes > worst) {
      worst = bytes;
      offender = b;
    }
  }
  std::printf("\nadministrator: killing '%s' (%llu bytes charged)\n",
              offender->symbolicName().c_str(),
              static_cast<unsigned long long>(worst));
  fw.killBundle(offender);

  std::printf("\n== after the kill ==\n");
  vm.collectGarbage(t, nullptr);
  printReports(vm);

  // The good bundle still works.
  Object* svc = fw.getService("counter");
  Value v = vm.callVirtual(t, svc, "inc", "()I", {});
  std::printf("\ngood bundle still serving: counter=%d\n", v.asInt());
  std::printf("(paper section 4.3, A3: \"the administrator kills the offending\n"
              " bundle and all other bundles continue to run\")\n");
  return 0;
}
