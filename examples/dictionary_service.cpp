// The section-4.4 dictionary service, end to end.
//
// The paper's third accounting-limits experiment uses "a well-defined
// interface (in our experiment a dictionary service)" whose lookups return
// large objects that callers retain -- and shows the GC then bills the
// *callers*, not the dictionary. This example builds that exact service as
// an OSGi application and shows how the choice of AccountingPolicy changes
// who the administrator would blame:
//
//   first-reference (paper default) -> the retaining clients are billed
//   creator-pays    (future work)   -> the dictionary bundle is billed
//
// Run: build/examples/dictionary_service
#include <cstdio>

#include "bytecode/builder.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"

using namespace ijvm;

namespace {

// dict/Service.lookup(word) -> a fresh "definition" payload: a String plus
// a 64 KiB int[] standing in for rendered article data.
BundleDescriptor makeDictionary() {
  BundleDescriptor desc;
  desc.symbolic_name = "dictionary";
  {
    ClassBuilder cb("dict/Impl");
    cb.addInterface("api/Dictionary");
    auto& lk = cb.method("lookup",
                         "(Ljava/lang/String;)Ljava/lang/Object;");
    // return new int[16384]  (the heavy "definition" payload)
    lk.iconst(16384).newarray(Kind::Int).areturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("dict/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& s = cb.method("start", "(Losgi/BundleContext;)V");
    s.aload(1).ldcStr("dictionary").newDefault("dict/Impl");
    s.invokevirtual("osgi/BundleContext", "registerService",
                    "(Ljava/lang/String;Ljava/lang/Object;)V");
    s.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = "dict/Activator";
  }
  return desc;
}

// A reader bundle that looks up `count` words and keeps every definition.
BundleDescriptor makeReader(const std::string& name, i32 count) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  std::string cls = name + "/Reader";
  {
    ClassBuilder cb(cls);
    cb.field("svc", "Lapi/Dictionary;", ACC_PUBLIC | ACC_STATIC);
    cb.field("shelf", "Ljava/util/ArrayList;", ACC_PUBLIC | ACC_STATIC);
    auto& m = cb.method("readAll", "()I", ACC_PUBLIC | ACC_STATIC);
    m.newDefault("java/util/ArrayList").putstatic(cls, "shelf",
                                                  "Ljava/util/ArrayList;");
    Label loop = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(0);
    m.bind(loop).iload(0).iconst(count).ifIcmpGe(done);
    m.getstatic(cls, "shelf", "Ljava/util/ArrayList;");
    m.getstatic(cls, "svc", "Lapi/Dictionary;");
    m.ldcStr("word");
    m.invokeinterface("api/Dictionary", "lookup",
                      "(Ljava/lang/String;)Ljava/lang/Object;");
    m.invokevirtual("java/util/ArrayList", "add", "(Ljava/lang/Object;)I").pop();
    m.iinc(0, 1).gotoLabel(loop);
    m.bind(done).getstatic(cls, "shelf", "Ljava/util/ArrayList;");
    m.invokevirtual("java/util/ArrayList", "size", "()I").ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(name + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& s = cb.method("start", "(Losgi/BundleContext;)V");
    s.aload(1).ldcStr("dictionary");
    s.invokevirtual("osgi/BundleContext", "getService",
                    "(Ljava/lang/String;)Ljava/lang/Object;");
    s.checkcast("api/Dictionary").putstatic(cls, "svc", "Lapi/Dictionary;");
    s.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = name + "/Activator";
  }
  return desc;
}

void runScenario(AccountingPolicy policy) {
  VmOptions opts = VmOptions::isolated();
  opts.accounting_policy = policy;
  opts.gc_threshold = 64u << 20;
  opts.heap_limit = 256u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);

  // Shared service interface, visible to every bundle.
  {
    ClassBuilder cb("api/Dictionary", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("lookup", "(Ljava/lang/String;)Ljava/lang/Object;");
    fw.frameworkIsolate()->loader->define(cb.build());
  }

  Bundle* dict = fw.install(makeDictionary());
  Bundle* avid = fw.install(makeReader("avid", 48));    // keeps 48 articles
  Bundle* casual = fw.install(makeReader("casual", 6)); // keeps 6
  for (Bundle* b : {dict, avid, casual}) fw.start(b);

  JThread* t = vm.mainThread();
  vm.callStaticIn(t, avid->loader(), "avid/Reader", "readAll", "()I", {});
  vm.callStaticIn(t, casual->loader(), "casual/Reader", "readAll", "()I", {});
  vm.collectGarbage(t, nullptr);

  std::printf("\naccounting policy: %s\n", accountingPolicyName(policy));
  std::printf("  %-12s %-10s %14s %10s\n", "bundle", "state", "mem charged",
              "allocs");
  for (Bundle* b : fw.bundles()) {
    IsolateReport r = fw.reportFor(b);
    std::printf("  %-12s %-10s %11.2f MiB %10llu\n",
                b->symbolicName().c_str(), bundleStateName(b->state()),
                static_cast<double>(r.bytes_charged) / (1u << 20),
                static_cast<unsigned long long>(r.objects_allocated));
  }
  vm.shutdownAllThreads();
}

}  // namespace

int main() {
  std::printf("Dictionary service (paper section 4.4, experiment 3):\n");
  std::printf("the dictionary returns 64 KiB definitions; 'avid' retains 48\n");
  std::printf("(3 MiB), 'casual' retains 6. Who does the administrator see?\n");

  runScenario(AccountingPolicy::FirstReference);
  runScenario(AccountingPolicy::CreatorPays);

  std::printf(
      "\nUnder the paper's first-reference policy the dictionary that\n"
      "*produced* every byte shows ~zero usage -- exactly the imprecision\n"
      "section 4.4 reports. Switching the VM to creator-pays (the paper's\n"
      "future work, VmOptions::accounting_policy) pins the production on\n"
      "the dictionary instead; the right choice depends on whether the\n"
      "administrator hunts hoarders or producers.\n");
  return 0;
}
