// The Felix "paint program" demo of paper section 4.1, headless.
//
// The drawing area (canvas) and each shape kind are separate bundles. The
// canvas exposes a "canvas" service; shape bundles register themselves as
// shape services and draw by calling back into the canvas -- every
// drag/move step is an inter-bundle call. Dragging a shape across the
// canvas makes ~200 inter-bundle calls (the workload Table 1 prices).
//
//   build/examples/paint_app
#include <chrono>
#include <cstdio>

#include "bytecode/builder.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"

using namespace ijvm;

namespace {

i64 nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Shared interfaces: the canvas service and the shape service.
void definePaintApi(Framework& fw) {
  ClassLoader* shared = fw.frameworkIsolate()->loader;
  {
    ClassBuilder cb("paint/Canvas", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("plot", "(III)V");   // x, y, color
    cb.abstractMethod("pixelCount", "()I");
    shared->define(cb.build());
  }
  {
    ClassBuilder cb("paint/Shape", "", ACC_PUBLIC | ACC_INTERFACE);
    cb.abstractMethod("drawAt", "(II)V");  // draw at position (x, y)
    shared->define(cb.build());
  }
}

// The canvas bundle: a 64x48 pixel buffer behind the paint/Canvas service.
BundleDescriptor makeCanvasBundle() {
  BundleDescriptor desc;
  desc.symbolic_name = "paint.canvas";
  {
    ClassBuilder cb("canvas/Impl");
    cb.addInterface("paint/Canvas");
    cb.field("pixels", "[I");
    cb.field("painted", "I");
    auto& ctor = cb.method("<init>", "()V");
    ctor.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    ctor.aload(0).iconst(64 * 48).newarray(Kind::Int).putfield("canvas/Impl",
                                                               "pixels", "[I");
    ctor.ret();
    auto& plot = cb.method("plot", "(III)V");
    // pixels[(y*64+x) % (64*48)] = color; painted++
    plot.aload(0).getfield("canvas/Impl", "pixels", "[I");
    plot.iload(2).iconst(64).imul().iload(1).iadd();
    plot.iconst(64 * 48).irem();
    plot.iload(3).iastore();
    plot.aload(0).aload(0).getfield("canvas/Impl", "painted", "I").iconst(1)
        .iadd().putfield("canvas/Impl", "painted", "I");
    plot.ret();
    auto& count = cb.method("pixelCount", "()I");
    count.aload(0).getfield("canvas/Impl", "painted", "I").ireturn();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb("canvas/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    start.aload(1).ldcStr("canvas");
    start.newDefault("canvas/Impl");
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = "canvas/Activator";
  }
  return desc;
}

// A shape bundle: draws `arms` pixels per drawAt() by calling the canvas.
BundleDescriptor makeShapeBundle(const std::string& name, const std::string& pkg,
                                 i32 color, i32 arms) {
  BundleDescriptor desc;
  desc.symbolic_name = name;
  std::string impl = pkg + "/Impl";
  {
    ClassBuilder cb(impl);
    cb.addInterface("paint/Shape");
    cb.field("canvas", "Lpaint/Canvas;");
    auto& ctor = cb.method("<init>", "(Lpaint/Canvas;)V");
    ctor.aload(0).invokespecial("java/lang/Object", "<init>", "()V");
    ctor.aload(0).aload(1).putfield(impl, "canvas", "Lpaint/Canvas;");
    ctor.ret();
    auto& draw = cb.method("drawAt", "(II)V");
    // for k in 0..arms: canvas.plot(x+k, y+k, color)  -- inter-bundle calls
    Label loop = draw.newLabel(), done = draw.newLabel();
    draw.iconst(0).istore(3);
    draw.bind(loop).iload(3).iconst(arms).ifIcmpGe(done);
    draw.aload(0).getfield(impl, "canvas", "Lpaint/Canvas;");
    draw.iload(1).iload(3).iadd();
    draw.iload(2).iload(3).iadd();
    draw.iconst(color);
    draw.invokeinterface("paint/Canvas", "plot", "(III)V");
    draw.iinc(3, 1).gotoLabel(loop);
    draw.bind(done).ret();
    desc.classes.push_back(cb.build());
  }
  {
    ClassBuilder cb(pkg + "/Activator");
    cb.addInterface("osgi/BundleActivator");
    auto& start = cb.method("start", "(Losgi/BundleContext;)V");
    // shape = new Impl((Canvas) ctx.getService("canvas"))
    start.newObject(impl).dup();
    start.aload(1).ldcStr("canvas");
    start.invokevirtual("osgi/BundleContext", "getService",
                        "(Ljava/lang/String;)Ljava/lang/Object;");
    start.checkcast("paint/Canvas");
    start.invokespecial(impl, "<init>", "(Lpaint/Canvas;)V");
    start.astore(2);
    start.aload(1).ldcStr("shape." + name).aload(2);
    start.invokevirtual("osgi/BundleContext", "registerService",
                        "(Ljava/lang/String;Ljava/lang/Object;)V");
    start.ret();
    cb.method("stop", "(Losgi/BundleContext;)V").ret();
    desc.classes.push_back(cb.build());
    desc.activator = pkg + "/Activator";
  }
  return desc;
}

}  // namespace

int main() {
  VM vm;
  installSystemLibrary(vm);
  Framework fw(vm);
  definePaintApi(fw);

  Bundle* canvas = fw.install(makeCanvasBundle());
  fw.start(canvas);
  Bundle* circle = fw.install(makeShapeBundle("circle", "circle", 0xFF0000, 1));
  Bundle* square = fw.install(makeShapeBundle("square", "square", 0x00FF00, 1));
  fw.start(circle);
  fw.start(square);

  std::printf("paint demo: canvas bundle + 2 shape bundles installed\n");

  // Drag the circle from the upper-left to the bottom-right: 200 steps,
  // each step an inter-bundle drawAt -> plot chain (paper: "dragging and
  // moving the shape ... makes roughly two hundred inter-bundle calls").
  Object* shape = fw.getService("shape.circle");
  JThread* t = vm.mainThread();
  const u64 calls_before = vm.interIsolateCalls();
  const i64 t0 = nowNs();
  for (i32 step = 0; step < 200; ++step) {
    vm.callVirtual(t, shape, "drawAt", "(II)V",
                   {Value::ofInt(step % 64), Value::ofInt(step % 48)});
    if (t->pending_exception != nullptr) {
      std::printf("guest exception: %s\n", vm.pendingMessage(t).c_str());
      return 1;
    }
  }
  const i64 elapsed = nowNs() - t0;
  const u64 calls = vm.interIsolateCalls() - calls_before;

  Object* canvas_svc = fw.getService("canvas");
  Value painted = vm.callVirtual(t, canvas_svc, "pixelCount", "()I", {});

  std::printf("drag of 200 steps: %llu inter-bundle calls, %d pixels painted\n",
              static_cast<unsigned long long>(calls), painted.asInt());
  std::printf("total time: %.1f us (%.2f us per inter-bundle call)\n",
              elapsed / 1e3, elapsed / 1e3 / static_cast<double>(calls));
  std::printf("(paper section 4.1: ~200 inter-bundle calls per drag; Table 1\n"
              " prices exactly this workload under 4 communication models)\n");

  // Per-bundle accounting view.
  vm.collectGarbage(t, nullptr);
  std::printf("\n%-16s %10s %10s\n", "isolate", "calls-in", "bytes");
  for (const IsolateReport& rep : vm.reportAll()) {
    std::printf("%-16s %10llu %10llu\n", rep.name.c_str(),
                static_cast<unsigned long long>(rep.calls_in),
                static_cast<unsigned long long>(rep.bytes_charged));
  }
  (void)square;
  return 0;
}
