// Self-healing OSGi platform: the ResourceGovernor as an automated
// administrator (paper section 4.4 leaves this as future work).
//
// Boots an I-JVM platform with four bundles -- two well-behaved services
// and two that turn hostile (a CPU spinner and an allocation churner) --
// then starts the governor with the standard policy and lets it watch the
// per-isolate counters. The governor detects both attacks from the counter
// deltas, kills the offenders through the framework (StoppedBundleEvent +
// isolate termination), and the healthy bundles keep running.
//
//   build/examples/governor_demo
#include <chrono>
#include <cstdio>
#include <thread>

#include "admin/governor.h"
#include "obs/report.h"
#include "osgi/framework.h"
#include "stdlib/system_library.h"
#include "workloads/bundles.h"

using namespace ijvm;
using namespace std::chrono;

int main() {
  VmOptions opts = VmOptions::isolated();
  opts.gc_threshold = 1u << 20;
  opts.heap_limit = 64u << 20;
  opts.sampler_period_us = 500;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);

  std::printf("booting platform: 2 healthy bundles, 2 soon-to-be-hostile\n");
  Bundle* shop = fw.install(makeWellBehavedBundle("shop.frontend"));
  Bundle* billing = fw.install(makeWellBehavedBundle("billing.engine"));
  Bundle* spinner = fw.install(makeCpuHogBundle("weather.widget"));
  Bundle* churner = fw.install(makeChurnBundle("ad.rotator"));
  for (Bundle* b : {shop, billing, spinner, churner}) fw.start(b);

  ResourceGovernor gov(fw, GovernorPolicy::standard());
  gov.onKill([](const GovernorEvent& ev) {
    std::printf("  !! governor killed '%s' -- rule %s (observed %.2f > %.2f "
                "for %d ticks)\n",
                ev.bundle_name.c_str(), ev.rule_label.c_str(), ev.observed,
                ev.threshold, ev.strikes);
  });
  gov.start(/*period_ms=*/50);
  std::printf("governor watching (50 ms ticks, standard policy)...\n");

  // Let the governor do its job.
  auto deadline = steady_clock::now() + seconds(15);
  while (gov.killed().size() < 2 && steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(50));
  }
  gov.stop();

  std::printf("\nwarnings/strikes recorded along the way:\n");
  for (const GovernorEvent& ev : gov.history()) {
    if (ev.acted) continue;  // final actions were printed live
    std::printf("  tick %3llu  %-16s %-12s [%s] observed %10.2f "
                "(threshold %.2f, strike %d)\n",
                static_cast<unsigned long long>(ev.tick),
                ev.bundle_name.c_str(), ev.rule_label.c_str(),
                actionName(ev.action), ev.observed, ev.threshold, ev.strikes);
  }

  std::printf("\nfinal platform state (admin snapshot):\n%s",
              gov.adminSnapshot().c_str());

  const bool healthy_ok = shop->state() == BundleState::Active &&
                          billing->state() == BundleState::Active;
  const bool hostile_gone = spinner->state() == BundleState::Uninstalled &&
                            churner->state() == BundleState::Uninstalled;
  std::printf("\n%s\n", healthy_ok && hostile_gone
                            ? "platform self-healed: offenders terminated, "
                              "services unaffected"
                            : "unexpected end state (see above)");
  vm.shutdownAllThreads();
  return healthy_ok && hostile_gone ? 0 : 1;
}
