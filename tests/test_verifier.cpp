// Bytecode verifier: the type-safety gate isolation rests on (paper 3.1).
#include <gtest/gtest.h>

#include "bytecode/builder.h"
#include "classes/class_loader.h"
#include "verifier/verifier.h"

namespace ijvm {
namespace {

struct VerifierFixture : ::testing::Test {
  void SetUp() override {
    registry = std::make_unique<ClassRegistry>();
    // A minimal Object so classes can link.
    ClassBuilder obj("java/lang/Object", "");
    obj.method("<init>", "()V").ret();
    registry->systemLoader()->define(obj.build());
    loader = registry->newLoader("app");
  }

  // Defines a single-method class and verifies it; returns the VerifyError
  // message, or "" if verification passed.
  std::string verify(const std::string& desc,
                     const std::function<void(MethodBuilder&)>& body,
                     u16 flags = ACC_PUBLIC | ACC_STATIC) {
    ClassBuilder cb("v/C" + std::to_string(counter++));
    auto& m = cb.method("f", desc, flags);
    body(m);
    ClassDef def = cb.build();
    JClass* cls = loader->define(std::move(def));
    try {
      verifyClass(*cls);
      return "";
    } catch (const VerifyError& e) {
      return e.what();
    }
  }

  std::unique_ptr<ClassRegistry> registry;
  ClassLoader* loader = nullptr;
  int counter = 0;
};

TEST_F(VerifierFixture, AcceptsStraightLineCode) {
  EXPECT_EQ(verify("(II)I", [](MethodBuilder& m) {
    m.iload(0).iload(1).iadd().ireturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsStackUnderflow) {
  EXPECT_NE(verify("()I", [](MethodBuilder& m) {
    m.iadd();  // nothing on the stack
    m.ireturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsTypeMismatchOnAdd) {
  EXPECT_NE(verify("(ID)I", [](MethodBuilder& m) {
    m.iload(0).dload(1).iadd().ireturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsWrongReturnKind) {
  EXPECT_NE(verify("()I", [](MethodBuilder& m) {
    m.dconst(1.0).dreturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsReturnFromVoidWithValue) {
  EXPECT_NE(verify("()V", [](MethodBuilder& m) {
    m.iconst(1).ireturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsFallingOffTheEnd) {
  EXPECT_NE(verify("()I", [](MethodBuilder& m) {
    m.iconst(1);  // no return
  }), "");
}

TEST_F(VerifierFixture, RejectsUseBeforeDefinitionOfLocal) {
  EXPECT_NE(verify("()I", [](MethodBuilder& m) {
    m.maxLocals(2);
    m.iload(1).ireturn();  // local 1 never stored
  }), "");
}

TEST_F(VerifierFixture, RejectsLocalTypeConflictAtMerge) {
  // One path stores an int in slot 1, the other a ref; the join makes the
  // local unusable -- loading it must be rejected.
  EXPECT_NE(verify("(I)I", [](MethodBuilder& m) {
    Label else_lbl = m.newLabel(), join = m.newLabel();
    m.iload(0).ifeq(else_lbl);
    m.iconst(1).istore(1).gotoLabel(join);
    m.bind(else_lbl).aconstNull().astore(1);
    m.bind(join).iload(1).ireturn();
  }), "");
}

TEST_F(VerifierFixture, AcceptsConflictingLocalIfNeverUsed) {
  EXPECT_EQ(verify("(I)I", [](MethodBuilder& m) {
    Label else_lbl = m.newLabel(), join = m.newLabel();
    m.iload(0).ifeq(else_lbl);
    m.iconst(1).istore(1).gotoLabel(join);
    m.bind(else_lbl).aconstNull().astore(1);
    m.bind(join).iconst(7).ireturn();  // slot 1 dead at the join
  }), "");
}

TEST_F(VerifierFixture, RejectsStackDepthMismatchAtJoin) {
  EXPECT_NE(verify("(I)I", [](MethodBuilder& m) {
    Label join = m.newLabel();
    m.iload(0).ifeq(join);  // branch with empty stack
    m.iconst(1);            // fallthrough with depth 1
    m.bind(join).iconst(2).ireturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsBranchOutOfRange) {
  EXPECT_NE(verify("()V", [](MethodBuilder& m) {
    m.emit(Op::GOTO, 1000);
    m.ret();
  }), "");
}

TEST_F(VerifierFixture, RejectsLocalSlotOutOfRange) {
  EXPECT_NE(verify("()V", [](MethodBuilder& m) {
    m.emit(Op::ILOAD, 250);
    m.ret();
  }), "");
}

TEST_F(VerifierFixture, RejectsBadPoolIndex) {
  EXPECT_NE(verify("()V", [](MethodBuilder& m) {
    m.emit(Op::LDC, 99);
    m.pop().ret();
  }), "");
}

TEST_F(VerifierFixture, RejectsMonitorOnNonRef) {
  EXPECT_NE(verify("()V", [](MethodBuilder& m) {
    m.iconst(1).monitorenter();
    m.ret();
  }), "");
}

TEST_F(VerifierFixture, AcceptsLoopWithConsistentState) {
  EXPECT_EQ(verify("(I)I", [](MethodBuilder& m) {
    Label head = m.newLabel(), done = m.newLabel();
    m.iconst(0).istore(1);
    m.bind(head).iload(0).ifle(done);
    m.iload(1).iload(0).iadd().istore(1);
    m.iinc(0, -1).gotoLabel(head);
    m.bind(done).iload(1).ireturn();
  }), "");
}

TEST_F(VerifierFixture, VerifiesHandlerWithRefOnStack) {
  EXPECT_EQ(verify("()I", [](MethodBuilder& m) {
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from).iconst(1).iconst(0).idiv().ireturn();
    m.bind(to);
    m.bind(handler).pop().iconst(-1).ireturn();
    m.handler(from, to, handler);
  }), "");
}

TEST_F(VerifierFixture, RejectsHandlerThatMisusesTheExceptionSlot) {
  EXPECT_NE(verify("()I", [](MethodBuilder& m) {
    Label from = m.newLabel(), to = m.newLabel(), handler = m.newLabel();
    m.bind(from).iconst(1).iconst(0).idiv().ireturn();
    m.bind(to);
    m.bind(handler).iadd().ireturn();  // exc ref treated as int operand
    m.handler(from, to, handler);
  }), "");
}

TEST_F(VerifierFixture, RejectsCallWithWrongArgumentKind) {
  // Helper class with a known signature to call.
  {
    ClassBuilder cb("v/Target");
    auto& g = cb.method("g", "(I)I", ACC_PUBLIC | ACC_STATIC);
    g.iload(0).ireturn();
    loader->define(cb.build());
  }
  EXPECT_NE(verify("()I", [](MethodBuilder& m) {
    m.dconst(1.0).invokestatic("v/Target", "g", "(I)I").ireturn();
  }), "");
}

TEST_F(VerifierFixture, RejectsEmptyCode) {
  EXPECT_NE(verify("()V", [](MethodBuilder&) {}), "");
}

TEST_F(VerifierFixture, RejectsSwapOnSingleValue) {
  EXPECT_NE(verify("()V", [](MethodBuilder& m) {
    m.iconst(1).swap();
    m.pop().pop().ret();
  }), "");
}

}  // namespace
}  // namespace ijvm
