// Felix/Equinox base-configuration profiles (osgi/profiles.h) -- the
// substrate of the Figure-3 memory experiment. Pins the configuration
// sizes, that both profiles boot cleanly in both VM modes, and the memory
// ordering relations Figure 3 depends on (equinox > felix; isolated >
// shared for the same profile).
#include <gtest/gtest.h>

#include "osgi/framework.h"
#include "osgi/profiles.h"
#include "stdlib/system_library.h"

namespace ijvm {
namespace {

struct BootResult {
  size_t bundles_active = 0;
  MemoryFootprint footprint;
};

BootResult boot(const ProfileSpec& spec, bool isolated) {
  VmOptions opts = isolated ? VmOptions::isolated() : VmOptions::shared();
  opts.gc_threshold = 64u << 20;
  VM vm(opts);
  installSystemLibrary(vm);
  Framework fw(vm);
  std::vector<Bundle*> bundles = bootProfile(fw, spec);
  BootResult r;
  for (Bundle* b : bundles) {
    if (b->state() == BundleState::Active) r.bundles_active++;
  }
  vm.collectGarbage(vm.mainThread(), nullptr);
  r.footprint = measureFootprint(vm);
  vm.shutdownAllThreads();
  return r;
}

TEST(ProfilesTest, ConfigurationSizesMatchThePaper) {
  EXPECT_EQ(felixProfile().management_bundles.size(), 3u);     // admin/shell/repo
  EXPECT_EQ(equinoxProfile().management_bundles.size(), 22u);  // paper 4.2
}

TEST(ProfilesTest, FelixBootsInBothModes) {
  for (bool isolated : {true, false}) {
    BootResult r = boot(felixProfile(), isolated);
    EXPECT_EQ(r.bundles_active, 3u) << "isolated=" << isolated;
    EXPECT_GT(r.footprint.total(), 0u);
  }
}

TEST(ProfilesTest, EquinoxBootsInBothModes) {
  for (bool isolated : {true, false}) {
    BootResult r = boot(equinoxProfile(), isolated);
    EXPECT_EQ(r.bundles_active, 22u) << "isolated=" << isolated;
  }
}

TEST(ProfilesTest, EquinoxOutweighsFelix) {
  BootResult felix = boot(felixProfile(), true);
  BootResult equinox = boot(equinoxProfile(), true);
  EXPECT_GT(equinox.footprint.total(), felix.footprint.total());
  EXPECT_GT(equinox.footprint.classes, felix.footprint.classes);
}

TEST(ProfilesTest, IsolationCostsMemoryOnBothProfiles) {
  // Figure 3's claim direction: I-JVM uses more memory than the baseline
  // (per-isolate TCM slots, strings, statistics), and the overhead is
  // bounded (the paper reports < 16 %; allow a loose 30 % bound here so
  // the test pins direction + magnitude without being brittle).
  for (const ProfileSpec& spec : {felixProfile(), equinoxProfile()}) {
    BootResult isolated = boot(spec, true);
    BootResult shared = boot(spec, false);
    EXPECT_GT(isolated.footprint.total(), shared.footprint.total())
        << spec.name;
    const double overhead =
        static_cast<double>(isolated.footprint.total()) /
            static_cast<double>(shared.footprint.total()) -
        1.0;
    EXPECT_LT(overhead, 0.30) << spec.name << " overhead " << overhead;
  }
}

TEST(ProfilesTest, ManagementBundleStaticsAreIsolatedPerBundle) {
  // The duplication mechanism Figure 3 measures: every management bundle
  // initializes its own copy of the shared-config statics. After boot,
  // each bundle isolate must own interned strings of its own.
  VM vm;
  installSystemLibrary(vm);
  Framework fw(vm);
  bootProfile(fw, felixProfile());
  for (Bundle* b : fw.bundles()) {
    std::lock_guard<std::mutex> lock(b->isolate()->strings_mutex);
    EXPECT_FALSE(b->isolate()->interned_strings.empty())
        << b->symbolicName() << " has no per-isolate interned strings";
  }
  vm.shutdownAllThreads();
}

}  // namespace
}  // namespace ijvm
